// Benchmarks regenerating the experiment tables of EXPERIMENTS.md, one
// benchmark family per experiment (E1–E10). cmd/spanbench prints the same
// measurements as formatted tables with derived columns; these testing.B
// targets provide ns/op and allocation profiles for the same workloads.
package spanjoin_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"spanjoin"
	"spanjoin/internal/alphabet"
	"spanjoin/internal/core"
	"spanjoin/internal/enum"
	"spanjoin/internal/reductions"
	"spanjoin/internal/rel"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/strequal"
	"spanjoin/internal/vsa"
	"spanjoin/internal/workload"
)

// BenchmarkE1_DelayVsStringLength measures full enumeration (preprocessing
// plus up to 2000 tuples) as |s| grows; Thm 3.3 predicts linear growth in
// |s| for a fixed automaton.
func BenchmarkE1_DelayVsStringLength(b *testing.B) {
	a := rgx.MustCompilePattern(".*x{a+}.*y{b+}.*")
	for _, n := range []int{128, 256, 512, 1024} {
		s := workload.RandomString(workload.Rand(1), n, 2)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := enum.Prepare(a, s)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 2000; k++ {
					if _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// BenchmarkE1_DelayVsStates grows the automaton (v independent variables)
// at fixed |s|; the delay bound is O(n²·|s|).
func BenchmarkE1_DelayVsStates(b *testing.B) {
	s := workload.RandomString(workload.Rand(2), 256, 2)
	for v := 1; v <= 4; v++ {
		var sb strings.Builder
		sb.WriteString(".*")
		for i := 1; i <= v; i++ {
			fmt.Fprintf(&sb, "x%d{a}.*", i)
		}
		a := rgx.MustCompilePattern(sb.String())
		b.Run(fmt.Sprintf("vars=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := enum.Prepare(a, s)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 500; k++ {
					if _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// BenchmarkE2_CompileLinear: regex → functional vset-automaton (Lemma 3.4).
func BenchmarkE2_CompileLinear(b *testing.B) {
	for _, k := range []int{16, 64, 256, 1024} {
		pattern := strings.Repeat("a*b", k) + "x{a+}" + strings.Repeat("b*a", k)
		b.Run(fmt.Sprintf("bytes=%d", len(pattern)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rgx.CompilePattern(pattern); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_JoinConstruction: binary join cost as both inputs grow
// (Lemma 3.10).
func BenchmarkE3_JoinConstruction(b *testing.B) {
	for _, m := range []int{4, 8, 16, 32} {
		a1 := rgx.MustCompilePattern(strings.Repeat("(a|b)", m) + ".*x{a+}.*")
		a2 := rgx.MustCompilePattern(".*x{a+}.*" + strings.Repeat("(b|a)", m))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vsa.Join(a1, a2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_KWayBlowup: k-way join (the O(n^2k) growth discussed after
// Lemma 3.10).
func BenchmarkE3_KWayBlowup(b *testing.B) {
	for k := 2; k <= 5; k++ {
		autos := make([]*vsa.VSA, k)
		for i := range autos {
			autos[i] = rgx.MustCompilePattern(fmt.Sprintf(".*x%d{a+}.*", i+1))
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vsa.JoinAll(autos...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func introCQ() *core.CQ {
	mk := func(name, p string) *core.Atom {
		a, err := core.NewAtom(name, p)
		if err != nil {
			panic(err)
		}
		return a
	}
	return &core.CQ{
		Atoms: []*core.Atom{
			mk("sen", `(.*\. )?x{[A-Za-z0-9 ]+\.}( .*)?`),
			mk("adr", `.*y{[A-Za-z]+ z{Belgium}}.*`),
			mk("subYX", `.*x{.*y{.*}.*}.*`),
			mk("plc", `.*w{police}.*`),
			mk("subWX", `.*x{.*w{.*}.*}.*`),
		},
		Projection: span.NewVarList("x"),
	}
}

// BenchmarkE4_KUCQ_Automata: the intro IE query under the compiled-automata
// plan (Thm 3.11), scaling the document.
func BenchmarkE4_KUCQ_Automata(b *testing.B) {
	for _, sc := range []int{2, 4, 8, 16} {
		doc := workload.Document(workload.Rand(42), workload.DocumentOptions{
			Sentences: sc, AddressRate: 0.5, PoliceRate: 0.5,
		})
		q := introCQ()
		b.Run(fmt.Sprintf("sentences=%d", sc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(doc, core.Options{Strategy: core.Automata}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4_KUCQ_Canonical: the same query under the canonical relational
// plan — the Θ(|s|⁴) subspan atoms keep this to tiny documents (§3.2).
func BenchmarkE4_KUCQ_Canonical(b *testing.B) {
	doc := workload.Document(workload.Rand(42), workload.DocumentOptions{
		Sentences: 1, AddressRate: 1, PoliceRate: 1,
	})
	q := introCQ()
	b.Run("sentences=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Eval(doc, core.Options{Strategy: core.Canonical}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5_SatReduction: Thm 3.1 — SAT via Boolean regex CQs on "a".
func BenchmarkE5_SatReduction(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		cnf := workload.RandomCNF(workload.Rand(int64(100+n)), n, int(4.2*float64(n)))
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := reductions.Satisfiable(cnf, core.Options{Strategy: core.Automata}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_CliqueReduction: Thm 3.2 — k-clique via gamma-acyclic CQs.
func BenchmarkE6_CliqueReduction(b *testing.B) {
	for _, n := range []int{8, 10, 12} {
		g := workload.RandomGraph(workload.Rand(int64(200+n)), n, 0.5)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := reductions.FindClique(g, 3, core.Options{Strategy: core.Canonical}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func logChain(b *testing.B, lines int) (*rel.JoinTree, []*rel.Relation) {
	b.Helper()
	doc := workload.Logs(workload.Rand(7), lines)
	patterns := []string{
		`.*x{ERROR} op=.*`,
		`.*x{[A-Z]+} op=y{[a-z]+} .*`,
		`.*op=y{[a-z]+} id=z{[0-9a-f]+} .*`,
	}
	rels := make([]*rel.Relation, len(patterns))
	var edges []span.VarList
	for i, p := range patterns {
		a := rgx.MustCompilePattern(p)
		vars, tuples, err := enum.Eval(a, doc)
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = rel.FromTuples(vars, tuples)
		edges = append(edges, vars)
	}
	tree, ok := (&rel.Hypergraph{Edges: edges}).IsAcyclic()
	if !ok {
		b.Fatal("chain should be acyclic")
	}
	return tree, rels
}

// BenchmarkE7_Yannakakis vs BenchmarkE7_GreedyJoin: the canonical plan's
// join algorithms on materialized acyclic relations (Thm 3.5).
func BenchmarkE7_Yannakakis(b *testing.B) {
	for _, lines := range []int{50, 100, 200} {
		tree, rels := logChain(b, lines)
		out := span.NewVarList("x", "y", "z")
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel.Yannakakis(tree, rels, out)
			}
		})
	}
}

func BenchmarkE7_GreedyJoin(b *testing.B) {
	for _, lines := range []int{50, 100, 200} {
		_, rels := logChain(b, lines)
		out := span.NewVarList("x", "y", "z")
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel.JoinAllGreedy(rels).Project(out)
			}
		})
	}
}

// BenchmarkE7_KeyAttribute: the planner's polynomial-boundedness check.
func BenchmarkE7_KeyAttribute(b *testing.B) {
	a := rgx.MustCompilePattern(`.*x{[A-Z]+} op=y{[a-z]+} .*`)
	b.Run("logs-atom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := vsa.HasKeyAttribute(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8_AeqSize: runtime construction of the string-equality
// automaton on the worst-case string aⁿ (Thm 5.4, Θ(N³) states).
func BenchmarkE8_AeqSize(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		s := strings.Repeat("a", n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := strequal.Build(s, "x", "y"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_StringEquality: end-to-end ζ= evaluation (Cor 5.5).
func BenchmarkE8_StringEquality(b *testing.B) {
	base := rgx.MustCompilePattern(".*x{a+}.*y{a+}.*")
	for _, n := range []int{8, 12, 16} {
		s := workload.RepetitiveString(workload.Rand(5), n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				joined, err := strequal.Apply(base, s, [][2]string{{"x", "y"}})
				if err != nil {
					b.Fatal(err)
				}
				e, err := enum.Prepare(joined, s)
				if err != nil {
					b.Fatal(err)
				}
				// Drain explicitly: this benchmark times the enumeration
				// (Count is now the ranked DP and would skip it).
				for {
					if _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// BenchmarkE9_KeyAttrScaling: Prop 3.6's product construction as the
// automaton grows.
func BenchmarkE9_KeyAttrScaling(b *testing.B) {
	for _, m := range []int{4, 8, 16, 32} {
		a := rgx.MustCompilePattern(strings.Repeat("(a|b)", m) + "x{a}y{.}(a|b)*")
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vsa.KeyAttribute(a, "x"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10_FunctionalizeBlowup: the (state × configuration) product —
// exponential in the variable count.
func BenchmarkE10_FunctionalizeBlowup(b *testing.B) {
	for v := 2; v <= 6; v++ {
		vars := make([]string, v)
		for i := range vars {
			vars[i] = fmt.Sprintf("x%d", i)
		}
		a := &vsa.VSA{Vars: span.NewVarList(vars...), Adj: make([][]vsa.Tr, 1), Init: 0, Final: 0}
		for i := 0; i < v; i++ {
			a.AddOpen(0, int32(i), 0)
			a.AddClose(0, int32(i), 0)
		}
		a.AddChar(0, alphabet.Single('a'), 0)
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vsa.Functionalize(a)
			}
		})
	}
}

// BenchmarkClosures measures the ε/variable closure computation — the
// word-parallel transitive closure on the bitset matrices — as the
// automaton grows.
func BenchmarkClosures(b *testing.B) {
	for _, m := range []int{8, 32, 128} {
		a := rgx.MustCompilePattern(strings.Repeat("(a|b)", m) + ".*x{a+}.*y{b+}.*")
		t, _, err := a.RequireFunctional()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("states=%d", t.NumStates()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t.NewClosures()
			}
		})
	}
}

// BenchmarkStreamReuse: many documents through one compiled pattern. The
// reuse path (one Stream, Reset per document) amortizes trimming, closures
// and the graph arenas across documents; the fresh path pays a full
// Prepare per document. allocs/op is the headline number: steady-state
// reuse should allocate only the returned matches.
func BenchmarkStreamReuse(b *testing.B) {
	sp := spanjoin.MustCompile(`.*x{[a-z]+}@y{[a-z]+}.*`)
	r := workload.Rand(21)
	docs := make([]string, 64)
	for i := range docs {
		docs[i] = workload.Document(r, workload.DocumentOptions{Sentences: 2, EmailRate: 0.5})
	}
	b.Run("reuse-stream", func(b *testing.B) {
		st := sp.NewStream()
		// Warm the arenas so steady-state allocation is measured.
		if _, err := st.Eval(docs[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				if _, err := st.Eval(doc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// One repeated document with no matches (and no derivable literal, so
	// the graph is rebuilt every time): isolates the build overhead, which
	// should be allocation-free in steady state.
	b.Run("repeat-doc-near-zero", func(b *testing.B) {
		noMatch := spanjoin.MustCompile(`.*x{[a-z]+}(0|1)y{[a-z]+}.*`)
		doc := docs[0]
		st := noMatch.NewStream()
		if _, err := st.Eval(doc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Eval(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh-prepare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				if _, err := sp.Eval(doc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("parallel-4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.EvalAllParallel(docs, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPI_EmailExtraction exercises the documented quick-start
// path end to end.
func BenchmarkPublicAPI_EmailExtraction(b *testing.B) {
	sp := spanjoin.MustCompile(`.* mail{user{[a-z]+}@domain{[a-z]+\.[a-z]+}} .*`)
	doc := workload.Document(workload.Rand(3), workload.DocumentOptions{Sentences: 10, EmailRate: 0.6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Eval(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrefilterAblation: the required-literal prefilter (the paper's
// §6 "aggressive filtering" direction) on a non-matching document vs the
// same evaluation without a derivable literal.
func BenchmarkPrefilterAblation(b *testing.B) {
	doc := workload.Document(workload.Rand(9), workload.DocumentOptions{Sentences: 50})
	withLiteral := spanjoin.MustCompile(".*x{Belgium}.*") // absent from doc
	noLiteral := spanjoin.MustCompile(".*x{[A-Z][a-z]+}.*")
	b.Run("prefilter-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, err := withLiteral.Eval(doc)
			if err != nil || len(ms) != 0 {
				b.Fatal(len(ms), err)
			}
		}
	})
	b.Run("no-literal-full-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := noLiteral.Eval(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelEnumeration: the §6 parallelization direction — worker
// scaling on a match-heavy workload.
func BenchmarkParallelEnumeration(b *testing.B) {
	a := rgx.MustCompilePattern(".*x{a+}.*y{b+}.*")
	s := workload.RandomString(workload.Rand(12), 384, 2)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := enum.EvalParallel(a, s, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCorpusEval: the corpus engine end to end — sharded fan-out with
// per-worker enumerator reuse and the compiled-query cache (every
// iteration after the first is a cache hit), vs the flat EvalAllParallel
// worker pool over the same documents.
func BenchmarkCorpusEval(b *testing.B) {
	r := workload.Rand(77)
	docs := make([]string, 256)
	for i := range docs {
		docs[i] = workload.Document(r, workload.DocumentOptions{Sentences: 3, EmailRate: 0.5})
	}
	const pattern = `mail{[a-z]+@[a-z]+\.[a-z]+}`
	ctx := context.Background()
	for _, shards := range []int{1, 4, 16} {
		c := spanjoin.NewCorpus(spanjoin.WithShards(shards))
		c.AddAll(docs...)
		b.Run(fmt.Sprintf("corpus/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms, err := c.EvalSearch(ctx, pattern)
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, ok := ms.Next(); !ok {
						break
					}
				}
				if err := ms.Err(); err != nil {
					b.Fatal(err)
				}
				// spanlint/closecheck: release each iteration's stream.
				ms.Close()
			}
		})
	}
	sp := spanjoin.MustCompileSearch(pattern)
	b.Run("flat-evalallparallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sp.EvalAllParallel(docs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEN_RankedCount: the EN experiment's hot paths — counting by
// ranked DP vs draining the enumeration, and deep pagination by DAG
// descent — on ~n²/2-tuple result sets.
func BenchmarkEN_RankedCount(b *testing.B) {
	sp := spanjoin.MustCompile(".*x{a+}.*")
	doc := strings.Repeat("a", 512) // 131,328 matches
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := sp.Ranked(doc)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := r.Count().Uint64(); !ok {
				b.Fatal("overflow on a small set")
			}
		}
	})
	b.Run("drain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, err := sp.Iterate(doc)
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, ok := ms.Next(); !ok {
					break
				}
			}
			// spanlint/closecheck: a failure here must not read as exhaustion.
			if err := ms.Err(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("page-deep", func(b *testing.B) {
		r, err := sp.Ranked(doc)
		if err != nil {
			b.Fatal(err)
		}
		total, _ := r.Count().Uint64()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(r.Page(total-10, 10)) != 10 {
				b.Fatal("short page")
			}
		}
	})
	b.Run("sample", func(b *testing.B) {
		r, err := sp.Ranked(doc)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r.Sample(rng, 1) == nil {
				b.Fatal("sample failed")
			}
		}
	})
}

// BenchmarkEN_CorpusCount: corpus-wide counting through the shard workers
// vs streaming every match.
func BenchmarkEN_CorpusCount(b *testing.B) {
	c := spanjoin.NewCorpus(spanjoin.WithShards(4))
	r := workload.Rand(11)
	for i := 0; i < 200; i++ {
		c.Add(workload.RandomString(r, 128, 2))
	}
	const pattern = ".*x{a+}.*"
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Count(context.Background(), pattern); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("drain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, err := c.Eval(context.Background(), pattern)
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, ok := ms.Next(); !ok {
					break
				}
			}
			if err := ms.Err(); err != nil {
				b.Fatal(err)
			}
			// spanlint/closecheck: release each iteration's stream.
			ms.Close()
		}
	})
}
