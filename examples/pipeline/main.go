// Pipeline demonstrates composing the full spanner toolbox: prebuilt
// pattern helpers, algebraic composition (join/union/difference), caching a
// compiled spanner with Save/Load, the one-tuple membership test, and the
// Auto planner's strategy choice.
//
// Run with: go run ./examples/pipeline
package main

import (
	"bytes"
	"fmt"
	"log"

	"spanjoin"
	"spanjoin/internal/workload"
)

func main() {
	doc := workload.Document(workload.Rand(77), workload.DocumentOptions{
		Sentences: 10, AddressRate: 0.5, PoliceRate: 0.6,
	})
	fmt.Println("document:", doc[:60], "...")
	fmt.Println()

	// 1. Compose spanners algebraically: sentences that contain "police"
	//    (join through the subspan helper), minus those containing Belgium.
	sentences := spanjoin.MustCompile(spanjoin.SentencePattern("x"))
	police := spanjoin.MustCompile(spanjoin.TokenPattern("w", "police"))
	containsW := spanjoin.MustCompile(spanjoin.SubspanPattern("w", "x"))

	j1, err := spanjoin.Join(sentences, police)
	if err != nil {
		log.Fatal(err)
	}
	withPolice, err := spanjoin.Join(j1, containsW)
	if err != nil {
		log.Fatal(err)
	}
	policeSentences, err := spanjoin.Project(withPolice, "x")
	if err != nil {
		log.Fatal(err)
	}

	belgium := spanjoin.MustCompile(spanjoin.TokenPattern("b", "Belgium"))
	containsB := spanjoin.MustCompile(spanjoin.SubspanPattern("b", "x"))
	j2, err := spanjoin.Join(sentences, belgium)
	if err != nil {
		log.Fatal(err)
	}
	withBelgium, err := spanjoin.Join(j2, containsB)
	if err != nil {
		log.Fatal(err)
	}
	belgiumSentences, err := spanjoin.Project(withBelgium, "x")
	if err != nil {
		log.Fatal(err)
	}

	states, trans := policeSentences.Stats()
	fmt.Printf("composed spanner: %d states, %d transitions\n", states, trans)

	// 2. Cache the composed spanner (expensive join) and reload it.
	var buf bytes.Buffer
	if err := policeSentences.Save(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	reloaded, err := spanjoin.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %d bytes, reloaded OK\n\n", size)

	// 3. Difference: police sentences that do NOT mention Belgium.
	diff, err := spanjoin.Difference(reloaded, belgiumSentences, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("police sentences without a Belgium address:")
	count := 0
	for {
		m, ok := diff.Next()
		if !ok {
			break
		}
		count++
		fmt.Println("  •", m.MustSubstr("x"))
		// 4. Membership test: each emitted sentence must be re-checkable in
		//    O(n²·|doc|) without enumeration.
		sp, _ := m.Span("x")
		ok2, err := reloaded.MatchesAt(doc, map[string]spanjoin.Span{"x": sp})
		if err != nil || !ok2 {
			log.Fatalf("membership check failed: %v %v", ok2, err)
		}
	}
	// spanlint/closecheck: read Err after the drain loop.
	if err := diff.Err(); err != nil {
		log.Fatal(err)
	}
	if count == 0 {
		fmt.Println("  (none in this document)")
	}

	// 5. The same as a query, letting the Auto planner choose.
	q := spanjoin.NewQuery().
		AtomNamed("sen", spanjoin.SentencePattern("x")).
		AtomNamed("tok", spanjoin.TokenPattern("w", "police")).
		AtomNamed("sub", spanjoin.SubspanPattern("w", "x")).
		Project("x").
		MustBuild()
	fmt.Printf("\nquery plan: %v (acyclic=%v)\n", q.PlannedStrategy(), q.IsAcyclic())
	n, err := q.Count(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("police sentences (any country): %v\n", n)
}
