// Quickstart: extract (simplified) e-mail addresses with the regex formula
// of the paper's Example 2.5 — a pattern with nested capture variables —
// and stream the matches with polynomial delay.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"spanjoin"
)

func main() {
	// xmail captures the whole address, xuser and xdomain its parts
	// (Example 2.5's β, in spanjoin's ASCII syntax).
	pattern := `.* mail{user{[a-z]+}@domain{[a-z]+(\.[a-z]+)+}}([ .].*|\.)`
	sp, err := spanjoin.Compile(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pattern:  ", pattern)
	fmt.Println("variables:", sp.Vars())
	fmt.Println()

	doc := "dear team, please cc alice@example.org and bob@dev.example.net " +
		"on the report. archived under records@corp.org."

	// spanlint/ctxthread: the ctx-aware sibling keeps the example honest
	// about cancellation — real callers thread a request context here.
	it, err := sp.IterateCtx(context.Background(), doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches (deterministic radix order, polynomial delay):")
	for {
		m, ok := it.Next()
		if !ok {
			break
		}
		mail, _ := m.Span("mail")
		fmt.Printf("  %-28s user=%-8s domain=%-16s at %v\n",
			m.MustSubstr("mail"), m.MustSubstr("user"), m.MustSubstr("domain"), mail)
	}
	// spanlint/closecheck: Err separates cancellation from exhaustion.
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
}
