// Relextract runs the paper's introductory query (1): find sentences that
// contain both a Belgium address and the token "police", as a conjunctive
// query joining five regex atoms — a sentence splitter, an address
// annotator, the subspan relation (twice) and a token matcher — over a
// synthetic document.
//
// Run with: go run ./examples/relextract
package main

import (
	"fmt"
	"log"

	"spanjoin"
	"spanjoin/internal/workload"
)

func main() {
	doc := workload.Document(workload.Rand(2026), workload.DocumentOptions{
		Sentences:   12,
		AddressRate: 0.4,
		PoliceRate:  0.4,
	})
	fmt.Println("document:")
	fmt.Println(" ", doc)
	fmt.Println()

	// The query of the paper's equation (1), with x the sentence span,
	// (y, z) the address and its country, and w the police token:
	//
	//	π_x( α_sen[x] ⋈ α_adr[y,z] ⋈ α_sub[y,x] ⋈ α_plc[w] ⋈ α_sub[w,x] )
	q, err := spanjoin.NewQuery().
		AtomNamed("sen", `(.*\. )?x{[A-Za-z0-9 ]+\.}( .*)?`).
		AtomNamed("adr", `.*y{[A-Za-z]+ [0-9 ]+[A-Za-z]+ z{Belgium}}.*`).
		AtomNamed("subYX", `.*x{.*y{.*}.*}.*`).
		AtomNamed("plc", `.*w{police}.*`).
		AtomNamed("subWX", `.*x{.*w{.*}.*}.*`).
		Project("x").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// The automata plan compiles the whole CQ into one vset-automaton
	// (Thm 3.11) — the canonical plan would have to materialize the
	// Θ(|doc|⁴) subspan relation first (§3.2).
	matches, err := q.Evaluate(doc, spanjoin.WithStrategy(spanjoin.StrategyAutomata))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sentences with a Belgium address and 'police' (%d):\n", len(matches))
	for _, m := range matches {
		fmt.Println("  •", m.MustSubstr("x"))
	}
}
