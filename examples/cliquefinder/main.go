// Cliquefinder finds a k-clique in a random graph by evaluating the
// gamma-acyclic Boolean regex CQ of Theorem 3.2 over a string encoding of
// the edge set — the reduction showing that even gamma-acyclic regex CQs
// are NP-hard (and W[1]-hard in the number of atoms/variables). It also
// runs the Theorem 5.2 variant, whose query uses string-equality selections
// and whose size depends only on k.
//
// Run with: go run ./examples/cliquefinder
package main

import (
	"fmt"
	"log"

	"spanjoin/internal/core"
	"spanjoin/internal/reductions"
	"spanjoin/internal/workload"
)

func main() {
	r := workload.Rand(11)
	g := workload.RandomGraph(r, 9, 0.35)
	planted := workload.PlantClique(r, g, 3)
	fmt.Printf("graph: %d nodes, %d edges (planted 3-clique: %v)\n",
		g.N, len(g.Edges), planted)

	s := reductions.CliqueString(g)
	fmt.Printf("edge-set encoding: %d characters, e.g. %q...\n\n", len(s), s[:24])

	// Theorem 3.2: gamma-acyclic CQ whose δ atoms enumerate the nodes.
	q, err := reductions.CliqueQuery(g, 3)
	if err != nil {
		log.Fatal(err)
	}
	atoms, eqs, vars, bytes := reductions.QuerySize(q)
	fmt.Printf("Thm 3.2 query: %d atoms, %d equalities, %d variables, %d pattern bytes\n",
		atoms, eqs, vars, bytes)
	fmt.Println("  gamma-acyclic:", q.IsGammaAcyclic())
	nodes, ok, err := reductions.FindClique(g, 3, core.Options{Strategy: core.Canonical})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  3-clique found: %v %v\n\n", ok, nodes)

	// Theorem 5.2: same γ atom, but string equalities instead of δ atoms —
	// the query no longer depends on the graph.
	qe, err := reductions.CliqueEqQuery(g, 3)
	if err != nil {
		log.Fatal(err)
	}
	atoms, eqs, vars, bytes = reductions.QuerySize(qe)
	fmt.Printf("Thm 5.2 query: %d atom, %d equalities, %d variables, %d pattern bytes\n",
		atoms, eqs, vars, bytes)
	nodes, ok, err = reductions.FindCliqueEq(g, 3, core.Options{Strategy: core.Canonical})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  3-clique found: %v %v\n", ok, nodes)

	if _, bf := reductions.BruteForceClique(g, 3); bf != ok {
		log.Fatal("disagrees with brute force!")
	}
	fmt.Println("verified against brute-force search ✓")
}
