// Loganalysis joins three extractions over synthetic machine logs — the
// "machine log analysis" workload from the paper's introduction: an acyclic
// chain CQ whose atoms all have key attributes, the case where the paper's
// canonical relational evaluation (Thm 3.5, Yannakakis) shines.
//
// Run with: go run ./examples/loganalysis
package main

import (
	"fmt"
	"log"
	"strings"

	"spanjoin"
	"spanjoin/internal/workload"
)

func main() {
	doc := workload.Logs(workload.Rand(7), 40)
	fmt.Println("log sample:")
	for _, line := range strings.SplitN(doc, "\n", 4)[:3] {
		fmt.Println("  ", line)
	}
	fmt.Println("  ...")
	fmt.Println()

	// Chain CQ: an ERROR level token, the operation right of it, and the
	// record id right of the operation. The shape is acyclic; every atom is
	// polynomially bounded (key attributes), so the Auto planner picks the
	// canonical relational strategy with Yannakakis' algorithm.
	q, err := spanjoin.NewQuery().
		AtomNamed("err", `.*x{ERROR} op=.*`).
		AtomNamed("op", `.*x{[A-Z]+} op=y{[a-z]+} .*`).
		AtomNamed("id", `.*op=y{[a-z]+} id=z{[0-9a-f]+} .*`).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query acyclic:", q.IsAcyclic(), " gamma-acyclic:", q.IsGammaAcyclic())

	matches, err := q.Evaluate(doc) // StrategyAuto
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nERROR operations (%d):\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  op=%-6s id=%s\n", m.MustSubstr("y"), m.MustSubstr("z"))
	}
}
