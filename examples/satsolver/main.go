// Satsolver decides 3CNF satisfiability by evaluating a Boolean regex CQ on
// the single-character string "a" — the reduction behind Theorem 3.1, which
// shows that evaluating regex CQs is NP-complete even on one-character
// inputs. Each clause becomes an atom over empty captures placed before or
// after the 'a'; the join unifies shared variables across clauses, and any
// result tuple decodes to a satisfying assignment.
//
// Run with: go run ./examples/satsolver
package main

import (
	"fmt"
	"log"

	"spanjoin/internal/core"
	"spanjoin/internal/reductions"
	"spanjoin/internal/workload"
)

func main() {
	r := workload.Rand(6)
	cnf := workload.RandomCNF(r, 8, 30)
	fmt.Printf("random 3CNF: %d variables, %d clauses\n", cnf.NumVars, len(cnf.Clauses))
	for i, cl := range cnf.Clauses[:4] {
		fmt.Printf("  C%d = (%d ∨ %d ∨ %d)\n", i, cl[0], cl[1], cl[2])
	}
	fmt.Println("  ...")

	q, err := reductions.SATQuery(cnf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreduction: %d regex atoms over the input string %q\n",
		len(q.Atoms), reductions.SATString)

	asg, ok, err := reductions.Satisfiable(cnf, core.Options{Strategy: core.Automata})
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("result: UNSAT")
		return
	}
	fmt.Println("result: SAT, witness (decoded from capture spans):")
	fmt.Println("  " + reductions.FormatAssignment(asg))

	if _, bf := reductions.BruteForceSAT(cnf); bf != ok {
		log.Fatal("disagrees with brute force!")
	}
	fmt.Println("verified against brute-force search ✓")
}
