package spanjoin

import (
	"context"
	"time"

	"spanjoin/internal/corpus"
	"spanjoin/internal/resilience"
	"spanjoin/internal/wal"
)

// Durable corpora. Open recovers (or creates) a corpus backed by a data
// directory: every Add is written to a checksummed write-ahead log
// before it is acknowledged, a background snapshotter bounds recovery
// time, and reopening the directory after any crash replays the store
// back to exactly the acknowledged writes. See the README's "Durability
// and crash recovery" section.
//
// The empty document is a document: Add("") is logged, counted by Len,
// recovered on reopen, and evaluated like any other document. Durability
// never conflates "empty" with "absent".

// SyncPolicy says when an acknowledged Add is guaranteed to have reached
// stable storage: SyncAlways before the ack, SyncInterval within the
// sync interval, SyncNever only on graceful Close.
type SyncPolicy = wal.SyncPolicy

// The sync policies, from most to least durable.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// ParseSyncPolicy parses "always", "interval" or "never" — the flag
// syntax of spand's -fsync.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParsePolicy(s) }

// DurabilityStats is a snapshot of a durable corpus's write-ahead-log
// and snapshot counters; the zero value is what a RAM corpus reports.
type DurabilityStats = corpus.DurabilityStats

// WithSync sets the fsync policy of a durable corpus (default
// SyncAlways). Ignored by NewCorpus.
func WithSync(p SyncPolicy) CorpusOption {
	return func(c *corpusConfig) { c.syncPolicy = p }
}

// WithSyncInterval sets the SyncInterval cadence (default 100ms).
// Ignored by NewCorpus and by the other policies.
func WithSyncInterval(d time.Duration) CorpusOption {
	return func(c *corpusConfig) { c.syncInterval = d }
}

// WithSnapshotThreshold makes the background snapshotter write a new
// snapshot (and prune the log) whenever the active log grows past n
// bytes, bounding both disk use and recovery replay time. n ≤ 0
// disables automatic snapshots — Snapshot can still be called
// explicitly. Default 0. Ignored by NewCorpus.
func WithSnapshotThreshold(n int64) CorpusOption {
	return func(c *corpusConfig) { c.snapshotThreshold = n }
}

// Open recovers a durable corpus from dir, creating it (and the
// directory) when empty. All NewCorpus options apply, plus WithSync,
// WithSyncInterval and WithSnapshotThreshold.
//
// Recovery replays the newest snapshot and the log on top of it. A torn
// log tail — ordinary crash residue — is repaired silently; damaged
// state that cannot be crash residue (checksum failures mid-log, a
// corrupt snapshot) fails Open with an error matching ErrCorrupt rather
// than inventing or silently dropping documents.
func Open(dir string, opts ...CorpusOption) (*Corpus, error) {
	var cfg corpusConfig
	for _, o := range opts {
		o(&cfg)
	}
	store, err := corpus.OpenStore(dir, cfg.shards, wal.Options{
		Policy:   cfg.syncPolicy,
		Interval: cfg.syncInterval,
	}, cfg.snapshotThreshold)
	if err != nil {
		return nil, err
	}
	if cfg.indexed {
		store.EnableIndex()
	}
	if cfg.maxConcurrent > 0 {
		store.SetGate(resilience.NewGate(int64(cfg.maxConcurrent), cfg.maxQueue))
	}
	return newCorpus(store, cfg), nil
}

// Durable reports whether the corpus is backed by a data directory.
func (c *Corpus) Durable() bool { return c.store.Durable() }

// AddErr appends a document like Add but returns the durability error
// instead of panicking: on a durable corpus whose log has failed (a full
// disk, a failed fsync) every AddErr reports the sticky error and the
// document is not added. On a RAM corpus AddErr never fails.
func (c *Corpus) AddErr(doc string) (DocID, error) {
	return c.store.AddErrCtx(context.Background(), doc)
}

// AddErrCtx is AddErr with the caller's context: a traced context
// (WithTrace) records the write's WAL append and fsync stages. The
// context does not cancel the write.
func (c *Corpus) AddErrCtx(ctx context.Context, doc string) (DocID, error) {
	return c.store.AddErrCtx(ctx, doc)
}

// Sync forces every acknowledged Add to stable storage regardless of the
// fsync policy. No-op on a RAM corpus.
func (c *Corpus) Sync() error { return c.store.Sync() }

// Snapshot writes the corpus state to a new snapshot file and prunes the
// superseded log — the explicit form of WithSnapshotThreshold's
// background cycle. No-op on a RAM corpus.
func (c *Corpus) Snapshot() error { return c.store.Snapshot() }

// Close stops the background durability work and closes the log, first
// syncing it so a graceful shutdown is fully durable under every policy.
// Idempotent; no-op on a RAM corpus. The corpus must not be used after
// Close.
func (c *Corpus) Close() error { return c.store.Close() }

// DurabilityStats reports the durable layer's counters: log appends and
// fsyncs, snapshot cycles, and what recovery found at Open.
func (c *Corpus) DurabilityStats() DurabilityStats { return c.store.DurabilityStats() }
