//go:build failpoints

package spanjoin_test

// Fault-injection suite: runs under `go test -tags failpoints`, arming
// the resilience failpoints compiled into the corpus pipeline and
// asserting that every injected fault — panic, delay, cancellation, at
// every stage — degrades into its typed error at the public API, without
// leaking the worker pool and without disturbing concurrent queries.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"spanjoin"
	"spanjoin/internal/leakcheck"
	"spanjoin/internal/resilience"
)

// TestInjectedWorkerPanic poisons one document at the worker stage and
// checks the acceptance property end to end at the public API: the query
// that touches it gets *PanicError (naming the document), concurrent
// queries that skip it by prefilter finish cleanly, the process lives.
func TestInjectedWorkerPanic(t *testing.T) {
	c := spanjoin.NewCorpus()
	for i := 0; i < 24; i++ {
		c.Add(strings.Repeat("ab", 8))
	}
	poisonID := c.Add("zzzz")
	poison, _ := c.Doc(poisonID)

	disarm := resilience.Enable(resilience.FailWorkerDoc, resilience.PanicOnArg(poison, "injected"))
	defer disarm()

	// Healthy queries require the literal "ab", so the prefilter skips the
	// poisoned document before the failpoint stage.
	var wg sync.WaitGroup
	healthyErrs := make([]error, 3)
	for i := range healthyErrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ms, err := c.EvalSearch(context.Background(), `x{(ab)+}`)
			if err != nil {
				healthyErrs[i] = err
				return
			}
			// spanlint/closecheck: release the stream's pool slot.
			defer ms.Close()
			for {
				if _, ok := ms.Next(); !ok {
					break
				}
			}
			healthyErrs[i] = ms.Err()
		}()
	}

	ms, err := c.EvalSearch(context.Background(), `x{z+}`)
	if err != nil {
		t.Fatal(err)
	}
	// spanlint/closecheck: release the stream's pool slot.
	defer ms.Close()
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
	}
	var pe *spanjoin.PanicError
	if err := ms.Err(); !errors.As(err, &pe) {
		t.Fatalf("poisoned query Err = %v, want *PanicError", err)
	}
	if pe.Doc != uint64(poisonID) {
		t.Fatalf("PanicError.Doc = %d, want %d", pe.Doc, poisonID)
	}

	wg.Wait()
	for i, err := range healthyErrs {
		if err != nil {
			t.Fatalf("concurrent healthy query %d: %v", i, err)
		}
	}
}

// TestInjectedCacheFillPanic: a panic inside the compiled-query cache
// fill surfaces as a synchronous typed error, releases singleflight
// waiters, and does not poison the key.
func TestInjectedCacheFillPanic(t *testing.T) {
	c := spanjoin.NewCorpus()
	c.Add("abab")
	disarm := resilience.Enable(resilience.FailCacheFill, resilience.PanicAction("compile exploded"))
	_, err := c.EvalSearch(context.Background(), `x{(ab)+}`)
	var pe *spanjoin.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	disarm()
	ms, err := c.EvalSearch(context.Background(), `x{(ab)+}`)
	if err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	ms.Close()
	// spanlint/closecheck: the recovered key must not carry a stale fault.
	if err := ms.Err(); err != nil {
		t.Fatalf("after disarm Err = %v, want nil", err)
	}
}

// TestInjectedPlanPanic: a panic during snapshot planning (the index
// lookup stage) fails the call synchronously via the store-boundary
// recovery, not the process.
func TestInjectedPlanPanic(t *testing.T) {
	c := spanjoin.NewCorpus(spanjoin.WithIndex())
	c.Add("abab")
	sp := spanjoin.MustCompile(`.*x{(ab)+}.*`)
	disarm := resilience.Enable(resilience.FailPlanCandidates, resilience.PanicAction("index exploded"))
	defer disarm()
	_, err := c.EvalSpanner(context.Background(), sp)
	var pe *spanjoin.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

// TestInjectedCountPanic: the count pipeline converts an injected
// per-document panic into the same typed error.
func TestInjectedCountPanic(t *testing.T) {
	c := spanjoin.NewCorpus()
	for i := 0; i < 8; i++ {
		c.Add("abab")
	}
	c.Add("zz")
	disarm := resilience.Enable(resilience.FailCountDoc, resilience.PanicOnArg("zz", "injected"))
	defer disarm()
	_, err := c.CountSearch(context.Background(), `x{(ab|z)+}`)
	var pe *spanjoin.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

// TestInjectedDealerDelay: a slow dealer plus a short deadline — the
// deadline must fire, type correctly, and leave no goroutines behind.
func TestInjectedDealerDelay(t *testing.T) {
	disarm := resilience.Enable(resilience.FailDealer, resilience.SleepAction(30*time.Millisecond))
	defer disarm()
	leakcheck.Check(t, func() {
		c := spanjoin.NewCorpus(spanjoin.WithShards(4))
		for i := 0; i < 32; i++ {
			c.Add(strings.Repeat("ab", 8))
		}
		ms, err := c.EvalSearch(context.Background(), `x{(ab)+}`, spanjoin.WithTimeout(5*time.Millisecond))
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			return
		}
		// spanlint/closecheck: release the stream's pool slot.
		defer ms.Close()
		for {
			if _, ok := ms.Next(); !ok {
				break
			}
		}
		if err := ms.Err(); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Err = %v, want context.DeadlineExceeded", err)
		}
	})
}

// TestInjectedCancellation: a failpoint that cancels the query's own
// context mid-flight surfaces as context.Canceled, cleanly.
func TestInjectedCancellation(t *testing.T) {
	c := spanjoin.NewCorpus()
	for i := 0; i < 32; i++ {
		c.Add(strings.Repeat("ab", 8))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := resilience.Enable(resilience.FailWorkerDoc, func(any) { cancel() })
	defer disarm()
	leakcheck.Check(t, func() {
		ms, err := c.EvalSearch(ctx, `x{(ab)+}`)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want Canceled", err)
			}
			return
		}
		// spanlint/closecheck: release the stream's pool slot.
		defer ms.Close()
		for {
			if _, ok := ms.Next(); !ok {
				break
			}
		}
		if err := ms.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("Err = %v, want context.Canceled", err)
		}
	})
}

// TestInjectedDealerPanic: a panic in the dealer goroutine fails the
// query with *PanicError (NoDoc — not attributable to one document) and
// shuts the pool down.
func TestInjectedDealerPanic(t *testing.T) {
	disarm := resilience.Enable(resilience.FailDealer, resilience.PanicAction("dealer exploded"))
	defer disarm()
	leakcheck.Check(t, func() {
		c := spanjoin.NewCorpus(spanjoin.WithShards(4))
		for i := 0; i < 16; i++ {
			c.Add(strings.Repeat("ab", 8))
		}
		ms, err := c.EvalSearch(context.Background(), `x{(ab)+}`)
		if err != nil {
			t.Fatal(err)
		}
		// spanlint/closecheck: release the stream's pool slot.
		defer ms.Close()
		for {
			if _, ok := ms.Next(); !ok {
				break
			}
		}
		var pe *spanjoin.PanicError
		if err := ms.Err(); !errors.As(err, &pe) {
			t.Fatalf("Err = %v, want *PanicError", err)
		}
		if pe.Doc != resilience.NoDoc {
			t.Fatalf("dealer panic blamed doc %d, want NoDoc", pe.Doc)
		}
	})
}
