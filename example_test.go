package spanjoin_test

import (
	"bytes"
	"context"
	"fmt"

	"spanjoin"
)

// The basic extraction loop: compile a pattern with capture variables and
// stream its matches.
func ExampleCompile() {
	sp := spanjoin.MustCompile(`.* key{[a-z]+}=val{[0-9]+} .*`)
	it, _ := sp.Iterate("set timeout=30 now")
	for m, ok := it.Next(); ok; m, ok = it.Next() {
		fmt.Println(m.MustSubstr("key"), "->", m.MustSubstr("val"))
	}
	// spanlint/closecheck: a failure here must not read as exhaustion.
	if err := it.Err(); err != nil {
		fmt.Println("iterate failed:", err)
	}
	// Output:
	// timeout -> 30
}

// Evaluating one pattern over a whole corpus: documents live in a sharded
// store, the compiled pattern is cached, and results stream per document.
func ExampleCorpus() {
	c := spanjoin.NewCorpus(spanjoin.WithShards(4))
	ids := c.AddAll(
		"order id=alpha42 shipped",
		"no ids here",
		"retry id=beta7 queued",
	)
	byDoc, _ := c.EvalAll(context.Background(), `.*id=x{[a-z]+[0-9]+} .*`)
	for i, id := range ids {
		for _, m := range byDoc[id] {
			fmt.Println("doc", i, "->", m.MustSubstr("x"))
		}
	}
	fmt.Println("compiles:", c.CacheStats().Misses)
	// Output:
	// doc 0 -> alpha42
	// doc 2 -> beta7
	// compiles: 1
}

// CompileSearch wraps the pattern in Σ*·α·Σ*, matching anywhere.
func ExampleCompileSearch() {
	sp := spanjoin.MustCompileSearch(`x{ab}`)
	ms, _ := sp.Eval("abxab")
	for _, m := range ms {
		p, _ := m.Span("x")
		fmt.Println(p)
	}
	// Output:
	// [4,6⟩
	// [1,3⟩
}

// A conjunctive query joining two extractions on a shared variable, with a
// projection.
func ExampleNewQuery() {
	q := spanjoin.NewQuery().
		AtomNamed("runs", `.*x{a+}.*`).  // x is a run of a's ...
		AtomNamed("pairs", `.*x{aa}.*`). // ... of length exactly 2
		Project("x").
		MustBuild()
	ms, _ := q.Evaluate("baab aa")
	for _, m := range ms {
		p, _ := m.Span("x")
		fmt.Println(p, m.MustSubstr("x"))
	}
	// Output:
	// [2,4⟩ aa
	// [6,8⟩ aa
}

// String-equality selections compare substrings, not positions: the two
// variables below match distinct occurrences of the same word.
func ExampleQueryBuilder_Equal() {
	q := spanjoin.NewQuery().
		AtomNamed("two", `x{[a-z]+} .* y{[a-z]+}`).
		Equal("x", "y").
		MustBuild()
	ms, _ := q.Evaluate("echo foo echo")
	for _, m := range ms {
		fmt.Println(m.MustSubstr("x"))
	}
	// Output:
	// echo
}

// Joins compare spans: the composed spanner keeps only assignments where
// both inputs place x at the same positions.
func ExampleJoin() {
	runs := spanjoin.MustCompileSearch("x{b+}")
	caps := spanjoin.MustCompile("..x{..}..") // x = exact middle of a 6-char doc
	j, _ := spanjoin.Join(runs, caps)
	ms, _ := j.Eval("abbbba")
	for _, m := range ms {
		p, _ := m.Span("x")
		fmt.Println(p, m.MustSubstr("x"))
	}
	// Output:
	// [3,5⟩ bb
}

// Save and Load round-trip a compiled spanner, e.g. to cache an expensive
// join.
func ExampleSpanner_Save() {
	a := spanjoin.MustCompileSearch("x{ab+}")
	var buf bytes.Buffer
	_ = a.Save(&buf)
	back, _ := spanjoin.Load(&buf)
	ms, _ := back.Eval("xabbx")
	fmt.Println(len(ms))
	// Output:
	// 2
}

// MatchesAt answers membership for one concrete assignment without
// enumerating anything else.
func ExampleSpanner_MatchesAt() {
	sp := spanjoin.MustCompileSearch("x{a+}")
	ok, _ := sp.MatchesAt("baaab", map[string]spanjoin.Span{
		"x": {Start: 2, End: 5},
	})
	fmt.Println(ok)
	// Output:
	// true
}

// Paginating a corpus-wide result set: each page costs one ranked DAG
// descent into its first document plus a counting sweep — never an
// enumeration of the results before (or after) the window — and the
// exact total rides along. The compiled query is cached across pages.
func ExampleCorpus_pagination() {
	c := spanjoin.NewCorpus(spanjoin.WithShards(1))
	c.AddAll(
		"aa log",
		"log only",
		"aaa log",
	)
	const pattern = `.*x{a+}.*`
	for offset := uint64(0); ; offset += 3 {
		page, _ := c.EvalPage(context.Background(), pattern, offset, 3)
		if len(page.Matches) == 0 {
			break
		}
		fmt.Printf("page at %d (of %v total):\n", offset, page.Total)
		for _, m := range page.Matches {
			p, _ := m.Match.Span("x")
			fmt.Println("  doc", m.Doc, "x =", p)
		}
	}
	st := c.CacheStats()
	fmt.Printf("compiles: %d, cache hits: %d\n", st.Misses, st.Hits)
	// Output:
	// page at 0 (of 9 total):
	//   doc 0 x = [2,3⟩
	//   doc 0 x = [1,3⟩
	//   doc 0 x = [1,2⟩
	// page at 3 (of 9 total):
	//   doc 2 x = [3,4⟩
	//   doc 2 x = [2,4⟩
	//   doc 2 x = [2,3⟩
	// page at 6 (of 9 total):
	//   doc 2 x = [1,4⟩
	//   doc 2 x = [1,3⟩
	//   doc 2 x = [1,2⟩
	// compiles: 1, cache hits: 3
}
