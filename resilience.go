package spanjoin

import (
	"context"
	"errors"
	"time"

	"spanjoin/internal/core"
	"spanjoin/internal/resilience"
)

// Resilience surface of the engine: typed failure modes, per-query
// limits, and corpus admission control. See the README's "Operational
// limits and failure modes" section for how they compose.

// ErrOverloaded is returned synchronously by corpus evaluations and
// counts when the admission gate (WithMaxConcurrent) is at capacity and
// its wait queue (WithMaxQueue) is full: the query is shed before any
// worker is spawned or any document touched. Detect with errors.Is.
var ErrOverloaded = resilience.ErrOverloaded

// ErrBudgetExceeded surfaces on a stream's Err (or from a count) when the
// evaluation ran out of its work budget (WithBudget). Results delivered
// before the budget ran out are valid partial output. Detect with
// errors.Is.
var ErrBudgetExceeded = resilience.ErrBudgetExceeded

// ErrCorrupt is returned by Open when the data directory's durable state
// cannot be recovered: a log checksum failure with intact records after
// it, a sequence gap, or a corrupt snapshot. It is deliberately distinct
// from a torn log tail — ordinary crash residue, which recovery repairs
// silently — and means the bytes on disk were damaged after they were
// written (bit rot, truncation by another program, a lying device).
// Detect with errors.Is; the wrapped message names the file and offset.
var ErrCorrupt = resilience.ErrCorrupt

// PanicError is a panic recovered inside the engine — in a corpus worker,
// the shard dealer, a cache fill, or an evaluator constructor — converted
// into an error on the failing query's stream. One poisoned document
// fails its own query; concurrent queries and the process are unaffected.
// Detect with errors.As; Doc names the offending document when the panic
// struck inside a per-document evaluation (resilience.NoDoc otherwise),
// and Stack carries the recovered goroutine's stack trace.
type PanicError = resilience.PanicError

// NoDoc marks a PanicError not attributable to a single document (a panic
// in the dealer or closer rather than in a shard worker).
const NoDoc = resilience.NoDoc

// GateStats is a snapshot of the admission gate's counters.
type GateStats = resilience.GateStats

// GateStats reports the corpus admission gate's counters: running
// evaluations, queued ones, and the cumulative number shed with
// ErrOverloaded. All zero when admission control is off.
func (c *Corpus) GateStats() GateStats { return c.store.GateStats() }

// WithMaxConcurrent bounds how many corpus evaluations and counts run at
// once (their worker pools, arenas and result buffers — the slot is held
// until the pool shuts down, not merely until the call returns). Excess
// queries wait in a bounded FIFO queue (WithMaxQueue, default 0) and past
// that are shed fast with ErrOverloaded. n ≤ 0 leaves admission
// unbounded.
func WithMaxConcurrent(n int) CorpusOption {
	return func(c *corpusConfig) { c.maxConcurrent = n }
}

// WithMaxQueue sets how many queries may wait for an admission slot
// (default 0: at capacity, shed immediately). Queued queries honor their
// deadline/cancellation while waiting and are admitted FIFO. Only
// meaningful together with WithMaxConcurrent.
func WithMaxQueue(n int) CorpusOption {
	return func(c *corpusConfig) { c.maxQueue = n }
}

// WithTimeout bounds an evaluation's wall-clock time, measured from the
// Eval call: admission wait, every graph build (aborted mid-sweep), and
// every result delivery all count. On expiry the stream stops with
// context.DeadlineExceeded on Err — results already streamed are valid
// partial output. d ≤ 0 means no timeout.
func WithTimeout(d time.Duration) Option {
	return func(o *core.Options) {
		if d > 0 {
			o.Timeout = d
		}
	}
}

// WithLimit caps how many results a corpus evaluation delivers: the
// stream ends after n results with a nil Err — a met limit is normal
// exhaustion, not a failure — and the worker pool stops promptly instead
// of computing results nobody will read. n ≤ 0 means unlimited.
func WithLimit(n int) Option {
	return func(o *core.Options) {
		if n > 0 {
			o.Limit = uint64(n)
		}
	}
}

// Failure classes: the engine's error taxonomy as wire-friendly labels.
// Services map them onto transport status codes (spand uses 429/504/413/
// 500) and clients map them back onto the typed sentinels, so errors.Is
// keeps working across a network hop.
const (
	FailureOverloaded = "overloaded" // ErrOverloaded: shed at admission
	FailureDeadline   = "deadline"   // context.DeadlineExceeded: WithTimeout expired
	FailureBudget     = "budget"     // ErrBudgetExceeded: work budget spent
	FailurePanic      = "panic"      // *PanicError: recovered engine panic
	FailureCanceled   = "canceled"   // context.Canceled: caller went away
	FailureCorrupt    = "corrupt"    // ErrCorrupt: durable state unrecoverable
)

// FailureClass names an error's place in the engine's failure taxonomy,
// or "" for errors outside it (compile errors, I/O). The class survives
// wrapping: any error that errors.Is/As-matches a taxonomy member gets
// that member's label, deadline taking precedence over bare cancellation.
func FailureClass(err error) string {
	var pe *PanicError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOverloaded):
		return FailureOverloaded
	case errors.Is(err, context.DeadlineExceeded):
		return FailureDeadline
	case errors.Is(err, ErrBudgetExceeded):
		return FailureBudget
	case errors.As(err, &pe):
		return FailurePanic
	case errors.Is(err, context.Canceled):
		return FailureCanceled
	case errors.Is(err, ErrCorrupt):
		return FailureCorrupt
	}
	return ""
}

// WithBudget caps an evaluation's work in abstract units: one unit per
// document byte scanned plus one per result delivered. A query that runs
// out stops with ErrBudgetExceeded on the stream's Err, keeping results
// already streamed. Budgets make cost explicit where timeouts are
// machine-dependent: the same budget sheds the same query on fast and
// slow hardware alike. n ≤ 0 means unbounded.
func WithBudget(n int) Option {
	return func(o *core.Options) {
		if n > 0 {
			o.Budget = uint64(n)
		}
	}
}
