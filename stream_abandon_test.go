package spanjoin_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"spanjoin"
	"spanjoin/internal/leakcheck"
)

// abandonCorpus builds a corpus big enough that a consumer can walk away
// mid-stream with workers still producing.
func abandonCorpus(t *testing.T) *spanjoin.Corpus {
	t.Helper()
	c := spanjoin.NewCorpus(spanjoin.WithShards(4), spanjoin.WithResultBuffer(2))
	for i := 0; i < 64; i++ {
		c.Add(fmt.Sprintf("padding %s mail %s tail", strings.Repeat("a", i%7), strings.Repeat("b", i%5)))
	}
	return c
}

// TestCorpusMatchesCloseThenErr is the satellite regression: a consumer
// that abandons a stream mid-way and Closes it must read a nil, stable
// Err — the engine's own shutdown (a context cancellation racing the
// close) must never surface as a spurious failure. Before the fix this
// was a scheduling accident: whether the closer goroutine recorded
// context.Canceled ahead of Close marking the stream closed decided what
// Err returned.
func TestCorpusMatchesCloseThenErr(t *testing.T) {
	c := abandonCorpus(t)
	leakcheck.Check(t, func() {
		for i := 0; i < 200; i++ {
			ms, err := c.Eval(context.Background(), `.*x{mail}.*`)
			if err != nil {
				t.Fatal(err)
			}
			// Read a few rows (i varies how deep), then walk away.
			for j := 0; j < i%5; j++ {
				if _, ok := ms.Next(); !ok {
					break
				}
			}
			ms.Close()
			if err := ms.Err(); err != nil {
				t.Fatalf("iter %d: Err after Close = %v, want nil", i, err)
			}
			// Stable across repeated reads and repeated Closes.
			ms.Close()
			if err := ms.Err(); err != nil {
				t.Fatalf("iter %d: second Err after Close = %v, want nil", i, err)
			}
		}
	})
}

// TestCorpusMatchesCloseErrHammer races Close against concurrent Next
// and Err callers (run under -race in CI). Whatever the interleaving,
// Err must settle to nil once the stream is closed without a real
// failure, and no goroutine may leak.
func TestCorpusMatchesCloseErrHammer(t *testing.T) {
	c := abandonCorpus(t)
	leakcheck.Check(t, func() {
		for i := 0; i < 60; i++ {
			ms, err := c.Eval(context.Background(), `.*x{mail}.*`)
			if err != nil {
				t.Fatal(err)
			}
			// Next is single-consumer; Close and Err are safe from any
			// goroutine concurrently with it — which is exactly the
			// abandonment interleaving this hammers.
			var wg sync.WaitGroup
			wg.Add(3)
			go func() {
				defer wg.Done()
				for {
					if _, ok := ms.Next(); !ok {
						return
					}
				}
			}()
			go func() { defer wg.Done(); ms.Err(); ms.Close() }()
			go func() { defer wg.Done(); time.Sleep(time.Duration(i%3) * time.Microsecond); ms.Close() }()
			wg.Wait()
			if err := ms.Err(); err != nil {
				t.Fatalf("iter %d: settled Err = %v, want nil", i, err)
			}
		}
	})
}

// TestCorpusMatchesCloseKeepsRealErrors pins the other side of the
// contract: Close must not launder a genuine failure. A deadline that
// fired before the close still reads as DeadlineExceeded afterwards.
func TestCorpusMatchesCloseKeepsRealErrors(t *testing.T) {
	c := abandonCorpus(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	ms, err := c.Eval(ctx, `.*x{mail}.*`, spanjoin.WithTimeout(time.Nanosecond))
	if err != nil {
		t.Skipf("evaluation failed synchronously: %v", err)
	}
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
	}
	errBefore := ms.Err()
	ms.Close()
	if errAfter := ms.Err(); errBefore != nil && errAfter == nil {
		t.Fatalf("Close erased a real failure: before %v, after nil", errBefore)
	}
}
