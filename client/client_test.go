package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spanjoin"
)

// flaky answers error statuses for the first fail requests, then serves
// a minimal valid /eval page.
func flaky(status int, fail int32) (*httptest.Server, *atomic.Int32) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= fail {
			w.WriteHeader(status)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"doc":0,"spans":{"x":{"start":0,"end":1,"text":"a"}}}` + "\n"))
		w.Write([]byte(`{"done":true,"delivered":1,"total":"1"}` + "\n"))
	}))
	return ts, &hits
}

// newFast builds a client with near-zero backoff and deterministic
// jitter, so retry tests don't sleep for real.
func newFast(t *testing.T, url string, opts ...Option) *Client {
	t.Helper()
	cl, err := New(url, append([]Option{WithBackoff(time.Microsecond)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	cl.jitter = func() float64 { return 0.5 }
	return cl
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	ts, hits := flaky(http.StatusServiceUnavailable, 2)
	defer ts.Close()
	cl := newFast(t, ts.URL)
	page, err := cl.Eval(context.Background(), EvalRequest{Pattern: "x{a}"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Matches) != 1 || page.Matches[0].Spans["x"].Text != "a" {
		t.Fatalf("bad page: %+v", page)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + 1 success)", got)
	}
}

func TestRetryOn429MapsToOverloadedWhenExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"corpus overloaded","class":"overloaded"}`))
	}))
	defer ts.Close()
	cl := newFast(t, ts.URL, WithRetries(2))
	_, err := cl.Eval(context.Background(), EvalRequest{Pattern: "x{a}"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want RemoteError with 429", err)
	}
	// The wire class unwraps onto the library sentinel.
	if !errors.Is(err, spanjoin.ErrOverloaded) {
		t.Fatalf("429 does not errors.Is ErrOverloaded: %v", err)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	ts, hits := flaky(http.StatusBadRequest, 1000)
	defer ts.Close()
	cl := newFast(t, ts.URL)
	if _, err := cl.Eval(context.Background(), EvalRequest{Pattern: "x{a"}); err == nil {
		t.Fatal("expected an error")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("400 was retried: server saw %d requests", got)
	}
}

func TestRetriesDisabled(t *testing.T) {
	ts, hits := flaky(http.StatusServiceUnavailable, 1000)
	defer ts.Close()
	cl := newFast(t, ts.URL, WithRetries(0))
	if _, err := cl.Eval(context.Background(), EvalRequest{Pattern: "x{a}"}); err == nil {
		t.Fatal("expected an error")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("retries disabled but server saw %d requests", got)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ts, _ := flaky(http.StatusServiceUnavailable, 1000)
	defer ts.Close()
	cl := newFast(t, ts.URL, WithRetries(5), WithBackoff(time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Eval(ctx, EvalRequest{Pattern: "x{a}"})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled retry loop did not return")
	}
}

func TestRetryOnConnectionError(t *testing.T) {
	// A server that dies after the first request: the retry must re-dial
	// and the request fail only after retries are exhausted.
	ts, _ := flaky(http.StatusServiceUnavailable, 0)
	url := ts.URL
	ts.Close() // nothing listens: every attempt is a connection error
	cl := newFast(t, url, WithRetries(2))
	start := time.Now()
	if _, err := cl.Eval(context.Background(), EvalRequest{Pattern: "x{a}"}); err == nil {
		t.Fatal("expected a connection error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("connection-error retries took implausibly long")
	}
}

func TestRemoteErrorCarriesRequestID(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-Id", "req-42")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad pattern"}`))
	}))
	defer ts.Close()
	cl := newFast(t, ts.URL)
	_, err := cl.Eval(context.Background(), EvalRequest{Pattern: "x{a"})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.RequestID != "req-42" {
		t.Fatalf("RequestID = %q, want the server's X-Request-Id", re.RequestID)
	}
	if !strings.Contains(re.Error(), "req-42") {
		t.Fatalf("Error() omits the request ID: %q", re.Error())
	}
}

func TestPageCarriesTraceAndRequestID(t *testing.T) {
	var sawTrace atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawTrace.Store(r.URL.Query().Get("trace") == "1")
		w.Header().Set("X-Request-Id", "req-7")
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"doc":0,"spans":{"x":{"start":0,"end":1,"text":"a"}}}` + "\n"))
		w.Write([]byte(`{"done":true,"delivered":1,"total":"1","trace":[{"stage":"enumerate","start_ns":10,"dur_ns":12345,"items":1,"calls":1}]}` + "\n"))
	}))
	defer ts.Close()
	cl := newFast(t, ts.URL)
	page, err := cl.Eval(context.Background(), EvalRequest{Pattern: "x{a}", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sawTrace.Load() {
		t.Fatal("EvalRequest.Trace did not send trace=1")
	}
	if page.RequestID != "req-7" {
		t.Fatalf("Page.RequestID = %q", page.RequestID)
	}
	if len(page.Trace) != 1 || page.Trace[0].Stage != spanjoin.StageEnumerate || page.Trace[0].Dur != 12345 {
		t.Fatalf("Page.Trace = %+v", page.Trace)
	}
}

func TestEvalRequestValidation(t *testing.T) {
	cl := newFast(t, "http://127.0.0.1:1")
	if _, err := cl.Eval(context.Background(), EvalRequest{}); err == nil {
		t.Error("empty request must fail client-side")
	}
	if _, err := cl.Eval(context.Background(), EvalRequest{Cursor: "sj1.x", Pattern: "x{a}"}); err == nil {
		t.Error("cursor+pattern must fail client-side")
	}
	if _, err := New("not a url"); err == nil {
		t.Error("New accepted a bad URL")
	}
	if _, err := New("/just/a/path"); err == nil {
		t.Error("New accepted a scheme-less URL")
	}
}
