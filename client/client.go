// Package client is the Go client for the spand query service
// (spanjoin/server): typed requests and responses for /eval, /count,
// /sample and /stats, automatic retry with exponential backoff for
// retryable failures (connection errors, 429 sheds, 503s), and connection
// reuse through one shared keep-alive transport — many requests, few TCP
// handshakes.
//
// The server's failure taxonomy round-trips: a 429 surfaces as an error
// matching spanjoin.ErrOverloaded, a 504 as context.DeadlineExceeded, a
// 413 as spanjoin.ErrBudgetExceeded — errors.Is works on a RemoteError
// exactly as it does against the library, so callers move between
// embedded and remote evaluation without changing their error handling.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"spanjoin"
)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, instrumentation, test doubles). The default client shares
// one keep-alive transport across every request.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable request is re-sent after
// its first failure (default 3; 0 disables retry).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the first retry's delay (default 50ms); each further
// retry doubles it, with ±25% jitter so synchronized clients do not
// re-stampede a shedding server.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// Client talks to one spand server. It is safe for concurrent use.
type Client struct {
	base    *url.URL
	hc      *http.Client
	retries int
	backoff time.Duration
	jitter  func() float64 // 0..1; swapped out by tests for determinism
}

// New creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{
		base: u,
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}},
		retries: 3,
		backoff: 50 * time.Millisecond,
		jitter:  rand.Float64,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Span is one variable binding of a result row.
type Span struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

// Match is one result row: the document it came from and its variable
// bindings.
type Match struct {
	Doc   uint64          `json:"doc"`
	Spans map[string]Span `json:"spans"`
}

// Stats mirrors one evaluation's prefilter counters.
type Stats struct {
	Scanned      uint64 `json:"scanned"`
	Skipped      uint64 `json:"skipped"`
	SkippedIndex uint64 `json:"skipped_index"`
}

// Page is one /eval response: the window's matches, the exact total (nil
// in budget mode, which skips the counting sweep), the next page's cursor
// token ("" when the sequence is exhausted), and the evaluation counters.
type Page struct {
	Matches []Match
	Total   *big.Int
	Next    string
	Stats   Stats
	// Trace is the server's per-stage timing breakdown, present only when
	// the request set EvalRequest.Trace.
	Trace []spanjoin.StageSpan
	// RequestID is the server's ID for this request (the X-Request-Id
	// response header), correlating the page with server logs and the
	// slow-query log.
	RequestID string
}

// EvalRequest parameterizes /eval. Zero values mean "server default".
type EvalRequest struct {
	// Pattern is the query; required unless Cursor resumes a prior page.
	Pattern string
	// Mode is "anchor" (whole-document, default) or "search" (substring).
	Mode string
	// Offset is the rank of the window's first result.
	Offset uint64
	// Cursor resumes pagination from a prior page's Next token; it
	// carries pattern, mode and offset, which must then be left zero.
	Cursor string
	// Limit is the window size (clamped by the server).
	Limit int
	// Timeout bounds the evaluation server-side (clamped by the server).
	Timeout time.Duration
	// Budget, when > 0, bounds the evaluation's work server-side; a spent
	// budget returns the partial page alongside an error matching
	// spanjoin.ErrBudgetExceeded.
	Budget int
	// Trace asks the server for the per-stage timing breakdown, returned
	// on Page.Trace.
	Trace bool
}

// RemoteError is a failure reported by the server, carrying the HTTP
// status, the engine's failure class, and — for recovered engine panics —
// the poisoned document's ID.
type RemoteError struct {
	Status  int
	Class   string
	Message string
	Doc     *uint64
	// RequestID is the server's ID for the failed request (the
	// X-Request-Id response header) — quote it when reporting the failure
	// and the operator can find the exact request in the server's logs and
	// slow-query ring. Empty when the failure never reached the server.
	RequestID string
}

func (e *RemoteError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("spand: %s (status %d, class %q, request %s)", e.Message, e.Status, e.Class, e.RequestID)
	}
	return fmt.Sprintf("spand: %s (status %d, class %q)", e.Message, e.Status, e.Class)
}

// Unwrap maps the failure class back onto the engine's typed sentinels,
// so errors.Is(err, spanjoin.ErrOverloaded) and friends work across the
// wire.
func (e *RemoteError) Unwrap() error {
	switch e.Class {
	case spanjoin.FailureOverloaded:
		return spanjoin.ErrOverloaded
	case spanjoin.FailureDeadline:
		return context.DeadlineExceeded
	case spanjoin.FailureBudget:
		return spanjoin.ErrBudgetExceeded
	case spanjoin.FailureCanceled:
		return context.Canceled
	case spanjoin.FailureCorrupt:
		return spanjoin.ErrCorrupt
	}
	return nil
}

// retryable reports whether a failed attempt is worth re-sending: network
// errors (the connection may have died under keep-alive), 429 (a shed is
// explicitly cheap and retryable) and 503. Budget, deadline and client
// errors are not — the retry would fail identically or double-spend.
func retryable(status int, err error) bool {
	if err != nil {
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// do issues one GET with the retry/backoff policy and returns the first
// non-retryable (or final) response. The caller owns the body.
func (c *Client) do(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := *c.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = q.Encode()
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		status := 0
		if err == nil {
			status = resp.StatusCode
			if status < 400 {
				return resp, nil
			}
			if !retryable(status, nil) || attempt >= c.retries {
				return resp, nil // the caller decodes the error body
			}
			// Retryable error status: the body is small, drain it so the
			// connection is reused for the retry.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = &RemoteError{Status: status, Message: http.StatusText(status), RequestID: resp.Header.Get(requestIDHeader)}
		} else {
			if !retryable(0, err) || attempt >= c.retries {
				return nil, err
			}
			lastErr = err
		}
		d := c.backoff << attempt
		d += time.Duration((c.jitter() - 0.5) * 0.5 * float64(d))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
		}
	}
}

// requestIDHeader is the server's per-request ID header, echoed on every
// response.
const requestIDHeader = "X-Request-Id"

// decodeError turns an error-status response into a *RemoteError.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var b struct {
		Error string  `json:"error"`
		Class string  `json:"class"`
		Doc   *uint64 `json:"doc"`
	}
	id := resp.Header.Get(requestIDHeader)
	msg := http.StatusText(resp.StatusCode)
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&b); err == nil && b.Error != "" {
		return &RemoteError{Status: resp.StatusCode, Class: b.Class, Message: b.Error, Doc: b.Doc, RequestID: id}
	}
	return &RemoteError{Status: resp.StatusCode, Message: msg, RequestID: id}
}

// trailerLine mirrors the server's NDJSON trailer.
type trailerLine struct {
	Done      bool                 `json:"done"`
	Delivered int                  `json:"delivered"`
	Total     string               `json:"total"`
	Next      string               `json:"next"`
	Stats     *Stats               `json:"stats"`
	Trace     []spanjoin.StageSpan `json:"trace"`
	Error     string               `json:"error"`
	Class     string               `json:"class"`
	Doc       *uint64              `json:"doc"`
}

// decodePage parses an NDJSON row stream plus trailer. A trailer carrying
// an error (budget mode's partial pages) returns the page alongside the
// reconstructed typed error.
func decodePage(resp *http.Response) (*Page, error) {
	defer resp.Body.Close()
	page := &Page{RequestID: resp.Header.Get(requestIDHeader)}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var tr *trailerLine
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var t trailerLine
		// Rows never carry "done"/"error"/"delivered"; probing for the
		// trailer first keeps row decoding unambiguous.
		if err := json.Unmarshal(line, &t); err == nil && (t.Done || t.Error != "" || t.Stats != nil) {
			tr = &t
			continue
		}
		var m Match
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("client: bad result row %q: %w", line, err)
		}
		page.Matches = append(page.Matches, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	if tr == nil {
		return nil, fmt.Errorf("client: response ended without a trailer (truncated stream?)")
	}
	if tr.Total != "" {
		t, ok := new(big.Int).SetString(tr.Total, 10)
		if !ok {
			return nil, fmt.Errorf("client: bad total %q", tr.Total)
		}
		page.Total = t
	}
	page.Next = tr.Next
	if tr.Stats != nil {
		page.Stats = *tr.Stats
	}
	page.Trace = tr.Trace
	if tr.Error != "" {
		return page, &RemoteError{Status: resp.StatusCode, Class: tr.Class, Message: tr.Error, Doc: tr.Doc, RequestID: page.RequestID}
	}
	return page, nil
}

// evalQuery renders an EvalRequest as URL parameters.
func evalQuery(req EvalRequest) (url.Values, error) {
	q := url.Values{}
	if req.Cursor != "" {
		if req.Pattern != "" || req.Mode != "" || req.Offset != 0 {
			return nil, fmt.Errorf("client: Cursor does not combine with Pattern/Mode/Offset")
		}
		q.Set("cursor", req.Cursor)
	} else {
		if req.Pattern == "" {
			return nil, fmt.Errorf("client: Pattern or Cursor is required")
		}
		q.Set("q", req.Pattern)
		if req.Mode != "" {
			q.Set("mode", req.Mode)
		}
		if req.Offset > 0 {
			q.Set("offset", strconv.FormatUint(req.Offset, 10))
		}
	}
	if req.Limit > 0 {
		q.Set("limit", strconv.Itoa(req.Limit))
	}
	if req.Timeout > 0 {
		q.Set("timeout", req.Timeout.String())
	}
	if req.Budget > 0 {
		q.Set("budget", strconv.Itoa(req.Budget))
	}
	if req.Trace {
		q.Set("trace", "1")
	}
	return q, nil
}

// Eval fetches one page of a corpus evaluation. Follow pagination by
// re-calling with EvalRequest{Cursor: page.Next} until Next is empty. In
// budget mode a partial page is returned alongside its typed error —
// check both.
func (c *Client) Eval(ctx context.Context, req EvalRequest) (*Page, error) {
	q, err := evalQuery(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, "/eval", q)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 && !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/x-ndjson") {
		return nil, decodeError(resp)
	}
	return decodePage(resp)
}

// EvalAll drains a paginated evaluation, following cursor tokens until
// the sequence is exhausted. Intended for result sets that fit in memory;
// for anything larger, page explicitly with Eval.
func (c *Client) EvalAll(ctx context.Context, req EvalRequest) ([]Match, error) {
	var out []Match
	for {
		page, err := c.Eval(ctx, req)
		if err != nil {
			return out, err
		}
		out = append(out, page.Matches...)
		if page.Next == "" {
			return out, nil
		}
		req = EvalRequest{Cursor: page.Next, Limit: req.Limit, Timeout: req.Timeout, Trace: req.Trace}
	}
}

// Count fetches the exact corpus-wide result count of pattern under mode
// ("anchor" or "search"; "" = anchor). Counts beyond uint64 arrive exact.
func (c *Client) Count(ctx context.Context, pattern, mode string, timeout time.Duration) (*big.Int, error) {
	q := url.Values{"q": {pattern}}
	if mode != "" {
		q.Set("mode", mode)
	}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	resp, err := c.do(ctx, "/count", q)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var b struct {
		Count json.Number `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		return nil, fmt.Errorf("client: bad /count response: %w", err)
	}
	n, ok := new(big.Int).SetString(b.Count.String(), 10)
	if !ok {
		return nil, fmt.Errorf("client: bad count %q", b.Count)
	}
	return n, nil
}

// Sample fetches n matches drawn i.i.d. uniformly from the corpus-wide
// result set; the same seed draws the same matches.
func (c *Client) Sample(ctx context.Context, pattern, mode string, n int, seed int64) ([]Match, error) {
	q := url.Values{"q": {pattern}, "n": {strconv.Itoa(n)}, "seed": {strconv.FormatInt(seed, 10)}}
	if mode != "" {
		q.Set("mode", mode)
	}
	resp, err := c.do(ctx, "/sample", q)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, decodeError(resp)
	}
	page, err := decodePage(resp)
	if err != nil {
		return nil, err
	}
	return page.Matches, nil
}

// ServerStats mirrors /stats.
type ServerStats struct {
	Docs    int  `json:"docs"`
	Shards  int  `json:"shards"`
	Indexed bool `json:"indexed"`
	Cache   struct {
		Hits     uint64  `json:"hits"`
		Misses   uint64  `json:"misses"`
		Resident int     `json:"resident"`
		HitRate  float64 `json:"hit_rate"`
	} `json:"cache"`
	Gate struct {
		Active   int64  `json:"active"`
		Queued   int    `json:"queued"`
		Rejected uint64 `json:"rejected"`
	} `json:"gate"`
	Server struct {
		Served uint64 `json:"served"`
		Failed uint64 `json:"failed"`
	} `json:"server"`
}

// Stats fetches the server's operational counters.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	resp, err := c.do(ctx, "/stats", url.Values{})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var s ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("client: bad /stats response: %w", err)
	}
	return &s, nil
}
