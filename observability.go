package spanjoin

import (
	"context"

	"spanjoin/internal/obs"
)

// Observability: every Corpus carries a metrics registry — counters,
// gauges and latency histograms wired through the admission gate, the
// prefilter, the worker pools, the compiled-query cache and (on a
// durable corpus) the write-ahead log — and any individual query can be
// traced per stage by attaching a QueryTrace to its context.
//
//	ctx, tr := spanjoin.WithTrace(ctx)
//	ms, _ := c.Eval(ctx, pattern)
//	... drain ...
//	for _, s := range tr.Spans() {
//	    fmt.Println(s.Stage, s.Dur)
//	}
//
// Tracing is opt-in per query: the hot enumeration path checks the
// context once per evaluation, never per tuple, so untraced queries pay
// one context lookup and nothing else.

// MetricsRegistry holds a corpus's metrics. Scrape it with
// WritePrometheus (text exposition format, what spand serves on
// /metrics) or Snapshot (structured points with exact p50/p90/p99 for
// histograms, what /stats embeds).
type MetricsRegistry = obs.Registry

// MetricPoint is one metric series in a MetricsRegistry.Snapshot.
type MetricPoint = obs.MetricPoint

// QueryTrace records per-stage wall time of the queries evaluated under
// a context carrying it. Safe for concurrent use; read it after the
// evaluation drains.
type QueryTrace = obs.Trace

// StageSpan is one stage of a QueryTrace: offset from the trace start,
// duration, and stage-specific item counts (documents scanned, results
// delivered, cache misses).
type StageSpan = obs.StageSpan

// The stages a traced corpus query can record.
const (
	// StageAdmission is the wait for an admission-gate slot.
	StageAdmission = obs.StageAdmission
	// StageCache is the compiled-query cache lookup; Items=1 on a miss.
	StageCache = obs.StageCache
	// StagePlanBuild is plan compilation, recorded only when this query
	// actually ran it (a cache miss on an unmemoized Spanner or Query).
	StagePlanBuild = obs.StagePlan
	// StagePrefilter is snapshot capture plus skip-index candidate
	// selection.
	StagePrefilter = obs.StagePrefilter
	// StageEnumerate is the worker pool's lifetime for a streaming
	// evaluation; Items counts delivered results.
	StageEnumerate = obs.StageEnumerate
	// StageCount is the worker pool's lifetime for a counting sweep;
	// Items counts scanned documents.
	StageCount = obs.StageCount
	// StageWALAppend is the write-ahead-log record write of a traced
	// AddErrCtx, excluding the policy fsync.
	StageWALAppend = obs.StageWALAppend
	// StageWALSync is the fsync a SyncAlways append paid.
	StageWALSync = obs.StageWALSync
	// StageSnapshot is a full snapshot cycle (spand's POST /snapshot).
	StageSnapshot = obs.StageSnapshot
)

// WithTrace attaches a fresh QueryTrace to the context: corpus
// evaluations, counts and durable writes under the returned context
// record their stages into it.
func WithTrace(ctx context.Context) (context.Context, *QueryTrace) {
	return obs.WithTrace(ctx)
}

// TraceFromContext returns the context's QueryTrace, or nil.
func TraceFromContext(ctx context.Context) *QueryTrace {
	return obs.FromContext(ctx)
}

// Metrics returns the corpus's metrics registry. It is always non-nil
// and registration is cheap, so callers may add their own instruments
// (spand adds per-endpoint request histograms).
func (c *Corpus) Metrics() *MetricsRegistry { return c.reg }
