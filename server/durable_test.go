package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spanjoin"
	"spanjoin/server"
)

// newDurableServer serves a durable corpus from a temp data directory.
func newDurableServer(t *testing.T, cfg server.Config) (*spanjoin.Corpus, string, string) {
	t.Helper()
	dir := t.TempDir()
	c, err := spanjoin.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ts := httptest.NewServer(server.New(c, cfg).Handler())
	t.Cleanup(ts.Close)
	return c, ts.URL, dir
}

// postAdd POSTs one document and decodes the ack.
func postAdd(t *testing.T, url, doc string) server.AddBody {
	t.Helper()
	resp, err := http.Post(url+"/add", "text/plain", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /add: status %d: %s", resp.StatusCode, b)
	}
	var ab server.AddBody
	if err := json.NewDecoder(resp.Body).Decode(&ab); err != nil {
		t.Fatal(err)
	}
	return ab
}

func TestAddDocRoundTrip(t *testing.T) {
	_, url, _ := newDurableServer(t, server.Config{})
	docs := []string{"first document", "", "third with mail inside"}
	ids := make([]uint64, len(docs))
	for i, d := range docs {
		ids[i] = postAdd(t, url, d).ID
	}
	for i, d := range docs {
		resp, err := http.Get(fmt.Sprintf("%s/doc?id=%d", url, ids[i]))
		if err != nil {
			t.Fatal(err)
		}
		var db server.DocBody
		if err := json.NewDecoder(resp.Body).Decode(&db); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if db.Text != d {
			t.Fatalf("GET /doc?id=%d = %q, want %q", ids[i], db.Text, d)
		}
	}
	// Unknown ID is 404.
	resp, err := http.Get(url + "/doc?id=999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /doc unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestAddAckIsDurable is the in-process half of the crash contract: a
// document acked over HTTP is present after the corpus is reopened.
func TestAddAckIsDurable(t *testing.T) {
	c, url, dir := newDurableServer(t, server.Config{})
	id := postAdd(t, url, "acked and therefore kept").ID
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := spanjoin.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Doc(spanjoin.DocID(id))
	if !ok || got != "acked and therefore kept" {
		t.Fatalf("acked doc after reopen = %q,%v", got, ok)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	_, url, _ := newDurableServer(t, server.Config{})
	for i := 0; i < 5; i++ {
		postAdd(t, url, fmt.Sprintf("doc %d", i))
	}
	resp, err := http.Post(url+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot: status %d", resp.StatusCode)
	}
	var sb server.SnapshotBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Snapshots != 1 {
		t.Fatalf("snapshots = %d, want 1", sb.Snapshots)
	}
}

func TestStatsDurabilitySection(t *testing.T) {
	_, url, dir := newDurableServer(t, server.Config{})
	postAdd(t, url, "one document")
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb server.StatsBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Durability == nil {
		t.Fatal("/stats has no durability section for a durable corpus")
	}
	if sb.Durability.Dir != dir || sb.Durability.Appends != 1 {
		t.Fatalf("durability section = %+v", sb.Durability)
	}

	// A RAM corpus omits the section.
	ramTS := httptest.NewServer(server.New(spanjoin.NewCorpus(), server.Config{}).Handler())
	defer ramTS.Close()
	resp2, err := http.Get(ramTS.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sb2 server.StatsBody
	if err := json.NewDecoder(resp2.Body).Decode(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.Durability != nil {
		t.Fatalf("RAM corpus /stats has a durability section: %+v", sb2.Durability)
	}
}

func TestAddBodyCap(t *testing.T) {
	_, url, _ := newDurableServer(t, server.Config{MaxDocBytes: 64})
	resp, err := http.Post(url+"/add", "text/plain", strings.NewReader(strings.Repeat("x", 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize POST /add: status %d, want 413", resp.StatusCode)
	}
}

// TestReadiness pins the up-vs-ready distinction: the listener answers
// immediately, but everything — including /healthz — is 503 with the
// recovery reason until the real handler is mounted, then 200.
func TestReadiness(t *testing.T) {
	rd := server.NewReadiness("recovering corpus: replaying log")
	ts := httptest.NewServer(rd)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unready /healthz: status %d, want 503", resp.StatusCode)
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("unready body not JSON: %q", body)
	}
	if !strings.Contains(eb.Error, "replaying log") {
		t.Fatalf("unready reason = %q, want the recovery reason", eb.Error)
	}
	// Queries are equally unavailable while unready.
	resp2, err := http.Get(ts.URL + "/eval?q=x%7Ba%7D")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unready /eval: status %d, want 503", resp2.StatusCode)
	}

	c := spanjoin.NewCorpus()
	c.Add("a")
	rd.Mount(server.New(c, server.Config{}).Handler())

	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("ready /healthz: status %d, want 200", resp3.StatusCode)
	}
}
