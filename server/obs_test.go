package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"spanjoin"
	"spanjoin/server"
)

// get fetches a URL, failing the test on transport errors, and returns
// the response with its fully-read body.
func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// sampleLine matches one Prometheus text-format sample: a metric name,
// an optional label set, and a float value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? -?[0-9.eE+-]+$`)

func TestMetricsExposition(t *testing.T) {
	_, cl, url := newTestServer(t, testDocs(), server.Config{})
	// Drive some traffic so the histograms have observations.
	_ = cl
	get(t, url+"/count?q="+testPattern)

	resp, body := get(t, url+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
	}

	// The acceptance series: request latency histogram (buckets + sum +
	// count, so p99 is derivable), gate/cache/doc series.
	for _, want := range []string{
		`spanjoin_http_request_seconds_bucket{handler="count",le="+Inf"}`,
		`spanjoin_http_request_seconds_sum{handler="count"}`,
		`spanjoin_http_request_seconds_count{handler="count"}`,
		`spanjoin_http_requests_total{handler="count",code="200"}`,
		"spanjoin_eval_seconds_bucket",
		"spanjoin_cache_hits_total",
		"spanjoin_cache_misses_total",
		"spanjoin_docs ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestRequestIDEchoedAndPropagated(t *testing.T) {
	_, _, url := newTestServer(t, testDocs(), server.Config{})

	// A generated ID comes back on every response.
	resp, _ := get(t, url+"/count?q="+testPattern)
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id on response")
	}

	// A client-supplied ID is echoed verbatim.
	req, _ := http.NewRequest("GET", url+"/count?q=x{a}", nil)
	req.Header.Set("X-Request-Id", "caller-chose-this")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "caller-chose-this" {
		t.Fatalf("X-Request-Id = %q, want the caller's", got)
	}
}

func TestTraceParamReturnsStageBreakdown(t *testing.T) {
	_, _, url := newTestServer(t, testDocs(), server.Config{})

	resp, body := get(t, url+"/count?trace=1&q="+testPattern)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count = %d: %s", resp.StatusCode, body)
	}
	var cb server.CountBody
	if err := json.Unmarshal([]byte(body), &cb); err != nil {
		t.Fatal(err)
	}
	stages := make(map[string]bool)
	for _, s := range cb.Trace {
		stages[string(s.Stage)] = true
	}
	for _, want := range []string{"cache", "plan_build", "prefilter", "count"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (got %v)", want, cb.Trace)
		}
	}

	// Without trace=1 the field is absent.
	_, body2 := get(t, url+"/count?q="+testPattern)
	if strings.Contains(body2, `"trace"`) {
		t.Fatalf("untraced count leaked a trace: %s", body2)
	}

	// /eval's trailer carries it too.
	_, nd := get(t, url+"/eval?trace=1&q="+testPattern)
	lines := strings.Split(strings.TrimRight(nd, "\n"), "\n")
	var tr server.Trailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Trace) == 0 {
		t.Fatal("traced /eval trailer has no stages")
	}
}

func TestSlowlogOverWire(t *testing.T) {
	// Threshold 1ns: every request is slow.
	_, _, url := newTestServer(t, testDocs(), server.Config{SlowQuery: time.Nanosecond})

	for i := 0; i < 3; i++ {
		get(t, url+"/count?q="+testPattern)
	}
	resp, body := get(t, url+"/debug/slowlog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/slowlog = %d", resp.StatusCode)
	}
	var sl server.SlowLogBody
	if err := json.Unmarshal([]byte(body), &sl); err != nil {
		t.Fatal(err)
	}
	if sl.ThresholdNS != 1 || sl.Total < 3 || len(sl.Entries) < 3 {
		t.Fatalf("slowlog = threshold %d, total %d, %d entries", sl.ThresholdNS, sl.Total, len(sl.Entries))
	}
	e := sl.Entries[0]
	if e.ID == "" || e.Endpoint == "" || e.Status != http.StatusOK || len(e.Stages) == 0 {
		t.Fatalf("slow entry incomplete: %+v", e)
	}

	// Disabled by default: the ring stays empty.
	_, _, url2 := newTestServer(t, testDocs(), server.Config{})
	get(t, url2+"/count?q="+testPattern)
	_, body2 := get(t, url2+"/debug/slowlog")
	var sl2 server.SlowLogBody
	if err := json.Unmarshal([]byte(body2), &sl2); err != nil {
		t.Fatal(err)
	}
	if sl2.Total != 0 || len(sl2.Entries) != 0 {
		t.Fatalf("disabled slowlog recorded entries: %+v", sl2)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	_, _, off := newTestServer(t, nil, server.Config{})
	resp, _ := get(t, off+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof = %d, want 404", resp.StatusCode)
	}

	_, _, on := newTestServer(t, nil, server.Config{EnablePprof: true})
	resp2, _ := get(t, on+"/debug/pprof/cmdline")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof with EnablePprof = %d, want 200", resp2.StatusCode)
	}
}

func TestStatsIncludesMetricsSnapshot(t *testing.T) {
	_, _, url := newTestServer(t, testDocs(), server.Config{})
	get(t, url+"/count?q="+testPattern)

	_, body := get(t, url+"/stats")
	var sb server.StatsBody
	if err := json.Unmarshal([]byte(body), &sb); err != nil {
		t.Fatal(err)
	}
	// Backward-compatible fields still populate...
	if sb.Docs == 0 || sb.Shards == 0 {
		t.Fatalf("stats lost its original fields: %+v", sb)
	}
	// ...and the metrics section carries the registry with quantiles.
	var h *spanjoin.MetricPoint
	for i := range sb.Metrics {
		p := &sb.Metrics[i]
		if p.Name == "spanjoin_http_request_seconds" && p.Labels["handler"] == "count" {
			h = p
			break
		}
	}
	if h == nil {
		t.Fatalf("stats metrics missing the count latency histogram; have %d points", len(sb.Metrics))
	}
	if h.Count == 0 || h.P99Sec <= 0 {
		t.Fatalf("histogram point unpopulated: %+v", h)
	}
}
