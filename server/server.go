// Package server exposes a Corpus over HTTP/JSON: the spand query
// service. Four endpoints cover the engine's read surface —
//
//	GET /eval   paginated evaluation, NDJSON result rows + a trailer
//	            carrying the exact total and an opaque cursor token;
//	            deep pages cost O(1) via the ranked Page machinery
//	GET /count  exact corpus-wide result count, no enumeration
//	GET /sample i.i.d. uniform matches from the corpus-wide result set
//	GET /stats  document, cache, admission-gate, server and (for a
//	            durable corpus) durability counters
//
// — plus the write/durability surface (POST /add, GET /doc, POST
// /snapshot) and the Readiness wrapper separating "process up" from
// "corpus recovered", both documented in durable.go.
//
// Every request threads a deadline into the engine (WithTimeout, clamped
// by the server's config), and the engine's typed failure taxonomy maps
// onto HTTP statuses: ErrOverloaded → 429, an exceeded deadline → 504,
// ErrBudgetExceeded → 413 (with the partial results in the body), and a
// recovered engine panic → 500 naming the poisoned document. Admission
// control (WithMaxConcurrent/WithMaxQueue on the corpus) sheds overload
// synchronously inside the engine, before a handler spawns any worker.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"spanjoin"
	"spanjoin/internal/obs"
)

// Config tunes a Server; the zero value selects every default.
type Config struct {
	// MaxPageSize clamps the per-request result window (default 1024):
	// /eval's limit and /sample's n. Larger requests are truncated, not
	// rejected — the cursor makes the rest reachable.
	MaxPageSize int
	// DefaultPageSize is /eval's window when the request names none
	// (default 100).
	DefaultPageSize int
	// DefaultTimeout bounds requests that name no timeout (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 2m).
	MaxTimeout time.Duration
	// MaxDocBytes clamps POST /add's request body (default 16 MiB);
	// larger documents answer 413 without being read fully.
	MaxDocBytes int64
	// SlowQuery is the slow-query threshold: requests at least this slow
	// are retained — with their full stage trace — in the ring served by
	// GET /debug/slowlog. ≤ 0 disables the slowlog (the default).
	SlowQuery time.Duration
	// SlowLogSize is the slowlog ring's capacity (default 128).
	SlowLogSize int
	// EnablePprof mounts the standard runtime profiles under
	// GET /debug/pprof/ — on this server's mux only, never the
	// DefaultServeMux. Off by default: profiles expose internals.
	EnablePprof bool
	// Logger, when set, gets one structured line per request: id,
	// handler, query, status, duration. nil disables request logging.
	Logger *slog.Logger
}

func (c Config) maxDocBytes() int64 {
	if c.MaxDocBytes <= 0 {
		return 16 << 20
	}
	return c.MaxDocBytes
}

func (c Config) maxPageSize() int {
	if c.MaxPageSize <= 0 {
		return 1024
	}
	return c.MaxPageSize
}

func (c Config) defaultPageSize() int {
	d := c.DefaultPageSize
	if d <= 0 {
		d = 100
	}
	if m := c.maxPageSize(); d > m {
		d = m
	}
	return d
}

func (c Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout <= 0 {
		return 30 * time.Second
	}
	return c.DefaultTimeout
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout <= 0 {
		return 2 * time.Minute
	}
	return c.MaxTimeout
}

// Server serves a Corpus over HTTP. Create with New; it is safe for
// concurrent use (the corpus itself is, and the server adds only atomic
// counters).
type Server struct {
	corpus *spanjoin.Corpus
	cfg    Config
	mux    *http.ServeMux

	// Observability plumbing (see obs.go): the corpus's metrics registry
	// (the server adds its request metrics to it), the slow-query ring,
	// the optional request logger, and the request-ID mint.
	reg    *spanjoin.MetricsRegistry
	slow   *obs.SlowLog
	logger *slog.Logger
	idBase string
	reqSeq atomic.Uint64

	served atomic.Uint64 // requests answered 2xx
	failed atomic.Uint64 // requests answered with any error status
}

// New wraps a corpus in a query server.
func New(c *spanjoin.Corpus, cfg Config) *Server {
	s := &Server{
		corpus: c,
		cfg:    cfg,
		mux:    http.NewServeMux(),
		reg:    c.Metrics(),
		slow:   obs.NewSlowLog(cfg.slowLogSize(), cfg.SlowQuery),
		logger: cfg.Logger,
		idBase: strconv.FormatInt(time.Now().UnixNano(), 36),
	}
	handle := func(pattern, name string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(name, h))
	}
	handle("GET /eval", "eval", s.handleEval)
	handle("GET /count", "count", s.handleCount)
	handle("GET /sample", "sample", s.handleSample)
	handle("GET /stats", "stats", s.handleStats)
	handle("POST /add", "add", s.handleAdd)
	handle("GET /doc", "doc", s.handleDoc)
	handle("POST /snapshot", "snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	if cfg.EnablePprof {
		s.mountPprof()
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the server's HTTP handler, mountable under any mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Span is one variable binding of a result row.
type Span struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

// Row is one NDJSON result line of /eval and /sample.
type Row struct {
	Doc   uint64          `json:"doc"`
	Spans map[string]Span `json:"spans"`
}

// RowOf converts a corpus match to its wire row. Exported so tests (and
// embedding services) can assert the wire encoding is byte-identical to a
// direct library evaluation.
func RowOf(cm spanjoin.CorpusMatch) Row {
	row := Row{Doc: uint64(cm.Doc), Spans: make(map[string]Span, len(cm.Match.Vars()))}
	for _, v := range cm.Match.Vars() {
		sp, _ := cm.Match.Span(v)
		text, _ := cm.Match.Substr(v)
		row.Spans[v] = Span{Start: sp.Start, End: sp.End, Text: text}
	}
	return row
}

// Stats is one /eval evaluation's prefilter/work counters on the wire.
type Stats struct {
	Scanned      uint64 `json:"scanned"`
	Skipped      uint64 `json:"skipped"`
	SkippedIndex uint64 `json:"skipped_index"`
}

// Trailer is the final NDJSON line of /eval and /sample: pagination state
// plus, when the evaluation ended early, the failure that cut it short
// (the rows before it are valid partial output).
type Trailer struct {
	Done      bool    `json:"done"`
	Delivered int     `json:"delivered"`
	Total     string  `json:"total,omitempty"` // exact decimal; valid past uint64
	Next      string  `json:"next,omitempty"`  // cursor token; empty = exhausted
	Stats     *Stats  `json:"stats,omitempty"`
	Error     string  `json:"error,omitempty"`
	Class     string  `json:"class,omitempty"`
	Doc       *uint64 `json:"doc,omitempty"` // poisoned document, panic class only
	// Trace is the request's per-stage breakdown, present when the
	// request asked with trace=1.
	Trace []spanjoin.StageSpan `json:"trace,omitempty"`
}

// ErrorBody is the JSON body of a request that failed before any result
// row was written.
type ErrorBody struct {
	Error string  `json:"error"`
	Class string  `json:"class,omitempty"`
	Doc   *uint64 `json:"doc,omitempty"`
}

// StatusOf maps an engine error onto its HTTP status: the typed taxonomy
// first (429/504/413/500/499), then ErrBadCursor and everything else —
// necessarily bad input: patterns that do not compile, malformed
// parameters — onto 400. The annotation below makes spanlint's taxonomy
// analyzer verify the switch handles every declared failure class, so a
// class added to the taxonomy cannot ship without a status mapping.
//
//spanjoin:taxonomy-map
func StatusOf(err error) int {
	switch spanjoin.FailureClass(err) {
	case spanjoin.FailureOverloaded:
		return http.StatusTooManyRequests
	case spanjoin.FailureDeadline:
		return http.StatusGatewayTimeout
	case spanjoin.FailureBudget:
		return http.StatusRequestEntityTooLarge
	case spanjoin.FailurePanic:
		return http.StatusInternalServerError
	case spanjoin.FailureCanceled:
		return 499 // client closed request (nginx convention)
	case spanjoin.FailureCorrupt:
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// panicDoc extracts the poisoned document's ID from a panic-class error.
func panicDoc(err error) *uint64 {
	var pe *spanjoin.PanicError
	if errors.As(err, &pe) && pe.Doc != spanjoin.NoDoc {
		d := pe.Doc
		return &d
	}
	return nil
}

// writeError answers a request that failed before any row was streamed.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.failed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(StatusOf(err))
	json.NewEncoder(w).Encode(ErrorBody{Error: err.Error(), Class: spanjoin.FailureClass(err), Doc: panicDoc(err)})
}

// badRequest is writeError for request-validation failures.
func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.writeError(w, fmt.Errorf(format, args...))
}

// timeoutOf resolves a request's deadline: the timeout parameter when
// given (clamped to MaxTimeout), the server default otherwise. Every
// evaluation gets one — no request runs unbounded.
func (s *Server) timeoutOf(r *http.Request) (time.Duration, error) {
	p := r.URL.Query().Get("timeout")
	if p == "" {
		return s.cfg.defaultTimeout(), nil
	}
	d, err := time.ParseDuration(p)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 500ms)", p)
	}
	if m := s.cfg.maxTimeout(); d > m {
		d = m
	}
	return d, nil
}

// modeOf validates the compilation mode parameter.
func modeOf(r *http.Request) (string, error) {
	switch m := r.URL.Query().Get("mode"); m {
	case "", "anchor":
		return "anchor", nil
	case "search":
		return "search", nil
	default:
		return "", fmt.Errorf("bad mode %q (want anchor or search)", m)
	}
}

// pageLimitOf resolves /eval's limit and /sample's n against the
// configured page clamp.
func (s *Server) pageLimitOf(r *http.Request, param string, def int) (int, error) {
	p := r.URL.Query().Get(param)
	if p == "" {
		return def, nil
	}
	n, err := strconv.Atoi(p)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad %s %q (want a positive integer)", param, p)
	}
	if m := s.cfg.maxPageSize(); n > m {
		n = m
	}
	return n, nil
}

// ndjson starts a streamed NDJSON response.
func ndjson(w http.ResponseWriter, status int) *json.Encoder {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(status)
	return json.NewEncoder(w)
}

// handleEval serves one page of a corpus evaluation as NDJSON: result
// rows, then a trailer with the exact total and the next page's cursor
// token. Pagination state lives entirely in the token — the server keeps
// nothing per client, and a resumed token is one O(1)-per-page ranked
// descent, not a re-enumeration. With budget set the page instead runs
// the streaming evaluator under WithBudget/WithLimit; a spent budget
// answers 413 with the partial rows in the body.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	timeout, err := s.timeoutOf(r)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	limit, err := s.pageLimitOf(r, "limit", s.cfg.defaultPageSize())
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}

	var cur spanjoin.Cursor
	if tok := q.Get("cursor"); tok != "" {
		if q.Get("q") != "" || q.Get("mode") != "" || q.Get("offset") != "" {
			s.badRequest(w, "cursor does not combine with q/mode/offset (the token carries all three)")
			return
		}
		if cur, err = spanjoin.ParseCursor(tok); err != nil {
			s.writeError(w, err)
			return
		}
	} else {
		pattern := q.Get("q")
		if pattern == "" {
			s.badRequest(w, "q is required (the pattern to evaluate)")
			return
		}
		mode, err := modeOf(r)
		if err != nil {
			s.badRequest(w, "%v", err)
			return
		}
		var offset uint64
		if p := q.Get("offset"); p != "" {
			if offset, err = strconv.ParseUint(p, 10, 64); err != nil {
				s.badRequest(w, "bad offset %q (want a uint64)", p)
				return
			}
		}
		cur = spanjoin.Cursor{Mode: mode, Pattern: pattern, Offset: offset}
	}

	if p := q.Get("budget"); p != "" {
		budget, err := strconv.Atoi(p)
		if err != nil || budget < 1 {
			s.badRequest(w, "bad budget %q (want a positive integer)", p)
			return
		}
		if cur.Offset > 0 {
			s.badRequest(w, "budget does not combine with offset/cursor pagination")
			return
		}
		s.evalBudgeted(w, r, cur, limit, budget, timeout)
		return
	}

	page, next, more, err := s.corpus.EvalCursor(r.Context(), cur, limit, spanjoin.WithTimeout(timeout))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.served.Add(1)
	enc := ndjson(w, http.StatusOK)
	for _, cm := range page.Matches {
		enc.Encode(RowOf(cm))
	}
	t := Trailer{
		Done:      true,
		Delivered: len(page.Matches),
		Total:     page.Total.String(),
		Stats:     &Stats{Scanned: page.Stats.Scanned, Skipped: page.Stats.Skipped, SkippedIndex: page.Stats.SkippedIndex},
		Trace:     traceSpans(r),
	}
	if more {
		t.Next = next.Token()
	}
	enc.Encode(t)
}

// evalBudgeted runs /eval's streaming mode: the whole window is collected
// under the work budget before any byte is written, so a budget (or
// deadline, or panic) that fires mid-evaluation still maps onto a real
// HTTP status — 413 carrying the partial rows, per the error contract.
func (s *Server) evalBudgeted(w http.ResponseWriter, r *http.Request, cur spanjoin.Cursor, limit, budget int, timeout time.Duration) {
	opts := []spanjoin.Option{spanjoin.WithTimeout(timeout), spanjoin.WithLimit(limit), spanjoin.WithBudget(budget)}
	var (
		ms  *spanjoin.CorpusMatches
		err error
	)
	switch cur.Mode {
	case "", "anchor":
		ms, err = s.corpus.Eval(r.Context(), cur.Pattern, opts...)
	case "search":
		ms, err = s.corpus.EvalSearch(r.Context(), cur.Pattern, opts...)
	default:
		s.badRequest(w, "unknown mode %q", cur.Mode)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer ms.Close()
	rows := make([]Row, 0, limit)
	for {
		cm, ok := ms.Next()
		if !ok {
			break
		}
		rows = append(rows, RowOf(cm))
	}
	evalErr := ms.Err()
	st := ms.Stats()

	status := http.StatusOK
	if evalErr != nil {
		status = StatusOf(evalErr)
		s.failed.Add(1)
	} else {
		s.served.Add(1)
	}
	enc := ndjson(w, status)
	for i := range rows {
		enc.Encode(rows[i])
	}
	t := Trailer{
		Done:      evalErr == nil,
		Delivered: len(rows),
		Stats:     &Stats{Scanned: st.Scanned, Skipped: st.Skipped, SkippedIndex: st.SkippedIndex},
		Trace:     traceSpans(r),
	}
	if evalErr != nil {
		t.Error = evalErr.Error()
		t.Class = spanjoin.FailureClass(evalErr)
		t.Doc = panicDoc(evalErr)
	}
	enc.Encode(t)
}

// CountBody is /count's response.
type CountBody struct {
	Count json.Number `json:"count"` // exact decimal; valid past uint64
	// Trace is the request's per-stage breakdown, present with trace=1.
	Trace []spanjoin.StageSpan `json:"trace,omitempty"`
}

// handleCount serves the exact corpus-wide result count — the ranked DP
// through the shard workers, no enumeration anywhere.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	pattern := r.URL.Query().Get("q")
	if pattern == "" {
		s.badRequest(w, "q is required (the pattern to count)")
		return
	}
	mode, err := modeOf(r)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	timeout, err := s.timeoutOf(r)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	var n spanjoin.MatchCount
	if mode == "search" {
		n, err = s.corpus.CountSearch(r.Context(), pattern, spanjoin.WithTimeout(timeout))
	} else {
		n, err = s.corpus.Count(r.Context(), pattern, spanjoin.WithTimeout(timeout))
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(CountBody{Count: json.Number(n.String()), Trace: traceSpans(r)})
}

// handleSample serves n i.i.d. uniform matches from the corpus-wide
// result set as NDJSON rows plus a trailer. The same seed draws the same
// matches, so sampling is reproducible over the wire.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pattern := q.Get("q")
	if pattern == "" {
		s.badRequest(w, "q is required (the pattern to sample)")
		return
	}
	mode, err := modeOf(r)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	timeout, err := s.timeoutOf(r)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	n, err := s.pageLimitOf(r, "n", 1)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	seed := int64(1)
	if p := q.Get("seed"); p != "" {
		if seed, err = strconv.ParseInt(p, 10, 64); err != nil || seed < 0 {
			s.badRequest(w, "bad seed %q (want a non-negative integer)", p)
			return
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var ms []spanjoin.CorpusMatch
	if mode == "search" {
		ms, err = s.corpus.SampleSearch(r.Context(), pattern, rng, n, spanjoin.WithTimeout(timeout))
	} else {
		ms, err = s.corpus.Sample(r.Context(), pattern, rng, n, spanjoin.WithTimeout(timeout))
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.served.Add(1)
	enc := ndjson(w, http.StatusOK)
	for _, cm := range ms {
		enc.Encode(RowOf(cm))
	}
	enc.Encode(Trailer{Done: true, Delivered: len(ms), Trace: traceSpans(r)})
}

// StatsBody is /stats' response: corpus shape, compiled-query cache,
// admission gate and server request counters.
type StatsBody struct {
	Docs    int  `json:"docs"`
	Shards  int  `json:"shards"`
	Indexed bool `json:"indexed"`
	Cache   struct {
		Hits     uint64  `json:"hits"`
		Misses   uint64  `json:"misses"`
		Resident int     `json:"resident"`
		HitRate  float64 `json:"hit_rate"`
	} `json:"cache"`
	Gate struct {
		Active   int64  `json:"active"`
		Queued   int    `json:"queued"`
		Rejected uint64 `json:"rejected"`
	} `json:"gate"`
	Server struct {
		Served uint64 `json:"served"`
		Failed uint64 `json:"failed"`
	} `json:"server"`
	// Durability is present only for a corpus opened from a data
	// directory (spand -data); RAM corpora omit the section.
	Durability *spanjoin.DurabilityStats `json:"durability,omitempty"`
	// Metrics is the registry snapshot — every series /metrics exposes,
	// with exact p50/p90/p99 precomputed for histograms. /metrics is the
	// machine-readable (Prometheus) superset; this section serves humans
	// and tests. Earlier fields are unchanged, so pre-existing /stats
	// consumers keep working.
	Metrics []spanjoin.MetricPoint `json:"metrics"`
}

// handleStats serves the operational counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var b StatsBody
	b.Docs = s.corpus.Len()
	b.Shards = s.corpus.NumShards()
	b.Indexed = s.corpus.Indexed()
	cs := s.corpus.CacheStats()
	b.Cache.Hits, b.Cache.Misses, b.Cache.Resident, b.Cache.HitRate = cs.Hits, cs.Misses, cs.Resident, cs.HitRate()
	gs := s.corpus.GateStats()
	b.Gate.Active, b.Gate.Queued, b.Gate.Rejected = gs.Active, gs.Queued, gs.Rejected
	b.Server.Served, b.Server.Failed = s.served.Load(), s.failed.Load()
	if s.corpus.Durable() {
		ds := s.corpus.DurabilityStats()
		b.Durability = &ds
	}
	b.Metrics = s.reg.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(b)
}
