//go:build failpoints

package server_test

// Fault-injection suite for the HTTP surface: runs under
// `go test -tags failpoints ./server`. A panic injected into an engine
// worker mid-request must fail exactly that request — 500, panic class,
// poisoned document named — while concurrent requests against the same
// server complete normally and the process survives.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"spanjoin"
	"spanjoin/client"
	"spanjoin/internal/resilience"
	"spanjoin/server"
)

// poisonedServer builds a corpus where one document ("zzzz") is poisoned
// at the given failpoint, served over a real socket. Healthy queries use
// the literal "ab", which the prefilter resolves before the poisoned
// document is ever touched.
func poisonedServer(t *testing.T, failpoint string) (*client.Client, spanjoin.DocID) {
	t.Helper()
	c := spanjoin.NewCorpus()
	for i := 0; i < 24; i++ {
		c.Add(strings.Repeat("ab", 8))
	}
	poisonID := c.Add("zzzz")
	poison, _ := c.Doc(poisonID)
	disarm := resilience.Enable(failpoint, resilience.PanicOnArg(poison, "injected"))
	t.Cleanup(disarm)

	ts := httptest.NewServer(server.New(c, server.Config{}).Handler())
	t.Cleanup(ts.Close)
	cl, err := client.New(ts.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	return cl, poisonID
}

// checkPanicResponse asserts one failed request carries the full panic
// contract on the wire: 500, class "panic", the poisoned document's ID.
func checkPanicResponse(t *testing.T, err error, want spanjoin.DocID) {
	t.Helper()
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *client.RemoteError", err)
	}
	if re.Status != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", re.Status)
	}
	if re.Class != spanjoin.FailurePanic {
		t.Errorf("class %q, want %q", re.Class, spanjoin.FailurePanic)
	}
	if re.Doc == nil {
		t.Fatal("panic response names no document")
	}
	if spanjoin.DocID(*re.Doc) != want {
		t.Errorf("poisoned doc %d, want %d", *re.Doc, want)
	}
}

// TestWorkerPanicFailsOnlyThatRequest injects a panic into the counting
// worker (which every paged /eval runs through) and checks isolation:
// the request touching the poisoned document gets its typed 500 while
// concurrent healthy requests — paginating mid-flight on the same
// server — all complete.
func TestWorkerPanicFailsOnlyThatRequest(t *testing.T) {
	cl, poisonID := poisonedServer(t, resilience.FailCountDoc)
	ctx := context.Background()

	var wg sync.WaitGroup
	healthyErrs := make([]error, 4)
	for i := range healthyErrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Paginate in small windows so pages interleave with the
			// poisoned request.
			req := client.EvalRequest{Pattern: `x{(ab)+}`, Mode: "search", Limit: 3}
			for {
				page, err := cl.Eval(ctx, req)
				if err != nil {
					healthyErrs[i] = err
					return
				}
				if page.Next == "" {
					return
				}
				req = client.EvalRequest{Cursor: page.Next, Limit: 3}
			}
		}()
	}

	// The poisoned query matches every document, so its counting sweep
	// must visit "zzzz" and trip the failpoint.
	_, err := cl.Eval(ctx, client.EvalRequest{Pattern: `x{.*}`, Mode: "search", Limit: 3})
	checkPanicResponse(t, err, poisonID)
	wg.Wait()
	for i, herr := range healthyErrs {
		if herr != nil {
			t.Errorf("concurrent healthy request %d failed: %v", i, herr)
		}
	}

	// The server survives: the same healthy query still answers.
	if _, err := cl.Eval(ctx, client.EvalRequest{Pattern: `x{(ab)+}`, Mode: "search", Limit: 3}); err != nil {
		t.Fatalf("server did not survive the panic: %v", err)
	}
}

// TestStreamingPanicSurfacesInTrailer injects the panic into the
// streaming shard worker — the path /eval's budget mode runs — and
// checks the mid-stream failure arrives as a trailer error carrying the
// panic class and document, with the partial page intact.
func TestStreamingPanicSurfacesInTrailer(t *testing.T) {
	cl, poisonID := poisonedServer(t, resilience.FailWorkerDoc)
	// The query's literal requirement is the poisoned document's content,
	// so the stream cannot end (by limit or exhaustion) without the shard
	// worker entering it and tripping the failpoint.
	_, err := cl.Eval(context.Background(),
		client.EvalRequest{Pattern: `x{zzzz}`, Mode: "search", Limit: 100, Budget: 1 << 30})
	checkPanicResponse(t, err, poisonID)
}
