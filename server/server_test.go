package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spanjoin"
	"spanjoin/client"
	"spanjoin/server"
)

// newTestServer starts a spand server on a real TCP socket and returns
// it with a client pointed at it.
func newTestServer(t *testing.T, docs []string, cfg server.Config, copts ...spanjoin.CorpusOption) (*spanjoin.Corpus, *client.Client, string) {
	t.Helper()
	c := spanjoin.NewCorpus(copts...)
	c.AddAll(docs...)
	ts := httptest.NewServer(server.New(c, cfg).Handler())
	t.Cleanup(ts.Close)
	cl, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, cl, ts.URL
}

func testDocs() []string {
	docs := []string{
		"alice sent mail",
		"no matches here",
		"aa mail mail aa",
		"",
		"mail",
		"bb aa mail",
	}
	for i := 0; i < 20; i++ {
		docs = append(docs, fmt.Sprintf("filler %d mail tail", i))
	}
	return docs
}

const testPattern = `.*x{mail}.*`

// TestEvalRoundTripByteIdentical is the acceptance e2e: pagination over
// the socket, resumed through cursor tokens, must be byte-identical to
// driving Corpus.EvalSpannerPage directly — same rows, same order, same
// wire encoding.
func TestEvalRoundTripByteIdentical(t *testing.T) {
	corpus, cl, _ := newTestServer(t, testDocs(), server.Config{}, spanjoin.WithShards(3))
	sp, err := spanjoin.Compile(testPattern)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const limit = 4

	// Reference: the library's own pages, rendered through the same wire
	// conversion the server uses.
	var want []string
	for off := uint64(0); ; off += limit {
		page, err := corpus.EvalSpannerPage(ctx, sp, off, limit)
		if err != nil {
			t.Fatal(err)
		}
		for _, cm := range page.Matches {
			b, _ := json.Marshal(server.RowOf(cm))
			want = append(want, string(b))
		}
		if len(page.Matches) < limit {
			break
		}
	}
	if len(want) == 0 {
		t.Fatal("reference produced no rows")
	}

	// Over the wire, resuming each page from the previous page's token.
	var got []string
	req := client.EvalRequest{Pattern: testPattern, Limit: limit}
	pages := 0
	for {
		page, err := cl.Eval(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range page.Matches {
			b, _ := json.Marshal(m)
			got = append(got, string(b))
		}
		if tu := page.Total.Uint64(); tu != uint64(len(want)) {
			t.Fatalf("page %d: total %v, want %d", pages, page.Total, len(want))
		}
		pages++
		if page.Next == "" {
			break
		}
		req = client.EvalRequest{Cursor: page.Next, Limit: limit}
	}
	if pages < 2 {
		t.Fatalf("only %d pages — the test corpus should paginate", pages)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows over the wire, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs:\n  wire: %s\n  lib:  %s", i, got[i], want[i])
		}
	}
}

func TestEvalOffsetBoundaryOverWire(t *testing.T) {
	_, cl, _ := newTestServer(t, testDocs(), server.Config{})
	for _, off := range []uint64{math.MaxUint64 - 1, math.MaxUint64} {
		page, err := cl.Eval(context.Background(), client.EvalRequest{Pattern: testPattern, Offset: off, Limit: 100})
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if len(page.Matches) != 0 || page.Next != "" {
			t.Fatalf("offset %d: %d rows, next %q; want an exhausted page", off, len(page.Matches), page.Next)
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	_, _, base := newTestServer(t, testDocs(), server.Config{})
	hc := &http.Client{}
	for _, tc := range []struct {
		name, path string
		status     int
	}{
		{"bad pattern", "/eval?q=" + `x%7Ba`, http.StatusBadRequest},
		{"missing q", "/eval", http.StatusBadRequest},
		{"bad mode", "/eval?q=x%7Ba%7D&mode=bogus", http.StatusBadRequest},
		{"bad limit", "/eval?q=x%7Ba%7D&limit=-2", http.StatusBadRequest},
		{"bad timeout", "/eval?q=x%7Ba%7D&timeout=banana", http.StatusBadRequest},
		{"cursor plus q", "/eval?q=x%7Ba%7D&cursor=sj1.x", http.StatusBadRequest},
		{"tampered cursor", "/eval?cursor=sj1.dGFtcGVyZWQ", http.StatusBadRequest},
		{"bad seed", "/sample?q=x%7Ba%7D&seed=-4", http.StatusBadRequest},
		{"bad n", "/sample?q=x%7Ba%7D&n=0", http.StatusBadRequest},
		{"count missing q", "/count", http.StatusBadRequest},
	} {
		resp, err := hc.Get(base + tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var body server.ErrorBody
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, resp.StatusCode, tc.status, body)
		}
		if body.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	// Many sizable documents + a 1ns cap: the evaluation cannot finish.
	docs := make([]string, 64)
	for i := range docs {
		docs[i] = strings.Repeat("a", 2000)
	}
	_, cl, _ := newTestServer(t, docs, server.Config{})
	_, err := cl.Eval(context.Background(), client.EvalRequest{Pattern: `a*x{a+}a*`, Timeout: time.Nanosecond})
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *client.RemoteError", err)
	}
	if re.Status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%v)", re.Status, re)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("remote deadline does not unwrap to context.DeadlineExceeded: %v", err)
	}
}

func TestBudgetMapsTo413WithPartialRows(t *testing.T) {
	docs := make([]string, 32)
	for i := range docs {
		docs[i] = "aaaa"
	}
	_, cl, _ := newTestServer(t, docs, server.Config{})
	// A tiny budget: some rows may arrive before it runs dry, and the
	// typed error must surface alongside them.
	page, err := cl.Eval(context.Background(), client.EvalRequest{Pattern: `a*x{a+}a*`, Budget: 30, Limit: 1000})
	if !errors.Is(err, spanjoin.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var re *client.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("err = %v, want status 413", err)
	}
	if page == nil {
		t.Fatal("413 must still deliver the partial page")
	}
	t.Logf("budget page delivered %d partial rows", len(page.Matches))
}

func TestOverloadShedsWith429(t *testing.T) {
	docs := make([]string, 128)
	for i := range docs {
		docs[i] = strings.Repeat("ab", 3000)
	}
	_, _, base := newTestServer(t, docs, server.Config{},
		spanjoin.WithMaxConcurrent(1), spanjoin.WithWorkers(1))
	// Saturate: many concurrent slow queries against a gate of 1 with no
	// queue. Retries are disabled so sheds surface instead of being
	// absorbed.
	clNoRetry, err := client.New(base, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var (
		wg           sync.WaitGroup
		mu           sync.Mutex
		shed, served int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := clNoRetry.Eval(context.Background(),
				client.EvalRequest{Pattern: `.*x{ab}.*`, Limit: 5})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, spanjoin.ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if served == 0 {
		t.Error("no request was served")
	}
	if shed == 0 {
		t.Error("16x saturation against capacity 1 shed nothing")
	}
	t.Logf("served %d, shed %d", served, shed)
}

func TestCountAndSampleOverWire(t *testing.T) {
	corpus, cl, _ := newTestServer(t, testDocs(), server.Config{})
	ctx := context.Background()
	want, err := corpus.Count(ctx, testPattern)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Count(ctx, testPattern, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("remote count %v, local %v", got, want)
	}
	s1, err := cl.Sample(ctx, testPattern, "", 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cl.Sample(ctx, testPattern, "", 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 8 || len(s2) != 8 {
		t.Fatalf("draw sizes %d, %d; want 8", len(s1), len(s2))
	}
	for i := range s1 {
		a, _ := json.Marshal(s1[i])
		b, _ := json.Marshal(s2[i])
		if string(a) != string(b) {
			t.Fatalf("draw %d differs under the same seed", i)
		}
		if s1[i].Spans["x"].Text != "mail" {
			t.Fatalf("draw %d bound x=%q, want \"mail\"", i, s1[i].Spans["x"].Text)
		}
	}
}

func TestStatsOverWire(t *testing.T) {
	_, cl, _ := newTestServer(t, testDocs(), server.Config{}, spanjoin.WithShards(3))
	ctx := context.Background()
	if _, err := cl.Count(ctx, testPattern, "", 0); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Docs != len(testDocs()) || st.Shards != 3 {
		t.Fatalf("stats %+v: want %d docs, 3 shards", st, len(testDocs()))
	}
	if st.Server.Served == 0 {
		t.Error("served counter did not move")
	}
	if st.Cache.Misses == 0 {
		t.Error("cache miss counter did not move")
	}
}

func TestSearchModeOverWire(t *testing.T) {
	corpus, cl, _ := newTestServer(t, testDocs(), server.Config{})
	ctx := context.Background()
	want, err := corpus.CountSearch(ctx, `x{mail}`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Count(ctx, `x{mail}`, "search", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("remote search count %v, local %v", got, want)
	}
	// Search-mode pagination resumes through its cursor too.
	p1, err := cl.Eval(ctx, client.EvalRequest{Pattern: `x{mail}`, Mode: "search", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Next == "" {
		t.Fatal("expected a continuation")
	}
	p2, err := cl.Eval(ctx, client.EvalRequest{Cursor: p1.Next, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Matches) == 0 {
		t.Fatal("resumed search page is empty")
	}
}
