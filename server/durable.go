package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"spanjoin"
	"spanjoin/internal/obs"
)

// Write/durability surface of the server, meaningful for a spand started
// with -data (but served — as no-ops or 404s — on a RAM corpus too):
//
//	POST /add       append one document (raw request body, any bytes
//	                including none: the empty body is the empty document);
//	                answers {"id": N} only after the write is acknowledged
//	                per the corpus's fsync policy
//	GET  /doc?id=N  fetch one document by ID
//	POST /snapshot  force a snapshot cycle (rotate, write, prune)
//	GET  /stats     gains a "durability" section
//
// A failed durable write (wedged log: full disk, failed fsync) answers
// 500 with the corrupt/storage error in the body; the document is then
// NOT in the corpus.

// AddBody is POST /add's response.
type AddBody struct {
	ID uint64 `json:"id"`
}

// DocBody is GET /doc's response.
type DocBody struct {
	ID   uint64 `json:"id"`
	Text string `json:"text"`
}

// SnapshotBody is POST /snapshot's response.
type SnapshotBody struct {
	Snapshots uint64 `json:"snapshots"` // cycles completed since open
	LogSize   uint64 `json:"log_size"`  // active log size after the cycle
}

// handleAdd appends the request body as one document. The response is
// the write's ack: on a durable corpus it is sent only after the record
// is logged per the fsync policy, so a client that got the ID keeps the
// document across any crash the policy covers.
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxDocBytes()))
	if err != nil {
		s.failed.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		json.NewEncoder(w).Encode(ErrorBody{Error: fmt.Sprintf("document too large (cap %d bytes): %v", s.cfg.maxDocBytes(), err)})
		return
	}
	id, err := s.corpus.AddErrCtx(r.Context(), string(body))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(AddBody{ID: uint64(id)})
}

// handleDoc fetches one document by ID.
func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(p, 10, 64)
	if err != nil {
		s.badRequest(w, "bad id %q (want a uint64)", p)
		return
	}
	text, ok := s.corpus.Doc(spanjoin.DocID(id))
	if !ok {
		s.failed.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ErrorBody{Error: fmt.Sprintf("no document %d", id)})
		return
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(DocBody{ID: id, Text: text})
}

// handleSnapshot forces one snapshot cycle. No-op 200 on a RAM corpus.
// The request's trace records the cycle as the snapshot stage (the store
// itself has no context on its snapshot path — the trigger does).
//
//spanjoin:stage snapshot
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	err := s.corpus.Snapshot()
	spanjoin.TraceFromContext(r.Context()).Observe(obs.StageSnapshot, time.Since(t0))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.served.Add(1)
	ds := s.corpus.DurabilityStats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SnapshotBody{Snapshots: ds.Snapshots, LogSize: ds.LogSize})
}

// Readiness separates liveness from readiness for a server whose corpus
// takes time to recover: it answers every request 503 with a JSON reason
// until Mount installs the real handler. The process is up (the listener
// is bound, /healthz answers) the moment the socket opens; it is ready
// only once recovery has replayed the durable state.
//
//	rd := server.NewReadiness("recovering corpus")
//	go http.Serve(ln, rd)          // binds and answers 503 immediately
//	c, _ := spanjoin.Open(dir)     // recovery replay
//	rd.Mount(server.New(c, cfg).Handler())  // now 200
type Readiness struct {
	inner  atomic.Pointer[http.Handler]
	reason atomic.Pointer[string]
}

// NewReadiness creates an unready handler answering 503 with reason.
func NewReadiness(reason string) *Readiness {
	rd := &Readiness{}
	rd.reason.Store(&reason)
	return rd
}

// Mount installs the real handler; every subsequent request routes to it.
func (rd *Readiness) Mount(h http.Handler) { rd.inner.Store(&h) }

// SetReason updates the not-ready explanation (e.g. recovery progress).
func (rd *Readiness) SetReason(reason string) { rd.reason.Store(&reason) }

// ServeHTTP routes to the mounted handler, or answers 503 — including on
// /healthz, which is the point: a load balancer probing /healthz keeps
// the instance out of rotation until recovery finishes.
func (rd *Readiness) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := rd.inner.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	reason := ""
	if p := rd.reason.Load(); p != nil {
		reason = *p
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(ErrorBody{Error: "not ready: " + reason})
}
