package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"spanjoin"
	"spanjoin/internal/obs"
)

// Observability surface of the server:
//
//	GET /metrics        Prometheus text exposition of the corpus registry
//	                    plus the server's own request metrics — the
//	                    machine-readable superset of /stats
//	GET /debug/slowlog  the most recent slow queries (ring buffer), each
//	                    with its full per-stage trace; Config.SlowQuery
//	                    sets the threshold
//	GET /debug/pprof/*  the standard profiles, mounted only with
//	                    Config.EnablePprof
//
// Every request gets an ID — taken from the client's X-Request-Id when
// present, generated otherwise — echoed in the X-Request-Id response
// header (so client errors correlate with server logs and the slowlog)
// and a per-stage trace on its context. Handlers answering query
// endpoints return the trace on the wire when the request asks with
// trace=1.

// requestIDHeader carries the per-request ID in both directions.
const requestIDHeader = "X-Request-Id"

func (c Config) slowLogSize() int {
	if c.SlowLogSize <= 0 {
		return 128
	}
	return c.SlowLogSize
}

// instrument wraps a handler with the per-request plumbing: ID, trace,
// latency histogram, (handler, code) request counter, structured log
// line, and the slow-query ring. The histogram is registered once per
// handler at mux-build time; the counter series materializes lazily per
// status code actually answered (registration is idempotent and
// scrape-safe).
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("spanjoin_http_request_seconds", "HTTP request latency.", nil,
		obs.Label{Key: "handler", Value: name})
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = s.nextRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		ctx, tr := spanjoin.WithTrace(r.Context())
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r.WithContext(ctx))
		d := time.Since(t0)
		hist.Observe(d)
		s.reg.Counter("spanjoin_http_requests_total", "HTTP requests by handler and status.",
			obs.Label{Key: "handler", Value: name},
			obs.Label{Key: "code", Value: strconv.Itoa(rec.status)}).Inc()
		if s.logger != nil {
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("handler", name),
				slog.String("query", r.URL.RawQuery),
				slog.Int("status", rec.status),
				slog.Duration("dur", d))
		}
		s.slow.Observe(obs.SlowEntry{
			ID:       id,
			Time:     t0,
			Endpoint: name,
			Query:    r.URL.RawQuery,
			Status:   rec.status,
			Dur:      d,
			Stages:   tr.Spans(),
		})
	}
}

// nextRequestID mints a process-unique request ID: a per-process base
// (start time, so IDs from different runs do not collide in logs) plus a
// sequence number.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.idBase, s.reqSeq.Add(1))
}

// statusRecorder captures the status a handler answered so the request
// counter and the slowlog can label by it.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Flush forwards streaming flushes (NDJSON responses) to the underlying
// writer.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traceWanted reports whether the request opted into an on-the-wire
// stage trace (trace=1 or trace=true).
func traceWanted(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return false
}

// traceSpans returns the request's recorded stage spans when it asked
// for them, nil otherwise.
func traceSpans(r *http.Request) []spanjoin.StageSpan {
	if !traceWanted(r) {
		return nil
	}
	return spanjoin.TraceFromContext(r.Context()).Spans()
}

// handleMetrics serves the registry in Prometheus text exposition
// format: every /stats counter and then some — request latency
// histograms (quantiles derivable from the cumulative buckets), gate
// depth, cache hit rate, WAL fsync timings.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// SlowLogBody is GET /debug/slowlog's response.
type SlowLogBody struct {
	// ThresholdNS is the slowness bound in nanoseconds; 0 = disabled.
	ThresholdNS int64 `json:"threshold_ns"`
	// Total counts slow queries ever recorded (the ring keeps the newest).
	Total uint64 `json:"total"`
	// Entries are the retained slow queries, newest first.
	Entries []obs.SlowEntry `json:"entries"`
}

// handleSlowlog serves the retained slow queries, newest first.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	body := SlowLogBody{
		ThresholdNS: int64(s.slow.Threshold()),
		Total:       s.slow.Total(),
		Entries:     s.slow.Snapshot(),
	}
	if body.Entries == nil {
		body.Entries = []obs.SlowEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

// mountPprof exposes the standard profiles on the server's own mux —
// explicitly, not via net/http/pprof's DefaultServeMux side effects, so
// a server without EnablePprof serves none of them.
func (s *Server) mountPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
