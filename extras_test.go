package spanjoin_test

import (
	"strings"
	"testing"

	"spanjoin"
)

func TestCompileSearch(t *testing.T) {
	sp := spanjoin.MustCompileSearch("x{ab}")
	ms, err := sp.Eval("zzabzzabz")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d matches, want 2", len(ms))
	}
	// Equivalent to explicit padding.
	padded := spanjoin.MustCompile(".*x{ab}.*")
	ps, err := padded.Eval("zzabzzabz")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(ms) {
		t.Errorf("CompileSearch disagrees with .* padding: %d vs %d", len(ms), len(ps))
	}
	if _, err := spanjoin.CompileSearch("x{a}|y{b}"); err == nil {
		t.Error("non-functional search pattern must be rejected")
	}
}

func TestMatchesAt(t *testing.T) {
	sp := spanjoin.MustCompileSearch("x{a+}")
	doc := "baaab"
	cases := []struct {
		span spanjoin.Span
		want bool
	}{
		{spanjoin.Span{Start: 2, End: 5}, true},  // "aaa"
		{spanjoin.Span{Start: 2, End: 4}, true},  // "aa"
		{spanjoin.Span{Start: 3, End: 4}, true},  // "a"
		{spanjoin.Span{Start: 1, End: 2}, false}, // "b"
		{spanjoin.Span{Start: 2, End: 2}, false}, // empty (a+ needs one)
		{spanjoin.Span{Start: 9, End: 9}, false}, // out of range
	}
	for _, tc := range cases {
		got, err := sp.MatchesAt(doc, map[string]spanjoin.Span{"x": tc.span})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("MatchesAt(%v) = %v, want %v", tc.span, got, tc.want)
		}
	}
	// Wrong schema.
	if _, err := sp.MatchesAt(doc, map[string]spanjoin.Span{"y": {Start: 1, End: 1}}); err == nil {
		t.Error("missing variable must error")
	}
	if _, err := sp.MatchesAt(doc, nil); err == nil {
		t.Error("empty assignment must error")
	}
}

func TestMatchesAtAgreesWithEval(t *testing.T) {
	sp := spanjoin.MustCompileSearch("x{[ab]+}y{c}")
	doc := "xabcx"
	ms, err := sp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		x, _ := m.Span("x")
		y, _ := m.Span("y")
		ok, err := sp.MatchesAt(doc, map[string]spanjoin.Span{"x": x, "y": y})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("enumerated match %v rejected by MatchesAt", m)
		}
	}
	// A non-match: y not adjacent to x.
	ok, err := sp.MatchesAt(doc, map[string]spanjoin.Span{
		"x": {Start: 2, End: 3}, "y": {Start: 4, End: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("non-adjacent pair should be rejected")
	}
}

func TestEqualAll(t *testing.T) {
	doc := "ab ab ab"
	q, err := spanjoin.NewQuery().
		AtomNamed("three", `x{..} y{..} z{..}`).
		EqualAll("x", "y", "z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := q.Evaluate(doc, spanjoin.WithStrategy(spanjoin.StrategyCanonical))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	if ms[0].MustSubstr("x") != "ab" || ms[0].MustSubstr("z") != "ab" {
		t.Errorf("bad match %v", ms[0])
	}
	if _, err := spanjoin.NewQuery().Atom("x{a}").EqualAll("x").Build(); err == nil {
		t.Error("EqualAll with one variable must fail")
	}
}

func TestQueryCount(t *testing.T) {
	q := spanjoin.NewQuery().Atom("a*x{a}a*").MustBuild()
	n, err := q.Count("aaaa")
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := n.Uint64(); !ok || u != 4 {
		t.Errorf("Count = %v, want 4", n)
	}
}

func TestRequiredLiteralPrefilter(t *testing.T) {
	sp := spanjoin.MustCompile(".*x{Belgium}.*")
	if got := sp.RequiredLiteral(); got != "Belgium" {
		t.Fatalf("RequiredLiteral = %q", got)
	}
	// A document without the literal: fast-path empty result.
	ms, err := sp.Eval("nothing to see in France")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("prefilter returned %d matches", len(ms))
	}
	// A document with the literal: normal evaluation.
	ms, err = sp.Eval("visit Belgium soon")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Errorf("got %d matches, want 1", len(ms))
	}
	// Patterns without a derivable literal must evaluate everywhere.
	free := spanjoin.MustCompile("x{.*}")
	if free.RequiredLiteral() != "" {
		t.Errorf("wildcard pattern should have no required literal")
	}
}

func TestPrefilterNeverChangesResults(t *testing.T) {
	// Cross-check: for documents with and without the factor, the result
	// must equal the automaton evaluation without the filter.
	pattern := ".*k{ERROR}.*"
	sp := spanjoin.MustCompile(pattern)
	for _, doc := range []string{"", "ok", "an ERROR here", "ERRO R"} {
		got, err := sp.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		want := strings.Count(doc, "ERROR")
		if len(got) != want {
			t.Errorf("doc %q: %d matches, want %d", doc, len(got), want)
		}
	}
}

func TestPlannedStrategy(t *testing.T) {
	// Acyclic, single-variable atoms: Auto resolves to canonical.
	chain := spanjoin.NewQuery().
		Atom(".*x{ERROR}.*").
		Atom(".*x{[A-Z]+}.*").
		MustBuild()
	if got := chain.PlannedStrategy(); got != spanjoin.StrategyCanonical {
		t.Errorf("chain planned %v, want canonical", got)
	}
	// Cyclic shape: automata.
	tri := spanjoin.NewQuery().
		Atom(".*x{a}y{b}.*").
		Atom(".*y{b}z{a}.*").
		Atom(".*x{a}.*z{a}.*").
		MustBuild()
	if got := tri.PlannedStrategy(); got != spanjoin.StrategyAutomata {
		t.Errorf("triangle planned %v, want automata", got)
	}
	// Unbounded atoms (no key attribute, many vars): automata.
	wide := spanjoin.NewQuery().
		Atom(".*x{.}.*y{.}.*").
		MustBuild()
	if got := wide.PlannedStrategy(); got != spanjoin.StrategyAutomata {
		t.Errorf("wide planned %v, want automata", got)
	}
	// Key-attributed multi-var atom: canonical (x pins y).
	keyed := spanjoin.NewQuery().
		Atom(".*x{a}y{b}.*").
		MustBuild()
	if got := keyed.PlannedStrategy(); got != spanjoin.StrategyCanonical {
		t.Errorf("keyed planned %v, want canonical", got)
	}
	// Forced strategy passes through.
	if got := keyed.PlannedStrategy(spanjoin.WithStrategy(spanjoin.StrategyAutomata)); got != spanjoin.StrategyAutomata {
		t.Errorf("forced strategy not honored: %v", got)
	}
}
