// Package spanjoin is a document-spanner engine: it extracts relations of
// spans from text with regular expressions extended by capture variables
// ("regex formulas"), and evaluates relational-algebra queries — joins,
// unions, projections and string-equality selections — over those
// extractions.
//
// It is a faithful, production-oriented implementation of
// "Joining Extractions of Regular Expressions" (Freydenberger, Kimelfeld,
// Peterfreund; PODS 2018), including:
//
//   - compilation of regex formulas into functional vset-automata
//     (Lemma 3.4),
//   - enumeration of all matches with polynomial delay and inherent
//     deduplication (Theorem 3.3),
//   - the spanner algebra on automata: Join, Union, Project
//     (Lemmas 3.8–3.10),
//   - conjunctive queries and unions thereof over regex atoms, evaluated
//     either by compiling to a single automaton (Theorem 3.11) or by the
//     canonical relational plan with Yannakakis' algorithm (Theorem 3.5),
//   - string-equality selections compiled per input string (Theorem 5.4).
//
// # Quick start
//
//	sp := spanjoin.MustCompile(`.* mail{user{[a-z]+}@domain{[a-z]+\.[a-z]+}} .*`)
//	matches, _ := sp.Eval(" write to alice@example.org today ")
//	for _, m := range matches {
//	    fmt.Println(m.MustSubstr("mail"))
//	}
//
// Patterns must match the whole document (the paper's semantics); wrap with
// `.*` to search. A pattern must be functional: every variable is bound
// exactly once on every path (e.g. `x{a}|y{b}` is rejected).
package spanjoin

import (
	"context"
	"fmt"
	"sync"

	"spanjoin/internal/core"
	"spanjoin/internal/enum"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// Span is a half-open interval [Start, End⟩ of 1-based positions in a
// document, following the paper's notation: Substr covers positions
// Start … End-1.
type Span = span.Span

// Match is one result tuple: an assignment of a span to every output
// variable, bound to the document it was extracted from.
type Match struct {
	vars  span.VarList
	tuple span.Tuple
	doc   string
}

// Vars lists the variables of the match in sorted order.
func (m Match) Vars() []string { return append([]string(nil), m.vars...) }

// Span returns the span assigned to the variable.
func (m Match) Span(name string) (Span, bool) {
	i := m.vars.Index(name)
	if i < 0 {
		return Span{}, false
	}
	return m.tuple[i], true
}

// Substr returns the substring the variable's span covers.
func (m Match) Substr(name string) (string, bool) {
	p, ok := m.Span(name)
	if !ok {
		return "", false
	}
	return p.Substr(m.doc), true
}

// MustSubstr is Substr for variables known to exist; it panics otherwise.
func (m Match) MustSubstr(name string) string {
	s, ok := m.Substr(name)
	if !ok {
		panic("spanjoin: no variable " + name)
	}
	return s
}

// String renders the match as "x=[i,j⟩(substr) …".
func (m Match) String() string {
	out := ""
	for i, v := range m.vars {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%v(%q)", v, m.tuple[i], m.tuple[i].Substr(m.doc))
	}
	return out
}

// Spanner is a compiled document spanner (a functional vset-automaton).
// Spanners are immutable and safe for concurrent use.
type Spanner struct {
	auto *vsa.VSA
	// req is the literal requirement every matching document must satisfy
	// (empty if none was derived); Iterate uses it to skip non-matching
	// documents without touching the automaton, and the spanner algebra
	// propagates it through composition: Join and Project carry both
	// operands' factors, Union keeps those common to all branches.
	req prefilter.Requirement

	// plan is the memoized document-independent compiled state (trimmed
	// automaton, closures, letter table, byte-class transition table),
	// built lazily at most once per Spanner — and therefore at most once
	// per cached corpus query, since the corpus cache stores Spanners.
	planOnce sync.Once
	plan     *enum.Plan
	planErr  error
}

// compiledPlan memoizes enum.NewPlan over the spanner's automaton. Every
// evaluation path (Iterate, Stream, EvalAllParallel, the corpus fan-out)
// shares it, so trimming, the functionality check, closure computation and
// the transition-table build happen once per Spanner however the spanner
// is driven. built reports whether this call ran the compilation — the
// corpus layer records the plan_build stage only then, so cached queries
// never report a phantom build.
func (s *Spanner) compiledPlan() (p *enum.Plan, built bool, err error) {
	s.planOnce.Do(func() {
		s.plan, s.planErr = enum.NewPlan(s.auto)
		built = true
	})
	return s.plan, built, s.planErr
}

// Compile parses and compiles a regex-formula pattern.
func Compile(pattern string) (*Spanner, error) {
	f, err := rgx.Parse(pattern)
	if err != nil {
		return nil, err
	}
	a, err := rgx.Compile(f)
	if err != nil {
		return nil, err
	}
	return &Spanner{auto: a, req: prefilter.New(rgx.RequiredLiterals(f.Root)...)}, nil
}

// MustCompile is Compile for statically known patterns; panics on error.
func MustCompile(pattern string) *Spanner {
	s, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return s
}

// Vars lists the spanner's capture variables in sorted order.
func (s *Spanner) Vars() []string { return append([]string(nil), s.auto.Vars...) }

// Stats reports automaton size (states, transitions) — useful for
// understanding the cost of composed spanners.
func (s *Spanner) Stats() (states, transitions int) {
	return s.auto.NumStates(), s.auto.NumTransitions()
}

// Eval materializes all matches of the spanner on doc, in the engine's
// deterministic (radix) order. Unlike Iterate, Eval drains internally —
// the caller never holds the iterator — so the resilience options apply
// here: WithTimeout bounds the whole evaluation (spanlint's ctxthread
// analyzer requires every such entry point to carry a deadline) and
// WithLimit caps the number of materialized matches. A fired timeout is
// reported as context.DeadlineExceeded, never as an empty result.
func (s *Spanner) Eval(doc string, opts ...Option) ([]Match, error) {
	o := buildOptions(opts)
	var it *Matches
	var err error
	if o.Timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), o.Timeout)
		defer cancel()
		it, err = s.IterateCtx(ctx, doc)
	} else {
		it, err = s.Iterate(doc)
	}
	if err != nil {
		return nil, err
	}
	var out []Match
	for {
		m, ok := it.Next()
		if !ok {
			if err := it.Err(); err != nil {
				return nil, err
			}
			return out, nil
		}
		out = append(out, m)
		if o.Limit > 0 && uint64(len(out)) >= o.Limit {
			return out, nil
		}
	}
}

// prefilterEmpty reports whether the required-literal prefilter proves
// doc has no matches, sparing the O(n²·|doc|) graph build. It never
// claims emptiness for a spanner whose plan fails to compile, so
// non-functional automata still surface their error from the caller's
// own compile path.
func (s *Spanner) prefilterEmpty(doc string) bool {
	if s.req.IsEmpty() || s.req.Match(doc) {
		return false
	}
	_, _, err := s.compiledPlan()
	return err == nil
}

// Iterate enumerates matches with polynomial delay (Theorem 3.3): the time
// to the first match and between consecutive matches is O(n²·|doc|) for an
// n-state spanner, independent of the result count.
func (s *Spanner) Iterate(doc string) (*Matches, error) {
	if s.prefilterEmpty(doc) {
		return &Matches{it: emptyIter{}, vars: s.auto.Vars, doc: doc}, nil
	}
	p, _, err := s.compiledPlan()
	if err != nil {
		return nil, err
	}
	e := p.Prepare(doc)
	return &Matches{it: e, vars: e.Vars(), doc: doc}, nil
}

// IterateCtx is Iterate with cancellation: the context is polled both
// inside the graph build (amortized, so a pathological document cannot
// wedge the caller before the first match) and between matches. After
// Next returns ok=false, Matches.Err distinguishes cancellation from
// exhaustion.
func (s *Spanner) IterateCtx(ctx context.Context, doc string) (*Matches, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.prefilterEmpty(doc) {
		return &Matches{it: emptyIter{}, vars: s.auto.Vars, doc: doc}, nil
	}
	p, _, err := s.compiledPlan()
	if err != nil {
		return nil, err
	}
	e := p.NewEnumerator()
	e.SetInterrupt(func() bool { return ctx.Err() != nil })
	e.Reset(doc)
	cit := core.WithContext(ctx, e)
	return &Matches{it: cit, vars: e.Vars(), doc: doc}, nil
}

// RequiredLiteral exposes the most selective prefilter factor derived at
// compile time: a byte string every matching document must contain, or "".
func (s *Spanner) RequiredLiteral() string { return s.req.Longest() }

// RequiredLiterals exposes the full prefilter requirement: every matching
// document must contain every returned literal. Composed spanners
// accumulate their operands' factors (Join, Project) or keep the common
// ones (Union).
func (s *Spanner) RequiredLiterals() []string { return s.req.Literals() }

// requirement exposes the prefilter requirement to the corpus layer.
func (s *Spanner) requirement() prefilter.Requirement { return s.req }

// Stream evaluates a sequence of documents through one compiled spanner,
// reusing a single enumerator: the automaton is trimmed, checked for
// functionality and closed over once, and every document after the first
// rebuilds the layered graph into preallocated arenas, so steady-state
// evaluation allocates almost nothing per document beyond the matches.
// A Stream is not safe for concurrent use; open one per goroutine (they
// share nothing mutable with their Spanner) or use EvalAllParallel.
type Stream struct {
	sp *Spanner
	e  *enum.Enumerator
}

// NewStream opens a reusable evaluation stream over the spanner.
func (s *Spanner) NewStream() *Stream { return &Stream{sp: s} }

// Eval materializes all matches of the stream's spanner on doc, like
// Spanner.Eval but amortizing the per-document setup across the stream.
func (st *Stream) Eval(doc string) ([]Match, error) {
	ms, err := st.Iterate(doc)
	if err != nil {
		return nil, err
	}
	var out []Match
	for {
		m, ok := ms.Next()
		if !ok {
			return out, nil
		}
		out = append(out, m)
	}
}

// EvalCtx is Eval with cancellation: the drain checks ctx periodically
// (core.CtxIterator) and returns its error once cancelled, so a
// pathological document cannot wedge the stream's caller.
func (st *Stream) EvalCtx(ctx context.Context, doc string) ([]Match, error) {
	ms, err := st.Iterate(doc)
	if err != nil {
		return nil, err
	}
	cit := core.WithContext(ctx, ms.it)
	ms.it = cit
	var out []Match
	for {
		m, ok := ms.Next()
		if !ok {
			if err := cit.Err(); err != nil {
				return nil, err
			}
			return out, nil
		}
		out = append(out, m)
	}
}

// Iterate enumerates matches on doc with polynomial delay. The returned
// Matches borrows the stream's enumerator: drain (or abandon) it before the
// next Iterate or Eval call on the same stream.
func (st *Stream) Iterate(doc string) (*Matches, error) {
	sp := st.sp
	// The prefilter skips even the graph rebuild; the plan (and with it
	// the functionality check) is memoized on the spanner, so this costs
	// one sync.Once read per document.
	if sp.prefilterEmpty(doc) {
		return &Matches{it: emptyIter{}, vars: sp.auto.Vars, doc: doc}, nil
	}
	if st.e == nil {
		p, _, err := sp.compiledPlan()
		if err != nil {
			return nil, err
		}
		st.e = p.NewEnumerator()
	}
	st.e.Reset(doc)
	return &Matches{it: st.e, vars: st.e.Vars(), doc: doc}, nil
}

// EvalAll evaluates the spanner on every document through one reused
// enumerator, returning per-document match sets indexed like docs. The
// resilience options apply across the whole call: WithTimeout bounds
// total wall-clock over all documents (the ctxthread contract for batch
// entry points) and WithLimit caps each document's match set.
func (s *Spanner) EvalAll(docs []string, opts ...Option) ([][]Match, error) {
	o := buildOptions(opts)
	ctx := context.Background()
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	st := s.NewStream()
	out := make([][]Match, len(docs))
	for i, doc := range docs {
		var ms []Match
		var err error
		if o.Timeout > 0 {
			ms, err = st.EvalCtx(ctx, doc)
		} else {
			ms, err = st.Eval(doc)
		}
		if err != nil {
			return nil, err
		}
		if o.Limit > 0 && uint64(len(ms)) > o.Limit {
			ms = ms[:o.Limit:o.Limit]
		}
		out[i] = ms
	}
	return out, nil
}

// EvalAllParallel is EvalAll with a pool of workers, each owning one
// reusable enumerator over the shared compiled automaton. Results keep the
// order of docs; workers ≤ 0 selects GOMAXPROCS.
func (s *Spanner) EvalAllParallel(docs []string, workers int) ([][]Match, error) {
	return s.EvalAllParallelCtx(context.Background(), docs, workers)
}

// EvalAllParallelCtx is EvalAllParallel with cancellation: workers check
// ctx between documents and periodically within each enumeration, so the
// call aborts mid-stream and returns ctx's error.
func (s *Spanner) EvalAllParallelCtx(ctx context.Context, docs []string, workers int) ([][]Match, error) {
	p, _, err := s.compiledPlan()
	if err != nil {
		return nil, err
	}
	vars, tuples, err := enum.EvalAllDocsPlanCtx(ctx, p, docs, workers)
	if err != nil {
		return nil, err
	}
	out := make([][]Match, len(docs))
	for i, ts := range tuples {
		ms := make([]Match, len(ts))
		for k, t := range ts {
			ms[k] = Match{vars: vars, tuple: t, doc: docs[i]}
		}
		out[i] = ms
	}
	return out, nil
}

type emptyIter struct{}

func (emptyIter) Next() (span.Tuple, bool) { return nil, false }
func (emptyIter) Vars() span.VarList       { return nil }

// Matches iterates over the result of a spanner or query evaluation.
type Matches struct {
	it   core.Iterator
	vars span.VarList
	doc  string
	// consumed is the index of the next match Next will return — the
	// absolute position Skip seeks from.
	consumed uint64
}

// Next returns the next match; ok is false when exhausted.
func (ms *Matches) Next() (Match, bool) {
	t, ok := ms.it.Next()
	if !ok {
		return Match{}, false
	}
	ms.consumed++
	return Match{vars: ms.vars, tuple: t, doc: ms.doc}, true
}

// Vars lists the output variables.
func (ms *Matches) Vars() []string { return append([]string(nil), ms.vars...) }

// Err distinguishes cancellation from exhaustion after Next has returned
// ok=false: iterators opened with a context (Spanner.IterateCtx,
// Query.IterateCtx) report the context's error once it fires; plain
// Iterate matches always report nil.
func (ms *Matches) Err() error {
	if e, ok := ms.it.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// Join composes two spanners with the natural join ⋈ (Lemma 3.10): results
// agree on shared variables' spans. The construction is O(v·n⁴); joining
// many spanners multiplies automaton sizes, so prefer Query for larger
// conjunctions.
func Join(a, b *Spanner) (*Spanner, error) {
	j, err := vsa.Join(a.auto, b.auto)
	if err != nil {
		return nil, err
	}
	// A joined match satisfies both operands, so the composed spanner
	// requires both operands' literals.
	return &Spanner{auto: j, req: a.req.And(b.req)}, nil
}

// Union composes spanners with identical variable sets into their union
// (Lemma 3.9); linear time.
func Union(ss ...*Spanner) (*Spanner, error) {
	autos := make([]*vsa.VSA, len(ss))
	reqs := make([]prefilter.Requirement, len(ss))
	for i, s := range ss {
		autos[i] = s.auto
		reqs[i] = s.req
	}
	u, err := vsa.Union(autos...)
	if err != nil {
		return nil, err
	}
	// A union match may come from any branch: only factors every branch
	// requires remain necessary.
	return &Spanner{auto: u, req: prefilter.Or(reqs...)}, nil
}

// Project restricts the spanner to the given variables (Lemma 3.8);
// linear time.
func Project(s *Spanner, vars ...string) (*Spanner, error) {
	p, err := vsa.Project(s.auto, span.NewVarList(vars...))
	if err != nil {
		return nil, err
	}
	// Projection never changes which documents match, only the output
	// schema, so the operand's requirement carries over unchanged.
	return &Spanner{auto: p, req: s.req}, nil
}

// KeyAttribute decides whether x is a key attribute of the spanner
// (Prop 3.6): whether x's span functionally determines the whole match.
// Key attributes guarantee at most O(|doc|²) matches (a "polynomially
// bounded" spanner, §3.3.2).
func (s *Spanner) KeyAttribute(x string) (bool, error) {
	return vsa.KeyAttribute(s.auto, x)
}

// auto exposes the underlying automaton to the query layer.
func (s *Spanner) vsa() *vsa.VSA { return s.auto }
