package spanjoin_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"spanjoin"
)

// TestCorpusConcurrentAddEvalCache hammers one Corpus from 16 goroutines —
// adders appending documents, evaluators repeating one cached query,
// evaluators rotating through distinct queries — and checks, per
// evaluation, that no result is lost (every document present before the
// evaluation began is reported) and none is duplicated (each document
// yields its exact match multiset, here exactly one match). Run under
// -race this also exercises the store/cache/pool synchronization.
func TestCorpusConcurrentAddEvalCache(t *testing.T) {
	c := spanjoin.NewCorpus(spanjoin.WithShards(8), spanjoin.WithWorkers(4))
	ctx := context.Background()

	// Every document contains exactly one occurrence of "qq" (the letters
	// q never occur elsewhere), so the anchored pattern below has exactly
	// one match per document.
	makeDoc := func(g, i int) string {
		return fmt.Sprintf("abba%dqqab%d", g, i)
	}
	pattern := `[a-p0-9]*x{qq}[a-p0-9]*`

	// Seed documents so the very first evaluations see a populated corpus.
	var mu sync.Mutex
	known := make(map[spanjoin.DocID]bool)
	for i := 0; i < 40; i++ {
		known[c.Add(makeDoc(99, i))] = true
	}

	snapshotKnown := func() []spanjoin.DocID {
		mu.Lock()
		defer mu.Unlock()
		ids := make([]spanjoin.DocID, 0, len(known))
		for id := range known {
			ids = append(ids, id)
		}
		return ids
	}

	const adders, repeatEvals, mixedEvals = 4, 8, 4 // 16 goroutines total
	var wg sync.WaitGroup
	errs := make(chan error, adders+repeatEvals+mixedEvals)

	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				id := c.Add(makeDoc(g, i))
				mu.Lock()
				known[id] = true
				mu.Unlock()
			}
		}(g)
	}

	runEval := func(pat string) error {
		pre := snapshotKnown() // all IDs added before this evaluation began
		ms, err := c.Eval(ctx, pat)
		if err != nil {
			return err
		}
		// spanlint/closecheck: release the stream's pool slot.
		defer ms.Close()
		perDoc := make(map[spanjoin.DocID]int)
		for {
			m, ok := ms.Next()
			if !ok {
				break
			}
			if _, ok := c.Doc(m.Doc); !ok {
				return fmt.Errorf("result for unknown doc %d", m.Doc)
			}
			if m.Match.MustSubstr("x") != "qq" {
				return fmt.Errorf("doc %d: match %q, want qq", m.Doc, m.Match.MustSubstr("x"))
			}
			perDoc[m.Doc]++
		}
		if err := ms.Err(); err != nil {
			return err
		}
		for id, n := range perDoc {
			if n != 1 {
				return fmt.Errorf("doc %d reported %d times (duplicated result)", id, n)
			}
		}
		for _, id := range pre {
			if perDoc[id] != 1 {
				return fmt.Errorf("doc %d added before eval missing (lost result)", id)
			}
		}
		return nil
	}

	for g := 0; g < repeatEvals; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := runEval(pattern); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// Mixed evaluators rotate through equivalent but distinct sources, so
	// the cache holds several artifacts and keeps being exercised on both
	// hit and miss paths.
	variants := []string{
		pattern,
		`[0-9a-p]*x{qq}[a-p0-9]*`,
		`(a|b|[0-9a-p])*x{qq}[a-p0-9]*`,
	}
	for g := 0; g < mixedEvals; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if err := runEval(variants[(g+i)%len(variants)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Repeated identical sources must have hit the cache far more often
	// than they compiled: ≥ 90% over the whole run.
	st := c.CacheStats()
	if st.Misses > uint64(len(variants)) {
		t.Fatalf("stats = %+v: identical queries recompiled", st)
	}
	if rate := st.HitRate(); rate < 0.9 {
		t.Fatalf("cache hit rate %.2f, want ≥ 0.90 (%+v)", rate, st)
	}
	// Every document is still resolvable after the dust settles.
	for _, id := range snapshotKnown() {
		doc, ok := c.Doc(id)
		if !ok || !strings.Contains(doc, "qq") {
			t.Fatalf("doc %d unresolvable after concurrent run", id)
		}
	}
}
