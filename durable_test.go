package spanjoin_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spanjoin"
	"spanjoin/internal/leakcheck"
)

// openDurable opens a durable corpus and registers a cleanup Close.
func openDurable(t *testing.T, dir string, opts ...spanjoin.CorpusOption) *spanjoin.Corpus {
	t.Helper()
	c, err := spanjoin.Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir, spanjoin.WithShards(3))
	docs := []string{"mail bob@example now", "no match here", "", "mail eve@example too"}
	var ids []spanjoin.DocID
	for _, d := range docs {
		id, err := c.AddErr(d)
		if err != nil {
			t.Fatalf("AddErr(%q): %v", d, err)
		}
		ids = append(ids, id)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := openDurable(t, dir, spanjoin.WithShards(3))
	if c2.Len() != len(docs) {
		t.Fatalf("Len after reopen = %d, want %d", c2.Len(), len(docs))
	}
	if !c2.Durable() {
		t.Fatal("reopened corpus not durable")
	}
	// Same shard count and append order ⇒ same IDs resolve to the same
	// documents.
	for i, id := range ids {
		got, ok := c2.Doc(id)
		if !ok || got != docs[i] {
			t.Fatalf("Doc(%d) = %q,%v after reopen, want %q", id, got, ok, docs[i])
		}
	}
	// The recovered corpus evaluates like a RAM one.
	out, err := c2.EvalAll(context.Background(), `.*x{mail [a-z]+@[a-z]+}.*`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("matched %d docs after recovery, want 2", len(out))
	}
}

// TestDurableEmptyDocument pins the satellite contract: Add("") is a
// valid, countable, durable document.
func TestDurableEmptyDocument(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	id, err := c.AddErr("")
	if err != nil {
		t.Fatalf("AddErr(\"\"): %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after Add(\"\"), want 1", c.Len())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openDurable(t, dir)
	if c2.Len() != 1 {
		t.Fatalf("Len = %d after reopen, want 1", c2.Len())
	}
	got, ok := c2.Doc(id)
	if !ok || got != "" {
		t.Fatalf("Doc = %q,%v, want the empty document", got, ok)
	}
	// The empty document participates in evaluation: an anchored pattern
	// matching the empty string finds it.
	n, err := c2.Count(context.Background(), `x{(a|)}`)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := n.Uint64(); !ok || got != 1 {
		t.Fatalf("Count over empty doc = %v,%v, want 1", got, ok)
	}
}

func TestDurableFreshDirectoryCreated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	c := openDurable(t, dir)
	if c.Len() != 0 {
		t.Fatalf("fresh corpus Len = %d", c.Len())
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("data dir not created: %v", err)
	}
}

func TestDurableSnapshotAndReplay(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir, spanjoin.WithShards(2))
	for i := 0; i < 10; i++ {
		if _, err := c.AddErr(fmt.Sprintf("pre-snapshot %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.AddErr(fmt.Sprintf("post-snapshot %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ds := c.DurabilityStats()
	if ds.Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1", ds.Snapshots)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openDurable(t, dir, spanjoin.WithShards(2))
	if c2.Len() != 15 {
		t.Fatalf("Len = %d after snapshot+log recovery, want 15", c2.Len())
	}
	ds2 := c2.DurabilityStats()
	if ds2.RecoveredDocs != 15 || ds2.ReplayedRecords != 5 {
		t.Fatalf("recovery stats = %+v, want 10 snapshot + 5 replayed", ds2)
	}
}

// TestDurableSnapshotWithEmptyLog covers the recovery edge case where
// the snapshot holds everything and the log nothing.
func TestDurableSnapshotWithEmptyLog(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	for i := 0; i < 4; i++ {
		if _, err := c.AddErr(fmt.Sprintf("doc %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openDurable(t, dir)
	if c2.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c2.Len())
	}
	ds := c2.DurabilityStats()
	if ds.ReplayedRecords != 0 {
		t.Fatalf("ReplayedRecords = %d, want 0 (snapshot-only)", ds.ReplayedRecords)
	}
}

// TestDurableLogOnlyRecovery covers the opposite edge: no snapshot was
// ever written, everything comes from the log.
func TestDurableLogOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	for i := 0; i < 7; i++ {
		if _, err := c.AddErr(fmt.Sprintf("doc %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openDurable(t, dir)
	ds := c2.DurabilityStats()
	if c2.Len() != 7 || ds.ReplayedRecords != 7 {
		t.Fatalf("Len=%d ReplayedRecords=%d, want 7/7", c2.Len(), ds.ReplayedRecords)
	}
}

func TestDurableCorruptionIsTyped(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	for i := 0; i < 8; i++ {
		if _, err := c.AddErr(fmt.Sprintf("a document with some body %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage the log's interior: a mid-file bit flip with intact records
	// after it cannot be crash residue.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logPath string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".log" {
			logPath = filepath.Join(dir, e.Name())
		}
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = spanjoin.Open(dir)
	if err == nil {
		t.Fatal("Open succeeded over a corrupt log")
	}
	if !errors.Is(err, spanjoin.ErrCorrupt) {
		t.Fatalf("err = %v, want errors.Is(..., ErrCorrupt)", err)
	}
	if got := spanjoin.FailureClass(err); got != spanjoin.FailureCorrupt {
		t.Fatalf("FailureClass = %q, want %q", got, spanjoin.FailureCorrupt)
	}
}

// TestDurableTornTailRepaired truncates the log mid-record — crash
// residue — and expects silent repair, not ErrCorrupt.
func TestDurableTornTailRepaired(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := c.AddErr(fmt.Sprintf("survives %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".log" {
			p := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, data[:len(data)-3], 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	c2 := openDurable(t, dir)
	if c2.Len() != 4 {
		t.Fatalf("Len = %d after torn-tail repair, want 4", c2.Len())
	}
	if ds := c2.DurabilityStats(); ds.TornBytesRepaired == 0 {
		t.Fatal("TornBytesRepaired = 0, want > 0")
	}
}

// TestDurableBackgroundSnapshotter drives the WithSnapshotThreshold
// loop: enough appends must trigger an automatic snapshot, and Close
// must stop the loop without leaking its goroutine (leakcheck wraps the
// whole lifecycle; run with -race to exercise the capture paths).
func TestDurableBackgroundSnapshotter(t *testing.T) {
	leakcheck.Check(t, func() {
		dir := t.TempDir()
		c, err := spanjoin.Open(dir,
			spanjoin.WithSync(spanjoin.SyncInterval),
			spanjoin.WithSyncInterval(5*time.Millisecond),
			spanjoin.WithSnapshotThreshold(4096))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if _, err := c.AddErr(fmt.Sprintf("document %04d padding padding padding padding", i)); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for c.DurabilityStats().Snapshots == 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		ds := c.DurabilityStats()
		if ds.Snapshots == 0 {
			t.Fatal("background snapshotter never fired")
		}
		if ds.Syncs == 0 {
			t.Fatal("interval policy never synced")
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		// Close is idempotent.
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}

		c2, err := spanjoin.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if c2.Len() != 200 {
			t.Fatalf("Len = %d after snapshotted recovery, want 200", c2.Len())
		}
		if err := c2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDurableConcurrentAddsRecover exercises the serialized write path
// from many goroutines, then verifies every acked document recovers.
func TestDurableConcurrentAddsRecover(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir, spanjoin.WithShards(4))
	const writers, perWriter = 8, 50
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				if _, err := c.AddErr(fmt.Sprintf("w%d-%d", w, i)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openDurable(t, dir, spanjoin.WithShards(4))
	if c2.Len() != writers*perWriter {
		t.Fatalf("Len = %d after reopen, want %d", c2.Len(), writers*perWriter)
	}
}

// TestDurableRAMNoOps pins the RAM corpus's durable no-ops: the methods
// exist, succeed, and report zero stats.
func TestDurableRAMNoOps(t *testing.T) {
	c := spanjoin.NewCorpus()
	if c.Durable() {
		t.Fatal("RAM corpus claims durability")
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if ds := c.DurabilityStats(); ds != (spanjoin.DurabilityStats{}) {
		t.Fatalf("RAM DurabilityStats = %+v, want zero", ds)
	}
	if _, err := c.AddErr("still works"); err != nil {
		t.Fatal(err)
	}
}

// TestDurableIndexRecovery ensures the skip index is rebuilt over
// recovered documents: a literal-bearing query must still skip
// non-candidates.
func TestDurableIndexRecovery(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir, spanjoin.WithIndex())
	if _, err := c.AddErr("the needle document"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.AddErr(fmt.Sprintf("hay %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openDurable(t, dir, spanjoin.WithIndex())
	if !c2.Indexed() {
		t.Fatal("index not enabled after reopen")
	}
	ms, err := c2.EvalSearch(context.Background(), `x{needle}`)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	var n int
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
		n++
	}
	if err := ms.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("needle matched %d times after recovery, want 1", n)
	}
	if st := ms.Stats(); st.SkippedIndex == 0 {
		t.Fatalf("skip index inert after recovery: %+v", st)
	}
}
