package spanjoin_test

import (
	"context"
	"strings"
	"testing"

	"spanjoin"
	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
)

// oracleEval evaluates the pattern with the brute-force ref-word oracle.
func oracleEval(t *testing.T, pattern, doc string) []span.Tuple {
	t.Helper()
	f, err := rgx.Parse(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return oracle.EvalFormula(f, doc)
}

// fuzzPatterns are small functional regex formulas over {a, b}; the fuzzer
// picks one by index so pattern choice stays in the corpus-minimizable
// input.
var fuzzPatterns = []string{
	`x{a+}`,
	`(a|b)*x{a+}(a|b)*`,
	`x{(a|b)*}`,
	`x{a*}y{b*}`,
	`(a|b)*x{a}y{b?}(a|b)*`,
	`x{a*}(a|b)*y{a*}`,
	`a*x{a*}a*`,
	`(a|b)*x{(a|b)+}(a|b)*`,
}

// fuzzDocs derives a small document set over {a, b} from raw fuzz bytes:
// '|' separates documents, every other byte maps onto a or b by parity.
// At most 8 documents of at most 12 bytes keep the reference evaluation
// cheap.
func fuzzDocs(blob string) []string {
	parts := strings.Split(blob, "|")
	if len(parts) > 8 {
		parts = parts[:8]
	}
	docs := make([]string, 0, len(parts))
	for _, p := range parts {
		if len(p) > 12 {
			p = p[:12]
		}
		b := []byte(p)
		for i := range b {
			if b[i]%2 == 0 {
				b[i] = 'a'
			} else {
				b[i] = 'b'
			}
		}
		docs = append(docs, string(b))
	}
	return docs
}

// FuzzCorpusVsEval is the differential harness for the corpus engine:
// random small patterns and document sets go through Corpus.Eval (sharded,
// pooled, streamed) and through per-document Spanner.Eval (the
// polynomial-delay reference, Theorem 3.3), and the match multisets must
// be identical per document — any lost, duplicated or misattributed
// result across the shard/worker/channel machinery fails.
func FuzzCorpusVsEval(f *testing.F) {
	f.Add(uint8(0), "aab|ba|abab")
	f.Add(uint8(1), "aaaa|b|")
	f.Add(uint8(3), "ab|aabb|bbaa|a")
	f.Add(uint8(5), "aaa")
	f.Add(uint8(7), "abab|baba|aa|bb|a|b||ab")
	f.Fuzz(func(t *testing.T, pi uint8, blob string) {
		pattern := fuzzPatterns[int(pi)%len(fuzzPatterns)]
		docs := fuzzDocs(blob)
		sp, err := spanjoin.Compile(pattern)
		if err != nil {
			t.Fatalf("fuzz pattern %q must compile: %v", pattern, err)
		}

		c := spanjoin.NewCorpus(spanjoin.WithShards(3), spanjoin.WithWorkers(2))
		ids := c.AddAll(docs...)
		ms, err := c.Eval(context.Background(), pattern)
		if err != nil {
			t.Fatal(err)
		}
		// spanlint/closecheck: release the stream's pool slot.
		defer ms.Close()
		got := make(map[spanjoin.DocID][]span.Tuple)
		for {
			m, ok := ms.Next()
			if !ok {
				break
			}
			got[m.Doc] = append(got[m.Doc], tupleOf(m.Match))
		}
		if err := ms.Err(); err != nil {
			t.Fatal(err)
		}

		// The skip index must be invisible in the results: same tuples per
		// document, same per-document order.
		ci := spanjoin.NewCorpus(spanjoin.WithShards(3), spanjoin.WithWorkers(2), spanjoin.WithIndex())
		idsIdx := ci.AddAll(docs...)
		msIdx, err := ci.Eval(context.Background(), pattern)
		if err != nil {
			t.Fatal(err)
		}
		// spanlint/closecheck: release the stream's pool slot.
		defer msIdx.Close()
		gotIdx := make(map[spanjoin.DocID][]span.Tuple)
		for {
			m, ok := msIdx.Next()
			if !ok {
				break
			}
			gotIdx[m.Doc] = append(gotIdx[m.Doc], tupleOf(m.Match))
		}
		if err := msIdx.Err(); err != nil {
			t.Fatal(err)
		}
		for i := range docs {
			a, b := got[ids[i]], gotIdx[idsIdx[i]]
			if len(a) != len(b) {
				t.Fatalf("pattern %q doc %q: unindexed %v, indexed %v", pattern, docs[i], a, b)
			}
			for k := range a {
				if a[k].Compare(b[k]) != 0 {
					t.Fatalf("pattern %q doc %q: index changed tuple %d: %v vs %v", pattern, docs[i], k, a[k], b[k])
				}
			}
		}
		st := msIdx.Stats()
		if st.Scanned+st.Skipped != uint64(len(docs)) {
			t.Fatalf("pattern %q: indexed stats %+v don't cover %d docs", pattern, st, len(docs))
		}

		// The corpus fan-out (and Spanner.Eval) run on the byte-class
		// compiled transition table; the preserved per-transition reference
		// build is the independent witness that the matrix sweep built the
		// same graphs. One reference enumerator, Reset per document — the
		// plan compiles once per fuzz input, not once per document.
		re, err := enum.PrepareRef(rgx.MustCompilePattern(pattern), "")
		if err != nil {
			t.Fatal(err)
		}

		for i, doc := range docs {
			ref, err := sp.Eval(doc)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]span.Tuple, len(ref))
			for k, m := range ref {
				want[k] = tupleOf(m)
			}
			re.Reset(doc)
			if !oracle.EqualTupleSets(want, re.All()) {
				t.Fatalf("pattern %q doc %q: compiled-table path disagrees with per-transition reference",
					pattern, doc)
			}
			if !sameTupleMultiset(got[ids[i]], want) {
				t.Fatalf("pattern %q doc %q: corpus %v, per-doc eval %v",
					pattern, doc, got[ids[i]], want)
			}
			// The per-document stream must also preserve the engine's
			// deterministic radix order, not just the multiset.
			for k := range want {
				if got[ids[i]][k].Compare(want[k]) != 0 {
					t.Fatalf("pattern %q doc %q: order differs at %d", pattern, doc, k)
				}
			}
			// On tiny inputs, additionally pin both against the brute-force
			// ref-word oracle (§2.2 semantics, shares no code with either).
			if len(doc) <= 4 {
				if !oracle.EqualTupleSets(want, oracleEval(t, pattern, doc)) {
					t.Fatalf("pattern %q doc %q: engine disagrees with oracle", pattern, doc)
				}
			}
		}
	})
}
