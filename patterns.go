package spanjoin

import "fmt"

// Prebuilt pattern constructors for the relations that recur throughout the
// paper's examples: containment (α_sub), tokens, and sentence segmentation.
// Each returns a pattern string for use as an Atom or with Compile.

// SubspanPattern returns the paper's α_sub[inner, outer]: all pairs where
// inner's span lies within outer's (both spans range over the whole
// document): Σ* outer{Σ* inner{Σ*} Σ*} Σ*.
func SubspanPattern(inner, outer string) string {
	return fmt.Sprintf(".*%s{.*%s{.*}.*}.*", outer, inner)
}

// TokenPattern returns a pattern binding x to one whitespace-delimited
// occurrence of the given word (documents are searched, so wrap nothing).
// The token must be preceded and followed by space, punctuation handled by
// the boundary class.
func TokenPattern(x, word string) string {
	return fmt.Sprintf(`(.*[ .])?%s{%s}([ .].*)?`, x, escapeLiteral(word))
}

// WordPattern binds x to any maximal run of lowercase letters delimited by
// the boundary class [ .].
func WordPattern(x string) string {
	return fmt.Sprintf(`(.*[ .])?%s{[a-z]+}([ .].*)?`, x)
}

// SentencePattern binds x to one '.'-terminated sentence (a run of letters,
// digits and spaces ending in '.'), starting at the document start or after
// a sentence boundary ". ".
func SentencePattern(x string) string {
	return fmt.Sprintf(`(.*\. )?%s{[A-Za-z0-9 ]+\.}( .*)?`, x)
}

// escapeLiteral escapes pattern metacharacters in a literal word.
func escapeLiteral(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\', '.', '*', '+', '?', '|', '(', ')', '[', ']', '{', '}', '-', '^':
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}
