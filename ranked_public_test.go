package spanjoin_test

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"spanjoin"
)

// evalRef materializes the reference result list via plain iteration.
func evalRef(t *testing.T, sp *spanjoin.Spanner, doc string) []spanjoin.Match {
	t.Helper()
	ms, err := sp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestSpannerCountVsEval(t *testing.T) {
	cases := []struct{ pattern, doc string }{
		{"a*x{a*}a*", "aaaa"},
		{".*x{a+}.*", strings.Repeat("a", 40)},
		{".*x{a+}.*y{b+}.*", "aabbab"},
		{"x{.*}y{.*}", "abcde"},
		{".*mail{[a-z]+@[a-z]+}.*", "no address here"},
		{"(a|b)*x{(a|b)+}(a|b)*", ""},
	}
	for _, c := range cases {
		sp := spanjoin.MustCompile(c.pattern)
		want := evalRef(t, sp, c.doc)
		n, err := sp.Count(c.doc)
		if err != nil {
			t.Fatal(err)
		}
		if u, ok := n.Uint64(); !ok || u != uint64(len(want)) {
			t.Errorf("%s on %q: Count = %v, Eval found %d", c.pattern, c.doc, n, len(want))
		}
	}
}

func TestRankedResultAtAndPageVsIterate(t *testing.T) {
	sp := spanjoin.MustCompile(".*x{a+}.*y{b+}.*")
	doc := "aabbaabb"
	want := evalRef(t, sp, doc)
	if len(want) < 10 {
		t.Fatalf("weak test instance: only %d matches", len(want))
	}
	r, err := sp.Ranked(doc)
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := r.Count().Uint64(); !ok || u != uint64(len(want)) {
		t.Fatalf("Count = %v, want %d", r.Count(), len(want))
	}
	for i := range want {
		m, ok := r.ResultAt(uint64(i))
		if !ok {
			t.Fatalf("ResultAt(%d) failed below Count", i)
		}
		if matchKey(m) != matchKey(want[i]) {
			t.Fatalf("ResultAt(%d) = %v, want %v", i, m, want[i])
		}
	}
	if _, ok := r.ResultAt(uint64(len(want))); ok {
		t.Fatal("ResultAt(Count) must fail")
	}
	// Pages in arbitrary order, including a ragged final page.
	for _, pg := range []struct {
		offset uint64
		limit  int
	}{{0, 3}, {7, 4}, {uint64(len(want) - 2), 10}, {3, 1}} {
		got := r.Page(pg.offset, pg.limit)
		wantLen := len(want) - int(pg.offset)
		if wantLen > pg.limit {
			wantLen = pg.limit
		}
		if len(got) != wantLen {
			t.Fatalf("Page(%d,%d): %d matches, want %d", pg.offset, pg.limit, len(got), wantLen)
		}
		for k := range got {
			if matchKey(got[k]) != matchKey(want[int(pg.offset)+k]) {
				t.Fatalf("Page(%d,%d)[%d] = %v, want %v", pg.offset, pg.limit, k, got[k], want[int(pg.offset)+k])
			}
		}
	}
	if got := r.Page(uint64(len(want)), 5); got != nil {
		t.Fatalf("Page past the end returned %d matches", len(got))
	}
}

// TestMatchesSkipVsNext: Skip(k) then draining equals the tuple suffix —
// the Skip-vs-Next differential — on the ranked fast path.
func TestMatchesSkipVsNext(t *testing.T) {
	sp := spanjoin.MustCompile(".*x{a+}.*")
	doc := strings.Repeat("ab", 30) // 30 matches: skips land on both sides of the step threshold
	want := evalRef(t, sp, doc)
	for _, k := range []uint64{0, 1, 5, 20, uint64(len(want) - 1), uint64(len(want)), uint64(len(want)) + 100} {
		it, err := sp.Iterate(doc)
		if err != nil {
			t.Fatal(err)
		}
		skipped := it.Skip(k)
		wantSkip := k
		if k > uint64(len(want)) {
			wantSkip = uint64(len(want))
		}
		if skipped != wantSkip {
			t.Fatalf("Skip(%d) reported %d, want %d", k, skipped, wantSkip)
		}
		var rest []spanjoin.Match
		for {
			m, ok := it.Next()
			if !ok {
				break
			}
			rest = append(rest, m)
		}
		// spanlint/closecheck: a failure here must not read as exhaustion.
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if len(rest) != len(want)-int(wantSkip) {
			t.Fatalf("after Skip(%d): %d matches, want %d", k, len(rest), len(want)-int(wantSkip))
		}
		for i := range rest {
			if matchKey(rest[i]) != matchKey(want[int(wantSkip)+i]) {
				t.Fatalf("after Skip(%d) match %d diverges", k, i)
			}
		}
	}

	// Skip composes with prior Next calls (absolute position tracking).
	it, err := sp.Iterate(doc)
	if err != nil {
		t.Fatal(err)
	}
	it.Next()
	it.Next()
	it.Skip(3)
	m, ok := it.Next()
	if !ok || matchKey(m) != matchKey(want[5]) {
		t.Fatalf("Next,Next,Skip(3),Next = %v, want match 5 %v", m, want[5])
	}
	// spanlint/closecheck: the stepped iterator must not have faulted.
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMatchesSkipFallback covers the drain fallback on iterators that are
// not enumerator-backed (a canonical query plan).
func TestMatchesSkipFallback(t *testing.T) {
	q := spanjoin.NewQuery().Atom("a*x{a}a*").MustBuild()
	doc := "aaaaa"
	all, err := q.Evaluate(doc, spanjoin.WithStrategy(spanjoin.StrategyCanonical))
	if err != nil {
		t.Fatal(err)
	}
	it, err := q.Iterate(doc, spanjoin.WithStrategy(spanjoin.StrategyCanonical))
	if err != nil {
		t.Fatal(err)
	}
	if got := it.Skip(2); got != 2 {
		t.Fatalf("fallback Skip(2) = %d", got)
	}
	m, ok := it.Next()
	if !ok || matchKey(m) != matchKey(all[2]) {
		t.Fatalf("after fallback skip: %v, want %v", m, all[2])
	}
	// spanlint/closecheck: the fallback iterator must not have faulted.
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSpannerSample(t *testing.T) {
	sp := spanjoin.MustCompile(".*x{a+}.*")
	doc := strings.Repeat("a", 30)
	want := evalRef(t, sp, doc)
	keys := make(map[string]bool, len(want))
	for _, m := range want {
		keys[matchKey(m)] = true
	}
	ms, err := sp.Sample(doc, rand.New(rand.NewSource(1)), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 64 {
		t.Fatalf("Sample returned %d matches", len(ms))
	}
	distinct := map[string]bool{}
	for _, m := range ms {
		k := matchKey(m)
		if !keys[k] {
			t.Fatalf("sampled non-result %v", m)
		}
		distinct[k] = true
	}
	// 64 draws from 465 results: collisions allowed, degeneracy not.
	if len(distinct) < 16 {
		t.Fatalf("only %d distinct samples in 64 draws (seeded)", len(distinct))
	}
	// Same seed, same draw sequence.
	again, err := sp.Sample(doc, rand.New(rand.NewSource(1)), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if matchKey(ms[i]) != matchKey(again[i]) {
			t.Fatal("seeded sampling is not deterministic")
		}
	}
	// No matches → nil.
	none, err := sp.Sample("bbbb", rand.New(rand.NewSource(1)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Fatalf("Sample on an empty result set returned %d matches", len(none))
	}
}

// TestSpannerCountOverflow is the public face of the uint64-overflow
// acceptance case: k ordered disjoint spans over aᵐ count to the closed
// form C(m+k, 2k), here ≈ 3.9·10²⁸.
func TestSpannerCountOverflow(t *testing.T) {
	const k, m = 12, 200
	var sb strings.Builder
	sb.WriteString("a*")
	for i := 0; i < k; i++ {
		sb.WriteString("x")
		sb.WriteByte(byte('a' + i))
		sb.WriteString("{a+}a*")
	}
	sp := spanjoin.MustCompile(sb.String())
	n, err := sp.Count(strings.Repeat("a", m))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Uint64(); ok {
		t.Fatalf("count %v unexpectedly fits uint64", n)
	}
	want := new(big.Int).Binomial(m+k, 2*k)
	if n.BigInt().Cmp(want) != 0 {
		t.Fatalf("Count = %v, want C(%d,%d) = %v", n, m+k, 2*k, want)
	}
	if n.String() != want.String() {
		t.Fatalf("String = %q, want %q", n.String(), want.String())
	}
	// Ranks beyond uint64 stay addressable through ResultAtBig.
	r, err := sp.Ranked(strings.Repeat("a", m))
	if err != nil {
		t.Fatal(err)
	}
	deep := new(big.Int).Lsh(big.NewInt(1), 64) // rank 2^64
	mt, ok := r.ResultAtBig(deep)
	if !ok {
		t.Fatal("ResultAtBig(2^64) failed below Count")
	}
	if len(mt.Vars()) != k {
		t.Fatalf("deep match has %d vars, want %d", len(mt.Vars()), k)
	}
	if _, ok := r.ResultAtBig(want); ok {
		t.Fatal("ResultAtBig(Count) must fail")
	}
	if _, ok := r.ResultAtBig(big.NewInt(-1)); ok {
		t.Fatal("ResultAtBig(-1) must fail")
	}
}

// TestQueryCountStrategies: the ranked fast path and both drain paths
// must agree, with and without string equalities.
func TestQueryCountStrategies(t *testing.T) {
	q := spanjoin.NewQuery().
		Atom(".*x{[a-z]+}@.*").
		Atom(".*@y{[a-z]+}.*").
		MustBuild()
	doc := "ab@cd"
	ref, err := q.Evaluate(doc, spanjoin.WithStrategy(spanjoin.StrategyAutomata))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := q.Count(doc)
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := fast.Uint64(); !ok || u != uint64(len(ref)) {
		t.Fatalf("ranked Count = %v, automata Evaluate found %d", fast, len(ref))
	}
	canon, err := q.Count(doc, spanjoin.WithStrategy(spanjoin.StrategyCanonical))
	if err != nil {
		t.Fatal(err)
	}
	if canon.String() != fast.String() {
		t.Fatalf("canonical Count %v != ranked Count %v", canon, fast)
	}

	eq := spanjoin.NewQuery().
		Atom(".*x{a+}.*y{a+}.*").
		Equal("x", "y").
		MustBuild()
	eqDoc := "aabaa"
	eqRef, err := eq.Evaluate(eqDoc)
	if err != nil {
		t.Fatal(err)
	}
	eqCount, err := eq.Count(eqDoc)
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := eqCount.Uint64(); !ok || u != uint64(len(eqRef)) {
		t.Fatalf("equality Count = %v, Evaluate found %d", eqCount, len(eqRef))
	}
}
