package spanjoin_test

import (
	"strings"
	"testing"

	"spanjoin"
)

func TestSubspanPattern(t *testing.T) {
	sp := spanjoin.MustCompile(spanjoin.SubspanPattern("y", "x"))
	doc := "abc"
	ms, err := sp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		x, _ := m.Span("x")
		y, _ := m.Span("y")
		if !x.Contains(y) {
			t.Fatalf("α_sub violated: %v not within %v", y, x)
		}
	}
	// All pairs (x, y) with y ⊆ x over a 3-char string:
	// Σ_x over spans of #subspans of x = Σ_{len} (4-len choose 1)(len+1)(len+2)/2.
	want := 0
	for xs := 1; xs <= 4; xs++ {
		for xe := xs; xe <= 4; xe++ {
			l := xe - xs
			want += (l + 1) * (l + 2) / 2
		}
	}
	if len(ms) != want {
		t.Errorf("got %d pairs, want %d", len(ms), want)
	}
}

func TestTokenPattern(t *testing.T) {
	sp := spanjoin.MustCompile(spanjoin.TokenPattern("w", "police"))
	cases := map[string]int{
		"police here.":            1,
		"the police are here.":    1,
		"apolice policeman here.": 0, // must be delimited
		"police police.":          2,
		"nothing.":                0,
	}
	for doc, want := range cases {
		ms, err := sp.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != want {
			t.Errorf("token on %q: %d, want %d", doc, len(ms), want)
		}
		for _, m := range ms {
			if m.MustSubstr("w") != "police" {
				t.Errorf("token captured %q", m.MustSubstr("w"))
			}
		}
	}
	// Metacharacters in the word are escaped.
	esc := spanjoin.MustCompile(spanjoin.TokenPattern("w", "a.b"))
	ms, err := esc.Eval("a.b here.")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Errorf("escaped token: %d matches", len(ms))
	}
	if ms2, _ := esc.Eval("axb here."); len(ms2) != 0 {
		t.Error("dot must be literal after escaping")
	}
}

func TestSentencePattern(t *testing.T) {
	sp := spanjoin.MustCompile(spanjoin.SentencePattern("s"))
	doc := "First one here. Second one there. Third."
	ms, err := sp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range ms {
		got[m.MustSubstr("s")] = true
	}
	for _, want := range []string{"First one here.", "Second one there.", "Third."} {
		if !got[want] {
			t.Errorf("missing sentence %q (got %v)", want, got)
		}
	}
	if len(ms) != 3 {
		t.Errorf("got %d sentences, want 3", len(ms))
	}
}

func TestWordPattern(t *testing.T) {
	sp := spanjoin.MustCompile(spanjoin.WordPattern("w"))
	ms, err := sp.Eval("one two.")
	if err != nil {
		t.Fatal(err)
	}
	words := map[string]bool{}
	for _, m := range ms {
		words[m.MustSubstr("w")] = true
	}
	if !words["one"] || !words["two"] {
		t.Errorf("words = %v", words)
	}
	// Sub-words like "on" must not be delimited tokens... "one" is preceded
	// by start and followed by ' '; "on" is followed by 'e', not a boundary.
	if words["on"] || words["ne"] {
		t.Errorf("non-maximal word leaked: %v", words)
	}
	_ = strings.Contains
}
