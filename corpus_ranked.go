package spanjoin

import (
	"context"

	"spanjoin/internal/core"
	"spanjoin/internal/corpus"
)

// Count compiles the pattern (through the corpus cache) and returns the
// exact number of matches across every document — with no enumeration:
// shard workers aggregate per-document ranked counts (one graph build
// per document, cost independent of its result count), and documents the
// prefilter or skip index excludes count as 0 without being visited.
func (c *Corpus) Count(ctx context.Context, pattern string, opts ...Option) (MatchCount, error) {
	sp, err := c.compileCached("anchor", pattern, Compile)
	if err != nil {
		return MatchCount{}, err
	}
	return c.CountSpanner(ctx, sp, opts...)
}

// CountSearch is Count with substring semantics (CompileSearch).
func (c *Corpus) CountSearch(ctx context.Context, pattern string, opts ...Option) (MatchCount, error) {
	sp, err := c.compileCached("search", pattern, CompileSearch)
	if err != nil {
		return MatchCount{}, err
	}
	return c.CountSpanner(ctx, sp, opts...)
}

// CountSpanner is Count for a precompiled spanner (bypassing the cache).
// Counts honor WithTimeout and the corpus admission gate (shedding with
// ErrOverloaded); WithLimit and WithBudget apply to result streams only.
func (c *Corpus) CountSpanner(ctx context.Context, sp *Spanner, opts ...Option) (MatchCount, error) {
	res, err := c.countSpanner(ctx, sp, buildOptions(opts), false)
	if err != nil {
		return MatchCount{}, err
	}
	return newMatchCount(res.Total), nil
}

// CountAll is Count broken down by document: the exact per-document
// match counts, keyed by DocID. Documents without matches have no entry.
func (c *Corpus) CountAll(ctx context.Context, pattern string, opts ...Option) (map[DocID]MatchCount, error) {
	sp, err := c.compileCached("anchor", pattern, Compile)
	if err != nil {
		return nil, err
	}
	res, err := c.countSpanner(ctx, sp, buildOptions(opts), true)
	if err != nil {
		return nil, err
	}
	out := make(map[DocID]MatchCount, len(res.PerDoc))
	for _, dc := range res.PerDoc {
		out[dc.Doc] = newMatchCount(dc.N)
	}
	return out, nil
}

func (c *Corpus) countSpanner(ctx context.Context, sp *Spanner, o core.Options, perDoc bool) (*corpus.CountResult, error) {
	p, err := sp.compiledPlan()
	if err != nil {
		return nil, err
	}
	return c.store.CountPlan(ctx, p, c.evalOptions(sp.req, o), perDoc)
}

// CountQuery returns the exact corpus-wide result count of a conjunctive
// query. Equality-free queries not forced onto the canonical plan count
// through the shared compiled plan and the ranked DP (no enumeration
// anywhere); queries with string equalities or a forced canonical plan
// count by draining each document's per-document evaluation — still
// parallel and still prefiltered.
func (c *Corpus) CountQuery(ctx context.Context, q *Query, opts ...Option) (MatchCount, error) {
	o := buildOptions(opts)
	eo := c.evalOptions(q.requirement(), o)
	if len(q.cq.Equalities) == 0 && o.Strategy != core.Canonical {
		p, err := q.compiledPlan()
		if err != nil {
			return MatchCount{}, err
		}
		res, err := c.store.CountPlan(ctx, p, eo, false)
		if err != nil {
			return MatchCount{}, err
		}
		return newMatchCount(res.Total), nil
	}
	newEval, err := queryDocEval(q, o)
	if err != nil {
		return MatchCount{}, err
	}
	res, err := c.store.CountFunc(ctx, newEval, eo, false)
	if err != nil {
		return MatchCount{}, err
	}
	return newMatchCount(res.Total), nil
}

// Page is one deterministic page of a corpus evaluation: the window
// [offset, offset+limit) of the corpus-wide result sequence in ascending
// DocID order (each document's matches in the engine's radix order), the
// exact total, and the prefilter counters.
type Page struct {
	Matches []CorpusMatch
	Total   MatchCount
	Stats   EvalStats
}

// EvalPage compiles the pattern (through the corpus cache) and serves
// one page of its corpus-wide results. The counting sweep runs through
// the shard workers in parallel — documents outside the window
// contribute one ranked count each, a graph build, never an enumeration
// — and the window itself is entered with a single DAG descent, so page
// N costs the same as page 0: offset does not buy offset Next calls.
// The exact Total rides along for pagination UIs.
func (c *Corpus) EvalPage(ctx context.Context, pattern string, offset uint64, limit int, opts ...Option) (*Page, error) {
	sp, err := c.compileCached("anchor", pattern, Compile)
	if err != nil {
		return nil, err
	}
	return c.EvalSpannerPage(ctx, sp, offset, limit, opts...)
}

// EvalSearchPage is EvalPage with substring semantics (CompileSearch).
func (c *Corpus) EvalSearchPage(ctx context.Context, pattern string, offset uint64, limit int, opts ...Option) (*Page, error) {
	sp, err := c.compileCached("search", pattern, CompileSearch)
	if err != nil {
		return nil, err
	}
	return c.EvalSpannerPage(ctx, sp, offset, limit, opts...)
}

// EvalSpannerPage is EvalPage for a precompiled spanner. WithTimeout
// bounds both phases — the counting sweep and the page stream — via a
// derived context; WithLimit/WithBudget do not apply (the page's window
// is the limit).
func (c *Corpus) EvalSpannerPage(ctx context.Context, sp *Spanner, offset uint64, limit int, opts ...Option) (*Page, error) {
	o := buildOptions(opts)
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
		o.Timeout = 0 // the derived context carries the deadline
	}
	p, err := sp.compiledPlan()
	if err != nil {
		return nil, err
	}
	res, err := c.store.PagePlan(ctx, p, c.evalOptions(sp.req, o), offset, limit)
	if err != nil {
		return nil, err
	}
	page := &Page{
		Matches: make([]CorpusMatch, 0, len(res.Matches)),
		Total:   newMatchCount(res.Total),
		Stats:   EvalStats{Scanned: res.Scanned, Skipped: res.Skipped, SkippedIndex: res.SkippedIndex},
	}
	var (
		lastID  DocID
		lastDoc string
		have    bool
	)
	for _, r := range res.Matches {
		if !have || r.Doc != lastID {
			lastDoc, _ = c.store.Get(r.Doc)
			lastID, have = r.Doc, true
		}
		page.Matches = append(page.Matches, CorpusMatch{
			Doc:   r.Doc,
			Match: Match{vars: p.Vars(), tuple: r.Tuple, doc: lastDoc},
		})
	}
	return page, nil
}
