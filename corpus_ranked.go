package spanjoin

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/big"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"spanjoin/internal/core"
	"spanjoin/internal/corpus"
	"spanjoin/internal/ranked"
)

// Count compiles the pattern (through the corpus cache) and returns the
// exact number of matches across every document — with no enumeration:
// shard workers aggregate per-document ranked counts (one graph build
// per document, cost independent of its result count), and documents the
// prefilter or skip index excludes count as 0 without being visited.
func (c *Corpus) Count(ctx context.Context, pattern string, opts ...Option) (MatchCount, error) {
	sp, err := c.compileCached(ctx, "anchor", pattern, Compile)
	if err != nil {
		return MatchCount{}, err
	}
	return c.CountSpanner(ctx, sp, opts...)
}

// CountSearch is Count with substring semantics (CompileSearch).
func (c *Corpus) CountSearch(ctx context.Context, pattern string, opts ...Option) (MatchCount, error) {
	sp, err := c.compileCached(ctx, "search", pattern, CompileSearch)
	if err != nil {
		return MatchCount{}, err
	}
	return c.CountSpanner(ctx, sp, opts...)
}

// CountSpanner is Count for a precompiled spanner (bypassing the cache).
// Counts honor WithTimeout and the corpus admission gate (shedding with
// ErrOverloaded); WithLimit and WithBudget apply to result streams only.
func (c *Corpus) CountSpanner(ctx context.Context, sp *Spanner, opts ...Option) (MatchCount, error) {
	res, err := c.countSpanner(ctx, sp, buildOptions(opts), false)
	if err != nil {
		return MatchCount{}, err
	}
	return newMatchCount(res.Total), nil
}

// CountAll is Count broken down by document: the exact per-document
// match counts, keyed by DocID. Documents without matches have no entry.
func (c *Corpus) CountAll(ctx context.Context, pattern string, opts ...Option) (map[DocID]MatchCount, error) {
	sp, err := c.compileCached(ctx, "anchor", pattern, Compile)
	if err != nil {
		return nil, err
	}
	res, err := c.countSpanner(ctx, sp, buildOptions(opts), true)
	if err != nil {
		return nil, err
	}
	out := make(map[DocID]MatchCount, len(res.PerDoc))
	for _, dc := range res.PerDoc {
		out[dc.Doc] = newMatchCount(dc.N)
	}
	return out, nil
}

func (c *Corpus) countSpanner(ctx context.Context, sp *Spanner, o core.Options, perDoc bool) (*corpus.CountResult, error) {
	p, built, err := sp.compiledPlan()
	if err != nil {
		return nil, err
	}
	c.recordPlanBuild(ctx, p, built)
	return c.store.CountPlan(ctx, p, c.evalOptions(sp.req, o), perDoc)
}

// CountQuery returns the exact corpus-wide result count of a conjunctive
// query. Equality-free queries not forced onto the canonical plan count
// through the shared compiled plan and the ranked DP (no enumeration
// anywhere); queries with string equalities or a forced canonical plan
// count by draining each document's per-document evaluation — still
// parallel and still prefiltered.
func (c *Corpus) CountQuery(ctx context.Context, q *Query, opts ...Option) (MatchCount, error) {
	o := buildOptions(opts)
	eo := c.evalOptions(q.requirement(), o)
	if len(q.cq.Equalities) == 0 && o.Strategy != core.Canonical {
		p, built, err := q.compiledPlan()
		if err != nil {
			return MatchCount{}, err
		}
		c.recordPlanBuild(ctx, p, built)
		res, err := c.store.CountPlan(ctx, p, eo, false)
		if err != nil {
			return MatchCount{}, err
		}
		return newMatchCount(res.Total), nil
	}
	newEval, err := queryDocEval(q, o)
	if err != nil {
		return MatchCount{}, err
	}
	res, err := c.store.CountFunc(ctx, newEval, eo, false)
	if err != nil {
		return MatchCount{}, err
	}
	return newMatchCount(res.Total), nil
}

// Page is one deterministic page of a corpus evaluation: the window
// [offset, offset+limit) of the corpus-wide result sequence in ascending
// DocID order (each document's matches in the engine's radix order), the
// exact total, and the prefilter counters.
type Page struct {
	Matches []CorpusMatch
	Total   MatchCount
	Stats   EvalStats
}

// EvalPage compiles the pattern (through the corpus cache) and serves
// one page of its corpus-wide results. The counting sweep runs through
// the shard workers in parallel — documents outside the window
// contribute one ranked count each, a graph build, never an enumeration
// — and the window itself is entered with a single DAG descent, so page
// N costs the same as page 0: offset does not buy offset Next calls.
// The exact Total rides along for pagination UIs.
func (c *Corpus) EvalPage(ctx context.Context, pattern string, offset uint64, limit int, opts ...Option) (*Page, error) {
	sp, err := c.compileCached(ctx, "anchor", pattern, Compile)
	if err != nil {
		return nil, err
	}
	return c.EvalSpannerPage(ctx, sp, offset, limit, opts...)
}

// EvalSearchPage is EvalPage with substring semantics (CompileSearch).
func (c *Corpus) EvalSearchPage(ctx context.Context, pattern string, offset uint64, limit int, opts ...Option) (*Page, error) {
	sp, err := c.compileCached(ctx, "search", pattern, CompileSearch)
	if err != nil {
		return nil, err
	}
	return c.EvalSpannerPage(ctx, sp, offset, limit, opts...)
}

// EvalSpannerPage is EvalPage for a precompiled spanner. WithTimeout
// bounds both phases — the counting sweep and the page stream — via a
// derived context; WithLimit/WithBudget do not apply (the page's window
// is the limit).
func (c *Corpus) EvalSpannerPage(ctx context.Context, sp *Spanner, offset uint64, limit int, opts ...Option) (*Page, error) {
	o := buildOptions(opts)
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
		o.Timeout = 0 // the derived context carries the deadline
	}
	p, built, err := sp.compiledPlan()
	if err != nil {
		return nil, err
	}
	c.recordPlanBuild(ctx, p, built)
	res, err := c.store.PagePlan(ctx, p, c.evalOptions(sp.req, o), offset, limit)
	if err != nil {
		return nil, err
	}
	page := &Page{
		Matches: make([]CorpusMatch, 0, len(res.Matches)),
		Total:   newMatchCount(res.Total),
		Stats:   EvalStats{Scanned: res.Scanned, Skipped: res.Skipped, SkippedIndex: res.SkippedIndex},
	}
	var (
		lastID  DocID
		lastDoc string
		have    bool
	)
	for _, r := range res.Matches {
		if !have || r.Doc != lastID {
			lastDoc, _ = c.store.Get(r.Doc)
			lastID, have = r.Doc, true
		}
		page.Matches = append(page.Matches, CorpusMatch{
			Doc:   r.Doc,
			Match: Match{vars: p.Vars(), tuple: r.Tuple, doc: lastDoc},
		})
	}
	return page, nil
}

// Sample draws k matches i.i.d. uniformly (with replacement) from the
// corpus-wide result set of the pattern, compiled through the corpus
// cache. Uniformity is exact at any result-set size, including corpus
// totals beyond 2^64: one parallel counting sweep weights the documents,
// then each draw is a weighted document pick plus one ranked DAG descent
// — no enumeration anywhere. Returns nil when there are no matches.
func (c *Corpus) Sample(ctx context.Context, pattern string, rng *rand.Rand, k int, opts ...Option) ([]CorpusMatch, error) {
	sp, err := c.compileCached(ctx, "anchor", pattern, Compile)
	if err != nil {
		return nil, err
	}
	return c.SampleSpanner(ctx, sp, rng, k, opts...)
}

// SampleSearch is Sample with substring semantics (CompileSearch).
func (c *Corpus) SampleSearch(ctx context.Context, pattern string, rng *rand.Rand, k int, opts ...Option) ([]CorpusMatch, error) {
	sp, err := c.compileCached(ctx, "search", pattern, CompileSearch)
	if err != nil {
		return nil, err
	}
	return c.SampleSpanner(ctx, sp, rng, k, opts...)
}

// SampleSpanner is Sample for a precompiled spanner. The counting sweep
// honors WithTimeout and the admission gate; ranked views built for the
// draws are cached per document, so k draws cost at most min(k, matched
// docs) graph builds on top of the sweep.
func (c *Corpus) SampleSpanner(ctx context.Context, sp *Spanner, rng *rand.Rand, k int, opts ...Option) ([]CorpusMatch, error) {
	if k <= 0 {
		return nil, nil
	}
	res, err := c.countSpanner(ctx, sp, buildOptions(opts), true)
	if err != nil {
		return nil, err
	}
	if res.Total.IsZero() {
		return nil, nil
	}
	// Cumulative per-doc counts in ascending DocID order (PerDoc is
	// sorted); big.Int throughout so totals past 2^64 keep exact weights.
	cum := make([]*big.Int, len(res.PerDoc))
	running := new(big.Int)
	for i, dc := range res.PerDoc {
		running = new(big.Int).Add(running, dc.N.BigInt())
		cum[i] = running
	}
	total := cum[len(cum)-1]
	views := make(map[DocID]*Ranked, k)
	out := make([]CorpusMatch, 0, k)
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := ranked.RandBelow(rng, total)
		j := sort.Search(len(cum), func(j int) bool { return cum[j].Cmp(r) > 0 })
		dc := res.PerDoc[j]
		within := new(big.Int).Sub(r, new(big.Int).Sub(cum[j], dc.N.BigInt()))
		rk := views[dc.Doc]
		if rk == nil {
			doc, ok := c.store.Get(dc.Doc)
			if !ok {
				return nil, fmt.Errorf("spanjoin: document %d vanished mid-sample", dc.Doc)
			}
			if rk, err = sp.Ranked(doc); err != nil {
				return nil, err
			}
			views[dc.Doc] = rk
		}
		m, ok := rk.ResultAtBig(within)
		if !ok {
			return nil, fmt.Errorf("spanjoin: rank %v inconsistent with count of document %d", within, dc.Doc)
		}
		out = append(out, CorpusMatch{Doc: dc.Doc, Match: m})
	}
	return out, nil
}

// Cursor is a resumable position in a paginated corpus evaluation: the
// compilation mode ("anchor" or "search"), the pattern, and the rank of
// the next result to serve. Token/ParseCursor round-trip it through an
// opaque URL-safe string, so services can hand deep-pagination state to
// clients without keeping any per-client state server-side — resuming a
// cursor is one EvalSpannerPage call, O(1) per page at any depth.
type Cursor struct {
	Mode    string // "anchor" (Compile) or "search" (CompileSearch)
	Pattern string
	Offset  uint64
}

// ErrBadCursor is returned by ParseCursor for tokens that are truncated,
// corrupted, or not produced by Cursor.Token. Detect with errors.Is.
var ErrBadCursor = errors.New("spanjoin: malformed page cursor")

// cursorPrefix versions the token format; unknown prefixes are rejected
// rather than misparsed.
const cursorPrefix = "sj1."

// cursorPayload is the token's wire form. The checksum rejects tokens
// corrupted in transit (or hand-edited) before they can misaddress a
// window.
type cursorPayload struct {
	Mode    string `json:"m"`
	Pattern string `json:"p"`
	Offset  uint64 `json:"o"`
	Sum     uint32 `json:"c"`
}

// sum is the cursor's integrity checksum over every addressing field.
func (c Cursor) sum() uint32 {
	return crc32.ChecksumIEEE([]byte(c.Mode + "\x00" + c.Pattern + "\x00" + strconv.FormatUint(c.Offset, 10)))
}

// Token encodes the cursor as an opaque URL-safe string.
func (c Cursor) Token() string {
	b, err := json.Marshal(cursorPayload{Mode: c.Mode, Pattern: c.Pattern, Offset: c.Offset, Sum: c.sum()})
	if err != nil {
		// Marshaling strings and integers cannot fail.
		panic(err)
	}
	return cursorPrefix + base64.RawURLEncoding.EncodeToString(b)
}

// ParseCursor decodes a token produced by Token, rejecting anything
// malformed or checksum-inconsistent with ErrBadCursor.
func ParseCursor(tok string) (Cursor, error) {
	rest, ok := strings.CutPrefix(tok, cursorPrefix)
	if !ok {
		return Cursor{}, fmt.Errorf("%w: missing %q prefix", ErrBadCursor, cursorPrefix)
	}
	raw, err := base64.RawURLEncoding.DecodeString(rest)
	if err != nil {
		return Cursor{}, fmt.Errorf("%w: %v", ErrBadCursor, err)
	}
	var p cursorPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return Cursor{}, fmt.Errorf("%w: %v", ErrBadCursor, err)
	}
	c := Cursor{Mode: p.Mode, Pattern: p.Pattern, Offset: p.Offset}
	if c.Mode != "anchor" && c.Mode != "search" {
		return Cursor{}, fmt.Errorf("%w: unknown mode %q", ErrBadCursor, p.Mode)
	}
	if c.sum() != p.Sum {
		return Cursor{}, fmt.Errorf("%w: checksum mismatch", ErrBadCursor)
	}
	return c, nil
}

// Advance returns the cursor positioned after a page that delivered n
// results. The addition saturates at the maximum uint64 rank instead of
// wrapping, so a cursor advanced past the end of the addressable space
// stays terminal — it pages out as exhausted, never back to rank 0.
func (c Cursor) Advance(n uint64) Cursor {
	if c.Offset+n < c.Offset {
		c.Offset = math.MaxUint64
	} else {
		c.Offset += n
	}
	return c
}

// EvalCursor serves the page a cursor addresses and returns the advanced
// cursor for the page after it; more is false when the result sequence is
// exhausted at (or before) the returned cursor — including the saturation
// boundary, where ranks past 2^64-1 exist but are not uint64-addressable.
// The pattern compiles through the corpus cache under the cursor's mode,
// so resumed cursors share the original query's compiled plan.
func (c *Corpus) EvalCursor(ctx context.Context, cur Cursor, limit int, opts ...Option) (page *Page, next Cursor, more bool, err error) {
	switch cur.Mode {
	case "", "anchor":
		page, err = c.EvalPage(ctx, cur.Pattern, cur.Offset, limit, opts...)
	case "search":
		page, err = c.EvalSearchPage(ctx, cur.Pattern, cur.Offset, limit, opts...)
	default:
		return nil, cur, false, fmt.Errorf("%w: unknown mode %q", ErrBadCursor, cur.Mode)
	}
	if err != nil {
		return nil, cur, false, err
	}
	next = cur.Advance(uint64(len(page.Matches)))
	// A short page means the window ran off the end; a saturated advance
	// means the rest of the sequence is beyond uint64 addressing.
	if len(page.Matches) == limit && next.Offset > cur.Offset && next.Offset < math.MaxUint64 {
		if t, fits := page.Total.Uint64(); !fits || next.Offset < t {
			more = true
		}
	}
	return page, next, more, nil
}
