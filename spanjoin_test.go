package spanjoin_test

import (
	"strings"
	"testing"

	"spanjoin"
)

func TestCompileAndEval(t *testing.T) {
	sp := spanjoin.MustCompile(`.* mail{user{[a-z]+}@domain{[a-z]+\.[a-z]+}} .*`)
	doc := " write to alice@example.org or bob@dev.net today "
	ms, err := sp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range ms {
		got[m.MustSubstr("mail")] = true
		u, _ := m.Substr("user")
		d, _ := m.Substr("domain")
		if m.MustSubstr("mail") != u+"@"+d {
			t.Errorf("mail != user@domain: %v", m)
		}
	}
	if !got["alice@example.org"] || !got["bob@dev.net"] {
		t.Errorf("extracted %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := spanjoin.Compile("x{a}|y{b}"); err == nil {
		t.Error("non-functional pattern must be rejected")
	}
	if _, err := spanjoin.Compile("(unclosed"); err == nil {
		t.Error("syntax error must be rejected")
	}
}

func TestMatchAccessors(t *testing.T) {
	sp := spanjoin.MustCompile(".*x{ab}.*")
	ms, err := sp.Eval("zabz")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d matches", len(ms))
	}
	m := ms[0]
	p, ok := m.Span("x")
	if !ok || p.Start != 2 || p.End != 4 {
		t.Errorf("Span(x) = %v, %v", p, ok)
	}
	if _, ok := m.Span("nope"); ok {
		t.Error("unknown variable should report !ok")
	}
	if s := m.String(); !strings.Contains(s, "x=") || !strings.Contains(s, `"ab"`) {
		t.Errorf("String() = %q", s)
	}
	if vars := m.Vars(); len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Vars() = %v", vars)
	}
}

func TestMustSubstrPanics(t *testing.T) {
	sp := spanjoin.MustCompile(".*x{a}.*")
	ms, _ := sp.Eval("a")
	defer func() {
		if recover() == nil {
			t.Error("MustSubstr on unknown variable should panic")
		}
	}()
	ms[0].MustSubstr("ghost")
}

func TestIterateStreaming(t *testing.T) {
	sp := spanjoin.MustCompile("a*x{a*}a*")
	it, err := sp.Iterate("aaaa")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	// spanlint/closecheck: a failure here must not read as exhaustion.
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 15 { // spans of a 4-char string: 5·6/2
		t.Errorf("got %d matches, want 15", n)
	}
}

func TestAlgebra(t *testing.T) {
	a := spanjoin.MustCompile(".*x{a+}.*")
	b := spanjoin.MustCompile(".*x{aa}.*")
	j, err := spanjoin.Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := j.Eval("aaa")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.MustSubstr("x") != "aa" {
			t.Errorf("join should pin x to aa runs, got %q", m.MustSubstr("x"))
		}
	}
	if len(ms) != 2 {
		t.Errorf("got %d joined matches, want 2", len(ms))
	}

	u, err := spanjoin.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ums, err := u.Eval("aaa")
	if err != nil {
		t.Fatal(err)
	}
	ams, _ := a.Eval("aaa")
	if len(ums) != len(ams) { // b's results are a subset of a's
		t.Errorf("union: %d, want %d", len(ums), len(ams))
	}

	two := spanjoin.MustCompile(".*x{a}y{b}.*")
	p, err := spanjoin.Project(two, "x")
	if err != nil {
		t.Fatal(err)
	}
	if vars := p.Vars(); len(vars) != 1 || vars[0] != "x" {
		t.Errorf("projected vars = %v", vars)
	}
}

func TestKeyAttribute(t *testing.T) {
	sp := spanjoin.MustCompile(".*x{a}y{b}.*")
	ok, err := sp.KeyAttribute("x")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("x should be a key attribute")
	}
	sp2 := spanjoin.MustCompile(".*x{a}.*y{b}.*")
	ok, err = sp2.KeyAttribute("x")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("x should not be a key attribute")
	}
}

func TestQueryBuilder(t *testing.T) {
	doc := "tok tok end"
	q, err := spanjoin.NewQuery().
		AtomNamed("first", `x{[a-z]+} .*`).
		AtomNamed("second", `.* y{[a-z]+} .*|.* y{[a-z]+}`).
		Equal("x", "y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []spanjoin.Strategy{spanjoin.StrategyCanonical, spanjoin.StrategyAutomata} {
		ms, err := q.Evaluate(doc, spanjoin.WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range ms {
			x := m.MustSubstr("x")
			y := m.MustSubstr("y")
			if x != y {
				t.Errorf("ζ= violated: %q vs %q", x, y)
			}
			if x == "tok" {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: expected tok=tok pair", strat)
		}
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	if _, err := spanjoin.NewQuery().Build(); err == nil {
		t.Error("empty query must fail")
	}
	if _, err := spanjoin.NewQuery().Atom("x{a}x{a}").Build(); err == nil {
		t.Error("non-functional atom must fail")
	}
	if _, err := spanjoin.NewQuery().Atom("x{a}").Project("ghost").Build(); err == nil {
		t.Error("projection on unbound variable must fail")
	}
	if _, err := spanjoin.NewQuery().Atom("x{a}").Equal("x", "ghost").Build(); err == nil {
		t.Error("equality on unbound variable must fail")
	}
}

func TestBooleanQueryExists(t *testing.T) {
	q := spanjoin.NewQuery().
		Atom(".*x{Belgium}.*").
		Atom(".*y{police}.*").
		Project().
		MustBuild()
	ok, err := q.Exists("near Belgium police station")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("expected true")
	}
	ok, err = q.Exists("near France police station")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("expected false")
	}
}

func TestUnionQuery(t *testing.T) {
	q1 := spanjoin.NewQuery().Atom(".*x{aa}.*").MustBuild()
	q2 := spanjoin.NewQuery().Atom(".*x{ab}.*").MustBuild()
	u, err := spanjoin.NewUnion(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := u.Evaluate("aab")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range ms {
		got[m.MustSubstr("x")] = true
	}
	if !got["aa"] || !got["ab"] {
		t.Errorf("union missing matches: %v", got)
	}
	// Mismatched schemas rejected.
	q3 := spanjoin.NewQuery().Atom(".*z{a}.*").MustBuild()
	if _, err := spanjoin.NewUnion(q1, q3); err == nil {
		t.Error("union with mismatched schemas must fail")
	}
}

func TestAcyclicityAccessors(t *testing.T) {
	tri := spanjoin.NewQuery().
		Atom(".*x{a}y{b}.*").
		Atom(".*y{b}z{a}.*").
		Atom(".*x{a}.*z{a}.*").
		MustBuild()
	if tri.IsAcyclic() {
		t.Error("triangle should be cyclic")
	}
	chain := spanjoin.NewQuery().
		Atom(".*x{a}y{b}.*").
		Atom(".*y{b}z{a}.*").
		MustBuild()
	if !chain.IsAcyclic() || !chain.IsGammaAcyclic() {
		t.Error("chain should be acyclic")
	}
}

func TestSpannerStats(t *testing.T) {
	sp := spanjoin.MustCompile(".*x{a}.*")
	states, trans := sp.Stats()
	if states == 0 || trans == 0 {
		t.Error("stats should be positive")
	}
}

func TestDeterministicOrder(t *testing.T) {
	sp := spanjoin.MustCompile("a*x{a*}a*")
	a, _ := sp.Eval("aaa")
	b, _ := sp.Eval("aaa")
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		pa, _ := a[i].Span("x")
		pb, _ := b[i].Span("x")
		if pa != pb {
			t.Fatalf("order differs at %d", i)
		}
	}
}
