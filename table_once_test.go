package spanjoin_test

import (
	"context"
	"testing"

	"spanjoin"
	"spanjoin/internal/vsa"
)

func drainCorpus(t *testing.T, ms *spanjoin.CorpusMatches) int {
	t.Helper()
	n := 0
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
		n++
	}
	if err := ms.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCompiledTableBuiltOncePerCachedQuery asserts — via the construction
// counter, not by inspection — that the byte-class transition table is
// built exactly once per cached corpus query: repeated Eval calls on one
// corpus hit the compiled-query cache, whose Spanner memoizes its plan.
func TestCompiledTableBuiltOncePerCachedQuery(t *testing.T) {
	c := spanjoin.NewCorpus(spanjoin.WithShards(2), spanjoin.WithWorkers(3))
	c.AddAll("aab", "abab", "bb", "aaaa", "ba")

	pattern := `(a|b)*x{a+}(a|b)*`
	before := vsa.TableBuildCount()
	ms, err := c.Eval(context.Background(), pattern)
	if err != nil {
		t.Fatal(err)
	}
	first := drainCorpus(t, ms)
	if first == 0 {
		t.Fatal("test pattern matched nothing")
	}
	for i := 0; i < 3; i++ {
		ms, err := c.Eval(context.Background(), pattern)
		if err != nil {
			t.Fatal(err)
		}
		if n := drainCorpus(t, ms); n != first {
			t.Fatalf("repeat eval %d returned %d matches, first returned %d", i, n, first)
		}
	}
	if got := vsa.TableBuildCount() - before; got != 1 {
		t.Fatalf("transition table built %d times across 4 cached evaluations, want exactly 1", got)
	}
	if st := c.CacheStats(); st.Hits < 3 {
		t.Fatalf("cache hits = %d, want ≥ 3 (the table-once guarantee rides on the cache)", st.Hits)
	}

	// The equality-free EvalQuery fast path memoizes its plan on the Query.
	q := spanjoin.NewQuery().Atom(`(a|b)*x{a+}(a|b)*`).MustBuild()
	before = vsa.TableBuildCount()
	qm1, err := c.EvalQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	n1 := drainCorpus(t, qm1)
	qm2, err := c.EvalQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	n2 := drainCorpus(t, qm2)
	if n1 != n2 {
		t.Fatalf("repeated EvalQuery disagrees: %d vs %d", n1, n2)
	}
	if got := vsa.TableBuildCount() - before; got != 1 {
		t.Fatalf("query plan's table built %d times across 2 evaluations, want exactly 1", got)
	}
}
