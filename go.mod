module spanjoin

go 1.24
