package spanjoin_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"spanjoin"
)

func TestCursorTokenRoundTrip(t *testing.T) {
	for _, cur := range []spanjoin.Cursor{
		{Mode: "anchor", Pattern: `.*x{mail}.*`, Offset: 0},
		{Mode: "search", Pattern: `x{a+}`, Offset: 12345},
		{Mode: "anchor", Pattern: "p with spaces + []{}", Offset: math.MaxUint64},
	} {
		tok := cur.Token()
		got, err := spanjoin.ParseCursor(tok)
		if err != nil {
			t.Fatalf("ParseCursor(%q): %v", tok, err)
		}
		if got != cur {
			t.Errorf("round trip: got %+v, want %+v", got, cur)
		}
	}
}

func TestCursorTokenRejectsTampering(t *testing.T) {
	tok := spanjoin.Cursor{Mode: "anchor", Pattern: "x{a}", Offset: 7}.Token()
	bad := []string{
		"",
		"sj1.",
		"not-a-token",
		"sj2." + strings.TrimPrefix(tok, "sj1."), // unknown version
		tok + "AA",                               // trailing garbage
		tok[:len(tok)-2],                         // truncated
		// Flip a payload character: either invalid JSON/base64 or a
		// checksum mismatch — both must reject.
		tok[:5] + string('A'+(tok[5]-'A'+1)%26) + tok[6:],
	}
	for _, b := range bad {
		if _, err := spanjoin.ParseCursor(b); !errors.Is(err, spanjoin.ErrBadCursor) {
			t.Errorf("ParseCursor(%q) = %v, want ErrBadCursor", b, err)
		}
	}
}

func TestCursorAdvanceSaturates(t *testing.T) {
	c := spanjoin.Cursor{Mode: "anchor", Pattern: "x{a}", Offset: math.MaxUint64 - 3}
	if got := c.Advance(2).Offset; got != math.MaxUint64-1 {
		t.Errorf("Advance(2) = %d, want %d", got, uint64(math.MaxUint64-1))
	}
	// Offsets never wrap: past the addressable space they pin to MaxUint64.
	if got := c.Advance(10).Offset; got != math.MaxUint64 {
		t.Errorf("Advance(10) = %d, want saturation at MaxUint64", got)
	}
	sat := spanjoin.Cursor{Offset: math.MaxUint64}
	if got := sat.Advance(1).Offset; got != math.MaxUint64 {
		t.Errorf("saturated Advance(1) = %d, want MaxUint64", got)
	}
}

// TestEvalCursorMatchesSpannerPage drives pagination through cursor
// tokens (parse → eval → advance → re-encode, like a client would) and
// checks every page is identical to addressing the same window directly
// with EvalSpannerPage.
func TestEvalCursorMatchesSpannerPage(t *testing.T) {
	c, _ := rankedTestCorpus(t, spanjoin.WithShards(3))
	const pattern = `.*x{mail}.*`
	sp, err := spanjoin.Compile(pattern)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const limit = 2
	cur := spanjoin.Cursor{Mode: "anchor", Pattern: pattern}
	var got []spanjoin.CorpusMatch
	for pages := 0; ; pages++ {
		if pages > 100 {
			t.Fatal("pagination did not terminate")
		}
		// Round-trip through the token each page, as a stateless client would.
		cur, err = spanjoin.ParseCursor(cur.Token())
		if err != nil {
			t.Fatal(err)
		}
		page, next, more, err := c.EvalCursor(ctx, cur, limit)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := c.EvalSpannerPage(ctx, sp, cur.Offset, limit)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Matches) != len(ref.Matches) {
			t.Fatalf("page at %d: %d matches, EvalSpannerPage %d", cur.Offset, len(page.Matches), len(ref.Matches))
		}
		for i := range page.Matches {
			if page.Matches[i].Doc != ref.Matches[i].Doc || page.Matches[i].Match.String() != ref.Matches[i].Match.String() {
				t.Fatalf("page at %d, row %d: %v != %v", cur.Offset, i, page.Matches[i], ref.Matches[i])
			}
		}
		got = append(got, page.Matches...)
		if !more {
			break
		}
		cur = next
	}
	// The concatenation of all pages is the whole result sequence.
	total, err := c.Count(ctx, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := total.Uint64(); !ok || u != uint64(len(got)) {
		t.Fatalf("paged out %d matches, Count says %v", len(got), total)
	}
}

// TestEvalPageOffsetBoundary is the satellite regression test: offsets
// at and near math.MaxUint64 — where offset+limit would wrap a uint64 —
// must come back as exhausted pages, never as a wrapped window serving
// rank-0 results.
func TestEvalPageOffsetBoundary(t *testing.T) {
	c, _ := rankedTestCorpus(t, spanjoin.WithShards(2))
	const pattern = `.*x{mail}.*`
	ctx := context.Background()
	total, err := c.Count(ctx, pattern)
	if err != nil {
		t.Fatal(err)
	}
	tu, ok := total.Uint64()
	if !ok || tu == 0 {
		t.Fatalf("unexpected total %v", total)
	}
	for _, offset := range []uint64{tu, tu + 1, math.MaxUint64 - 1, math.MaxUint64} {
		for _, limit := range []int{1, 7, 1 << 20} {
			page, err := c.EvalPage(ctx, pattern, offset, limit)
			if err != nil {
				t.Fatalf("offset %d limit %d: %v", offset, limit, err)
			}
			if len(page.Matches) != 0 {
				t.Fatalf("offset %d limit %d: got %d matches, want exhausted page", offset, limit, len(page.Matches))
			}
			if u, okT := page.Total.Uint64(); !okT || u != tu {
				t.Fatalf("offset %d: total %v, want %d", offset, page.Total, tu)
			}
		}
	}
	// The cursor layer agrees: a saturated cursor is terminal.
	page, next, more, err := c.EvalCursor(ctx, spanjoin.Cursor{Mode: "anchor", Pattern: pattern, Offset: math.MaxUint64}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Matches) != 0 || more {
		t.Fatalf("cursor at MaxUint64: %d matches, more=%v; want empty terminal page", len(page.Matches), more)
	}
	if next.Offset != math.MaxUint64 {
		t.Fatalf("cursor advanced from MaxUint64 to %d", next.Offset)
	}
}

func TestCorpusSampleUniform(t *testing.T) {
	c, _ := rankedTestCorpus(t, spanjoin.WithShards(2))
	const pattern = `.*x{mail}.*`
	ctx := context.Background()
	ms, err := c.Sample(ctx, pattern, rand.New(rand.NewSource(42)), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 64 {
		t.Fatalf("got %d samples, want 64", len(ms))
	}
	// Every draw is a genuine match of its document.
	for _, m := range ms {
		s, ok := m.Match.Substr("x")
		if !ok || s != "mail" {
			t.Fatalf("sample bound x=%q ok=%v, want \"mail\"", s, ok)
		}
		if text, ok := c.Doc(m.Doc); !ok || !strings.Contains(text, "mail") {
			t.Fatalf("sample from doc %d (%q), which has no match", m.Doc, text)
		}
	}
	// Same seed, same draws — the contract /sample's seed parameter
	// exposes over the wire.
	again, err := c.Sample(ctx, pattern, rand.New(rand.NewSource(42)), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if ms[i].Doc != again[i].Doc || ms[i].Match.String() != again[i].Match.String() {
			t.Fatalf("draw %d differs under the same seed", i)
		}
	}
	// Doc 2 ("aa mail mail aa") holds 2 of the corpus's matches; with 64
	// draws over a handful of matches, every matched document should be
	// hit at least once (the chance of missing one is astronomically
	// small for a uniform sampler).
	seen := map[spanjoin.DocID]bool{}
	for _, m := range ms {
		seen[m.Doc] = true
	}
	n, _ := c.Count(ctx, pattern)
	if u, _ := n.Uint64(); u >= 3 && len(seen) < 3 {
		t.Errorf("64 uniform draws hit only docs %v", seen)
	}
	// k <= 0 and empty result sets are nil, not errors.
	if ms, err := c.Sample(ctx, pattern, rand.New(rand.NewSource(1)), 0); err != nil || ms != nil {
		t.Errorf("k=0: got %v, %v", ms, err)
	}
	if ms, err := c.Sample(ctx, `.*x{zzzz}.*`, rand.New(rand.NewSource(1)), 5); err != nil || ms != nil {
		t.Errorf("no matches: got %v, %v", ms, err)
	}
}
