package spanjoin_test

import (
	"strings"
	"testing"

	"spanjoin"
	"spanjoin/internal/workload"
)

// TestIntegrationDocumentPipeline runs a realistic multi-stage extraction on
// a generated document, cross-validating both evaluation strategies and the
// membership test.
func TestIntegrationDocumentPipeline(t *testing.T) {
	doc := workload.Document(workload.Rand(314), workload.DocumentOptions{
		Sentences: 15, AddressRate: 0.4, PoliceRate: 0.4, EmailRate: 0.4,
	})

	// Stage 1: extract e-mails with nested captures.
	emails := spanjoin.MustCompileSearch(` mail{user{[a-z]+}@domain{[a-z]+\.[a-z]+}}[ .]`)
	ms, err := emails.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		mail := m.MustSubstr("mail")
		if !strings.Contains(mail, "@") {
			t.Errorf("bad email %q", mail)
		}
		// Every enumerated match must pass the membership test.
		assign := map[string]spanjoin.Span{}
		for _, v := range m.Vars() {
			p, _ := m.Span(v)
			assign[v] = p
		}
		ok, err := emails.MatchesAt(doc, assign)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("MatchesAt rejects enumerated match %v", m)
		}
	}

	// Stage 2: a CQ joining sentences with contained addresses, both plans.
	q := spanjoin.NewQuery().
		AtomNamed("sen", `(.*\. )?x{[A-Za-z0-9 ]+\.}( .*)?`).
		AtomNamed("adr", `.*y{[A-Za-z]+ Belgium}.*`).
		AtomNamed("sub", `.*x{.*y{.*}.*}.*`).
		Project("x", "y").
		MustBuild()
	auto, err := q.Evaluate(doc, spanjoin.WithStrategy(spanjoin.StrategyAutomata))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range auto {
		x := m.MustSubstr("x")
		y := m.MustSubstr("y")
		if !strings.Contains(x, y) {
			t.Errorf("containment violated: %q not in %q", y, x)
		}
		if !strings.HasSuffix(y, "Belgium") {
			t.Errorf("address %q does not end in Belgium", y)
		}
	}

	// Stage 3: Boolean existence with the Auto planner.
	exists := spanjoin.NewQuery().
		Atom(`.*p{police}.*`).
		Atom(`.*b{Belgium}.*`).
		Project().
		MustBuild()
	ok, err := exists.Exists(doc)
	if err != nil {
		t.Fatal(err)
	}
	wantExists := strings.Contains(doc, "police") && strings.Contains(doc, "Belgium")
	if ok != wantExists {
		t.Errorf("Exists = %v, document inspection says %v", ok, wantExists)
	}
}

// TestIntegrationUnionWithEqualities: a UCQ where one disjunct carries a
// string-equality selection, both strategies.
func TestIntegrationUnionWithEqualities(t *testing.T) {
	doc := "aa bb aa"
	// Disjunct 1: pairs of equal two-char tokens.
	q1 := spanjoin.NewQuery().
		AtomNamed("pair", `x{..} .*y{..}|x{..}.* y{..}`).
		Equal("x", "y").
		Project("x", "y").
		MustBuild()
	// Disjunct 2: x = first token, y = last token, unconditionally.
	q2 := spanjoin.NewQuery().
		AtomNamed("ends", `x{..}.* y{..}`).
		Project("x", "y").
		MustBuild()
	u, err := spanjoin.NewUnion(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	autoRes, err := u.Evaluate(doc, spanjoin.WithStrategy(spanjoin.StrategyAutomata))
	if err != nil {
		t.Fatal(err)
	}
	canRes, err := u.Evaluate(doc, spanjoin.WithStrategy(spanjoin.StrategyCanonical))
	if err != nil {
		t.Fatal(err)
	}
	if len(autoRes) != len(canRes) {
		t.Fatalf("plans disagree: automata %d vs canonical %d", len(autoRes), len(canRes))
	}
	keys := func(ms []spanjoin.Match) map[string]bool {
		out := map[string]bool{}
		for _, m := range ms {
			x, _ := m.Span("x")
			y, _ := m.Span("y")
			out[x.String()+y.String()] = true
		}
		return out
	}
	ka, kc := keys(autoRes), keys(canRes)
	for k := range ka {
		if !kc[k] {
			t.Fatalf("canonical missing %s", k)
		}
	}
	// The equal-pair (aa at [1,3⟩, aa at [7,9⟩) must be present.
	if !ka["[1,3⟩[7,9⟩"] {
		t.Errorf("missing the equal-token pair; got %v", ka)
	}
}

// TestIntegrationDifference: spanner difference via the membership filter.
func TestIntegrationDifference(t *testing.T) {
	all := spanjoin.MustCompileSearch("x{[ab]+}")         // all [ab]+ substrings
	evens := spanjoin.MustCompileSearch("x{([ab][ab])+}") // even-length ones
	doc := "zabaz"
	ms, err := spanjoin.Difference(all, evens, doc)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		m, ok := ms.Next()
		if !ok {
			break
		}
		count++
		if len(m.MustSubstr("x"))%2 == 0 {
			t.Errorf("difference leaked even-length %q", m.MustSubstr("x"))
		}
	}
	// spanlint/closecheck: a failure here must not read as exhaustion.
	if err := ms.Err(); err != nil {
		t.Fatal(err)
	}
	// "aba" has odd-length substrings a(×2), b, aba: spans [2,3⟩,[3,4⟩,[4,5⟩,[2,5⟩.
	if count != 4 {
		t.Errorf("got %d odd-length matches, want 4", count)
	}
	// Schema mismatch rejected.
	other := spanjoin.MustCompileSearch("y{a}")
	if _, err := spanjoin.Difference(all, other, doc); err == nil {
		t.Error("difference with different variables must fail")
	}
}

// TestIntegrationLogJoinBothPlans: the log-analysis chain query, asserting
// the Auto planner picks a working plan and matches the forced strategies.
func TestIntegrationLogJoinBothPlans(t *testing.T) {
	doc := workload.Logs(workload.Rand(99), 60)
	q := spanjoin.NewQuery().
		AtomNamed("err", `.*x{ERROR} op=.*`).
		AtomNamed("op", `.*x{[A-Z]+} op=y{[a-z]+} .*`).
		AtomNamed("id", `.*op=y{[a-z]+} id=z{[0-9a-f]+} .*`).
		MustBuild()
	if !q.IsAcyclic() {
		t.Fatal("chain must be acyclic")
	}
	counts := map[spanjoin.Strategy]int{}
	for _, strat := range []spanjoin.Strategy{spanjoin.StrategyAuto, spanjoin.StrategyCanonical, spanjoin.StrategyAutomata} {
		ms, err := q.Evaluate(doc, spanjoin.WithStrategy(strat))
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		counts[strat] = len(ms)
		for _, m := range ms {
			if m.MustSubstr("x") != "ERROR" {
				t.Errorf("%v: x = %q, want ERROR", strat, m.MustSubstr("x"))
			}
		}
	}
	if counts[spanjoin.StrategyAuto] != counts[spanjoin.StrategyCanonical] ||
		counts[spanjoin.StrategyCanonical] != counts[spanjoin.StrategyAutomata] {
		t.Errorf("strategies disagree: %v", counts)
	}
	if counts[spanjoin.StrategyAuto] == 0 {
		t.Error("expected ERROR lines in the generated log")
	}
}
