// Command spanbench regenerates every experiment table and figure recorded
// in EXPERIMENTS.md: empirical validations of the paper's complexity
// claims (E1–E10) and exact reproductions of its worked examples and of
// Figure 1 (F1, G1).
//
// Usage:
//
//	spanbench [-experiment all|E1|E2|...|E10|F1|G1] [-quick] [-json out.json]
//	          [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//
// All workloads are seeded; output is deterministic modulo wall-clock
// timings. With -json, every printed table is also recorded to the given
// file as structured rows (experiment id, headers, cells), so successive
// runs can be archived as BENCH_*.json perf trajectories and diffed by
// later PRs. -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments, so perf work can profile exactly the workload it
// is optimizing without ad-hoc patches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

type experiment struct {
	id    string
	title string
	run   func(quick bool)
}

var experiments []experiment

func register(id, title string, run func(quick bool)) {
	experiments = append(experiments, experiment{id, title, run})
}

func main() { os.Exit(run()) }

// run is main with defer-friendly control flow: the CPU profile must be
// stopped (and the heap profile written) on every exit path, which os.Exit
// inside the loop would skip. The exit code is a named return so the
// deferred heap-profile write can fail the run.
func run() (code int) {
	which := flag.String("experiment", "all", "experiment id (E1..E10, EB, EC, ED, EN, EP, ER, F1, G1) or 'all'")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	jsonOut := flag.String("json", "", "also record every table to this file as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spanbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spanbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spanbench: %v\n", err)
				if code == 0 {
					code = 1
				}
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "spanbench: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	recorder.enabled = *jsonOut != ""
	sort.Slice(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	ran := false
	for _, e := range experiments {
		if *which != "all" && !strings.EqualFold(*which, e.id) {
			continue
		}
		ran = true
		recorder.current = e.id
		fmt.Printf("## %s — %s\n\n", e.id, e.title)
		e.run(*quick)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "spanbench: unknown experiment %q\n", *which)
		return 2
	}
	if *jsonOut != "" {
		if err := recorder.write(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "spanbench: %v\n", err)
			return 1
		}
	}
	return 0
}

// jsonTable is one recorded table of a run.
type jsonTable struct {
	Experiment string     `json:"experiment"`
	Headers    []string   `json:"headers"`
	Rows       [][]string `json:"rows"`
}

// jsonReport is the -json output: enough metadata to compare trajectories
// across PRs plus every table of the run.
type jsonReport struct {
	Timestamp string      `json:"timestamp"`
	GoVersion string      `json:"go_version"`
	GOARCH    string      `json:"goarch"`
	Tables    []jsonTable `json:"tables"`
}

type tableRecorder struct {
	enabled bool
	current string
	tables  []jsonTable
}

var recorder tableRecorder

func (r *tableRecorder) record(t *table) {
	if !r.enabled {
		return
	}
	r.tables = append(r.tables, jsonTable{
		Experiment: r.current,
		Headers:    append([]string(nil), t.headers...),
		Rows:       append([][]string(nil), t.rows...),
	})
}

func (r *tableRecorder) write(path string) error {
	rep := jsonReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Tables:    r.tables,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// table is a tiny markdown table printer.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table { return &table{headers: headers} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = fmtDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) print() {
	recorder.record(t)
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("| " + strings.Join(parts, " | ") + " |")
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// timeIt runs f and returns the elapsed wall time.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
