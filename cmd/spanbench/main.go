// Command spanbench regenerates every experiment table and figure recorded
// in EXPERIMENTS.md: empirical validations of the paper's complexity
// claims (E1–E10) and exact reproductions of its worked examples and of
// Figure 1 (F1, G1).
//
// Usage:
//
//	spanbench [-experiment all|E1|E2|...|E10|F1|G1] [-quick]
//
// All workloads are seeded; output is deterministic modulo wall-clock
// timings.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

type experiment struct {
	id    string
	title string
	run   func(quick bool)
}

var experiments []experiment

func register(id, title string, run func(quick bool)) {
	experiments = append(experiments, experiment{id, title, run})
}

func main() {
	which := flag.String("experiment", "all", "experiment id (E1..E10, F1, G1) or 'all'")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	flag.Parse()

	sort.Slice(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	ran := false
	for _, e := range experiments {
		if *which != "all" && !strings.EqualFold(*which, e.id) {
			continue
		}
		ran = true
		fmt.Printf("## %s — %s\n\n", e.id, e.title)
		e.run(*quick)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "spanbench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

// table is a tiny markdown table printer.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table { return &table{headers: headers} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = fmtDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) print() {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("| " + strings.Join(parts, " | ") + " |")
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// timeIt runs f and returns the elapsed wall time.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
