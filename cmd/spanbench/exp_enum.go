package main

import (
	"fmt"
	"strings"
	"time"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/enum"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
	"spanjoin/internal/workload"
)

func init() {
	register("E1", "Thm 3.3 — polynomial-delay enumeration: delay vs |s| and vs automaton size", runE1)
	register("E2", "Lemma 3.4 — regex→vset-automaton compilation is linear in |α|", runE2)
	register("E9", "Prop 3.6 — key-attribute test scaling (O(n⁴) bound)", runE9)
	register("E10", "Functionalization blow-up is exponential in |V| (≤ n·3^v)", runE10)
	register("F1", "Figure 1 — the NFA A_G for A_fun on s = aa", runF1)
	register("G1", "Examples 4.2 and A.1 — golden result tables", runG1)
}

// delayStats prepares an enumerator and measures preprocessing time, the
// maximum and mean inter-tuple delay over at most cap tuples.
func delayStats(a *vsa.VSA, s string, cap int) (prep, maxDelay, meanDelay time.Duration, tuples int) {
	start := time.Now()
	e, err := enum.Prepare(a, s)
	if err != nil {
		panic(err)
	}
	prep = time.Since(start)
	var total time.Duration
	for tuples < cap {
		t0 := time.Now()
		_, ok := e.Next()
		d := time.Since(t0)
		if !ok {
			break
		}
		tuples++
		total += d
		if d > maxDelay {
			maxDelay = d
		}
	}
	if tuples > 0 {
		meanDelay = total / time.Duration(tuples)
	}
	return
}

func runE1(quick bool) {
	fmt.Println("Delay vs |s| (automaton fixed: `.*x{a+}.*y{b+}.*`, 18 states; cap 2000 tuples).")
	fmt.Println("Claim: preprocessing O(n²·|s|), delay O(n²·|s|) — both should scale ~linearly in |s|.")
	fmt.Println()
	a := rgx.MustCompilePattern(".*x{a+}.*y{b+}.*")
	sizes := []int{128, 256, 512, 1024, 2048, 4096}
	if quick {
		sizes = sizes[:4]
	}
	t := newTable("|s|", "prep", "max delay", "mean delay", "tuples(cap)", "prep/|s| (ns)")
	for _, n := range sizes {
		s := workload.RandomString(workload.Rand(1), n, 2)
		prep, maxD, meanD, cnt := delayStats(a, s, 2000)
		t.add(n, prep, maxD, meanD, cnt, float64(prep.Nanoseconds())/float64(n))
	}
	t.print()

	fmt.Println()
	fmt.Println("Delay vs automaton size (string fixed at |s|=256; v independent 1-char variables).")
	t2 := newTable("vars", "states n", "prep", "max delay", "mean delay", "maxdelay/n² (ns)")
	s := workload.RandomString(workload.Rand(2), 256, 2)
	vmax := 4
	if quick {
		vmax = 3
	}
	for v := 1; v <= vmax; v++ {
		var sb strings.Builder
		sb.WriteString(".*")
		for i := 1; i <= v; i++ {
			fmt.Fprintf(&sb, "x%d{a}.*", i)
		}
		auto := rgx.MustCompilePattern(sb.String())
		n := auto.Trim().NumStates()
		prep, maxD, meanD, _ := delayStats(auto, s, 2000)
		t2.add(v, n, prep, maxD, meanD, float64(maxD.Nanoseconds())/float64(n*n))
	}
	t2.print()
}

func runE2(quick bool) {
	fmt.Println("Compilation time and automaton size vs |α| (pattern `(a*b)^k x{a+} (b*a)^k`).")
	fmt.Println("Claim: O(|α|) — time/|α| and states/|α| stay ~flat.")
	fmt.Println()
	ks := []int{16, 64, 256, 1024, 4096}
	if quick {
		ks = ks[:4]
	}
	t := newTable("|pattern|", "compile", "states", "ns/byte", "states/byte")
	for _, k := range ks {
		pattern := strings.Repeat("a*b", k) + "x{a+}" + strings.Repeat("b*a", k)
		var a *vsa.VSA
		d := timeIt(func() {
			var err error
			a, err = rgx.CompilePattern(pattern)
			if err != nil {
				panic(err)
			}
		})
		t.add(len(pattern), d, a.NumStates(),
			float64(d.Nanoseconds())/float64(len(pattern)),
			float64(a.NumStates())/float64(len(pattern)))
	}
	t.print()
}

func runE9(quick bool) {
	fmt.Println("Key-attribute decision time vs automaton size (pattern `(a|b)^m x{a} y{.}(a|b)*` family).")
	fmt.Println("Claim: polynomial, within the O(n⁴) bound; observed growth is far milder on sparse automata.")
	fmt.Println()
	ms := []int{4, 8, 16, 32, 64}
	if quick {
		ms = ms[:4]
	}
	t := newTable("m", "states n", "key(x)", "time", "time ratio")
	var prev time.Duration
	for _, m := range ms {
		pattern := strings.Repeat("(a|b)", m) + "x{a}y{.}(a|b)*"
		a := rgx.MustCompilePattern(pattern)
		n := a.Trim().NumStates()
		var ok bool
		d := timeIt(func() {
			var err error
			ok, err = vsa.KeyAttribute(a, "x")
			if err != nil {
				panic(err)
			}
		})
		ratio := "-"
		if prev > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(d)/float64(prev))
		}
		prev = d
		t.add(m, n, ok, d, ratio)
	}
	t.print()
}

func runE10(quick bool) {
	fmt.Println("Functionalization of a one-state automaton with v variable self-loops.")
	fmt.Println("Claim ([15] via §2.2.3): worst-case blow-up exponential in v; here exactly ≤ 3^v states.")
	fmt.Println()
	vmax := 7
	if quick {
		vmax = 5
	}
	t := newTable("v", "input states", "output states", "3^v", "time")
	for v := 1; v <= vmax; v++ {
		vars := make([]string, v)
		for i := range vars {
			vars[i] = fmt.Sprintf("x%d", i)
		}
		a := &vsa.VSA{Vars: span.NewVarList(vars...), Adj: make([][]vsa.Tr, 1), Init: 0, Final: 0}
		for i := 0; i < v; i++ {
			a.AddOpen(0, int32(i), 0)
			a.AddClose(0, int32(i), 0)
		}
		a.AddChar(0, alphabet.Single('a'), 0)
		var f *vsa.VSA
		d := timeIt(func() { f = vsa.Functionalize(a) })
		pow := 1
		for i := 0; i < v; i++ {
			pow *= 3
		}
		t.add(v, a.NumStates(), f.NumStates(), pow, d)
	}
	t.print()
}

func runF1(bool) {
	fmt.Println("The layered NFA A_G constructed from A_fun (Example 4.1) and s = aa,")
	fmt.Println("reproducing Figure 1. Levels are boundary indices 0..|s|; each node is")
	fmt.Println("(level, state) labelled with its variable-configuration letter ~c(x).")
	fmt.Println()
	a := &vsa.VSA{Vars: span.NewVarList("x"), Adj: make([][]vsa.Tr, 3), Init: 0, Final: 2}
	a.AddChar(0, alphabet.Single('a'), 0)
	a.AddOpen(0, 0, 1)
	a.AddChar(1, alphabet.Single('a'), 1)
	a.AddClose(1, 0, 2)
	a.AddChar(2, alphabet.Single('a'), 2)
	e, err := enum.Prepare(a, "aa")
	if err != nil {
		panic(err)
	}
	names := map[int32]string{0: "q0", 1: "q1", 2: "qf"}
	levels := e.Levels()
	for i, lvl := range levels {
		for _, nd := range lvl {
			fmt.Printf("  (%d,%s) letter=%s", i, names[nd.State], e.LetterConfig(nd.Letter))
			var targets []string
			for k := range nd.TargetLetters {
				for _, tgt := range nd.TargetsByLetter[k] {
					targets = append(targets, fmt.Sprintf("(%d,%s)", i+1, names[levels[i+1][tgt].State]))
				}
			}
			if len(targets) > 0 {
				fmt.Printf("  ->  %s", strings.Join(targets, " "))
			}
			fmt.Println()
		}
	}
}

func runG1(bool) {
	fmt.Println("Example 4.2 — [[A_fun]](aa) with configuration sequences (radix order):")
	fmt.Println()
	a := &vsa.VSA{Vars: span.NewVarList("x"), Adj: make([][]vsa.Tr, 3), Init: 0, Final: 2}
	a.AddChar(0, alphabet.Single('a'), 0)
	a.AddOpen(0, 0, 1)
	a.AddChar(1, alphabet.Single('a'), 1)
	a.AddClose(1, 0, 2)
	a.AddChar(2, alphabet.Single('a'), 2)
	vars, tuples, err := enum.Eval(a, "aa")
	if err != nil {
		panic(err)
	}
	t := newTable("µ(x)", "~c1,~c2,~c3")
	for _, tu := range tuples {
		t.add(tu.Format(vars), cfgSeq(tu[0], 2))
	}
	t.print()

	fmt.Println()
	fmt.Println("Example A.1 — [[a* x{a*} a*]](aaa):")
	fmt.Println()
	a2 := rgx.MustCompilePattern("a*x{a*}a*")
	vars2, tuples2, err := enum.Eval(a2, "aaa")
	if err != nil {
		panic(err)
	}
	t2 := newTable("µ(x)", "~c1..~c4")
	for _, tu := range tuples2 {
		t2.add(tu.Format(vars2), cfgSeq(tu[0], 3))
	}
	t2.print()
}

// cfgSeq renders the configuration sequence of a single-variable span on a
// length-n string, as in the paper's tables.
func cfgSeq(p span.Span, n int) string {
	parts := make([]string, n+1)
	for i := 0; i <= n; i++ {
		pos := i + 1
		switch {
		case pos < p.Start:
			parts[i] = "w"
		case pos < p.End:
			parts[i] = "o"
		default:
			parts[i] = "c"
		}
	}
	return strings.Join(parts, ",")
}
