package main

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"spanjoin"
	"spanjoin/internal/enum"
	"spanjoin/internal/rgx"
)

func init() {
	register("EO", "Observability — per-query stage tracing overhead on the E1/EC hot paths; enumerate allocations with tracing off", runEO)
}

// eoPass drains one corpus evaluation under ctx and returns its wall
// time and match count.
func eoPass(ctx context.Context, c *spanjoin.Corpus, sp *spanjoin.Spanner, search bool, pattern string) (time.Duration, int) {
	t0 := time.Now()
	var (
		ms  *spanjoin.CorpusMatches
		err error
	)
	if search {
		ms, err = c.EvalSearch(ctx, pattern)
	} else {
		ms, err = c.EvalSpanner(ctx, sp)
	}
	if err != nil {
		panic(err)
	}
	// spanlint/closecheck: release the stream's pool slot.
	defer ms.Close()
	matches := 0
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
		matches++
	}
	if err := ms.Err(); err != nil {
		panic(err)
	}
	return time.Since(t0), matches
}

// eoCompare runs the workload traced and untraced (interleaved, best of
// rounds each) and adds one table row with the relative overhead.
func eoCompare(t *table, label string, rounds int, run func(ctx context.Context) (time.Duration, int)) {
	bg := context.Background()
	var off, on time.Duration
	var matches int
	run(bg) // warmup: caches, pools, page faults
	for r := 0; r < rounds; r++ {
		d, m := run(bg)
		if off == 0 || d < off {
			off, matches = d, m
		}
		ctx, _ := spanjoin.WithTrace(bg)
		if d, _ := run(ctx); on == 0 || d < on {
			on = d
		}
	}
	overhead := 100 * (on.Seconds() - off.Seconds()) / off.Seconds()
	t.add(label, off, on, fmt.Sprintf("%+.1f%%", overhead), matches)
}

// allocsPerRun hand-rolls testing.AllocsPerRun for a non-test binary:
// mallocs per call of f, averaged over runs, single-threaded.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warmup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

func runEO(quick bool) {
	nDocs, rounds, e1reps := 2000, 9, 200
	if quick {
		nDocs, rounds, e1reps = 400, 3, 100
	}

	fmt.Println("Per-query stage tracing is opt-in via the context (WithTrace); the engine")
	fmt.Println("checks for a trace once per evaluation, never per tuple. Overhead of a")
	fmt.Println("traced pass over an untraced one, best of", rounds, "interleaved rounds:")
	fmt.Println()

	t := newTable("workload", "untraced", "traced", "overhead", "matches")

	// E1-style: the enumeration kernel wrapped in the corpus engine, one
	// document, one worker — the configuration where per-query costs are
	// least amortized.
	e1doc := strings.Repeat("aab", e1reps)
	e1sp, err := spanjoin.Compile(".*x{a+}.*y{b+}.*")
	if err != nil {
		panic(err)
	}
	ce1 := spanjoin.NewCorpus(spanjoin.WithShards(1), spanjoin.WithWorkers(1))
	ce1.Add(e1doc)
	eoCompare(t, "E1 single-doc enumerate", rounds, func(ctx context.Context) (time.Duration, int) {
		return eoPass(ctx, ce1, e1sp, false, "")
	})

	// EC-style: the sharded corpus search fan-out over the synthetic
	// document workload.
	cec := spanjoin.NewCorpus(spanjoin.WithShards(4), spanjoin.WithWorkers(4))
	cec.AddAll(ecDocs(nDocs)...)
	eoCompare(t, fmt.Sprintf("EC search, %d docs", nDocs), rounds, func(ctx context.Context) (time.Duration, int) {
		return eoPass(ctx, cec, nil, true, ecPattern)
	})
	t.print()

	fmt.Println()
	fmt.Println("Enumerate hot path with tracing off: allocations per drained document")
	fmt.Println("beyond the delivered tuples themselves (the //spanjoin:hotpath gate).")
	fmt.Println()

	a := rgx.MustCompilePattern(".*x{a+}.*y{b+}.*")
	s := strings.Repeat("aab", 40)
	e, err := enum.Prepare(a, s)
	if err != nil {
		panic(err)
	}
	tuples := 0
	drain := func() {
		for {
			if _, ok := e.Next(); !ok {
				return
			}
			tuples++
		}
	}
	drain() // count the result set once
	perDoc := allocsPerRun(20, func() {
		e.Reset(s)
		for {
			if _, ok := e.Next(); !ok {
				return
			}
		}
	})
	extra := perDoc - float64(tuples)
	if extra < 0 {
		extra = 0
	}
	at := newTable("tuples/doc", "allocs/doc", "beyond tuples", "per-Next extra")
	at.add(tuples, fmt.Sprintf("%.1f", perDoc), fmt.Sprintf("%.1f", extra),
		fmt.Sprintf("%.3f", extra/float64(tuples)))
	at.print()
}
