package main

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"spanjoin"
)

func init() {
	register("EN", "Ranked access — counting, pagination and sampling without enumeration", runEN)
}

// drainCount drains the iterator and returns the number of matches.
func drainCount(ms *spanjoin.Matches) int {
	n := 0
	for {
		if _, ok := ms.Next(); !ok {
			return n
		}
		n++
	}
}

func runEN(quick bool) {
	fmt.Println("Count-by-DP vs count-by-drain as the output grows (pattern `.*x{a+}.*` on aⁿ: n(n+1)/2 tuples).")
	fmt.Println("Claim: the ranked count is one graph build + DP — linear in |s| and flat in the output size —")
	fmt.Println("while draining pays for every tuple; the ratio must grow with the result count.")
	fmt.Println()
	sp := spanjoin.MustCompile(".*x{a+}.*")
	sizes := []int{256, 512, 1024, 2048}
	if quick {
		sizes = sizes[:3]
	}
	t := newTable("|s|", "tuples", "count (DP)", "drain", "drain/count", "count/|s| (ns)")
	for _, n := range sizes {
		doc := strings.Repeat("a", n)
		var total spanjoin.MatchCount
		dCount := timeIt(func() {
			r, err := sp.Ranked(doc)
			if err != nil {
				panic(err)
			}
			total = r.Count()
		})
		var drained int
		dDrain := timeIt(func() {
			// spanlint/ctxthread: prefer the ctx-aware sibling.
			ms, err := sp.IterateCtx(context.Background(), doc)
			if err != nil {
				panic(err)
			}
			drained = drainCount(ms)
		})
		u, _ := total.Uint64()
		if u != uint64(drained) {
			panic(fmt.Sprintf("EN: DP count %v != drain count %d", total, drained))
		}
		t.add(n, total.String(), dCount, dDrain,
			fmt.Sprintf("%.1fx", float64(dDrain)/float64(dCount)),
			float64(dCount.Nanoseconds())/float64(n))
	}
	t.print()

	fmt.Println()
	fmt.Println("Deep pagination (|s| = 2048, ~2.1M tuples): Page(offset, 10) via one DAG descent vs")
	fmt.Println("skipping by Next — the descent must stay flat while stepping grows with the offset.")
	fmt.Println()
	doc := strings.Repeat("a", 2048)
	r, err := sp.Ranked(doc)
	if err != nil {
		panic(err)
	}
	u64Total, _ := r.Count().Uint64()
	offsets := []uint64{1_000, 100_000, u64Total - 10}
	if quick {
		offsets = offsets[:2]
	}
	t2 := newTable("offset", "page via descent", "page via Next-skip", "stepped/descent")
	for _, off := range offsets {
		var page []spanjoin.Match
		dDescent := timeIt(func() { page = r.Page(off, 10) })
		var stepped []spanjoin.Match
		dStep := timeIt(func() {
			// spanlint/ctxthread: prefer the ctx-aware sibling.
			ms, err := sp.IterateCtx(context.Background(), doc)
			if err != nil {
				panic(err)
			}
			for i := uint64(0); i < off; i++ {
				if _, ok := ms.Next(); !ok {
					panic("EN: stepped past the end")
				}
			}
			for len(stepped) < 10 {
				m, ok := ms.Next()
				if !ok {
					break
				}
				stepped = append(stepped, m)
			}
			// spanlint/closecheck: read Err after the drain.
			if err := ms.Err(); err != nil {
				panic(err)
			}
		})
		if len(page) != len(stepped) {
			panic(fmt.Sprintf("EN: page sizes differ at offset %d: %d vs %d", off, len(page), len(stepped)))
		}
		for i := range page {
			a, _ := page[i].Span("x")
			b, _ := stepped[i].Span("x")
			if a != b {
				panic(fmt.Sprintf("EN: page content diverges at offset %d", off))
			}
		}
		t2.add(off, dDescent, dStep, fmt.Sprintf("%.1fx", float64(dStep)/float64(dDescent)))
	}
	t2.print()

	fmt.Println()
	fmt.Println("Exact counting past uint64 (k = 12 ordered disjoint spans on a²⁰⁰: C(212,24) results),")
	fmt.Println("verified against the closed form, plus uniform sampling from that set.")
	fmt.Println()
	var sb strings.Builder
	sb.WriteString("a*")
	for i := 0; i < 12; i++ {
		sb.WriteString("x")
		sb.WriteByte(byte('a' + i))
		sb.WriteString("{a+}a*")
	}
	big12 := spanjoin.MustCompile(sb.String())
	bigDoc := strings.Repeat("a", 200)
	var rb *spanjoin.Ranked
	var cnt spanjoin.MatchCount
	dBig := timeIt(func() {
		var err error
		rb, err = big12.Ranked(bigDoc)
		if err != nil {
			panic(err)
		}
		cnt = rb.Count()
	})
	want := new(big.Int).Binomial(212, 24)
	if cnt.BigInt().Cmp(want) != 0 {
		panic("EN: big count does not match C(212,24)")
	}
	_, fits := cnt.Uint64()
	dSample := timeIt(func() {
		if rb.Sample(rand.New(rand.NewSource(1)), 1) == nil {
			panic("EN: sampling the big result set failed")
		}
	})
	t3 := newTable("result set", "count", "fits uint64", "count time", "sample(1)")
	t3.add("C(212,24)", cnt.String(), fits, dBig, dSample)
	t3.print()
}
