package main

import (
	"fmt"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/rgx"
	"spanjoin/internal/workload"
)

func init() {
	register("EB", "engine — byte-class compiled transition matrices: graph build as a word-parallel matrix sweep", runEB)
}

// ebWorkload is one pattern family of the EB sweep. docAlpha is the byte
// set documents draw from (chosen so both live and multi-class bytes
// occur); the E1 shape is the acceptance workload.
type ebWorkload struct {
	name     string
	pattern  string
	docAlpha string
}

// ebDoc returns a seeded random document over the workload's alphabet.
func ebDoc(r interface{ Intn(int) int }, alpha string, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}

func runEB(quick bool) {
	fmt.Println("Per-document graph construction: the byte-class matrix sweep (Prepare/Reset on a")
	fmt.Println("shared Plan; forward pass = one fused row×matrix multiply per position) vs the")
	fmt.Println("preserved per-transition reference build (walk charAdj, test Class.Contains per")
	fmt.Println("transition, OR closure rows per hit). Both measured as steady-state Reset(doc),")
	fmt.Println("i.e. pure build time into warm arenas; the compiled table itself is built once")
	fmt.Println("per plan and amortized across the corpus by the compiled-query cache.")
	fmt.Println()

	workloads := []ebWorkload{
		{"E1 shape", ".*x{a+}.*y{b+}.*", "ab"},
		{"byte classes", "[^0-9]*x{[0-9]+}[ :=]y{[a-z]+}.*", "0123456789 :=abcxyz"},
		{"dense Σ", "x{.*}y{.*}", "abcdefgh"},
	}
	sizes := []int{128, 512, 2048}
	if quick {
		sizes = sizes[:2]
	}

	t := newTable("workload", "byte classes", "|s|",
		"ref build ns/op", "matrix build ns/op", "speedup",
		"ref allocs/op", "matrix allocs/op")
	for wi, w := range workloads {
		a := rgx.MustCompilePattern(w.pattern)
		p, err := enum.NewPlan(a)
		if err != nil {
			panic(err)
		}
		for _, n := range sizes {
			doc := ebDoc(workload.Rand(int64(900+10*wi)), w.docAlpha, n)

			em := p.NewEnumerator()
			em.Reset(doc) // warm the arenas: measure steady-state builds
			rm := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					em.Reset(doc)
				}
			})

			er, err := enum.PrepareRef(a, doc)
			if err != nil {
				panic(err)
			}
			rr := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					er.Reset(doc)
				}
			})

			speedup := float64(rr.NsPerOp()) / float64(rm.NsPerOp())
			t.add(w.name, p.ByteClasses(), n,
				rr.NsPerOp(), rm.NsPerOp(), fmt.Sprintf("%.2fx", speedup),
				rr.AllocsPerOp(), rm.AllocsPerOp())
		}
	}
	t.print()
}
