package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"spanjoin"
	"spanjoin/internal/workload"
)

func init() {
	register("EC", "Corpus engine — sharded multi-document evaluation: throughput vs shards, compiled-query cache hit rate", runEC)
}

const ecPattern = `mail{[a-z]+@[a-z]+\.[a-z]+}`

// ecDocs generates the corpus workload: seeded synthetic documents, about
// half containing an e-mail address.
func ecDocs(n int) []string {
	r := workload.Rand(4242)
	docs := make([]string, n)
	for i := range docs {
		docs[i] = workload.Document(r, workload.DocumentOptions{
			Sentences: 4, EmailRate: 0.5,
		})
	}
	return docs
}

func runEC(quick bool) {
	nDocs := 2000
	rounds := 3
	if quick {
		nDocs, rounds = 400, 2
	}
	docs := ecDocs(nDocs)
	ctx := context.Background()

	fmt.Printf("Corpus: %d synthetic documents (~%d bytes each); query: search `%s`.\n",
		nDocs, len(docs[0]), ecPattern)
	fmt.Println("Throughput of Corpus.EvalSearch fan-out vs shard count (workers = shards;")
	fmt.Println("GOMAXPROCS =", runtime.GOMAXPROCS(0), "caps real parallelism), best of", rounds, "passes after warmup.")
	fmt.Println()

	shardCounts := []int{1, 2, 4, 8, 16}
	var baseline float64
	t := newTable("shards", "workers", "pass time", "docs/sec", "matches", "speedup vs 1 shard")
	for _, shards := range shardCounts {
		c := spanjoin.NewCorpus(spanjoin.WithShards(shards), spanjoin.WithWorkers(shards))
		c.AddAll(docs...)
		matches := 0
		pass := func() {
			matches = 0
			ms, err := c.EvalSearch(ctx, ecPattern)
			if err != nil {
				panic(err)
			}
			// spanlint/closecheck: release the stream's pool slot.
			defer ms.Close()
			for {
				if _, ok := ms.Next(); !ok {
					break
				}
				matches++
			}
			if err := ms.Err(); err != nil {
				panic(err)
			}
		}
		pass() // warmup: compiles the pattern into this corpus's cache
		best := time.Duration(0)
		for r := 0; r < rounds; r++ {
			if d := timeIt(pass); best == 0 || d < best {
				best = d
			}
		}
		docsPerSec := float64(nDocs) / best.Seconds()
		if shards == 1 {
			baseline = docsPerSec
		}
		t.add(shards, shards, best, fmt.Sprintf("%.0f", docsPerSec), matches,
			fmt.Sprintf("%.2fx", docsPerSec/baseline))
	}
	t.print()

	fmt.Println()
	fmt.Println("Compiled-query cache: distinct patterns queried repeatedly on one corpus")
	fmt.Println("(singleflight LRU; repeated sources must not recompile).")
	fmt.Println()
	queries := []string{
		ecPattern,
		`user{[a-z]+}@`,
		`addr{[A-Z][a-z]+ [0-9]+}`,
		`city{Bruxelles|Gent|Liege}`,
		`word{police}`,
		`zip{[0-9][0-9][0-9][0-9]}`,
		`name{alice|bob|carol}`,
		`verb{visited|called|mailed}`,
	}
	cacheRounds := 25
	if quick {
		cacheRounds = 10
	}
	c := spanjoin.NewCorpus(spanjoin.WithShards(8))
	c.AddAll(docs...)
	start := time.Now()
	evals := 0
	for r := 0; r < cacheRounds; r++ {
		for _, q := range queries {
			ms, err := c.EvalSearch(ctx, q)
			if err != nil {
				panic(err)
			}
			for {
				if _, ok := ms.Next(); !ok {
					break
				}
			}
			if err := ms.Err(); err != nil {
				panic(err)
			}
			// spanlint/closecheck: release the stream's pool slot.
			ms.Close()
			evals++
		}
	}
	elapsed := time.Since(start)
	st := c.CacheStats()
	t2 := newTable("evals", "distinct", "cache hits", "misses", "hit rate", "resident", "total time")
	t2.add(evals, len(queries), st.Hits, st.Misses,
		fmt.Sprintf("%.1f%%", st.HitRate()*100), st.Resident, elapsed)
	t2.print()
}
