package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"spanjoin"
)

func init() {
	register("ED", "Durability — WAL ingest throughput by fsync policy; recovery time vs log length, before and after a snapshot", runED)
}

// edIngest adds every doc through the given corpus and times the loop;
// the durable corpora ack per their fsync policy, so the table prices
// exactly what a caller of Add pays for each durability level.
func edIngest(c *spanjoin.Corpus, docs []string) (time.Duration, error) {
	start := time.Now()
	for _, d := range docs {
		if _, err := c.AddErrCtx(context.Background(), d); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// edBuild writes n docs into a fresh data directory (fsync never: the
// log bytes are identical under every policy) and optionally snapshots,
// leaving behind the recovery workload for edOpen to time.
func edBuild(dir string, docs []string, snapshot bool) error {
	c, err := spanjoin.Open(dir, spanjoin.WithSync(spanjoin.SyncNever))
	if err != nil {
		return err
	}
	for _, d := range docs {
		if _, err := c.AddErrCtx(context.Background(), d); err != nil {
			c.Close()
			return err
		}
	}
	if snapshot {
		if err := c.Snapshot(); err != nil {
			c.Close()
			return err
		}
	}
	return c.Close()
}

func runED(quick bool) {
	nDocs := 4000
	recoverSizes := []int{1000, 4000}
	if quick {
		nDocs = 500
		recoverSizes = []int{200, 500}
	}
	docs := ecDocs(nDocs)
	var bytes int
	for _, d := range docs {
		bytes += len(d)
	}

	fmt.Printf("Corpus: %d synthetic documents, %.1f MiB. Durable corpora write each Add to a\n",
		nDocs, float64(bytes)/(1<<20))
	fmt.Println("CRC-checked write-ahead log before acking; the fsync policy says when the ack")
	fmt.Println("implies stable storage (always: before the ack; interval: within 100ms; never:")
	fmt.Println("only on graceful Close). RAM is the baseline in-memory corpus.")
	fmt.Println()

	t := newTable("backend", "fsync", "docs", "wall time", "docs/s", "µs/doc")
	type cfg struct {
		label  string
		fsync  string
		policy spanjoin.SyncPolicy
		ram    bool
	}
	cfgs := []cfg{
		{"ram", "—", 0, true},
		{"wal", "never", spanjoin.SyncNever, false},
		{"wal", "interval", spanjoin.SyncInterval, false},
		{"wal", "always", spanjoin.SyncAlways, false},
	}
	for _, cf := range cfgs {
		var c *spanjoin.Corpus
		if cf.ram {
			c = spanjoin.NewCorpus()
		} else {
			dir, err := os.MkdirTemp("", "spanbench-ed")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			c, err = spanjoin.Open(dir, spanjoin.WithSync(cf.policy))
			if err != nil {
				panic(err)
			}
		}
		wall, err := edIngest(c, docs)
		if err != nil {
			panic(err)
		}
		if err := c.Close(); err != nil {
			panic(err)
		}
		t.add(cf.label, cf.fsync, nDocs,
			wall.Round(time.Millisecond),
			fmt.Sprintf("%.0f", float64(nDocs)/wall.Seconds()),
			fmt.Sprintf("%.1f", float64(wall.Microseconds())/float64(nDocs)))
	}
	t.print()

	fmt.Println()
	fmt.Println("Recovery replays the newest snapshot plus the log on top of it, so a snapshot")
	fmt.Println("trades one sequential rewrite now for replaying (and re-checksumming) every")
	fmt.Println("record on the next start. Open time is the full crash-recovery path.")
	fmt.Println()

	t2 := newTable("log docs", "snapshot", "open time", "snapshot docs", "replayed records")
	for _, n := range recoverSizes {
		for _, snap := range []bool{false, true} {
			dir, err := os.MkdirTemp("", "spanbench-ed-rec")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			if err := edBuild(dir, docs[:n], snap); err != nil {
				panic(err)
			}
			start := time.Now()
			c, err := spanjoin.Open(dir)
			if err != nil {
				panic(err)
			}
			openTime := time.Since(start)
			ds := c.DurabilityStats()
			if int(ds.RecoveredDocs) != n {
				panic(fmt.Sprintf("ED: recovered %d docs, want %d", ds.RecoveredDocs, n))
			}
			if err := c.Close(); err != nil {
				panic(err)
			}
			snapLabel := "no"
			if snap {
				snapLabel = "yes"
			}
			t2.add(n, snapLabel, openTime.Round(10*time.Microsecond),
				ds.RecoveredDocs-ds.ReplayedRecords, ds.ReplayedRecords)
		}
	}
	t2.print()

	fmt.Println()
	fmt.Println("Reading: fsync always prices one fsync per Add — orders of magnitude over RAM —")
	fmt.Println("while interval and never keep ingest within a small factor of in-memory speed,")
	fmt.Println("shifting durability to a 100ms window or to graceful shutdown. Recovery scales")
	fmt.Println("with records replayed: after a snapshot the log is empty and Open is near-flat.")
}
