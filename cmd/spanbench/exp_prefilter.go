package main

import (
	"context"
	"fmt"
	"time"

	"spanjoin"
	"spanjoin/internal/workload"
)

func init() {
	register("EP", "Prefiltering and the skip index — docs skipped and throughput vs selectivity, indexed vs full scan", runEP)
}

// epDocs generates the corpus: base documents without the needle, with the
// needle sentence planted in a seeded hitRate fraction of them.
func epDocs(n int, hitRate float64) (docs []string, matching int) {
	r := workload.Rand(777)
	docs = make([]string, n)
	for i := range docs {
		d := workload.Document(r, workload.DocumentOptions{Sentences: 4})
		if r.Float64() < hitRate {
			d += " the police arrived."
			matching++
		}
		docs[i] = d
	}
	return docs, matching
}

// epPass drains one evaluation and returns the match count and stats.
func epPass(c *spanjoin.Corpus, sp *spanjoin.Spanner) (int, spanjoin.EvalStats) {
	ms, err := c.EvalSpanner(context.Background(), sp)
	if err != nil {
		panic(err)
	}
	// spanlint/closecheck: release the stream's pool slot.
	defer ms.Close()
	n := 0
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
		n++
	}
	if err := ms.Err(); err != nil {
		panic(err)
	}
	return n, ms.Stats()
}

func runEP(quick bool) {
	nDocs := 4000
	rounds := 3
	if quick {
		nDocs, rounds = 800, 2
	}
	sp := spanjoin.MustCompileSearch(`w{police}`)
	fmt.Printf("Corpus: %d synthetic documents; query: search `w{police}` (required literal %q).\n",
		nDocs, sp.RequiredLiteral())
	fmt.Println("Full scan = unindexed corpus: every document is at least substring-scanned.")
	fmt.Println("Indexed = WithIndex: trigram postings select candidates; non-candidates are never visited.")
	fmt.Println("Best of", rounds, "passes after warmup; result counts must agree.")
	fmt.Println()

	t := newTable("selectivity", "matching docs", "scan visited", "scan time",
		"idx visited", "idx skipped", "idx time", "skip ratio", "speedup")
	for _, rate := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		docs, matching := epDocs(nDocs, rate)

		plain := spanjoin.NewCorpus(spanjoin.WithShards(8))
		plain.AddAll(docs...)
		indexed := spanjoin.NewCorpus(spanjoin.WithShards(8), spanjoin.WithIndex())
		indexed.AddAll(docs...)

		var nPlain, nIdx int
		var stPlain, stIdx spanjoin.EvalStats
		passPlain := func() { nPlain, stPlain = epPass(plain, sp) }
		passIdx := func() { nIdx, stIdx = epPass(indexed, sp) }
		passPlain()
		passIdx()
		bestPlain, bestIdx := time.Duration(0), time.Duration(0)
		for r := 0; r < rounds; r++ {
			if d := timeIt(passPlain); bestPlain == 0 || d < bestPlain {
				bestPlain = d
			}
			if d := timeIt(passIdx); bestIdx == 0 || d < bestIdx {
				bestIdx = d
			}
		}
		if nPlain != nIdx {
			panic(fmt.Sprintf("EP: index changed results: %d vs %d", nPlain, nIdx))
		}
		if stIdx.Visited() > stPlain.Visited() {
			panic(fmt.Sprintf("EP: index visited more docs than the scan: %+v vs %+v", stIdx, stPlain))
		}
		t.add(
			fmt.Sprintf("%.1f%%", rate*100),
			matching,
			stPlain.Visited(),
			bestPlain,
			stIdx.Visited(),
			stIdx.SkippedIndex,
			bestIdx,
			fmt.Sprintf("%.1f%%", float64(stIdx.SkippedIndex)/float64(nDocs)*100),
			fmt.Sprintf("%.2fx", bestPlain.Seconds()/bestIdx.Seconds()),
		)
	}
	t.print()

	fmt.Println()
	fmt.Println("Composed-spanner prefilter: Join carries both operands' literals, so the")
	fmt.Println("corpus skips documents missing either factor (the PR's headline bugfix).")
	fmt.Println()
	r := workload.Rand(778)
	docs := make([]string, nDocs/2)
	for i := range docs {
		d := workload.Document(r, workload.DocumentOptions{Sentences: 4, AddressRate: 0.3})
		if r.Float64() < 0.1 {
			d += " the police arrived."
		}
		docs[i] = d
	}
	joined, err := spanjoin.Join(
		spanjoin.MustCompile(`.*x{police}.*`),
		spanjoin.MustCompile(`.*y{Belgium}.*`),
	)
	if err != nil {
		panic(err)
	}
	c := spanjoin.NewCorpus(spanjoin.WithShards(8), spanjoin.WithIndex())
	c.AddAll(docs...)
	var n int
	var st spanjoin.EvalStats
	pass := func() { n, st = epPass(c, joined) }
	pass()
	best := time.Duration(0)
	for r := 0; r < rounds; r++ {
		if d := timeIt(pass); best == 0 || d < best {
			best = d
		}
	}
	t2 := newTable("required literals", "docs", "visited", "skipped by index", "matches", "pass time")
	t2.add(fmt.Sprintf("%v", joined.RequiredLiterals()), len(docs), st.Visited(), st.SkippedIndex, n, best)
	t2.print()
}
