package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTablePrinter(t *testing.T) {
	tb := newTable("a", "bee")
	tb.add(1, "x")
	tb.add(123456, 2.5)
	out := captureStdout(t, tb.print)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "| a") || !strings.Contains(lines[0], "bee") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Errorf("float formatting wrong: %q", lines[3])
	}
	// Column alignment: all lines equal length.
	for _, ln := range lines[1:] {
		if len(ln) != len(lines[0]) {
			t.Errorf("ragged table:\n%s", out)
		}
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[string]string{
		"500ns": "500ns",
		"1.5µs": "1.5µs",
		"2ms":   "2.00ms",
		"3s":    "3.00s",
	}
	for in, want := range cases {
		d, err := time.ParseDuration(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%s) = %q, want %q", in, got, want)
		}
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "EB", "EC", "ED", "EN", "EO", "EP", "ER", "ES", "F1", "G1"}
	have := map[string]bool{}
	for _, e := range experiments {
		have[e.id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(experiments) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(experiments), len(want))
	}
}

// TestCheapExperimentsRun executes the structural (non-timing) experiments
// end to end.
func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range []string{"F1", "G1"} {
		out := captureStdout(t, func() {
			for _, e := range experiments {
				if e.id == id {
					e.run(true)
				}
			}
		})
		if len(out) == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}
