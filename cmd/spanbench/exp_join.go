package main

import (
	"fmt"
	"strings"
	"time"

	"spanjoin/internal/core"
	"spanjoin/internal/enum"
	"spanjoin/internal/rel"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
	"spanjoin/internal/workload"
)

func init() {
	register("E3", "Lemma 3.10 — join construction cost and k-way blow-up", runE3)
	register("E4", "Thm 3.11 vs Thm 3.5 — automata vs canonical plans on the intro IE query", runE4)
	register("E7", "Thm 3.5 — canonical plan: Yannakakis vs greedy join order on acyclic CQs", runE7)
}

func runE3(quick bool) {
	fmt.Println("Binary join of two automata of ~n states (patterns with a shared variable).")
	fmt.Println("Claim: construction polynomial (O(v·n⁴) worst case); boundary-pair synchronization")
	fmt.Println("keeps observed growth near the product of boundary-state counts.")
	fmt.Println()
	ms := []int{4, 8, 16, 32, 64}
	if quick {
		ms = ms[:4]
	}
	t := newTable("m", "n1", "n2", "join states", "time", "time ratio")
	var prev time.Duration
	for _, m := range ms {
		a1 := rgx.MustCompilePattern(strings.Repeat("(a|b)", m) + ".*x{a+}.*")
		a2 := rgx.MustCompilePattern(".*x{a+}.*" + strings.Repeat("(b|a)", m))
		var j *vsa.VSA
		d := timeIt(func() {
			var err error
			j, err = vsa.Join(a1, a2)
			if err != nil {
				panic(err)
			}
		})
		ratio := "-"
		if prev > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(d)/float64(prev))
		}
		prev = d
		t.add(m, a1.Trim().NumStates(), a2.Trim().NumStates(), j.NumStates(), d, ratio)
	}
	t.print()

	fmt.Println()
	fmt.Println("k-way join blow-up (k atoms `.*xi{a+}.*` with private variables).")
	fmt.Println("Claim (after Lemma 3.10): size grows like n^2k — exponential in k; this is why")
	fmt.Println("regex k-UCQs fix k (Thm 3.11) and unbounded joins are hard (Thm 3.2).")
	fmt.Println()
	kmax := 5
	if quick {
		kmax = 4
	}
	t2 := newTable("k", "joined states", "state ratio", "construction")
	prevStates := 0
	for k := 1; k <= kmax; k++ {
		autos := make([]*vsa.VSA, k)
		for i := range autos {
			autos[i] = rgx.MustCompilePattern(fmt.Sprintf(".*x%d{a+}.*", i+1))
		}
		var j *vsa.VSA
		d := timeIt(func() {
			var err error
			j, err = vsa.JoinAll(autos...)
			if err != nil {
				panic(err)
			}
		})
		ratio := "-"
		if prevStates > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(j.NumStates())/float64(prevStates))
		}
		prevStates = j.NumStates()
		t2.add(k, j.NumStates(), ratio, d)
	}
	t2.print()
}

// introQuery builds the paper's introductory IE query (1) over synthetic
// documents: sentences containing a Belgium address and the token police.
func introQuery() *core.CQ {
	mk := func(name, p string) *core.Atom {
		a, err := core.NewAtom(name, p)
		if err != nil {
			panic(err)
		}
		return a
	}
	return &core.CQ{
		Atoms: []*core.Atom{
			mk("sen", `(.*\. )?x{[A-Za-z0-9 ]+\.}( .*)?`),
			mk("adr", `.*y{[A-Za-z]+ z{Belgium}}.*`),
			mk("subYX", `.*x{.*y{.*}.*}.*`),
			mk("plc", `.*w{police}.*`),
			mk("subWX", `.*x{.*w{.*}.*}.*`),
		},
		Projection: span.NewVarList("x"),
	}
}

func runE4(quick bool) {
	fmt.Println("The intro query (1): sentences with a Belgium address and the token police,")
	fmt.Println("on synthetic documents (5-atom CQ, k bounded). Canonical materializes every atom")
	fmt.Println("relation — including the O(|s|⁴)-tuple subspan atoms — while the automata plan")
	fmt.Println("compiles one vset-automaton and enumerates with polynomial delay.")
	fmt.Println("Claim: automata wins and the gap widens with |s| (canonical pays for materialization).")
	fmt.Println()
	sentences := []int{1, 2, 4, 8, 16}
	if !quick {
		sentences = append(sentences, 32)
	}
	// The subspan atoms define Θ(|s|⁴) tuples: the canonical plan's
	// materialization is the paper's "main problem" (§3.2) and becomes
	// infeasible quickly; skip it beyond this document size.
	const canonicalLimit = 120
	t := newTable("sentences", "|s|", "answers", "automata", "canonical", "canonical/automata")
	for _, sc := range sentences {
		doc := workload.Document(workload.Rand(42), workload.DocumentOptions{
			Sentences: sc, AddressRate: 0.5, PoliceRate: 0.5,
		})
		q := introQuery()
		var ra, rc *rel.Relation
		da := timeIt(func() {
			var err error
			ra, err = q.Eval(doc, core.Options{Strategy: core.Automata})
			if err != nil {
				panic(err)
			}
		})
		if len(doc) > canonicalLimit {
			t.add(sc, len(doc), ra.Len(), da, "n/a (Θ(|s|⁴) atom materialization)", "∞")
			continue
		}
		dc := timeIt(func() {
			var err error
			rc, err = q.Eval(doc, core.Options{Strategy: core.Canonical})
			if err != nil {
				panic(err)
			}
		})
		if ra.Len() != rc.Len() {
			panic(fmt.Sprintf("plans disagree: %d vs %d", ra.Len(), rc.Len()))
		}
		t.add(sc, len(doc), ra.Len(), da, dc, float64(dc)/float64(da))
	}
	t.print()
}

func runE7(quick bool) {
	fmt.Println("Acyclic chain CQ over synthetic logs: level(x) — op(x,y) — id(y,z); every atom")
	fmt.Println("has a key attribute (polynomially bounded, §3.3.2). Canonical evaluation with")
	fmt.Println("Yannakakis (full semijoin reduction) vs greedy hash joins on the materialized")
	fmt.Println("relations. Claim (Thm 3.5 / Yannakakis): semijoin reduction avoids intermediate")
	fmt.Println("blow-up; greedy pays on skewed inputs.")
	fmt.Println()
	lines := []int{50, 100, 200}
	if !quick {
		lines = append(lines, 400)
	}
	// Chain: ERROR lines, with op token to its right, then id field.
	patterns := []string{
		`.*x{ERROR} op=.*`,
		`.*x{[A-Z]+} op=y{[a-z]+} .*`,
		`.*op=y{[a-z]+} id=z{[0-9a-f]+} .*`,
	}
	t := newTable("log lines", "|s|", "answers", "yannakakis", "greedy", "greedy/yann")
	for _, n := range lines {
		doc := workload.Logs(workload.Rand(7), n)
		rels := make([]*rel.Relation, len(patterns))
		var edges []span.VarList
		for i, p := range patterns {
			a := rgx.MustCompilePattern(p)
			vars, tuples, err := enum.Eval(a, doc)
			if err != nil {
				panic(err)
			}
			rels[i] = rel.FromTuples(vars, tuples)
			edges = append(edges, vars)
		}
		h := &rel.Hypergraph{Edges: edges}
		tree, ok := h.IsAcyclic()
		if !ok {
			panic("chain query should be acyclic")
		}
		out := span.NewVarList("x", "y", "z")
		var yann, greedy *rel.Relation
		dy := timeIt(func() { yann = rel.Yannakakis(tree, rels, out) })
		dg := timeIt(func() { greedy = rel.JoinAllGreedy(rels).Project(out) })
		if yann.Len() != greedy.Len() {
			panic(fmt.Sprintf("plans disagree: %d vs %d", yann.Len(), greedy.Len()))
		}
		t.add(n, len(doc), yann.Len(), dy, dg, float64(dg)/float64(dy))
	}
	t.print()
}
