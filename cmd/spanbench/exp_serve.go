package main

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"spanjoin"
	"spanjoin/client"
	"spanjoin/server"
)

func init() {
	register("ES", "Serving — spand over a real socket: client-driven load at 1x/16x saturation, gated vs ungated; p99 of admitted requests and 429 shed rate", runES)
}

const esPattern = `mail{[a-z]+@[a-z]+\.[a-z]+}`

// esRun drives one load configuration through the full network stack:
// clients goroutines, each issuing back-to-back paged /eval requests
// through the client package (retries off, so sheds are visible instead
// of absorbed). Returns completed-request latencies and the shed count.
func esRun(url string, clients, perClient int) (lat []time.Duration, shed int, err error) {
	cl, cerr := client.New(url, client.WithRetries(0))
	if cerr != nil {
		return nil, 0, cerr
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	ctx := context.Background()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				start := time.Now()
				_, evalErr := cl.Eval(ctx, client.EvalRequest{
					Pattern: esPattern, Mode: "search", Limit: 16,
				})
				d := time.Since(start)
				mu.Lock()
				switch {
				case evalErr == nil:
					lat = append(lat, d)
				case errors.Is(evalErr, spanjoin.ErrOverloaded):
					shed++
				case err == nil:
					err = evalErr
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return lat, shed, err
}

func runES(quick bool) {
	nDocs := 1200
	perClient := 6
	if quick {
		nDocs, perClient = 250, 3
	}
	docs := ecDocs(nDocs)

	capacity := runtime.GOMAXPROCS(0) / 2
	if capacity < 1 {
		capacity = 1
	}
	poolWorkers := 2

	fmt.Printf("Corpus: %d synthetic documents behind spand on a real TCP socket; query: paged\n", nDocs)
	fmt.Printf("search `%s` (limit 16) through the client package.\n", esPattern)
	fmt.Printf("Saturation n x means n x %d concurrent clients (capacity = %d gate slots, no queue).\n",
		capacity, capacity)
	fmt.Println("Gated servers shed excess load as HTTP 429 before any engine worker starts;")
	fmt.Println("ungated servers accept everything and pay for it in tail latency.")
	fmt.Println()

	t := newTable("saturation", "gate", "clients", "ok", "shed(429)", "shed rate",
		"p50 latency", "p99 latency", "wall time")
	// The acceptance comparison: p99 of admitted requests on the gated
	// server at 16x must stay within 2x of its unloaded (1x) baseline.
	var gatedBase, gatedLoaded time.Duration
	for _, mult := range []int{1, 16} {
		for _, gated := range []bool{false, true} {
			opts := []spanjoin.CorpusOption{spanjoin.WithWorkers(poolWorkers)}
			if gated {
				// Shed-fast configuration: no wait queue, so every admitted
				// request starts an engine pool immediately — what keeps the
				// admitted-latency profile flat under saturation.
				opts = append(opts, spanjoin.WithMaxConcurrent(capacity))
			}
			c := spanjoin.NewCorpus(opts...)
			c.AddAll(docs...)
			ts := httptest.NewServer(server.New(c, server.Config{}).Handler())

			// Warmup: compile the pattern into this corpus's cache and open
			// the keep-alive connections.
			if _, _, err := esRun(ts.URL, 1, 1); err != nil {
				panic(err)
			}

			clients := mult * capacity
			start := time.Now()
			lat, shed, err := esRun(ts.URL, clients, perClient)
			wall := time.Since(start)
			ts.Close()
			if err != nil {
				panic(err)
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p99 := percentile(lat, 0.99)
			if gated && mult == 1 {
				gatedBase = p99
			}
			if gated && mult == 16 {
				gatedLoaded = p99
			}
			total := len(lat) + shed
			gateLabel := "off"
			if gated {
				gateLabel = "on"
			}
			t.add(fmt.Sprintf("%dx", mult), gateLabel, clients, len(lat), shed,
				fmt.Sprintf("%.1f%%", 100*float64(shed)/float64(total)),
				percentile(lat, 0.50), p99, wall)
		}
	}
	t.print()

	fmt.Println()
	ratio := float64(gatedLoaded) / float64(gatedBase)
	fmt.Printf("Gated p99, 16x vs unloaded baseline: %v / %v = %.2fx (acceptance: within 2x).\n",
		gatedLoaded, gatedBase, ratio)
	fmt.Println("Reading: the whole failure contract survives the network hop — sheds arrive as")
	fmt.Println("HTTP 429 and unwrap to ErrOverloaded client-side, while requests the gate admits")
	fmt.Println("keep near-baseline latency because no oversubscribed worker pool ever starts.")
}
