package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"spanjoin"
)

func init() {
	register("ER", "Resilience — admission control under overload: latency and shed rate at 1x/4x/16x saturation, gated vs ungated", runER)
}

const erPattern = `mail{[a-z]+@[a-z]+\.[a-z]+}`

// erTrial is one overload configuration: clients concurrent callers against
// a corpus whose admission gate (when on) holds capacity slots and a queue
// of the same size.
type erTrial struct {
	clients  int
	capacity int
	gated    bool
}

// erRun hammers the corpus with trial.clients goroutines, each issuing
// queries back to back for the trial duration, and reports the completed
// query latencies plus the number of queries shed with ErrOverloaded.
func erRun(c *spanjoin.Corpus, trial erTrial, perClient int) (lat []time.Duration, shed int, err error) {
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	ctx := context.Background()
	for i := 0; i < trial.clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				start := time.Now()
				ms, evalErr := c.EvalSearch(ctx, erPattern)
				if evalErr != nil {
					mu.Lock()
					if errors.Is(evalErr, spanjoin.ErrOverloaded) {
						shed++
					} else if err == nil {
						err = evalErr
					}
					mu.Unlock()
					continue
				}
				for {
					if _, ok := ms.Next(); !ok {
						break
					}
				}
				evalErr = ms.Err()
				// spanlint/closecheck: release the stream's pool slot.
				ms.Close()
				d := time.Since(start)
				mu.Lock()
				if evalErr != nil && err == nil {
					err = evalErr
				}
				lat = append(lat, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return lat, shed, err
}

// percentile returns the p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func runER(quick bool) {
	nDocs := 1500
	perClient := 8
	if quick {
		nDocs, perClient = 300, 4
	}
	docs := ecDocs(nDocs)

	// Capacity: enough gate slots to keep the machine busy without
	// oversubscription; each admitted evaluation runs a small worker pool so
	// concurrent pools contend for the same cores.
	capacity := runtime.GOMAXPROCS(0) / 2
	if capacity < 1 {
		capacity = 1
	}
	poolWorkers := 2

	fmt.Printf("Corpus: %d synthetic documents; query: search `%s`; per-eval pool: %d workers.\n",
		nDocs, erPattern, poolWorkers)
	fmt.Printf("Saturation n x means n x %d concurrent clients (capacity = %d gate slots, queue = %d).\n",
		capacity, capacity, capacity)
	fmt.Println("Gated corpora shed excess load fast with ErrOverloaded; ungated corpora accept")
	fmt.Println("everything and pay for it in tail latency. Shed queries cost ~0 and are retryable.")
	fmt.Println()

	t := newTable("saturation", "gate", "clients", "ok", "shed", "shed rate",
		"p50 latency", "p99 latency", "wall time")
	for _, mult := range []int{1, 4, 16} {
		for _, gated := range []bool{false, true} {
			var opts []spanjoin.CorpusOption
			opts = append(opts, spanjoin.WithWorkers(poolWorkers))
			if gated {
				opts = append(opts, spanjoin.WithMaxConcurrent(capacity), spanjoin.WithMaxQueue(capacity))
			}
			c := spanjoin.NewCorpus(opts...)
			c.AddAll(docs...)
			// Warmup compiles the pattern into this corpus's cache.
			ms, err := c.EvalSearch(context.Background(), erPattern)
			if err != nil {
				panic(err)
			}
			// spanlint/closecheck: Err then Close, even on the undrained
			// warmup stream.
			if err := ms.Err(); err != nil {
				panic(err)
			}
			ms.Close()

			trial := erTrial{clients: mult * capacity, capacity: capacity, gated: gated}
			start := time.Now()
			lat, shed, err := erRun(c, trial, perClient)
			wall := time.Since(start)
			if err != nil {
				panic(err)
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			total := len(lat) + shed
			gateLabel := "off"
			if gated {
				gateLabel = "on"
			}
			t.add(fmt.Sprintf("%dx", mult), gateLabel, trial.clients, len(lat), shed,
				fmt.Sprintf("%.1f%%", 100*float64(shed)/float64(total)),
				percentile(lat, 0.50), percentile(lat, 0.99), wall)
		}
	}
	t.print()

	fmt.Println()
	fmt.Println("Reading: at 1x the gate admits everything (shed 0%) and matches the ungated")
	fmt.Println("corpus. At 16x the ungated corpus runs every pool at once — p99 grows with the")
	fmt.Println("oversubscription — while the gated corpus keeps completed-query latency near")
	fmt.Println("its 1x profile by shedding the excess before any worker starts.")
}
