package main

import (
	"fmt"
	"time"

	"spanjoin/internal/core"
	"spanjoin/internal/enum"
	"spanjoin/internal/reductions"
	"spanjoin/internal/strequal"
	"spanjoin/internal/vsa"
	"spanjoin/internal/workload"
)

func init() {
	register("E5", "Thm 3.1 — NP-hardness on a single-character string: SAT via regex CQs", runE5)
	register("E6", "Thm 3.2 — k-clique via gamma-acyclic regex CQs", runE6)
	register("E8", "Thm 5.4 / Cor 5.5 — string-equality selections: A_eq size and evaluation", runE8)
}

func runE5(quick bool) {
	fmt.Println("Random 3CNF at clause ratio m = 4.2n, solved by evaluating the Thm 3.1 regex CQ")
	fmt.Println("on the string \"a\" (automata plan), vs exhaustive search. Claim: the reduction is")
	fmt.Println("correct (agreement + verified witnesses) and both scale exponentially in n —")
	fmt.Println("the combined complexity of Boolean regex CQs is NP-complete even for |s| = 1.")
	fmt.Println()
	ns := []int{6, 8, 10, 12}
	if quick {
		ns = ns[:3]
	}
	t := newTable("n vars", "m clauses", "sat", "spanner eval", "brute force", "agree")
	for _, n := range ns {
		m := int(4.2 * float64(n))
		cnf := workload.RandomCNF(workload.Rand(int64(100+n)), n, m)
		var ok bool
		d := timeIt(func() {
			var err error
			_, ok, err = reductions.Satisfiable(cnf, core.Options{Strategy: core.Automata})
			if err != nil {
				panic(err)
			}
		})
		var bfOK bool
		db := timeIt(func() { _, bfOK = reductions.BruteForceSAT(cnf) })
		t.add(n, m, ok, d, db, ok == bfOK)
	}
	t.print()
}

func runE6(quick bool) {
	fmt.Println("k-clique on G(n, 0.5) via the gamma-acyclic regex CQ of Thm 3.2 (canonical plan),")
	fmt.Println("vs backtracking search. Claim: the reduction is correct and the spanner cost grows")
	fmt.Println("with both k (W[1]-hardness in #atoms/#variables) and the graph size.")
	fmt.Println()
	type cfg struct{ n, k int }
	// For k = 4 the γ atom binds 12 variables and its materialized relation
	// has |E|^6 tuples, so the graphs stay small (the W[1]-hardness in the
	// variable count is the point).
	cfgs := []cfg{{8, 3}, {10, 3}, {12, 3}, {6, 4}, {7, 4}}
	if quick {
		cfgs = cfgs[:3]
	}
	t := newTable("n", "k", "|s|", "found", "spanner eval", "brute force", "agree")
	for _, c := range cfgs {
		g := workload.RandomGraph(workload.Rand(int64(200+c.n*10+c.k)), c.n, 0.5)
		s := reductions.CliqueString(g)
		var ok bool
		d := timeIt(func() {
			var err error
			_, ok, err = reductions.FindClique(g, c.k, core.Options{Strategy: core.Canonical})
			if err != nil {
				panic(err)
			}
		})
		var bfOK bool
		db := timeIt(func() { _, bfOK = reductions.BruteForceClique(g, c.k) })
		t.add(c.n, c.k, len(s), ok, d, db, ok == bfOK)
	}
	t.print()
}

func runE8(quick bool) {
	fmt.Println("A_eq construction (Thm 5.4) on the worst-case string s = aⁿ: states should grow")
	fmt.Println("~cubically in |s| (O(N^{3k+1}) for k selections).")
	fmt.Println()
	ns := []int{8, 16, 32}
	if !quick {
		ns = append(ns, 48)
	}
	t := newTable("|s|", "A_eq states", "states/N³", "build")
	// The end-to-end join below is the expensive part; cap its sweep.
	endToEnd := []int{8, 12, 16}
	if !quick {
		endToEnd = append(endToEnd, 24)
	}
	for _, n := range ns {
		s := ""
		for i := 0; i < n; i++ {
			s += "a"
		}
		var a *vsa.VSA
		d := timeIt(func() {
			var err error
			a, err = strequal.Build(s, "x", "y")
			if err != nil {
				panic(err)
			}
		})
		t.add(n, a.NumStates(), float64(a.NumStates())/float64(n*n*n), d)
	}
	t.print()

	fmt.Println()
	fmt.Println("End-to-end ζ=-selection on `.*x{a+}.*y{a+}.*` (Cor 5.5: polynomial delay for")
	fmt.Println("bounded m): runtime compilation + full enumeration, m = 1 equality.")
	fmt.Println()
	t2 := newTable("|s|", "answers", "compile+join", "enumerate", "total")
	for _, n := range endToEnd {
		s := workload.RepetitiveString(workload.Rand(5), n)
		base, err := core.NewAtom("base", ".*x{a+}.*y{a+}.*")
		if err != nil {
			panic(err)
		}
		var joined *vsa.VSA
		dj := timeIt(func() {
			joined, err = strequal.Apply(base.Auto, s, [][2]string{{"x", "y"}})
			if err != nil {
				panic(err)
			}
		})
		var count int
		de := timeIt(func() {
			// The ζ=-compiled automaton exists for this document only —
			// the engine's per-document paths use PrepareOnce for it.
			e, err := enum.PrepareOnce(joined, s)
			if err != nil {
				panic(err)
			}
			// Drain one tuple at a time rather than Count (the ranked DP
			// would skip the enumeration E8 times) or All (which would add
			// O(output) retention to the measured region).
			count = 0
			for {
				if _, ok := e.Next(); !ok {
					break
				}
				count++
			}
		})
		t2.add(n, count, dj, de, time.Duration(dj+de))
	}
	t2.print()
}
