// Command spanctl is the command-line interface to the spanjoin document-
// spanner engine.
//
// Usage:
//
//	spanctl eval  -p PATTERN [-d DOC | -f FILE | -addr URL] [-offset N]
//	              [-max N] [-json] [-timeout D] [-limit N] [-budget N] [-trace]
//	    evaluate a regex formula and print every match; -offset/-limit
//	    select the window [offset, offset+limit); -timeout, -limit and
//	    -budget bound the evaluation, failing with distinct exit codes
//	    (3: deadline, 5: budget; a met -limit exits 0); -addr evaluates
//	    against a spand server instead of a local document; -trace prints
//	    the per-stage timing breakdown (cache, plan build, prefilter,
//	    enumerate, ...) on stderr — local or remote
//	spanctl count -p PATTERN [-d DOC | -f FILE | -addr URL] [-json]
//	    print the exact number of matches without enumerating them
//	    (ranked DP; counts beyond uint64 stay exact)
//	spanctl sample -p PATTERN -n K [-seed S] [-d DOC | -f FILE | -addr URL] [-json]
//	    print K matches drawn i.i.d. uniformly from the result set
//	spanctl stats -addr URL [-json]
//	    print a spand server's corpus/cache/gate/request counters
//	spanctl check -p PATTERN
//	    parse a pattern and report functionality
//	spanctl dot   -p PATTERN
//	    print the compiled vset-automaton in Graphviz dot format
//	spanctl key   -p PATTERN -x VAR
//	    decide whether VAR is a key attribute (Prop 3.6)
//	spanctl query -atom P [-atom P ...] [-equal x,y] [-project v,w] [-strategy s] [-d DOC]
//	    evaluate a conjunctive query over regex atoms
//
// Examples:
//
//	spanctl eval -p '.*x{[a-z]+}@y{[a-z]+}.*' -d 'mail bob@example now'
//	spanctl count -p 'a*x{a+}a*' -d 'aaaaaaaa'
//	spanctl sample -p 'a*x{a+}a*' -d 'aaaaaaaa' -n 3 -seed 7
//	spanctl check -p 'x{a}|y{b}'
//	spanctl key -p '.*x{a}y{b}.*' -x x
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"spanjoin"
	"spanjoin/client"
	"spanjoin/internal/rgx"
	"spanjoin/internal/vsa"
)

// Exit codes. Resource-limit failures get distinct codes so scripts can
// tell "the query is too expensive" from "the query is wrong":
//
//	0  success (including a met -limit: partial output is intentional)
//	1  generic error (bad pattern, unreadable file, evaluation failure)
//	2  usage error
//	3  deadline exceeded (-timeout)
//	4  overloaded (admission control shed the query)
//	5  work budget exceeded (-budget)
//	6  durable state corrupt (a spand server failed recovery)
const (
	exitOK       = 0
	exitErr      = 1
	exitUsage    = 2
	exitDeadline = 3
	exitOverload = 4
	exitBudget   = 5
	exitCorrupt  = 6
)

// usageErr marks an error as a usage error (exit 2): the invocation is
// malformed and no evaluation was attempted.
type usageErr struct{ err error }

func (e *usageErr) Error() string { return e.err.Error() }
func (e *usageErr) Unwrap() error { return e.err }

// usagef builds a usage error.
func usagef(format string, a ...any) error {
	return &usageErr{fmt.Errorf(format, a...)}
}

// exitCode maps an error to its exit code via the typed error taxonomy.
// The remote error types of the client package unwrap onto the same
// sentinels, so a 429 from a spand server exits 4 exactly like a local
// shed. The switch is over FailureClass — the same classification the
// server's status map uses — and the annotation below makes spanlint's
// taxonomy analyzer verify it stays exhaustive: a failure class added
// to the taxonomy cannot ship without an exit code. Panics and client-
// side cancellation deliberately share the generic exit: for a CLI both
// are "the evaluation failed", not a distinct scriptable condition.
//
//spanjoin:taxonomy-map
func exitCode(err error) int {
	var ue *usageErr
	if err == nil {
		return exitOK
	}
	if errors.As(err, &ue) {
		return exitUsage
	}
	switch spanjoin.FailureClass(err) {
	case spanjoin.FailureDeadline:
		return exitDeadline
	case spanjoin.FailureOverloaded:
		return exitOverload
	case spanjoin.FailureBudget:
		return exitBudget
	case spanjoin.FailureCorrupt:
		return exitCorrupt
	case spanjoin.FailurePanic, spanjoin.FailureCanceled:
		return exitErr
	}
	return exitErr
}

func main() {
	code := run(os.Args[1:], os.Stdout, os.Stderr)
	os.Exit(code)
}

// run dispatches a spanctl invocation; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "eval":
		err = cmdEval(args[1:], stdout, stderr)
	case "count":
		err = cmdCount(args[1:], stdout)
	case "sample":
		err = cmdSample(args[1:], stdout, stderr)
	case "check":
		err = cmdCheck(args[1:], stdout)
	case "dot":
		err = cmdDot(args[1:], stdout)
	case "key":
		err = cmdKey(args[1:], stdout)
	case "query":
		err = cmdQuery(args[1:], stdout, stderr)
	case "stats":
		err = cmdStats(args[1:], stdout)
	case "-h", "--help", "help":
		usage(stderr)
		return 0
	default:
		fmt.Fprintf(stderr, "spanctl: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "spanctl:", err)
		return exitCode(err)
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: spanctl <eval|count|sample|check|dot|key|query|stats> [flags]
  eval   -p PATTERN [-d DOC | -f FILE | -addr URL] [-offset N] [-max N] [-json]
         [-timeout D] [-limit N] [-budget N] [-trace]
         evaluate on a document or a spand server; -offset/-limit is the
         window [offset, offset+limit), entered ranked, not by stepping;
         -trace prints the per-stage timing breakdown on stderr
  count  -p PATTERN [-d DOC | -f FILE | -addr URL] [-json]  exact match count, no enumeration
  sample -p PATTERN -n K [-seed S] [-d DOC|-f FILE|-addr URL] [-json]
         K i.i.d. uniform matches (-n >= 1, -seed >= 0)
  stats  -addr URL [-json]                               spand server counters
  check  -p PATTERN                                      functionality check
  dot    -p PATTERN                                      automaton as Graphviz dot
  key    -p PATTERN -x VAR                               key-attribute test
  query  -atom P [-atom P ...] [-equal x,y] [-project v,w] [-strategy s] [-d DOC|-f FILE]
         [-timeout D] [-limit N] [-budget N]
         evaluate a conjunctive query over regex atoms

resource limits (eval, query):
  -timeout D   abort after duration D (e.g. 500ms); partial output kept
  -limit N     stop after N results (normal exhaustion, exit 0)
  -budget N    work budget: doc bytes scanned + results delivered

exit codes:
  0 success   1 error   2 usage
  3 deadline exceeded (-timeout)   4 overloaded   5 budget exceeded (-budget)`)
}

func readDoc(doc, file string) (string, error) {
	switch {
	case doc != "":
		return doc, nil
	case file == "-":
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	case file != "":
		b, err := os.ReadFile(file)
		return string(b), err
	}
	return "", fmt.Errorf("provide a document with -d or -f (use -f - for stdin)")
}

func cmdEval(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	pattern := fs.String("p", "", "regex formula pattern")
	doc := fs.String("d", "", "document text")
	file := fs.String("f", "", "document file ('-' for stdin)")
	addr := fs.String("addr", "", "evaluate against a spand server at this URL instead of a local document")
	offset := fs.Uint64("offset", 0, "start at match rank N (one ranked DAG descent, not N steps)")
	maxN := fs.Int("max", 0, "stop after N matches (0 = all)")
	limit := fs.Int("limit", 0, "deliver at most N matches; with -offset, the window is [offset, offset+limit)")
	timeout := fs.Duration("timeout", 0, "abort after this long, exit "+fmt.Sprint(exitDeadline)+" (0 = none)")
	budget := fs.Int("budget", 0, "work budget in engine units (doc bytes + results), exit "+fmt.Sprint(exitBudget)+" when exceeded (0 = none)")
	trace := fs.Bool("trace", false, "print the per-stage timing breakdown on stderr after the run")
	asJSON := fs.Bool("json", false, "emit JSON lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pattern == "" {
		return usagef("-p is required")
	}
	if *addr != "" {
		if *doc != "" || *file != "" {
			return usagef("-addr does not combine with -d/-f (the corpus lives on the server)")
		}
		return evalRemote(*addr, *pattern, *offset, *limit, *maxN, *timeout, *budget, *trace, *asJSON, stdout, stderr)
	}
	text, err := readDoc(*doc, *file)
	if err != nil {
		return err
	}
	sp, err := spanjoin.Compile(*pattern)
	if err != nil {
		return err
	}
	if *timeout > 0 || *budget > 0 || *trace {
		// The resilience knobs — and -trace, whose stages are recorded by
		// the corpus pipeline — run through the corpus engine (a
		// single-document corpus), which is where deadlines, limits and
		// budgets are enforced with typed errors. Offsets stay with the
		// ranked iterator path, which these knobs do not reach.
		if *offset > 0 {
			return usagef("-offset does not combine with -timeout/-budget/-trace")
		}
		eff := *limit
		if eff == 0 || (*maxN > 0 && *maxN < eff) {
			eff = *maxN
		}
		return evalResilient(sp, text, *timeout, eff, *budget, *trace, *asJSON, stdout, stderr)
	}
	if *limit > 0 && *offset == 0 {
		// A plain -limit still stops the engine early rather than merely
		// truncating output.
		return evalResilient(sp, text, 0, effLimit(*limit, *maxN), *budget, false, *asJSON, stdout, stderr)
	}
	// spanlint/ctxthread: IterateCtx, not Iterate — the non-ctx variant
	// would discard any deadline this path later grows.
	it, err := sp.IterateCtx(context.Background(), text)
	if err != nil {
		return err
	}
	if *offset > 0 {
		it.Skip(*offset)
	}
	// -offset with -limit is the documented window [offset, offset+limit):
	// skip to rank offset with one ranked descent, then deliver limit
	// matches. -max composes as a further cap.
	capN := effLimit(*limit, *maxN)
	enc := json.NewEncoder(stdout)
	count := 0
	for {
		m, ok := it.Next()
		if !ok {
			break
		}
		count++
		if err := printMatch(enc, stdout, m, *asJSON); err != nil {
			return err
		}
		if capN > 0 && count >= capN {
			break
		}
	}
	// spanlint/closecheck: a drained stream's Err distinguishes
	// cancellation from exhaustion.
	if err := it.Err(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%d match(es)\n", count)
	return nil
}

// effLimit merges -limit and -max into one effective cap (0 = none).
func effLimit(limit, maxN int) int {
	if limit == 0 || (maxN > 0 && maxN < limit) {
		return maxN
	}
	return limit
}

// evalRemote pages a corpus evaluation off a spand server, following
// cursor tokens until the cap or the result sequence is exhausted.
// Typed remote failures (shed, deadline, budget) unwrap onto the same
// sentinels as local ones, so the exit codes match; budget-mode partial
// rows are printed before the error surfaces, like a local partial
// stream.
func evalRemote(addr, pattern string, offset uint64, limit, maxN int, timeout time.Duration, budget int, trace, asJSON bool, stdout, stderr io.Writer) error {
	cl, err := client.New(addr)
	if err != nil {
		return err
	}
	want := effLimit(limit, maxN)
	req := client.EvalRequest{Pattern: pattern, Offset: offset, Timeout: timeout, Budget: budget, Trace: trace}
	if want > 0 {
		req.Limit = want
	}
	enc := json.NewEncoder(stdout)
	count := 0
	var stages []spanjoin.StageSpan
	for {
		page, err := cl.Eval(context.Background(), req)
		if page != nil {
			for _, m := range page.Matches {
				if want > 0 && count >= want {
					break
				}
				count++
				if perr := printRemoteMatch(enc, stdout, m, asJSON); perr != nil {
					return perr
				}
			}
			stages = mergeStages(stages, page.Trace)
		}
		if err != nil {
			if trace {
				printStages(stderr, stages)
			}
			return err
		}
		if page.Next == "" || (want > 0 && count >= want) {
			break
		}
		req = client.EvalRequest{Cursor: page.Next, Timeout: timeout, Trace: trace}
		if want > 0 {
			req.Limit = want - count
		}
	}
	if trace {
		printStages(stderr, stages)
	}
	fmt.Fprintf(stderr, "%d match(es)\n", count)
	return nil
}

// mergeStages folds one page's stage spans into the accumulated
// breakdown — a paginated eval is several server requests, and the
// printed trace is their sum per stage.
func mergeStages(into, more []spanjoin.StageSpan) []spanjoin.StageSpan {
	for _, s := range more {
		merged := false
		for i := range into {
			if into[i].Stage == s.Stage {
				into[i].Dur += s.Dur
				into[i].Items += s.Items
				into[i].Calls += s.Calls
				merged = true
				break
			}
		}
		if !merged {
			into = append(into, s)
		}
	}
	return into
}

// printStages writes a traced evaluation's per-stage breakdown, one line
// per stage in first-occurrence order.
func printStages(w io.Writer, stages []spanjoin.StageSpan) {
	if len(stages) == 0 {
		fmt.Fprintln(w, "trace: no stages recorded")
		return
	}
	fmt.Fprintln(w, "trace:")
	for _, s := range stages {
		fmt.Fprintf(w, "  %-14s %12v", string(s.Stage), s.Dur)
		if s.Items > 0 {
			fmt.Fprintf(w, "  items=%d", s.Items)
		}
		if s.Calls > 1 {
			fmt.Fprintf(w, "  calls=%d", s.Calls)
		}
		fmt.Fprintln(w)
	}
}

// printRemoteMatch writes one wire row as text or as a JSON line.
func printRemoteMatch(enc *json.Encoder, stdout io.Writer, m client.Match, asJSON bool) error {
	if asJSON {
		return enc.Encode(m)
	}
	vars := make([]string, 0, len(m.Spans))
	for v := range m.Spans {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	fmt.Fprintf(&b, "doc=%d", m.Doc)
	for _, v := range vars {
		s := m.Spans[v]
		fmt.Fprintf(&b, " %s=[%d,%d)%q", v, s.Start, s.End, s.Text)
	}
	_, err := fmt.Fprintln(stdout, b.String())
	return err
}

// evalResilient routes an eval through a single-document corpus, where
// deadlines, limits and budgets are enforced with typed errors — which is
// what gives the distinct exit codes. Semantics are unchanged: the same
// precompiled spanner runs over the same document.
func evalResilient(sp *spanjoin.Spanner, text string, timeout time.Duration, limit, budget int, trace, asJSON bool, stdout, stderr io.Writer) error {
	c := spanjoin.NewCorpus(spanjoin.WithShards(1), spanjoin.WithWorkers(1))
	c.Add(text)
	ctx := context.Background()
	var tr *spanjoin.QueryTrace
	if trace {
		ctx, tr = spanjoin.WithTrace(ctx)
	}
	ms, err := c.EvalSpanner(ctx, sp, resilientOpts(timeout, limit, budget)...)
	if err != nil {
		return err
	}
	err = drainCorpus(ms, asJSON, stdout, stderr)
	if trace {
		// Printed even on a typed failure: the partial breakdown shows
		// where a timed-out or over-budget query spent its allowance.
		printStages(stderr, tr.Spans())
	}
	return err
}

// resilientOpts translates the CLI's resource flags into engine options.
func resilientOpts(timeout time.Duration, limit, budget int) []spanjoin.Option {
	var opts []spanjoin.Option
	if timeout > 0 {
		opts = append(opts, spanjoin.WithTimeout(timeout))
	}
	if limit > 0 {
		opts = append(opts, spanjoin.WithLimit(limit))
	}
	if budget > 0 {
		opts = append(opts, spanjoin.WithBudget(budget))
	}
	return opts
}

// drainCorpus prints a corpus stream and surfaces its typed error, so a
// deadline or budget that fires mid-stream still keeps the partial output
// already printed.
func drainCorpus(ms *spanjoin.CorpusMatches, asJSON bool, stdout, stderr io.Writer) error {
	defer ms.Close()
	enc := json.NewEncoder(stdout)
	count := 0
	for {
		m, ok := ms.Next()
		if !ok {
			break
		}
		count++
		if err := printMatch(enc, stdout, m.Match, asJSON); err != nil {
			return err
		}
	}
	if err := ms.Err(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%d match(es)\n", count)
	return nil
}

// printMatch writes one match as text or as a JSON line.
func printMatch(enc *json.Encoder, stdout io.Writer, m spanjoin.Match, asJSON bool) error {
	if !asJSON {
		_, err := fmt.Fprintln(stdout, m)
		return err
	}
	row := map[string]any{}
	for _, v := range m.Vars() {
		p, _ := m.Span(v)
		s, _ := m.Substr(v)
		row[v] = map[string]any{"start": p.Start, "end": p.End, "text": s}
	}
	return enc.Encode(row)
}

func cmdCount(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("count", flag.ContinueOnError)
	pattern := fs.String("p", "", "regex formula pattern")
	doc := fs.String("d", "", "document text")
	file := fs.String("f", "", "document file ('-' for stdin)")
	addr := fs.String("addr", "", "count against a spand server at this URL instead of a local document")
	timeout := fs.Duration("timeout", 0, "abort after this long (remote only; 0 = server default)")
	asJSON := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pattern == "" {
		return usagef("-p is required")
	}
	var n fmt.Stringer
	if *addr != "" {
		if *doc != "" || *file != "" {
			return usagef("-addr does not combine with -d/-f (the corpus lives on the server)")
		}
		cl, err := client.New(*addr)
		if err != nil {
			return err
		}
		n, err = cl.Count(context.Background(), *pattern, "", *timeout)
		if err != nil {
			return err
		}
	} else {
		text, err := readDoc(*doc, *file)
		if err != nil {
			return err
		}
		sp, err := spanjoin.Compile(*pattern)
		if err != nil {
			return err
		}
		if n, err = sp.Count(text); err != nil {
			return err
		}
	}
	if *asJSON {
		// Both count types print a decimal integer — a valid JSON number at
		// any magnitude, so counts beyond uint64 stay exact on the wire.
		fmt.Fprintf(stdout, "{\"count\":%s}\n", n)
		return nil
	}
	fmt.Fprintf(stdout, "%s match(es)\n", n)
	return nil
}

func cmdSample(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sample", flag.ContinueOnError)
	pattern := fs.String("p", "", "regex formula pattern")
	doc := fs.String("d", "", "document text")
	file := fs.String("f", "", "document file ('-' for stdin)")
	addr := fs.String("addr", "", "sample against a spand server at this URL instead of a local document")
	k := fs.Int("n", 1, "number of samples to draw (must be >= 1)")
	seed := fs.Int64("seed", 1, "random seed, non-negative (same seed, same draws)")
	asJSON := fs.Bool("json", false, "emit JSON lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pattern == "" {
		return usagef("-p is required")
	}
	// Malformed draws are usage errors (exit 2), caught before any work:
	// a non-positive -n samples nothing, and a negative -seed would feed
	// rand.NewSource a value the documented "same seed, same draws"
	// contract never covers.
	if *k < 1 {
		return usagef("-n must be at least 1 (got %d)", *k)
	}
	if *seed < 0 {
		return usagef("-seed must be non-negative (got %d)", *seed)
	}
	if *addr != "" {
		if *doc != "" || *file != "" {
			return usagef("-addr does not combine with -d/-f (the corpus lives on the server)")
		}
		cl, err := client.New(*addr)
		if err != nil {
			return err
		}
		ms, err := cl.Sample(context.Background(), *pattern, "", *k, *seed)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		for _, m := range ms {
			if err := printRemoteMatch(enc, stdout, m, *asJSON); err != nil {
				return err
			}
		}
		fmt.Fprintf(stderr, "%d sample(s) drawn uniformly\n", len(ms))
		return nil
	}
	text, err := readDoc(*doc, *file)
	if err != nil {
		return err
	}
	sp, err := spanjoin.Compile(*pattern)
	if err != nil {
		return err
	}
	ms, err := sp.Sample(text, rand.New(rand.NewSource(*seed)), *k)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	for _, m := range ms {
		if err := printMatch(enc, stdout, m, *asJSON); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "%d sample(s) drawn uniformly\n", len(ms))
	return nil
}

// cmdStats prints a spand server's operational counters.
func cmdStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	addr := fs.String("addr", "", "spand server URL (required)")
	asJSON := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return usagef("-addr is required")
	}
	cl, err := client.New(*addr)
	if err != nil {
		return err
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		return err
	}
	if *asJSON {
		return json.NewEncoder(stdout).Encode(st)
	}
	fmt.Fprintf(stdout, "docs:     %d (%d shards, indexed=%v)\n", st.Docs, st.Shards, st.Indexed)
	fmt.Fprintf(stdout, "cache:    %d hits, %d misses, %d resident (%.0f%% hit rate)\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Resident, 100*st.Cache.HitRate)
	fmt.Fprintf(stdout, "gate:     %d active, %d queued, %d rejected\n",
		st.Gate.Active, st.Gate.Queued, st.Gate.Rejected)
	fmt.Fprintf(stdout, "requests: %d served, %d failed\n", st.Server.Served, st.Server.Failed)
	return nil
}

func cmdCheck(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	pattern := fs.String("p", "", "regex formula pattern")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pattern == "" {
		return fmt.Errorf("-p is required")
	}
	f, err := rgx.Parse(*pattern)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pattern:   %s\n", f)
	fmt.Fprintf(stdout, "variables: %v\n", f.Vars)
	fmt.Fprintf(stdout, "size:      %d nodes\n", f.Size())
	if err := f.CheckFunctional(); err != nil {
		fmt.Fprintf(stdout, "functional: no (%v)\n", err)
		return fmt.Errorf("pattern is not functional")
	}
	fmt.Fprintln(stdout, "functional: yes")
	return nil
}

func cmdDot(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	pattern := fs.String("p", "", "regex formula pattern")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pattern == "" {
		return fmt.Errorf("-p is required")
	}
	a, err := rgx.CompilePattern(*pattern)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, a.Dot(*pattern))
	return nil
}

func cmdKey(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("key", flag.ContinueOnError)
	pattern := fs.String("p", "", "regex formula pattern")
	x := fs.String("x", "", "variable to test")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pattern == "" || *x == "" {
		return fmt.Errorf("-p and -x are required")
	}
	a, err := rgx.CompilePattern(*pattern)
	if err != nil {
		return err
	}
	ok, err := vsa.KeyAttribute(a, *x)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "key(%s) = %v\n", *x, ok)
	return nil
}

// stringList collects repeated flag values.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func cmdQuery(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	var atoms, equals stringList
	fs.Var(&atoms, "atom", "regex atom (repeatable)")
	fs.Var(&equals, "equal", "string equality x,y (repeatable)")
	project := fs.String("project", "", "comma-separated output variables (empty = all)")
	doc := fs.String("d", "", "document text")
	file := fs.String("f", "", "document file ('-' for stdin)")
	strategy := fs.String("strategy", "auto", "auto|canonical|automata")
	limit := fs.Int("limit", 0, "deliver at most N results, stopping the engine early (0 = all)")
	timeout := fs.Duration("timeout", 0, "abort after this long, exit "+fmt.Sprint(exitDeadline)+" (0 = none)")
	budget := fs.Int("budget", 0, "work budget in engine units (doc bytes + results), exit "+fmt.Sprint(exitBudget)+" when exceeded (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(atoms) == 0 {
		return fmt.Errorf("at least one -atom is required")
	}
	text, err := readDoc(*doc, *file)
	if err != nil {
		return err
	}
	b := spanjoin.NewQuery()
	for i, p := range atoms {
		b.AtomNamed(fmt.Sprintf("atom%d", i+1), p)
	}
	for _, eq := range equals {
		parts := strings.SplitN(eq, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-equal wants x,y; got %q", eq)
		}
		b.Equal(parts[0], parts[1])
	}
	if *project != "" {
		b.Project(strings.Split(*project, ",")...)
	}
	q, err := b.Build()
	if err != nil {
		return err
	}
	var opts []spanjoin.Option
	switch *strategy {
	case "auto":
	case "canonical":
		opts = append(opts, spanjoin.WithStrategy(spanjoin.StrategyCanonical))
	case "automata":
		opts = append(opts, spanjoin.WithStrategy(spanjoin.StrategyAutomata))
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	fmt.Fprintf(stderr, "plan: %v (acyclic=%v gamma-acyclic=%v)\n",
		q.PlannedStrategy(opts...), q.IsAcyclic(), q.IsGammaAcyclic())
	if *timeout > 0 || *limit > 0 || *budget > 0 {
		// Resource-bounded queries run through a single-document corpus
		// (same plan, same document) for typed deadline/limit/budget errors.
		c := spanjoin.NewCorpus(spanjoin.WithShards(1), spanjoin.WithWorkers(1))
		c.Add(text)
		cms, err := c.EvalQuery(context.Background(), q,
			append(opts, resilientOpts(*timeout, *limit, *budget)...)...)
		if err != nil {
			return err
		}
		defer cms.Close()
		count := 0
		for {
			m, ok := cms.Next()
			if !ok {
				break
			}
			count++
			fmt.Fprintln(stdout, m.Match)
		}
		if err := cms.Err(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%d result(s)\n", count)
		return nil
	}
	ms, err := q.Iterate(text, opts...)
	if err != nil {
		return err
	}
	count := 0
	for {
		m, ok := ms.Next()
		if !ok {
			break
		}
		count++
		fmt.Fprintln(stdout, m)
	}
	// spanlint/closecheck: read Err after the drain loop.
	if err := ms.Err(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%d result(s)\n", count)
	return nil
}
