package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spanjoin"
	"spanjoin/server"
)

func runCtl(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return out.String(), errw.String(), code
}

func TestEvalCommand(t *testing.T) {
	out, errw, code := runCtl(t, "eval", "-p", ".*x{ab}.*", "-d", "zabzab")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "x=[2,4⟩") || !strings.Contains(out, "x=[5,7⟩") {
		t.Errorf("output missing spans: %q", out)
	}
	if !strings.Contains(errw, "2 match(es)") {
		t.Errorf("stderr = %q", errw)
	}
}

func TestEvalJSON(t *testing.T) {
	out, _, code := runCtl(t, "eval", "-p", ".*x{ab}.*", "-d", "zab", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var row map[string]struct {
		Start int    `json:"start"`
		End   int    `json:"end"`
		Text  string `json:"text"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &row); err != nil {
		t.Fatalf("bad json %q: %v", out, err)
	}
	if row["x"].Start != 2 || row["x"].End != 4 || row["x"].Text != "ab" {
		t.Errorf("row = %+v", row)
	}
}

func TestEvalMaxFlag(t *testing.T) {
	out, _, code := runCtl(t, "eval", "-p", "a*x{a}a*", "-d", "aaaa", "-max", "2")
	if code != 0 {
		t.Fatal("exit != 0")
	}
	if n := strings.Count(out, "x="); n != 2 {
		t.Errorf("got %d matches, want 2 (out %q)", n, out)
	}
}

func TestEvalFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.txt")
	if err := os.WriteFile(path, []byte("xaby"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code := runCtl(t, "eval", "-p", ".*v{ab}.*", "-f", path)
	if code != 0 || !strings.Contains(out, "v=[2,4⟩") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestEvalErrors(t *testing.T) {
	if _, _, code := runCtl(t, "eval", "-d", "x"); code == 0 {
		t.Error("missing -p should fail")
	}
	if _, _, code := runCtl(t, "eval", "-p", "x{a}"); code == 0 {
		t.Error("missing doc should fail")
	}
	if _, _, code := runCtl(t, "eval", "-p", "(", "-d", "x"); code == 0 {
		t.Error("bad pattern should fail")
	}
}

func TestCheckCommand(t *testing.T) {
	out, _, code := runCtl(t, "check", "-p", "a*x{a*}a*")
	if code != 0 || !strings.Contains(out, "functional: yes") {
		t.Errorf("code=%d out=%q", code, out)
	}
	out, _, code = runCtl(t, "check", "-p", "x{a}|y{b}")
	if code == 0 || !strings.Contains(out, "functional: no") {
		t.Errorf("non-functional pattern: code=%d out=%q", code, out)
	}
}

func TestDotCommand(t *testing.T) {
	out, _, code := runCtl(t, "dot", "-p", "x{a}")
	if code != 0 {
		t.Fatal("exit != 0")
	}
	for _, want := range []string{"digraph", "x⊢", "⊣x", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestKeyCommand(t *testing.T) {
	out, _, code := runCtl(t, "key", "-p", ".*x{a}y{b}.*", "-x", "x")
	if code != 0 || !strings.Contains(out, "key(x) = true") {
		t.Errorf("code=%d out=%q", code, out)
	}
	out, _, code = runCtl(t, "key", "-p", ".*x{a}.*y{b}.*", "-x", "y")
	if code != 0 || !strings.Contains(out, "key(y) = false") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, errw, code := runCtl(t, "frobnicate")
	if code != 2 || !strings.Contains(errw, "unknown command") {
		t.Errorf("code=%d stderr=%q", code, errw)
	}
}

func TestHelp(t *testing.T) {
	_, errw, code := runCtl(t, "help")
	if code != 0 || !strings.Contains(errw, "usage:") {
		t.Errorf("code=%d stderr=%q", code, errw)
	}
}

func TestNoArgs(t *testing.T) {
	if _, _, code := runCtl(t); code != 2 {
		t.Errorf("code=%d, want 2", code)
	}
}

func TestQueryCommand(t *testing.T) {
	out, errw, code := runCtl(t, "query",
		"-atom", ".*x{a+}.*",
		"-atom", ".*x{aa}.*",
		"-project", "x",
		"-d", "aaa")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if n := strings.Count(out, "x="); n != 2 {
		t.Errorf("got %d results, want 2 (out %q)", n, out)
	}
	if !strings.Contains(errw, "plan:") || !strings.Contains(errw, "2 result(s)") {
		t.Errorf("stderr = %q", errw)
	}
}

func TestQueryCommandWithEquality(t *testing.T) {
	out, _, code := runCtl(t, "query",
		"-atom", "x{..} .* y{..}|x{..} y{..}",
		"-equal", "x,y",
		"-strategy", "canonical",
		"-d", "ab cd ab")
	if code != 0 {
		t.Fatal("exit != 0")
	}
	if !strings.Contains(out, `x=[1,3⟩("ab")`) {
		t.Errorf("missing equal pair: %q", out)
	}
}

func TestQueryCommandErrors(t *testing.T) {
	if _, _, code := runCtl(t, "query", "-d", "x"); code == 0 {
		t.Error("no atoms should fail")
	}
	if _, _, code := runCtl(t, "query", "-atom", "x{a}", "-equal", "bad", "-d", "a"); code == 0 {
		t.Error("malformed -equal should fail")
	}
	if _, _, code := runCtl(t, "query", "-atom", "x{a}", "-strategy", "warp", "-d", "a"); code == 0 {
		t.Error("unknown strategy should fail")
	}
}

func TestCountCommand(t *testing.T) {
	out, _, code := runCtl(t, "count", "-p", "a*x{a+}a*", "-d", "aaaa")
	if code != 0 || !strings.Contains(out, "10 match(es)") {
		t.Errorf("code=%d out=%q, want 10 matches", code, out)
	}
	// No matches.
	out, _, code = runCtl(t, "count", "-p", "x{ab}", "-d", "zz")
	if code != 0 || !strings.Contains(out, "0 match(es)") {
		t.Errorf("empty count: code=%d out=%q", code, out)
	}
	if _, _, code := runCtl(t, "count", "-d", "x"); code == 0 {
		t.Error("missing -p should fail")
	}
}

func TestCountJSON(t *testing.T) {
	out, _, code := runCtl(t, "count", "-p", "a*x{a+}a*", "-d", "aaaa", "-json")
	if code != 0 {
		t.Fatal("exit != 0")
	}
	var row struct {
		Count json.Number `json:"count"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &row); err != nil {
		t.Fatalf("bad json %q: %v", out, err)
	}
	if row.Count.String() != "10" {
		t.Errorf("count = %s, want 10", row.Count)
	}
}

func TestSampleCommand(t *testing.T) {
	out, errw, code := runCtl(t, "sample", "-p", "a*x{a+}a*", "-d", "aaaa", "-n", "5", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if n := strings.Count(out, "x="); n != 5 {
		t.Errorf("got %d samples, want 5 (out %q)", n, out)
	}
	if !strings.Contains(errw, "5 sample(s)") {
		t.Errorf("stderr = %q", errw)
	}
	// Same seed, same draws.
	again, _, _ := runCtl(t, "sample", "-p", "a*x{a+}a*", "-d", "aaaa", "-n", "5", "-seed", "7")
	if again != out {
		t.Error("seeded sampling is not deterministic across runs")
	}
	// Different seed should (for this result set and these seeds) differ.
	other, _, _ := runCtl(t, "sample", "-p", "a*x{a+}a*", "-d", "aaaa", "-n", "5", "-seed", "8")
	if other == out {
		t.Log("seeds 7 and 8 drew identical samples (unlikely but legal)")
	}
	if _, _, code := runCtl(t, "sample", "-p", "a*x{a}a*", "-d", "aa", "-n", "0"); code == 0 {
		t.Error("-n 0 should fail")
	}
}

func TestSampleJSON(t *testing.T) {
	out, _, code := runCtl(t, "sample", "-p", ".*x{ab}.*", "-d", "zab", "-n", "2", "-json")
	if code != 0 {
		t.Fatal("exit != 0")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSON lines, got %d: %q", len(lines), out)
	}
	for _, ln := range lines {
		var row map[string]struct {
			Start int    `json:"start"`
			End   int    `json:"end"`
			Text  string `json:"text"`
		}
		if err := json.Unmarshal([]byte(ln), &row); err != nil {
			t.Fatalf("bad json %q: %v", ln, err)
		}
		if row["x"].Text != "ab" {
			t.Errorf("sampled row = %+v", row)
		}
	}
}

func TestEvalLimitFlag(t *testing.T) {
	// A met -limit is intentional partial output: exit 0, exactly N lines.
	out, errw, code := runCtl(t, "eval", "-p", "a*x{a+}a*", "-d", "aaaa", "-limit", "3")
	if code != exitOK {
		t.Fatalf("exit %d, want %d (stderr %q)", code, exitOK, errw)
	}
	if n := strings.Count(out, "x="); n != 3 {
		t.Errorf("got %d matches, want 3 (out %q)", n, out)
	}
	if !strings.Contains(errw, "3 match(es)") {
		t.Errorf("stderr = %q", errw)
	}
}

func TestEvalTimeoutExitCode(t *testing.T) {
	// A deadline that has effectively already passed must fail with the
	// deadline exit code, not the generic one.
	_, errw, code := runCtl(t, "eval", "-p", "a*x{a+}a*",
		"-d", strings.Repeat("a", 4096), "-timeout", "1ns")
	if code != exitDeadline {
		t.Fatalf("exit %d, want %d (stderr %q)", code, exitDeadline, errw)
	}
}

func TestEvalBudgetExitCode(t *testing.T) {
	// Budget 2 cannot cover scanning a 4096-byte document.
	_, errw, code := runCtl(t, "eval", "-p", "a*x{a+}a*",
		"-d", strings.Repeat("a", 4096), "-budget", "2")
	if code != exitBudget {
		t.Fatalf("exit %d, want %d (stderr %q)", code, exitBudget, errw)
	}
}

func TestEvalResilientMatchesPlain(t *testing.T) {
	// The corpus-backed resilient path must print the same matches as the
	// plain iterator path when no bound fires.
	plain, _, _ := runCtl(t, "eval", "-p", "a*x{a+}a*", "-d", "aaaa")
	bounded, _, code := runCtl(t, "eval", "-p", "a*x{a+}a*", "-d", "aaaa", "-limit", "100")
	if code != exitOK {
		t.Fatal("exit != 0")
	}
	if bounded != plain {
		t.Errorf("resilient output %q != plain output %q", bounded, plain)
	}
}

func TestEvalOffsetLimitWindow(t *testing.T) {
	// -offset with -limit is the documented window [offset, offset+limit):
	// over "aaa", a*x{a+}a* has ranked matches, and the window starting at
	// rank 1 of size 2 delivers exactly 2 of them.
	out, _, code := runCtl(t, "eval", "-p", "a*x{a+}a*", "-d", "aaa", "-offset", "1", "-limit", "2")
	if code != exitOK {
		t.Fatalf("exit %d, want %d (out %q)", code, exitOK, out)
	}
	if n := strings.Count(out, "x="); n != 2 {
		t.Errorf("window [1,3): got %d matches, want 2 (out %q)", n, out)
	}
	// The window agrees with plain enumeration skipped by hand.
	all, _, _ := runCtl(t, "eval", "-p", "a*x{a+}a*", "-d", "aaa")
	lines := strings.Split(strings.TrimSpace(all), "\n")
	want := strings.Join(lines[1:3], "\n") + "\n"
	if out != want {
		t.Errorf("window output %q, want rows 1..2 of %q", out, all)
	}
}

func TestEvalOffsetRejectsResilienceFlags(t *testing.T) {
	// -offset runs on the ranked iterator path, which -timeout/-budget do
	// not reach; combining them is a usage error, not a silent drop.
	for _, extra := range [][]string{{"-timeout", "1s"}, {"-budget", "10"}, {"-trace"}} {
		args := append([]string{"eval", "-p", "x{a}", "-d", "a", "-offset", "1"}, extra...)
		_, _, code := runCtl(t, args...)
		if code != exitUsage {
			t.Errorf("%v: exit %d, want %d", extra, code, exitUsage)
		}
	}
}

func TestEvalTraceLocal(t *testing.T) {
	out, errw, code := runCtl(t, "eval", "-p", ".*x{ab}.*", "-d", "zabzab", "-trace")
	if code != exitOK {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	// The matches still print, and stderr carries the stage breakdown —
	// the precompiled-spanner corpus path records plan build, prefilter
	// and the enumeration itself (no cache stage: -p compiled locally).
	if n := strings.Count(out, "x="); n != 2 {
		t.Errorf("got %d matches, want 2 (out %q)", n, out)
	}
	if !strings.Contains(errw, "trace:") {
		t.Fatalf("stderr has no trace block: %q", errw)
	}
	for _, stage := range []string{"plan_build", "prefilter", "enumerate"} {
		if !strings.Contains(errw, stage) {
			t.Errorf("trace missing stage %q: %q", stage, errw)
		}
	}
}

func TestEvalTraceRemote(t *testing.T) {
	c := spanjoin.NewCorpus()
	c.AddAll("mail", "no matches here")
	ts := httptest.NewServer(server.New(c, server.Config{}).Handler())
	defer ts.Close()

	out, errw, code := runCtl(t, "eval", "-p", "x{mail}", "-addr", ts.URL, "-trace")
	if code != exitOK {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "x=") {
		t.Errorf("no matches printed: %q", out)
	}
	// The server's cursor-paginated eval runs the cache lookup and the
	// ranked counting sweep; those stages come back over the wire.
	if !strings.Contains(errw, "trace:") || !strings.Contains(errw, "cache") || !strings.Contains(errw, "count") {
		t.Errorf("remote trace breakdown missing: %q", errw)
	}
}

func TestQueryTimeoutAndBudgetExitCodes(t *testing.T) {
	doc := strings.Repeat("a", 4096)
	_, errw, code := runCtl(t, "query", "-atom", "a*x{a+}a*", "-d", doc, "-timeout", "1ns")
	if code != exitDeadline {
		t.Fatalf("timeout: exit %d, want %d (stderr %q)", code, exitDeadline, errw)
	}
	_, errw, code = runCtl(t, "query", "-atom", "a*x{a+}a*", "-d", doc, "-budget", "2")
	if code != exitBudget {
		t.Fatalf("budget: exit %d, want %d (stderr %q)", code, exitBudget, errw)
	}
	out, errw, code := runCtl(t, "query", "-atom", "a*x{a+}a*", "-d", "aaaa", "-limit", "3")
	if code != exitOK {
		t.Fatalf("limit: exit %d, want %d (stderr %q)", code, exitOK, errw)
	}
	if n := strings.Count(out, "x="); n != 3 {
		t.Errorf("limit: got %d results, want 3 (out %q)", n, out)
	}
}

func TestEvalOffsetFlag(t *testing.T) {
	// The full enumeration on aaaa has 10 matches; -offset 8 leaves 2.
	full, _, _ := runCtl(t, "eval", "-p", "a*x{a+}a*", "-d", "aaaa")
	out, errw, code := runCtl(t, "eval", "-p", "a*x{a+}a*", "-d", "aaaa", "-offset", "8")
	if code != 0 {
		t.Fatal("exit != 0")
	}
	if !strings.Contains(errw, "2 match(es)") {
		t.Errorf("stderr = %q, want 2 matches after offset 8", errw)
	}
	lines := strings.Split(strings.TrimSpace(full), "\n")
	if want := strings.Join(lines[8:], "\n") + "\n"; out != want {
		t.Errorf("offset page = %q, want tail of full enumeration %q", out, want)
	}
}

// TestSampleUsageValidation pins the satellite contract: malformed draw
// parameters are usage errors (exit 2), caught before any evaluation.
func TestSampleUsageValidation(t *testing.T) {
	bad := [][]string{
		{"sample", "-p", "x{a}", "-d", "a", "-n", "0"},
		{"sample", "-p", "x{a}", "-d", "a", "-n", "-3"},
		{"sample", "-p", "x{a}", "-d", "a", "-seed", "-1"},
		{"sample", "-d", "a", "-n", "1"}, // missing -p
	}
	for _, args := range bad {
		if _, _, code := runCtl(t, args...); code != exitUsage {
			t.Errorf("%v: exit %d, want %d", args, code, exitUsage)
		}
	}
	// The happy path still works, including seed 0.
	out, _, code := runCtl(t, "sample", "-p", "a*x{a+}a*", "-d", "aaaa", "-n", "2", "-seed", "0")
	if code != exitOK {
		t.Fatalf("valid sample: exit %d (out %q)", code, out)
	}
	if n := strings.Count(out, "x="); n != 2 {
		t.Errorf("valid sample: %d draws, want 2", n)
	}
}

// TestRemoteMode round-trips eval/count/sample/stats against a real
// spand server over a TCP socket — the CLI's client mode end to end.
func TestRemoteMode(t *testing.T) {
	c := spanjoin.NewCorpus()
	c.AddAll("alice sent mail", "no matches here", "aa mail mail aa", "mail")
	ts := httptest.NewServer(server.New(c, server.Config{}).Handler())
	defer ts.Close()

	out, errw, code := runCtl(t, "eval", "-p", `x{mail}`, "-addr", ts.URL, "-json")
	if code != exitOK {
		t.Fatalf("eval: exit %d, stderr %q", code, errw)
	}
	// Anchor mode: only the document that is exactly "mail" matches.
	if n := strings.Count(out, `"text":"mail"`); n != 1 {
		t.Errorf("remote eval: %d rows (out %q), want 1", n, out)
	}

	out, _, code = runCtl(t, "count", "-p", `x{mail}`, "-addr", ts.URL, "-json")
	if code != exitOK || strings.TrimSpace(out) != `{"count":1}` {
		t.Errorf("remote count: exit %d out %q, want {\"count\":1}", code, out)
	}

	out, errw, code = runCtl(t, "sample", "-p", `x{mail}`, "-addr", ts.URL, "-n", "3", "-seed", "7")
	if code != exitOK {
		t.Fatalf("sample: exit %d, stderr %q", code, errw)
	}
	if n := strings.Count(out, "x="); n != 3 {
		t.Errorf("remote sample: %d draws (out %q), want 3", n, out)
	}

	out, _, code = runCtl(t, "stats", "-addr", ts.URL)
	if code != exitOK || !strings.Contains(out, "docs:") {
		t.Errorf("stats: exit %d out %q", code, out)
	}

	// Remote + local document sources are mutually exclusive; missing
	// -addr on stats is usage too.
	for _, args := range [][]string{
		{"eval", "-p", "x{a}", "-addr", ts.URL, "-d", "a"},
		{"count", "-p", "x{a}", "-addr", ts.URL, "-f", "x"},
		{"sample", "-p", "x{a}", "-addr", ts.URL, "-d", "a"},
		{"stats"},
	} {
		if _, _, code := runCtl(t, args...); code != exitUsage {
			t.Errorf("%v: exit %d, want %d", args, code, exitUsage)
		}
	}
}
