// Spanlint machine-checks the engine's cross-cutting invariants: the
// contracts that every layer of the serving stack re-implements by
// convention and that ordinary `go vet` cannot see.
//
//	usage: spanlint [flags] [packages]
//
//	  -only a,b   run only the named analyzers (default: all)
//	  -tags list  build tags for the load (e.g. failpoints)
//	  -json       emit diagnostics as a JSON array
//	  -list       print the analyzers and exit
//
// Analyzers:
//
//	ctxthread    evaluation entry points thread contexts/deadlines
//	closecheck   Results/CorpusMatches/Matches are Closed and Err-checked
//	taxonomy     sentinel errors via errors.Is/As; status maps exhaustive
//	failpointtag failpoint arming only in failpoints-tagged files
//	hotpath      //spanjoin:hotpath functions stay alloc-free
//	obsspan      //spanjoin:stage functions record their stage
//
// Exit status is 1 when any diagnostic is reported, 2 on usage or load
// errors, 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spanjoin/internal/analysis"
	"spanjoin/internal/analysis/closecheck"
	"spanjoin/internal/analysis/ctxthread"
	"spanjoin/internal/analysis/driver"
	"spanjoin/internal/analysis/failpointtag"
	"spanjoin/internal/analysis/hotpath"
	"spanjoin/internal/analysis/load"
	"spanjoin/internal/analysis/obsspan"
	"spanjoin/internal/analysis/taxonomy"
)

// suite is the spanlint analyzer set, in reporting order.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxthread.Analyzer,
		closecheck.Analyzer,
		taxonomy.Analyzer,
		failpointtag.Analyzer,
		hotpath.Analyzer,
		obsspan.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("spanlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	tags := fs.String("tags", "", "build tags for the load (e.g. failpoints)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "print the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	all := suite()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "spanlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	fset, pkgs, err := load.Load(load.Config{Tags: *tags, Tests: true}, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "spanlint:", err)
		return 2
	}
	res, err := driver.Run(analyzers, fset, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "spanlint:", err)
		return 2
	}
	if *jsonOut {
		if err := res.PrintJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "spanlint:", err)
			return 2
		}
	} else {
		res.Print(stdout)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
