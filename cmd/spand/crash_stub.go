//go:build !failpoints

package main

// armCrashpoints is a no-op in ordinary builds; the failpoints-tagged
// twin arms SIGKILL crash points from SPAND_CRASHPOINT for the
// crash-injection harness.
func armCrashpoints() {}
