// Command spand serves a spanjoin corpus over HTTP/JSON.
//
// Usage:
//
//	spand -addr :8080 [corpus flags] [server flags] [FILE ...]
//
// Each positional FILE is loaded as one document; -lines FILE (or
// -lines -) instead loads one document per line, which is how the load
// experiments and the CI integration test feed a many-document corpus.
//
// Corpus flags mirror the library's constructor options:
//
//	-shards N          store shards (0 = default)
//	-workers N         evaluation pool size (0 = GOMAXPROCS)
//	-index             build the skip index on ingest
//	-max-concurrent N  admission gate: evaluations running at once (0 = unbounded)
//	-max-queue N       admission gate: queries waiting for a slot
//
// Durability flags make the corpus survive crashes (see the README's
// "Durability and crash recovery"):
//
//	-data DIR          back the corpus with a write-ahead log + snapshots
//	                   in DIR; POST /add acks are durable per -fsync, and
//	                   a restart recovers every acknowledged write
//	-fsync P           always | interval | never (default always)
//	-fsync-interval D  fsync cadence under -fsync interval (default 100ms)
//	-snapshot-bytes N  snapshot + prune when the log passes N bytes
//	                   (default 64 MiB; 0 disables automatic snapshots)
//
// Server flags bound what one request can ask for:
//
//	-max-page N        page-size clamp for /eval limit and /sample n
//	-default-timeout D per-request deadline when the request names none
//	-max-timeout D     clamp for request-supplied timeouts
//	-max-doc-bytes N   POST /add body clamp (default 16 MiB)
//
// Observability flags (see the README's "Observability"):
//
//	-slow-query D      retain requests at least D slow — with their full
//	                   stage trace — in GET /debug/slowlog (0 = off)
//	-slowlog-size N    slow-query ring capacity (default 128)
//	-pprof             mount the runtime profiles under /debug/pprof/
//	-log-requests      one structured log line per request on stderr
//
// GET /metrics (Prometheus text format) is always on.
//
// The listener binds before the corpus is opened: during recovery and
// ingest every request — /healthz included — answers 503 with the
// reason, flipping to 200 when serving starts ("ready" on stdout). Load
// balancers therefore keep a recovering instance out of rotation
// without mistaking it for a dead one.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get -grace (default 5s) to finish, then the corpus is
// closed — syncing the log, so a graceful shutdown is fully durable
// even under -fsync never.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spanjoin"
	"spanjoin/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus process concerns, split out for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spand", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	shards := fs.Int("shards", 0, "store shards (0 = default)")
	workers := fs.Int("workers", 0, "evaluation pool size (0 = GOMAXPROCS)")
	index := fs.Bool("index", false, "build the skip index on ingest")
	maxConcurrent := fs.Int("max-concurrent", 0, "admission gate: evaluations running at once (0 = unbounded)")
	maxQueue := fs.Int("max-queue", 0, "admission gate: queries waiting for a slot")
	maxPage := fs.Int("max-page", 0, "page-size clamp for /eval limit and /sample n (0 = default)")
	defaultTimeout := fs.Duration("default-timeout", 0, "per-request deadline when the request names none (0 = default)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp for request-supplied timeouts (0 = default)")
	maxDocBytes := fs.Int64("max-doc-bytes", 0, "POST /add body clamp in bytes (0 = default 16 MiB)")
	data := fs.String("data", "", "data directory: WAL + snapshots, crash-recovered on start")
	fsync := fs.String("fsync", "always", "durable ack policy: always | interval | never")
	fsyncInterval := fs.Duration("fsync-interval", 0, "fsync cadence under -fsync interval (0 = default 100ms)")
	snapshotBytes := fs.Int64("snapshot-bytes", 64<<20, "snapshot + prune when the log passes N bytes (0 = never)")
	lines := fs.String("lines", "", "load one document per line of FILE ('-' = stdin)")
	grace := fs.Duration("grace", 5*time.Second, "shutdown grace for in-flight requests")
	pprofOn := fs.Bool("pprof", false, "mount the runtime profiles under /debug/pprof/")
	slowQuery := fs.Duration("slow-query", 0, "retain requests at least this slow in /debug/slowlog (0 = off)")
	slowlogSize := fs.Int("slowlog-size", 0, "slow-query ring capacity (0 = default 128)")
	logRequests := fs.Bool("log-requests", false, "log one structured line per request to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var copts []spanjoin.CorpusOption
	if *shards > 0 {
		copts = append(copts, spanjoin.WithShards(*shards))
	}
	if *workers > 0 {
		copts = append(copts, spanjoin.WithWorkers(*workers))
	}
	if *index {
		copts = append(copts, spanjoin.WithIndex())
	}
	if *maxConcurrent > 0 {
		copts = append(copts, spanjoin.WithMaxConcurrent(*maxConcurrent))
	}
	if *maxQueue > 0 {
		copts = append(copts, spanjoin.WithMaxQueue(*maxQueue))
	}

	// Bind before recovery: the address is on stdout (and /healthz
	// answers 503 + reason) while the corpus replays its durable state,
	// so "up" and "ready" are observable as distinct conditions.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "spand:", err)
		return 1
	}
	// The resolved address is the first line on stdout so scripts (and the
	// CI integration test) can bind ":0" and read back the port.
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	rd := server.NewReadiness("recovering corpus")
	hs := &http.Server{Handler: rd, ErrorLog: log.New(stderr, "spand: ", 0)}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	// Crash points (failpoints builds only; no-op otherwise) arm before
	// any durable write so the harness can kill the ingest path too.
	armCrashpoints()

	var corpus *spanjoin.Corpus
	if *data != "" {
		policy, err := spanjoin.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(stderr, "spand:", err)
			hs.Close()
			return 2
		}
		copts = append(copts, spanjoin.WithSync(policy), spanjoin.WithSnapshotThreshold(*snapshotBytes))
		if *fsyncInterval > 0 {
			copts = append(copts, spanjoin.WithSyncInterval(*fsyncInterval))
		}
		corpus, err = spanjoin.Open(*data, copts...)
		if err != nil {
			// A corrupt directory is deliberately fatal and typed: refusing
			// to serve beats silently serving a partial corpus.
			fmt.Fprintln(stderr, "spand:", err)
			hs.Close()
			return 1
		}
	} else {
		corpus = spanjoin.NewCorpus(copts...)
	}

	rd.SetReason("loading documents")
	if err := load(corpus, *lines, fs.Args()); err != nil {
		fmt.Fprintln(stderr, "spand:", err)
		corpus.Close()
		hs.Close()
		return 1
	}

	scfg := server.Config{
		MaxPageSize:    *maxPage,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxDocBytes:    *maxDocBytes,
		SlowQuery:      *slowQuery,
		SlowLogSize:    *slowlogSize,
		EnablePprof:    *pprofOn,
	}
	if *logRequests {
		scfg.Logger = slog.New(slog.NewTextHandler(stderr, nil))
	}
	srv := server.New(corpus, scfg)
	rd.Mount(srv.Handler())
	fmt.Fprintf(stdout, "ready (%d docs, %d shards)\n", corpus.Len(), corpus.NumShards())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "spand:", err)
			corpus.Close()
			return 1
		}
	case <-ctx.Done():
		stop()
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			hs.Close()
		}
		// Close after Shutdown: in-flight durable adds finish first, then
		// the log is synced and closed — under every fsync policy a
		// graceful shutdown loses nothing.
		if err := corpus.Close(); err != nil {
			fmt.Fprintln(stderr, "spand: closing corpus:", err)
			return 1
		}
		fmt.Fprintln(stdout, "shut down")
	}
	return 0
}

// load ingests the corpus: every positional file as one document, plus —
// with -lines — one document per line of a file or stdin.
func load(c *spanjoin.Corpus, lines string, files []string) error {
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if _, err := c.AddErrCtx(context.Background(), string(b)); err != nil {
			return err
		}
	}
	if lines == "" {
		return nil
	}
	var r io.Reader
	if lines == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(lines)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		if _, err := c.AddErrCtx(context.Background(), sc.Text()); err != nil {
			return err
		}
	}
	return sc.Err()
}
