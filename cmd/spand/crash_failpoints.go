//go:build failpoints

package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"spanjoin/internal/resilience"
)

// armCrashpoints reads SPAND_CRASHPOINT=<failpoint>:<nth> and arms the
// named failpoint to SIGKILL this process the nth time it fires (1-based).
// SIGKILL — not exit — is the point: the process gets no chance to flush,
// close, or run deferred cleanup, which is exactly the crash the WAL's
// recovery contract must absorb. The crash harness in crash_test.go sets
// the variable, ingests documents until the process dies mid-write, then
// restarts it and checks acked-implies-present / unacked-implies-absent.
//
// Example: SPAND_CRASHPOINT=wal/crash/before-ack:3 kills the server
// during its third durable add, after the record is on disk but before
// the client hears about it.
func armCrashpoints() {
	spec := os.Getenv("SPAND_CRASHPOINT")
	if spec == "" {
		return
	}
	name, nthS, ok := strings.Cut(spec, ":")
	nth, err := strconv.ParseInt(nthS, 10, 64)
	if !ok || err != nil || nth < 1 {
		fmt.Fprintf(os.Stderr, "spand: bad SPAND_CRASHPOINT %q (want <failpoint>:<nth>)\n", spec)
		os.Exit(2)
	}
	var fired atomic.Int64
	resilience.Enable(name, func(any) {
		if fired.Add(1) == nth {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // SIGKILL is not synchronous; never return to the write path
		}
	})
}
