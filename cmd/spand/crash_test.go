//go:build failpoints

// Crash-injection harness: builds the real spand binary (failpoints tag),
// SIGKILLs it at armed crash points mid-ingest via SPAND_CRASHPOINT,
// restarts it on the same data directory, and checks the durability
// contract from the outside — a client that got an ack keeps its
// document byte-for-byte; a client that got no ack never sees a phantom
// the log cannot justify.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"spanjoin/internal/resilience"
	"spanjoin/server"
)

// spandBin is the failpoints-tagged spand binary, built once in TestMain.
var spandBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "spand-crash")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spandBin = filepath.Join(dir, "spand")
	cmd := exec.Command("go", "build", "-tags", "failpoints", "-o", spandBin, ".")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.RemoveAll(dir)
		fmt.Fprintln(os.Stderr, "building spand:", err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// proc is one running spand with its resolved address and exit channel.
type proc struct {
	cmd  *exec.Cmd
	addr string
	done chan error
}

// startSpand launches the built binary on :0 over dir and parses the
// bound address off stdout. extraEnv entries are "K=V" strings.
func startSpand(t *testing.T, dir string, extraEnv []string, args ...string) *proc {
	t.Helper()
	full := append([]string{"-addr", "127.0.0.1:0", "-data", dir}, args...)
	cmd := exec.Command(spandBin, full...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("spand exited before printing its address")
	}
	addr, ok := strings.CutPrefix(sc.Text(), "listening on ")
	if !ok {
		t.Fatalf("first stdout line = %q, want the listen address", sc.Text())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	return &proc{cmd: cmd, addr: addr, done: done}
}

// waitReady polls /healthz until the recovering server answers 200.
func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("spand at %s never became ready", addr)
}

// waitKilled asserts the process died by SIGKILL — the crash point fired.
func waitKilled(t *testing.T, p *proc) {
	t.Helper()
	select {
	case err := <-p.done:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("spand exited without a signal (%v), want SIGKILL", err)
		}
		ws := ee.Sys().(syscall.WaitStatus)
		if !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("spand died with %v, want SIGKILL", ee)
		}
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill()
		t.Fatal("spand did not die at the armed crash point")
	}
}

// stop shuts a healthy spand down gracefully and requires exit 0.
func stop(t *testing.T, p *proc) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill()
		t.Fatal("spand did not shut down on SIGTERM")
	}
}

// postDoc appends one document; a transport error means the server died
// before acking (the crash point fired mid-write).
func postDoc(addr, text string) (uint64, error) {
	resp, err := http.Post("http://"+addr+"/add", "text/plain", strings.NewReader(text))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("POST /add: status %d: %s", resp.StatusCode, b)
	}
	var ab server.AddBody
	if err := json.NewDecoder(resp.Body).Decode(&ab); err != nil {
		return 0, err
	}
	return ab.ID, nil
}

// getDoc fetches one document by ID.
func getDoc(t *testing.T, addr string, id uint64) (string, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/doc?id=%d", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return "", false
	}
	var db server.DocBody
	if err := json.NewDecoder(resp.Body).Decode(&db); err != nil {
		t.Fatal(err)
	}
	return db.Text, true
}

// docCount reads the corpus size off /stats.
func docCount(t *testing.T, addr string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb server.StatsBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.Docs
}

// matchesPattern reports whether /count finds at least one match.
func matchesPattern(t *testing.T, addr, pattern string) bool {
	t.Helper()
	q := url.Values{"q": {pattern}}
	resp, err := http.Get("http://" + addr + "/count?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /count: status %d: %s", resp.StatusCode, b)
	}
	var cb server.CountBody
	if err := json.NewDecoder(resp.Body).Decode(&cb); err != nil {
		t.Fatal(err)
	}
	return cb.Count != "0"
}

// TestCrashDuringIngest is the headline scenario: kill the server with
// SIGKILL at each crash point inside the nth durable add, restart on the
// same directory, and check what survived against what was acked.
func TestCrashDuringIngest(t *testing.T) {
	cases := []struct {
		point  string
		logged bool // the in-flight record reached the log before the kill
	}{
		{resilience.CrashBeforeAppend, false},
		{resilience.CrashAfterAppend, true},
		{resilience.CrashBeforeAck, true},
	}
	for _, tc := range cases {
		t.Run(path.Base(tc.point), func(t *testing.T) {
			const nth = 4
			dir := t.TempDir()
			p := startSpand(t, dir, []string{fmt.Sprintf("SPAND_CRASHPOINT=%s:%d", tc.point, nth)})
			waitReady(t, p.addr)

			type doc struct {
				id   uint64
				text string
			}
			var acked []doc
			inflight := ""
			for i := 0; inflight == "" && i < nth+2; i++ {
				text := fmt.Sprintf("document %d carrying tok%03d", i, i)
				id, err := postDoc(p.addr, text)
				if err != nil {
					inflight = text
					break
				}
				acked = append(acked, doc{id, text})
			}
			if inflight == "" {
				t.Fatal("no add hit the crash point")
			}
			if len(acked) != nth-1 {
				t.Fatalf("%d adds acked before the crash, want %d", len(acked), nth-1)
			}
			waitKilled(t, p)

			p2 := startSpand(t, dir, nil)
			defer stop(t, p2)
			waitReady(t, p2.addr)

			// Every acked document is present, byte-identical, same ID.
			for _, d := range acked {
				got, ok := getDoc(t, p2.addr, d.id)
				if !ok || got != d.text {
					t.Fatalf("acked doc %d after crash = %q,%v, want %q", d.id, got, ok, d.text)
				}
			}
			inTok := fmt.Sprintf("tok%03d", len(acked))
			if tc.logged {
				// Logged-but-unacked: the record hit disk before the kill,
				// so recovery replays it — present and byte-identical (an
				// exact full-document match), just never acked.
				if n := docCount(t, p2.addr); n != len(acked)+1 {
					t.Fatalf("recovered %d docs, want %d acked + 1 logged in-flight", n, len(acked))
				}
				if !matchesPattern(t, p2.addr, "x{"+inflight+"}") {
					t.Fatalf("logged in-flight doc %q not recovered byte-identical", inflight)
				}
			} else {
				// Killed before the append: the unacked document must be
				// strictly absent — recovery never invents writes.
				if n := docCount(t, p2.addr); n != len(acked) {
					t.Fatalf("recovered %d docs, want exactly the %d acked", n, len(acked))
				}
				if matchesPattern(t, p2.addr, ".*x{"+inTok+"}.*") {
					t.Fatalf("unacked doc %q resurrected after crash", inflight)
				}
			}
		})
	}
}

// TestCrashDuringSnapshot kills the server inside a snapshot cycle —
// before and after the atomic rename — and checks no acked document is
// lost either way: the snapshot is all-or-nothing and the log covers it.
func TestCrashDuringSnapshot(t *testing.T) {
	for _, point := range []string{resilience.CrashSnapBeforeRen, resilience.CrashSnapAfterRen} {
		t.Run(path.Base(point), func(t *testing.T) {
			dir := t.TempDir()
			p := startSpand(t, dir, []string{"SPAND_CRASHPOINT=" + point + ":1"})
			waitReady(t, p.addr)

			var acked []string
			var ids []uint64
			for i := 0; i < 5; i++ {
				text := fmt.Sprintf("snapshot survivor %d", i)
				id, err := postDoc(p.addr, text)
				if err != nil {
					t.Fatalf("add %d: %v", i, err)
				}
				acked = append(acked, text)
				ids = append(ids, id)
			}
			resp, err := http.Post("http://"+p.addr+"/snapshot", "", nil)
			if err == nil {
				resp.Body.Close()
				t.Fatal("snapshot completed; the crash point never fired")
			}
			waitKilled(t, p)

			p2 := startSpand(t, dir, nil)
			defer stop(t, p2)
			waitReady(t, p2.addr)
			if n := docCount(t, p2.addr); n != len(acked) {
				t.Fatalf("recovered %d docs, want %d", n, len(acked))
			}
			for i, text := range acked {
				got, ok := getDoc(t, p2.addr, ids[i])
				if !ok || got != text {
					t.Fatalf("doc %d after snapshot crash = %q,%v, want %q", ids[i], got, ok, text)
				}
			}
		})
	}
}

// TestGracefulShutdownFlushes pins the -fsync never contract: unsynced
// acks survive a graceful SIGTERM because Close syncs the log on the way
// out. (They would NOT survive SIGKILL — that is the policy's trade.)
func TestGracefulShutdownFlushes(t *testing.T) {
	dir := t.TempDir()
	p := startSpand(t, dir, nil, "-fsync", "never")
	waitReady(t, p.addr)
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, err := postDoc(p.addr, fmt.Sprintf("unsynced doc %d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	stop(t, p)

	p2 := startSpand(t, dir, nil)
	defer stop(t, p2)
	waitReady(t, p2.addr)
	if n := docCount(t, p2.addr); n != len(ids) {
		t.Fatalf("recovered %d docs after graceful shutdown, want %d", n, len(ids))
	}
	for i, id := range ids {
		want := fmt.Sprintf("unsynced doc %d", i)
		if got, ok := getDoc(t, p2.addr, id); !ok || got != want {
			t.Fatalf("doc %d = %q,%v, want %q", id, got, ok, want)
		}
	}
}
