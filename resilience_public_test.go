package spanjoin_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"spanjoin"
	"spanjoin/internal/leakcheck"
	"spanjoin/internal/resilience"
)

// resilienceCorpus builds a corpus whose documents each yield many
// matches for the test pattern, so undrained evaluations keep their
// worker pools alive (blocked producing) — the state admission control
// and leak tests need to be able to create on demand.
func resilienceCorpus(t *testing.T, opts ...spanjoin.CorpusOption) *spanjoin.Corpus {
	t.Helper()
	c := spanjoin.NewCorpus(opts...)
	for i := 0; i < 48; i++ {
		c.Add(strings.Repeat("ab", 12))
	}
	return c
}

const resiliencePattern = `x{(ab)+}`

// TestErrorTaxonomy pins the public failure modes: each limit violation
// surfaces as its distinct typed error, detectable with errors.Is /
// errors.As, at both the pattern path (EvalSearch) and the query path
// (EvalQuery).
func TestErrorTaxonomy(t *testing.T) {
	q := spanjoin.NewQuery().Atom(`.*x{(ab)+}.*`).MustBuild()
	eval := map[string]func(c *spanjoin.Corpus, opts ...spanjoin.Option) (*spanjoin.CorpusMatches, error){
		"spanner": func(c *spanjoin.Corpus, opts ...spanjoin.Option) (*spanjoin.CorpusMatches, error) {
			return c.EvalSearch(context.Background(), resiliencePattern, opts...)
		},
		"query": func(c *spanjoin.Corpus, opts ...spanjoin.Option) (*spanjoin.CorpusMatches, error) {
			return c.EvalQuery(context.Background(), q, opts...)
		},
	}
	for name, ev := range eval {
		t.Run(name+"/deadline", func(t *testing.T) {
			c := resilienceCorpus(t)
			ms, err := ev(c, spanjoin.WithTimeout(time.Nanosecond))
			if err != nil {
				// The deadline may fire before the pool even starts; that
				// synchronous form must carry the same typed error.
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("err = %v, want DeadlineExceeded", err)
				}
				return
			}
			// spanlint/closecheck: release the stream's pool slot.
			defer ms.Close()
			for {
				if _, ok := ms.Next(); !ok {
					break
				}
			}
			if err := ms.Err(); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Err = %v, want context.DeadlineExceeded", err)
			}
		})
		t.Run(name+"/budget", func(t *testing.T) {
			c := resilienceCorpus(t)
			ms, err := ev(c, spanjoin.WithBudget(5))
			if err != nil {
				t.Fatal(err)
			}
			// spanlint/closecheck: release the stream's pool slot.
			defer ms.Close()
			for {
				if _, ok := ms.Next(); !ok {
					break
				}
			}
			if err := ms.Err(); !errors.Is(err, spanjoin.ErrBudgetExceeded) {
				t.Fatalf("Err = %v, want ErrBudgetExceeded", err)
			}
			if st := ms.Stats(); st.Work == 0 {
				t.Fatal("Stats.Work = 0 after budgeted work")
			}
		})
		t.Run(name+"/limit", func(t *testing.T) {
			c := resilienceCorpus(t)
			ms, err := ev(c, spanjoin.WithLimit(3))
			if err != nil {
				t.Fatal(err)
			}
			// spanlint/closecheck: release the stream's pool slot.
			defer ms.Close()
			n := 0
			for {
				if _, ok := ms.Next(); !ok {
					break
				}
				n++
			}
			if n != 3 {
				t.Fatalf("delivered %d results, want 3", n)
			}
			if err := ms.Err(); err != nil {
				t.Fatalf("Err = %v, want nil — a met limit is normal exhaustion", err)
			}
			if st := ms.Stats(); st.Delivered != 3 {
				t.Fatalf("Stats.Delivered = %d, want 3", st.Delivered)
			}
		})
		t.Run(name+"/overloaded", func(t *testing.T) {
			c := resilienceCorpus(t, spanjoin.WithMaxConcurrent(1), spanjoin.WithResultBuffer(1), spanjoin.WithWorkers(1))
			ms, err := ev(c)
			if err != nil {
				t.Fatal(err)
			}
			defer ms.Close()
			if _, ok := ms.Next(); !ok {
				t.Fatal("holder query produced nothing")
			}
			if _, err := ev(c); !errors.Is(err, spanjoin.ErrOverloaded) {
				t.Fatalf("err = %v, want ErrOverloaded", err)
			}
			if st := c.GateStats(); st.Rejected == 0 || st.Active != 1 {
				t.Fatalf("GateStats = %+v, want Active 1 and Rejected > 0", st)
			}
			// spanlint/closecheck: the undrained holder must not have faulted.
			if err := ms.Err(); err != nil {
				t.Fatalf("holder Err = %v, want nil", err)
			}
		})
	}
}

// TestCountHonorsLimits: counts pass the same gate and deadline as
// streams.
func TestCountHonorsLimits(t *testing.T) {
	c := resilienceCorpus(t)
	_, err := c.CountSearch(context.Background(), resiliencePattern, spanjoin.WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("count with expired deadline: %v, want DeadlineExceeded", err)
	}

	g := resilienceCorpus(t, spanjoin.WithMaxConcurrent(1), spanjoin.WithResultBuffer(1), spanjoin.WithWorkers(1))
	ms, err := g.EvalSearch(context.Background(), resiliencePattern)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if _, ok := ms.Next(); !ok {
		t.Fatal("holder query produced nothing")
	}
	if _, err := g.CountSearch(context.Background(), resiliencePattern); !errors.Is(err, spanjoin.ErrOverloaded) {
		t.Fatalf("count under overload: %v, want ErrOverloaded", err)
	}
	// spanlint/closecheck: the undrained holder must not have faulted.
	if err := ms.Err(); err != nil {
		t.Fatalf("holder Err = %v, want nil", err)
	}
}

// TestQueueAdmitsFIFO: with a one-deep queue, a second query waits for
// the slot instead of shedding, and a third sheds.
func TestQueueAdmitsFIFO(t *testing.T) {
	c := resilienceCorpus(t, spanjoin.WithMaxConcurrent(1), spanjoin.WithMaxQueue(1), spanjoin.WithResultBuffer(1), spanjoin.WithWorkers(1))
	ms, err := c.EvalSearch(context.Background(), resiliencePattern)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ms.Next(); !ok {
		t.Fatal("holder query produced nothing")
	}

	queuedDone := make(chan error, 1)
	go func() {
		q, err := c.EvalSearch(context.Background(), resiliencePattern)
		if err != nil {
			queuedDone <- err
			return
		}
		defer q.Close()
		if _, ok := q.Next(); !ok {
			queuedDone <- errors.New("queued query produced nothing")
			return
		}
		// spanlint/closecheck: report the queued stream's Err to the waiter.
		queuedDone <- q.Err()
	}()

	// Wait until the second query is actually parked in the wait queue.
	deadline := time.Now().Add(5 * time.Second)
	for c.GateStats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full: a third query sheds.
	if _, err := c.EvalSearch(context.Background(), resiliencePattern); !errors.Is(err, spanjoin.ErrOverloaded) {
		t.Fatalf("third query err = %v, want ErrOverloaded", err)
	}
	// spanlint/closecheck: the holder must not have faulted while parked.
	if err := ms.Err(); err != nil {
		t.Fatalf("holder Err = %v, want nil", err)
	}
	// Releasing the slot admits the queued query.
	ms.Close()
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued query: %v", err)
	}
}

// TestCorpusMatchesCloseConcurrent hammers the public Close from many
// goroutines, racing Next and each other.
func TestCorpusMatchesCloseConcurrent(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		c := resilienceCorpus(t, spanjoin.WithResultBuffer(1))
		ms, err := c.EvalSearch(context.Background(), resiliencePattern)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ms.Close()
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := ms.Next(); !ok {
					return
				}
			}
		}()
		wg.Wait()
		ms.Close()
		if err := ms.Err(); err != nil {
			t.Fatalf("closed stream Err = %v, want nil", err)
		}
	}
}

// drainAbandoned consumes the stream to exhaustion and asserts its
// terminal Err, deliberately without Close: each TestNoGoroutineLeaks
// path must reap the worker pool through its own termination mode
// alone. Receiving the stream as a parameter takes over its lifecycle
// obligation (spanlint/closecheck's escape rule), which this helper
// intentionally leaves unfulfilled.
func drainAbandoned(t *testing.T, ms *spanjoin.CorpusMatches, want error) {
	t.Helper()
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
	}
	err := ms.Err()
	switch {
	case want == nil && err != nil:
		t.Fatalf("Err = %v, want nil", err)
	case want != nil && !errors.Is(err, want):
		t.Fatalf("Err = %v, want %v", err, want)
	}
}

// abandonStream reads one result and drops the stream: ownership (and
// the close obligation) transfers here and is never fulfilled, so only
// the GC cleanup attached to the public wrapper can reap the pool —
// exactly the path the abandoned leak subtest exercises.
func abandonStream(ms *spanjoin.CorpusMatches) {
	ms.Next()
}

// TestNoGoroutineLeaks drives every lifecycle path of a corpus
// evaluation and asserts the worker pool (including the shard dealer) is
// gone afterwards.
func TestNoGoroutineLeaks(t *testing.T) {
	t.Run("drained", func(t *testing.T) {
		leakcheck.Check(t, func() {
			c := resilienceCorpus(t)
			ms, err := c.EvalSearch(context.Background(), resiliencePattern)
			if err != nil {
				t.Fatal(err)
			}
			drainAbandoned(t, ms, nil)
		})
	})
	t.Run("closed-early", func(t *testing.T) {
		leakcheck.Check(t, func() {
			c := resilienceCorpus(t, spanjoin.WithResultBuffer(1))
			ms, err := c.EvalSearch(context.Background(), resiliencePattern)
			if err != nil {
				t.Fatal(err)
			}
			ms.Next()
			ms.Close()
			// spanlint/closecheck: a closed stream reports a clean Err.
			if err := ms.Err(); err != nil {
				t.Fatalf("Err after early Close = %v, want nil", err)
			}
		})
	})
	t.Run("cancelled", func(t *testing.T) {
		leakcheck.Check(t, func() {
			c := resilienceCorpus(t, spanjoin.WithResultBuffer(1))
			ctx, cancel := context.WithCancel(context.Background())
			ms, err := c.EvalSearch(ctx, resiliencePattern)
			if err != nil {
				t.Fatal(err)
			}
			ms.Next()
			cancel()
			drainAbandoned(t, ms, context.Canceled)
		})
	})
	t.Run("deadline", func(t *testing.T) {
		leakcheck.Check(t, func() {
			c := resilienceCorpus(t)
			ms, err := c.EvalSearch(context.Background(), resiliencePattern, spanjoin.WithTimeout(time.Nanosecond))
			if err != nil {
				return
			}
			drainAbandoned(t, ms, context.DeadlineExceeded)
		})
	})
	t.Run("shed", func(t *testing.T) {
		leakcheck.Check(t, func() {
			c := resilienceCorpus(t, spanjoin.WithMaxConcurrent(1), spanjoin.WithResultBuffer(1), spanjoin.WithWorkers(1))
			ms, err := c.EvalSearch(context.Background(), resiliencePattern)
			if err != nil {
				t.Fatal(err)
			}
			ms.Next()
			if _, err := c.EvalSearch(context.Background(), resiliencePattern); !errors.Is(err, spanjoin.ErrOverloaded) {
				t.Fatalf("err = %v, want ErrOverloaded", err)
			}
			// spanlint/closecheck: check the holder before releasing it.
			if err := ms.Err(); err != nil {
				t.Fatalf("holder Err = %v, want nil", err)
			}
			ms.Close()
		})
	})
	t.Run("abandoned", func(t *testing.T) {
		// The hard case: the caller reads a bit and drops the stream
		// without Close. The dealer and workers are parked on a full
		// buffer; only the GC cleanup attached to the public wrapper can
		// reap them. leakcheck's retry loop runs runtime.GC, which fires
		// the cleanup once the wrapper is unreachable.
		leakcheck.Check(t, func() {
			c := resilienceCorpus(t, spanjoin.WithResultBuffer(1))
			func() {
				ms, err := c.EvalSearch(context.Background(), resiliencePattern)
				if err != nil {
					t.Fatal(err)
				}
				abandonStream(ms)
			}()
		})
	})
}

// TestIterateCtxCancellation: single-document iteration with a context
// stops on cancellation and reports it via Matches.Err, while plain
// Iterate reports nil.
func TestIterateCtxCancellation(t *testing.T) {
	sp := spanjoin.MustCompile(`.*x{(ab)+}.*`)
	doc := strings.Repeat("ab", 64)

	ms, err := sp.Iterate(doc)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
	}
	if err := ms.Err(); err != nil {
		t.Fatalf("plain Iterate Err = %v, want nil", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ms, err = sp.IterateCtx(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ms.Next(); !ok {
		t.Fatal("no first match")
	}
	cancel()
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
	}
	if err := ms.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}

	// An already-dead context fails fast.
	if _, err := sp.IterateCtx(ctx, doc); !errors.Is(err, context.Canceled) {
		t.Fatalf("IterateCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestPanicErrorExposed: the re-exported alias is the engine's own type,
// so a PanicError produced anywhere inside surfaces to errors.As at the
// API boundary, through wrapping, with its message naming the document.
func TestPanicErrorExposed(t *testing.T) {
	inner := resilience.NewPanicError(7, "boom")
	wrapped := fmt.Errorf("evaluating: %w", inner)
	var pe *spanjoin.PanicError
	if !errors.As(wrapped, &pe) {
		t.Fatal("errors.As failed through a wrap")
	}
	if pe.Doc != 7 || !strings.Contains(pe.Error(), "doc 7") {
		t.Fatalf("PanicError = %v", pe)
	}
	// An error panic value stays reachable through Unwrap.
	cause := errors.New("root cause")
	if !errors.Is(resilience.NewPanicError(resilience.NoDoc, cause), cause) {
		t.Fatal("errors.Is lost the panic's error value")
	}
}
