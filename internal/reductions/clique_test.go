package reductions_test

import (
	"fmt"
	"math/rand"
	"testing"

	"spanjoin/internal/core"
	"spanjoin/internal/reductions"
	"spanjoin/internal/workload"
)

func path4() *reductions.Graph {
	return &reductions.Graph{N: 4, Edges: [][2]int{{1, 2}, {2, 3}, {3, 4}}}
}

func k4() *reductions.Graph {
	return &reductions.Graph{N: 4, Edges: [][2]int{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}}
}

func TestCliqueStringEncoding(t *testing.T) {
	g := &reductions.Graph{N: 2, Edges: [][2]int{{1, 2}}}
	s := reductions.CliqueString(g)
	// width 2 codes: v1 = "ab", v2 = "ba".
	if s != "<ab#ba>" {
		t.Errorf("encoding = %q", s)
	}
	if got := reductions.CliqueString(&reductions.Graph{N: 3}); got != "" {
		t.Errorf("edgeless graph should encode to empty string, got %q", got)
	}
}

func TestCliqueFixedGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *reductions.Graph
		k    int
		want bool
	}{
		{"triangle in K4", k4(), 3, true},
		{"K4 has K4", k4(), 4, true},
		{"no triangle in path", path4(), 3, false},
		{"edge as 2-clique", path4(), 2, true},
	}
	for _, tc := range cases {
		nodes, ok, err := reductions.FindClique(tc.g, tc.k, core.Options{Strategy: core.Canonical})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ok != tc.want {
			t.Errorf("%s: found=%v, want %v", tc.name, ok, tc.want)
		}
		if ok && !reductions.IsClique(tc.g, nodes) {
			t.Errorf("%s: bad witness %v", tc.name, nodes)
		}
	}
}

func TestCliqueQueryIsGammaAcyclic(t *testing.T) {
	// Theorem 3.2: "q contains no gamma-cycles since each two different δl
	// have no common variables."
	q, err := reductions.CliqueQuery(k4(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsGammaAcyclic() {
		t.Error("clique query must be gamma-acyclic")
	}
	if !q.IsAcyclic() {
		t.Error("gamma-acyclic implies alpha-acyclic")
	}
}

func TestCliqueAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		n := r.Intn(3) + 4
		g := workload.RandomGraph(r, n, 0.5)
		k := 3
		_, want := reductions.BruteForceClique(g, k)
		nodes, got, err := reductions.FindClique(g, k, core.Options{Strategy: core.Canonical})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: found=%v, brute force %v (graph %+v)", trial, got, want, g)
		}
		if got && !reductions.IsClique(g, nodes) {
			t.Fatalf("trial %d: bad witness", trial)
		}
	}
}

func TestPlantedCliqueIsFound(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g := workload.RandomGraph(r, 7, 0.2)
	planted := workload.PlantClique(r, g, 3)
	if !reductions.IsClique(g, planted) {
		t.Fatal("planting broken")
	}
	_, ok, err := reductions.FindClique(g, 3, core.Options{Strategy: core.Canonical})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("planted clique not found")
	}
}

func TestCliqueEqAgainstBruteForce(t *testing.T) {
	// Theorem 5.2 reduction (string equalities). Keep graphs tiny: the
	// equality compilation is Θ(N^3)-states per selection.
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 4; trial++ {
		n := 4
		g := workload.RandomGraph(r, n, 0.6)
		if len(g.Edges) == 0 {
			continue
		}
		k := 3
		_, want := reductions.BruteForceClique(g, k)
		nodes, got, err := reductions.FindCliqueEq(g, k, core.Options{Strategy: core.Canonical})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: found=%v, brute force %v (graph %+v)", trial, got, want, g)
		}
		if got && !reductions.IsClique(g, nodes) {
			t.Fatalf("trial %d: bad witness %v", trial, nodes)
		}
	}
}

func TestCliqueEqQuerySizeDependsOnlyOnK(t *testing.T) {
	small := workload.RandomGraph(rand.New(rand.NewSource(1)), 4, 0.5)
	big := workload.RandomGraph(rand.New(rand.NewSource(2)), 12, 0.5)
	qs, err := reductions.CliqueEqQuery(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := reductions.CliqueEqQuery(big, 3)
	if err != nil {
		t.Fatal(err)
	}
	aS, eS, vS, _ := reductions.QuerySize(qs)
	aB, eB, vB, _ := reductions.QuerySize(qb)
	if aS != aB || eS != eB || vS != vB {
		t.Errorf("Thm 5.2 query size must not depend on the graph: (%d,%d,%d) vs (%d,%d,%d)",
			aS, eS, vS, aB, eB, vB)
	}
	// Theorem 3.2's query, in contrast, grows with the graph.
	q2s, err := reductions.CliqueQuery(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	q2b, err := reductions.CliqueQuery(big, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, pS := reductions.QuerySize(q2s)
	_, _, _, pB := reductions.QuerySize(q2b)
	if pB <= pS {
		t.Errorf("Thm 3.2 query must grow with the graph: %d vs %d pattern bytes", pS, pB)
	}
}

func TestCliqueErrors(t *testing.T) {
	if _, err := reductions.CliqueQuery(k4(), 1); err == nil {
		t.Error("k < 2 must be rejected")
	}
	if _, _, err := reductions.FindClique(&reductions.Graph{N: 3}, 2, core.Options{}); err != nil {
		t.Errorf("edgeless graph should report no clique, not error: %v", err)
	}
}

func TestAllCliquesAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 8; trial++ {
		g := workload.RandomGraph(r, 6, 0.6)
		got, err := reductions.AllCliques(g, 3, core.Options{Strategy: core.Canonical})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceAllCliques(g, 3)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d cliques, brute force %d (graph %+v)", trial, len(got), len(want), g)
		}
		wantSet := map[string]bool{}
		for _, c := range want {
			wantSet[fmt.Sprint(c)] = true
		}
		for _, c := range got {
			if !wantSet[fmt.Sprint(c)] {
				t.Fatalf("trial %d: spurious clique %v", trial, c)
			}
		}
	}
}

func bruteForceAllCliques(g *reductions.Graph, k int) [][]int {
	var out [][]int
	nodes := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(nodes) == k {
			out = append(out, append([]int(nil), nodes...))
			return
		}
		for v := start; v <= g.N; v++ {
			ok := true
			for _, u := range nodes {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nodes = append(nodes, v)
			rec(v + 1)
			nodes = nodes[:len(nodes)-1]
		}
	}
	rec(1)
	return out
}
