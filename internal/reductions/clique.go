package reductions

import (
	"fmt"
	"sort"
	"strings"

	"spanjoin/internal/core"
	"spanjoin/internal/span"
)

// Graph is an undirected graph over nodes 1..N.
type Graph struct {
	N     int
	Edges [][2]int // i < j
}

// HasEdge reports adjacency (order-insensitive).
func (g *Graph) HasEdge(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, e := range g.Edges {
		if e[0] == a && e[1] == b {
			return true
		}
	}
	return false
}

// nodeCode gives each node a fixed-width binary code over {a, b}
// (O(log n) length as in the proof of Theorem 3.2).
func nodeCode(i, width int) string {
	b := make([]byte, width)
	for k := width - 1; k >= 0; k-- {
		if i&1 == 1 {
			b[k] = 'b'
		} else {
			b[k] = 'a'
		}
		i >>= 1
	}
	return string(b)
}

func codeWidth(n int) int {
	w := 1
	for 1<<w < n+1 {
		w++
	}
	return w
}

// CliqueString encodes the edge set of g as the string s of Theorem 3.2:
// the concatenation of e_{i,j} = ⟨ v_i # v_j ⟩ for every edge {v_i, v_j}
// with i < j, ordered lexicographically. The markers ⟨, #, ⟩ are the
// bytes '<', '#', '>'.
func CliqueString(g *Graph) string {
	w := codeWidth(g.N)
	var sb strings.Builder
	for i := 1; i <= g.N; i++ {
		for j := i + 1; j <= g.N; j++ {
			if g.HasEdge(i, j) {
				sb.WriteString("<" + nodeCode(i, w) + "#" + nodeCode(j, w) + ">")
			}
		}
	}
	return sb.String()
}

func xName(i, j int) string { return fmt.Sprintf("x%d_%d", i, j) }
func yName(i, j int) string { return fmt.Sprintf("y%d_%d", i, j) }

// gammaAtom builds the atom γ of Theorem 3.2: for all 1 ≤ i < j ≤ k, the
// pair (x_{i,j}, y_{i,j}) matches some edge ⟨ v # v' ⟩ of s, in the global
// order of s:
//
//	γ = γ_{1,2} … γ_{1,k} γ_{2,3} … γ_{k-1,k}   with
//	γ_{i,j} = Σ* ⟨ x_{i,j}{(a∨b)*} # y_{i,j}{(a∨b)*} ⟩ Σ*
//
// As in the paper, γ is a single regex formula (the concatenation of the
// γ_{i,j} with Σ* separators collapses into one pattern).
func gammaAtom(k int) (*core.Atom, error) {
	var sb strings.Builder
	sb.WriteString(".*")
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			sb.WriteString(fmt.Sprintf(`<%s{[ab]*}#%s{[ab]*}>.*`, xName(i, j), yName(i, j)))
		}
	}
	return core.NewAtom("gamma", sb.String())
}

// deltaAtom builds δ_l of Theorem 3.2: a disjunction over all nodes v
// forcing every y_{i,l} (i < l) and x_{l,j} (l < j) to match the code of
// the same node v, respecting the variable order in s.
func deltaAtom(g *Graph, k, l int) (*core.Atom, error) {
	w := codeWidth(g.N)
	var branches []string
	for v := 1; v <= g.N; v++ {
		code := nodeCode(v, w)
		var sb strings.Builder
		sb.WriteString(".*")
		for i := 1; i < l; i++ {
			sb.WriteString(fmt.Sprintf(`#%s{%s}>.*`, yName(i, l), code))
		}
		for j := l + 1; j <= k; j++ {
			sb.WriteString(fmt.Sprintf(`<%s{%s}#.*`, xName(l, j), code))
		}
		branches = append(branches, sb.String())
	}
	return core.NewAtom(fmt.Sprintf("delta%d", l), "("+strings.Join(branches, "|")+")")
}

// CliqueQuery builds the Boolean gamma-acyclic regex CQ of Theorem 3.2 for
// finding a k-clique. The projection keeps all variables so the clique can
// be decoded; project to ∅ for the Boolean version.
func CliqueQuery(g *Graph, k int) (*core.CQ, error) {
	if k < 2 {
		return nil, fmt.Errorf("reductions: clique size must be ≥ 2, got %d", k)
	}
	gamma, err := gammaAtom(k)
	if err != nil {
		return nil, err
	}
	atoms := []*core.Atom{gamma}
	for l := 1; l <= k; l++ {
		// δ_l is trivial when l has no yi,l or xl,j companions beyond γ.
		if l == 1 && k < 2 {
			continue
		}
		d, err := deltaAtom(g, k, l)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, d)
	}
	return &core.CQ{Atoms: atoms}, nil
}

// DecodeClique reads the clique nodes off a result tuple: node l is decoded
// from x_{l,l+1} (or y_{k-1,k} for l = k).
func DecodeClique(g *Graph, k int, vars span.VarList, t span.Tuple, s string) ([]int, error) {
	w := codeWidth(g.N)
	decode := func(code string) (int, error) {
		if len(code) != w {
			return 0, fmt.Errorf("reductions: code %q has width %d, want %d", code, len(code), w)
		}
		v := 0
		for i := 0; i < len(code); i++ {
			v <<= 1
			if code[i] == 'b' {
				v |= 1
			}
		}
		return v, nil
	}
	nodes := make([]int, k+1)
	for l := 1; l < k; l++ {
		idx := vars.Index(xName(l, l+1))
		if idx < 0 {
			return nil, fmt.Errorf("reductions: variable %s missing", xName(l, l+1))
		}
		v, err := decode(t[idx].Substr(s))
		if err != nil {
			return nil, err
		}
		nodes[l] = v
	}
	idx := vars.Index(yName(k-1, k))
	if idx < 0 {
		return nil, fmt.Errorf("reductions: variable %s missing", yName(k-1, k))
	}
	v, err := decode(t[idx].Substr(s))
	if err != nil {
		return nil, err
	}
	nodes[k] = v
	return nodes[1:], nil
}

// FindClique looks for a k-clique through the spanner reduction and
// verifies the decoded witness.
func FindClique(g *Graph, k int, opts core.Options) ([]int, bool, error) {
	q, err := CliqueQuery(g, k)
	if err != nil {
		return nil, false, err
	}
	s := CliqueString(g)
	if s == "" {
		return nil, false, nil
	}
	it, err := q.Enumerate(s, opts)
	if err != nil {
		return nil, false, err
	}
	t, ok := it.Next()
	if !ok {
		return nil, false, nil
	}
	nodes, err := DecodeClique(g, k, it.Vars(), t, s)
	if err != nil {
		return nil, false, err
	}
	if !IsClique(g, nodes) {
		return nil, false, fmt.Errorf("reductions: decoded %v is not a clique (reduction bug)", nodes)
	}
	return nodes, true, nil
}

// IsClique verifies that the nodes are distinct and pairwise adjacent.
func IsClique(g *Graph, nodes []int) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[i] == nodes[j] || !g.HasEdge(nodes[i], nodes[j]) {
				return false
			}
		}
	}
	return true
}

// BruteForceClique is the reference solver.
func BruteForceClique(g *Graph, k int) ([]int, bool) {
	nodes := make([]int, 0, k)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(nodes) == k {
			return true
		}
		for v := start; v <= g.N; v++ {
			ok := true
			for _, u := range nodes {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nodes = append(nodes, v)
			if rec(v + 1) {
				return true
			}
			nodes = nodes[:len(nodes)-1]
		}
		return false
	}
	if rec(1) {
		return append([]int(nil), nodes...), true
	}
	return nil, false
}

// AllCliques enumerates every k-clique of g (as sorted node lists) through
// the spanner reduction, deduplicating the decoded witnesses — one
// Theorem 3.2 query evaluation enumerates them all.
func AllCliques(g *Graph, k int, opts core.Options) ([][]int, error) {
	q, err := CliqueQuery(g, k)
	if err != nil {
		return nil, err
	}
	s := CliqueString(g)
	if s == "" {
		return nil, nil
	}
	it, err := q.Enumerate(s, opts)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out [][]int
	for {
		t, ok := it.Next()
		if !ok {
			return out, nil
		}
		nodes, err := DecodeClique(g, k, it.Vars(), t, s)
		if err != nil {
			return nil, err
		}
		sorted := append([]int(nil), nodes...)
		sort.Ints(sorted)
		key := fmt.Sprint(sorted)
		if seen[key] {
			continue
		}
		if !IsClique(g, sorted) {
			return nil, fmt.Errorf("reductions: decoded %v is not a clique", sorted)
		}
		seen[key] = true
		out = append(out, sorted)
	}
}
