// Package reductions implements the paper's lower-bound reductions as
// runnable workloads:
//
//   - 3CNF-satisfiability → Boolean regex-CQ evaluation on the single-char
//     string "a" (Theorem 3.1),
//   - k-clique → gamma-acyclic Boolean regex-CQ evaluation (Theorem 3.2),
//   - k-clique → Boolean regex-CQ with string equalities whose query size
//     depends only on k (Theorem 5.2).
//
// Besides witnessing the hardness results empirically, the reductions make
// entertaining example applications: a SAT solver and a clique finder built
// out of a regex engine.
package reductions

import (
	"fmt"
	"strings"

	"spanjoin/internal/core"
	"spanjoin/internal/span"
)

// Lit is a literal of a CNF formula: a 1-based variable index, negative for
// negated occurrences.
type Lit int

// Clause is a disjunction of three literals.
type Clause [3]Lit

// CNF is a 3CNF formula over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// Validate checks literal ranges.
func (c *CNF) Validate() error {
	for i, cl := range c.Clauses {
		for _, l := range cl {
			v := int(l)
			if v < 0 {
				v = -v
			}
			if v < 1 || v > c.NumVars {
				return fmt.Errorf("reductions: clause %d has out-of-range literal %d", i, l)
			}
		}
	}
	return nil
}

// varName returns the capture-variable name encoding CNF variable i.
func varName(i int) string { return fmt.Sprintf("v%d", i) }

// SATString is the input string of the Theorem 3.1 reduction: the
// single-character string "a".
const SATString = "a"

// SATQuery builds the Boolean regex CQ of Theorem 3.1 for ψ: one regex atom
// γ_i per clause, γ_i = ∨_{τ satisfies C_i} γ_i^τ, where γ_i^τ places each
// clause variable's capture at span [1,1⟩ (τ(x)=0) or [2,2⟩ (τ(x)=1) of "a".
// The projection retains all variables so a satisfying assignment can be
// decoded from any output tuple; project to ∅ for the Boolean version.
func SATQuery(c *CNF) (*core.CQ, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	atoms := make([]*core.Atom, 0, len(c.Clauses))
	for i, cl := range c.Clauses {
		var branches []string
		seen := map[string]bool{}
		for bits := 0; bits < 8; bits++ {
			if !consistentBits(cl, bits) || !clauseSatisfied(cl, bits) {
				continue
			}
			b := assignmentRegex(cl, bits)
			if !seen[b] {
				seen[b] = true
				branches = append(branches, b)
			}
		}
		pattern := "(" + strings.Join(branches, "|") + ")"
		a, err := core.NewAtom(fmt.Sprintf("clause%d", i), pattern)
		if err != nil {
			return nil, fmt.Errorf("clause %d: %w", i, err)
		}
		atoms = append(atoms, a)
	}
	return &core.CQ{Atoms: atoms}, nil
}

// clauseSatisfied evaluates the clause under the assignment where bit b of
// bits gives the value of the clause's b-th variable occurrence.
func clauseSatisfied(cl Clause, bits int) bool {
	for b, l := range cl {
		val := bits>>b&1 == 1
		if l > 0 && val || l < 0 && !val {
			return true
		}
	}
	return false
}

// assignmentRegex encodes one satisfying assignment of a clause as a regex
// formula over "a": variables assigned 0 wrap an empty capture before the
// a, variables assigned 1 after it — giving spans [1,1⟩ and [2,2⟩.
// Duplicate variables inside a clause are bound once (first occurrence
// wins; assignments that disagree on a duplicated variable are filtered by
// the caller via clauseSatisfied over consistent bit patterns only).
func assignmentRegex(cl Clause, bits int) string {
	var before, after []string
	seen := map[int]bool{}
	for b, l := range cl {
		v := int(l)
		if v < 0 {
			v = -v
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		if bits>>b&1 == 1 {
			// Parenthesized so the variable name is not glued onto the
			// preceding literal 'a' by the parser's word-run rule.
			after = append(after, "("+varName(v)+"{})")
		} else {
			before = append(before, varName(v)+"{}")
		}
	}
	return strings.Join(before, "") + "a" + strings.Join(after, "")
}

// consistentBits reports whether bits assigns duplicated clause variables
// consistently.
func consistentBits(cl Clause, bits int) bool {
	val := map[int]bool{}
	for b, l := range cl {
		v := int(l)
		if v < 0 {
			v = -v
		}
		x := bits>>b&1 == 1
		if prev, ok := val[v]; ok && prev != x {
			return false
		}
		val[v] = x
	}
	return true
}

// DecodeAssignment reads a satisfying assignment from a tuple of the SAT
// query: span [1,1⟩ ⇒ false, [2,2⟩ ⇒ true. Variables not mentioned in any
// clause default to false.
func DecodeAssignment(c *CNF, vars span.VarList, t span.Tuple) []bool {
	out := make([]bool, c.NumVars+1)
	for i := 1; i <= c.NumVars; i++ {
		if k := vars.Index(varName(i)); k >= 0 {
			out[i] = t[k].Start == 2
		}
	}
	return out
}

// Satisfiable solves ψ through the spanner reduction: it evaluates the CQ
// on "a" and decodes the first tuple. The assignment is verified before
// returning.
func Satisfiable(c *CNF, opts core.Options) (assignment []bool, ok bool, err error) {
	q, err := SATQuery(c)
	if err != nil {
		return nil, false, err
	}
	it, err := q.Enumerate(SATString, opts)
	if err != nil {
		return nil, false, err
	}
	t, ok := it.Next()
	if !ok {
		return nil, false, nil
	}
	asg := DecodeAssignment(c, it.Vars(), t)
	if !Evaluate(c, asg) {
		return nil, false, fmt.Errorf("reductions: decoded assignment does not satisfy ψ (reduction bug)")
	}
	return asg, true, nil
}

// Evaluate checks an assignment against the formula (assignment[i] is the
// value of variable i; index 0 unused).
func Evaluate(c *CNF, assignment []bool) bool {
	for _, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			v := int(l)
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if assignment[v] != neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// BruteForceSAT is the reference solver for tests and benchmarks.
func BruteForceSAT(c *CNF) ([]bool, bool) {
	n := c.NumVars
	asg := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 1; i <= n; i++ {
			asg[i] = mask>>(i-1)&1 == 1
		}
		if Evaluate(c, asg) {
			return append([]bool(nil), asg...), true
		}
	}
	return nil, false
}
