package reductions

import (
	"fmt"
	"strings"

	"spanjoin/internal/core"
)

// CliqueEqQuery builds the Boolean regex CQ *with string equalities* of
// Theorem 5.2: the γ atom of Theorem 3.2 plus, for each 1 ≤ l ≤ k, a
// sequence S_l of binary string-equality selections chaining all of
// y_{1,l}, …, y_{l-1,l}, x_{l,l+1}, …, x_{l,k} to the same substring.
//
// Unlike Theorem 3.2's δ_l atoms, the query size depends only on k, not on
// the graph — which is exactly why the reduction shows W[1]-hardness in the
// parameter |q|.
func CliqueEqQuery(g *Graph, k int) (*core.CQ, error) {
	if k < 2 {
		return nil, fmt.Errorf("reductions: clique size must be ≥ 2, got %d", k)
	}
	gamma, err := gammaAtom(k)
	if err != nil {
		return nil, err
	}
	var eqs [][2]string
	for l := 1; l <= k; l++ {
		group := groupVars(k, l)
		for i := 0; i+1 < len(group); i++ {
			eqs = append(eqs, [2]string{group[i], group[i+1]})
		}
	}
	return &core.CQ{Atoms: []*core.Atom{gamma}, Equalities: eqs}, nil
}

// groupVars lists the variables that must all denote node l's code:
// y_{i,l} for i < l and x_{l,j} for j > l.
func groupVars(k, l int) []string {
	var out []string
	for i := 1; i < l; i++ {
		out = append(out, yName(i, l))
	}
	for j := l + 1; j <= k; j++ {
		out = append(out, xName(l, j))
	}
	return out
}

// FindCliqueEq solves k-clique through the Theorem 5.2 reduction and
// verifies the witness.
func FindCliqueEq(g *Graph, k int, opts core.Options) ([]int, bool, error) {
	q, err := CliqueEqQuery(g, k)
	if err != nil {
		return nil, false, err
	}
	s := CliqueString(g)
	if s == "" {
		return nil, false, nil
	}
	it, err := q.Enumerate(s, opts)
	if err != nil {
		return nil, false, err
	}
	t, ok := it.Next()
	if !ok {
		return nil, false, nil
	}
	nodes, err := DecodeClique(g, k, it.Vars(), t, s)
	if err != nil {
		return nil, false, err
	}
	if !IsClique(g, nodes) {
		return nil, false, fmt.Errorf("reductions: decoded %v is not a clique (reduction bug)", nodes)
	}
	return nodes, true, nil
}

// QuerySize reports |q| ingredients for the W[1] discussion: number of
// atoms, equalities and variables — for CliqueEqQuery these depend only on
// k (Theorem 5.2), while CliqueQuery's δ atoms grow with the graph.
func QuerySize(q *core.CQ) (atoms, equalities, vars, patternBytes int) {
	atoms = len(q.Atoms)
	equalities = len(q.Equalities)
	vars = len(q.AllVars())
	for _, a := range q.Atoms {
		if a.Formula != nil {
			patternBytes += len(a.Formula.Pattern)
		}
	}
	return
}

// FormatAssignment renders a satisfying assignment for display.
func FormatAssignment(asg []bool) string {
	var sb strings.Builder
	for i := 1; i < len(asg); i++ {
		if i > 1 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "x%d=%v", i, boolToInt(asg[i]))
	}
	return sb.String()
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
