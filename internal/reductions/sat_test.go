package reductions_test

import (
	"math/rand"
	"testing"

	"spanjoin/internal/core"
	"spanjoin/internal/reductions"
	"spanjoin/internal/workload"
)

func TestSATFixedFormulas(t *testing.T) {
	cases := []struct {
		name string
		cnf  *reductions.CNF
		sat  bool
	}{
		{
			"trivially satisfiable",
			&reductions.CNF{NumVars: 3, Clauses: []reductions.Clause{{1, 2, 3}}},
			true,
		},
		{
			"forced assignment",
			&reductions.CNF{NumVars: 1, Clauses: []reductions.Clause{{1, 1, 1}}},
			true,
		},
		{
			"contradiction",
			&reductions.CNF{NumVars: 1, Clauses: []reductions.Clause{{1, 1, 1}, {-1, -1, -1}}},
			false,
		},
		{
			"2-out-of-3 chain",
			&reductions.CNF{NumVars: 3, Clauses: []reductions.Clause{
				{1, 2, 3}, {-1, 2, 3}, {1, -2, 3}, {1, 2, -3}, {-1, -2, -3},
			}},
			true,
		},
	}
	for _, tc := range cases {
		asg, ok, err := reductions.Satisfiable(tc.cnf, core.Options{Strategy: core.Automata})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ok != tc.sat {
			t.Errorf("%s: sat = %v, want %v", tc.name, ok, tc.sat)
		}
		if ok && !reductions.Evaluate(tc.cnf, asg) {
			t.Errorf("%s: returned assignment does not satisfy", tc.name)
		}
	}
}

func TestSATAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(4) + 3
		m := r.Intn(10) + 1
		cnf := workload.RandomCNF(r, n, m)
		_, want := reductions.BruteForceSAT(cnf)
		for _, strat := range []core.Strategy{core.Canonical, core.Automata} {
			asg, got, err := reductions.Satisfiable(cnf, core.Options{Strategy: strat})
			if err != nil {
				t.Fatalf("trial %d (%v): %v", trial, strat, err)
			}
			if got != want {
				t.Fatalf("trial %d (%v): sat=%v, brute force says %v (cnf %+v)",
					trial, strat, got, want, cnf)
			}
			if got && !reductions.Evaluate(cnf, asg) {
				t.Fatalf("trial %d (%v): bad witness", trial, strat)
			}
		}
	}
}

// TestSATSingleCharString verifies the striking part of Theorem 3.1: the
// input string of the reduction really is the single character "a".
func TestSATSingleCharString(t *testing.T) {
	if reductions.SATString != "a" {
		t.Fatalf("reduction string is %q", reductions.SATString)
	}
	cnf := workload.RandomCNF(rand.New(rand.NewSource(1)), 4, 6)
	q, err := reductions.SATQuery(cnf)
	if err != nil {
		t.Fatal(err)
	}
	// Every atom is of bounded size: 7 branches of ≤ 3 empty captures plus
	// one character (assumption 1 of Thm 3.1).
	for _, a := range q.Atoms {
		if a.Formula.Size() > 60 {
			t.Errorf("atom %s has size %d, want bounded", a.Name, a.Formula.Size())
		}
	}
}

func TestSATQueryRejectsBadCNF(t *testing.T) {
	bad := &reductions.CNF{NumVars: 2, Clauses: []reductions.Clause{{1, 2, 5}}}
	if _, err := reductions.SATQuery(bad); err == nil {
		t.Error("out-of-range literal must be rejected")
	}
}

func TestDuplicateLiteralClauses(t *testing.T) {
	// Clauses with duplicated variables must not break functionality.
	cnf := &reductions.CNF{NumVars: 2, Clauses: []reductions.Clause{
		{1, 1, 2}, {-1, -1, -2}, {1, -1, 2},
	}}
	_, bfOK := reductions.BruteForceSAT(cnf)
	_, ok, err := reductions.Satisfiable(cnf, core.Options{Strategy: core.Automata})
	if err != nil {
		t.Fatal(err)
	}
	if ok != bfOK {
		t.Errorf("sat=%v, brute force %v", ok, bfOK)
	}
}

func TestEvaluateAndBruteForce(t *testing.T) {
	cnf := &reductions.CNF{NumVars: 2, Clauses: []reductions.Clause{{1, -2, -2}}}
	if !reductions.Evaluate(cnf, []bool{false, true, false}) {
		t.Error("x1=1,x2=0 should satisfy")
	}
	if reductions.Evaluate(cnf, []bool{false, false, true}) {
		t.Error("x1=0,x2=1 should falsify")
	}
	asg, ok := reductions.BruteForceSAT(cnf)
	if !ok || !reductions.Evaluate(cnf, asg) {
		t.Error("brute force broken")
	}
}
