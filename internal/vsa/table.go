package vsa

import (
	"sync/atomic"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/bitset"
)

// tableBuilds counts TransitionTable constructions process-wide. The corpus
// compiled-query cache is supposed to build the table exactly once per
// cached query; tests assert that through this counter instead of relying
// on code inspection.
var tableBuilds atomic.Uint64

// TableBuildCount reports how many transition tables this process has built.
func TableBuildCount() uint64 { return tableBuilds.Load() }

// TransitionTable is the byte-class compiled transition representation of a
// trimmed functional automaton, in the style of RE2-like byte-class
// compression: the 256 byte values are partitioned into equivalence classes
// (two bytes are equivalent iff every CharClass on every transition treats
// them identically), and each class c carries a boundary-to-boundary bitset
// matrix M_c whose row p is the union of VE-closure rows VE(to) over all
// character transitions p --σ--> to with σ ∈ c — δ pre-composed with the
// variable-ε closure. Advancing a frontier of boundary states over one
// document byte is then a single row×matrix multiply (bitset.Matrix.MulOr),
// and the successor set of an individual state is a precomputed matrix row.
//
// The table depends only on the compiled automaton, never on a document, so
// it is built once per compiled query and shared by every enumerator,
// clone and corpus worker. Memory is NumClasses live matrices of n² bits
// each — the same order as the closure matrices the automaton already
// carries; the class of bytes no transition accepts shares a nil matrix.
type TransitionTable struct {
	classOf    [256]uint8
	numClasses int
	repr       []byte
	// mats[c] is M_c; nil for the dead class (no transition accepts its
	// bytes — a document containing one cannot match at all).
	mats []*bitset.Matrix
}

// NewTransitionTable compiles the table for a trimmed automaton and its
// closures (the artifacts RequireFunctional / NewClosures produce). Cost is
// O(256·|distinct classes|) for the byte partition plus O(C·m·n/w) word
// operations to fill the matrices.
func NewTransitionTable(a *VSA, cl *Closures) *TransitionTable {
	tableBuilds.Add(1)
	tt := &TransitionTable{}

	// Distinct character-transition classes, in first-seen order.
	var distinct []alphabet.Class
	seen := make(map[alphabet.Class]struct{})
	for _, ts := range a.Adj {
		for _, tr := range ts {
			if tr.Kind != KChar {
				continue
			}
			if _, ok := seen[tr.Class]; !ok {
				seen[tr.Class] = struct{}{}
				distinct = append(distinct, tr.Class)
			}
		}
	}

	// Partition bytes by membership signature over the distinct classes:
	// equal signatures ⇔ no transition label can tell the bytes apart.
	sig := make([]byte, (len(distinct)+7)/8)
	ids := make(map[string]uint8)
	for b := 0; b < 256; b++ {
		for i := range sig {
			sig[i] = 0
		}
		for i, c := range distinct {
			if c.Contains(byte(b)) {
				sig[i>>3] |= 1 << (i & 7)
			}
		}
		id, ok := ids[string(sig)]
		if !ok {
			id = uint8(len(tt.repr))
			ids[string(sig)] = id
			tt.repr = append(tt.repr, byte(b))
		}
		tt.classOf[b] = id
	}
	tt.numClasses = len(tt.repr)

	// Fill M_c row by row: δ restricted to the class, pre-composed with the
	// variable-ε closure. A class whose representative matches no transition
	// anywhere keeps a nil matrix (the dead class).
	n := a.NumStates()
	tt.mats = make([]*bitset.Matrix, tt.numClasses)
	for c := range tt.mats {
		rep := tt.repr[c]
		live := false
		for _, ts := range a.Adj {
			for _, tr := range ts {
				if tr.Kind == KChar && tr.Class.Contains(rep) {
					live = true
					break
				}
			}
			if live {
				break
			}
		}
		if !live {
			continue
		}
		m := bitset.NewMatrix(n, n)
		for q := 0; q < n; q++ {
			row := m.Row(q)
			for _, tr := range a.Adj[q] {
				if tr.Kind == KChar && tr.Class.Contains(rep) {
					row.Or(cl.VEB.Row(int(tr.To)))
				}
			}
		}
		tt.mats[c] = m
	}
	return tt
}

// NumClasses reports the number of byte equivalence classes (including the
// dead class, when some byte matches no transition).
func (tt *TransitionTable) NumClasses() int { return tt.numClasses }

// ClassOf returns the equivalence class id of a byte.
func (tt *TransitionTable) ClassOf(b byte) int { return int(tt.classOf[b]) }

// Repr returns a representative byte of class c.
func (tt *TransitionTable) Repr(c int) byte { return tt.repr[c] }

// Mat returns the transition matrix for b's byte class, or nil when no
// transition in the automaton accepts b — no run can consume the byte, so
// any document containing it has an empty result.
func (tt *TransitionTable) Mat(b byte) *bitset.Matrix {
	return tt.mats[tt.classOf[b]]
}

// ClassMat returns the matrix of class c directly (nil for the dead class).
func (tt *TransitionTable) ClassMat(c int) *bitset.Matrix { return tt.mats[c] }
