package vsa

import (
	"fmt"
	"strings"
)

// Dot renders the automaton in Graphviz dot format for debugging and for
// the spanctl CLI's dot subcommand.
func (a *VSA) Dot(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name)
	fmt.Fprintf(&sb, "  start [shape=point];\n  start -> q%d;\n", a.Init)
	fmt.Fprintf(&sb, "  q%d [shape=doublecircle];\n", a.Final)
	for p, ts := range a.Adj {
		for _, t := range ts {
			var label string
			switch t.Kind {
			case KEps:
				label = "ε"
			case KChar:
				label = t.Class.String()
			case KOpen:
				label = a.Vars[t.Var] + "⊢"
			case KClose:
				label = "⊣" + a.Vars[t.Var]
			}
			fmt.Fprintf(&sb, "  q%d -> q%d [label=%q];\n", p, t.To, label)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
