package vsa_test

import (
	"testing"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// TestJoinBooleanSides: joining with 0-variable (Boolean) spanners acts as
// a filter — TRUE keeps everything, FALSE empties.
func TestJoinBooleanSides(t *testing.T) {
	x := rgx.MustCompilePattern(".*x{a}.*")
	hasB := rgx.MustCompilePattern(".*b.*")
	j, err := vsa.Join(x, hasB)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Vars.Equal(span.NewVarList("x")) {
		t.Fatalf("join vars %v", j.Vars)
	}
	// On "ab": hasB true, so all x-matches survive.
	if got := evalVSA(t, j, "ab"); len(got) != 1 {
		t.Errorf("on ab: %d tuples, want 1", len(got))
	}
	// On "aa": hasB false, everything filtered.
	if got := evalVSA(t, j, "aa"); len(got) != 0 {
		t.Errorf("on aa: %d tuples, want 0", len(got))
	}
}

// TestJoinSelfIsIdentity: A ⋈ A = A (idempotence on identical inputs).
func TestJoinSelfIsIdentity(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a+}y{b?}.*")
	j, err := vsa.Join(a, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"", "a", "ab", "aab"} {
		want := evalVSA(t, a, s)
		got := evalVSA(t, j, s)
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("A⋈A ≠ A on %q: %d vs %d", s, len(got), len(want))
		}
	}
}

// TestInitialEqualsFinal: an automaton whose initial state is also final
// (accepts ε plus more).
func TestInitialEqualsFinal(t *testing.T) {
	a := &vsa.VSA{Vars: nil, Adj: make([][]vsa.Tr, 1), Init: 0, Final: 0}
	a.AddChar(0, alphabet.Single('a'), 0)
	if !a.IsFunctional() {
		t.Fatal("should be functional")
	}
	for s, want := range map[string]int{"": 1, "a": 1, "aa": 1, "b": 0} {
		_, tuples, err := enum.Eval(a, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) != want {
			t.Errorf("on %q: %d tuples, want %d", s, len(tuples), want)
		}
	}
}

// TestVariableOpsAtEveryBoundary: a variable opened at the very start and
// closed at the very end, with ops stacked at one boundary.
func TestVariableOpsAtEveryBoundary(t *testing.T) {
	// x over the whole string, y empty exactly in the middle of "ab".
	a := rgx.MustCompilePattern("x{a(y{})b}") // parens keep 'a' a literal (word-run rule)
	_, tuples, err := enum.Eval(a, "ab")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("got %d tuples", len(tuples))
	}
	vars := a.Vars
	tu := tuples[0]
	if tu[vars.Index("x")] != (span.Span{Start: 1, End: 3}) {
		t.Errorf("x = %v", tu[vars.Index("x")])
	}
	if tu[vars.Index("y")] != (span.Span{Start: 2, End: 2}) {
		t.Errorf("y = %v", tu[vars.Index("y")])
	}
}

// TestProjectToNothingThenJoin: Boolean projections compose with joins.
func TestProjectToNothingThenJoin(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{ab}.*")
	boolA, err := vsa.Project(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(boolA.Vars) != 0 {
		t.Fatalf("projection to ∅ kept vars %v", boolA.Vars)
	}
	other := rgx.MustCompilePattern(".*y{b}.*")
	j, err := vsa.Join(boolA, other)
	if err != nil {
		t.Fatal(err)
	}
	// On "ab": boolean true, y matches at [2,3⟩.
	got := evalVSA(t, j, "ab")
	if len(got) != 1 {
		t.Errorf("got %d tuples, want 1", len(got))
	}
	// On "bb": boolean false.
	if got := evalVSA(t, j, "bb"); len(got) != 0 {
		t.Errorf("got %d tuples, want 0", len(got))
	}
}

// TestUnionOrderInsensitive: union results don't depend on argument order.
func TestUnionOrderInsensitive(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a.}.*")
	b := rgx.MustCompilePattern(".*x{.b}.*")
	c := rgx.MustCompilePattern("x{.*}")
	u1, err := vsa.Union(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := vsa.Union(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"", "ab", "ba", "abb"} {
		if !oracle.EqualTupleSets(evalVSA(t, u1, s), evalVSA(t, u2, s)) {
			t.Errorf("union order-sensitive on %q", s)
		}
	}
}

// TestWideByteClassesThroughJoin: classes spanning word boundaries of the
// 256-bit bitmap survive intersection in the join.
func TestWideByteClassesThroughJoin(t *testing.T) {
	// [\x30-\x7f] ∩ [\x00-\x4f] = [\x30-\x4f]; '@' = 0x40 is inside.
	a1 := vsa.New(span.NewVarList("x"))
	m1 := a1.AddState()
	a1.AddOpen(a1.Init, 0, m1)
	mid1 := a1.AddState()
	a1.AddChar(m1, alphabet.Range(0x30, 0x7f), mid1)
	a1.AddClose(mid1, 0, a1.Final)

	a2 := vsa.New(span.NewVarList("x"))
	m2 := a2.AddState()
	a2.AddOpen(a2.Init, 0, m2)
	mid2 := a2.AddState()
	a2.AddChar(m2, alphabet.Range(0x00, 0x4f), mid2)
	a2.AddClose(mid2, 0, a2.Final)

	j, err := vsa.Join(a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	if got := evalVSA(t, j, "@"); len(got) != 1 {
		t.Errorf("0x40 should match the intersected class, got %d", len(got))
	}
	if got := evalVSA(t, j, "p"); len(got) != 0 { // 0x70 outside intersection
		t.Errorf("0x70 should not match, got %d", len(got))
	}
}
