package vsa

import (
	"errors"
	"fmt"
)

// VarState is the per-variable state in a variable configuration (paper
// §4.1): waiting (not yet opened), open, or closed. The numeric values fix
// the total order w < o < c used by the enumeration algorithm's radix order.
type VarState byte

const (
	// W means the variable has not been opened yet.
	W VarState = 0
	// O means the variable is open but not closed.
	O VarState = 1
	// C means the variable has been opened and closed.
	C VarState = 2
)

func (v VarState) String() string {
	switch v {
	case W:
		return "w"
	case O:
		return "o"
	case C:
		return "c"
	}
	return fmt.Sprintf("VarState(%d)", byte(v))
}

// Config is a variable configuration ~c : V → {w, o, c}, aligned with the
// automaton's sorted variable list.
type Config []VarState

// Clone copies the configuration.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Equal reports pointwise equality.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Compare orders configurations lexicographically with w < o < c.
func (c Config) Compare(o Config) int {
	for i := range c {
		if c[i] != o[i] {
			if c[i] < o[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Key returns a compact map key for the configuration.
func (c Config) Key() string { return string(configBytes(c)) }

func configBytes(c Config) []byte {
	b := make([]byte, len(c))
	for i, v := range c {
		b[i] = byte(v)
	}
	return b
}

// String renders e.g. "(w,o,c)".
func (c Config) String() string {
	out := "("
	for i, v := range c {
		if i > 0 {
			out += ","
		}
		out += v.String()
	}
	return out + ")"
}

// AllClosed reports whether every variable is closed.
func (c Config) AllClosed() bool {
	for _, v := range c {
		if v != C {
			return false
		}
	}
	return true
}

// AllWaiting reports whether every variable is waiting.
func (c Config) AllWaiting() bool {
	for _, v := range c {
		if v != W {
			return false
		}
	}
	return true
}

// ErrNotFunctional is returned by operations that require a functional
// vset-automaton when the input is not functional.
var ErrNotFunctional = errors.New("vsa: automaton is not functional")

// ConfigTable assigns each useful state its variable configuration. It is
// the witness of functionality: a trimmed vset-automaton admits a consistent
// table iff it is functional (paper Thm 2.7 / §4.1).
type ConfigTable struct {
	// Cfg[q] is the variable configuration of state q.
	Cfg []Config
}

// ConfigTableOf computes the variable configuration of every state of a
// *trimmed* automaton by breadth-first search in O(v·m + n) and verifies
// functionality along the way:
//
//   - an x⊢ transition requires the source configuration to have x = w,
//   - a ⊣x transition requires x = o,
//   - every state reached along two paths must get the same configuration,
//   - the final state's configuration must be all-closed.
//
// Any violation yields ErrNotFunctional (wrapped with a description).
func (a *VSA) ConfigTableOf() (*ConfigTable, error) {
	n := len(a.Adj)
	cfg := make([]Config, n)
	if n == 0 {
		return &ConfigTable{Cfg: cfg}, nil
	}
	init := make(Config, len(a.Vars)) // all W
	cfg[a.Init] = init
	queue := []int32{a.Init}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, t := range a.Adj[p] {
			next, err := applyOp(cfg[p], t)
			if err != nil {
				return nil, err
			}
			if cfg[t.To] == nil {
				cfg[t.To] = next
				queue = append(queue, t.To)
			} else if !cfg[t.To].Equal(next) {
				return nil, fmt.Errorf("%w: state %d is reachable with configurations %v and %v",
					ErrNotFunctional, t.To, cfg[t.To], next)
			}
		}
	}
	if cfg[a.Final] == nil {
		// Final unreachable: the language is empty; treat as functional with
		// a vacuous table (callers should trim first, which removes this).
		cfg[a.Final] = make(Config, len(a.Vars))
		for i := range cfg[a.Final] {
			cfg[a.Final][i] = C
		}
	}
	if !cfg[a.Final].AllClosed() {
		return nil, fmt.Errorf("%w: final state has configuration %v (some variable never operated)",
			ErrNotFunctional, cfg[a.Final])
	}
	return &ConfigTable{Cfg: cfg}, nil
}

func applyOp(c Config, t Tr) (Config, error) {
	switch t.Kind {
	case KEps, KChar:
		return c, nil
	case KOpen:
		if c[t.Var] != W {
			return nil, fmt.Errorf("%w: variable %d opened while %v", ErrNotFunctional, t.Var, c[t.Var])
		}
		n := c.Clone()
		n[t.Var] = O
		return n, nil
	case KClose:
		if c[t.Var] != O {
			return nil, fmt.Errorf("%w: variable %d closed while %v", ErrNotFunctional, t.Var, c[t.Var])
		}
		n := c.Clone()
		n[t.Var] = C
		return n, nil
	}
	return nil, fmt.Errorf("vsa: unknown transition kind %v", t.Kind)
}

// IsFunctional reports whether the automaton is functional: every accepting
// run generates a valid ref-word (Thm 2.7). The automaton is trimmed first,
// since states off all accepting paths cannot affect R(A).
func (a *VSA) IsFunctional() bool {
	_, err := a.Trim().ConfigTableOf()
	return err == nil
}

// RequireFunctional trims the automaton and returns the trimmed copy with
// its configuration table, or ErrNotFunctional.
func (a *VSA) RequireFunctional() (*VSA, *ConfigTable, error) {
	t := a.Trim()
	ct, err := t.ConfigTableOf()
	if err != nil {
		return nil, nil, err
	}
	return t, ct, nil
}
