package vsa

import "spanjoin/internal/bitset"

// KeyAttribute decides whether the variable x is a key attribute of the
// functional vset-automaton A (Prop 3.6): x is a key iff for every string s
// and tuples µ, µ′ ∈ [[A]](s), µ(x) = µ′(x) implies µ = µ′.
//
// The decision procedure is the paper's product construction: simulate two
// copies of A on a common string, requiring the two runs' variable
// configurations to agree on x at every character boundary, and track with
// a flag whether they have disagreed on some other variable. x fails to be
// a key iff a flagged pair of final states is reachable. Runs in O(n⁴).
func KeyAttribute(a *VSA, x string) (bool, error) {
	t, ct, err := a.RequireFunctional()
	if err != nil {
		return false, err
	}
	xi := t.Vars.Index(x)
	if xi < 0 {
		return false, errUnknownVar(x)
	}
	if t.NumStates() == 2 && t.NumTransitions() == 0 && t.Init != t.Final {
		return true, nil // empty language: vacuously a key
	}
	cl := t.NewClosures()
	ns := t.NumStates()

	// xMask[v] = states whose configuration assigns value v to x, so "all
	// partners of e1 agreeing on x" is one AND with the VE closure row.
	var xMask [3]bitset.Row
	for v := range xMask {
		xMask[v] = bitset.NewRow(ns)
	}
	for q := 0; q < ns; q++ {
		xMask[ct.Cfg[q][xi]].Set(int32(q))
	}
	partners := bitset.NewRow(ns)

	// Tuples are determined by the configuration sequence at the boundary
	// states q̂_0 … q̂_N (§4.1): q̂_0 ∈ VE(q0), q̂_{i+1} ∈ VE(δ(q̂_i, σ)),
	// and q̂_N = qf. The product walks pairs of boundary states.
	type pkey struct {
		flag   bool
		q1, q2 int32
	}
	seen := make(map[pkey]bool)
	var queue []pkey
	push := func(k pkey) {
		if !seen[k] {
			seen[k] = true
			queue = append(queue, k)
		}
	}
	// pushPairs enqueues all consistent pairs (e1, e2) with e1 ∈ VE(to1),
	// e2 ∈ VE(to2) agreeing on x, carrying the disagreement flag.
	pushPairs := func(to1, to2 int32, flag bool) {
		for _, e1 := range cl.VE[to1] {
			partners.CopyFrom(cl.VEB.Row(int(to2)))
			partners.And(xMask[ct.Cfg[e1][xi]])
			for e2 := partners.NextOne(0); e2 >= 0; e2 = partners.NextOne(e2 + 1) {
				push(pkey{
					flag: flag || !ct.Cfg[e1].Equal(ct.Cfg[e2]),
					q1:   e1, q2: e2,
				})
			}
		}
	}
	// Initial boundary states.
	pushPairs(t.Init, t.Init, false)
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		if k.flag && k.q1 == t.Final && k.q2 == t.Final {
			return false, nil
		}
		for _, tr1 := range t.Adj[k.q1] {
			if tr1.Kind != KChar {
				continue
			}
			for _, tr2 := range t.Adj[k.q2] {
				if tr2.Kind != KChar {
					continue
				}
				if tr1.Class.Intersect(tr2.Class).IsEmpty() {
					continue
				}
				pushPairs(tr1.To, tr2.To, k.flag)
			}
		}
	}
	return true, nil
}

// HasKeyAttribute reports whether any variable of A is a key attribute —
// the paper's second example of a polynomially bounded class (§3.3.2).
func HasKeyAttribute(a *VSA) (string, bool, error) {
	for _, x := range a.Vars {
		ok, err := KeyAttribute(a, x)
		if err != nil {
			return "", false, err
		}
		if ok {
			return x, true, nil
		}
	}
	return "", false, nil
}

type errUnknownVar string

func (e errUnknownVar) Error() string { return "vsa: unknown variable " + string(e) }
