// Package vsa implements variable-set automata (vset-automata, paper
// §2.2.3): ε-NFAs over Σ extended with transitions labelled by variable
// operations x⊢ (open) and ⊣x (close).
//
// A vset-automaton A over variables V accepts ref-words over Σ ∪ Γ_V; the
// spanner [[A]] maps a string s to the set of (V,s)-tuples µ_r of the valid
// accepted ref-words r with clr(r) = s. The package provides:
//
//   - the automaton model with byte-class character transitions,
//   - variable configurations and the functionality test (Thm 2.7),
//   - trimming and ε/variable closures,
//   - the spanner algebra: projection (Lemma 3.8), union (Lemma 3.9),
//     natural join (Lemma 3.10),
//   - functionalization of arbitrary vset-automata (state × configuration
//     product, exponential in |V| as per Freydenberger [15]),
//   - the key-attribute test (Prop 3.6).
//
// Enumeration of [[A]](s) lives in package enum.
package vsa

import (
	"fmt"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/bitset"
	"spanjoin/internal/span"
)

// Kind distinguishes the transition labels of a vset-automaton.
type Kind uint8

const (
	// KEps is an ε-transition.
	KEps Kind = iota
	// KChar is a terminal transition labelled with a byte class ⊆ Σ.
	KChar
	// KOpen is a variable transition labelled x⊢.
	KOpen
	// KClose is a variable transition labelled ⊣x.
	KClose
)

func (k Kind) String() string {
	switch k {
	case KEps:
		return "ε"
	case KChar:
		return "char"
	case KOpen:
		return "open"
	case KClose:
		return "close"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Tr is a single transition. For KChar, Class is the label; for KOpen and
// KClose, Var indexes into the automaton's variable list.
type Tr struct {
	Kind  Kind
	Var   int32
	Class alphabet.Class
	To    int32
}

// VSA is a vset-automaton A = (V, Q, q0, qf, δ) with a single initial and a
// single final state. States are dense integers 0..NumStates()-1; Adj[q]
// lists the outgoing transitions of q.
type VSA struct {
	// Vars is the sorted variable list V; transition Var fields index it.
	Vars span.VarList
	// Adj is the adjacency list: Adj[q] are the transitions leaving q.
	Adj [][]Tr
	// Init and Final are q0 and qf.
	Init, Final int32
}

// New returns an automaton over the given variables with two states:
// state 0 (initial) and state 1 (final), and no transitions. Its language
// is empty until transitions are added.
func New(vars span.VarList) *VSA {
	return &VSA{Vars: vars, Adj: make([][]Tr, 2), Init: 0, Final: 1}
}

// AddState appends a fresh state and returns its id.
func (a *VSA) AddState() int32 {
	a.Adj = append(a.Adj, nil)
	return int32(len(a.Adj) - 1)
}

// NumStates returns |Q|.
func (a *VSA) NumStates() int { return len(a.Adj) }

// NumTransitions returns the total transition count m.
func (a *VSA) NumTransitions() int {
	m := 0
	for _, ts := range a.Adj {
		m += len(ts)
	}
	return m
}

// AddEps adds an ε-transition p → q.
func (a *VSA) AddEps(p, q int32) {
	a.Adj[p] = append(a.Adj[p], Tr{Kind: KEps, To: q})
}

// AddChar adds a terminal transition p → q labelled with the byte class c.
func (a *VSA) AddChar(p int32, c alphabet.Class, q int32) {
	a.Adj[p] = append(a.Adj[p], Tr{Kind: KChar, Class: c, To: q})
}

// AddOpen adds a variable transition p → q labelled x⊢ for the variable
// with index v in a.Vars.
func (a *VSA) AddOpen(p, v, q int32) {
	a.Adj[p] = append(a.Adj[p], Tr{Kind: KOpen, Var: v, To: q})
}

// AddClose adds a variable transition p → q labelled ⊣x.
func (a *VSA) AddClose(p, v, q int32) {
	a.Adj[p] = append(a.Adj[p], Tr{Kind: KClose, Var: v, To: q})
}

// VarIndex returns the index of the named variable, or -1.
func (a *VSA) VarIndex(name string) int32 { return int32(a.Vars.Index(name)) }

// Clone returns a deep copy of the automaton.
func (a *VSA) Clone() *VSA {
	adj := make([][]Tr, len(a.Adj))
	for i, ts := range a.Adj {
		adj[i] = append([]Tr(nil), ts...)
	}
	return &VSA{Vars: append(span.VarList(nil), a.Vars...), Adj: adj, Init: a.Init, Final: a.Final}
}

// Trim returns an equivalent automaton containing only useful states: those
// reachable from Init and co-reachable from Final. If no accepting path
// exists, the result is an empty-language automaton over the same variables.
// Trimming never changes [[A]].
func (a *VSA) Trim() *VSA {
	n := len(a.Adj)
	fwd := make([]bool, n)
	stack := []int32{a.Init}
	fwd[a.Init] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.Adj[q] {
			if !fwd[t.To] {
				fwd[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	// Reverse adjacency for co-reachability.
	radj := make([][]int32, n)
	for p, ts := range a.Adj {
		for _, t := range ts {
			radj[t.To] = append(radj[t.To], int32(p))
		}
	}
	bwd := make([]bool, n)
	stack = append(stack, a.Final)
	bwd[a.Final] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range radj[q] {
			if !bwd[p] {
				bwd[p] = true
				stack = append(stack, p)
			}
		}
	}
	if !fwd[a.Final] || !bwd[a.Init] {
		return New(a.Vars)
	}
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	out := &VSA{Vars: a.Vars}
	for q := 0; q < n; q++ {
		if fwd[q] && bwd[q] {
			remap[q] = out.AddState()
		}
	}
	// Rebuild adjacency with remapped ids.
	for q := 0; q < n; q++ {
		if remap[q] < 0 {
			continue
		}
		for _, t := range a.Adj[q] {
			if remap[t.To] < 0 {
				continue
			}
			nt := t
			nt.To = remap[t.To]
			out.Adj[remap[q]] = append(out.Adj[remap[q]], nt)
		}
	}
	out.Init = remap[a.Init]
	out.Final = remap[a.Final]
	return out
}

// IsEmptyLanguage reports whether the automaton trivially has no accepting
// path (checked by reachability; sound and complete for R(A) = ∅).
func (a *VSA) IsEmptyLanguage() bool {
	t := a.Trim()
	return t.NumStates() == 2 && t.NumTransitions() == 0 && !(a.Init == a.Final)
}

// Closures holds the memoized ε-closure E and variable-ε-closure VE of every
// state (paper, proofs of Thm 3.3 and Lemma 3.10):
//
//	E(q)  = states reachable from q using only ε-transitions,
//	VE(q) = states reachable using only ε- and variable transitions.
//
// Both include q itself. The primary representation is a pair of n×n bitset
// matrices (row q = closure of q), so closure unions and intersections in
// the hot paths are word operations; Eps and VE are slice views of the same
// rows, in ascending state order, for code whose iteration order matters.
type Closures struct {
	Eps [][]int32
	VE  [][]int32
	// EpsB and VEB are the bitset rows backing Eps and VE.
	EpsB *bitset.Matrix
	VEB  *bitset.Matrix
}

// NewClosures computes both closures for every state in O(n(n+m)/w) word
// operations: per state, a frontier BFS that unions whole adjacency rows.
func (a *VSA) NewClosures() *Closures {
	n := len(a.Adj)
	c := &Closures{
		Eps:  make([][]int32, n),
		VE:   make([][]int32, n),
		EpsB: bitset.NewMatrix(n, n),
		VEB:  bitset.NewMatrix(n, n),
	}
	// Direct-successor rows (reflexive) for each closure kind.
	epsAdj := bitset.NewMatrix(n, n)
	veAdj := bitset.NewMatrix(n, n)
	for q := 0; q < n; q++ {
		er, vr := epsAdj.Row(q), veAdj.Row(q)
		er.Set(int32(q))
		vr.Set(int32(q))
		for _, t := range a.Adj[q] {
			switch t.Kind {
			case KEps:
				er.Set(t.To)
				vr.Set(t.To)
			case KOpen, KClose:
				vr.Set(t.To)
			}
		}
	}
	closeMatrix(c.EpsB, epsAdj, n)
	closeMatrix(c.VEB, veAdj, n)
	// Slice views, shared arena, ascending state order.
	total := 0
	for q := 0; q < n; q++ {
		total += c.EpsB.Row(q).Count() + c.VEB.Row(q).Count()
	}
	arena := make([]int32, 0, total)
	for q := 0; q < n; q++ {
		start := len(arena)
		arena = c.EpsB.Row(q).AppendOnes(arena)
		c.Eps[q] = arena[start:len(arena):len(arena)]
		start = len(arena)
		arena = c.VEB.Row(q).AppendOnes(arena)
		c.VE[q] = arena[start:len(arena):len(arena)]
	}
	return c
}

// closeMatrix fills out with the reflexive-transitive closure of the
// adjacency matrix adj by per-state frontier BFS: each round unions the
// whole adjacency rows of the current frontier, so work is word-parallel.
func closeMatrix(out, adj *bitset.Matrix, n int) {
	if n == 0 {
		return
	}
	acc := bitset.NewRow(n)
	frontier := make([]int32, 0, 16)
	for q := 0; q < n; q++ {
		row := out.Row(q)
		row.CopyFrom(adj.Row(q))
		// frontier = row initially; expand until no new states appear.
		frontier = row.AppendOnes(frontier[:0])
		for len(frontier) > 0 {
			acc.Zero()
			for _, p := range frontier {
				acc.Or(adj.Row(int(p)))
			}
			acc.AndNot(row) // newly discovered states only
			if !acc.Any() {
				break
			}
			row.Or(acc)
			frontier = acc.AppendOnes(frontier[:0])
		}
	}
}

// CharTrans returns the character transitions leaving q.
func (a *VSA) CharTrans(q int32) []Tr {
	var out []Tr
	for _, t := range a.Adj[q] {
		if t.Kind == KChar {
			out = append(out, t)
		}
	}
	return out
}

// String summarizes the automaton for debugging.
func (a *VSA) String() string {
	return fmt.Sprintf("VSA(vars=%v states=%d transitions=%d init=%d final=%d)",
		a.Vars, a.NumStates(), a.NumTransitions(), a.Init, a.Final)
}
