package vsa

import (
	"fmt"

	"spanjoin/internal/span"
)

// Project implements the projection operator π_Y (Lemma 3.8): it returns a
// functional vset-automaton A_Y with [[A_Y]] = [[π_Y(A)]], constructed in
// linear time by replacing every variable transition on a variable outside
// keep with an ε-transition.
//
// Variables in keep that A does not have are ignored; the result's variable
// set is Vars(A) ∩ keep.
func Project(a *VSA, keep span.VarList) (*VSA, error) {
	if !a.IsFunctional() {
		return nil, ErrNotFunctional
	}
	newVars := a.Vars.Intersect(keep)
	remap := make([]int32, len(a.Vars))
	for i, v := range a.Vars {
		remap[i] = int32(newVars.Index(v)) // -1 when dropped
	}
	out := &VSA{Vars: newVars, Adj: make([][]Tr, len(a.Adj)), Init: a.Init, Final: a.Final}
	for q, ts := range a.Adj {
		for _, t := range ts {
			nt := t
			if t.Kind == KOpen || t.Kind == KClose {
				if remap[t.Var] < 0 {
					nt = Tr{Kind: KEps, To: t.To}
				} else {
					nt.Var = remap[t.Var]
				}
			}
			out.Adj[q] = append(out.Adj[q], nt)
		}
	}
	return out, nil
}

// Union implements the union operator (Lemma 3.9): given functional
// automata with identical variable sets, it returns a functional automaton
// for [[A_1 ∪ … ∪ A_k]] via the standard NFA union construction (fresh
// initial and final states joined by ε-transitions), in linear time.
func Union(as ...*VSA) (*VSA, error) {
	if len(as) == 0 {
		return nil, fmt.Errorf("vsa: union of zero automata")
	}
	vars := as[0].Vars
	for _, a := range as[1:] {
		if !a.Vars.Equal(vars) {
			return nil, fmt.Errorf("vsa: union requires identical variable sets, got %v and %v", vars, a.Vars)
		}
	}
	for _, a := range as {
		if !a.IsFunctional() {
			return nil, ErrNotFunctional
		}
	}
	out := New(vars) // states 0 = init, 1 = final
	for _, a := range as {
		base := int32(len(out.Adj))
		for range a.Adj {
			out.AddState()
		}
		for q, ts := range a.Adj {
			for _, t := range ts {
				nt := t
				nt.To += base
				out.Adj[base+int32(q)] = append(out.Adj[base+int32(q)], nt)
			}
		}
		out.AddEps(out.Init, base+a.Init)
		out.AddEps(base+a.Final, out.Final)
	}
	return out, nil
}

// Functionalize converts an arbitrary vset-automaton into an equivalent
// functional one via the (state × configuration) product: states are pairs
// (q, ~c), transitions apply variable operations to ~c and drop operations
// that would invalidate the ref-word. The result has at most n·3^v states —
// the exponential blow-up in the number of variables shown by
// Freydenberger [15] and cited in §2.2.3 is therefore realized exactly.
//
// [[Functionalize(A)]] = [[A]] because [[A]](s) is defined over the *valid*
// ref-words of R(A) only.
func Functionalize(a *VSA) *VSA {
	v := len(a.Vars)
	out := &VSA{Vars: a.Vars}
	type key struct {
		q   int32
		cfg string
	}
	id := make(map[key]int32)
	var queue []key
	getState := func(q int32, c Config) int32 {
		k := key{q, c.Key()}
		if s, ok := id[k]; ok {
			return s
		}
		s := out.AddState()
		id[k] = s
		queue = append(queue, k)
		return s
	}
	initCfg := make(Config, v)
	out.Init = getState(a.Init, initCfg)
	finalCfg := make(Config, v)
	for i := range finalCfg {
		finalCfg[i] = C
	}
	out.Final = getState(a.Final, finalCfg)
	decode := func(s string) Config {
		c := make(Config, len(s))
		for i := 0; i < len(s); i++ {
			c[i] = VarState(s[i])
		}
		return c
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		src := id[k]
		cfg := decode(k.cfg)
		for _, t := range a.Adj[k.q] {
			next, err := applyOp(cfg, t)
			if err != nil {
				continue // invalid operation: this run cannot yield a valid ref-word
			}
			dst := getState(t.To, next)
			nt := t
			nt.To = dst
			out.Adj[src] = append(out.Adj[src], nt)
		}
	}
	return out.Trim()
}
