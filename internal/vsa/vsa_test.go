package vsa_test

import (
	"errors"
	"testing"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// example26A builds the non-functional automaton A of Example 2.6: a single
// state that is both initial and final, with self-loops x⊢, a, ⊣x.
func example26A() *vsa.VSA {
	a := &vsa.VSA{Vars: span.NewVarList("x"), Adj: make([][]vsa.Tr, 1), Init: 0, Final: 0}
	a.AddOpen(0, 0, 0)
	a.AddChar(0, alphabet.Single('a'), 0)
	a.AddClose(0, 0, 0)
	return a
}

// example26Afun builds the functional automaton A_fun of Example 2.6 /
// Example 4.1: q0 -x⊢→ q1 -⊣x→ q2 with a-loops on every state.
func example26Afun() *vsa.VSA {
	a := &vsa.VSA{Vars: span.NewVarList("x"), Adj: make([][]vsa.Tr, 3), Init: 0, Final: 2}
	a.AddChar(0, alphabet.Single('a'), 0)
	a.AddOpen(0, 0, 1)
	a.AddChar(1, alphabet.Single('a'), 1)
	a.AddClose(1, 0, 2)
	a.AddChar(2, alphabet.Single('a'), 2)
	return a
}

func TestExample26Functionality(t *testing.T) {
	if example26A().IsFunctional() {
		t.Error("A of Example 2.6 must not be functional")
	}
	if !example26Afun().IsFunctional() {
		t.Error("A_fun of Example 2.6 must be functional")
	}
}

func TestExample26Equivalence(t *testing.T) {
	// A and A_fun are equivalent: [[A]](s) = [[A_fun]](s). The oracle handles
	// non-functional automata directly (validity is checked per ref-word).
	a := example26A()
	afun := example26Afun()
	for _, s := range []string{"", "a", "aa", "aaa", "b", "ab"} {
		got := oracle.EvalVSA(a, s)
		want := oracle.EvalVSA(afun, s)
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("on %q: A gives %v, A_fun gives %v", s, got, want)
		}
	}
	// For s ∈ a*, [[A]](s) contains all possible ({x}, s)-tuples.
	got := oracle.EvalVSA(a, "aa")
	if len(got) != 6 {
		t.Errorf("[[A]](aa) has %d tuples, want 6 (all spans)", len(got))
	}
	// For s ∉ a*, [[A]](s) = ∅.
	if n := len(oracle.EvalVSA(a, "ab")); n != 0 {
		t.Errorf("[[A]](ab) has %d tuples, want 0", n)
	}
}

// TestExample41Configs reproduces Example 4.1: the variable configurations
// of A_fun.
func TestExample41Configs(t *testing.T) {
	a := example26Afun()
	trimmed, ct, err := a.RequireFunctional()
	if err != nil {
		t.Fatal(err)
	}
	want := []vsa.VarState{vsa.W, vsa.O, vsa.C}
	for q, st := range want {
		if ct.Cfg[q][0] != st {
			t.Errorf("~c_q%d(x) = %v, want %v", q, ct.Cfg[trimmed.Init+int32(q)][0], st)
		}
	}
}

func TestConfigTableRejectsNonFunctional(t *testing.T) {
	_, err := example26A().Trim().ConfigTableOf()
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, vsa.ErrNotFunctional) {
		t.Fatalf("error %v does not wrap ErrNotFunctional", err)
	}
}

func TestConfigTableUnclosedVariable(t *testing.T) {
	// x is opened but never closed: final configuration not all-closed.
	a := vsa.New(span.NewVarList("x"))
	a.AddOpen(a.Init, 0, a.Final)
	_, err := a.Trim().ConfigTableOf()
	if !errors.Is(err, vsa.ErrNotFunctional) {
		t.Fatalf("got %v, want ErrNotFunctional", err)
	}
}

func TestTrim(t *testing.T) {
	a := vsa.New(nil)
	mid := a.AddState()
	dead := a.AddState() // reachable but not co-reachable
	a.AddChar(a.Init, alphabet.Single('a'), mid)
	a.AddChar(mid, alphabet.Single('b'), a.Final)
	a.AddChar(mid, alphabet.Single('c'), dead)
	orphan := a.AddState() // not reachable
	a.AddChar(orphan, alphabet.Single('d'), a.Final)

	tr := a.Trim()
	if tr.NumStates() != 3 {
		t.Errorf("trimmed to %d states, want 3", tr.NumStates())
	}
	if tr.NumTransitions() != 2 {
		t.Errorf("trimmed to %d transitions, want 2", tr.NumTransitions())
	}
	// Language must be preserved.
	want := oracle.EvalVSA(a, "ab")
	got := oracle.EvalVSA(tr, "ab")
	if !oracle.EqualTupleSets(got, want) {
		t.Error("trim changed the language")
	}
}

func TestTrimEmptyLanguage(t *testing.T) {
	a := vsa.New(nil) // no transitions at all
	tr := a.Trim()
	if !tr.IsEmptyLanguage() {
		t.Error("expected empty language")
	}
}

func TestClosures(t *testing.T) {
	a := vsa.New(span.NewVarList("x"))
	s1 := a.AddState()
	s2 := a.AddState()
	a.AddEps(a.Init, s1)
	a.AddOpen(s1, 0, s2)
	a.AddClose(s2, 0, a.Final)
	cl := a.NewClosures()
	if got := len(cl.Eps[a.Init]); got != 2 { // init + s1
		t.Errorf("|E(init)| = %d, want 2", got)
	}
	if got := len(cl.VE[a.Init]); got != 4 { // everything
		t.Errorf("|VE(init)| = %d, want 4", got)
	}
	if got := len(cl.Eps[s2]); got != 1 {
		t.Errorf("|E(s2)| = %d, want 1", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := example26Afun()
	b := a.Clone()
	b.AddChar(0, alphabet.Single('z'), 2)
	if a.NumTransitions() == b.NumTransitions() {
		t.Error("clone shares transition storage")
	}
}

func TestIsFunctionalIgnoresUselessStates(t *testing.T) {
	// A functional core plus a junk state with an invalid variable op that
	// cannot reach the final state: still functional (R(A) unaffected).
	a := rgx.MustCompilePattern("x{a}")
	junk := a.AddState()
	a.AddClose(a.Init, 0, junk) // close before open, but junk is a dead end
	if !a.IsFunctional() {
		t.Error("useless states must not affect functionality")
	}
}

func TestEvalMatchesOracleOnHandBuiltAutomata(t *testing.T) {
	// Hand-built automaton with a non-trivial ε/variable structure:
	// (x over a run of a's) with an optional prefix letter.
	a := vsa.New(span.NewVarList("x"))
	s1 := a.AddState()
	s2 := a.AddState()
	a.AddEps(a.Init, s1)
	a.AddChar(a.Init, alphabet.Single('b'), s1)
	a.AddOpen(s1, 0, s2)
	a.AddChar(s2, alphabet.Single('a'), s2)
	a.AddClose(s2, 0, a.Final)
	if !a.IsFunctional() {
		t.Fatal("test automaton should be functional")
	}
	for _, s := range []string{"", "a", "b", "ba", "baa", "ab", "aa"} {
		want := oracle.EvalVSA(a, s)
		_, got, err := enum.Eval(a, s)
		if err != nil {
			t.Fatal(err)
		}
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("on %q: got %v, want %v", s, got, want)
		}
	}
}
