package vsa

import (
	"fmt"
	"strings"

	"spanjoin/internal/bitset"
)

// Join implements the natural-join operator ⋈ on functional vset-automata
// (Lemma 3.10). Given functional A1 and A2, it constructs a functional A
// with [[A]] = [[A1 ⋈ A2]] over Vars(A1) ∪ Vars(A2).
//
// The construction synchronizes the two automata at *boundary states* — the
// q̂ states of the paper's §4.1: states from which a character is read next
// (or the final state). Product states are consistent boundary pairs
// (variable configurations agree on the shared variables); a transition
//
//	(p1,p2) --σ--> ops… --> (q1,q2)
//
// exists when qi ∈ VE_i(δ_i(p_i, σ)) for both i, where VE is the ε-and-
// variable closure, and ops is the canonical chain of joint variable
// operations taking the source configuration to the target one (the
// "A_strict" expansion of the paper's rule 3). Chains are keyed by
// (target, remaining suffix) and shared across sources, so op-heavy
// automata do not blow up. The construction is O(v·n⁴) like the lemma:
// boundary pairs are O(n²) and each inspects O(n²) successor pairs.
func Join(a1, a2 *VSA) (*VSA, error) {
	t1, ct1, err := a1.RequireFunctional()
	if err != nil {
		return nil, err
	}
	t2, ct2, err := a2.RequireFunctional()
	if err != nil {
		return nil, err
	}
	joint := t1.Vars.Union(t2.Vars)
	if isEmptyVSA(t1) || isEmptyVSA(t2) {
		return New(joint), nil
	}
	_ = joint
	j := &joiner{a1: t1, a2: t2, ct1: ct1, ct2: ct2}
	return j.run()
}

func isEmptyVSA(a *VSA) bool {
	return a.NumStates() == 2 && a.NumTransitions() == 0 && a.Init != a.Final
}

type joiner struct {
	a1, a2   *VSA
	ct1, ct2 *ConfigTable

	// veb1[q]/veb2[q]: boundary states in the ε/variable closure of q.
	veb1, veb2 [][]int32

	out *VSA
	// shared variable positions and joint index maps.
	shared1, shared2 []int32
	map1, map2       []int32

	ids      map[[2]int32]int32
	queue    [][2]int32
	chainIDs map[string]int32
	edgeSeen map[string]bool
}

func (j *joiner) run() (*VSA, error) {
	jv := j.a1.Vars.Union(j.a2.Vars)
	j.out = &VSA{Vars: jv}
	j.map1 = make([]int32, len(j.a1.Vars))
	for i, v := range j.a1.Vars {
		j.map1[i] = int32(jv.Index(v))
	}
	j.map2 = make([]int32, len(j.a2.Vars))
	for i, v := range j.a2.Vars {
		j.map2[i] = int32(jv.Index(v))
		if k := j.a1.Vars.Index(v); k >= 0 {
			j.shared1 = append(j.shared1, int32(k))
			j.shared2 = append(j.shared2, int32(i))
		}
	}
	j.veb1 = boundaryClosures(j.a1)
	j.veb2 = boundaryClosures(j.a2)
	j.ids = make(map[[2]int32]int32)
	j.chainIDs = make(map[string]int32)
	j.edgeSeen = make(map[string]bool)

	init := j.out.AddState()
	j.out.Init = init
	// Initial gap: ε/variable moves before the first character.
	srcCfg := j.jointConfig(j.ct1.Cfg[j.a1.Init], j.ct2.Cfg[j.a2.Init])
	for _, q1 := range j.veb1[j.a1.Init] {
		for _, q2 := range j.veb2[j.a2.Init] {
			if !j.consistent(q1, q2) {
				continue
			}
			j.emitGap(init, KEps, Tr{}, srcCfg, q1, q2)
		}
	}
	// Worklist over boundary pairs.
	for len(j.queue) > 0 {
		p := j.queue[0]
		j.queue = j.queue[1:]
		src := j.ids[p]
		cfg := j.jointConfig(j.ct1.Cfg[p[0]], j.ct2.Cfg[p[1]])
		for _, tr1 := range j.a1.Adj[p[0]] {
			if tr1.Kind != KChar {
				continue
			}
			for _, tr2 := range j.a2.Adj[p[1]] {
				if tr2.Kind != KChar {
					continue
				}
				cls := tr1.Class.Intersect(tr2.Class)
				if cls.IsEmpty() {
					continue
				}
				for _, q1 := range j.veb1[tr1.To] {
					for _, q2 := range j.veb2[tr2.To] {
						if !j.consistent(q1, q2) {
							continue
						}
						j.emitGap(src, KChar, Tr{Kind: KChar, Class: cls}, cfg, q1, q2)
					}
				}
			}
		}
	}
	fid, ok := j.ids[[2]int32{j.a1.Final, j.a2.Final}]
	if !ok {
		return New(jv), nil
	}
	j.out.Final = fid
	return j.out.Trim(), nil
}

// boundaryClosures computes, for every state q, the boundary states
// (character-bearing or final) in the ε/variable closure of q: one AND of
// the closure row with the boundary mask per state.
func boundaryClosures(a *VSA) [][]int32 {
	n := a.NumStates()
	boundary := bitset.NewRow(n)
	for q := range a.Adj {
		for _, t := range a.Adj[q] {
			if t.Kind == KChar {
				boundary.Set(int32(q))
				break
			}
		}
	}
	boundary.Set(a.Final)
	cl := a.NewClosures()
	out := make([][]int32, n)
	row := bitset.NewRow(n)
	var arena []int32
	for q := range out {
		row.CopyFrom(cl.VEB.Row(q))
		row.And(boundary)
		start := len(arena)
		arena = row.AppendOnes(arena)
		out[q] = arena[start:len(arena):len(arena)]
	}
	return out
}

func (j *joiner) consistent(q1, q2 int32) bool {
	c1 := j.ct1.Cfg[q1]
	c2 := j.ct2.Cfg[q2]
	for k := range j.shared1 {
		if c1[j.shared1[k]] != c2[j.shared2[k]] {
			return false
		}
	}
	return true
}

func (j *joiner) getPair(q1, q2 int32) int32 {
	k := [2]int32{q1, q2}
	if s, ok := j.ids[k]; ok {
		return s
	}
	s := j.out.AddState()
	j.ids[k] = s
	j.queue = append(j.queue, k)
	return s
}

// jointConfig merges per-automaton configurations into one over the joint
// variable list (shared variables agree by consistency).
func (j *joiner) jointConfig(c1, c2 Config) Config {
	out := make(Config, len(j.out.Vars))
	for i, v := range c1 {
		out[j.map1[i]] = v
	}
	for i, v := range c2 {
		out[j.map2[i]] = v
	}
	return out
}

// op is a single joint variable operation of a gap chain.
type jop struct {
	v    int32
	kind Kind
}

// emitGap adds a transition from src into the boundary pair (q1,q2),
// prefixed by `lead` (a character transition or ε for the initial gap) and
// followed by the canonical chain of variable operations bridging the
// configurations. Chain suffixes are interned on (target, suffix) so they
// are shared across sources.
func (j *joiner) emitGap(src int32, leadKind Kind, lead Tr, srcCfg Config, q1, q2 int32) {
	dstCfg := j.jointConfig(j.ct1.Cfg[q1], j.ct2.Cfg[q2])
	ops := diffOps(srcCfg, dstCfg)
	dst := j.getPair(q1, q2)
	// Entry point: the state from which the op chain starts (dst if none).
	entry := j.chainEntry(dst, ops)
	var ek string
	if leadKind == KChar {
		ek = fmt.Sprintf("c%d;%v;%d", src, lead.Class, entry)
	} else {
		ek = fmt.Sprintf("e%d;%d", src, entry)
	}
	if j.edgeSeen[ek] {
		return
	}
	j.edgeSeen[ek] = true
	if leadKind == KChar {
		j.out.AddChar(src, lead.Class, entry)
	} else if src != entry {
		j.out.AddEps(src, entry)
	}
}

// diffOps lists the operations taking cfg from src to dst in canonical
// order: opens (ascending joint variable index) then closes, so a variable
// going w→c in one gap stays well ordered.
func diffOps(src, dst Config) []jop {
	var opens, closes []jop
	for v := range src {
		from, to := src[v], dst[v]
		switch {
		case from == to:
		case from == W && to == O:
			opens = append(opens, jop{int32(v), KOpen})
		case from == O && to == C:
			closes = append(closes, jop{int32(v), KClose})
		case from == W && to == C:
			opens = append(opens, jop{int32(v), KOpen})
			closes = append(closes, jop{int32(v), KClose})
		default:
			panic("vsa: non-monotone configuration change in join")
		}
	}
	return append(opens, closes...)
}

// chainEntry returns the state beginning the op chain into dst, creating
// shared suffix states as needed. With no ops it is dst itself.
func (j *joiner) chainEntry(dst int32, ops []jop) int32 {
	cur := dst
	// Build backward: suffix ops[i:] ends at dst.
	for i := len(ops) - 1; i >= 0; i-- {
		key := chainKey(dst, ops[i:])
		st, ok := j.chainIDs[key]
		if !ok {
			st = j.out.AddState()
			j.chainIDs[key] = st
			if ops[i].kind == KOpen {
				j.out.AddOpen(st, ops[i].v, cur)
			} else {
				j.out.AddClose(st, ops[i].v, cur)
			}
		}
		cur = st
	}
	return cur
}

func chainKey(dst int32, suffix []jop) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", dst)
	for _, o := range suffix {
		fmt.Fprintf(&sb, ";%d,%d", o.v, o.kind)
	}
	return sb.String()
}

// JoinAll joins k automata left to right. Per the paper (discussion after
// Lemma 3.10) the size can grow as O(n^2k); this is the operation whose
// unbounded use makes acyclic regex CQs intractable (Thm 3.2), so callers
// should bound k.
func JoinAll(as ...*VSA) (*VSA, error) {
	if len(as) == 0 {
		return nil, ErrNotFunctional
	}
	acc := as[0]
	var err error
	for _, a := range as[1:] {
		acc, err = Join(acc, a)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
