package vsa_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

func roundTrip(t *testing.T, a *vsa.VSA) *vsa.VSA {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := vsa.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v\nencoding was:\n%s", err, buf.String())
	}
	return back
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	patterns := []string{
		"a", "x{a}", "a*x{a*}a*", ".*x{a+}y{b}.*", "x{.*}y{.*}",
		`.*m{u{[a-z]+}@d{[a-z]+\.[a-z]+}}.*`,
	}
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		back := roundTrip(t, a)
		if back.NumStates() != a.NumStates() || back.NumTransitions() != a.NumTransitions() {
			t.Fatalf("%q: shape changed: %v vs %v", p, back, a)
		}
		if !back.Vars.Equal(a.Vars) {
			t.Fatalf("%q: vars changed: %v vs %v", p, back.Vars, a.Vars)
		}
		for _, s := range []string{"", "a", "ab", "u@a.b"} {
			want := evalVSA(t, a, s)
			got := evalVSA(t, back, s)
			if !oracle.EqualTupleSets(got, want) {
				t.Fatalf("%q on %q: decoded automaton disagrees", p, s)
			}
		}
	}
}

func TestEncodeDecodeRandomAutomata(t *testing.T) {
	r := rand.New(rand.NewSource(999))
	vars := span.NewVarList("x", "y")
	for i := 0; i < 40; i++ {
		a := oracle.RandomFunctionalVSA(r, vars, 4, 10)
		back := roundTrip(t, a)
		for _, s := range []string{"", "ab"} {
			if !oracle.EqualTupleSets(evalVSA(t, a, s), evalVSA(t, back, s)) {
				t.Fatalf("trial %d: decoded automaton disagrees", i)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"nope\n",           // wrong magic
		"vsa1\nvars 1 x\n", // truncated
		"vsa1\nvars 1 x\nstates 2 init 0 final 5\nend\n",           // final out of range
		"vsa1\nvars 1 x\nstates 2 init 0 final 1\nz 0 1\n",         // unknown record
		"vsa1\nvars 1 x\nstates 2 init 0 final 1\no 0 3 1\nend\n",  // var index out of range
		"vsa1\nvars 1 x\nstates 2 init 0 final 1\nc 0 1 zz\nend\n", // bad class hex
		"vsa1\nvars 1 x\nstates 2 init 0 final 1\ne 0 9\nend\n",    // state out of range
		"vsa1\nvars 2 x x\nstates 1 init 0 final 0\nend\n",         // duplicate vars
	}
	for _, c := range cases {
		if _, err := vsa.Decode(strings.NewReader(c)); err == nil {
			t.Errorf("Decode(%q) should fail", c)
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a+}.*")
	var b1, b2 bytes.Buffer
	if err := a.Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := a.Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("encoding not deterministic")
	}
	if !strings.HasPrefix(b1.String(), "vsa1\n") {
		t.Error("missing magic header")
	}
}

func TestDecodedAutomatonUsableEverywhere(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a}y{b}.*")
	back := roundTrip(t, a)
	// Functionality, key attributes and enumeration must all work.
	if !back.IsFunctional() {
		t.Error("decoded automaton lost functionality")
	}
	ok, err := vsa.KeyAttribute(back, "x")
	if err != nil || !ok {
		t.Errorf("key attribute on decoded automaton: %v/%v", ok, err)
	}
	if _, err := enum.Prepare(back, "ab"); err != nil {
		t.Errorf("enumeration on decoded automaton: %v", err)
	}
}
