package vsa_test

import (
	"math/rand"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// TestAcceptsTupleAgainstEnumeration: membership must agree exactly with
// the enumerated result over all candidate tuples.
func TestAcceptsTupleAgainstEnumeration(t *testing.T) {
	patterns := []string{
		"a*x{a*}a*",
		".*x{a+}y{b}.*",
		"x{.*}y{.*}",
		".*x{.}.*y{.}.*",
		"(a|b)*x{ab}(a|b)*",
	}
	strs := []string{"", "a", "ab", "aab", "abab"}
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for _, s := range strs {
			vars, tuples, err := enum.Eval(a, s)
			if err != nil {
				t.Fatal(err)
			}
			inResult := map[string]bool{}
			for _, tu := range tuples {
				inResult[tu.Key()] = true
			}
			// Every enumerated tuple must be accepted; every other candidate
			// combination must be rejected.
			forEachCandidate(len(s), len(vars), func(tu span.Tuple) {
				got, err := vsa.AcceptsTuple(a, s, vars, tu)
				if err != nil {
					t.Fatal(err)
				}
				if got != inResult[tu.Key()] {
					t.Errorf("[[%s]](%q): AcceptsTuple(%v) = %v, enumeration says %v",
						p, s, tu.Format(vars), got, inResult[tu.Key()])
				}
			})
		}
	}
}

func forEachCandidate(n, v int, fn func(span.Tuple)) {
	all := span.All(n)
	tu := make(span.Tuple, v)
	var rec func(int)
	rec = func(i int) {
		if i == v {
			fn(tu)
			return
		}
		for _, sp := range all {
			tu[i] = sp
			rec(i + 1)
		}
	}
	rec(0)
}

func TestAcceptsTupleErrors(t *testing.T) {
	a := rgx.MustCompilePattern("x{a}")
	if _, err := vsa.AcceptsTuple(a, "a", span.NewVarList("y"), span.Tuple{{Start: 1, End: 2}}); err == nil {
		t.Error("schema mismatch must error")
	}
	if _, err := vsa.AcceptsTuple(a, "a", span.NewVarList("x"), span.Tuple{}); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, err := vsa.AcceptsTuple(example26A(), "a", span.NewVarList("x"), span.Tuple{{Start: 1, End: 1}}); err == nil {
		t.Error("non-functional automaton must error")
	}
	// Spans outside the string are simply not matches.
	ok, err := vsa.AcceptsTuple(a, "a", span.NewVarList("x"), span.Tuple{{Start: 3, End: 9}})
	if err != nil || ok {
		t.Errorf("out-of-range span: ok=%v err=%v", ok, err)
	}
}

// TestRandomAutomataAlgebraAgainstOracle: generate random functional
// automata and check Join/Union/Project against the ref-word oracle and
// relational semantics.
func TestRandomAutomataAlgebraAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	vars := span.NewVarList("x", "y")
	strs := []string{"", "a", "b", "ab", "ba"}
	trials := 60
	for i := 0; i < trials; i++ {
		a1 := oracle.RandomFunctionalVSA(r, vars, 4, 10)
		a2 := oracle.RandomFunctionalVSA(r, vars, 4, 10)

		// Union vs oracle.
		u, err := vsa.Union(a1, a2)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strs {
			want := append(oracle.EvalVSA(a1, s), oracle.EvalVSA(a2, s)...)
			_, got, err := enum.Eval(u, s)
			if err != nil {
				t.Fatal(err)
			}
			if !oracle.EqualTupleSets(got, want) {
				t.Fatalf("trial %d union on %q: got %d, want %d distinct", i, s, len(got), len(dedup(want)))
			}
		}

		// Join vs relational cross-check (shared variable set: spans must
		// coincide on both, i.e. intersection of results).
		j, err := vsa.Join(a1, a2)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strs {
			r1 := oracle.EvalVSA(a1, s)
			r2 := oracle.EvalVSA(a2, s)
			in2 := map[string]bool{}
			for _, tu := range r2 {
				in2[tu.Key()] = true
			}
			var want []span.Tuple
			for _, tu := range r1 {
				if in2[tu.Key()] {
					want = append(want, tu)
				}
			}
			_, got, err := enum.Eval(j, s)
			if err != nil {
				t.Fatal(err)
			}
			if !oracle.EqualTupleSets(got, want) {
				t.Fatalf("trial %d join on %q: got %d, want %d", i, s, len(got), len(want))
			}
		}

		// Projection vs relational semantics.
		keep := span.NewVarList("x")
		p, err := vsa.Project(a1, keep)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strs {
			full := oracle.EvalVSA(a1, s)
			seen := map[string]bool{}
			var want []span.Tuple
			xi := vars.Index("x")
			for _, tu := range full {
				pt := span.Tuple{tu[xi]}
				if !seen[pt.Key()] {
					seen[pt.Key()] = true
					want = append(want, pt)
				}
			}
			_, got, err := enum.Eval(p, s)
			if err != nil {
				t.Fatal(err)
			}
			if !oracle.EqualTupleSets(got, want) {
				t.Fatalf("trial %d projection on %q: got %d, want %d", i, s, len(got), len(want))
			}
		}
	}
}

// TestRandomAutomataEnumerationAgainstOracle: the central algorithm on
// random functional automata with awkward ε/variable structure.
func TestRandomAutomataEnumerationAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	vars := span.NewVarList("x")
	for i := 0; i < 120; i++ {
		a := oracle.RandomFunctionalVSA(r, vars, 5, 12)
		for _, s := range []string{"", "a", "ab", "bba"} {
			want := oracle.EvalVSA(a, s)
			_, got, err := enum.Eval(a, s)
			if err != nil {
				t.Fatal(err)
			}
			if !oracle.EqualTupleSets(got, want) {
				t.Fatalf("trial %d on %q: got %v, want %v (automaton %v)", i, s, got, want, a)
			}
		}
	}
}

func dedup(ts []span.Tuple) []span.Tuple {
	seen := map[string]bool{}
	var out []span.Tuple
	for _, tu := range ts {
		if !seen[tu.Key()] {
			seen[tu.Key()] = true
			out = append(out, tu)
		}
	}
	return out
}
