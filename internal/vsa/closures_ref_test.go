package vsa

import (
	"math/rand"
	"sort"
	"testing"

	"spanjoin/internal/alphabet"
)

// closureFromRef is the pre-bitset slice implementation of the ε/variable
// closure (BFS over adjacency with a []bool seen set), kept as the golden
// reference for NewClosures.
func closureFromRef(a *VSA, q int32, withVars bool) []int32 {
	seen := make([]bool, len(a.Adj))
	seen[q] = true
	order := []int32{q}
	for i := 0; i < len(order); i++ {
		for _, t := range a.Adj[order[i]] {
			ok := t.Kind == KEps || (withVars && (t.Kind == KOpen || t.Kind == KClose))
			if ok && !seen[t.To] {
				seen[t.To] = true
				order = append(order, t.To)
			}
		}
	}
	return order
}

// TestClosuresAgainstSliceReference checks the bitset closure against the
// slice BFS on random automata: same state sets, with the slice views in
// ascending order and the bitset rows agreeing bit for bit.
func TestClosuresAgainstSliceReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		// Random automaton with a mix of ε, variable and char transitions;
		// sizes cross the 64-state word boundary on later trials.
		n := 2 + rng.Intn(70)
		a := &VSA{Adj: make([][]Tr, n), Init: 0, Final: int32(n - 1)}
		m := rng.Intn(3 * n)
		for k := 0; k < m; k++ {
			p, q := int32(rng.Intn(n)), int32(rng.Intn(n))
			switch rng.Intn(4) {
			case 0:
				a.AddEps(p, q)
			case 1:
				a.AddOpen(p, 0, q)
			case 2:
				a.AddClose(p, 0, q)
			default:
				a.AddChar(p, alphabet.Single('a'), q)
			}
		}
		cl := a.NewClosures()
		for q := 0; q < n; q++ {
			for _, withVars := range []bool{false, true} {
				want := closureFromRef(a, int32(q), withVars)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				got := cl.Eps[q]
				row := cl.EpsB.Row(q)
				if withVars {
					got = cl.VE[q]
					row = cl.VEB.Row(q)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d state %d withVars=%v: got %v want %v", trial, q, withVars, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d state %d withVars=%v: got %v want %v", trial, q, withVars, got, want)
					}
					if !row.Test(want[i]) {
						t.Fatalf("trial %d state %d: bitset row missing %d", trial, q, want[i])
					}
				}
				if row.Count() != len(want) {
					t.Fatalf("trial %d state %d: bitset row has extra bits", trial, q)
				}
			}
		}
	}
}
