package vsa_test

import (
	"math/rand"
	"testing"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/bitset"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// trimmedWithClosures compiles the table inputs the way enum's Plan does.
func trimmedWithClosures(t *testing.T, a *vsa.VSA) (*vsa.VSA, *vsa.Closures) {
	t.Helper()
	tr, _, err := a.RequireFunctional()
	if err != nil {
		t.Fatal(err)
	}
	return tr, tr.NewClosures()
}

// TestTransitionTablePartition: the byte classes must be a partition of the
// 256 byte values such that every transition's CharClass treats all bytes
// of one class identically — the defining property of the compression.
func TestTransitionTablePartition(t *testing.T) {
	patterns := []string{
		`.*x{a+}.*y{b+}.*`,
		`[^0-9]*x{[0-9]+}[^0-9]*`,
		`(a|b)*x{(a|b)+}(a|b)*`,
		`x{.*}`,
	}
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		tr, cl := trimmedWithClosures(t, a)
		tt := vsa.NewTransitionTable(tr, cl)
		if tt.NumClasses() < 1 || tt.NumClasses() > 256 {
			t.Fatalf("%s: %d classes", p, tt.NumClasses())
		}
		seenClass := make(map[int]bool)
		for b := 0; b < 256; b++ {
			c := tt.ClassOf(byte(b))
			if c < 0 || c >= tt.NumClasses() {
				t.Fatalf("%s: byte %d in class %d of %d", p, b, c, tt.NumClasses())
			}
			seenClass[c] = true
			rep := tt.Repr(c)
			for _, ts := range tr.Adj {
				for _, x := range ts {
					if x.Kind != vsa.KChar {
						continue
					}
					if x.Class.Contains(byte(b)) != x.Class.Contains(rep) {
						t.Fatalf("%s: byte %d and its representative %d disagree on %v",
							p, b, rep, x.Class)
					}
				}
			}
		}
		if len(seenClass) != tt.NumClasses() {
			t.Fatalf("%s: %d classes declared, %d inhabited", p, tt.NumClasses(), len(seenClass))
		}
	}
}

// TestTransitionTableRows: every matrix row must equal the union of
// VE-closure rows over the transitions the class matches, recomputed here
// transition by transition; a nil matrix is only allowed for a class no
// transition accepts.
func TestTransitionTableRows(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	vars := span.NewVarList("x", "y")
	for trial := 0; trial < 60; trial++ {
		a := oracle.RandomFunctionalVSA(r, vars, 5, 14)
		tr, cl := trimmedWithClosures(t, a)
		tt := vsa.NewTransitionTable(tr, cl)
		n := tr.NumStates()
		want := bitset.NewRow(n)
		for c := 0; c < tt.NumClasses(); c++ {
			rep := tt.Repr(c)
			m := tt.ClassMat(c)
			live := false
			for q := 0; q < n; q++ {
				want.Zero()
				for _, x := range tr.Adj[q] {
					if x.Kind == vsa.KChar && x.Class.Contains(rep) {
						live = true
						want.Or(cl.VEB.Row(int(x.To)))
					}
				}
				if m == nil {
					if want.Any() {
						t.Fatalf("trial %d: class %d has transitions but a nil matrix", trial, c)
					}
					continue
				}
				if !m.Row(q).Equal(want) {
					t.Fatalf("trial %d: class %d row %d mismatch", trial, c, q)
				}
			}
			if !live && m != nil {
				t.Fatalf("trial %d: dead class %d carries a matrix", trial, c)
			}
		}
	}
}

// TestTransitionTableSingleByteAutomaton: an automaton over one letter
// partitions the bytes into exactly {that letter} and the dead rest, and
// Mat returns nil for dead bytes.
func TestTransitionTableSingleByteAutomaton(t *testing.T) {
	a := vsa.New(span.NewVarList("x"))
	mid := a.AddState()
	a.AddOpen(a.Init, 0, mid)
	q := a.AddState()
	a.AddChar(mid, alphabet.Single('a'), q)
	a.AddClose(q, 0, a.Final)
	tr, cl := trimmedWithClosures(t, a)
	tt := vsa.NewTransitionTable(tr, cl)
	if tt.NumClasses() != 2 {
		t.Fatalf("classes = %d, want 2 ({a} and the dead rest)", tt.NumClasses())
	}
	if tt.Mat('a') == nil {
		t.Fatal("Mat('a') = nil for a live byte")
	}
	if tt.Mat('b') != nil || tt.Mat(0) != nil {
		t.Fatal("dead bytes must map to a nil matrix")
	}
	if tt.ClassOf('a') == tt.ClassOf('b') {
		t.Fatal("'a' and 'b' must fall in different classes")
	}
}

// TestTableBuildCountMonotonic: the build counter observes each
// construction exactly once.
func TestTableBuildCountMonotonic(t *testing.T) {
	a := rgx.MustCompilePattern(`x{a}`)
	tr, cl := trimmedWithClosures(t, a)
	before := vsa.TableBuildCount()
	vsa.NewTransitionTable(tr, cl)
	vsa.NewTransitionTable(tr, cl)
	if got := vsa.TableBuildCount() - before; got != 2 {
		t.Fatalf("counter advanced by %d, want 2", got)
	}
}
