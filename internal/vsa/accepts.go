package vsa

import (
	"fmt"

	"spanjoin/internal/bitset"
	"spanjoin/internal/span"
)

// AcceptsTuple decides whether µ ∈ [[A]](s) for a functional vset-automaton
// without enumerating the result: by §4.1, µ corresponds to a unique
// sequence κ₀…κ_N of variable configurations, so it suffices to simulate A
// on s keeping, at every boundary, only the states whose configuration
// matches κ_i. The test runs in O(n²·|s|) regardless of |[[A]](s)|.
//
// vars fixes the column order of t; it must contain exactly Vars(A).
func AcceptsTuple(a *VSA, s string, vars span.VarList, t span.Tuple) (bool, error) {
	trimmed, ct, err := a.RequireFunctional()
	if err != nil {
		return false, err
	}
	if !vars.Equal(trimmed.Vars) {
		return false, fmt.Errorf("vsa: tuple schema %v does not match automaton variables %v", vars, trimmed.Vars)
	}
	if len(t) != len(vars) {
		return false, fmt.Errorf("vsa: tuple arity %d != |vars| %d", len(t), len(vars))
	}
	n := len(s)
	for _, p := range t {
		if !p.ValidFor(n) {
			return false, nil // not a span of s at all
		}
	}
	if isEmptyVSA(trimmed) {
		return false, nil
	}
	// κ_i: the configuration at boundary i (before reading s[i]), i = 0..N.
	kappa := func(i int) Config {
		cfg := make(Config, len(vars))
		pos := i + 1
		for v, p := range t {
			switch {
			case pos < p.Start:
				cfg[v] = W
			case pos < p.End:
				cfg[v] = O
			default:
				cfg[v] = C
			}
		}
		return cfg
	}
	cl := trimmed.NewClosures()
	ns := trimmed.NumStates()
	// cfgMask[key] = bitset of states whose configuration has that key, so
	// "restrict the reached set to configuration κ" is one AND.
	cfgMask := make(map[string]bitset.Row)
	for q := 0; q < ns; q++ {
		k := ct.Cfg[q].Key()
		m, ok := cfgMask[k]
		if !ok {
			m = bitset.NewRow(ns)
			cfgMask[k] = m
		}
		m.Set(int32(q))
	}
	restrict := func(r bitset.Row, want Config) {
		if m, ok := cfgMask[want.Key()]; ok {
			r.And(m)
		} else {
			r.Zero()
		}
	}
	cur := bitset.NewRow(ns)
	next := bitset.NewRow(ns)
	cur.CopyFrom(cl.VEB.Row(int(trimmed.Init)))
	restrict(cur, kappa(0))
	for i := 0; i < n; i++ {
		next.Zero()
		for p := cur.NextOne(0); p >= 0; p = cur.NextOne(p + 1) {
			for _, tr := range trimmed.Adj[p] {
				if tr.Kind != KChar || !tr.Class.Contains(s[i]) {
					continue
				}
				next.Or(cl.VEB.Row(int(tr.To)))
			}
		}
		restrict(next, kappa(i+1))
		if !next.Any() {
			return false, nil
		}
		cur, next = next, cur
	}
	return cur.Test(trimmed.Final), nil
}
