package vsa

import (
	"fmt"

	"spanjoin/internal/span"
)

// AcceptsTuple decides whether µ ∈ [[A]](s) for a functional vset-automaton
// without enumerating the result: by §4.1, µ corresponds to a unique
// sequence κ₀…κ_N of variable configurations, so it suffices to simulate A
// on s keeping, at every boundary, only the states whose configuration
// matches κ_i. The test runs in O(n²·|s|) regardless of |[[A]](s)|.
//
// vars fixes the column order of t; it must contain exactly Vars(A).
func AcceptsTuple(a *VSA, s string, vars span.VarList, t span.Tuple) (bool, error) {
	trimmed, ct, err := a.RequireFunctional()
	if err != nil {
		return false, err
	}
	if !vars.Equal(trimmed.Vars) {
		return false, fmt.Errorf("vsa: tuple schema %v does not match automaton variables %v", vars, trimmed.Vars)
	}
	if len(t) != len(vars) {
		return false, fmt.Errorf("vsa: tuple arity %d != |vars| %d", len(t), len(vars))
	}
	n := len(s)
	for _, p := range t {
		if !p.ValidFor(n) {
			return false, nil // not a span of s at all
		}
	}
	if isEmptyVSA(trimmed) {
		return false, nil
	}
	// κ_i: the configuration at boundary i (before reading s[i]), i = 0..N.
	kappa := func(i int) Config {
		cfg := make(Config, len(vars))
		pos := i + 1
		for v, p := range t {
			switch {
			case pos < p.Start:
				cfg[v] = W
			case pos < p.End:
				cfg[v] = O
			default:
				cfg[v] = C
			}
		}
		return cfg
	}
	cl := trimmed.NewClosures()
	matches := func(states []int32, want Config) []int32 {
		var out []int32
		for _, q := range states {
			if ct.Cfg[q].Equal(want) {
				out = append(out, q)
			}
		}
		return out
	}
	cur := matches(cl.VE[trimmed.Init], kappa(0))
	for i := 0; i < n; i++ {
		want := kappa(i + 1)
		next := make([]bool, trimmed.NumStates())
		for _, p := range cur {
			for _, tr := range trimmed.Adj[p] {
				if tr.Kind != KChar || !tr.Class.Contains(s[i]) {
					continue
				}
				for _, q := range cl.VE[tr.To] {
					next[q] = true
				}
			}
		}
		cur = cur[:0]
		for q, ok := range next {
			if ok && ct.Cfg[q].Equal(want) {
				cur = append(cur, int32(q))
			}
		}
		if len(cur) == 0 {
			return false, nil
		}
	}
	for _, q := range cur {
		if q == trimmed.Final {
			return true, nil
		}
	}
	return false, nil
}
