package vsa_test

import (
	"math/rand"
	"testing"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

func evalVSA(t *testing.T, a *vsa.VSA, s string) []span.Tuple {
	t.Helper()
	_, tuples, err := enum.Eval(a, s)
	if err != nil {
		t.Fatal(err)
	}
	return tuples
}

// relProject computes the relational projection of tuples for comparison.
func relProject(vars, keep span.VarList, tuples []span.Tuple) []span.Tuple {
	kept := vars.Intersect(keep)
	seen := map[string]bool{}
	var out []span.Tuple
	for _, tu := range tuples {
		p := make(span.Tuple, len(kept))
		for i, v := range kept {
			p[i] = tu[vars.Index(v)]
		}
		if !seen[p.Key()] {
			seen[p.Key()] = true
			out = append(out, p)
		}
	}
	return out
}

// relJoin computes the relational natural join of two tuple sets.
func relJoin(v1, v2 span.VarList, t1, t2 []span.Tuple) (span.VarList, []span.Tuple) {
	joint := v1.Union(v2)
	var out []span.Tuple
	seen := map[string]bool{}
	for _, a := range t1 {
		for _, b := range t2 {
			ok := true
			for _, v := range v1.Intersect(v2) {
				if a[v1.Index(v)] != b[v2.Index(v)] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			tu := make(span.Tuple, len(joint))
			for i, v := range joint {
				if k := v1.Index(v); k >= 0 {
					tu[i] = a[k]
				} else {
					tu[i] = b[v2.Index(v)]
				}
			}
			if !seen[tu.Key()] {
				seen[tu.Key()] = true
				out = append(out, tu)
			}
		}
	}
	return joint, out
}

func TestProjectAgainstRelationalSemantics(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a+}y{b+}.*")
	strs := []string{"ab", "aabb", "abab", ""}
	for _, keep := range []span.VarList{
		span.NewVarList("x"),
		span.NewVarList("y"),
		span.NewVarList("x", "y"),
		nil,
	} {
		p, err := vsa.Project(a, keep)
		if err != nil {
			t.Fatal(err)
		}
		if !p.IsFunctional() {
			t.Fatalf("projection to %v not functional", keep)
		}
		for _, s := range strs {
			got := evalVSA(t, p, s)
			want := relProject(a.Vars, keep, evalVSA(t, a, s))
			if !oracle.EqualTupleSets(got, want) {
				t.Errorf("π_%v on %q: got %v, want %v", keep, s, got, want)
			}
		}
	}
}

func TestProjectRequiresFunctional(t *testing.T) {
	if _, err := vsa.Project(example26A(), nil); err == nil {
		t.Error("projection of a non-functional automaton must fail")
	}
}

func TestUnionAgainstRelationalSemantics(t *testing.T) {
	a1 := rgx.MustCompilePattern(".*x{a}.*")
	a2 := rgx.MustCompilePattern(".*x{b}.*")
	a3 := rgx.MustCompilePattern("x{.*}")
	u, err := vsa.Union(a1, a2, a3)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsFunctional() {
		t.Fatal("union not functional")
	}
	for _, s := range []string{"", "a", "ab", "ba", "bb"} {
		seen := map[string]bool{}
		var want []span.Tuple
		for _, ai := range []*vsa.VSA{a1, a2, a3} {
			for _, tu := range evalVSA(t, ai, s) {
				if !seen[tu.Key()] {
					seen[tu.Key()] = true
					want = append(want, tu)
				}
			}
		}
		got := evalVSA(t, u, s)
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("union on %q: got %v, want %v", s, got, want)
		}
	}
}

func TestUnionRequiresSameVars(t *testing.T) {
	a1 := rgx.MustCompilePattern("x{a}")
	a2 := rgx.MustCompilePattern("y{a}")
	if _, err := vsa.Union(a1, a2); err == nil {
		t.Error("union with different variable sets must fail")
	}
	if _, err := vsa.Union(); err == nil {
		t.Error("empty union must fail")
	}
}

func TestJoinAgainstRelationalSemantics(t *testing.T) {
	cases := []struct {
		p1, p2 string
		strs   []string
	}{
		// Disjoint variables: cross product filtered by the shared string.
		{".*x{a}.*", ".*y{b}.*", []string{"ab", "ba", "aabb", ""}},
		// Shared variable: spans must coincide exactly.
		{".*x{a+}.*", ".*x{aa}.*", []string{"aa", "aaa", "a"}},
		// Shared + private variables.
		{".*x{a}y{b}.*", ".*y{b}z{a}.*", []string{"aba", "abba", "ab"}},
		// The paper's subspan formula joined with a token extractor.
		{".*x{.*y{.*}.*}.*", ".*y{ab}.*", []string{"ab", "aab", "abb"}},
		// Empty-span interplay.
		{"x{}.*", ".*x{}", []string{"", "a", "ab"}},
		// Variables opened/closed at the same boundary in different orders.
		{"x{y{a}}", "y{x{a}}", []string{"a", "aa"}},
	}
	for _, tc := range cases {
		a1 := rgx.MustCompilePattern(tc.p1)
		a2 := rgx.MustCompilePattern(tc.p2)
		j, err := vsa.Join(a1, a2)
		if err != nil {
			t.Fatalf("join(%q,%q): %v", tc.p1, tc.p2, err)
		}
		if !j.IsFunctional() {
			t.Fatalf("join(%q,%q) not functional", tc.p1, tc.p2)
		}
		for _, s := range tc.strs {
			wantVars, want := relJoin(a1.Vars, a2.Vars, evalVSA(t, a1, s), evalVSA(t, a2, s))
			if !j.Vars.Equal(wantVars) {
				t.Fatalf("join vars %v, want %v", j.Vars, wantVars)
			}
			got := evalVSA(t, j, s)
			if !oracle.EqualTupleSets(got, want) {
				t.Errorf("join(%q,%q) on %q: got %v, want %v", tc.p1, tc.p2, s, got, want)
			}
		}
	}
}

func TestJoinCommutes(t *testing.T) {
	a1 := rgx.MustCompilePattern(".*x{a+}y{b}.*")
	a2 := rgx.MustCompilePattern(".*y{b}z{a*}.*")
	j12, err := vsa.Join(a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	j21, err := vsa.Join(a2, a1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"ab", "aba", "abaa", "ba"} {
		g1 := evalVSA(t, j12, s)
		g2 := evalVSA(t, j21, s)
		if !oracle.EqualTupleSets(g1, g2) {
			t.Errorf("join not commutative on %q: %v vs %v", s, g1, g2)
		}
	}
}

func TestJoinWithEmptySide(t *testing.T) {
	a1 := rgx.MustCompilePattern("x{a}")
	empty := vsa.New(span.NewVarList("y"))
	j, err := vsa.Join(a1, empty)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Vars.Equal(span.NewVarList("x", "y")) {
		t.Errorf("join vars = %v", j.Vars)
	}
	if got := evalVSA(t, j, "a"); len(got) != 0 {
		t.Errorf("join with ∅ produced %v", got)
	}
}

func TestJoinRandomAgainstRelationalSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	pats := []string{
		".*x{a+}.*", ".*x{a}y{.}.*", "x{.*}", ".*y{b?}.*", ".*x{.}.*y{.}.*",
		"y{.*}", ".*x{ab}.*", ".*y{a|b}.*",
	}
	for i := 0; i < 40; i++ {
		p1 := pats[r.Intn(len(pats))]
		p2 := pats[r.Intn(len(pats))]
		a1 := rgx.MustCompilePattern(p1)
		a2 := rgx.MustCompilePattern(p2)
		j, err := vsa.Join(a1, a2)
		if err != nil {
			t.Fatal(err)
		}
		s := randStr(r, r.Intn(4))
		wantVars, want := relJoin(a1.Vars, a2.Vars, evalVSA(t, a1, s), evalVSA(t, a2, s))
		_ = wantVars
		got := evalVSA(t, j, s)
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("join(%q,%q) on %q: got %d tuples, want %d", p1, p2, s, len(got), len(want))
		}
	}
}

func TestJoinAllAssociative(t *testing.T) {
	ps := []string{".*x{a}.*", ".*y{b}.*", ".*z{.}.*"}
	as := make([]*vsa.VSA, len(ps))
	for i, p := range ps {
		as[i] = rgx.MustCompilePattern(p)
	}
	j1, err := vsa.JoinAll(as...)
	if err != nil {
		t.Fatal(err)
	}
	j2a, err := vsa.Join(as[1], as[2])
	if err != nil {
		t.Fatal(err)
	}
	j2, err := vsa.Join(as[0], j2a)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"ab", "ba", "abc"} {
		g1 := evalVSA(t, j1, s)
		g2 := evalVSA(t, j2, s)
		if !oracle.EqualTupleSets(g1, g2) {
			t.Errorf("associativity broken on %q", s)
		}
	}
}

func TestFunctionalizeExample26(t *testing.T) {
	a := example26A()
	f := vsa.Functionalize(a)
	if !f.IsFunctional() {
		t.Fatal("Functionalize result not functional")
	}
	for _, s := range []string{"", "a", "aa", "aaa", "ab"} {
		want := oracle.EvalVSA(a, s) // oracle respects validity
		got := evalVSA(t, f, s)
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("on %q: got %v, want %v", s, got, want)
		}
	}
}

func TestFunctionalizeBlowupBound(t *testing.T) {
	// v self-loop variables on a single state: functionalization must stay
	// within n·3^v states.
	for v := 1; v <= 4; v++ {
		vars := make([]string, v)
		for i := range vars {
			vars[i] = string(rune('a'+i)) + "v"
		}
		a := &vsa.VSA{Vars: span.NewVarList(vars...), Adj: make([][]vsa.Tr, 1), Init: 0, Final: 0}
		for i := 0; i < v; i++ {
			a.AddOpen(0, int32(i), 0)
			a.AddClose(0, int32(i), 0)
		}
		a.AddChar(0, alphabet.Single('a'), 0)
		f := vsa.Functionalize(a)
		bound := 1
		for i := 0; i < v; i++ {
			bound *= 3
		}
		if f.NumStates() > bound {
			t.Errorf("v=%d: %d states > 3^v = %d", v, f.NumStates(), bound)
		}
		if !f.IsFunctional() {
			t.Errorf("v=%d: not functional", v)
		}
	}
}

func TestFunctionalizeIdempotentOnFunctional(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a+}y{b}.*")
	f := vsa.Functionalize(a)
	for _, s := range []string{"ab", "aab", "ba"} {
		got := evalVSA(t, f, s)
		want := evalVSA(t, a, s)
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("functionalize changed [[A]] on %q", s)
		}
	}
}

func randStr(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(2))
	}
	return string(b)
}

// TestFunctionalizeRandomAgainstOracle: functionalization of arbitrary
// random automata must preserve [[A]] exactly (the oracle evaluates
// non-functional automata directly by checking ref-word validity).
func TestFunctionalizeRandomAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7777))
	vars := span.NewVarList("x", "y")
	for i := 0; i < 80; i++ {
		raw := oracle.RandomVSA(r, vars, 3, 8)
		f := vsa.Functionalize(raw)
		if !f.IsFunctional() {
			t.Fatalf("trial %d: result not functional", i)
		}
		for _, s := range []string{"", "a", "ab", "ba"} {
			want := oracle.EvalVSA(raw, s)
			got := oracle.EvalVSA(f, s)
			if !oracle.EqualTupleSets(got, want) {
				t.Fatalf("trial %d on %q: functionalize changed the spanner (%d vs %d tuples)",
					i, s, len(got), len(want))
			}
		}
	}
}
