package vsa

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/span"
)

// The on-disk format is a small line-oriented text format:
//
//	vsa1
//	vars <v> <name>...
//	states <n> init <q0> final <qf>
//	e <p> <q>            ε-transition
//	c <p> <q> <hex>      character transition (64 hex chars = 256-bit class)
//	o <p> <var> <q>      open
//	x <p> <var> <q>      close
//	end
//
// It is stable, human-inspectable, diff-friendly, and fast enough for
// compiled-spanner caches.

const encodeMagic = "vsa1"

// ErrBadFormat is returned by Decode for malformed input.
var ErrBadFormat = errors.New("vsa: bad encoding")

// Encode writes the automaton to w in the package's text format.
func (a *VSA) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, encodeMagic)
	fmt.Fprintf(bw, "vars %d", len(a.Vars))
	for _, v := range a.Vars {
		fmt.Fprintf(bw, " %s", v)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "states %d init %d final %d\n", a.NumStates(), a.Init, a.Final)
	for p, ts := range a.Adj {
		for _, t := range ts {
			switch t.Kind {
			case KEps:
				fmt.Fprintf(bw, "e %d %d\n", p, t.To)
			case KChar:
				fmt.Fprintf(bw, "c %d %d %016x%016x%016x%016x\n", p, t.To,
					t.Class[0], t.Class[1], t.Class[2], t.Class[3])
			case KOpen:
				fmt.Fprintf(bw, "o %d %d %d\n", p, t.Var, t.To)
			case KClose:
				fmt.Fprintf(bw, "x %d %d %d\n", p, t.Var, t.To)
			}
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Decode reads an automaton previously written by Encode. Variable names
// containing whitespace are rejected by Encode's format and cannot occur in
// parsed patterns (word characters only).
func Decode(r io.Reader) (*VSA, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscanln(br, &magic); err != nil || magic != encodeMagic {
		return nil, fmt.Errorf("%w: missing %q header", ErrBadFormat, encodeMagic)
	}
	var nv int
	if _, err := fmt.Fscan(br, &magic, &nv); err != nil || magic != "vars" || nv < 0 {
		return nil, fmt.Errorf("%w: vars line", ErrBadFormat)
	}
	names := make([]string, nv)
	for i := range names {
		if _, err := fmt.Fscan(br, &names[i]); err != nil {
			return nil, fmt.Errorf("%w: variable name: %v", ErrBadFormat, err)
		}
	}
	vars := span.NewVarList(names...)
	if len(vars) != nv {
		return nil, fmt.Errorf("%w: duplicate variable names", ErrBadFormat)
	}
	var n int
	var init, final int32
	if _, err := fmt.Fscan(br, &magic, &n); err != nil || magic != "states" || n < 0 {
		return nil, fmt.Errorf("%w: states line", ErrBadFormat)
	}
	if _, err := fmt.Fscan(br, &magic, &init); err != nil || magic != "init" {
		return nil, fmt.Errorf("%w: init field", ErrBadFormat)
	}
	if _, err := fmt.Fscan(br, &magic, &final); err != nil || magic != "final" {
		return nil, fmt.Errorf("%w: final field", ErrBadFormat)
	}
	a := &VSA{Vars: vars, Adj: make([][]Tr, n), Init: init, Final: final}
	if int(init) >= n || int(final) >= n || init < 0 || final < 0 {
		if n > 0 || init != 0 || final != 0 {
			return nil, fmt.Errorf("%w: initial/final state out of range", ErrBadFormat)
		}
	}
	checkState := func(q int32) error {
		if q < 0 || int(q) >= n {
			return fmt.Errorf("%w: state %d out of range", ErrBadFormat, q)
		}
		return nil
	}
	for {
		var kind string
		if _, err := fmt.Fscan(br, &kind); err != nil {
			return nil, fmt.Errorf("%w: truncated (no end marker)", ErrBadFormat)
		}
		if kind == "end" {
			return a, nil
		}
		switch kind {
		case "e":
			var p, q int32
			if _, err := fmt.Fscan(br, &p, &q); err != nil {
				return nil, fmt.Errorf("%w: ε-transition: %v", ErrBadFormat, err)
			}
			if err := errorsJoin(checkState(p), checkState(q)); err != nil {
				return nil, err
			}
			a.AddEps(p, q)
		case "c":
			var p, q int32
			var hex string
			if _, err := fmt.Fscan(br, &p, &q, &hex); err != nil {
				return nil, fmt.Errorf("%w: char transition: %v", ErrBadFormat, err)
			}
			if err := errorsJoin(checkState(p), checkState(q)); err != nil {
				return nil, err
			}
			cls, err := parseClassHex(hex)
			if err != nil {
				return nil, err
			}
			a.AddChar(p, cls, q)
		case "o", "x":
			var p, v, q int32
			if _, err := fmt.Fscan(br, &p, &v, &q); err != nil {
				return nil, fmt.Errorf("%w: variable transition: %v", ErrBadFormat, err)
			}
			if err := errorsJoin(checkState(p), checkState(q)); err != nil {
				return nil, err
			}
			if v < 0 || int(v) >= len(vars) {
				return nil, fmt.Errorf("%w: variable index %d out of range", ErrBadFormat, v)
			}
			if kind == "o" {
				a.AddOpen(p, v, q)
			} else {
				a.AddClose(p, v, q)
			}
		default:
			return nil, fmt.Errorf("%w: unknown record %q", ErrBadFormat, kind)
		}
	}
}

func parseClassHex(hex string) (alphabet.Class, error) {
	var c alphabet.Class
	if len(hex) != 64 {
		return c, fmt.Errorf("%w: class must be 64 hex digits, got %d", ErrBadFormat, len(hex))
	}
	for w := 0; w < 4; w++ {
		var v uint64
		for i := 0; i < 16; i++ {
			d := hex[w*16+i]
			var nib uint64
			switch {
			case d >= '0' && d <= '9':
				nib = uint64(d - '0')
			case d >= 'a' && d <= 'f':
				nib = uint64(d-'a') + 10
			default:
				return c, fmt.Errorf("%w: bad hex digit %q", ErrBadFormat, d)
			}
			v = v<<4 | nib
		}
		c[w] = v
	}
	return c, nil
}

func errorsJoin(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
