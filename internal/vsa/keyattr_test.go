package vsa_test

import (
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

func TestKeyAttributeExamples(t *testing.T) {
	cases := []struct {
		pattern string
		x       string
		want    bool
	}{
		// x determines the whole (single-variable) tuple trivially.
		{"a*x{a*}a*", "x", true},
		// y is pinned to x's right edge: x is a key.
		{".*x{a}y{b}.*", "x", true},
		{".*x{a}y{b}.*", "y", true},
		// x and y are placed independently: neither is a key.
		{".*x{a}.*y{b}.*", "x", false},
		{".*x{a}.*y{b}.*", "y", false},
		// y floats inside x: x is not a key, y is not a key.
		{".*x{a*y{a}a*}.*", "x", false},
		// y fixed relative to x start: both key.
		{".*x{y{a}b}.*", "x", true},
		{".*x{y{a}b}.*", "y", true},
	}
	for _, tc := range cases {
		a := rgx.MustCompilePattern(tc.pattern)
		got, err := vsa.KeyAttribute(a, tc.x)
		if err != nil {
			t.Fatalf("%q/%s: %v", tc.pattern, tc.x, err)
		}
		if got != tc.want {
			t.Errorf("KeyAttribute(%q, %s) = %v, want %v", tc.pattern, tc.x, got, tc.want)
		}
	}
}

// TestKeyAttributeBruteForce cross-checks the product construction against
// the definition on bounded strings: for every s up to length 4 over {a,b},
// no two distinct tuples may share the key variable's span.
func TestKeyAttributeBruteForce(t *testing.T) {
	patterns := []string{
		"a*x{a*}b*",
		".*x{a}y{.}.*",
		".*x{.}.*y{.}.*",
		"x{.*}y{.*}",
		".*x{a+}.*",
		"x{.*}",
		".*x{y{}.*}.*",
	}
	var strs []string
	for n := 0; n <= 4; n++ {
		strs = append(strs, enumerateStrings(n)...)
	}
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for _, x := range a.Vars {
			got, err := vsa.KeyAttribute(a, x)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceKey(t, a, x, strs)
			if got != want {
				t.Errorf("KeyAttribute(%q, %s) = %v, brute force (≤4 chars) says %v", p, x, got, want)
			}
		}
	}
}

func bruteForceKey(t *testing.T, a *vsa.VSA, x string, strs []string) bool {
	t.Helper()
	xi := a.Vars.Index(x)
	for _, s := range strs {
		_, tuples, err := enum.Eval(a, s)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[span.Span]string{}
		for _, tu := range tuples {
			if prev, ok := seen[tu[xi]]; ok && prev != tu.Key() {
				return false
			}
			seen[tu[xi]] = tu.Key()
		}
	}
	return true
}

func enumerateStrings(n int) []string {
	if n == 0 {
		return []string{""}
	}
	var out []string
	for _, s := range enumerateStrings(n - 1) {
		out = append(out, s+"a", s+"b")
	}
	return out
}

func TestHasKeyAttribute(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a}y{b}.*")
	name, ok, err := vsa.HasKeyAttribute(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || name == "" {
		t.Errorf("expected a key attribute, got %q/%v", name, ok)
	}
	b := rgx.MustCompilePattern(".*x{a}.*y{b}.*")
	_, ok, err = vsa.HasKeyAttribute(b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("independent variables should have no key attribute")
	}
}

func TestKeyAttributeUnknownVariable(t *testing.T) {
	a := rgx.MustCompilePattern("x{a}")
	if _, err := vsa.KeyAttribute(a, "nope"); err == nil {
		t.Error("unknown variable must error")
	}
}

func TestKeyAttributeRequiresFunctional(t *testing.T) {
	if _, err := vsa.KeyAttribute(example26A(), "x"); err == nil {
		t.Error("non-functional automaton must error")
	}
}
