package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spanjoin/internal/resilience"
)

// buildDir writes a small but structurally varied data directory — a
// snapshot covering part of the history when withSnap is set, plus a log
// carrying the rest — and returns the ordered document history.
func buildDir(t *testing.T, dir string, seed []byte, withSnap bool) []string {
	t.Helper()
	rec, err := Open(dir, 2, Options{Policy: SyncNever})
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	var history []string
	add := func(doc string) {
		if _, err := rec.Log.Append(uint64ToShard(len(history)), doc); err != nil {
			t.Fatalf("Append: %v", err)
		}
		history = append(history, doc)
	}
	// Derive documents from the seed so the fuzzer steers content (CRC
	// collisions, magic-like bytes inside documents, empty documents).
	for i := 0; i < 4; i++ {
		lo := i * len(seed) / 4
		hi := (i + 1) * len(seed) / 4
		add(string(seed[lo:hi]))
	}
	if withSnap {
		shards := make([][]string, 2)
		for i, d := range history {
			shards[i%2] = append(shards[i%2], d)
		}
		gen, err := rec.Log.Rotate()
		if err != nil {
			t.Fatalf("Rotate: %v", err)
		}
		if err := WriteSnapshot(dir, gen, rec.Log.LastSeq(), shards); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
		rec.Log.Prune(gen)
		add(fmt.Sprintf("post-snapshot %x", seed))
	}
	if err := rec.Log.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return history
}

func uint64ToShard(i int) uint32 { return uint32(i % 2) }

// FuzzRecover mutates a valid data directory and pins recovery's two
// absolute invariants — Open never panics, and never invents a document
// that was not written — plus the torn-tail promise: a truncation-only
// mutation (mutate == false) is crash residue and must recover cleanly
// as a prefix of the history, never as ErrCorrupt.
func FuzzRecover(f *testing.F) {
	f.Add([]byte("some documents for the corpus, split four ways"), uint16(3), byte(0x01), true, false)
	f.Add([]byte("0123456789abcdef0123456789abcdef"), uint16(60), byte(0xff), false, false)
	f.Add([]byte("aaaa"), uint16(9), byte(0x80), true, true)
	f.Add([]byte(""), uint16(0), byte(0x00), false, true)
	f.Fuzz(func(t *testing.T, seed []byte, pos uint16, flip byte, withSnap, mutate bool) {
		dir := t.TempDir()
		history := buildDir(t, dir, seed, withSnap)
		inOriginal := map[string]int{}
		for _, d := range history {
			inOriginal[d]++
		}

		// Mutate the active (highest-generation) log file.
		logs, _, err := listGens(dir)
		if err != nil || len(logs) == 0 {
			t.Fatalf("listGens: %v / %d logs", err, len(logs))
		}
		path := filepath.Join(dir, logName(logs[len(logs)-1]))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if mutate {
			if len(data) > 0 {
				data[int(pos)%len(data)] ^= flip
			}
		} else {
			data = data[:int(pos)%(len(data)+1)]
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		rec, err := Open(dir, 2, Options{})
		if err != nil {
			if mutate {
				// Any typed failure is acceptable for arbitrary damage, but
				// it must be the typed corruption class, not an ad-hoc error.
				if !errors.Is(err, resilience.ErrCorrupt) {
					t.Fatalf("mutation produced an untyped error: %v", err)
				}
				return
			}
			t.Fatalf("truncation (crash residue) must recover, got %v", err)
		}
		defer rec.Log.Close()

		// Never invent: every recovered document was written, no document
		// more often than it was written.
		got := map[string]int{}
		var total int
		for _, sh := range rec.Shards {
			for _, d := range sh {
				got[d]++
				total++
			}
		}
		for d, n := range got {
			if n > inOriginal[d] {
				t.Fatalf("recovery invented document %q (%d > %d)", d, n, inOriginal[d])
			}
		}
		if !mutate {
			// Truncation loses only a suffix: the recovered count is
			// snapshot docs + a prefix of the log, and within each shard the
			// surviving documents appear in their original order.
			want := int(rec.Stats.SnapshotDocs + rec.Stats.Replayed)
			if total != want {
				t.Fatalf("recovered %d docs, stats say %d", total, want)
			}
			perShard := make([][]string, 2)
			for i, d := range history {
				perShard[i%2] = append(perShard[i%2], d)
			}
			for si, sh := range rec.Shards {
				for i, d := range sh {
					if i >= len(perShard[si]) || perShard[si][i] != d {
						t.Fatalf("shard %d position %d: got %q, not a prefix of history", si, i, d)
					}
				}
			}
		}
	})
}
