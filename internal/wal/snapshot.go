package wal

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"spanjoin/internal/resilience"
)

// Snapshot file format:
//
//	8 bytes  magic "SJSNAP\x00\x01"
//	u32      shard count
//	u64      applied sequence number (records ≤ this are in the snapshot)
//	per shard:
//	  u64    document count
//	  per document: u32 length, bytes
//	u32      CRC32-C over everything after the magic
//
// The file is written to a .tmp sibling, fsynced, renamed into place,
// and the directory fsynced — the rename is the commit point, so a
// snapshot either exists completely or not at all. The whole-file
// checksum means recovery either trusts all of it or reports
// resilience.ErrCorrupt; there is no partial snapshot load.

// WriteSnapshot writes snap-<gen>.snap atomically. shards are the
// captured per-shard document prefixes; appliedSeq is the log sequence
// number the capture covers. The caller (the store's snapshot cycle)
// rotated the log to gen before capturing, so record replay over this
// snapshot is idempotent by sequence number.
func WriteSnapshot(dir string, gen, appliedSeq uint64, shards [][]string) (err error) {
	final := filepath.Join(dir, snapName(gen))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	// The magic goes straight to the file — it is not part of the
	// checksummed body.
	if _, err = faultWrite(f, []byte(snapMagic), "snapshot"); err != nil {
		return err
	}
	h := crc32.New(crcTable)
	// Tee the body through the checksum; buffered so per-document writes
	// do not become per-document syscalls. The write failpoint is applied
	// at flush via faultWriter, so torn snapshot writes are injectable.
	fw := &faultWriter{f: f}
	w := bufio.NewWriterSize(io.MultiWriter(fw, h), 1<<20)

	var scratch [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, werr := w.Write(scratch[:4])
		return werr
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, werr := w.Write(scratch[:8])
		return werr
	}
	if err = put32(uint32(len(shards))); err != nil {
		return err
	}
	if err = put64(appliedSeq); err != nil {
		return err
	}
	for _, docs := range shards {
		if err = put64(uint64(len(docs))); err != nil {
			return err
		}
		for _, d := range docs {
			if err = put32(uint32(len(d))); err != nil {
				return err
			}
			if _, err = w.WriteString(d); err != nil {
				return err
			}
		}
	}
	// The trailing checksum is written to the file only (not fed back
	// into the hash): flush the body first so h is complete.
	if err = w.Flush(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], h.Sum32())
	if _, err = faultWrite(f, scratch[:4], "snapshot"); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	resilience.Inject(resilience.CrashSnapBeforeRen, gen)
	if err = os.Rename(tmp, final); err != nil {
		return err
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	resilience.Inject(resilience.CrashSnapAfterRen, gen)
	return nil
}

// faultWriter routes bufio flushes through the snapshot write failpoint.
type faultWriter struct{ f *os.File }

func (fw *faultWriter) Write(b []byte) (int, error) { return faultWrite(fw.f, b, "snapshot") }

// readSnapshot loads a snapshot into shards (created by the caller with
// the store's shard count) and returns the applied sequence number.
// Documents written with a different shard count are re-dealt
// round-robin across the available shards. Every structural or checksum
// failure is resilience.ErrCorrupt — a snapshot is all-or-nothing.
func readSnapshot(path string, shards [][]string) (appliedSeq uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	base := filepath.Base(path)
	if len(data) < len(snapMagic)+4+8+4 || string(data[:len(snapMagic)]) != snapMagic {
		return 0, corruptf("wal: snapshot %s: bad magic or truncated", base)
	}
	body := data[len(snapMagic) : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return 0, corruptf("wal: snapshot %s: checksum mismatch", base)
	}
	off := 0
	need := func(n int) bool { return len(body)-off >= n }
	if !need(12) {
		return 0, corruptf("wal: snapshot %s: truncated header", base)
	}
	count := binary.LittleEndian.Uint32(body[off:])
	off += 4
	appliedSeq = binary.LittleEndian.Uint64(body[off:])
	off += 8
	if count == 0 || count > 1<<20 {
		return 0, corruptf("wal: snapshot %s: impossible shard count %d", base, count)
	}
	redeal := int(count) != len(shards)
	next := 0
	for si := 0; si < int(count); si++ {
		if !need(8) {
			return 0, corruptf("wal: snapshot %s: truncated shard %d header", base, si)
		}
		docs := binary.LittleEndian.Uint64(body[off:])
		off += 8
		if docs > uint64(len(body)) {
			return 0, corruptf("wal: snapshot %s: impossible document count %d in shard %d", base, docs, si)
		}
		for di := uint64(0); di < docs; di++ {
			if !need(4) {
				return 0, corruptf("wal: snapshot %s: truncated document header in shard %d", base, si)
			}
			dlen := binary.LittleEndian.Uint32(body[off:])
			off += 4
			if !need(int(dlen)) {
				return 0, corruptf("wal: snapshot %s: truncated document in shard %d", base, si)
			}
			doc := string(body[off : off+int(dlen)])
			off += int(dlen)
			tgt := si
			if redeal {
				tgt = next % len(shards)
				next++
			}
			shards[tgt] = append(shards[tgt], doc)
		}
	}
	if off != len(body) {
		return 0, corruptf("wal: snapshot %s: %d trailing bytes", base, len(body)-off)
	}
	return appliedSeq, nil
}
