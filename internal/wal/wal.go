// Package wal is the durability layer under the corpus store: a
// checksummed, length-prefixed write-ahead log plus atomically-written
// snapshot files, and the recovery path that rebuilds a sharded document
// store from them after any crash.
//
// The contract is the storage-engine classic — log then ack:
//
//   - Every Add is appended to the log as one CRC32-C-checksummed record
//     (sequence number, shard, document bytes) before the caller is
//     acknowledged; how hard the ack is depends on the fsync policy
//     (SyncAlways: fsynced before the ack; SyncInterval: written to the
//     OS, fsynced by a ticker; SyncNever: written to the OS only).
//   - A snapshot is the store's full state written to a temp file,
//     fsynced, then atomically renamed into place; only after the rename
//     is durable are older logs and snapshots pruned. Snapshots are
//     shard-partitioned so recovery rebuilds the sharded store (and its
//     skip index) directly, and carry the sequence number they cover so
//     log replay over a snapshot is idempotent.
//   - Recovery replays snapshot + log suffix. A torn tail — the residue
//     of a crash mid-append — is detected by the checksum and truncated
//     at the last valid record. Damage that cannot be a torn tail (a bad
//     checksum with intact records after it, a corrupt snapshot) is
//     *corruption*: it surfaces as resilience.ErrCorrupt, never as a
//     panic and never as silently invented or dropped documents.
//
// File layout in the data directory, by generation g:
//
//	wal-<g>.log    records applying on top of snap-<g>.snap (or an
//	               empty store when no snapshot exists)
//	snap-<g>.snap  the store state the moment log g was started
//
// A snapshot cycle rotates the log to generation g+1 first, then writes
// snap-<g+1> from the captured state, then prunes generations ≤ g. A
// crash anywhere in that cycle leaves a recoverable directory: before
// the rename, recovery sees snap-<g> + logs g and g+1 (sequence numbers
// dedupe the overlap); after it, snap-<g+1> + both logs replays to the
// identical store.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"spanjoin/internal/obs"
	"spanjoin/internal/resilience"
)

// SyncPolicy says when an Append's bytes are forced to stable storage
// relative to the moment the Append returns (the "ack").
type SyncPolicy int

const (
	// SyncAlways fsyncs the log before every Append returns: an
	// acknowledged write survives even an operating-system crash. The
	// slowest policy — every ack pays a device flush.
	SyncAlways SyncPolicy = iota
	// SyncInterval writes through to the OS on every Append and fsyncs on
	// a timer (Options.Interval): an acknowledged write survives process
	// death immediately and machine death once the next tick has passed.
	SyncInterval
	// SyncNever writes through to the OS and never fsyncs (except on
	// clean Close): an acknowledged write survives process death but a
	// machine crash may lose the page-cache tail.
	SyncNever
)

// String names the policy the way flags and stats report it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy is String's inverse, for flag parsing.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("bad fsync policy %q (want always, interval or never)", s)
}

// Options tune a Log.
type Options struct {
	// Policy is the fsync policy (default SyncAlways — durable unless
	// explicitly relaxed).
	Policy SyncPolicy
	// Interval is the SyncInterval tick (default 100ms). The log does not
	// run the ticker itself — the owner calls Sync on this cadence — but
	// records the value for stats.
	Interval time.Duration
	// MaxRecord bounds one record's payload; larger appends (and decoded
	// lengths during recovery) are rejected. Default 1 GiB.
	MaxRecord uint32
}

func (o Options) maxRecord() uint32 {
	if o.MaxRecord == 0 {
		return 1 << 30
	}
	return o.MaxRecord
}

func (o Options) interval() time.Duration {
	if o.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return o.Interval
}

// Record framing. Every record is
//
//	u32 length of payload (little endian)
//	u32 CRC32-C of payload
//	payload = u64 seq | u32 shard | document bytes
//
// and every log file starts with an 8-byte magic. The CRC covers the
// payload, so a bit flip in either header field or the payload fails
// validation; the length field is additionally range-checked (a payload
// is at least the 12-byte seq+shard prefix, at most MaxRecord), so a
// flipped length that frames garbage is caught even when the garbage
// happens to extend to EOF.
const (
	logMagic    = "SJWAL\x00\x01\n"
	recHdrSize  = 8
	recMinBody  = 12
	crcPoly     = crc32.Castagnoli
	snapMagic   = "SJSNAP\x00\x01"
	tmpSuffix   = ".tmp"
	logSuffix   = ".log"
	snapSuffix  = ".snap"
	logPrefix   = "wal-"
	snapPrefix  = "snap-"
	genNameFmt  = "%016x"
	dirModePerm = 0o755
)

var crcTable = crc32.MakeTable(crcPoly)

// Stats are the log's cumulative counters, all monotone, safe to read
// concurrently with appends.
type Stats struct {
	// Appends counts records successfully appended since open.
	Appends uint64
	// AppendBytes counts payload+header bytes appended since open.
	AppendBytes uint64
	// Syncs counts fsyncs issued (policy syncs, explicit Syncs, and the
	// close sync).
	Syncs uint64
	// SyncErrors counts fsyncs that failed; the first one wedges the log.
	SyncErrors uint64
	// Rotations counts snapshot-cycle log rotations since open.
	Rotations uint64
	// Size is the active log file's current size in bytes.
	Size uint64
	// LastSeq is the sequence number of the last record appended (or
	// recovered); 0 before any.
	LastSeq uint64
	// SyncedSeq is the highest sequence number known to be on stable
	// storage (advanced by every successful fsync; equal to LastSeq under
	// SyncAlways).
	SyncedSeq uint64
}

// Log is an open write-ahead log: the append end of the data directory.
// Appends are serialized by the owner (the durable store holds one mutex
// across append+apply); Log itself only guards its counters, so it must
// not be shared between unsynchronized writers.
type Log struct {
	dir string
	opt Options

	f    *os.File
	gen  uint64
	size int64
	seq  uint64 // last appended sequence number
	hdr  [recHdrSize]byte
	buf  []byte // scratch for payload assembly

	// dirty tracks whether bytes were written since the last fsync;
	// wedged is the first unrecoverable I/O error — once set, every
	// subsequent Append and Sync returns it (the log's durability story
	// is broken and pretending otherwise would fabricate acks).
	dirty  bool
	wedged error

	appends     atomic.Uint64
	appendBytes atomic.Uint64
	syncs       atomic.Uint64
	syncErrors  atomic.Uint64
	rotations   atomic.Uint64
	syncedSeq   atomic.Uint64
	lastSeq     atomic.Uint64
	sizeAtomic  atomic.Uint64

	// appendObs/syncObs, when installed (SetObs), receive every append's
	// write duration (excluding the policy fsync) and every fsync's
	// duration; lastSync remembers the most recent fsync's duration so
	// the owner — which serializes appends under its own mutex — can
	// attribute it to the query that paid it.
	appendObs *obs.Histogram
	syncObs   *obs.Histogram
	lastSync  atomic.Int64
}

// SetObs installs the append and fsync duration histograms. Call before
// the log serves appends; either may be nil.
func (l *Log) SetObs(appendHist, syncHist *obs.Histogram) {
	l.appendObs, l.syncObs = appendHist, syncHist
}

// LastSyncDuration reports the duration of the most recent successful
// fsync. Under the owner's append lock this is exactly the fsync the
// current SyncAlways append paid.
func (l *Log) LastSyncDuration() time.Duration {
	return time.Duration(l.lastSync.Load())
}

// Policy reports the configured fsync policy.
func (l *Log) Policy() SyncPolicy { return l.opt.Policy }

// Interval reports the configured (or default) sync interval.
func (l *Log) Interval() time.Duration { return l.opt.interval() }

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:     l.appends.Load(),
		AppendBytes: l.appendBytes.Load(),
		Syncs:       l.syncs.Load(),
		SyncErrors:  l.syncErrors.Load(),
		Rotations:   l.rotations.Load(),
		Size:        l.sizeAtomic.Load(),
		LastSeq:     l.lastSeq.Load(),
		SyncedSeq:   l.syncedSeq.Load(),
	}
}

// Size reports the active log file's size in bytes (header included).
func (l *Log) Size() int64 { return int64(l.sizeAtomic.Load()) }

// LastSeq reports the last appended (or recovered) sequence number.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// Gen reports the active generation.
func (l *Log) Gen() uint64 { return l.gen }

func logName(gen uint64) string  { return logPrefix + fmt.Sprintf(genNameFmt, gen) + logSuffix }
func snapName(gen uint64) string { return snapPrefix + fmt.Sprintf(genNameFmt, gen) + snapSuffix }

// parseGen extracts the generation from a wal-/snap- file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var g uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], genNameFmt, &g); err != nil {
		return 0, false
	}
	return g, true
}

// Append writes one record — log-then-ack's "log" half — and returns its
// sequence number. The bytes are on the file (and, under SyncAlways, on
// stable storage) when Append returns; the caller applies the document
// to the in-memory store only after. Returns the wedging error once the
// log has hit an unrecoverable I/O failure.
func (l *Log) Append(shard uint32, doc string) (uint64, error) {
	if l.wedged != nil {
		return 0, l.wedged
	}
	if uint64(len(doc))+recMinBody > uint64(l.opt.maxRecord()) {
		return 0, fmt.Errorf("wal: document of %d bytes exceeds the %d-byte record cap", len(doc), l.opt.maxRecord())
	}
	seq := l.seq + 1
	t0 := time.Now()

	need := recHdrSize + recMinBody + len(doc)
	if cap(l.buf) < need {
		l.buf = make([]byte, 0, need+need/2)
	}
	b := l.buf[:recHdrSize]
	binary.LittleEndian.PutUint32(b[0:4], uint32(recMinBody+len(doc)))
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // seq
	binary.LittleEndian.PutUint64(b[recHdrSize:], seq)
	b = append(b, 0, 0, 0, 0) // shard
	binary.LittleEndian.PutUint32(b[recHdrSize+8:], shard)
	b = append(b, doc...)
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[recHdrSize:], crcTable))

	resilience.Inject(resilience.CrashBeforeAppend, seq)
	n, err := l.write(b, "append")
	resilience.Inject(resilience.CrashAfterAppend, seq)
	l.size += int64(n)
	l.sizeAtomic.Store(uint64(l.size))
	if err != nil {
		// A partial record on the file is exactly a torn tail: recovery
		// truncates it. But this process's view of the log is now past
		// repair — wedge so no later append frames a record behind the
		// garbage.
		l.wedged = fmt.Errorf("wal: append failed, log wedged: %w", err)
		return 0, l.wedged
	}
	l.seq = seq
	l.dirty = true
	l.lastSeq.Store(seq)
	l.appends.Add(1)
	l.appendBytes.Add(uint64(len(b)))
	l.appendObs.Since(t0)
	if l.opt.Policy == SyncAlways {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// write is the failpoint-instrumented file write shared by appends and
// snapshot writes; it returns the bytes actually written.
func (l *Log) write(b []byte, op string) (int, error) {
	return faultWrite(l.f, b, op)
}

// faultWrite writes b to f, honoring an armed wal/io write failpoint:
// the action may shorten the write (torn-write simulation) or fail it.
func faultWrite(f *os.File, b []byte, op string) (int, error) {
	fault := resilience.IOFault{Op: op, N: len(b), ShortenTo: -1}
	name := resilience.FailWALWrite
	if op == "snapshot" {
		name = resilience.FailSnapWrite
	}
	resilience.Inject(name, &fault)
	if fault.ShortenTo >= 0 && fault.ShortenTo < len(b) {
		n, err := f.Write(b[:fault.ShortenTo])
		if err == nil {
			err = fault.Err
			if err == nil {
				err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(b))
			}
		}
		return n, err
	}
	if fault.Err != nil {
		return 0, fault.Err
	}
	return f.Write(b)
}

// Sync forces appended bytes to stable storage. A failed fsync wedges
// the log: after a sync error the kernel may have dropped the dirty
// pages, so the durability of every unacked byte is unknown and further
// acks would be lies.
func (l *Log) Sync() error {
	if l.wedged != nil {
		return l.wedged
	}
	if !l.dirty {
		return nil
	}
	fault := resilience.IOFault{Op: "sync"}
	resilience.Inject(resilience.FailWALSync, &fault)
	t0 := time.Now()
	err := fault.Err
	if err == nil {
		err = l.f.Sync()
	}
	d := time.Since(t0)
	if err != nil {
		l.syncErrors.Add(1)
		l.wedged = fmt.Errorf("wal: fsync failed, log wedged: %w", err)
		return l.wedged
	}
	l.dirty = false
	l.syncs.Add(1)
	l.syncedSeq.Store(l.seq)
	l.syncObs.Observe(d)
	l.lastSync.Store(int64(d))
	return nil
}

// Rotate starts generation gen+1: a fresh log file becomes the append
// target and the old one is left for the snapshot cycle to prune. Called
// by the store under its append lock, so the captured store state and
// the rotation point agree.
func (l *Log) Rotate() (newGen uint64, err error) {
	if l.wedged != nil {
		return 0, l.wedged
	}
	// The outgoing log must be durable before the snapshot that will
	// supersede it starts from its state.
	if err := l.Sync(); err != nil {
		return 0, err
	}
	gen := l.gen + 1
	f, err := createLogFile(l.dir, gen)
	if err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		f.Close()
		l.wedged = fmt.Errorf("wal: closing rotated log: %w", err)
		return 0, l.wedged
	}
	l.f, l.gen = f, gen
	l.size = int64(len(logMagic))
	l.sizeAtomic.Store(uint64(l.size))
	l.dirty = false
	l.rotations.Add(1)
	return gen, nil
}

// createLogFile creates wal-<gen>.log with its magic header, fsynced so
// the file frames correctly even if the process dies immediately after.
func createLogFile(dir string, gen uint64) (*os.File, error) {
	path := filepath.Join(dir, logName(gen))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(logMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Prune removes snapshots and logs of generations strictly below keep —
// the final step of a snapshot cycle, safe because snap-<keep> is
// durable by the time it runs. Best-effort: a file that refuses to die
// costs disk, not correctness (recovery dedupes by sequence number).
func (l *Log) Prune(keep uint64) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		g, ok := parseGen(name, logPrefix, logSuffix)
		if !ok {
			g, ok = parseGen(name, snapPrefix, snapSuffix)
		}
		if ok && g < keep {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
}

// Close syncs (so a clean shutdown is durable regardless of policy) and
// closes the log file. The wedging error, if any, is returned — but the
// file is closed either way.
func (l *Log) Close() error {
	err := l.Sync()
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a machine crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// listGens scans the directory for log and snapshot generations.
func listGens(dir string) (logs, snaps []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), logPrefix, logSuffix); ok {
			logs = append(logs, g)
		}
		if g, ok := parseGen(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, g)
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return logs, snaps, nil
}
