//go:build failpoints

package wal

import (
	"errors"
	"fmt"
	"testing"

	"spanjoin/internal/resilience"
)

// TestShortWriteWedgesLog injects a torn write into an append: the
// record's prefix reaches the file, the append fails, and the log wedges
// — no later append may frame a record behind the garbage.
func TestShortWriteWedgesLog(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	dir := rec.Log.dir
	if _, err := rec.Log.Append(0, "before fault"); err != nil {
		t.Fatal(err)
	}

	calls := 0
	disarm := resilience.Enable(resilience.FailWALWrite, func(arg any) {
		f := arg.(*resilience.IOFault)
		if f.Op == "append" && calls == 0 {
			f.ShortenTo = f.N / 2
			calls++
		}
	})
	_, err := rec.Log.Append(0, "torn by the failpoint")
	disarm()
	if err == nil {
		t.Fatal("append survived an injected short write")
	}
	// Wedged: the same error again, without the failpoint armed.
	if _, err2 := rec.Log.Append(0, "after fault"); err2 == nil {
		t.Fatal("append succeeded on a wedged log")
	}
	rec.Log.Close()

	// Recovery treats the injected partial record as a torn tail.
	rec2, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatalf("recovery after short write: %v", err)
	}
	defer rec2.Log.Close()
	if rec2.Stats.TornBytes == 0 {
		t.Fatal("TornBytes = 0, want the injected partial record")
	}
	if len(rec2.Shards[0]) != 1 || rec2.Shards[0][0] != "before fault" {
		t.Fatalf("docs = %v, want exactly the pre-fault doc", rec2.Shards[0])
	}
}

// TestFsyncErrorWedgesLog injects an fsync failure under SyncAlways: the
// append is not acknowledged, the error is counted, and the log wedges.
func TestFsyncErrorWedgesLog(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncAlways})
	defer rec.Log.Close()

	boom := errors.New("device lied")
	disarm := resilience.Enable(resilience.FailWALSync, func(arg any) {
		arg.(*resilience.IOFault).Err = boom
	})
	_, err := rec.Log.Append(0, "never acked")
	disarm()
	if !errors.Is(err, boom) {
		t.Fatalf("append err = %v, want the injected fsync error", err)
	}
	if got := rec.Log.Stats().SyncErrors; got != 1 {
		t.Fatalf("SyncErrors = %d, want 1", got)
	}
	if _, err := rec.Log.Append(0, "after"); err == nil {
		t.Fatal("append succeeded on a wedged log")
	}
	if err := rec.Log.Sync(); err == nil {
		t.Fatal("sync succeeded on a wedged log")
	}
}

// TestSnapshotWriteFaultLeavesNoFile injects failures into the snapshot
// write path: WriteSnapshot must fail without leaving a visible snapshot
// or a stray temp file, and the previous snapshot must stay in force.
func TestSnapshotWriteFaultLeavesNoFile(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	dir := rec.Log.dir
	for i := 0; i < 3; i++ {
		if _, err := rec.Log.Append(0, fmt.Sprintf("doc %d", i)); err != nil {
			t.Fatal(err)
		}
	}

	boom := errors.New("disk full")
	disarm := resilience.Enable(resilience.FailSnapWrite, func(arg any) {
		arg.(*resilience.IOFault).Err = boom
	})
	err := WriteSnapshot(dir, 0, 3, [][]string{{"doc 0", "doc 1", "doc 2"}})
	disarm()
	if !errors.Is(err, boom) {
		t.Fatalf("WriteSnapshot err = %v, want the injected write error", err)
	}
	rec.Log.Close()

	// Recovery falls back to pure log replay: nothing lost, nothing stale.
	rec2, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatalf("recovery after failed snapshot: %v", err)
	}
	defer rec2.Log.Close()
	if rec2.Stats.SnapshotDocs != 0 {
		t.Fatalf("SnapshotDocs = %d, want 0 (failed snapshot must not be visible)", rec2.Stats.SnapshotDocs)
	}
	if got := len(rec2.Shards[0]); got != 3 {
		t.Fatalf("recovered %d docs from the log, want 3", got)
	}
}

// TestSnapshotShortWriteIsCaught injects a torn snapshot write: the temp
// file is short, the write errors, and no rename happens.
func TestSnapshotShortWriteIsCaught(t *testing.T) {
	dir := t.TempDir()
	disarm := resilience.Enable(resilience.FailSnapWrite, func(arg any) {
		f := arg.(*resilience.IOFault)
		if f.N > 4 {
			f.ShortenTo = f.N / 2
		}
	})
	err := WriteSnapshot(dir, 0, 2, [][]string{{"alpha", "beta"}})
	disarm()
	if err == nil {
		t.Fatal("WriteSnapshot survived an injected short write")
	}
	rec, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatalf("Open after torn snapshot write: %v", err)
	}
	defer rec.Log.Close()
	if rec.Stats.SnapshotDocs != 0 || len(rec.Shards[0]) != 0 {
		t.Fatalf("torn snapshot write became visible: %+v", rec.Stats)
	}
}
