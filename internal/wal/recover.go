package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"spanjoin/internal/resilience"
)

// RecoveryStats describes what Open found and repaired.
type RecoveryStats struct {
	// SnapshotDocs is the number of documents loaded from the snapshot
	// (0 when no snapshot exists).
	SnapshotDocs uint64
	// SnapshotGen is the generation of the snapshot loaded; 0 with no
	// snapshot.
	SnapshotGen uint64
	// Replayed counts log records applied on top of the snapshot.
	Replayed uint64
	// Skipped counts log records dropped as duplicates — their sequence
	// number was already covered by the snapshot (the idempotence path a
	// crash between snapshot rename and log pruning exercises).
	Skipped uint64
	// TornBytes is how many trailing bytes were truncated as a torn tail
	// across all replayed logs (0 on a clean shutdown).
	TornBytes uint64
	// LastSeq is the store's sequence number after recovery.
	LastSeq uint64
}

// Recovered is the outcome of Open: per-shard document lists ready to
// become the store's shards, the stats, and the live Log positioned to
// append.
type Recovered struct {
	Shards [][]string
	Stats  RecoveryStats
	Log    *Log
}

// corruptf builds a typed corruption error: errors.Is(err,
// resilience.ErrCorrupt) holds for every mid-log or snapshot validation
// failure Open reports.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, resilience.ErrCorrupt)...)
}

// Open recovers the data directory and returns the rebuilt shards plus
// the log opened for append. A fresh (empty or missing) directory is
// created and yields an empty store. shards fixes the store's shard
// count; a snapshot written with a different count is re-dealt
// round-robin, so the count is a tuning knob, not a format commitment.
//
// Failure modes, deliberately distinct:
//   - a torn log tail (crash residue) is truncated silently and counted
//     in Stats.TornBytes;
//   - anything else structurally wrong — checksum failures with intact
//     records after them, corrupt snapshots, impossible record framing —
//     returns an error matching resilience.ErrCorrupt and no Recovered;
//   - Open never panics on any byte content (fuzzed).
func Open(dir string, shards int, opt Options) (*Recovered, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("wal: shard count must be positive, got %d", shards)
	}
	if err := os.MkdirAll(dir, dirModePerm); err != nil {
		return nil, err
	}
	// Crash residue from an interrupted snapshot write is never valid
	// state — the rename is the commit point — so clear temp files first.
	clearTemps(dir)

	logs, snaps, err := listGens(dir)
	if err != nil {
		return nil, err
	}

	rec := &Recovered{Shards: make([][]string, shards)}
	var appliedSeq uint64
	if len(snaps) > 0 {
		gen := snaps[len(snaps)-1]
		appliedSeq, err = readSnapshot(filepath.Join(dir, snapName(gen)), rec.Shards)
		if err != nil {
			return nil, err
		}
		rec.Stats.SnapshotGen = gen
		for _, sh := range rec.Shards {
			rec.Stats.SnapshotDocs += uint64(len(sh))
		}
	}

	// Replay every log at or above the snapshot generation, oldest
	// first. Logs below the snapshot generation are fully covered by it
	// (the snapshot cycle rotates before it captures), but replaying
	// them would be harmless too — the sequence check drops duplicates.
	lastSeq := appliedSeq
	activeGen := rec.Stats.SnapshotGen
	for _, gen := range logs {
		if gen < rec.Stats.SnapshotGen {
			continue
		}
		path := filepath.Join(dir, logName(gen))
		tail := gen == logs[len(logs)-1]
		torn, err := replayLog(path, opt.maxRecord(), tail, func(seq uint64, shard uint32, doc string) error {
			if seq <= appliedSeq {
				rec.Stats.Skipped++
				return nil
			}
			if seq != lastSeq+1 {
				// Replay must be gapless past the snapshot point: appends
				// number records consecutively, so a hole means a record
				// the log once acked is gone.
				return corruptf("wal: sequence gap, %d follows %d in %s", seq, lastSeq, filepath.Base(path))
			}
			if int(shard) >= shards {
				// Shard indexes beyond the count mean the directory was
				// written with more shards than we were asked to open
				// with; re-deal deterministically instead of failing.
				shard = shard % uint32(shards)
			}
			rec.Shards[shard] = append(rec.Shards[shard], doc)
			rec.Stats.Replayed++
			lastSeq = seq
			return nil
		})
		if err != nil {
			return nil, err
		}
		rec.Stats.TornBytes += uint64(torn)
		if gen > activeGen {
			activeGen = gen
		}
	}
	rec.Stats.LastSeq = lastSeq

	// Open (or create) the active log for append, truncating any torn
	// tail so new records frame cleanly after the last valid one.
	l := &Log{dir: dir, opt: opt, gen: activeGen, seq: lastSeq}
	path := filepath.Join(dir, logName(activeGen))
	if _, statErr := os.Stat(path); statErr != nil {
		if l.f, err = createLogFile(dir, activeGen); err != nil {
			return nil, err
		}
		l.size = int64(len(logMagic))
	} else {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return nil, err
		}
		valid, err := validPrefixLen(path, opt.maxRecord())
		if err != nil {
			f.Close()
			return nil, err
		}
		if valid < int64(len(logMagic)) {
			// The crash hit during this log file's creation and even the
			// magic is incomplete — recreate the file rather than framing
			// records behind a partial header.
			f.Close()
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			if l.f, err = createLogFile(dir, activeGen); err != nil {
				return nil, err
			}
			l.size = int64(len(logMagic))
		} else {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, err
			}
			if _, err := f.Seek(valid, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			l.f, l.size = f, valid
		}
	}
	l.sizeAtomic.Store(uint64(l.size))
	l.lastSeq.Store(lastSeq)
	l.syncedSeq.Store(lastSeq)
	rec.Log = l
	return rec, nil
}

// clearTemps removes *.tmp files — interrupted snapshot writes.
func clearTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == tmpSuffix {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// errTorn is replay's internal marker for a decode failure that is
// consistent with a crash mid-append: everything from the failure offset
// to EOF is the torn tail. Never escapes this package.
var errTorn = errors.New("wal: torn tail")

// replayLog decodes one log file, calling apply for every valid record.
// tail says this is the final (active) log: only there is a trailing
// decode failure accepted as a torn tail — an interior log was rotated
// away by a completed snapshot cycle, so damage in it is corruption
// regardless of position. Returns how many trailing bytes were torn.
func replayLog(path string, maxRecord uint32, tail bool, apply func(seq uint64, shard uint32, doc string) error) (torn int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(logMagic) {
		if tail && prefixOf(data, []byte(logMagic)) {
			// The crash hit during file creation, before the magic was
			// complete; the file holds nothing.
			return int64(len(data)), nil
		}
		return 0, corruptf("wal: %s: truncated magic", filepath.Base(path))
	}
	if string(data[:len(logMagic)]) != logMagic {
		return 0, corruptf("wal: %s: bad magic", filepath.Base(path))
	}
	off := len(logMagic)
	for off < len(data) {
		n, seq, shard, doc, derr := decodeRecord(data[off:], maxRecord)
		if derr != nil {
			if errors.Is(derr, errTorn) && tail {
				return int64(len(data) - off), nil
			}
			return 0, corruptf("wal: %s at offset %d: %v", filepath.Base(path), off, derr)
		}
		if err := apply(seq, shard, doc); err != nil {
			return 0, err
		}
		off += n
	}
	return 0, nil
}

// prefixOf reports whether data is a (possibly empty) prefix of full.
func prefixOf(data, full []byte) bool {
	return len(data) <= len(full) && string(data) == string(full[:len(data)])
}

// decodeRecord decodes one record from the head of b. It returns errTorn
// (wrapped) for failures explainable as a crash mid-append — a write is
// a prefix of header+payload, so the damage set is: short header, short
// payload, or a checksum mismatch on the record that reaches EOF. A
// checksum failure with bytes after the framed record, or a length no
// append could have written, is real corruption.
func decodeRecord(b []byte, maxRecord uint32) (n int, seq uint64, shard uint32, doc string, err error) {
	if len(b) < recHdrSize {
		return 0, 0, 0, "", fmt.Errorf("short header (%d bytes): %w", len(b), errTorn)
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if length < recMinBody || length > maxRecord {
		if allZero(b) {
			// A zero-filled tail is filesystem crash residue (size
			// extended, data blocks never written): torn, not corrupt.
			return 0, 0, 0, "", fmt.Errorf("zero-filled tail: %w", errTorn)
		}
		return 0, 0, 0, "", fmt.Errorf("impossible record length %d", length)
	}
	end := recHdrSize + int(length)
	if len(b) < end {
		return 0, 0, 0, "", fmt.Errorf("short payload (%d of %d bytes): %w", len(b)-recHdrSize, length, errTorn)
	}
	payload := b[recHdrSize:end]
	if crc32.Checksum(payload, crcTable) != sum {
		if len(b) == end {
			// The bad record is the file's last: consistent with a torn
			// write whose tail the filesystem zero- or garbage-filled.
			return 0, 0, 0, "", fmt.Errorf("checksum mismatch on final record: %w", errTorn)
		}
		return 0, 0, 0, "", fmt.Errorf("checksum mismatch with %d intact bytes after the record", len(b)-end)
	}
	seq = binary.LittleEndian.Uint64(payload[0:8])
	shard = binary.LittleEndian.Uint32(payload[8:12])
	return end, seq, shard, string(payload[12:]), nil
}

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// validPrefixLen re-walks a log file and returns the byte length of its
// valid prefix — where the append end resumes after truncating the torn
// tail. The file was already replayed, so failures here are torn-tail
// only.
func validPrefixLen(path string, maxRecord uint32) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(logMagic) {
		return int64(len(data)), nil
	}
	off := len(logMagic)
	for off < len(data) {
		n, _, _, _, derr := decodeRecord(data[off:], maxRecord)
		if derr != nil {
			break
		}
		off += n
	}
	return int64(off), nil
}
