package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spanjoin/internal/resilience"
)

// openEmpty opens a fresh directory and fails the test on error.
func openEmpty(t *testing.T, shards int, opt Options) *Recovered {
	t.Helper()
	rec, err := Open(t.TempDir(), shards, opt)
	if err != nil {
		t.Fatalf("Open fresh dir: %v", err)
	}
	return rec
}

// reopen closes the log and recovers the directory again.
func reopen(t *testing.T, rec *Recovered, shards int, opt Options) *Recovered {
	t.Helper()
	if err := rec.Log.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec2, err := Open(rec.Log.dir, shards, opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return rec2
}

func TestFreshDirIsEmpty(t *testing.T) {
	rec := openEmpty(t, 4, Options{})
	defer rec.Log.Close()
	if rec.Stats.Replayed != 0 || rec.Stats.SnapshotDocs != 0 || rec.Stats.LastSeq != 0 {
		t.Fatalf("fresh dir not empty: %+v", rec.Stats)
	}
	for si, docs := range rec.Shards {
		if len(docs) != 0 {
			t.Fatalf("shard %d has %d docs in a fresh dir", si, len(docs))
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	rec := openEmpty(t, 3, Options{Policy: SyncNever})
	docs := []string{"alpha", "", "gamma with spaces", "δδδ utf8", "last"}
	for i, d := range docs {
		seq, err := rec.Log.Append(uint32(i%3), d)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq = %d, want %d", i, seq, i+1)
		}
	}
	rec2 := reopen(t, rec, 3, Options{})
	defer rec2.Log.Close()
	if rec2.Stats.Replayed != uint64(len(docs)) {
		t.Fatalf("Replayed = %d, want %d", rec2.Stats.Replayed, len(docs))
	}
	if rec2.Stats.TornBytes != 0 {
		t.Fatalf("TornBytes = %d on a clean log", rec2.Stats.TornBytes)
	}
	for i, d := range docs {
		sh := rec2.Shards[i%3]
		if len(sh) == 0 || sh[0] != d {
			t.Fatalf("shard %d missing doc %q: %v", i%3, d, sh)
		}
		rec2.Shards[i%3] = sh[1:]
	}
	// Appends continue with the recovered sequence.
	seq, err := rec2.Log.Append(0, "after recovery")
	if err != nil {
		t.Fatalf("post-recovery Append: %v", err)
	}
	if seq != uint64(len(docs)+1) {
		t.Fatalf("post-recovery seq = %d, want %d", seq, len(docs)+1)
	}
}

// TestEmptyDocumentIsARecord pins the empty-document contract: Add("")
// is a countable, durable document, not an absence.
func TestEmptyDocumentIsARecord(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	if _, err := rec.Log.Append(0, ""); err != nil {
		t.Fatalf("Append empty: %v", err)
	}
	rec2 := reopen(t, rec, 1, Options{})
	defer rec2.Log.Close()
	if len(rec2.Shards[0]) != 1 || rec2.Shards[0][0] != "" {
		t.Fatalf("empty document not recovered: %v", rec2.Shards[0])
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, recHdrSize - 1, recHdrSize, recHdrSize + 5} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			rec := openEmpty(t, 2, Options{Policy: SyncNever})
			dir := rec.Log.dir
			for i := 0; i < 5; i++ {
				if _, err := rec.Log.Append(uint32(i%2), fmt.Sprintf("doc-%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := rec.Log.Close(); err != nil {
				t.Fatal(err)
			}
			// Tear the tail: drop the last record's final bytes plus cut-1
			// more, so the file ends mid-record.
			path := filepath.Join(dir, logName(0))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			rec2, err := Open(dir, 2, Options{})
			if err != nil {
				t.Fatalf("Open with torn tail: %v", err)
			}
			defer rec2.Log.Close()
			if rec2.Stats.TornBytes == 0 {
				t.Fatalf("TornBytes = 0, want > 0 after tearing %d bytes", cut)
			}
			if rec2.Stats.Replayed != 4 {
				t.Fatalf("Replayed = %d, want 4 (last record torn)", rec2.Stats.Replayed)
			}
			// The torn bytes are gone from the file too: appends resume at
			// the truncation point and the log replays cleanly again.
			if _, err := rec2.Log.Append(0, "resumed"); err != nil {
				t.Fatal(err)
			}
			rec3 := reopen(t, rec2, 2, Options{})
			defer rec3.Log.Close()
			if rec3.Stats.TornBytes != 0 {
				t.Fatalf("TornBytes = %d after repair+append, want 0", rec3.Stats.TornBytes)
			}
			if rec3.Stats.Replayed != 5 {
				t.Fatalf("Replayed = %d after repair+append, want 5", rec3.Stats.Replayed)
			}
		})
	}
}

// TestPartialMagicRecreated covers a crash during the log file's own
// creation: the surviving prefix of the magic is residue, and appends
// after repair must land in a correctly-framed file.
func TestPartialMagicRecreated(t *testing.T) {
	for _, keep := range []int{0, 1, len(logMagic) - 1} {
		t.Run(fmt.Sprintf("keep%d", keep), func(t *testing.T) {
			rec := openEmpty(t, 1, Options{Policy: SyncNever})
			dir := rec.Log.dir
			if err := rec.Log.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, logName(0))
			if err := os.WriteFile(path, []byte(logMagic)[:keep], 0o644); err != nil {
				t.Fatal(err)
			}
			rec2, err := Open(dir, 1, Options{})
			if err != nil {
				t.Fatalf("Open with partial magic: %v", err)
			}
			if _, err := rec2.Log.Append(0, "written after repair"); err != nil {
				t.Fatal(err)
			}
			rec3 := reopen(t, rec2, 1, Options{})
			defer rec3.Log.Close()
			if len(rec3.Shards[0]) != 1 || rec3.Shards[0][0] != "written after repair" {
				t.Fatalf("docs = %v after magic repair", rec3.Shards[0])
			}
		})
	}
}

func TestZeroFilledTailIsTorn(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	dir := rec.Log.dir
	if _, err := rec.Log.Append(0, "kept"); err != nil {
		t.Fatal(err)
	}
	if err := rec.Log.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName(0))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rec2, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatalf("zero-filled tail should be torn, got %v", err)
	}
	defer rec2.Log.Close()
	if rec2.Stats.TornBytes != 512 {
		t.Fatalf("TornBytes = %d, want 512", rec2.Stats.TornBytes)
	}
	if len(rec2.Shards[0]) != 1 {
		t.Fatalf("docs = %v, want [kept]", rec2.Shards[0])
	}
}

func TestMidLogCorruptionIsTyped(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	dir := rec.Log.dir
	for i := 0; i < 10; i++ {
		if _, err := rec.Log.Append(0, fmt.Sprintf("document body %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Log.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the file: the checksum
	// fails but intact records follow, so this cannot be a torn tail.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, 1, Options{})
	if err == nil {
		t.Fatal("Open succeeded over mid-log corruption")
	}
	if !errors.Is(err, resilience.ErrCorrupt) {
		t.Fatalf("err = %v, want errors.Is(..., ErrCorrupt)", err)
	}
}

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	rec := openEmpty(t, 2, Options{Policy: SyncNever})
	dir := rec.Log.dir
	shards := make([][]string, 2)
	for i := 0; i < 6; i++ {
		si := uint32(i % 2)
		doc := fmt.Sprintf("pre-snap %d", i)
		if _, err := rec.Log.Append(si, doc); err != nil {
			t.Fatal(err)
		}
		shards[si] = append(shards[si], doc)
	}
	// The snapshot cycle: rotate, write from the captured state, prune.
	gen, err := rec.Log.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appliedSeq := rec.Log.LastSeq()
	if _, err := rec.Log.Append(0, "post-rotate"); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, gen, appliedSeq, shards); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	rec.Log.Prune(gen)
	if _, err := os.Stat(filepath.Join(dir, logName(0))); !os.IsNotExist(err) {
		t.Fatalf("old log survived prune: %v", err)
	}

	rec2 := reopen(t, rec, 2, Options{})
	defer rec2.Log.Close()
	if rec2.Stats.SnapshotDocs != 6 || rec2.Stats.Replayed != 1 {
		t.Fatalf("stats = %+v, want 6 snapshot docs + 1 replayed", rec2.Stats)
	}
	if got := rec2.Shards[0][len(rec2.Shards[0])-1]; got != "post-rotate" {
		t.Fatalf("last doc of shard 0 = %q, want post-rotate", got)
	}
}

// TestDuplicateReplayIdempotent pins the crash-between-rename-and-prune
// window: the snapshot covers records that are still present in an
// un-pruned older log, and replay must not double-apply them.
func TestDuplicateReplayIdempotent(t *testing.T) {
	rec := openEmpty(t, 2, Options{Policy: SyncNever})
	dir := rec.Log.dir
	shards := make([][]string, 2)
	for i := 0; i < 4; i++ {
		si := uint32(i % 2)
		doc := fmt.Sprintf("covered %d", i)
		if _, err := rec.Log.Append(si, doc); err != nil {
			t.Fatal(err)
		}
		shards[si] = append(shards[si], doc)
	}
	gen, err := rec.Log.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, gen, rec.Log.LastSeq(), shards); err != nil {
		t.Fatal(err)
	}
	// No prune: wal-0.log still holds records 1..4, all covered by the
	// snapshot. (Also no post-rotate appends: snapshot + stale log only.)
	rec2 := reopen(t, rec, 2, Options{})
	defer rec2.Log.Close()
	total := len(rec2.Shards[0]) + len(rec2.Shards[1])
	if total != 4 {
		t.Fatalf("recovered %d docs, want 4 (duplicates must be dropped)", total)
	}
	if rec2.Stats.Skipped != 0 {
		// wal-0 is below the snapshot generation, so it is skipped
		// wholesale, not record by record.
		t.Fatalf("Skipped = %d, want 0 (stale log skipped by generation)", rec2.Stats.Skipped)
	}
}

// TestDuplicateReplaySameGeneration forces the per-record dedup path: a
// log of the snapshot's own generation carrying records the snapshot
// already covers.
func TestDuplicateReplaySameGeneration(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	dir := rec.Log.dir
	var docs []string
	for i := 0; i < 3; i++ {
		doc := fmt.Sprintf("dup %d", i)
		if _, err := rec.Log.Append(0, doc); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	if _, err := rec.Log.Append(0, "fresh"); err != nil {
		t.Fatal(err)
	}
	// Snapshot at generation 0 covering only the first three records:
	// replaying wal-0.log must skip 1..3 and apply 4.
	if err := WriteSnapshot(dir, 0, 3, [][]string{docs}); err != nil {
		t.Fatal(err)
	}
	rec2 := reopen(t, rec, 1, Options{})
	defer rec2.Log.Close()
	if got := len(rec2.Shards[0]); got != 4 {
		t.Fatalf("recovered %d docs, want 4", got)
	}
	if rec2.Stats.Skipped != 3 || rec2.Stats.Replayed != 1 {
		t.Fatalf("stats = %+v, want 3 skipped + 1 replayed", rec2.Stats)
	}
}

func TestCorruptSnapshotIsTyped(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	dir := rec.Log.dir
	if err := WriteSnapshot(dir, 0, 2, [][]string{{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Log.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, 1, Options{})
	if !errors.Is(err, resilience.ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotTempFilesCleared(t *testing.T) {
	rec := openEmpty(t, 1, Options{})
	dir := rec.Log.dir
	if err := rec.Log.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-snapshot leaves a .tmp; recovery must ignore and
	// remove it.
	tmp := filepath.Join(dir, snapName(7)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial snapshot junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec2, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatalf("Open with stale temp: %v", err)
	}
	defer rec2.Log.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived recovery: %v", err)
	}
}

func TestSnapshotShardCountChangeRedeals(t *testing.T) {
	rec := openEmpty(t, 4, Options{Policy: SyncNever})
	dir := rec.Log.dir
	for i := 0; i < 8; i++ {
		if _, err := rec.Log.Append(uint32(i%4), fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Log.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Open(dir, 2, Options{})
	if err != nil {
		t.Fatalf("Open with fewer shards: %v", err)
	}
	defer rec2.Log.Close()
	if got := len(rec2.Shards[0]) + len(rec2.Shards[1]); got != 8 {
		t.Fatalf("recovered %d docs across 2 shards, want 8", got)
	}
}

func TestEmptyLogAfterSnapshot(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	dir := rec.Log.dir
	if _, err := rec.Log.Append(0, "only"); err != nil {
		t.Fatal(err)
	}
	gen, err := rec.Log.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, gen, rec.Log.LastSeq(), [][]string{{"only"}}); err != nil {
		t.Fatal(err)
	}
	rec.Log.Prune(gen)
	rec2 := reopen(t, rec, 1, Options{})
	defer rec2.Log.Close()
	if rec2.Stats.SnapshotDocs != 1 || rec2.Stats.Replayed != 0 {
		t.Fatalf("stats = %+v, want snapshot-only recovery", rec2.Stats)
	}
}

func TestSequenceGapIsCorrupt(t *testing.T) {
	rec := openEmpty(t, 1, Options{Policy: SyncNever})
	dir := rec.Log.dir
	for i := 0; i < 3; i++ {
		if _, err := rec.Log.Append(0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Log.Close(); err != nil {
		t.Fatal(err)
	}
	// Excise the middle record wholesale — checksums stay valid but the
	// sequence numbers jump 1 → 3.
	path := filepath.Join(dir, logName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := (len(data) - len(logMagic)) / 3
	cut := append([]byte(nil), data[:len(logMagic)+recLen]...)
	cut = append(cut, data[len(logMagic)+2*recLen:]...)
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, 1, Options{})
	if !errors.Is(err, resilience.ErrCorrupt) {
		t.Fatalf("sequence gap: err = %v, want ErrCorrupt", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	rec := openEmpty(t, 1, Options{MaxRecord: 64})
	defer rec.Log.Close()
	if _, err := rec.Log.Append(0, string(make([]byte, 100))); err == nil {
		t.Fatal("oversize append accepted")
	}
	// The log is not wedged by a rejected (never-written) record.
	if _, err := rec.Log.Append(0, "small"); err != nil {
		t.Fatalf("append after rejected oversize: %v", err)
	}
}
