package corpus

import (
	"context"
	"time"

	"spanjoin/internal/obs"
	"spanjoin/internal/prefilter"
)

// storeMetrics holds the store's observability instruments. The zero
// value — a store whose owner never called SetRegistry — is fully
// functional: every field is a nil instrument and every observation a
// nil-check, so library users who want no metrics pay (almost) nothing.
type storeMetrics struct {
	gateWait  *obs.Histogram // admission wait, every decision
	evalDur   *obs.Histogram // worker-pool lifetime, streaming evals
	countDur  *obs.Histogram // worker-pool lifetime, counting sweeps
	prefilter *obs.Histogram // snapshot capture + candidate selection
	snapshot  *obs.Histogram // full snapshot cycles (durable stores)

	docsScanned *obs.Counter
	docsSkipped *obs.Counter
	results     *obs.Counter
}

// SetRegistry registers the store's metrics — gate wait and queue depth,
// evaluation and count durations, prefilter timings, document and result
// counters, and (on a durable store) WAL append/fsync/snapshot timings
// and cumulative log counters. Call once before the store serves
// queries, like SetGate; installation is not synchronized with running
// evaluations.
func (s *Store) SetRegistry(r *obs.Registry) {
	s.met = storeMetrics{
		gateWait:    r.Histogram("spanjoin_gate_wait_seconds", "Admission-gate wait per query (zero when admitted immediately).", nil),
		evalDur:     r.Histogram("spanjoin_eval_seconds", "Worker-pool lifetime of one corpus operation.", nil, obs.Label{Key: "op", Value: "eval"}),
		countDur:    r.Histogram("spanjoin_eval_seconds", "Worker-pool lifetime of one corpus operation.", nil, obs.Label{Key: "op", Value: "count"}),
		prefilter:   r.Histogram("spanjoin_prefilter_seconds", "Snapshot capture plus skip-index candidate selection.", nil),
		docsScanned: r.Counter("spanjoin_docs_scanned_total", "Documents actually evaluated (streaming evaluations)."),
		docsSkipped: r.Counter("spanjoin_docs_skipped_total", "Documents excluded by the prefilter (streaming evaluations)."),
		results:     r.Counter("spanjoin_results_total", "Result tuples delivered by streaming evaluations."),
	}
	r.Gauge("spanjoin_docs", "Documents in the store.", func() float64 { return float64(s.Len()) })
	if g := s.gate; g != nil {
		g.SetWaitObserver(func(wait time.Duration, admitted bool) {
			if admitted {
				s.met.gateWait.Observe(wait)
			}
		})
		r.Gauge("spanjoin_gate_active", "Admission units currently held.", func() float64 { return float64(g.Stats().Active) })
		r.Gauge("spanjoin_gate_queued", "Callers waiting in the admission queue.", func() float64 { return float64(g.Stats().Queued) })
		r.CounterFunc("spanjoin_gate_rejected_total", "Queries shed by the admission gate.", func() uint64 { return g.Stats().Rejected })
	}
	if d := s.dur; d != nil {
		s.met.snapshot = r.Histogram("spanjoin_snapshot_seconds", "Full snapshot cycles: rotate, write, prune.", nil)
		d.log.SetObs(
			r.Histogram("spanjoin_wal_append_seconds", "WAL record write, excluding the policy fsync.", nil),
			r.Histogram("spanjoin_wal_fsync_seconds", "WAL fsync (policy syncs, explicit Syncs, close).", nil),
		)
		r.CounterFunc("spanjoin_wal_appends_total", "WAL records appended since open.", func() uint64 { return d.log.Stats().Appends })
		r.CounterFunc("spanjoin_wal_append_bytes_total", "WAL bytes appended since open.", func() uint64 { return d.log.Stats().AppendBytes })
		r.CounterFunc("spanjoin_wal_fsyncs_total", "WAL fsyncs issued since open.", func() uint64 { return d.log.Stats().Syncs })
		r.CounterFunc("spanjoin_wal_fsync_errors_total", "WAL fsyncs that failed (the first wedges the log).", func() uint64 { return d.log.Stats().SyncErrors })
		r.CounterFunc("spanjoin_snapshots_total", "Snapshot cycles completed since open.", func() uint64 { return d.snapshots.Load() })
		r.CounterFunc("spanjoin_snapshot_errors_total", "Snapshot cycles that failed since open.", func() uint64 { return d.snapErrors.Load() })
		r.Gauge("spanjoin_wal_size_bytes", "Active log file size.", func() float64 { return float64(d.log.Size()) })
	}
}

// planTraced is plan plus observability: the snapshot capture and
// skip-index candidate selection are timed into the prefilter histogram
// and, when the query is traced, its prefilter stage.
//
//spanjoin:stage prefilter
func (s *Store) planTraced(ctx context.Context, req prefilter.Requirement) []evalShard {
	t0 := time.Now()
	shards := s.plan(req)
	d := time.Since(t0)
	s.met.prefilter.Observe(d)
	obs.FromContext(ctx).Observe(obs.StagePrefilter, d)
	return shards
}
