package corpus

import (
	"context"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
)

// countStore builds a store over docs and the plan for pattern.
func countStore(t *testing.T, shards int, docs []string, pattern string) (*Store, []DocID, *enum.Plan) {
	t.Helper()
	s := NewStore(shards)
	ids := make([]DocID, len(docs))
	for i, d := range docs {
		ids[i] = s.Add(d)
	}
	p, err := enum.NewPlan(rgx.MustCompilePattern(pattern))
	if err != nil {
		t.Fatal(err)
	}
	return s, ids, p
}

func TestCountPlanMatchesDrain(t *testing.T) {
	docs := []string{"aba", "bb", "", "aaab", "ba", "abab", "a", "baab", "bbba", "aaaa"}
	for _, workers := range []int{0, 1, 3, 8} {
		s, ids, p := countStore(t, 4, docs, `(a|b)*x{a+}(a|b)*`)
		res, err := s.CountPlan(context.Background(), p, EvalOptions{Workers: workers}, true)
		if err != nil {
			t.Fatal(err)
		}
		wantTotal := uint64(0)
		wantPerDoc := map[DocID]uint64{}
		for i, d := range docs {
			_, tuples, err := enum.Eval(rgx.MustCompilePattern(`(a|b)*x{a+}(a|b)*`), d)
			if err != nil {
				t.Fatal(err)
			}
			wantTotal += uint64(len(tuples))
			if len(tuples) > 0 {
				wantPerDoc[ids[i]] = uint64(len(tuples))
			}
		}
		if got, ok := res.Total.Uint64(); !ok || got != wantTotal {
			t.Fatalf("workers=%d: Total = %v, want %d", workers, res.Total, wantTotal)
		}
		if len(res.PerDoc) != len(wantPerDoc) {
			t.Fatalf("workers=%d: %d per-doc entries, want %d", workers, len(res.PerDoc), len(wantPerDoc))
		}
		for i, dc := range res.PerDoc {
			if i > 0 && res.PerDoc[i-1].Doc >= dc.Doc {
				t.Fatal("PerDoc not ascending by DocID")
			}
			if got, ok := dc.N.Uint64(); !ok || got != wantPerDoc[dc.Doc] {
				t.Fatalf("doc %d: count %v, want %d", dc.Doc, dc.N, wantPerDoc[dc.Doc])
			}
		}
		if res.Scanned != uint64(len(docs)) || res.Skipped != 0 {
			t.Fatalf("counters: %d scanned / %d skipped, want %d / 0", res.Scanned, res.Skipped, len(docs))
		}
	}
}

// TestCountPlanSkipsViaIndex: prefiltered documents must count as 0
// without being visited — the skip index excludes them outright.
func TestCountPlanSkipsViaIndex(t *testing.T) {
	docs := []string{"xneedley", "aaaa", "bbbb", "needle", "cccc", "dd"}
	s := NewStore(2)
	s.EnableIndex()
	for _, d := range docs {
		s.Add(d)
	}
	p, err := enum.NewPlan(rgx.MustCompilePattern(`.*x{needle}.*`))
	if err != nil {
		t.Fatal(err)
	}
	req := prefilter.New("needle")
	res, err := s.CountPlan(context.Background(), p, EvalOptions{Required: req}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.Total.Uint64(); !ok || got != 2 {
		t.Fatalf("Total = %v, want 2", res.Total)
	}
	if res.SkippedIndex == 0 {
		t.Fatal("index skipped nothing: non-candidates were visited")
	}
	if res.Scanned+res.Skipped != uint64(len(docs)) {
		t.Fatalf("counters do not partition the snapshot: %d + %d != %d",
			res.Scanned, res.Skipped, len(docs))
	}
}

func TestCountFuncDrains(t *testing.T) {
	docs := []string{"aa", "", "aaa"}
	s := NewStore(2)
	ids := make([]DocID, len(docs))
	for i, d := range docs {
		ids[i] = s.Add(d)
	}
	newEval := func(func() bool) DocEval {
		return func(doc string, emit func(span.Tuple) bool) error {
			for range doc {
				if !emit(span.Tuple{}) {
					return nil
				}
			}
			return nil
		}
	}
	res, err := s.CountFunc(context.Background(), newEval, EvalOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.Total.Uint64(); !ok || got != 5 {
		t.Fatalf("Total = %v, want 5", res.Total)
	}
	want := map[DocID]uint64{ids[0]: 2, ids[2]: 3}
	if len(res.PerDoc) != len(want) {
		t.Fatalf("%d per-doc entries, want %d", len(res.PerDoc), len(want))
	}
	for _, dc := range res.PerDoc {
		if got, _ := dc.N.Uint64(); got != want[dc.Doc] {
			t.Fatalf("doc %d: %v, want %d", dc.Doc, dc.N, want[dc.Doc])
		}
	}
}

func TestCountPlanCancellation(t *testing.T) {
	docs := make([]string, 64)
	for i := range docs {
		docs[i] = "aaaa"
	}
	s, _, p := countStore(t, 4, docs, `a*x{a+}a*`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.CountPlan(ctx, p, EvalOptions{}, false); err == nil {
		t.Fatal("cancelled CountPlan returned nil error")
	}
}

func TestPagePlanWindowsAndTotal(t *testing.T) {
	docs := []string{"aa", "b", "aaa", "", "a", "aaaa"}
	s, _, p := countStore(t, 2, docs, `a*x{a+}a*`)

	// Reference: the full result sequence in ascending DocID order.
	full, err := s.PagePlan(context.Background(), p, EvalOptions{}, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	total, ok := full.Total.Uint64()
	if !ok || total != uint64(len(full.Matches)) {
		t.Fatalf("full page: Total %v vs %d matches", full.Total, len(full.Matches))
	}
	for i := 1; i < len(full.Matches); i++ {
		if full.Matches[i-1].Doc > full.Matches[i].Doc {
			t.Fatal("full page not ascending by DocID")
		}
	}
	// Every window must be the exact slice of the full sequence.
	for off := uint64(0); off <= total+2; off++ {
		for _, limit := range []int{1, 3, int(total) + 1} {
			pg, err := s.PagePlan(context.Background(), p, EvalOptions{}, off, limit)
			if err != nil {
				t.Fatal(err)
			}
			if gt, _ := pg.Total.Uint64(); gt != total {
				t.Fatalf("page(%d,%d): Total %v, want %d", off, limit, pg.Total, total)
			}
			lo := int(off)
			if lo > len(full.Matches) {
				lo = len(full.Matches)
			}
			hi := lo + limit
			if hi > len(full.Matches) {
				hi = len(full.Matches)
			}
			want := full.Matches[lo:hi]
			if len(pg.Matches) != len(want) {
				t.Fatalf("page(%d,%d): %d matches, want %d", off, limit, len(pg.Matches), len(want))
			}
			for k := range want {
				if pg.Matches[k].Doc != want[k].Doc || pg.Matches[k].Tuple.Compare(want[k].Tuple) != 0 {
					t.Fatalf("page(%d,%d)[%d] = %v@%d, want %v@%d", off, limit, k,
						pg.Matches[k].Tuple, pg.Matches[k].Doc, want[k].Tuple, want[k].Doc)
				}
			}
		}
	}
	// limit 0: counting sweep only.
	pg, err := s.PagePlan(context.Background(), p, EvalOptions{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Matches) != 0 {
		t.Fatal("limit 0 returned matches")
	}
	if gt, _ := pg.Total.Uint64(); gt != total {
		t.Fatalf("limit 0: Total %v, want %d", pg.Total, total)
	}
}

func TestPagePlanWithIndex(t *testing.T) {
	s := NewStore(3)
	s.EnableIndex()
	docs := []string{"zz", "aba", "zzz", "aa", "z", "baab"}
	for _, d := range docs {
		s.Add(d)
	}
	p, err := enum.NewPlan(rgx.MustCompilePattern(`.*x{ab}.*`))
	if err != nil {
		t.Fatal(err)
	}
	// "ab" is bigram-indexable, so non-candidates are skipped outright.
	req := prefilter.New("ab")
	full, err := s.PagePlan(context.Background(), p, EvalOptions{Required: req}, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	noIdx := NewStore(3)
	for _, d := range docs {
		noIdx.Add(d)
	}
	ref, err := noIdx.PagePlan(context.Background(), p, EvalOptions{Required: req}, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if full.Total.String() != ref.Total.String() || len(full.Matches) != len(ref.Matches) {
		t.Fatalf("indexed total %v (%d matches) != unindexed %v (%d)",
			full.Total, len(full.Matches), ref.Total, len(ref.Matches))
	}
	if full.SkippedIndex == 0 {
		t.Fatal("index skipped nothing")
	}
}

// TestPagePlanOffsetBoundary pins the saturating-offset contract: an
// offset at or past the total — all the way up to math.MaxUint64, where
// offset+limit arithmetic would wrap a uint64 — is an exhausted page
// with the exact total, never a wrapped window re-serving rank 0.
func TestPagePlanOffsetBoundary(t *testing.T) {
	docs := []string{"aa", "b", "aaa", "", "a", "aaaa"}
	s, _, p := countStore(t, 2, docs, `a*x{a+}a*`)
	full, err := s.PagePlan(context.Background(), p, EvalOptions{}, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	total, ok := full.Total.Uint64()
	if !ok || total == 0 {
		t.Fatalf("bad total %v", full.Total)
	}
	for _, off := range []uint64{total, total + 1, ^uint64(0) - 1, ^uint64(0)} {
		for _, limit := range []int{1, int(total), 1 << 30} {
			pg, err := s.PagePlan(context.Background(), p, EvalOptions{}, off, limit)
			if err != nil {
				t.Fatalf("page(%d,%d): %v", off, limit, err)
			}
			if len(pg.Matches) != 0 {
				t.Fatalf("page(%d,%d): %d matches, want exhausted page", off, limit, len(pg.Matches))
			}
			if gt, _ := pg.Total.Uint64(); gt != total {
				t.Fatalf("page(%d,%d): Total %v, want %d", off, limit, pg.Total, total)
			}
		}
	}
	// The last addressable window still works right at the edge.
	pg, err := s.PagePlan(context.Background(), p, EvalOptions{}, total-1, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Matches) != 1 {
		t.Fatalf("page(total-1): %d matches, want 1", len(pg.Matches))
	}
	if pg.Matches[0].Doc != full.Matches[total-1].Doc || pg.Matches[0].Tuple.Compare(full.Matches[total-1].Tuple) != 0 {
		t.Fatal("page(total-1) is not the last element of the sequence")
	}
}
