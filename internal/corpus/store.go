// Package corpus is the multi-document layer of the engine: an append-only
// sharded document store with an optional n-gram skip index, a fan-out
// evaluator that streams (doc, tuple) results from pooled workers each
// owning a Reset-able enumerator clone, and an LRU compiled-query cache
// with singleflight compilation.
//
// The paper's polynomial-delay guarantees (Theorem 3.3, Theorem 3.11) are
// per document; this package supplies the layer above them — many
// documents, many concurrent queries, shared compiled artifacts — without
// touching the per-document complexity: every worker amortizes trimming,
// functionality checking, closure computation and letter interning across
// its whole share of the corpus exactly as Stream/Reset does for a single
// caller. The skip index goes one step further: queries with literal
// requirements visit only candidate documents instead of paying even a
// substring scan on the rest.
package corpus

import (
	"runtime"
	"sync"
	"sync/atomic"

	"spanjoin/internal/prefilter"
	"spanjoin/internal/resilience"
)

// DocID identifies a document in a Store. IDs are stable for the lifetime
// of the store and encode their location: id % NumShards is the shard,
// id / NumShards the position within it, so lookup is two array indexes.
type DocID uint64

// Store is an append-only sharded document store. Adds distribute
// round-robin over the shards, each guarded by its own lock, so concurrent
// writers contend only 1/N of the time; readers (evaluation snapshots,
// Get) take the shard's read lock. Documents are never mutated or removed,
// which is what makes the snapshot discipline of Eval safe: a slice header
// captured under the read lock stays valid forever.
type Store struct {
	shards []shard
	rr     atomic.Uint64 // round-robin shard chooser

	// gate, when set, is the store's admission controller: every
	// evaluation and count acquires one slot for the lifetime of its
	// worker pool, so gate capacity bounds live pools (goroutines, arena
	// memory), not merely query starts. Set once before the store serves
	// queries; nil means unbounded admission.
	gate *resilience.Gate

	// dur, when set, is the store's durable half (see durable.go): every
	// Add goes through the write-ahead log first. nil for a RAM store.
	dur *durability

	// met holds the store's metrics instruments (see obs.go); the zero
	// value records nothing.
	met storeMetrics
}

// SetGate installs the store's admission gate. Call before the store
// serves queries — installation is not synchronized with running
// evaluations (they hold whatever gate they acquired at start).
func (s *Store) SetGate(g *resilience.Gate) { s.gate = g }

// GateStats reports the admission gate's counters; zero values when no
// gate is installed.
func (s *Store) GateStats() resilience.GateStats {
	if s.gate == nil {
		return resilience.GateStats{}
	}
	return s.gate.Stats()
}

type shard struct {
	mu   sync.RWMutex
	docs []string
	// idx shadows docs position-by-position when the skip index is
	// enabled; nil otherwise. Guarded by mu like docs.
	idx *prefilter.Index
}

// NewStore creates a store with the given shard count; n ≤ 0 selects
// GOMAXPROCS.
func NewStore(n int) *Store {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Store{shards: make([]shard, n)}
}

// NumShards reports the shard count fixed at creation.
func (s *Store) NumShards() int { return len(s.shards) }

// EnableIndex turns on the per-shard skip index, backfilling documents
// already stored. Idempotent and safe for concurrent use with Add, Get and
// Eval; evaluations started before the call simply do not use the index.
func (s *Store) EnableIndex() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.idx == nil {
			sh.idx = prefilter.NewIndex()
			for _, d := range sh.docs {
				sh.idx.Add(d)
			}
		}
		sh.mu.Unlock()
	}
}

// Indexed reports whether the skip index is enabled.
func (s *Store) Indexed() bool {
	sh := &s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.idx != nil
}

// idOf and locate define the DocID layout in one place: shard index in
// the low digits (mod NumShards), position within the shard above.
func (s *Store) idOf(si, pos uint64) DocID {
	return DocID(pos*uint64(len(s.shards)) + si)
}

func (s *Store) locate(id DocID) (si, pos uint64) {
	n := uint64(len(s.shards))
	return uint64(id) % n, uint64(id) / n
}

// Add appends a document and returns its stable ID. Safe for concurrent
// use with Add, Get, Len and Eval. On a durable store Add goes through
// the write-ahead log and panics if the log has failed — callers that
// want the error (services) use AddErr.
func (s *Store) Add(doc string) DocID {
	if s.dur != nil {
		id, err := s.AddErr(doc)
		if err != nil {
			panic(err)
		}
		return id
	}
	si := s.rr.Add(1) % uint64(len(s.shards))
	sh := &s.shards[si]
	sh.mu.Lock()
	pos := uint64(len(sh.docs))
	sh.docs = append(sh.docs, doc)
	if sh.idx != nil {
		sh.idx.Add(doc)
	}
	sh.mu.Unlock()
	return s.idOf(si, pos)
}

// Get returns the document with the given ID.
func (s *Store) Get(id DocID) (string, bool) {
	si, pos := s.locate(id)
	sh := &s.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if pos >= uint64(len(sh.docs)) {
		return "", false
	}
	return sh.docs[pos], true
}

// Len reports the total number of documents.
func (s *Store) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.docs)
		sh.mu.RUnlock()
	}
	return total
}

// evalShard is one shard's slice of an evaluation plan: the snapshotted
// documents plus, when the skip index constrained the requirement, the
// sorted candidate positions (constrained=false means every position).
type evalShard struct {
	docs        []string
	cand        []uint32
	constrained bool
}

// plan captures every shard's current document prefix plus its skip-index
// candidates for the requirement. The captured slice headers never see
// later appends (append-only store), so workers iterate them without
// locks; documents added concurrently with an Eval may or may not be
// included, but anything added before the plan is. Candidate positions are
// consistent with the snapshot: both are read under one shard read lock.
func (s *Store) plan(req prefilter.Requirement) []evalShard {
	out := make([]evalShard, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		// Outside the shard lock: an injected panic must not poison mu.
		resilience.Inject(resilience.FailPlanCandidates, i)
		sh.mu.RLock()
		es := evalShard{docs: sh.docs[:len(sh.docs):len(sh.docs)]}
		if sh.idx != nil && !req.IsEmpty() {
			es.cand, es.constrained = sh.idx.Candidates(req)
		}
		sh.mu.RUnlock()
		out[i] = es
	}
	return out
}

// work reports how many documents the shard's plan will visit.
func (es evalShard) work() int {
	if es.constrained {
		return len(es.cand)
	}
	return len(es.docs)
}
