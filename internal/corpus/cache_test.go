package corpus

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitMissAndLRUEviction(t *testing.T) {
	c := NewCache(2)
	compiles := 0
	get := func(key string) any {
		v, err := c.Get(key, func() (any, error) {
			compiles++
			return "compiled:" + key, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	get("a")
	get("b")
	if v := get("a"); v != "compiled:a" { // refresh a's recency
		t.Fatalf("got %v", v)
	}
	get("c") // evicts b (least recent)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	get("b") // must recompile
	if compiles != 4 {
		t.Fatalf("compiles = %d, want 4 (a, b, c, b-again)", compiles)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 4 {
		t.Fatalf("stats = %d hits / %d misses, want 1/4", hits, misses)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Get("k", func() (any, error) { calls++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("compile ran %d times, want 2 (errors are not cached)", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after errors, want 0", c.Len())
	}
}

// TestCacheSingleflight: concurrent Gets of one missing key run the
// compile function exactly once and all observe its result.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(4)
	var compiles atomic.Int32
	gate := make(chan struct{})
	const goroutines = 16
	results := make([]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.Get("shared", func() (any, error) {
				<-gate // hold every racer in Get until all have arrived
				compiles.Add(1)
				return "artifact", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	close(gate)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
	for g, v := range results {
		if v != "artifact" {
			t.Fatalf("goroutine %d got %v", g, v)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("stats = %d hits / %d misses, want %d/1", hits, misses, goroutines-1)
	}
}
