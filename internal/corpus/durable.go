package corpus

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"spanjoin/internal/obs"
	"spanjoin/internal/resilience"
	"spanjoin/internal/wal"
)

// Durable mode: a Store whose Adds are written to a write-ahead log
// before they become visible, with background snapshotting to bound
// recovery time. The store stays append-only and its evaluation paths
// are untouched — durability is strictly below the shard layer.
//
// Write path (one mutex, durability.mu, serializes it end to end):
//
//	1. choose the shard (round-robin, same as the RAM store)
//	2. wal.Log.Append — the record is on the file, and on stable
//	   storage under SyncAlways, before anything is visible
//	3. apply to the in-memory shard (and skip index)
//	4. return the DocID: the ack
//
// A crash between 2 and 4 can leave a record durable but unacked; a
// crash before 2 leaves nothing. Recovery replays the log, so the
// invariant callers get is: acked ⇒ present, unacked ⇒ absent except
// possibly the single in-flight write, which is then byte-identical to
// what was being written.

// DurabilityStats is a snapshot of the durable layer's counters; the
// zero value is what a RAM store reports.
type DurabilityStats struct {
	// Dir is the data directory; "" for a RAM store.
	Dir string `json:"dir"`
	// Policy is the fsync policy name ("always", "interval", "never").
	Policy string `json:"policy"`
	// Appends counts records logged since open; AppendBytes their size.
	Appends     uint64 `json:"appends"`
	AppendBytes uint64 `json:"append_bytes"`
	// Syncs counts fsyncs; SyncErrors counts failed ones (the first
	// failure wedges the log and every later Add errors).
	Syncs      uint64 `json:"syncs"`
	SyncErrors uint64 `json:"sync_errors"`
	// LastSeq is the newest record's sequence number; SyncedSeq the
	// newest known to be on stable storage.
	LastSeq   uint64 `json:"last_seq"`
	SyncedSeq uint64 `json:"synced_seq"`
	// LogSize is the active log file's size in bytes.
	LogSize uint64 `json:"log_size"`
	// Snapshots counts snapshot cycles completed since open;
	// SnapshotErrors, cycles that failed (the log keeps growing but no
	// data is lost).
	Snapshots      uint64 `json:"snapshots"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// Recovery describes what the last Open found and repaired.
	RecoveredDocs     uint64 `json:"recovered_docs"`
	ReplayedRecords   uint64 `json:"replayed_records"`
	TornBytesRepaired uint64 `json:"torn_bytes_repaired"`
}

// durability is the Store's durable half; nil on a RAM store.
type durability struct {
	// mu serializes the append+apply write path and the capture half of a
	// snapshot cycle, so the rotation point and the captured shard state
	// always agree.
	mu  sync.Mutex
	log *wal.Log
	dir string

	// snapMu serializes whole snapshot cycles (an explicit Snapshot
	// racing the background one must not interleave two rotations).
	snapMu sync.Mutex

	// snapThreshold triggers a background snapshot when the active log
	// outgrows it; 0 disables the trigger.
	snapThreshold int64

	recovery wal.RecoveryStats

	snapshots  atomic.Uint64
	snapErrors atomic.Uint64

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// OpenStore recovers (or creates) a durable store from dir. Shard count
// and gate semantics match NewStore; opt tunes the log; snapThreshold,
// when > 0, makes the background loop snapshot whenever the active log
// exceeds it.
func OpenStore(dir string, n int, opt wal.Options, snapThreshold int64) (*Store, error) {
	s := NewStore(n)
	rec, err := wal.Open(dir, len(s.shards), opt)
	if err != nil {
		return nil, err
	}
	var total uint64
	for i := range s.shards {
		s.shards[i].docs = rec.Shards[i]
		total += uint64(len(rec.Shards[i]))
	}
	// Seed the round-robin chooser so new appends continue the rotation
	// instead of piling onto shard 0 after every restart.
	s.rr.Store(total)
	s.dur = &durability{
		log:           rec.Log,
		dir:           dir,
		snapThreshold: snapThreshold,
		recovery:      rec.Stats,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	go s.durLoop()
	return s, nil
}

// Durable reports whether the store has a write-ahead log behind it.
func (s *Store) Durable() bool { return s.dur != nil }

// RecoveryStats reports what Open found; zero value for a RAM store.
func (s *Store) RecoveryStats() wal.RecoveryStats {
	if s.dur == nil {
		return wal.RecoveryStats{}
	}
	return s.dur.recovery
}

// DurabilityStats snapshots the durable layer's counters; zero value for
// a RAM store.
func (s *Store) DurabilityStats() DurabilityStats {
	d := s.dur
	if d == nil {
		return DurabilityStats{}
	}
	ws := d.log.Stats()
	return DurabilityStats{
		Dir:               d.dir,
		Policy:            d.log.Policy().String(),
		Appends:           ws.Appends,
		AppendBytes:       ws.AppendBytes,
		Syncs:             ws.Syncs,
		SyncErrors:        ws.SyncErrors,
		LastSeq:           ws.LastSeq,
		SyncedSeq:         ws.SyncedSeq,
		LogSize:           ws.Size,
		Snapshots:         d.snapshots.Load(),
		SnapshotErrors:    d.snapErrors.Load(),
		RecoveredDocs:     d.recovery.SnapshotDocs + d.recovery.Replayed,
		ReplayedRecords:   d.recovery.Replayed,
		TornBytesRepaired: d.recovery.TornBytes,
	}
}

// AddErr appends a document. On a RAM store it never fails; on a durable
// store it returns the log's error — and then the document was NOT added
// (nothing unlogged becomes visible). Safe for concurrent use.
func (s *Store) AddErr(doc string) (DocID, error) {
	return s.AddErrCtx(context.Background(), doc)
}

// AddErrCtx is AddErr with the caller's context: when the context
// carries a trace (obs.WithTrace), the write-ahead-log append and the
// fsync its policy forced are recorded as the wal_append and wal_fsync
// stages, so a traced write explains where its latency went. The context
// does not cancel the write — a logged record is a logged record.
//
//spanjoin:stage wal_append
//spanjoin:stage wal_fsync
func (s *Store) AddErrCtx(ctx context.Context, doc string) (DocID, error) {
	d := s.dur
	if d == nil {
		return s.Add(doc), nil
	}
	tr := obs.FromContext(ctx)
	d.mu.Lock()
	defer d.mu.Unlock()
	t0 := time.Now()
	si := s.rr.Add(1) % uint64(len(s.shards))
	seq, err := d.log.Append(uint32(si), doc)
	if tr != nil {
		total := time.Since(t0)
		var synced time.Duration
		if err == nil && d.log.Policy() == wal.SyncAlways {
			// d.mu serializes appends, so the log's last fsync is exactly
			// the one this append paid.
			synced = d.log.LastSyncDuration()
			tr.Observe(obs.StageWALSync, synced)
		}
		tr.Observe(obs.StageWALAppend, total-synced)
	}
	if err != nil {
		return 0, err
	}
	sh := &s.shards[si]
	sh.mu.Lock()
	pos := uint64(len(sh.docs))
	sh.docs = append(sh.docs, doc)
	if sh.idx != nil {
		sh.idx.Add(doc)
	}
	sh.mu.Unlock()
	resilience.Inject(resilience.CrashBeforeAck, seq)
	return s.idOf(si, pos), nil
}

// Sync forces every logged record to stable storage, regardless of the
// fsync policy. No-op on a RAM store.
func (s *Store) Sync() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Sync()
}

// Snapshot runs one snapshot cycle: rotate the log, write the captured
// state to a new snapshot file, prune superseded generations. Appends
// are blocked only for the rotation and capture (slice-header copies);
// the snapshot file is written concurrently with new appends. No-op on a
// RAM store.
func (s *Store) Snapshot() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	t0 := time.Now()
	defer func() { s.met.snapshot.Observe(time.Since(t0)) }()

	d.mu.Lock()
	gen, err := d.log.Rotate()
	if err != nil {
		d.mu.Unlock()
		d.snapErrors.Add(1)
		return err
	}
	seq := d.log.LastSeq()
	shards := make([][]string, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		shards[i] = sh.docs[:len(sh.docs):len(sh.docs)]
		sh.mu.RUnlock()
	}
	d.mu.Unlock()

	if err := wal.WriteSnapshot(d.dir, gen, seq, shards); err != nil {
		// The cycle failed after the rotation: not a correctness problem
		// (the new log still replays over the previous snapshot) but the
		// old generation cannot be pruned.
		d.snapErrors.Add(1)
		return err
	}
	d.log.Prune(gen)
	d.snapshots.Add(1)
	return nil
}

// Close stops the background loop and closes the log, syncing it so a
// clean shutdown is durable under every policy. Idempotent; no-op on a
// RAM store.
func (s *Store) Close() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.closeOnce.Do(func() {
		close(d.stop)
		<-d.done
		d.mu.Lock()
		d.closeErr = d.log.Close()
		d.mu.Unlock()
	})
	return d.closeErr
}

// durLoop is the background durability goroutine: under SyncInterval it
// fsyncs on the configured cadence, and under any policy it watches the
// active log's size against the snapshot threshold. Snapshot errors are
// counted, not fatal — the next tick retries.
func (s *Store) durLoop() {
	d := s.dur
	defer close(d.done)
	t := time.NewTicker(d.log.Interval())
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if d.log.Policy() == wal.SyncInterval {
				d.mu.Lock()
				// A wedged log keeps returning its sticky error; the write
				// path reports it on the next Add, so it is dropped here.
				_ = d.log.Sync()
				d.mu.Unlock()
			}
			if d.snapThreshold > 0 && d.log.Size() >= d.snapThreshold {
				_ = s.Snapshot()
			}
		}
	}
}
