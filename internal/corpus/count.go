package corpus

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"spanjoin/internal/enum"
	"spanjoin/internal/obs"
	"spanjoin/internal/ranked"
	"spanjoin/internal/resilience"
	"spanjoin/internal/span"
)

// DocCount is one document's exact result count.
type DocCount struct {
	Doc DocID
	N   ranked.Count
}

// CountResult aggregates a corpus-wide count.
type CountResult struct {
	// Total is the exact number of result tuples across the snapshot.
	Total ranked.Count
	// PerDoc lists the documents with at least one result, ascending by
	// DocID; nil unless requested.
	PerDoc []DocCount
	// Scanned/Skipped/SkippedIndex mirror Results' prefilter counters:
	// prefiltered documents contribute 0 without being visited.
	Scanned, Skipped, SkippedIndex uint64
}

// docCounter counts one document's results.
type docCounter func(doc string) (ranked.Count, error)

// CountPlan counts the plan's results over every document of the
// snapshot without enumerating any of them: shard workers run the ranked
// path-count DP per document (one graph build each, cost independent of
// that document's result count) and aggregate. Documents the prefilter
// excludes — skip-index non-candidates and literal-scan failures — count
// as 0 without being visited. perDoc additionally collects the non-zero
// per-document counts.
func (s *Store) CountPlan(ctx context.Context, p *enum.Plan, opt EvalOptions, perDoc bool) (res *CountResult, err error) {
	defer resilience.RecoverTo(&err)
	return s.countDocs(ctx, func(stop func() bool) docCounter {
		e := p.NewEnumerator()
		// A deadline that fires mid-build abandons the sweep (the count
		// comes up 0, but the whole count errors out anyway).
		e.SetInterrupt(stop)
		return func(doc string) (ranked.Count, error) {
			e.Reset(doc)
			return e.Rank().Count(), nil
		}
	}, opt, perDoc)
}

// CountFunc is CountPlan for evaluators that cannot share a compiled
// plan (per-document query plans, string-equality selections): each
// document's count drains its DocEval — output-proportional per
// document, but still parallel and still prefiltered.
func (s *Store) CountFunc(ctx context.Context, newEval NewDocEval, opt EvalOptions, perDoc bool) (res *CountResult, err error) {
	defer resilience.RecoverTo(&err)
	return s.countDocs(ctx, func(stop func() bool) docCounter {
		eval := newEval(stop)
		return func(doc string) (ranked.Count, error) {
			var n uint64
			err := eval(doc, func(span.Tuple) bool { n++; return true })
			return ranked.CountOf(n), err
		}
	}, opt, perDoc)
}

// countDocs is the shared fan-out: shards are dealt to workers exactly
// like run(), each worker aggregates locally and merges once at the end,
// so the only cross-worker synchronization is one mutex acquisition per
// worker. Like run it reports into a trace carried on ctx: the admission
// wait and, after the sweep, the count stage with the scanned-document
// tally.
//
//spanjoin:stage admission_wait
//spanjoin:stage count
func (s *Store) countDocs(ctx context.Context, newCounter func(stop func() bool) docCounter, opt EvalOptions, perDoc bool) (*CountResult, error) {
	tr := obs.FromContext(ctx)
	cctx, cancel := opt.evalCtx(ctx)
	defer cancel()
	stop := func() bool { return cctx.Err() != nil }
	if g := s.gate; g != nil {
		// Counts spin the same worker pools as streams, so they pass the
		// same admission gate; the queue wait respects the deadline.
		t0 := time.Now()
		err := g.Acquire(cctx, 1)
		tr.Observe(obs.StageAdmission, time.Since(t0))
		if err != nil {
			return nil, err
		}
		defer g.Release(1)
	}

	shards := s.planTraced(ctx, opt.Required)
	res := &CountResult{}
	idxSkipped, busy := planStats(shards)
	res.Skipped += idxSkipped
	res.SkippedIndex += idxSkipped
	if busy == 0 {
		return res, ctx.Err()
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// Materialize every worker's counter before starting any goroutine:
	// like run()'s evaluators, counter constructors may read shared state
	// that a running worker would already be mutating; a constructor panic
	// fails the count, not the process.
	workers := clampWorkers(opt.workers(), busy)
	counters := make([]docCounter, workers)
	if err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = resilience.NewPanicError(resilience.NoDoc, p)
			}
		}()
		for w := range counters {
			counters[w] = newCounter(stop)
		}
		return nil
	}(); err != nil {
		return nil, err
	}

	shardCh := dealShards(cctx, shards, fail)
	sweepStart := time.Now()
	for w := 0; w < workers; w++ {
		counter := counters[w]
		wg.Add(1)
		go func() {
			cur := resilience.NoDoc
			defer func() {
				if p := recover(); p != nil {
					fail(resilience.NewPanicError(cur, p))
				}
				wg.Done()
			}()
			var (
				total            ranked.Count
				docs             []DocCount
				scanned, skipped uint64
			)
			for si := range shardCh {
				es := &shards[si]
				n := es.work()
				for k := 0; k < n; k++ {
					if cctx.Err() != nil {
						break
					}
					pos := k
					if es.constrained {
						pos = int(es.cand[k])
					}
					doc := es.docs[pos]
					if !opt.Required.IsEmpty() && !opt.Required.Match(doc) {
						skipped++
						continue
					}
					scanned++
					cur = uint64(s.idOf(uint64(si), uint64(pos)))
					resilience.Inject(resilience.FailCountDoc, doc)
					c, err := counter(doc)
					if err != nil {
						fail(err)
						break
					}
					cur = resilience.NoDoc
					if c.IsZero() {
						continue
					}
					total = total.Add(c)
					if perDoc {
						docs = append(docs, DocCount{Doc: s.idOf(uint64(si), uint64(pos)), N: c})
					}
				}
			}
			mu.Lock()
			res.Total = res.Total.Add(total)
			res.PerDoc = append(res.PerDoc, docs...)
			res.Scanned += scanned
			res.Skipped += skipped
			mu.Unlock()
		}()
	}
	wg.Wait()
	sweep := time.Since(sweepStart)
	s.met.countDur.Observe(sweep)
	tr.ObserveItems(obs.StageCount, sweep, int64(res.Scanned))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if errors.Is(cctx.Err(), context.DeadlineExceeded) {
		// The per-count deadline (EvalOptions.Deadline) fired.
		return nil, context.DeadlineExceeded
	}
	sort.Slice(res.PerDoc, func(i, j int) bool { return res.PerDoc[i].Doc < res.PerDoc[j].Doc })
	return res, nil
}

// PageResult is one deterministic page of a corpus evaluation.
type PageResult struct {
	// Matches is the window [offset, offset+limit) of the corpus-wide
	// result sequence ordered by ascending DocID, each document's results
	// in the engine's radix order.
	Matches []Result
	// Total is the exact corpus-wide result count.
	Total                          ranked.Count
	Scanned, Skipped, SkippedIndex uint64
}

// PagePlan serves offset/limit pagination over the snapshot in ascending
// DocID order, in two phases: the corpus-wide counting sweep runs through
// CountPlan's shard workers (parallel, skip-index aware, no enumeration
// anywhere), then the window — located in the per-document prefix sums —
// is entered with a single DAG descent and streamed from only the
// documents it intersects. A page deep in the result sequence therefore
// costs the same as page 0 plus the parallel counting sweep, and the
// exact total rides along for free.
func (s *Store) PagePlan(ctx context.Context, p *enum.Plan, opt EvalOptions, offset uint64, limit int) (page *PageResult, err error) {
	defer resilience.RecoverTo(&err)
	cnt, err := s.CountPlan(ctx, p, opt, true)
	if err != nil {
		return nil, err
	}
	res := &PageResult{
		Total:        cnt.Total,
		Scanned:      cnt.Scanned,
		Skipped:      cnt.Skipped,
		SkippedIndex: cnt.SkippedIndex,
	}
	if limit <= 0 {
		return res, nil
	}
	// An offset at or past the total is an exhausted page — returned
	// before any per-document arithmetic, so boundary offsets (up to and
	// including math.MaxUint64, where offset+limit would wrap a uint64)
	// can never walk the subtraction loop into a wrapped window. Totals
	// beyond uint64 always have results at every uint64 offset.
	if u, fits := cnt.Total.Uint64(); fits && offset >= u {
		return res, nil
	}
	// PerDoc is ascending by DocID — exactly the page order. Documents
	// wholly before the window are subtracted from offset by count; the
	// first intersecting document is entered at rank offset.
	e := p.NewEnumerator()
	var wbuf []int32
	for _, dc := range cnt.PerDoc {
		if len(res.Matches) >= limit {
			break
		}
		if u, fits := dc.N.Uint64(); fits && offset >= u {
			offset -= u // the whole document precedes the window
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		doc, ok := s.Get(dc.Doc)
		if !ok {
			continue // unreachable: snapshot documents are immutable
		}
		e.Reset(doc)
		if offset > 0 {
			// Only the window's first document needs the rank descent;
			// later ones stream from their beginning.
			w, okW := e.Rank().WordAt(offset, wbuf)
			if !okW || !e.SeekLetters(w) {
				continue // unreachable on a consistent rank
			}
			wbuf = w
			offset = 0
		}
		for len(res.Matches) < limit {
			t, okT := e.Next()
			if !okT {
				break
			}
			res.Matches = append(res.Matches, Result{Doc: dc.Doc, Tuple: t})
		}
	}
	return res, nil
}
