package corpus

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spanjoin/internal/enum"
	"spanjoin/internal/obs"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/resilience"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// Result is one streamed match: the document it was extracted from and the
// span tuple, aligned with the Results' variable list.
type Result struct {
	Doc   DocID
	Tuple span.Tuple
}

// EvalOptions tune a corpus evaluation.
type EvalOptions struct {
	// Workers is the evaluation pool size; ≤ 0 selects GOMAXPROCS.
	Workers int
	// Buffer is the capacity of the result channel (the producer/consumer
	// decoupling window); ≤ 0 selects 256.
	Buffer int
	// Required is the query's literal requirement: documents that fail it
	// are skipped before any per-document work. When the store's skip
	// index is enabled, the requirement is additionally intersected
	// against the n-gram postings so non-candidates are never visited at
	// all — not even for a substring scan.
	Required prefilter.Requirement

	// Deadline, when non-zero, bounds the whole evaluation: the worker
	// pool runs under a context derived with this deadline, covering the
	// admission-queue wait, every graph build (aborted mid-sweep via the
	// enumerator's amortized interrupt), and every emit. An exceeded
	// deadline surfaces as context.DeadlineExceeded on Results.Err, with
	// the results produced so far already delivered.
	Deadline time.Time
	// Limit, when > 0, caps the number of results the stream delivers:
	// exactly Limit tuples are reserved across the worker pool, workers
	// stop as soon as the reservation is exhausted, and the stream ends
	// with a nil Err — a satisfied limit is normal exhaustion, not a
	// failure.
	Limit uint64
	// Budget, when > 0, caps the evaluation's work, measured in abstract
	// units: one per document byte scanned (charged when the document is
	// admitted to a worker, before its graph build) plus one per emitted
	// result. When the budget runs out the query stops with
	// resilience.ErrBudgetExceeded on Results.Err; results already
	// streamed are valid partial output. Checks are amortized — per
	// document at the worker loop and every few thousand positions inside
	// a build — so an unhit budget costs the hot path nothing.
	Budget uint64
}

func (o EvalOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o EvalOptions) buffer() int {
	if o.Buffer <= 0 {
		return 256
	}
	return o.Buffer
}

// evalCtx derives the pool context: the caller's context, tightened by the
// per-query deadline when one is set.
func (o EvalOptions) evalCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if !o.Deadline.IsZero() {
		return context.WithDeadline(ctx, o.Deadline)
	}
	return context.WithCancel(ctx)
}

// DocEval evaluates one document, calling emit for every result tuple.
// emit reports false when the evaluation is cancelled; the evaluator must
// stop promptly (returning nil — cancellation is not an error).
type DocEval func(doc string, emit func(span.Tuple) bool) error

// NewDocEval constructs one worker's evaluator. stop is the query's
// liveness probe — true once the query's context is done or its work
// budget is spent; constructors that build documents incrementally (the
// shared-enumerator path) install it as the enumerator's amortized build
// interrupt, and others may ignore it (their emit path already observes
// cancellation per tuple).
type NewDocEval func(stop func() bool) DocEval

// Results streams (doc, tuple) results of a corpus evaluation. Consume
// with Next until ok is false, then check Err; Close aborts early and
// releases the worker pool. Results is safe for use by one consumer
// goroutine; Close may additionally be called from any number of
// goroutines, at any time, concurrently with Next.
type Results struct {
	vars   span.VarList
	ch     chan Result
	cancel context.CancelFunc

	// limit/budget copy the options; reserved is the limit reservation
	// counter (reservations, not deliveries — see emit), work the budget
	// meter, delivered the tuples actually handed to the channel.
	limit     uint64
	budget    uint64
	reserved  atomic.Uint64
	work      atomic.Uint64
	delivered atomic.Uint64

	// scanned counts documents the evaluator actually ran on; skipped
	// counts documents excluded by the prefilter (skip-index candidate
	// selection or the literal scan). They sum to the snapshot size once
	// the stream drains without cancellation. skippedIndex is the subset
	// of skipped that the index excluded without even a substring scan.
	scanned      atomic.Uint64
	skipped      atomic.Uint64
	skippedIndex atomic.Uint64

	mu     sync.Mutex
	err    error
	closed bool
}

// Vars lists the output variables tuples are aligned with.
func (r *Results) Vars() span.VarList { return r.vars }

// Scanned reports how many documents the evaluator has run on so far.
func (r *Results) Scanned() uint64 { return r.scanned.Load() }

// Skipped reports how many documents the prefilter has excluded so far
// (index non-candidates plus documents failing the literal scan).
func (r *Results) Skipped() uint64 { return r.skipped.Load() }

// SkippedIndex reports the subset of Skipped the skip index excluded
// outright — documents never visited, not even for a substring scan.
func (r *Results) SkippedIndex() uint64 { return r.skippedIndex.Load() }

// Work reports the work units spent so far: one per byte of every scanned
// document plus one per delivered result. It is the meter EvalOptions'
// Budget is charged against.
func (r *Results) Work() uint64 { return r.work.Load() }

// Delivered reports how many results the stream has handed to its channel
// so far; bounded by EvalOptions' Limit when one is set.
func (r *Results) Delivered() uint64 { return r.delivered.Load() }

// overBudget reports whether the work meter has exhausted the budget.
func (r *Results) overBudget() bool {
	return r.budget > 0 && r.work.Load() >= r.budget
}

// limitExhausted reports whether every result slot under the limit has
// been reserved — workers stop starting new documents once it is.
func (r *Results) limitExhausted() bool {
	return r.limit > 0 && r.reserved.Load() >= r.limit
}

// Next returns the next result; ok is false once the stream is exhausted
// (all shards drained, an error occurred, or the context was cancelled) —
// distinguish the cases with Err.
func (r *Results) Next() (Result, bool) {
	res, ok := <-r.ch
	return res, ok
}

// Err reports the first evaluation error, or the context's error when the
// evaluation was cut short by cancellation. It is meaningful after Next
// has returned ok=false. A stream abandoned via Close reports nil, and so
// does one that ended by reaching its result limit; a panic in any pool
// goroutine surfaces as *resilience.PanicError, an exhausted budget as
// resilience.ErrBudgetExceeded, and an exceeded deadline as
// context.DeadlineExceeded.
func (r *Results) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed && errors.Is(r.err, context.Canceled) && !errors.Is(r.err, context.DeadlineExceeded) {
		// The consumer abandoned the stream: its Close races the closer
		// goroutine recording the pool's (or the caller context's)
		// cancellation, so whether err holds context.Canceled here is a
		// scheduling accident. Close means the cancellation was asked for —
		// report the stable answer, not the race's. Real failures (panic,
		// budget, deadline) set before Close still surface.
		return nil
	}
	return r.err
}

// Close aborts the evaluation and blocks until the worker pool has shut
// down. It is idempotent and safe to call from any number of goroutines
// concurrently — with each other, with Next, and after exhaustion.
func (r *Results) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	// Drain until the closer goroutine closes the channel. Concurrent
	// Closes (and a concurrent Next) all just race for leftover buffered
	// results; every path unblocks once the pool is gone.
	for range r.ch {
	}
}

func (r *Results) setErr(err error) {
	r.mu.Lock()
	if r.err == nil && !r.closed {
		r.err = err
	}
	r.mu.Unlock()
}

// exhausted returns an already-drained Results — the empty-corpus fast
// path, costing neither an enum.Prepare nor a worker goroutine.
func exhausted(vars span.VarList) *Results {
	r := &Results{vars: vars, ch: make(chan Result), cancel: func() {}}
	close(r.ch)
	return r
}

// Eval evaluates the compiled automaton over every document in the store
// (snapshotted at call time), fanning the shards out to a pool of workers.
// Each worker owns a Reset-able clone of one shared compiled enumerator,
// so the per-document cost is a single graph rebuild into preallocated
// arenas — the corpus-wide analogue of Spanner.NewStream. Results stream
// through a bounded channel in no guaranteed global order; per document
// they arrive in the engine's deterministic radix order.
func (s *Store) Eval(ctx context.Context, a *vsa.VSA, opt EvalOptions) (res *Results, err error) {
	defer resilience.RecoverTo(&err)
	shards := s.planTraced(ctx, opt.Required)
	total := 0
	for i := range shards {
		total += len(shards[i].docs)
	}
	if total == 0 {
		// Empty snapshot: nothing to compile, no pool to spin up.
		return exhausted(a.Vars), nil
	}
	p, err := enum.NewPlan(a)
	if err != nil {
		return nil, err
	}
	return s.evalShards(ctx, p, shards, opt)
}

// EvalPlan is Eval for a plan compiled ahead of time. The corpus layer
// caches one plan per compiled query, so repeated evaluations over the
// whole store reuse the trimmed automaton, closures, letter table and
// byte-class transition matrices with no per-call compilation at all. It
// returns resilience.ErrOverloaded (without starting anything) when the
// store's admission gate sheds the query.
func (s *Store) EvalPlan(ctx context.Context, p *enum.Plan, opt EvalOptions) (res *Results, err error) {
	defer resilience.RecoverTo(&err)
	return s.evalShards(ctx, p, s.planTraced(ctx, opt.Required), opt)
}

// evalShards runs the shared-enumerator fast path over a planned snapshot:
// every worker gets its own enumerator over the shared plan (one arena
// allocation) and cycles its documents through it with Reset. The query's
// stop probe doubles as the enumerator's amortized build interrupt, so a
// deadline or budget that dies mid-build on a huge document abandons the
// sweep instead of finishing it.
func (s *Store) evalShards(ctx context.Context, p *enum.Plan, shards []evalShard, opt EvalOptions) (*Results, error) {
	newEval := func(stop func() bool) DocEval {
		e := p.NewEnumerator()
		e.SetInterrupt(stop)
		return func(doc string, emit func(span.Tuple) bool) error {
			e.Reset(doc)
			for {
				t, ok := e.Next()
				if !ok {
					return nil
				}
				if !emit(t) {
					return nil
				}
			}
		}
	}
	return s.run(ctx, shards, p.Vars(), newEval, opt)
}

// EvalFunc is Eval for evaluators that cannot share a compiled enumerator
// (per-document query plans, string-equality selections): newEval is
// called once per worker and the returned DocEval is applied to each of
// the worker's documents. Like Eval, it honors opt.Required — candidate
// selection and the literal prefilter run before the evaluator sees a
// document.
func (s *Store) EvalFunc(ctx context.Context, vars span.VarList, newEval NewDocEval, opt EvalOptions) (res *Results, err error) {
	defer resilience.RecoverTo(&err)
	return s.run(ctx, s.planTraced(ctx, opt.Required), vars, newEval, opt)
}

// planStats tallies a planned snapshot: the documents the skip index
// excluded outright (everything outside a constrained shard's candidate
// list) and the number of shards with work.
func planStats(shards []evalShard) (idxSkipped uint64, busy int) {
	for i := range shards {
		if shards[i].constrained {
			idxSkipped += uint64(len(shards[i].docs) - len(shards[i].cand))
		}
		if shards[i].work() > 0 {
			busy++
		}
	}
	return idxSkipped, busy
}

// clampWorkers bounds the pool to the shards with work — the dealer never
// hands out empty ones, so extra workers (and their enumerator clones)
// would be allocated to idle forever.
func clampWorkers(workers, busy int) int {
	if workers > busy {
		workers = busy
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// dealShards starts the dealer: non-empty shards are handed to workers
// over the returned channel (a worker finishing a small shard immediately
// picks up the next); the dealer selects on ctx so cancellation stops the
// deal. A panic in the dealer is recovered into fail — the channel still
// closes, so workers drain and the pool shuts down cleanly.
func dealShards(ctx context.Context, shards []evalShard, fail func(error)) <-chan int {
	shardCh := make(chan int)
	go func() {
		defer close(shardCh)
		defer func() {
			if p := recover(); p != nil {
				fail(resilience.NewPanicError(resilience.NoDoc, p))
			}
		}()
		for si := range shards {
			if shards[si].work() == 0 {
				continue
			}
			resilience.Inject(resilience.FailDealer, si)
			select {
			case shardCh <- si:
			case <-ctx.Done():
				return
			}
		}
	}()
	return shardCh
}

// materializeEvals constructs every worker's evaluator before any
// goroutine starts (EvalFunc constructors may read shared state that a
// running worker would already be mutating), recovering a constructor
// panic into an error so a broken evaluator fails its query, not the
// process.
func materializeEvals(newEval NewDocEval, stop func() bool, workers int) (evals []DocEval, err error) {
	defer func() {
		if p := recover(); p != nil {
			evals, err = nil, resilience.NewPanicError(resilience.NoDoc, p)
		}
	}()
	evals = make([]DocEval, workers)
	for w := range evals {
		evals[w] = newEval(stop)
	}
	return evals, nil
}

// run is the shared fan-out loop: shards are dealt to workers over a
// channel, every emitted tuple is tagged with its stable DocID, and both
// the dealer and the emit path select on the derived context so
// cancellation aborts mid-enumeration. Shards planned with skip-index
// candidates visit only those positions; documents failing the literal
// requirement are counted skipped and never reach the evaluator.
//
// run is also where the resilience layer hooks in: the pool context
// carries the per-query deadline, the store's admission gate is acquired
// before anything spawns (a shed returns resilience.ErrOverloaded with no
// goroutine started), every pool goroutine — worker, dealer, closer —
// recovers panics into *resilience.PanicError on the stream, and the
// worker loop meters the limit and budget.
//
// run is also where the observability layer hooks in: a trace carried on
// ctx (obs.WithTrace) receives the admission wait and, once the pool has
// drained, the enumerate stage with the delivered-result count; the
// store's metrics record the same numbers corpus-wide.
//
//spanjoin:stage admission_wait
//spanjoin:stage enumerate
func (s *Store) run(ctx context.Context, shards []evalShard, vars span.VarList, newEval NewDocEval, opt EvalOptions) (*Results, error) {
	tr := obs.FromContext(ctx)
	cctx, cancel := opt.evalCtx(ctx)
	release := func() {}
	if g := s.gate; g != nil {
		// The admission wait respects the query's own deadline: a queued
		// query whose deadline fires sheds with the context's error.
		t0 := time.Now()
		err := g.Acquire(cctx, 1)
		tr.Observe(obs.StageAdmission, time.Since(t0))
		if err != nil {
			cancel()
			return nil, err
		}
		var once sync.Once
		release = func() { once.Do(func() { g.Release(1) }) }
	}
	res := &Results{
		vars:   vars,
		ch:     make(chan Result, opt.buffer()),
		cancel: cancel,
		limit:  opt.Limit,
		budget: opt.Budget,
	}

	idxSkipped, busy := planStats(shards)
	res.skipped.Add(idxSkipped)
	res.skippedIndex.Add(idxSkipped)
	if busy == 0 {
		// Nothing to visit (empty snapshot, or the index excluded every
		// document): no pool, no dealer — the stream is born exhausted.
		cancel() // release the derived context's registration on ctx
		release()
		close(res.ch)
		return res, nil
	}

	// stop is the query liveness probe workers and builds poll: dead
	// context (cancelled, deadline fired) or spent budget.
	stop := func() bool { return cctx.Err() != nil || res.overBudget() }
	evals, err := materializeEvals(newEval, stop, clampWorkers(opt.workers(), busy))
	if err != nil {
		cancel()
		release()
		return nil, err
	}

	shardCh := dealShards(cctx, shards, func(err error) {
		res.setErr(err)
		cancel()
	})
	done := cctx.Done()
	poolStart := time.Now()
	var wg sync.WaitGroup
	for w := range evals {
		eval := evals[w]
		wg.Add(1)
		go func() {
			// cur tracks the document under evaluation so a recovered
			// panic can name it; NoDoc between documents.
			cur := resilience.NoDoc
			defer func() {
				if p := recover(); p != nil {
					res.setErr(resilience.NewPanicError(cur, p))
					cancel()
				}
				wg.Done()
			}()
			for si := range shardCh {
				es := &shards[si]
				n := es.work()
				for k := 0; k < n; k++ {
					pos := k
					if es.constrained {
						pos = int(es.cand[k])
					}
					if cctx.Err() != nil {
						return
					}
					if res.limitExhausted() {
						// Every result slot is reserved: the query is done;
						// reserved sends complete, nothing new starts.
						return
					}
					if res.overBudget() {
						res.setErr(resilience.ErrBudgetExceeded)
						cancel()
						return
					}
					doc := es.docs[pos]
					if !opt.Required.IsEmpty() && !opt.Required.Match(doc) {
						// Candidate selection over-approximates (n-gram
						// false positives) or the index is off: the literal
						// scan is the exact filter.
						res.skipped.Add(1)
						continue
					}
					res.scanned.Add(1)
					// Charge the document's scan cost up front, so a build
					// that would blow the budget trips the stop probe
					// mid-sweep instead of completing.
					res.work.Add(uint64(len(doc)))
					id := s.idOf(uint64(si), uint64(pos))
					cur = uint64(id)
					resilience.Inject(resilience.FailWorkerDoc, doc)
					emit := func(t span.Tuple) bool {
						if res.limit > 0 && res.reserved.Add(1) > res.limit {
							// Over-reserved: this tuple is beyond the limit.
							// Stop this producer; the loop above stops the
							// rest. No error — a met limit is exhaustion.
							return false
						}
						select {
						case res.ch <- Result{Doc: id, Tuple: t}:
							res.delivered.Add(1)
							res.work.Add(1)
							return true
						case <-done:
							return false
						}
					}
					if err := eval(doc, emit); err != nil {
						res.setErr(err)
						cancel()
						return
					}
					cur = resilience.NoDoc
				}
			}
		}()
	}

	go func() {
		// The closer owns shutdown: it must close the channel and release
		// the gate on every path, including a panic in wg.Wait bookkeeping.
		defer func() {
			if p := recover(); p != nil {
				res.setErr(resilience.NewPanicError(resilience.NoDoc, p))
			}
			// The pool is gone: record its lifetime (the enumerate stage)
			// and final counters before the channel closes — the consumer
			// reads the trace only after Next returns false, so the close
			// below publishes these writes to it.
			d := time.Since(poolStart)
			s.met.evalDur.Observe(d)
			tr.ObserveItems(obs.StageEnumerate, d, int64(res.delivered.Load()))
			s.met.docsScanned.Add(res.scanned.Load())
			s.met.docsSkipped.Add(res.skipped.Load())
			s.met.results.Add(res.delivered.Load())
			// Release the derived context's registration on ctx so streams
			// drained without Close don't leak it (Close's own cancel stays
			// idempotent), and give the admission slot back only now —
			// admission bounds live pools, not just query starts.
			cancel()
			release()
			close(res.ch)
		}()
		wg.Wait()
		// Surface cancellation that came from the caller's context (not
		// from Close) as the stream error; a deadline set via EvalOptions
		// lives on the derived context only, so check it second.
		if err := ctx.Err(); err != nil {
			res.setErr(err)
		} else if errors.Is(cctx.Err(), context.DeadlineExceeded) {
			res.setErr(context.DeadlineExceeded)
		} else if res.overBudget() {
			// A budget that ran out mid-document trips the build interrupt
			// without reaching another worker's pre-document check (the
			// single-large-document case); the meter itself is the record
			// that output may be truncated.
			res.setErr(resilience.ErrBudgetExceeded)
		}
	}()
	return res, nil
}
