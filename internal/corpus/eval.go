package corpus

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"spanjoin/internal/enum"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// Result is one streamed match: the document it was extracted from and the
// span tuple, aligned with the Results' variable list.
type Result struct {
	Doc   DocID
	Tuple span.Tuple
}

// EvalOptions tune a corpus evaluation.
type EvalOptions struct {
	// Workers is the evaluation pool size; ≤ 0 selects GOMAXPROCS.
	Workers int
	// Buffer is the capacity of the result channel (the producer/consumer
	// decoupling window); ≤ 0 selects 256.
	Buffer int
	// Required is the query's literal requirement: documents that fail it
	// are skipped before any per-document work. When the store's skip
	// index is enabled, the requirement is additionally intersected
	// against the n-gram postings so non-candidates are never visited at
	// all — not even for a substring scan.
	Required prefilter.Requirement
}

func (o EvalOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o EvalOptions) buffer() int {
	if o.Buffer <= 0 {
		return 256
	}
	return o.Buffer
}

// DocEval evaluates one document, calling emit for every result tuple.
// emit reports false when the evaluation is cancelled; the evaluator must
// stop promptly (returning nil — cancellation is not an error).
type DocEval func(doc string, emit func(span.Tuple) bool) error

// Results streams (doc, tuple) results of a corpus evaluation. Consume
// with Next until ok is false, then check Err; Close aborts early and
// releases the worker pool. Results is safe for use by one consumer
// goroutine.
type Results struct {
	vars   span.VarList
	ch     chan Result
	cancel context.CancelFunc

	// scanned counts documents the evaluator actually ran on; skipped
	// counts documents excluded by the prefilter (skip-index candidate
	// selection or the literal scan). They sum to the snapshot size once
	// the stream drains without cancellation. skippedIndex is the subset
	// of skipped that the index excluded without even a substring scan.
	scanned      atomic.Uint64
	skipped      atomic.Uint64
	skippedIndex atomic.Uint64

	mu     sync.Mutex
	err    error
	closed bool
}

// Vars lists the output variables tuples are aligned with.
func (r *Results) Vars() span.VarList { return r.vars }

// Scanned reports how many documents the evaluator has run on so far.
func (r *Results) Scanned() uint64 { return r.scanned.Load() }

// Skipped reports how many documents the prefilter has excluded so far
// (index non-candidates plus documents failing the literal scan).
func (r *Results) Skipped() uint64 { return r.skipped.Load() }

// SkippedIndex reports the subset of Skipped the skip index excluded
// outright — documents never visited, not even for a substring scan.
func (r *Results) SkippedIndex() uint64 { return r.skippedIndex.Load() }

// Next returns the next result; ok is false once the stream is exhausted
// (all shards drained, an error occurred, or the context was cancelled) —
// distinguish the cases with Err.
func (r *Results) Next() (Result, bool) {
	res, ok := <-r.ch
	return res, ok
}

// Err reports the first evaluation error, or the context's error when the
// evaluation was cut short by cancellation. It is meaningful after Next
// has returned ok=false. A stream abandoned via Close reports nil.
func (r *Results) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close aborts the evaluation and blocks until the worker pool has shut
// down. It is safe to call Close multiple times, or after exhaustion.
func (r *Results) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	for range r.ch {
	}
}

func (r *Results) setErr(err error) {
	r.mu.Lock()
	if r.err == nil && !r.closed {
		r.err = err
	}
	r.mu.Unlock()
}

// exhausted returns an already-drained Results — the empty-corpus fast
// path, costing neither an enum.Prepare nor a worker goroutine.
func exhausted(vars span.VarList) *Results {
	r := &Results{vars: vars, ch: make(chan Result), cancel: func() {}}
	close(r.ch)
	return r
}

// Eval evaluates the compiled automaton over every document in the store
// (snapshotted at call time), fanning the shards out to a pool of workers.
// Each worker owns a Reset-able clone of one shared compiled enumerator,
// so the per-document cost is a single graph rebuild into preallocated
// arenas — the corpus-wide analogue of Spanner.NewStream. Results stream
// through a bounded channel in no guaranteed global order; per document
// they arrive in the engine's deterministic radix order.
func (s *Store) Eval(ctx context.Context, a *vsa.VSA, opt EvalOptions) (*Results, error) {
	shards := s.plan(opt.Required)
	total := 0
	for i := range shards {
		total += len(shards[i].docs)
	}
	if total == 0 {
		// Empty snapshot: nothing to compile, no pool to spin up.
		return exhausted(a.Vars), nil
	}
	p, err := enum.NewPlan(a)
	if err != nil {
		return nil, err
	}
	return s.evalShards(ctx, p, shards, opt), nil
}

// EvalPlan is Eval for a plan compiled ahead of time. The corpus layer
// caches one plan per compiled query, so repeated evaluations over the
// whole store reuse the trimmed automaton, closures, letter table and
// byte-class transition table with no per-call compilation at all — the
// table is built exactly once per cached query.
func (s *Store) EvalPlan(ctx context.Context, p *enum.Plan, opt EvalOptions) *Results {
	return s.evalShards(ctx, p, s.plan(opt.Required), opt)
}

// evalShards runs the shared-enumerator fast path over a planned snapshot:
// every worker gets its own enumerator over the shared plan (one arena
// allocation) and cycles its documents through it with Reset.
func (s *Store) evalShards(ctx context.Context, p *enum.Plan, shards []evalShard, opt EvalOptions) *Results {
	newEval := func() DocEval {
		e := p.NewEnumerator()
		return func(doc string, emit func(span.Tuple) bool) error {
			e.Reset(doc)
			for {
				t, ok := e.Next()
				if !ok {
					return nil
				}
				if !emit(t) {
					return nil
				}
			}
		}
	}
	return s.run(ctx, shards, p.Vars(), newEval, opt)
}

// EvalFunc is Eval for evaluators that cannot share a compiled enumerator
// (per-document query plans, string-equality selections): newEval is
// called once per worker and the returned DocEval is applied to each of
// the worker's documents. Like Eval, it honors opt.Required — candidate
// selection and the literal prefilter run before the evaluator sees a
// document.
func (s *Store) EvalFunc(ctx context.Context, vars span.VarList, newEval func() DocEval, opt EvalOptions) *Results {
	return s.run(ctx, s.plan(opt.Required), vars, newEval, opt)
}

// planStats tallies a planned snapshot: the documents the skip index
// excluded outright (everything outside a constrained shard's candidate
// list) and the number of shards with work.
func planStats(shards []evalShard) (idxSkipped uint64, busy int) {
	for i := range shards {
		if shards[i].constrained {
			idxSkipped += uint64(len(shards[i].docs) - len(shards[i].cand))
		}
		if shards[i].work() > 0 {
			busy++
		}
	}
	return idxSkipped, busy
}

// clampWorkers bounds the pool to the shards with work — the dealer never
// hands out empty ones, so extra workers (and their enumerator clones)
// would be allocated to idle forever.
func clampWorkers(workers, busy int) int {
	if workers > busy {
		workers = busy
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// dealShards starts the dealer: non-empty shards are handed to workers
// over the returned channel (a worker finishing a small shard immediately
// picks up the next); the dealer selects on ctx so cancellation stops the
// deal.
func dealShards(ctx context.Context, shards []evalShard) <-chan int {
	shardCh := make(chan int)
	go func() {
		defer close(shardCh)
		for si := range shards {
			if shards[si].work() == 0 {
				continue
			}
			select {
			case shardCh <- si:
			case <-ctx.Done():
				return
			}
		}
	}()
	return shardCh
}

// run is the shared fan-out loop: shards are dealt to workers over a
// channel, every emitted tuple is tagged with its stable DocID, and both
// the dealer and the emit path select on the derived context so
// cancellation aborts mid-enumeration. Shards planned with skip-index
// candidates visit only those positions; documents failing the literal
// requirement are counted skipped and never reach the evaluator.
func (s *Store) run(ctx context.Context, shards []evalShard, vars span.VarList, newEval func() DocEval, opt EvalOptions) *Results {
	cctx, cancel := context.WithCancel(ctx)
	res := &Results{
		vars:   vars,
		ch:     make(chan Result, opt.buffer()),
		cancel: cancel,
	}

	idxSkipped, busy := planStats(shards)
	res.skipped.Add(idxSkipped)
	res.skippedIndex.Add(idxSkipped)
	if busy == 0 {
		// Nothing to visit (empty snapshot, or the index excluded every
		// document): no pool, no dealer — the stream is born exhausted.
		cancel() // release the derived context's registration on ctx
		close(res.ch)
		return res
	}

	shardCh := dealShards(cctx, shards)
	workers := clampWorkers(opt.workers(), busy)
	done := cctx.Done()
	// Materialize every worker's evaluator before starting any goroutine:
	// EvalFunc constructors may read shared state that a running worker
	// would already be mutating.
	evals := make([]DocEval, workers)
	for w := range evals {
		evals[w] = newEval()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		eval := evals[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range shardCh {
				es := &shards[si]
				n := es.work()
				for k := 0; k < n; k++ {
					pos := k
					if es.constrained {
						pos = int(es.cand[k])
					}
					if cctx.Err() != nil {
						return
					}
					doc := es.docs[pos]
					if !opt.Required.IsEmpty() && !opt.Required.Match(doc) {
						// Candidate selection over-approximates (n-gram
						// false positives) or the index is off: the literal
						// scan is the exact filter.
						res.skipped.Add(1)
						continue
					}
					res.scanned.Add(1)
					id := s.idOf(uint64(si), uint64(pos))
					emit := func(t span.Tuple) bool {
						select {
						case res.ch <- Result{Doc: id, Tuple: t}:
							return true
						case <-done:
							return false
						}
					}
					if err := eval(doc, emit); err != nil {
						res.setErr(err)
						cancel()
						return
					}
				}
			}
		}()
	}

	go func() {
		wg.Wait()
		// Surface cancellation that came from the caller's context (not
		// from Close) as the stream error.
		if err := ctx.Err(); err != nil {
			res.setErr(err)
		}
		// The pool is gone: release the derived context's registration on
		// ctx so streams drained without Close don't leak it (Close's own
		// cancel stays idempotent).
		cancel()
		close(res.ch)
	}()
	return res
}
