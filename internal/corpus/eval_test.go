package corpus

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

func drainResults(t *testing.T, r *Results) map[DocID][]span.Tuple {
	t.Helper()
	out := make(map[DocID][]span.Tuple)
	for {
		res, ok := r.Next()
		if !ok {
			break
		}
		out[res.Doc] = append(out[res.Doc], res.Tuple)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEvalMatchesPerDocumentEnum: the sharded fan-out must produce, per
// document, exactly the sequential enumeration — same tuples, same order.
func TestEvalMatchesPerDocumentEnum(t *testing.T) {
	a := rgx.MustCompilePattern(`(a|b)*x{a+}(a|b)*`)
	s := NewStore(4)
	docs := []string{"aba", "bb", "", "aaab", "ba", "abab", "a", "baab", "bbba"}
	ids := make([]DocID, len(docs))
	for i, d := range docs {
		ids[i] = s.Add(d)
	}
	for _, workers := range []int{0, 1, 3, 8} {
		res, err := s.Eval(context.Background(), a, EvalOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := drainResults(t, res)
		for i, d := range docs {
			_, want, err := enum.Eval(a, d)
			if err != nil {
				t.Fatal(err)
			}
			have := got[ids[i]]
			if len(have) != len(want) {
				t.Fatalf("workers=%d doc %q: %d tuples, want %d", workers, d, len(have), len(want))
			}
			for k := range want {
				if have[k].Compare(want[k]) != 0 {
					t.Fatalf("workers=%d doc %q tuple %d: %v, want %v (order must match)", workers, d, k, have[k], want[k])
				}
			}
		}
	}
}

func TestEvalEmptyStore(t *testing.T) {
	a := rgx.MustCompilePattern(`x{a}`)
	res, err := NewStore(3).Eval(context.Background(), a, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainResults(t, res); len(got) != 0 {
		t.Fatalf("got %d docs with results from empty store", len(got))
	}
}

func TestEvalRequiredLiteralPrefilter(t *testing.T) {
	a := rgx.MustCompilePattern(`(a|b|c)*x{needle}(a|b|c)*`)
	s := NewStore(2)
	hit := s.Add("aaneedlebb")
	s.Add("abcabc")
	res, err := s.Eval(context.Background(), a, EvalOptions{Required: prefilter.New("needle")})
	if err != nil {
		t.Fatal(err)
	}
	got := drainResults(t, res)
	if len(got) != 1 || len(got[hit]) != 1 {
		t.Fatalf("got %v, want exactly one tuple for the needle doc", got)
	}
}

// TestEvalCancellation: cancelling the context mid-stream must terminate
// the stream promptly and surface the context's error.
func TestEvalCancellation(t *testing.T) {
	a := rgx.MustCompilePattern(`a*x{a*}a*`) // quadratic result count per doc
	s := NewStore(4)
	big := ""
	for i := 0; i < 200; i++ {
		big += "a"
	}
	for i := 0; i < 32; i++ {
		s.Add(big)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res, err := s.Eval(ctx, a, EvalOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := res.Next(); !ok {
			t.Fatal("stream ended before cancellation")
		}
	}
	cancel()
	n := 0
	for {
		_, ok := res.Next()
		if !ok {
			break
		}
		n++
	}
	// At most the buffered window plus one in-flight send per worker can
	// trail the cancellation.
	if n > 1024 {
		t.Fatalf("%d results after cancel — cancellation not propagating", n)
	}
	if err := res.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

func TestEvalCloseAbandonsStream(t *testing.T) {
	a := rgx.MustCompilePattern(`a*x{a*}a*`)
	s := NewStore(2)
	for i := 0; i < 8; i++ {
		s.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	}
	res, err := s.Eval(context.Background(), a, EvalOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Next(); !ok {
		t.Fatal("no first result")
	}
	res.Close()
	res.Close() // idempotent
	if err := res.Err(); err != nil {
		t.Fatalf("Err after Close = %v, want nil (deliberate abandonment)", err)
	}
}

// TestEvalFuncErrorAborts: an evaluator error must cancel the whole
// evaluation and surface through Err.
func TestEvalFuncErrorAborts(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 16; i++ {
		s.Add(fmt.Sprintf("doc-%d", i))
	}
	boom := errors.New("doc exploded")
	newEval := func(func() bool) DocEval {
		return func(doc string, emit func(span.Tuple) bool) error {
			if doc == "doc-7" {
				return boom
			}
			return nil
		}
	}
	res, err := s.EvalFunc(context.Background(), span.NewVarList("x"), newEval, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := res.Next(); !ok {
			break
		}
	}
	if err := res.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
}

// TestEvalSeesSnapshotAtCall: documents present before Eval are always
// included, even when Adds race with the evaluation.
func TestEvalSeesSnapshotAtCall(t *testing.T) {
	a := rgx.MustCompilePattern(`x{a+}`)
	s := NewStore(4)
	var pre []DocID
	for i := 0; i < 20; i++ {
		pre = append(pre, s.Add("aaa"))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s.Add("aaa")
		}
	}()
	res, err := s.Eval(context.Background(), a, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := drainResults(t, res)
	<-done
	for _, id := range pre {
		if len(got[id]) == 0 {
			t.Fatalf("doc %d added before Eval missing from results", id)
		}
	}
}

// TestEvalEmptyStoreSkipsPrepare: an empty snapshot must return an
// exhausted stream without paying enum.Prepare or spawning a worker. The
// automaton is deliberately non-functional — Prepare would error — so a
// nil error proves the early return.
func TestEvalEmptyStoreSkipsPrepare(t *testing.T) {
	bad := vsa.New(span.NewVarList("x"))
	bad.AddOpen(bad.Init, 0, bad.Final) // x opens, never closes
	if _, err := enum.Prepare(bad, ""); err == nil {
		t.Fatal("test automaton unexpectedly functional")
	}
	res, err := NewStore(3).Eval(context.Background(), bad, EvalOptions{})
	if err != nil {
		t.Fatalf("empty store must not reach Prepare, got %v", err)
	}
	if _, ok := res.Next(); ok {
		t.Fatal("empty store produced a result")
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	res.Close() // must be safe on the exhausted fast path
	if res.Scanned() != 0 || res.Skipped() != 0 {
		t.Fatalf("stats = %d/%d, want 0/0", res.Scanned(), res.Skipped())
	}
}

// TestEvalIndexedCandidates: with the skip index on, non-candidate
// documents are skipped without a scan, results match the unindexed run,
// and the stats account for every snapshot document.
func TestEvalIndexedCandidates(t *testing.T) {
	a := rgx.MustCompilePattern(`(a|b|c|n|e|d|l)*x{needle}(a|b|c|n|e|d|l)*`)
	req := prefilter.New("needle")
	docs := []string{"aaneedlebb", "abcabc", "cc", "needle", "nee", "dle", "abcneedle"}
	for _, indexed := range []bool{false, true} {
		s := NewStore(2)
		if indexed {
			s.EnableIndex()
			if !s.Indexed() {
				t.Fatal("Indexed() = false after EnableIndex")
			}
		}
		ids := make([]DocID, len(docs))
		for i, d := range docs {
			ids[i] = s.Add(d)
		}
		res, err := s.Eval(context.Background(), a, EvalOptions{Required: req})
		if err != nil {
			t.Fatal(err)
		}
		got := drainResults(t, res)
		for i, d := range docs {
			_, want, err := enum.Eval(a, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(got[ids[i]]) != len(want) {
				t.Fatalf("indexed=%v doc %q: %d tuples, want %d", indexed, d, len(got[ids[i]]), len(want))
			}
		}
		if n := res.Scanned() + res.Skipped(); n != uint64(len(docs)) {
			t.Fatalf("indexed=%v: scanned+skipped = %d, want %d", indexed, n, len(docs))
		}
		if res.Scanned() != 3 { // exactly the three docs containing "needle"
			t.Fatalf("indexed=%v: scanned = %d, want 3", indexed, res.Scanned())
		}
	}
}

// TestEvalIndexBackfill: EnableIndex after Adds must index the existing
// documents (and stay idempotent).
func TestEvalIndexBackfill(t *testing.T) {
	a := rgx.MustCompilePattern(`(s|i|g|n|a|l| )*x{signal}(s|i|g|n|a|l| )*`)
	s := NewStore(4)
	hit := s.Add("a signal in noise"[3:]) // "ignal in noise" — no match
	_ = hit
	want := s.Add("signal signal")
	s.Add("nothing")
	s.EnableIndex()
	s.EnableIndex() // idempotent
	s.Add("late signal")
	res, err := s.Eval(context.Background(), a, EvalOptions{Required: prefilter.New("signal")})
	if err != nil {
		t.Fatal(err)
	}
	got := drainResults(t, res)
	if len(got[want]) == 0 {
		t.Fatal("backfilled document lost its matches")
	}
	if res.Skipped() == 0 {
		t.Fatal("index skipped nothing")
	}
}
