package corpus

import (
	"container/list"
	"sync"
	"sync/atomic"

	"spanjoin/internal/resilience"
)

// Cache is an LRU cache of compiled query artifacts keyed by source text
// plus options, with singleflight compilation: concurrent Get calls for
// the same missing key compile once and share the result. Compilation
// errors are returned to every waiter but never cached, so a transient
// failure does not poison the key.
type Cache struct {
	hits, misses atomic.Uint64

	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	entries  map[string]*list.Element
	inflight map[string]*flight
}

type cacheEntry struct {
	key string
	val any
}

// flight is one in-progress compilation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache creates a cache holding at most capacity compiled artifacts;
// capacity ≤ 0 selects 128.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 128
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Get returns the cached artifact for key, compiling it with compile on a
// miss. Concurrent Gets of one missing key run compile exactly once; the
// losers count as hits (they reuse the winner's work).
func (c *Cache) Get(key string, compile func() (any, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*cacheEntry).val, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err == nil {
			c.hits.Add(1)
		} else {
			c.misses.Add(1)
		}
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	c.misses.Add(1)
	func() {
		// A panicking compile must not strand the waiters blocked on
		// f.done (or leave the inflight entry wedged): recover it into a
		// typed error that every waiter sees. Like real compile errors it
		// is never cached, so the key is not poisoned.
		defer func() {
			if p := recover(); p != nil {
				f.val, f.err = nil, resilience.NewPanicError(resilience.NoDoc, p)
			}
		}()
		resilience.Inject(resilience.FailCacheFill, key)
		f.val, f.err = compile()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		if el, ok := c.entries[key]; ok {
			// Lost a race with an eviction-refill cycle; keep the resident
			// value so all callers observe one artifact per key.
			c.ll.MoveToFront(el)
			f.val = el.Value.(*cacheEntry).val
		} else {
			c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: f.val})
			for c.ll.Len() > c.capacity {
				old := c.ll.Back()
				c.ll.Remove(old)
				delete(c.entries, old.Value.(*cacheEntry).key)
			}
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// Len reports the number of resident artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hit and miss counts. A waiter that joined an
// in-flight compilation counts as a hit when the compilation succeeded
// (it reused the winner's work) and as a miss when it failed; the
// compiling caller always counts as a miss.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
