package corpus

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreAddGetRoundtrip(t *testing.T) {
	s := NewStore(4)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	var ids []DocID
	for i := 0; i < 37; i++ {
		ids = append(ids, s.Add(fmt.Sprintf("doc-%d", i)))
	}
	if s.Len() != 37 {
		t.Fatalf("Len = %d, want 37", s.Len())
	}
	for i, id := range ids {
		doc, ok := s.Get(id)
		if !ok || doc != fmt.Sprintf("doc-%d", i) {
			t.Fatalf("Get(%d) = %q, %v", id, doc, ok)
		}
	}
	if _, ok := s.Get(DocID(1 << 40)); ok {
		t.Fatal("Get of unknown ID reported ok")
	}
}

func TestStoreDefaultsShardCount(t *testing.T) {
	if n := NewStore(0).NumShards(); n < 1 {
		t.Fatalf("NumShards = %d with default", n)
	}
}

// TestStoreConcurrentAddStableIDs: IDs handed out under concurrent Adds
// must be unique and must keep resolving to the document they were
// assigned to.
func TestStoreConcurrentAddStableIDs(t *testing.T) {
	s := NewStore(8)
	const goroutines, perG = 8, 500
	got := make([][]DocID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				got[g] = append(got[g], s.Add(fmt.Sprintf("g%d-i%d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[DocID]bool)
	for g := range got {
		for i, id := range got[g] {
			if seen[id] {
				t.Fatalf("duplicate DocID %d", id)
			}
			seen[id] = true
			doc, ok := s.Get(id)
			if !ok || doc != fmt.Sprintf("g%d-i%d", g, i) {
				t.Fatalf("Get(%d) = %q, %v; want g%d-i%d", id, doc, ok, g, i)
			}
		}
	}
	if s.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", s.Len(), goroutines*perG)
	}
}
