package corpus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"spanjoin/internal/resilience"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
)

// TestWorkerPanicIsolated is the acceptance property of the panic
// isolation layer: a document whose evaluation panics fails its own query
// with *resilience.PanicError naming the document — while concurrent
// healthy queries over the same store run to completion, and the process
// survives.
func TestWorkerPanicIsolated(t *testing.T) {
	s := NewStore(4)
	var poisonID DocID
	for i := 0; i < 32; i++ {
		id := s.Add(fmt.Sprintf("doc-%d", i))
		if i == 13 {
			poisonID = id
		}
	}
	poisoned, _ := s.Get(poisonID)

	newPoisoned := func(func() bool) DocEval {
		return func(doc string, emit func(span.Tuple) bool) error {
			if doc == poisoned {
				panic("poisoned document")
			}
			emit(span.Tuple{})
			return nil
		}
	}
	newHealthy := func(func() bool) DocEval {
		return func(doc string, emit func(span.Tuple) bool) error {
			emit(span.Tuple{})
			return nil
		}
	}

	var wg sync.WaitGroup
	healthyErrs := make([]error, 4)
	healthyCounts := make([]int, 4)
	for i := range healthyErrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.EvalFunc(context.Background(), span.NewVarList("x"), newHealthy, EvalOptions{})
			if err != nil {
				healthyErrs[i] = err
				return
			}
			for {
				if _, ok := res.Next(); !ok {
					break
				}
				healthyCounts[i]++
			}
			healthyErrs[i] = res.Err()
		}()
	}

	res, err := s.EvalFunc(context.Background(), span.NewVarList("x"), newPoisoned, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := res.Next(); !ok {
			break
		}
	}
	var pe *resilience.PanicError
	if err := res.Err(); !errors.As(err, &pe) {
		t.Fatalf("poisoned query Err = %v, want *resilience.PanicError", err)
	}
	if pe.Doc != uint64(poisonID) {
		t.Fatalf("PanicError.Doc = %d, want %d", pe.Doc, poisonID)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}

	wg.Wait()
	for i, err := range healthyErrs {
		if err != nil {
			t.Fatalf("concurrent healthy query %d failed: %v", i, err)
		}
		if healthyCounts[i] != s.Len() {
			t.Fatalf("healthy query %d got %d results, want %d", i, healthyCounts[i], s.Len())
		}
	}
}

// TestEvalConstructorPanicIsolated: a panicking evaluator constructor
// fails the call synchronously with a typed error instead of crashing.
func TestEvalConstructorPanicIsolated(t *testing.T) {
	s := NewStore(2)
	s.Add("doc")
	newEval := func(func() bool) DocEval { panic("constructor exploded") }
	_, err := s.EvalFunc(context.Background(), span.NewVarList("x"), newEval, EvalOptions{})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *resilience.PanicError", err)
	}
	if pe.Doc != resilience.NoDoc {
		t.Fatalf("constructor panic blamed doc %d, want NoDoc", pe.Doc)
	}
}

// TestCountPanicIsolated: the counting fan-out recovers a panicking
// counter into a typed error too.
func TestCountPanicIsolated(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 8; i++ {
		s.Add(fmt.Sprintf("doc-%d", i))
	}
	newEval := func(func() bool) DocEval {
		return func(doc string, emit func(span.Tuple) bool) error {
			if doc == "doc-5" {
				panic("count blew up")
			}
			return nil
		}
	}
	_, err := s.CountFunc(context.Background(), newEval, EvalOptions{}, false)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *resilience.PanicError", err)
	}
}

// TestCachePanicIsolated: a panicking compile func surfaces as an error
// to every waiter of the singleflight, leaves the key uncached, and does
// not wedge later fills.
func TestCachePanicIsolated(t *testing.T) {
	c := NewCache(4)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Get("k", func() (any, error) {
				time.Sleep(time.Millisecond)
				panic("compile exploded")
			})
		}()
	}
	wg.Wait()
	var sawPanic bool
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d got nil error from a panicking fill", i)
		}
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			sawPanic = true
		}
	}
	if !sawPanic {
		t.Fatal("no waiter saw the PanicError")
	}
	// The key was not poisoned: a later fill succeeds and caches.
	v, err := c.Get("k", func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("fill after panic: %v, %v", v, err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache resident = %d, want 1", c.Len())
	}
}

// TestEvalDeadline: an EvalOptions deadline surfaces as
// context.DeadlineExceeded on the stream, not as a plain cancellation.
func TestEvalDeadline(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 64; i++ {
		s.Add("aaaa")
	}
	a := rgx.MustCompilePattern(`(a)*x{a+}(a)*`)
	res, err := s.Eval(context.Background(), a, EvalOptions{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := res.Next(); !ok {
			break
		}
	}
	if err := res.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEvalBudget: running out of budget stops the query with the typed
// error and reports the work done.
func TestEvalBudget(t *testing.T) {
	s := NewStore(1)
	for i := 0; i < 8; i++ {
		s.Add("aaaaaaaaaaaaaaaa") // 16 bytes each
	}
	a := rgx.MustCompilePattern(`(a)*x{a+}(a)*`)
	res, err := s.Eval(context.Background(), a, EvalOptions{Workers: 1, Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := res.Next(); !ok {
			break
		}
		n++
	}
	if err := res.Err(); !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("Err = %v, want ErrBudgetExceeded", err)
	}
	if res.Work() < 16 {
		t.Fatalf("Work = %d, want ≥ 16 (one document charged)", res.Work())
	}
	if res.Scanned() == 0 || res.Scanned() == 8 {
		t.Fatalf("Scanned = %d, want partial progress", res.Scanned())
	}
	_ = n // partial results are valid
}

// TestEvalLimit: the limit delivers exactly n results and ends the
// stream with a nil error.
func TestEvalLimit(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 16; i++ {
		s.Add("aaa") // `x{a+}` unanchored has several matches per doc
	}
	a := rgx.MustCompilePattern(`(a|b)*x{a+}(a|b)*`)
	for _, limit := range []uint64{1, 7, 32} {
		res, err := s.Eval(context.Background(), a, EvalOptions{Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for {
			if _, ok := res.Next(); !ok {
				break
			}
			got++
		}
		if got != limit {
			t.Fatalf("limit %d delivered %d results", limit, got)
		}
		if err := res.Err(); err != nil {
			t.Fatalf("limit %d: Err = %v, want nil (a met limit is exhaustion)", limit, err)
		}
		if res.Delivered() != limit {
			t.Fatalf("Delivered = %d, want %d", res.Delivered(), limit)
		}
	}
}

// TestGateShedsAndReleases: with capacity 1 and no queue, a second query
// sheds with ErrOverloaded while the first holds the slot, and admission
// recovers once the first stream closes.
func TestGateShedsAndReleases(t *testing.T) {
	s := NewStore(2)
	s.SetGate(resilience.NewGate(1, 0))
	for i := 0; i < 64; i++ {
		s.Add("aaaaaaaa")
	}
	a := rgx.MustCompilePattern(`(a)*x{a+}(a)*`)

	res, err := s.Eval(context.Background(), a, EvalOptions{Buffer: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Next(); !ok {
		t.Fatal("first query produced nothing")
	}
	// The first pool is alive (blocked producing into a full buffer): the
	// slot is held, so the second query sheds synchronously.
	if _, err := s.Eval(context.Background(), a, EvalOptions{}); !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("second Eval err = %v, want ErrOverloaded", err)
	}
	if st := s.GateStats(); st.Rejected == 0 {
		t.Fatalf("GateStats.Rejected = 0 after a shed")
	}
	res.Close()
	// Slot released: admission works again.
	res2, err := s.Eval(context.Background(), a, EvalOptions{})
	if err != nil {
		t.Fatalf("Eval after release: %v", err)
	}
	res2.Close()
}

// TestResultsCloseConcurrent hammers Close from many goroutines racing
// each other, Next, and exhaustion.
func TestResultsCloseConcurrent(t *testing.T) {
	a := rgx.MustCompilePattern(`(a)*x{a+}(a)*`)
	for trial := 0; trial < 8; trial++ {
		s := NewStore(4)
		for i := 0; i < 32; i++ {
			s.Add("aaaaaa")
		}
		res, err := s.Eval(context.Background(), a, EvalOptions{Buffer: 1})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res.Close()
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := res.Next(); !ok {
					return
				}
			}
		}()
		wg.Wait()
		res.Close() // and after everything is down
		if err := res.Err(); err != nil {
			t.Fatalf("closed stream Err = %v, want nil", err)
		}
	}
}
