package resilience

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestPanicErrorTaxonomy: PanicError renders its document, carries the
// recovery stack, works with errors.As, and unwraps error panic values
// for errors.Is.
func TestPanicErrorTaxonomy(t *testing.T) {
	pe := NewPanicError(7, "index out of range")
	if !strings.Contains(pe.Error(), "doc 7") {
		t.Fatalf("Error() = %q, want the document id", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	wrapped := fmt.Errorf("query failed: %w", pe)
	var got *PanicError
	if !errors.As(wrapped, &got) || got.Doc != 7 {
		t.Fatalf("errors.As through a wrap: got %v", got)
	}

	sentinel := errors.New("disk gone")
	pe2 := NewPanicError(NoDoc, sentinel)
	if !errors.Is(pe2, sentinel) {
		t.Fatal("error panic values must unwrap for errors.Is")
	}
	if strings.Contains(pe2.Error(), "doc") {
		t.Fatalf("NoDoc panic message %q should not name a document", pe2.Error())
	}
}

// TestInjectDisarmed: without an armed action, Inject is a no-op in every
// build flavor.
func TestInjectDisarmed(t *testing.T) {
	Inject("never/armed", 42) // must not panic or block
}

// TestEnableRoundTrip exercises arming and disarming; in ordinary builds
// (no `failpoints` tag) Enable is a documented no-op, so the armed branch
// is asserted only when the hooks are compiled in.
func TestEnableRoundTrip(t *testing.T) {
	fired := 0
	disarm := Enable("test/hook", func(arg any) { fired++ })
	Inject("test/hook", "x")
	disarm()
	Inject("test/hook", "x")
	if FailpointsEnabled {
		if fired != 1 {
			t.Fatalf("armed hook fired %d times, want exactly 1", fired)
		}
	} else if fired != 0 {
		t.Fatalf("no-op Enable fired %d times, want 0", fired)
	}
}
