package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGateAdmitsUpToCapacity: capacity units admit immediately, the next
// caller queues, and past the queue bound callers shed with
// ErrOverloaded without blocking.
func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(2, 1)
	ctx := context.Background()
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// Third caller queues; it must be granted after a release.
	granted := make(chan error, 1)
	go func() { granted <- g.Acquire(ctx, 1) }()
	waitForQueued(t, g, 1)

	// Fourth caller finds the queue full: immediate shed.
	start := time.Now()
	if err := g.Acquire(ctx, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full Acquire = %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed path blocked for %v", elapsed)
	}
	if st := g.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}

	g.Release(1)
	if err := <-granted; err != nil {
		t.Fatalf("queued Acquire = %v, want grant after Release", err)
	}
	g.Release(1)
	g.Release(1)
	if st := g.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("drained gate stats = %+v, want idle", st)
	}
}

// TestGateAcquireRespectsContext: a queued waiter whose context ends
// leaves the queue with the context's error, and does not block later
// grants.
func TestGateAcquireRespectsContext(t *testing.T) {
	g := NewGate(1, 2)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire under expired ctx = %v, want DeadlineExceeded", err)
	}
	g.Release(1)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("Acquire after abandoned waiter = %v", err)
	}
	g.Release(1)
}

// TestGateOversizedRequestClamps: a request heavier than the whole gate
// is clamped to capacity instead of deadlocking forever.
func TestGateOversizedRequestClamps(t *testing.T) {
	g := NewGate(4, 0)
	if err := g.Acquire(context.Background(), 64); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Active != 4 {
		t.Fatalf("Active = %d, want clamped 4", st.Active)
	}
	g.Release(64)
	if st := g.Stats(); st.Active != 0 {
		t.Fatalf("Active after release = %d, want 0", st.Active)
	}
}

// TestGateConcurrentChurn hammers Acquire/Release from many goroutines
// and asserts the invariant Active ≤ capacity throughout (via the final
// drained state and absence of Release panics).
func TestGateConcurrentChurn(t *testing.T) {
	g := NewGate(4, 8)
	var wg sync.WaitGroup
	var admitted, shed int
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := g.Acquire(context.Background(), 1)
			mu.Lock()
			if err != nil {
				shed++
				mu.Unlock()
				return
			}
			admitted++
			mu.Unlock()
			time.Sleep(time.Millisecond)
			g.Release(1)
		}()
	}
	wg.Wait()
	if admitted+shed != 64 {
		t.Fatalf("admitted %d + shed %d != 64", admitted, shed)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if st := g.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("final stats = %+v, want drained", st)
	}
}

// TestGateTryAcquire: TryAcquire never queues.
func TestGateTryAcquire(t *testing.T) {
	g := NewGate(1, 8)
	if !g.TryAcquire(1) {
		t.Fatal("TryAcquire on idle gate failed")
	}
	if g.TryAcquire(1) {
		t.Fatal("TryAcquire on saturated gate succeeded")
	}
	if st := g.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	g.Release(1)
}

func waitForQueued(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never queued: %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
