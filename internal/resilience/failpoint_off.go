//go:build !failpoints

package resilience

// FailpointsEnabled reports whether this build compiles failpoint hooks
// in; without the `failpoints` build tag Inject is an empty function the
// compiler inlines away (the generic signature keeps hook arguments from
// even being boxed).
const FailpointsEnabled = false

// Inject is a no-op in ordinary builds.
func Inject[T any](name string, arg T) {}

// Enable is a no-op in ordinary builds; the returned disarm function does
// nothing. Tests that depend on injection must carry the `failpoints`
// build tag so they only run when the hooks exist.
func Enable(name string, a Action) (disarm func()) { return func() {} }
