// Package resilience is the engine's cross-cutting hardening layer: the
// typed failure taxonomy every evaluation path reports through (panics
// isolated into *PanicError, load shedding as ErrOverloaded, work budgets
// as ErrBudgetExceeded), a weighted admission-control gate with a bounded
// wait queue, and a build-tag-gated failpoint registry that lets tests
// deterministically inject panics, delays and cancellations at every
// stage of the corpus pipeline.
//
// The paper's guarantees (constant-delay enumeration after preprocessing)
// are per query; this package makes the *system* around them give
// guarantees too: one poisoned document fails one query, never the
// process, and overload degrades by shedding instead of by accumulating
// goroutines.
package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrOverloaded is returned when admission control rejects a query: the
// gate's concurrency slots are all held and its wait queue is full.
// Callers should treat it as a fast, retryable load-shedding signal —
// nothing was evaluated and no worker pool was started.
var ErrOverloaded = errors.New("resilience: overloaded, query rejected by admission control")

// ErrBudgetExceeded is returned when a query runs out of its work budget
// (EvalOptions' Budget). The stream delivers the results produced up to
// that point; the budget error marks them as partial.
var ErrBudgetExceeded = errors.New("resilience: work budget exceeded, results are partial")

// ErrCorrupt is the durability failure class: on-disk state (a write-ahead
// log record that is not a torn tail, or a snapshot file) failed its
// checksum or structural validation during recovery or a durable write.
// It is deliberately distinct from a torn tail — a torn tail is the
// expected residue of a crash and is repaired silently by truncation,
// while ErrCorrupt means bytes the log previously made durable changed
// underneath it, which no replay can repair. Recovery surfaces it instead
// of panicking or silently dropping acknowledged writes; wrap it with %w
// (or return it through a *wal* error chain) so errors.Is detects it
// through any layer.
var ErrCorrupt = errors.New("resilience: durable state corrupt, recovery cannot proceed")

// NoDoc marks a PanicError that is not attributable to a single document
// (a panic in the dealer or closer rather than in a shard worker).
const NoDoc = ^uint64(0)

// PanicError is a panic recovered at a goroutine boundary and converted
// into an ordinary error: the offending document (NoDoc when the panic
// happened outside per-document work), the recovered value, and the stack
// captured at the recovery point. It surfaces through Results.Err like
// any evaluation error — one poisoned document fails its own query only.
type PanicError struct {
	// Doc is the ID of the document being evaluated when the panic fired,
	// or NoDoc when the panic is not attributable to one.
	Doc uint64
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured where the panic was recovered.
	Stack []byte
}

// NewPanicError captures the current stack and wraps a recovered value.
func NewPanicError(doc uint64, value any) *PanicError {
	return &PanicError{Doc: doc, Value: value, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	if e.Doc == NoDoc {
		return fmt.Sprintf("resilience: recovered panic: %v", e.Value)
	}
	return fmt.Sprintf("resilience: recovered panic evaluating doc %d: %v", e.Doc, e.Value)
}

// Unwrap exposes a wrapped error panic value (panic(err)) to errors.Is.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// RecoverTo converts an in-flight panic into a *PanicError stored in
// *err; deferred at synchronous API boundaries (store entry points) so a
// panic during setup — planning, snapshotting, index lookup — fails the
// call, not the process:
//
//	func (s *Store) EvalPlan(...) (res *Results, err error) {
//	    defer resilience.RecoverTo(&err)
//	    ...
//	}
func RecoverTo(err *error) {
	if p := recover(); p != nil {
		*err = NewPanicError(NoDoc, p)
	}
}
