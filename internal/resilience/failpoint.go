package resilience

import "time"

// Failpoints are named hooks compiled into the corpus pipeline (shard
// workers, the dealer, cache fill, index lookup) that tests use to
// deterministically inject panics, delays and cancellations at every
// stage. They are gated behind the `failpoints` build tag: in ordinary
// builds Inject compiles to an empty function and the hooks cost nothing;
// under `go test -tags failpoints` an armed failpoint runs its registered
// Action with the hook's argument (the document under evaluation, the
// cache key, …).
//
// The canonical hook names are collected here so tests and call sites
// cannot drift apart.
const (
	// FailWorkerDoc fires in a shard worker immediately before a document
	// is evaluated; arg is the document text.
	FailWorkerDoc = "corpus/worker/doc"
	// FailDealer fires in the dealer goroutine before each shard is dealt;
	// arg is the shard index.
	FailDealer = "corpus/dealer"
	// FailCacheFill fires inside a compiled-query cache miss, before the
	// compile function runs; arg is the cache key.
	FailCacheFill = "corpus/cache/fill"
	// FailPlanCandidates fires during snapshot planning, before a shard's
	// skip-index candidate lookup; arg is the shard index.
	FailPlanCandidates = "corpus/plan/candidates"
	// FailCountDoc fires in a count worker immediately before a document
	// is counted; arg is the document text.
	FailCountDoc = "corpus/count/doc"
)

// Action is the behavior of an armed failpoint; it receives the hook
// call's argument. Returning normally resumes the hooked code path.
type Action func(arg any)

// PanicAction panics with v — the poisoned-document simulator.
func PanicAction(v any) Action { return func(any) { panic(v) } }

// SleepAction delays the hooked path by d — the slow-stage simulator used
// to force deadline and cancellation windows open.
func SleepAction(d time.Duration) Action { return func(any) { time.Sleep(d) } }

// PanicOnArg panics with v when the hook argument equals match, so one
// specific document (or key, or shard) can be poisoned while the rest of
// the pipeline stays healthy.
func PanicOnArg(match any, v any) Action {
	return func(arg any) {
		if arg == match {
			panic(v)
		}
	}
}
