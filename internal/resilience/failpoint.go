package resilience

import "time"

// Failpoints are named hooks compiled into the corpus pipeline (shard
// workers, the dealer, cache fill, index lookup) that tests use to
// deterministically inject panics, delays and cancellations at every
// stage. They are gated behind the `failpoints` build tag: in ordinary
// builds Inject compiles to an empty function and the hooks cost nothing;
// under `go test -tags failpoints` an armed failpoint runs its registered
// Action with the hook's argument (the document under evaluation, the
// cache key, …).
//
// The canonical hook names are collected here so tests and call sites
// cannot drift apart.
const (
	// FailWorkerDoc fires in a shard worker immediately before a document
	// is evaluated; arg is the document text.
	FailWorkerDoc = "corpus/worker/doc"
	// FailDealer fires in the dealer goroutine before each shard is dealt;
	// arg is the shard index.
	FailDealer = "corpus/dealer"
	// FailCacheFill fires inside a compiled-query cache miss, before the
	// compile function runs; arg is the cache key.
	FailCacheFill = "corpus/cache/fill"
	// FailPlanCandidates fires during snapshot planning, before a shard's
	// skip-index candidate lookup; arg is the shard index.
	FailPlanCandidates = "corpus/plan/candidates"
	// FailCountDoc fires in a count worker immediately before a document
	// is counted; arg is the document text.
	FailCountDoc = "corpus/count/doc"

	// FailWALWrite fires inside every write-ahead-log file write with an
	// *IOFault the action may mutate: setting ShortenTo simulates a torn
	// write (only a prefix reaches the file), setting Err fails the write
	// without touching the file.
	FailWALWrite = "wal/io/write"
	// FailWALSync fires inside every log fsync with an *IOFault; setting
	// Err simulates a failed fsync (the dirty data's durability is
	// unknown, so the log wedges).
	FailWALSync = "wal/io/sync"
	// FailSnapWrite fires inside every snapshot file write with an
	// *IOFault, like FailWALWrite.
	FailSnapWrite = "wal/io/snap-write"

	// Crash points: hooks placed at the ordering-sensitive instants of
	// the durable write path. The crash harness arms them with an action
	// that SIGKILLs the process, so recovery is exercised against a real
	// unclean death at exactly that instant; arg is the record's sequence
	// number (snapshot points: the snapshot generation).
	CrashBeforeAppend  = "wal/crash/before-append"      // before the record reaches the file
	CrashAfterAppend   = "wal/crash/after-append"       // record written, not yet synced
	CrashBeforeAck     = "wal/crash/before-ack"         // record durable per policy, caller not yet answered
	CrashSnapBeforeRen = "wal/crash/snap-before-rename" // snapshot temp written, not yet visible
	CrashSnapAfterRen  = "wal/crash/snap-after-rename"  // snapshot visible, old files not yet pruned
)

// IOFault is the mutable argument of the wal I/O failpoints: the armed
// action sets fields to steer the hooked operation. The zero value lets
// the operation proceed untouched.
type IOFault struct {
	// Op names the operation ("append", "sync", "snapshot") and N is how
	// many bytes it was about to write (0 for sync) — context for actions
	// that target a specific call.
	Op string
	N  int
	// ShortenTo, when ≥ 0, truncates the write to that many bytes — the
	// torn-write simulator. Hook sites pass it as -1 (untouched). Ignored
	// by sync.
	ShortenTo int
	// Err, when set, is returned by the operation after any shortened
	// write.
	Err error
}

// Action is the behavior of an armed failpoint; it receives the hook
// call's argument. Returning normally resumes the hooked code path.
type Action func(arg any)

// PanicAction panics with v — the poisoned-document simulator.
func PanicAction(v any) Action { return func(any) { panic(v) } }

// SleepAction delays the hooked path by d — the slow-stage simulator used
// to force deadline and cancellation windows open.
func SleepAction(d time.Duration) Action { return func(any) { time.Sleep(d) } }

// PanicOnArg panics with v when the hook argument equals match, so one
// specific document (or key, or shard) can be poisoned while the rest of
// the pipeline stays healthy.
func PanicOnArg(match any, v any) Action {
	return func(arg any) {
		if arg == match {
			panic(v)
		}
	}
}
