package resilience

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Gate is a weighted-semaphore admission controller with a bounded wait
// queue. Capacity units are held for the lifetime of admitted work;
// callers past capacity wait in FIFO order up to the queue bound, and
// everyone beyond that is rejected immediately with ErrOverloaded — load
// sheds instead of accumulating goroutines.
//
// The zero bound conventions follow the corpus options: capacity ≤ 0
// means "ungated" (callers should simply not construct a Gate), queue < 0
// means no waiting at all (admit or reject, never block).
type Gate struct {
	capacity int64
	queueMax int

	rejected atomic.Uint64

	// waitObs, when set, observes every admission decision: the time the
	// caller spent queued (zero on the immediate paths) and whether it
	// was admitted. Installed once before the gate serves (SetWaitObserver).
	waitObs func(wait time.Duration, admitted bool)

	mu      sync.Mutex
	cur     int64
	waiters list.List // of *gateWaiter, FIFO
}

type gateWaiter struct {
	n     int64
	ready chan struct{} // closed when the waiter is granted its units
}

// NewGate creates a gate admitting at most capacity units of concurrent
// work, with at most queue callers waiting behind them; capacity < 1 is
// clamped to 1, queue < 0 to 0.
func NewGate(capacity int64, queue int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{capacity: capacity, queueMax: queue}
}

// Capacity reports the gate's concurrent-work capacity.
func (g *Gate) Capacity() int64 { return g.capacity }

// SetWaitObserver installs f, called once per admission decision —
// Acquire and TryAcquire alike — with the time the caller spent queued
// (zero when the decision was immediate) and whether it was admitted.
// Install before the gate starts admitting, like SetGate: installation
// is not synchronized with concurrent acquires.
func (g *Gate) SetWaitObserver(f func(wait time.Duration, admitted bool)) { g.waitObs = f }

// Acquire admits n units of work, waiting in the bounded queue when the
// gate is saturated. It returns nil on admission, ErrOverloaded when the
// queue is already full (immediately — the shed path never blocks), or
// ctx's error when the context ends while queued. n is clamped to the
// gate's capacity so a single oversized request cannot deadlock.
func (g *Gate) Acquire(ctx context.Context, n int64) error {
	if n < 1 {
		n = 1
	}
	if n > g.capacity {
		n = g.capacity
	}
	g.mu.Lock()
	if g.cur+n <= g.capacity && g.waiters.Len() == 0 {
		g.cur += n
		g.mu.Unlock()
		g.observe(0, true)
		return nil
	}
	if g.waiters.Len() >= g.queueMax {
		g.mu.Unlock()
		g.rejected.Add(1)
		g.observe(0, false)
		return ErrOverloaded
	}
	w := &gateWaiter{n: n, ready: make(chan struct{})}
	elem := g.waiters.PushBack(w)
	g.mu.Unlock()
	t0 := time.Now()

	select {
	case <-w.ready:
		g.observe(time.Since(t0), true)
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: keep the grant and
			// report admission — the caller will Release normally.
			g.mu.Unlock()
			g.observe(time.Since(t0), true)
			return nil
		default:
		}
		g.waiters.Remove(elem)
		// Removing a waiter can unblock the ones behind it (FIFO order
		// otherwise head-of-line blocks smaller requests forever).
		g.grantLocked()
		g.mu.Unlock()
		g.observe(time.Since(t0), false)
		return ctx.Err()
	}
}

// observe reports an admission decision to the installed wait observer.
func (g *Gate) observe(wait time.Duration, admitted bool) {
	if g.waitObs != nil {
		g.waitObs(wait, admitted)
	}
}

// TryAcquire admits n units only when they are free right now; it never
// queues. A false return counts as a shed.
func (g *Gate) TryAcquire(n int64) bool {
	if n < 1 {
		n = 1
	}
	if n > g.capacity {
		n = g.capacity
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cur+n <= g.capacity && g.waiters.Len() == 0 {
		g.cur += n
		g.observe(0, true)
		return true
	}
	g.rejected.Add(1)
	g.observe(0, false)
	return false
}

// Release returns n units to the gate and hands them to queued waiters in
// FIFO order.
func (g *Gate) Release(n int64) {
	if n < 1 {
		n = 1
	}
	if n > g.capacity {
		n = g.capacity
	}
	g.mu.Lock()
	g.cur -= n
	if g.cur < 0 {
		panic("resilience: Gate.Release without matching Acquire")
	}
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked admits queued waiters, in order, while capacity lasts.
func (g *Gate) grantLocked() {
	for {
		front := g.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*gateWaiter)
		if g.cur+w.n > g.capacity {
			return // FIFO: the head blocks until its units fit
		}
		g.cur += w.n
		g.waiters.Remove(front)
		close(w.ready)
	}
}

// GateStats is a snapshot of the gate's load counters.
type GateStats struct {
	// Active is the number of units currently admitted.
	Active int64
	// Queued is the number of callers currently waiting.
	Queued int
	// Rejected is the cumulative number of sheds (ErrOverloaded returns
	// and failed TryAcquires).
	Rejected uint64
}

// Stats reports the gate's current load and cumulative shed count.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{Active: g.cur, Queued: g.waiters.Len(), Rejected: g.rejected.Load()}
}
