//go:build failpoints

package resilience

import (
	"sync"
	"sync/atomic"
)

// FailpointsEnabled reports whether this build compiles failpoint hooks
// in; this is the `failpoints`-tagged build, so armed hooks fire.
const FailpointsEnabled = true

// armed counts registered failpoints: the Inject fast path is one atomic
// load when nothing is armed, so even instrumented builds pay ~nothing
// until a test arms a hook.
var armed atomic.Int32

var (
	fpMu sync.RWMutex
	fps  = map[string]Action{}
)

// Inject runs the action armed under name, if any, passing it arg. Hot
// paths call it with their live value (the document, the cache key); the
// value is boxed only after the armed check.
func Inject[T any](name string, arg T) {
	if armed.Load() == 0 {
		return
	}
	fpMu.RLock()
	a := fps[name]
	fpMu.RUnlock()
	if a != nil {
		a(any(arg))
	}
}

// Enable arms name with the action and returns a disarm function. Arming
// an already-armed name replaces its action; disarm removes whatever is
// currently armed under the name.
func Enable(name string, a Action) (disarm func()) {
	fpMu.Lock()
	if _, ok := fps[name]; !ok {
		armed.Add(1)
	}
	fps[name] = a
	fpMu.Unlock()
	return func() {
		fpMu.Lock()
		if _, ok := fps[name]; ok {
			delete(fps, name)
			armed.Add(-1)
		}
		fpMu.Unlock()
	}
}
