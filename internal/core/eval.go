package core

import (
	"fmt"
	"time"

	"spanjoin/internal/enum"
	"spanjoin/internal/rel"
	"spanjoin/internal/span"
	"spanjoin/internal/strequal"
	"spanjoin/internal/vsa"
)

// Strategy selects the evaluation plan.
type Strategy int

const (
	// Auto follows the paper's tractability conditions: canonical
	// relational evaluation when every atom is polynomially bounded and the
	// query hypergraph is acyclic (Thm 3.5 / Cor 5.3); compilation to
	// automata otherwise (Thm 3.11 / Cor 5.5).
	Auto Strategy = iota
	// Canonical materializes every atom relation and evaluates relationally.
	Canonical
	// Automata compiles the query into one functional vset-automaton and
	// enumerates it with polynomial delay.
	Automata
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Canonical:
		return "canonical"
	case Automata:
		return "automata"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options configure evaluation.
type Options struct {
	Strategy Strategy
	// PolyBoundVarLimit: atoms with at most this many variables count as
	// polynomially bounded without running the key-attribute test
	// (|[[α]](s)| ≤ (N+1)^(2v)). Default 1.
	PolyBoundVarLimit int

	// Timeout, Limit and Budget are the resilience knobs of corpus
	// evaluations (ignored by single-document Iterate/Evaluate, whose
	// callers hold the iterator and can cancel via IterateCtx):
	// Timeout bounds the whole evaluation wall-clock, Limit caps delivered
	// results, Budget caps work units (document bytes scanned + results
	// delivered). Zero values mean unbounded.
	Timeout time.Duration
	Limit   uint64
	Budget  uint64
}

func (o Options) varLimit() int {
	if o.PolyBoundVarLimit <= 0 {
		return 1
	}
	return o.PolyBoundVarLimit
}

// Compile performs the static part of the automata plan for a CQ: join all
// atom automata (Lemma 3.10) and push the projection in (Lemma 3.8).
// String-equality selections are *not* compiled here — they depend on the
// input string (Thm 5.4) and are applied by Enumerate.
func (q *CQ) Compile() (*vsa.VSA, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	autos := make([]*vsa.VSA, len(q.Atoms))
	for i, a := range q.Atoms {
		autos[i] = a.Auto
	}
	joined, err := vsa.JoinAll(autos...)
	if err != nil {
		return nil, err
	}
	if len(q.Equalities) == 0 && q.Projection != nil {
		return vsa.Project(joined, q.Projection)
	}
	// With equalities, projection must wait until after the runtime join
	// with A_eq (the equality variables may be projected away).
	return joined, nil
}

// Enumerate evaluates the CQ on s with the chosen strategy and returns a
// tuple iterator. The automata plan streams with polynomial delay; the
// canonical plan materializes and then iterates.
func (q *CQ) Enumerate(s string, opts Options) (Iterator, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	strat := opts.Strategy
	if strat == Auto {
		strat = q.pick(opts)
	}
	switch strat {
	case Canonical:
		r, err := q.evalCanonical(s, opts)
		if err != nil {
			return nil, err
		}
		r.Sort()
		return &sliceIter{vars: r.Vars, tuples: r.Tuples}, nil
	default:
		return q.enumAutomata(s)
	}
}

// Eval evaluates the CQ and materializes the result.
func (q *CQ) Eval(s string, opts Options) (*rel.Relation, error) {
	it, err := q.Enumerate(s, opts)
	if err != nil {
		return nil, err
	}
	return Drain(it), nil
}

// pick implements the Auto planner.
func (q *CQ) pick(opts Options) Strategy {
	if !q.IsAcyclic() {
		return Automata
	}
	for _, a := range q.Atoms {
		if q.atomPolyBounded(a, opts) {
			continue
		}
		return Automata
	}
	return Canonical
}

// atomPolyBounded applies the paper's two sufficient conditions (§3.3.2):
// at most k variables for fixed k, or a key attribute (Prop 3.6).
func (q *CQ) atomPolyBounded(a *Atom, opts Options) bool {
	if len(a.Vars()) <= opts.varLimit() {
		return true
	}
	_, ok, err := vsa.HasKeyAttribute(a.Auto)
	return err == nil && ok
}

// enumAutomata is the compilation plan: join, runtime equality compilation,
// projection, polynomial-delay enumeration.
func (q *CQ) enumAutomata(s string) (Iterator, error) {
	joined, err := q.JoinAtoms()
	if err != nil {
		return nil, err
	}
	return q.EnumerateJoined(joined, s)
}

// JoinAtoms performs the document-independent part of the automata plan:
// the join of all atom automata (Lemma 3.10), before equality selections
// and projection. Callers evaluating one query over many documents compute
// it once and pass it to EnumerateJoined per document.
func (q *CQ) JoinAtoms() (*vsa.VSA, error) {
	return vsa.JoinAll(atomAutos(q.Atoms)...)
}

// EnumerateJoined applies the document-dependent tail of the automata plan
// to a precomputed atom join: string-equality compilation for s (Thm 5.4),
// projection, and polynomial-delay enumeration. joined must come from
// JoinAtoms on the same query.
func (q *CQ) EnumerateJoined(joined *vsa.VSA, s string) (Iterator, error) {
	var err error
	if len(q.Equalities) > 0 {
		joined, err = strequal.Apply(joined, s, q.Equalities)
		if err != nil {
			return nil, err
		}
	}
	if q.Projection != nil {
		joined, err = vsa.Project(joined, q.Projection)
		if err != nil {
			return nil, err
		}
	}
	// The assembled automaton exists for this document only: skip the
	// transition-table compilation that could never amortize.
	return enum.PrepareOnce(joined, s)
}

// evalCanonical is the canonical relational plan: materialize each atom
// relation via the polynomial-delay enumerator, materialize one relation
// per equality atom (polynomial, Cor 5.3), then evaluate with Yannakakis
// when the hypergraph is acyclic, greedy hash joins otherwise.
func (q *CQ) evalCanonical(s string, opts Options) (*rel.Relation, error) {
	rels := make([]*rel.Relation, 0, len(q.Atoms)+len(q.Equalities))
	for _, a := range q.Atoms {
		vars, tuples, err := enum.Eval(a.Auto, s)
		if err != nil {
			return nil, fmt.Errorf("atom %s: %w", a.Name, err)
		}
		rels = append(rels, rel.FromTuples(vars, tuples))
	}
	for _, eq := range q.Equalities {
		rels = append(rels, equalityRelation(s, eq[0], eq[1]))
	}
	h := q.Hypergraph()
	out := q.OutVars()
	if tree, ok := h.IsAcyclic(); ok {
		if q.IsBoolean() {
			r := rel.NewRelation(nil)
			if rel.YannakakisBoolean(tree, rels) {
				r.Add(span.Tuple{})
			}
			return r, nil
		}
		return rel.Yannakakis(tree, rels, out), nil
	}
	return rel.JoinAllGreedy(rels).Project(out), nil
}

// equalityRelation materializes the relation of the equality atom
// ζ=_{x,y}: all pairs of spans of s with equal substrings, enumerated from
// the longest-common-extension table in O(N³) output size.
func equalityRelation(s, x, y string) *rel.Relation {
	vars := span.NewVarList(x, y)
	xi := vars.Index(x)
	r := rel.NewRelation(vars)
	lce := strequal.LCE(s)
	n := len(s)
	for i := 1; i <= n+1; i++ {
		for j := 1; j <= n+1; j++ {
			maxL := lce[i-1][j-1]
			if m := n + 1 - i; m < maxL {
				maxL = m
			}
			if m := n + 1 - j; m < maxL {
				maxL = m
			}
			for l := 0; l <= maxL; l++ {
				t := make(span.Tuple, 2)
				t[xi] = span.Span{Start: i, End: i + l}
				t[1-xi] = span.Span{Start: j, End: j + l}
				r.Add(t)
			}
		}
	}
	return r
}

func atomAutos(atoms []*Atom) []*vsa.VSA {
	out := make([]*vsa.VSA, len(atoms))
	for i, a := range atoms {
		out[i] = a.Auto
	}
	return out
}

// CompileUCQ performs the static automata-plan compilation of a UCQ without
// string equalities: compile every disjunct (joins + projection) and union
// them (Lemma 3.9). Disjuncts with equalities make Compile fail; use
// Enumerate, which applies them at runtime.
func (u *UCQ) Compile() (*vsa.VSA, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	autos := make([]*vsa.VSA, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		if len(q.Equalities) > 0 {
			return nil, fmt.Errorf("core: disjunct %d has string equalities; they compile only per input string (Thm 5.4)", i)
		}
		// Project every disjunct onto the common output schema so the union
		// is over identical variable sets.
		a, err := q.withProjection().Compile()
		if err != nil {
			return nil, err
		}
		autos[i] = a
	}
	if len(autos) == 1 {
		return autos[0], nil
	}
	return vsa.Union(autos...)
}

// withProjection returns the CQ with an explicit projection onto OutVars.
func (q *CQ) withProjection() *CQ {
	if q.Projection != nil {
		return q
	}
	cp := *q
	cp.Projection = q.OutVars()
	return &cp
}

// Enumerate evaluates the UCQ. With the automata strategy the whole union
// is compiled into a single vset-automaton (per-string equalities included)
// and enumerated with polynomial delay — duplicates across disjuncts are
// eliminated inherently. The canonical strategy unions materialized
// disjunct results.
func (u *UCQ) Enumerate(s string, opts Options) (Iterator, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	strat := opts.Strategy
	if strat == Auto {
		strat = Canonical
		for _, q := range u.Disjuncts {
			if q.pick(opts) == Automata {
				strat = Automata
				break
			}
		}
	}
	if strat == Canonical {
		out := rel.NewRelation(u.OutVars())
		for _, q := range u.Disjuncts {
			r, err := q.Eval(s, Options{Strategy: Canonical, PolyBoundVarLimit: opts.PolyBoundVarLimit})
			if err != nil {
				return nil, err
			}
			for _, t := range r.Tuples {
				out.Add(t)
			}
		}
		out.Sort()
		return &sliceIter{vars: out.Vars, tuples: out.Tuples}, nil
	}
	// Automata: compile each disjunct with runtime equalities, then union.
	autos := make([]*vsa.VSA, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		joined, err := vsa.JoinAll(atomAutos(q.Atoms)...)
		if err != nil {
			return nil, err
		}
		if len(q.Equalities) > 0 {
			joined, err = strequal.Apply(joined, s, q.Equalities)
			if err != nil {
				return nil, err
			}
		}
		proj, err := vsa.Project(joined, q.OutVars())
		if err != nil {
			return nil, err
		}
		autos[i] = proj
	}
	union := autos[0]
	if len(autos) > 1 {
		var err error
		union, err = vsa.Union(autos...)
		if err != nil {
			return nil, err
		}
	}
	// Per-document union assembly, like EnumerateJoined: single-use.
	return enum.PrepareOnce(union, s)
}

// Eval evaluates the UCQ and materializes the result.
func (u *UCQ) Eval(s string, opts Options) (*rel.Relation, error) {
	it, err := u.Enumerate(s, opts)
	if err != nil {
		return nil, err
	}
	return Drain(it), nil
}

// Plan reports the strategy Enumerate will use for these options — Auto
// resolved against the paper's tractability conditions. Exposed so tools
// and tests can inspect planning decisions.
func (q *CQ) Plan(opts Options) Strategy {
	if opts.Strategy != Auto {
		return opts.Strategy
	}
	return q.pick(opts)
}
