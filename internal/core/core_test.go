package core_test

import (
	"strings"
	"testing"

	"spanjoin/internal/core"
	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rel"
	"spanjoin/internal/span"
)

func atom(t *testing.T, name, pattern string) *core.Atom {
	t.Helper()
	a, err := core.NewAtom(name, pattern)
	if err != nil {
		t.Fatalf("atom %s: %v", name, err)
	}
	return a
}

func TestAtomErrors(t *testing.T) {
	if _, err := core.NewAtom("bad", "x{a}x{a}"); err == nil {
		t.Error("non-functional atom must fail")
	}
	if _, err := core.NewAtom("bad", "("); err == nil {
		t.Error("unparsable atom must fail")
	}
}

func TestCQValidate(t *testing.T) {
	q := &core.CQ{}
	if err := q.Validate(); err == nil {
		t.Error("empty CQ must be invalid")
	}
	q = &core.CQ{
		Atoms:      []*core.Atom{atom(t, "a", "x{a}")},
		Projection: span.NewVarList("nope"),
	}
	if err := q.Validate(); err == nil {
		t.Error("projection onto unbound variable must be invalid")
	}
	q = &core.CQ{
		Atoms:      []*core.Atom{atom(t, "a", "x{a}")},
		Equalities: [][2]string{{"x", "ghost"}},
	}
	if err := q.Validate(); err == nil {
		t.Error("equality with unbound variable must be invalid")
	}
	q = &core.CQ{
		Atoms:      []*core.Atom{atom(t, "a", "x{a}")},
		Equalities: [][2]string{{"x", "x"}},
	}
	if err := q.Validate(); err == nil {
		t.Error("trivial self-equality must be invalid")
	}
}

func TestBothStrategiesAgree(t *testing.T) {
	doc := "aa bb ab ba aa"
	queries := []*core.CQ{
		{
			Atoms: []*core.Atom{
				atom(t, "r1", ".*x{a+}.*"),
				atom(t, "r2", ".*x{aa}.*"),
			},
		},
		{
			Atoms: []*core.Atom{
				atom(t, "r1", ".*x{a}y{.}.*"),
				atom(t, "r2", ".*y{b}.*"),
			},
			Projection: span.NewVarList("x"),
		},
		{
			Atoms: []*core.Atom{
				atom(t, "r1", ".*x{a+}.*"),
				atom(t, "r2", ".*y{b+}.*"),
			},
			Projection: span.NewVarList(),
		},
		{
			Atoms: []*core.Atom{
				atom(t, "r1", ".*x{a+} y{b+}.*"),
			},
			Equalities: [][2]string{},
		},
	}
	for i, q := range queries {
		rc, err := q.Eval(doc, core.Options{Strategy: core.Canonical})
		if err != nil {
			t.Fatalf("query %d canonical: %v", i, err)
		}
		ra, err := q.Eval(doc, core.Options{Strategy: core.Automata})
		if err != nil {
			t.Fatalf("query %d automata: %v", i, err)
		}
		if !oracle.EqualTupleSets(rc.Tuples, ra.Tuples) {
			t.Errorf("query %d: canonical %d tuples, automata %d", i, rc.Len(), ra.Len())
		}
		rauto, err := q.Eval(doc, core.Options{Strategy: core.Auto})
		if err != nil {
			t.Fatalf("query %d auto: %v", i, err)
		}
		if !oracle.EqualTupleSets(rauto.Tuples, ra.Tuples) {
			t.Errorf("query %d: auto plan disagrees", i)
		}
	}
}

func TestBothStrategiesAgreeWithEqualities(t *testing.T) {
	doc := "abc abc xyz"
	q := &core.CQ{
		Atoms: []*core.Atom{
			atom(t, "tok", `.* x{[a-z]+} .*`),
			atom(t, "tok2", `.*y{[a-z]+} .*|.* y{[a-z]+}.*`),
		},
		Equalities: [][2]string{{"x", "y"}},
	}
	// tok patterns are loose; what matters is both plans agreeing.
	rc, err := q.Eval(doc, core.Options{Strategy: core.Canonical})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := q.Eval(doc, core.Options{Strategy: core.Automata})
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.EqualTupleSets(rc.Tuples, ra.Tuples) {
		t.Fatalf("canonical %d vs automata %d tuples", rc.Len(), ra.Len())
	}
	// Every surviving pair must span equal substrings.
	xi, yi := rc.Vars.Index("x"), rc.Vars.Index("y")
	for _, tu := range rc.Tuples {
		if tu[xi].Substr(doc) != tu[yi].Substr(doc) {
			t.Errorf("equality violated: %q vs %q", tu[xi].Substr(doc), tu[yi].Substr(doc))
		}
	}
}

// TestIntroQuery reproduces the paper's introductory query (1): sentences
// that contain a Belgium address and the token police, via a CQ over five
// regex atoms, on a synthetic document.
func TestIntroQuery(t *testing.T) {
	doc := "Nation 2 Bruxelles Belgium police here. Paris armee there."
	// Simplified extractors over a '.'-terminated sentence model:
	sen := `(.* )?sen{[A-Za-z0-9 ]+\.}( .*)?`
	// An address is "<token> Belgium" with the country captured.
	adr := `.*y{[A-Za-z]+ z{Belgium}}.*`
	blg := `.*z{Belgium}.*`
	plc := `.*w{police}.*`
	// y inside x (α_sub of the paper) and w inside x.
	subYX := `.*x{.*y{.*}.*}.*`
	subWX := `.*x{.*w{.*}.*}.*`

	q := &core.CQ{
		Atoms: []*core.Atom{
			atom(t, "sen", strings.Replace(sen, "sen{", "x{", 1)),
			atom(t, "adr", adr),
			atom(t, "subYX", subYX),
			atom(t, "blg", blg),
			atom(t, "plc", plc),
			atom(t, "subWX", subWX),
		},
		Projection: span.NewVarList("x"),
	}
	res, err := q.Eval(doc, core.Options{Strategy: core.Canonical})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("intro query found no sentences")
	}
	for _, tu := range res.Tuples {
		s := tu[0].Substr(doc)
		if !strings.Contains(s, "Belgium") || !strings.Contains(s, "police") {
			t.Errorf("sentence %q lacks Belgium or police", s)
		}
	}
	// The automata plan (Thm 3.11, k = 6) must agree with the canonical one.
	res2, err := q.Eval(doc, core.Options{Strategy: core.Automata})
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.EqualTupleSets(res.Tuples, res2.Tuples) {
		t.Errorf("plans disagree: canonical %d vs automata %d", res.Len(), res2.Len())
	}
}

func TestUCQValidationAndEval(t *testing.T) {
	q1 := &core.CQ{Atoms: []*core.Atom{atom(t, "a", ".*x{a}.*")}}
	q2 := &core.CQ{Atoms: []*core.Atom{atom(t, "b", ".*x{b}.*")}}
	u := &core.UCQ{Disjuncts: []*core.CQ{q1, q2}}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	doc := "ab"
	rc, err := u.Eval(doc, core.Options{Strategy: core.Canonical})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := u.Eval(doc, core.Options{Strategy: core.Automata})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Len() != 2 || ra.Len() != 2 {
		t.Errorf("union sizes: canonical %d, automata %d, want 2", rc.Len(), ra.Len())
	}
	if !oracle.EqualTupleSets(rc.Tuples, ra.Tuples) {
		t.Error("UCQ plans disagree")
	}
	// Mismatched schemas must be rejected.
	q3 := &core.CQ{Atoms: []*core.Atom{atom(t, "c", ".*y{a}.*")}}
	bad := &core.UCQ{Disjuncts: []*core.CQ{q1, q3}}
	if err := bad.Validate(); err == nil {
		t.Error("UCQ with mismatched output schemas must be invalid")
	}
}

func TestUCQDedupAcrossDisjuncts(t *testing.T) {
	// Overlapping disjuncts: tuples found by both must appear once.
	q1 := &core.CQ{Atoms: []*core.Atom{atom(t, "a", ".*x{a.}.*")}}
	q2 := &core.CQ{Atoms: []*core.Atom{atom(t, "b", ".*x{.a}.*")}}
	u := &core.UCQ{Disjuncts: []*core.CQ{q1, q2}}
	doc := "aaa"
	for _, strat := range []core.Strategy{core.Canonical, core.Automata} {
		r, err := u.Eval(doc, core.Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, tu := range r.Tuples {
			if seen[tu.Key()] {
				t.Fatalf("%v: duplicate %v", strat, tu)
			}
			seen[tu.Key()] = true
		}
		// "aa" at [1,3⟩ and [2,4⟩ are found by both disjuncts.
		if r.Len() != 2 {
			t.Errorf("%v: %d tuples, want 2", strat, r.Len())
		}
	}
}

func TestUCQCompileStatic(t *testing.T) {
	q1 := &core.CQ{Atoms: []*core.Atom{atom(t, "a", ".*x{a}.*")}}
	q2 := &core.CQ{Atoms: []*core.Atom{atom(t, "b", ".*x{b}.*")}}
	u := &core.UCQ{Disjuncts: []*core.CQ{q1, q2}}
	a, err := u.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsFunctional() {
		t.Error("compiled UCQ automaton must be functional")
	}
	// With equalities, static compilation must refuse.
	qe := &core.CQ{
		Atoms:      []*core.Atom{atom(t, "e", ".*x{a}.*y{a}.*")},
		Equalities: [][2]string{{"x", "y"}},
	}
	ue := &core.UCQ{Disjuncts: []*core.CQ{qe}}
	if _, err := ue.Compile(); err == nil {
		t.Error("static compilation with ζ= must fail (Thm 5.4: per-string only)")
	}
}

func TestAcyclicityOfCQs(t *testing.T) {
	chain := &core.CQ{Atoms: []*core.Atom{
		atom(t, "1", ".*x{a}y{b}.*"),
		atom(t, "2", ".*y{b}z{a}.*"),
	}}
	if !chain.IsAcyclic() || !chain.IsGammaAcyclic() {
		t.Error("chain CQ should be alpha- and gamma-acyclic")
	}
	tri := &core.CQ{Atoms: []*core.Atom{
		atom(t, "1", ".*x{a}y{b}.*"),
		atom(t, "2", ".*y{b}z{a}.*"),
		atom(t, "3", ".*z{a}.*x{a}.*"),
	}}
	if tri.IsAcyclic() {
		t.Error("triangle CQ should be cyclic")
	}
}

func TestBooleanCQ(t *testing.T) {
	q := &core.CQ{
		Atoms:      []*core.Atom{atom(t, "a", ".*x{ab}.*")},
		Projection: span.NewVarList(),
	}
	for doc, want := range map[string]int{"ab": 1, "ba": 0, "xabx": 1} {
		for _, strat := range []core.Strategy{core.Canonical, core.Automata} {
			r, err := q.Eval(doc, core.Options{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			if r.Len() != want {
				t.Errorf("boolean CQ on %q with %v: %d, want %d", doc, strat, r.Len(), want)
			}
		}
	}
}

func TestDrainAndIterator(t *testing.T) {
	q := &core.CQ{Atoms: []*core.Atom{atom(t, "a", "a*x{a}a*")}}
	it, err := q.Enumerate("aaa", core.Options{Strategy: core.Automata})
	if err != nil {
		t.Fatal(err)
	}
	r := core.Drain(it)
	if r.Len() != 3 {
		t.Errorf("drained %d tuples, want 3", r.Len())
	}
	var _ = rel.NewRelation(nil)
}

// TestUCQStaticCompileAgreesWithEnumerate: the statically compiled UCQ
// automaton (Lemma 3.9 over per-disjunct compilations) must define the same
// spanner as per-string evaluation.
func TestUCQStaticCompileAgreesWithEnumerate(t *testing.T) {
	q1 := &core.CQ{Atoms: []*core.Atom{atom(t, "a", ".*x{a.}.*")}}
	q2 := &core.CQ{
		Atoms: []*core.Atom{
			atom(t, "b", ".*x{.b}.*"),
			atom(t, "c", ".*x{.*}b.*|.*x{.*b}.*"),
		},
	}
	u := &core.UCQ{Disjuncts: []*core.CQ{q1, q2}}
	compiled, err := u.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.IsFunctional() {
		t.Fatal("compiled UCQ not functional")
	}
	for _, s := range []string{"", "ab", "ba", "aabb"} {
		_, want, err := enum.Eval(compiled, s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := u.Eval(s, core.Options{Strategy: core.Automata})
		if err != nil {
			t.Fatal(err)
		}
		if !oracle.EqualTupleSets(got.Tuples, want) {
			t.Errorf("on %q: static compile %d tuples, runtime %d", s, len(want), got.Len())
		}
	}
}

func TestCQRequirement(t *testing.T) {
	mustAtom := func(name, pattern string) *core.Atom {
		a, err := core.NewAtom(name, pattern)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	q := &core.CQ{Atoms: []*core.Atom{
		mustAtom("a", `.*x{ERROR}.*`),
		mustAtom("b", `.*y{disk}.*`),
	}}
	req := q.Requirement()
	if !req.Match("ERROR on disk") || req.Match("ERROR alone") || req.Match("disk alone") {
		t.Fatalf("CQ requirement = %v, want conjunction of both atoms", req)
	}

	// UCQ: only factors every disjunct implies survive.
	q2 := &core.CQ{Atoms: []*core.Atom{mustAtom("c", `.*x{ERRORS}.*`)}}
	u := &core.UCQ{Disjuncts: []*core.CQ{q, q2}}
	ureq := u.Requirement()
	if !ureq.Match("ERROR") {
		t.Fatalf("UCQ requirement = %v, want only the common factor ERROR", ureq)
	}
	if ureq.Match("nothing shared") {
		t.Fatalf("UCQ requirement = %v must still demand ERROR", ureq)
	}
	// A disjunct without factors washes out the union.
	free := &core.UCQ{Disjuncts: []*core.CQ{q, {Atoms: []*core.Atom{mustAtom("d", `x{.*}`)}}}}
	if req := free.Requirement(); !req.IsEmpty() {
		t.Fatalf("UCQ with a free disjunct requires %v, want nothing", req)
	}
}
