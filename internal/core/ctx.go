package core

import (
	"context"

	"spanjoin/internal/span"
)

// CtxIterator wraps an Iterator with periodic cancellation checks, so
// long-running query enumerations (Theorem 3.11 streams can be huge even
// with polynomial delay) are abortable mid-stream. After Next has returned
// ok=false, Err distinguishes exhaustion (nil) from cancellation.
type CtxIterator struct {
	ctx context.Context
	it  Iterator
	n   uint
	err error
}

// WithContext wraps it so Next stops — returning ok=false — once ctx is
// done. Cancellation is polled on the first call and every 64 tuples.
func WithContext(ctx context.Context, it Iterator) *CtxIterator {
	return &CtxIterator{ctx: ctx, it: it}
}

// Next returns the next tuple; ok is false on exhaustion or cancellation.
func (c *CtxIterator) Next() (span.Tuple, bool) {
	if c.err != nil {
		return nil, false
	}
	if c.n&63 == 0 {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return nil, false
		}
	}
	c.n++
	return c.it.Next()
}

// Vars lists the output variables.
func (c *CtxIterator) Vars() span.VarList { return c.it.Vars() }

// Err reports why the iteration stopped: nil for exhaustion, the context's
// error for cancellation.
func (c *CtxIterator) Err() error { return c.err }

var _ Iterator = (*CtxIterator)(nil)
