// Package core implements the paper's primary contribution: regex CQs and
// regex UCQs over document spanners (§2.3) and their two evaluation
// strategies —
//
//   - canonical relational evaluation (Thm 3.5, Cor 5.3): materialize each
//     atom's span relation with the polynomial-delay enumerator and evaluate
//     the query with the relational engine (Yannakakis when acyclic),
//   - compilation to automata (Thm 3.11, Cor 5.5): compile projection ∘
//     string-equalities ∘ joins ∘ union into a single functional
//     vset-automaton and enumerate it with polynomial delay,
//
// plus the planner that picks between them along the paper's tractability
// conditions (polynomially bounded atoms + acyclic shape → canonical).
package core

import (
	"fmt"

	"spanjoin/internal/enum"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/rel"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// Atom is one regex atom of a CQ: a functional regex formula with its
// compiled vset-automaton.
type Atom struct {
	// Name labels the atom in errors and plans (e.g. "sen", "adr").
	Name string
	// Formula is the parsed regex formula.
	Formula *rgx.Formula
	// Auto is the compiled functional vset-automaton.
	Auto *vsa.VSA
	// Req is the atom's literal requirement, derived from the formula at
	// compile time (empty for atoms built from bare automata).
	Req prefilter.Requirement
}

// NewAtom parses and compiles a pattern into an atom. The pattern must be a
// functional regex formula.
func NewAtom(name, pattern string) (*Atom, error) {
	f, err := rgx.Parse(pattern)
	if err != nil {
		return nil, fmt.Errorf("atom %s: %w", name, err)
	}
	a, err := rgx.Compile(f)
	if err != nil {
		return nil, fmt.Errorf("atom %s: %w", name, err)
	}
	return &Atom{Name: name, Formula: f, Auto: a, Req: prefilter.New(rgx.RequiredLiterals(f.Root)...)}, nil
}

// AtomFromVSA wraps a prebuilt functional vset-automaton as an atom.
func AtomFromVSA(name string, a *vsa.VSA) (*Atom, error) {
	if !a.IsFunctional() {
		return nil, fmt.Errorf("atom %s: %w", name, vsa.ErrNotFunctional)
	}
	return &Atom{Name: name, Auto: a}, nil
}

// Vars returns the variable set of the atom.
func (a *Atom) Vars() span.VarList { return a.Auto.Vars }

// CQ is a regex CQ with string equalities (§2.3):
//
//	q := π_Y ( ζ=_{x1,y1} … ζ=_{xm,ym} (α1 ⋈ … ⋈ αk) )
type CQ struct {
	Atoms []*Atom
	// Projection is Y; nil projects onto all variables.
	Projection span.VarList
	// Equalities are the binary string-equality selections ζ=_{x,y}.
	Equalities [][2]string
}

// AllVars returns the union of the atom variable sets.
func (q *CQ) AllVars() span.VarList {
	var all span.VarList
	for _, a := range q.Atoms {
		all = all.Union(a.Vars())
	}
	return all
}

// OutVars returns Vars(q): the projection if set, else all variables.
func (q *CQ) OutVars() span.VarList {
	if q.Projection != nil {
		return q.AllVars().Intersect(q.Projection)
	}
	return q.AllVars()
}

// Requirement derives the plan-level literal requirement of the CQ: a
// result tuple joins every atom, so a document must satisfy every atom's
// requirement. Equality selections and the projection only restrict the
// result further — they never weaken the necessity — so the conjunction is
// sound for any evaluation strategy.
func (q *CQ) Requirement() prefilter.Requirement {
	var req prefilter.Requirement
	for _, a := range q.Atoms {
		req = req.And(a.Req)
	}
	return req
}

// Validate checks well-formedness: at least one atom, projection and
// equality variables all bound by regex atoms (the paper requires every
// equality variable to occur in a regex atom).
func (q *CQ) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("core: CQ must have at least one atom")
	}
	all := q.AllVars()
	for _, v := range q.Projection {
		if !all.Contains(v) {
			return fmt.Errorf("core: projection variable %s not bound by any atom", v)
		}
	}
	for _, eq := range q.Equalities {
		if eq[0] == eq[1] {
			return fmt.Errorf("core: ζ=_{%s,%s} is trivial; use distinct variables", eq[0], eq[1])
		}
		for _, v := range eq {
			if !all.Contains(v) {
				return fmt.Errorf("core: equality variable %s not bound by any atom", v)
			}
		}
	}
	return nil
}

// Hypergraph returns the query hypergraph of the CQ mapped to a relational
// CQ: one edge per regex atom and one binary edge per equality atom (§2.3).
func (q *CQ) Hypergraph() *rel.Hypergraph {
	h := &rel.Hypergraph{}
	for _, a := range q.Atoms {
		h.Edges = append(h.Edges, a.Vars())
	}
	for _, eq := range q.Equalities {
		h.Edges = append(h.Edges, span.NewVarList(eq[0], eq[1]))
	}
	return h
}

// IsAcyclic reports alpha-acyclicity of the query hypergraph.
func (q *CQ) IsAcyclic() bool {
	_, ok := q.Hypergraph().IsAcyclic()
	return ok
}

// IsGammaAcyclic reports gamma-acyclicity of the query hypergraph.
func (q *CQ) IsGammaAcyclic() bool { return q.Hypergraph().IsGammaAcyclic() }

// IsBoolean reports whether the CQ projects everything away.
func (q *CQ) IsBoolean() bool { return q.Projection != nil && len(q.Projection) == 0 }

// UCQ is a union of regex CQs with string equalities. By definition every
// disjunct must have the same output variables.
type UCQ struct {
	Disjuncts []*CQ
}

// OutVars returns the common output variable set.
func (u *UCQ) OutVars() span.VarList {
	if len(u.Disjuncts) == 0 {
		return nil
	}
	return u.Disjuncts[0].OutVars()
}

// Requirement derives the UCQ's literal requirement: a result comes from
// some disjunct, so only factors every disjunct requires stay necessary.
func (u *UCQ) Requirement() prefilter.Requirement {
	reqs := make([]prefilter.Requirement, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		reqs[i] = q.Requirement()
	}
	return prefilter.Or(reqs...)
}

// Validate checks every disjunct and the common-schema requirement.
func (u *UCQ) Validate() error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("core: UCQ must have at least one disjunct")
	}
	out := u.Disjuncts[0].OutVars()
	for i, q := range u.Disjuncts {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("disjunct %d: %w", i, err)
		}
		if !q.OutVars().Equal(out) {
			return fmt.Errorf("core: disjunct %d has output %v, want %v (UCQ disjuncts must share Vars)",
				i, q.OutVars(), out)
		}
	}
	return nil
}

// MaxAtoms returns the largest atom count of any disjunct — the k of the
// paper's "regex k-UCQ" whose boundedness makes automata compilation
// polynomial (Thm 3.11).
func (u *UCQ) MaxAtoms() int {
	k := 0
	for _, q := range u.Disjuncts {
		if len(q.Atoms) > k {
			k = len(q.Atoms)
		}
	}
	return k
}

// MaxEqualities returns the largest equality count of any disjunct — the m
// of "regex k-UCQ with up to m string equalities" (Cor 5.5).
func (u *UCQ) MaxEqualities() int {
	m := 0
	for _, q := range u.Disjuncts {
		if len(q.Equalities) > m {
			m = len(q.Equalities)
		}
	}
	return m
}

// Iterator yields tuples of a query result. Implementations are the
// polynomial-delay automata-backed enumerator and a materialized-slice
// iterator for the canonical plan.
type Iterator interface {
	// Next returns the next tuple; ok is false when exhausted.
	Next() (span.Tuple, bool)
	// Vars returns the output schema.
	Vars() span.VarList
}

type sliceIter struct {
	vars   span.VarList
	tuples []span.Tuple
	pos    int
}

func (it *sliceIter) Next() (span.Tuple, bool) {
	if it.pos >= len(it.tuples) {
		return nil, false
	}
	t := it.tuples[it.pos]
	it.pos++
	return t, true
}

func (it *sliceIter) Vars() span.VarList { return it.vars }

// Drain collects an iterator into a relation.
func Drain(it Iterator) *rel.Relation {
	r := rel.NewRelation(it.Vars())
	for {
		t, ok := it.Next()
		if !ok {
			return r
		}
		r.Add(t)
	}
}

var _ Iterator = (*enum.Enumerator)(nil)
