// Package leakcheck asserts that a test leaves no goroutines behind. It
// compares runtime.NumGoroutine before and after the test body, retrying
// the after-count for a grace period: goroutine teardown is asynchronous
// (worker pools observe cancellation, deferred recovers run, channels
// close), so a single instantaneous sample would flake.
//
// The count-based approach deliberately tolerates unrelated background
// goroutines that exist before the check starts (the test runner's own,
// timer goroutines); it only catches what the checked body started and
// failed to stop.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// grace is how long Check waits for stragglers to exit before declaring
// a leak. Generous on purpose: a real leak waits forever, so the cost of
// a large grace is paid only on failure.
const grace = 5 * time.Second

// Check runs f and fails the test if goroutines started by f are still
// alive after a grace period. Call it around the whole scenario under
// test, including the cleanup calls whose effect it is asserting:
//
//	leakcheck.Check(t, func() {
//	    ms, _ := c.Eval(ctx, pattern)
//	    ms.Close()
//	})
func Check(t *testing.T, f func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	f()
	deadline := time.Now().Add(grace)
	var after int
	for {
		// Encourage cleanup-based teardown paths (abandoned streams) as
		// well as ordinary scheduling of exiting goroutines.
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d before, %d after %v grace\n%s", before, after, grace, buf)
}
