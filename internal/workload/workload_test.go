package workload

import (
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := Document(Rand(7), DocumentOptions{Sentences: 20, AddressRate: 0.5, PoliceRate: 0.5, EmailRate: 0.5})
	b := Document(Rand(7), DocumentOptions{Sentences: 20, AddressRate: 0.5, PoliceRate: 0.5, EmailRate: 0.5})
	if a != b {
		t.Error("Document not deterministic for equal seeds")
	}
	if Logs(Rand(3), 10) != Logs(Rand(3), 10) {
		t.Error("Logs not deterministic")
	}
	g1 := RandomGraph(Rand(5), 10, 0.4)
	g2 := RandomGraph(Rand(5), 10, 0.4)
	if len(g1.Edges) != len(g2.Edges) {
		t.Error("RandomGraph not deterministic")
	}
}

func TestDocumentFeatures(t *testing.T) {
	doc := Document(Rand(11), DocumentOptions{Sentences: 50, AddressRate: 1, PoliceRate: 1, EmailRate: 1})
	if !strings.Contains(doc, "Belgium") {
		t.Error("rate-1 document lacks Belgium")
	}
	if !strings.Contains(doc, "police") {
		t.Error("rate-1 document lacks police")
	}
	if !strings.Contains(doc, "@") {
		t.Error("rate-1 document lacks e-mail")
	}
	if strings.Count(doc, ".") < 50 {
		t.Errorf("want ≥50 sentence terminators, got %d", strings.Count(doc, "."))
	}
	none := Document(Rand(11), DocumentOptions{Sentences: 30})
	if strings.Contains(none, "Belgium") || strings.Contains(none, "police") {
		t.Error("rate-0 document has features")
	}
}

func TestRandomString(t *testing.T) {
	s := RandomString(Rand(1), 100, 2)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 0; i < len(s); i++ {
		if s[i] != 'a' && s[i] != 'b' {
			t.Fatalf("unexpected byte %q", s[i])
		}
	}
}

func TestRepetitiveString(t *testing.T) {
	s := RepetitiveString(Rand(2), 64)
	if len(s) != 64 {
		t.Fatalf("len = %d", len(s))
	}
}

func TestLogsShape(t *testing.T) {
	logs := Logs(Rand(9), 25)
	lines := strings.Split(strings.TrimSuffix(logs, "\n"), "\n")
	if len(lines) != 25 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, ln := range lines {
		for _, field := range []string{"ts=", "level=", "op=", "id=", "msg="} {
			if !strings.Contains(ln, field) {
				t.Fatalf("line %q lacks %s", ln, field)
			}
		}
	}
}

func TestRandomGraphBounds(t *testing.T) {
	g := RandomGraph(Rand(4), 8, 1.0)
	if len(g.Edges) != 8*7/2 {
		t.Errorf("p=1 graph has %d edges, want %d", len(g.Edges), 28)
	}
	empty := RandomGraph(Rand(4), 8, 0)
	if len(empty.Edges) != 0 {
		t.Error("p=0 graph has edges")
	}
}

func TestPlantClique(t *testing.T) {
	g := RandomGraph(Rand(6), 10, 0.1)
	nodes := PlantClique(Rand(7), g, 4)
	if len(nodes) != 4 {
		t.Fatalf("planted %d nodes", len(nodes))
	}
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				t.Fatal("planted clique incomplete")
			}
		}
	}
}

func TestRandomCNFShape(t *testing.T) {
	c := RandomCNF(Rand(8), 6, 12)
	if c.NumVars != 6 || len(c.Clauses) != 12 {
		t.Fatalf("shape: %d vars, %d clauses", c.NumVars, len(c.Clauses))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, cl := range c.Clauses {
		vars := map[int]bool{}
		for _, l := range cl {
			v := int(l)
			if v < 0 {
				v = -v
			}
			vars[v] = true
		}
		if len(vars) != 3 {
			t.Fatalf("clause %v has %d distinct vars, want 3", cl, len(vars))
		}
	}
}
