// Package workload generates seeded synthetic inputs for the example
// programs, tests and benchmark harness: natural-language-like documents
// with sentence boundaries, addresses and tokens (substituting for the
// corpora the paper's introduction alludes to), machine logs, random
// graphs, random 3CNF formulas and random strings.
//
// All generators are deterministic given a seed, so every experiment in
// EXPERIMENTS.md is reproducible bit for bit.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"spanjoin/internal/reductions"
)

// Rand returns the deterministic source used across the harness.
func Rand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RandomString returns a length-n string over the first k letters of the
// alphabet (k ≤ 26).
func RandomString(r *rand.Rand, n, k int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(k))
	}
	return string(b)
}

// RepetitiveString returns a length-n string built from repetitions of a
// short seed word — high self-similarity stresses the A_eq construction.
func RepetitiveString(r *rand.Rand, n int) string {
	word := RandomString(r, r.Intn(3)+1, 2)
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(word)
	}
	return sb.String()[:n]
}

var (
	subjects = []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	verbs    = []string{"visited", "reported", "called", "left", "found", "mailed", "met", "phoned"}
	objects  = []string{"the office", "a shop", "the station", "a museum", "the bank", "a cafe"}
	cities   = []string{"Bruxelles", "Gent", "Liege", "Antwerpen", "Namur", "Leuven"}
	streets  = []string{"Nation", "Loi", "Midi", "Palais", "Arts", "Science"}
	fillers  = []string{"yesterday", "today", "quietly", "twice", "again", "soon"}
)

// DocumentOptions tune the synthetic document generator.
type DocumentOptions struct {
	// Sentences is the number of sentences to generate.
	Sentences int
	// AddressRate ∈ [0,1]: fraction of sentences containing a Belgium
	// address ("<street> <num> <zip> <city> Belgium").
	AddressRate float64
	// PoliceRate ∈ [0,1]: fraction of sentences containing the token
	// "police".
	PoliceRate float64
	// EmailRate ∈ [0,1]: fraction of sentences containing an e-mail
	// address.
	EmailRate float64
}

// Document generates a synthetic text: '.'-terminated sentences over
// lower-case words, optionally seeded with Belgium addresses, the token
// police, and e-mail addresses — the features targeted by the paper's
// example queries (intro query (1), Example 2.5).
func Document(r *rand.Rand, opt DocumentOptions) string {
	var sb strings.Builder
	for i := 0; i < opt.Sentences; i++ {
		if i > 0 {
			sb.WriteString(" ")
		}
		words := []string{pick(r, subjects), pick(r, verbs), pick(r, objects)}
		if r.Float64() < opt.AddressRate {
			words = append(words, "at", pick(r, streets),
				fmt.Sprintf("%d %d", r.Intn(90)+10, r.Intn(9000)+1000),
				pick(r, cities), "Belgium")
		}
		if r.Float64() < opt.PoliceRate {
			words = append(words, "near", "police")
		}
		if r.Float64() < opt.EmailRate {
			words = append(words, "cc", pick(r, subjects)+"@"+pick(r, []string{"example", "mail", "dev"})+".org")
		}
		words = append(words, pick(r, fillers))
		sb.WriteString(strings.Join(words, " "))
		sb.WriteString(".")
	}
	return sb.String()
}

func pick(r *rand.Rand, xs []string) string { return xs[r.Intn(len(xs))] }

// LogLine is a synthetic machine-log record.
var logLevels = []string{"INFO", "WARN", "ERROR", "DEBUG"}
var logOps = []string{"open", "close", "read", "write", "sync", "retry"}

// Logs generates n machine-log lines of the form
// "ts=<t> level=<LEVEL> op=<op> id=<hex> msg=<words>\n" — the workload for
// the log-analysis example and the E7 benchmarks.
func Logs(r *rand.Rand, n int) string {
	var sb strings.Builder
	t := 1700000000
	for i := 0; i < n; i++ {
		t += r.Intn(30)
		fmt.Fprintf(&sb, "ts=%d level=%s op=%s id=%04x msg=%s %s\n",
			t, pick(r, logLevels), pick(r, logOps), r.Intn(1<<16),
			pick(r, subjects), pick(r, fillers))
	}
	return sb.String()
}

// RandomGraph returns G(n, p) with nodes 1..n.
func RandomGraph(r *rand.Rand, n int, p float64) *reductions.Graph {
	g := &reductions.Graph{N: n}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if r.Float64() < p {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	return g
}

// PlantClique adds a guaranteed k-clique over random nodes to g and returns
// the clique members.
func PlantClique(r *rand.Rand, g *reductions.Graph, k int) []int {
	perm := r.Perm(g.N)
	nodes := make([]int, k)
	for i := 0; i < k; i++ {
		nodes[i] = perm[i] + 1
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				a, b := nodes[i], nodes[j]
				if a > b {
					a, b = b, a
				}
				g.Edges = append(g.Edges, [2]int{a, b})
			}
		}
	}
	return nodes
}

// RandomCNF returns a random 3CNF with n variables and m clauses, each
// clause over three distinct variables.
func RandomCNF(r *rand.Rand, n, m int) *reductions.CNF {
	c := &reductions.CNF{NumVars: n}
	for i := 0; i < m; i++ {
		perm := r.Perm(n)
		var cl reductions.Clause
		for j := 0; j < 3; j++ {
			l := reductions.Lit(perm[j] + 1)
			if r.Intn(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		c.Clauses = append(c.Clauses, cl)
	}
	return c
}
