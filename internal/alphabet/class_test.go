package alphabet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyAndAny(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() || e.Len() != 0 {
		t.Errorf("Empty() not empty: len=%d", e.Len())
	}
	a := Any()
	if a.IsEmpty() || a.Len() != 256 {
		t.Errorf("Any() wrong: len=%d", a.Len())
	}
	for i := 0; i < 256; i++ {
		if e.Contains(byte(i)) {
			t.Errorf("Empty contains %d", i)
		}
		if !a.Contains(byte(i)) {
			t.Errorf("Any missing %d", i)
		}
	}
}

func TestSingle(t *testing.T) {
	for _, b := range []byte{0, 1, 'a', 'z', 63, 64, 127, 128, 191, 192, 255} {
		c := Single(b)
		if c.Len() != 1 {
			t.Errorf("Single(%d).Len() = %d", b, c.Len())
		}
		if !c.Contains(b) {
			t.Errorf("Single(%d) missing %d", b, b)
		}
		if m, ok := c.Min(); !ok || m != b {
			t.Errorf("Single(%d).Min() = %d,%v", b, m, ok)
		}
	}
}

func TestRange(t *testing.T) {
	c := Range('a', 'f')
	if c.Len() != 6 {
		t.Errorf("Range(a,f).Len() = %d", c.Len())
	}
	for b := byte('a'); b <= 'f'; b++ {
		if !c.Contains(b) {
			t.Errorf("missing %c", b)
		}
	}
	if c.Contains('g') || c.Contains('`') {
		t.Error("range leaks outside bounds")
	}
	if !Range('z', 'a').IsEmpty() {
		t.Error("inverted range should be empty")
	}
	full := Range(0, 255)
	if full != Any() {
		t.Error("Range(0,255) != Any()")
	}
}

func TestFromStringAndBytes(t *testing.T) {
	c := FromString("hello")
	want := []byte{'e', 'h', 'l', 'o'}
	got := c.Bytes()
	if len(got) != len(want) {
		t.Fatalf("Bytes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bytes() = %v, want %v", got, want)
		}
	}
}

func TestAddRemove(t *testing.T) {
	var c Class
	c.Add('x')
	if !c.Contains('x') {
		t.Fatal("Add failed")
	}
	c.Remove('x')
	if c.Contains('x') || !c.IsEmpty() {
		t.Fatal("Remove failed")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromString("abc")
	b := FromString("bcd")
	if got := a.Union(b); got.Len() != 4 || !got.Contains('a') || !got.Contains('d') {
		t.Errorf("union wrong: %v", got)
	}
	if got := a.Intersect(b); got.Len() != 2 || got.Contains('a') || got.Contains('d') {
		t.Errorf("intersect wrong: %v", got)
	}
	if got := a.Minus(b); got.Len() != 1 || !got.Contains('a') {
		t.Errorf("minus wrong: %v", got)
	}
	if got := a.Negate(); got.Len() != 253 || got.Contains('b') || !got.Contains('z') {
		t.Errorf("negate wrong: len=%d", got.Len())
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		c    Class
		want string
	}{
		{Empty(), "[]"},
		{Any(), "."},
		{Single('a'), "a"},
		{Single('\n'), `\n`},
		{Single('.'), `\.`},
		{Range('a', 'c'), "[a-c]"},
		{FromString("ab"), "[ab]"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.c.Bytes(), got, tc.want)
		}
	}
}

func TestPredefinedClasses(t *testing.T) {
	if Digit().Len() != 10 || !Digit().Contains('5') || Digit().Contains('a') {
		t.Error("Digit wrong")
	}
	if Word().Len() != 63 || !Word().Contains('_') || Word().Contains('-') {
		t.Errorf("Word wrong: len=%d", Word().Len())
	}
	if !Space().Contains(' ') || !Space().Contains('\t') || Space().Contains('x') {
		t.Error("Space wrong")
	}
}

func randClass(r *rand.Rand) Class {
	var c Class
	n := r.Intn(40)
	for i := 0; i < n; i++ {
		c.Add(byte(r.Intn(256)))
	}
	return c
}

func TestQuickDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randClass(r), randClass(r)
		if a.Union(b).Negate() != a.Negate().Intersect(b.Negate()) {
			t.Fatalf("De Morgan failed for %v, %v", a, b)
		}
		if a.Intersect(b).Negate() != a.Negate().Union(b.Negate()) {
			t.Fatalf("De Morgan 2 failed for %v, %v", a, b)
		}
		if !a.Minus(b).Equal(a.Intersect(b.Negate())) {
			t.Fatalf("Minus failed for %v, %v", a, b)
		}
	}
}

func TestQuickMembershipAgreesWithBytes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		c := randClass(r)
		bs := c.Bytes()
		if len(bs) != c.Len() {
			t.Fatalf("Len %d != |Bytes| %d", c.Len(), len(bs))
		}
		seen := map[byte]bool{}
		for _, b := range bs {
			seen[b] = true
		}
		for j := 0; j < 256; j++ {
			if c.Contains(byte(j)) != seen[byte(j)] {
				t.Fatalf("membership mismatch at %d", j)
			}
		}
	}
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(xs, ys []byte) bool {
		var a, b Class
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		return a.Union(b) == b.Union(a) && a.Intersect(b) == b.Intersect(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
