package alphabet

import "testing"

func BenchmarkContains(b *testing.B) {
	c := Word()
	for i := 0; i < b.N; i++ {
		_ = c.Contains(byte(i))
	}
}

func BenchmarkIntersect(b *testing.B) {
	x, y := Word(), Range('a', 'm')
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

func BenchmarkString(b *testing.B) {
	c := Word()
	for i := 0; i < b.N; i++ {
		_ = c.String()
	}
}
