// Package alphabet provides byte classes: compact 256-bit sets of byte
// values used as transition labels in vset-automata and as literal classes
// in regex formulas.
//
// The paper fixes a finite alphabet Σ; we take Σ to be the byte alphabet and
// let every transition carry a class (a subset of Σ), as production regex
// engines do. A class with a single member corresponds to the paper's single
// terminal letter σ; the full class corresponds to the shorthand Σ.
package alphabet

import (
	"fmt"
	"strings"
)

// Size is the number of symbols in the alphabet Σ.
const Size = 256

// Class is a set of byte values, represented as a 256-bit bitmap.
// The zero value is the empty class (matches nothing, i.e. ∅).
type Class [4]uint64

// Empty returns the empty class ∅.
func Empty() Class { return Class{} }

// Any returns the class containing every byte (the paper's Σ).
func Any() Class {
	return Class{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// Single returns the class containing exactly b.
func Single(b byte) Class {
	var c Class
	c.Add(b)
	return c
}

// Range returns the class containing every byte in [lo, hi]. If lo > hi the
// result is empty.
func Range(lo, hi byte) Class {
	var c Class
	for b := int(lo); b <= int(hi); b++ {
		c.Add(byte(b))
	}
	return c
}

// FromString returns the class containing exactly the bytes of s.
func FromString(s string) Class {
	var c Class
	for i := 0; i < len(s); i++ {
		c.Add(s[i])
	}
	return c
}

// Add inserts b into the class.
func (c *Class) Add(b byte) { c[b>>6] |= 1 << (b & 63) }

// Remove deletes b from the class.
func (c *Class) Remove(b byte) { c[b>>6] &^= 1 << (b & 63) }

// Contains reports whether b is in the class.
func (c Class) Contains(b byte) bool { return c[b>>6]&(1<<(b&63)) != 0 }

// IsEmpty reports whether the class contains no bytes.
func (c Class) IsEmpty() bool { return c == Class{} }

// Len returns the number of bytes in the class.
func (c Class) Len() int {
	n := 0
	for _, w := range c {
		n += popcount(w)
	}
	return n
}

// Union returns c ∪ o.
func (c Class) Union(o Class) Class {
	return Class{c[0] | o[0], c[1] | o[1], c[2] | o[2], c[3] | o[3]}
}

// Intersect returns c ∩ o.
func (c Class) Intersect(o Class) Class {
	return Class{c[0] & o[0], c[1] & o[1], c[2] & o[2], c[3] & o[3]}
}

// Negate returns Σ \ c.
func (c Class) Negate() Class {
	return Class{^c[0], ^c[1], ^c[2], ^c[3]}
}

// Minus returns c \ o.
func (c Class) Minus(o Class) Class {
	return Class{c[0] &^ o[0], c[1] &^ o[1], c[2] &^ o[2], c[3] &^ o[3]}
}

// Equal reports whether two classes contain the same bytes.
func (c Class) Equal(o Class) bool { return c == o }

// Min returns the smallest byte in the class; ok is false if empty.
func (c Class) Min() (b byte, ok bool) {
	for i := 0; i < 256; i++ {
		if c.Contains(byte(i)) {
			return byte(i), true
		}
	}
	return 0, false
}

// Bytes returns all members in increasing order.
func (c Class) Bytes() []byte {
	out := make([]byte, 0, c.Len())
	for i := 0; i < 256; i++ {
		if c.Contains(byte(i)) {
			out = append(out, byte(i))
		}
	}
	return out
}

// String renders the class in a regex-like form, e.g. `a`, `[a-c]`, `.` for
// the full class, or `[]` for the empty class. Intended for debugging and
// dot output.
func (c Class) String() string {
	if c.IsEmpty() {
		return "[]"
	}
	if c == Any() {
		return "."
	}
	n := c.Len()
	if n == 1 {
		b, _ := c.Min()
		return escapeByte(b)
	}
	// Render as ranges.
	var sb strings.Builder
	if n > 128 {
		// More readable as a negated class.
		sb.WriteString("[^")
		writeRanges(&sb, c.Negate())
	} else {
		sb.WriteString("[")
		writeRanges(&sb, c)
	}
	sb.WriteString("]")
	return sb.String()
}

func writeRanges(sb *strings.Builder, c Class) {
	i := 0
	for i < 256 {
		if !c.Contains(byte(i)) {
			i++
			continue
		}
		j := i
		for j+1 < 256 && c.Contains(byte(j+1)) {
			j++
		}
		switch {
		case i == j:
			sb.WriteString(escapeByte(byte(i)))
		case j == i+1:
			sb.WriteString(escapeByte(byte(i)))
			sb.WriteString(escapeByte(byte(j)))
		default:
			sb.WriteString(escapeByte(byte(i)))
			sb.WriteByte('-')
			sb.WriteString(escapeByte(byte(j)))
		}
		i = j + 1
	}
}

func escapeByte(b byte) string {
	switch b {
	case '\n':
		return `\n`
	case '\t':
		return `\t`
	case '\r':
		return `\r`
	case '\\', '[', ']', '-', '^', '.', '{', '}', '(', ')', '|', '*', '+', '?':
		return `\` + string(b)
	}
	if b >= 0x20 && b < 0x7f {
		return string(b)
	}
	return fmt.Sprintf(`\x%02x`, b)
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// Common predefined classes, mirroring the usual regex escapes.
var (
	digit = Range('0', '9')
	word  = Range('a', 'z').Union(Range('A', 'Z')).Union(Range('0', '9')).Union(Single('_'))
	space = FromString(" \t\n\r\f\v")
)

// Digit returns the \d class [0-9].
func Digit() Class { return digit }

// Word returns the \w class [A-Za-z0-9_].
func Word() Class { return word }

// Space returns the \s class of ASCII whitespace.
func Space() Class { return space }
