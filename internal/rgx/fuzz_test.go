package rgx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics: arbitrary byte soup must produce either a Formula
// or a *ParseError — never a panic — and successful parses must round-trip
// through String.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(123456))
	alphabet := []byte(`ab.*+?|(){}[]\x{}-^0_ `)
	for i := 0; i < 5000; i++ {
		n := r.Intn(20)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet))]
		}
		pattern := string(b)
		f, err := Parse(pattern)
		if err != nil {
			var pe *ParseError
			if !asParseError(err, &pe) {
				t.Fatalf("Parse(%q): non-ParseError %T: %v", pattern, err, err)
			}
			continue
		}
		rendered := f.String()
		f2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-parse of %q failed: %v", pattern, rendered, err)
		}
		if f2.String() != rendered {
			t.Fatalf("unstable rendering: %q -> %q -> %q", pattern, rendered, f2.String())
		}
		if !f.Vars.Equal(f2.Vars) {
			t.Fatalf("round trip changed variables: %v vs %v", f.Vars, f2.Vars)
		}
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

// TestQuickLiteralPatternsRoundTrip: any text built from non-special bytes
// parses as a concatenation of literals matching exactly itself.
func TestQuickLiteralPatternsRoundTrip(t *testing.T) {
	safe := func(b byte) byte {
		// Map into harmless literal space: lowercase letters and space.
		return byte('a' + int(b)%26)
	}
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			// The empty pattern is ε and renders as "()".
			parsed, err := Parse("")
			return err == nil && parsed.String() == "()"
		}
		if len(raw) > 30 {
			raw = raw[:30]
		}
		lit := make([]byte, len(raw))
		for i, b := range raw {
			lit[i] = safe(b)
		}
		pattern := string(lit)
		parsed, err := Parse(pattern)
		if err != nil {
			return false
		}
		// A literal pattern has no variables and renders to itself.
		return len(parsed.Vars) == 0 && parsed.String() == pattern
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFunctionalityDecidable: CheckFunctional must terminate and be
// consistent with compilation on arbitrary parses.
func TestQuickFunctionalityDecidable(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	pieces := []string{"a", "b", "x{", "y{", "}", "|", "*", "(", ")", ".", ""}
	for i := 0; i < 3000; i++ {
		pattern := ""
		for j := r.Intn(8); j > 0; j-- {
			pattern += pieces[r.Intn(len(pieces))]
		}
		f, err := Parse(pattern)
		if err != nil {
			continue
		}
		funcErr := f.CheckFunctional()
		_, compErr := Compile(f)
		if (funcErr == nil) != (compErr == nil) {
			t.Fatalf("CheckFunctional and Compile disagree on %q: %v vs %v", pattern, funcErr, compErr)
		}
	}
}
