package rgx

import "spanjoin/internal/prefilter"

// RequiredLiteral computes a conservative necessary factor of the formula:
// a byte string that occurs in clr(r) for every r ∈ R(α). The empty string
// means "no useful factor". Evaluators use it to skip documents that cannot
// match at all — a lightweight version of the filtering direction the
// paper's conclusion points to (Yang et al.'s negative factors). It is the
// single-factor view of RequiredLiterals: the longest factor of the set,
// ties broken lexicographically.
func RequiredLiteral(n Node) string {
	best := ""
	for _, l := range RequiredLiterals(n) {
		if len(l) > len(best) || (len(l) == len(best) && l < best) {
			best = l
		}
	}
	return best
}

func isEpsilonNode(n Node) bool {
	_, ok := n.(Epsilon)
	return ok
}

// RequiredLiterals computes the full conservative requirement set of the
// formula: every returned literal occurs in clr(r) for every r ∈ R(α), so a
// document missing any one of them cannot match. Unlike RequiredLiteral,
// which keeps only the single longest factor, this surfaces every mandatory
// run of a concatenation (e.g. `x{ERROR}.*y{op=}` requires both "ERROR" and
// "op="), which composition layers combine into multi-literal prefilters.
// The list is raw — callers normalize (dedupe, drop subsumed factors).
func RequiredLiterals(n Node) []string {
	_, req := analyzeAll(n)
	return req
}

// analyzeAll is the set-valued analogue of analyze: exact has the same
// semantics; req is a set of literals each guaranteed to occur in every
// word of the node's language.
func analyzeAll(n Node) (exact string, req []string) {
	switch t := n.(type) {
	case Empty, Epsilon:
		return "", nil
	case Class:
		if t.C.Len() == 1 {
			b, _ := t.C.Min()
			s := string(b)
			return s, []string{s}
		}
		return "", nil
	case Concat:
		run := "" // current mandatory literal run
		allExact := true
		joined := ""
		for _, c := range t.Subs {
			ex, sub := analyzeAll(c)
			if ex != "" || isEpsilonNode(c) {
				// Exact children extend the run; their own requirement set is
				// subsumed by the run (it contains the child verbatim).
				run += ex
				joined += ex
				continue
			}
			allExact = false
			if run != "" {
				req = append(req, run)
				run = ""
			}
			// A non-exact child still contributes its mandatory factors:
			// every word threads through it.
			req = append(req, sub...)
		}
		if run != "" {
			req = append(req, run)
		}
		if allExact {
			return joined, req
		}
		return "", req
	case Alt:
		// A literal is required by the alternation iff every branch implies
		// it: each branch's set has a factor containing it. Maximal common
		// substrings of branch factors qualify too ((abc|abd) requires "ab").
		exacts := make([]string, len(t.Subs))
		sets := make([][]string, len(t.Subs))
		for i, c := range t.Subs {
			exacts[i], sets[i] = analyzeAll(c)
		}
		req = prefilter.CommonFactors(sets)
		sameExact := exacts[0] != ""
		for i := 1; i < len(exacts); i++ {
			if exacts[i] != exacts[0] {
				sameExact = false
			}
		}
		if sameExact {
			return exacts[0], req
		}
		return "", req
	case Star, Opt:
		return "", nil
	case Plus:
		// At least one iteration of the body occurs.
		_, req = analyzeAll(t.Sub)
		return "", req
	case Capture:
		return analyzeAll(t.Sub)
	}
	return "", nil
}
