package rgx

// RequiredLiteral computes a conservative necessary factor of the formula:
// a byte string that occurs in clr(r) for every r ∈ R(α). The empty string
// means "no useful factor". Evaluators use it to skip documents that cannot
// match at all — a lightweight version of the filtering direction the
// paper's conclusion points to (Yang et al.'s negative factors).
//
// The analysis is sound, not complete: within a concatenation, a maximal
// run of mandatory single-byte classes forms a factor; alternations
// contribute only a factor common to all branches.
func RequiredLiteral(n Node) string {
	_, best := analyze(n)
	return best
}

// analyze returns (exact, best): exact is the literal the node always
// produces when it is a fixed single string ("" plus ok=false semantics are
// folded: exact == "" means "not a fixed literal" unless the node is ε),
// and best is the longest factor guaranteed to occur in every word.
func analyze(n Node) (exact string, best string) {
	switch t := n.(type) {
	case Empty:
		// The empty language: every claim is vacuously true, but a factor
		// from a dead branch must not leak into alternations; callers of ∅
		// have been simplified away by SimplifyEmpty in compiled formulas.
		return "", ""
	case Epsilon:
		return "", ""
	case Class:
		if t.C.Len() == 1 {
			b, _ := t.C.Min()
			s := string(b)
			return s, s
		}
		return "", ""
	case Concat:
		run := ""  // current mandatory literal run
		best := "" // longest factor seen
		allExact := true
		joined := ""
		for _, c := range t.Subs {
			ex, sub := analyze(c)
			if len(sub) > len(best) {
				best = sub
			}
			if ex != "" || isEpsilonNode(c) {
				run += ex
				joined += ex
				if len(run) > len(best) {
					best = run
				}
				continue
			}
			allExact = false
			run = ""
		}
		if allExact {
			return joined, best
		}
		return "", best
	case Alt:
		// A factor common to all branches: use the shortest branch factor
		// if it occurs in every branch's factor set; conservatively, demand
		// identical factors.
		exacts := make([]string, len(t.Subs))
		bests := make([]string, len(t.Subs))
		for i, c := range t.Subs {
			exacts[i], bests[i] = analyze(c)
		}
		sameBest := true
		for i := 1; i < len(bests); i++ {
			if bests[i] != bests[0] {
				sameBest = false
				break
			}
		}
		b := ""
		if sameBest {
			b = bests[0]
		}
		sameExact := exacts[0] != ""
		for i := 1; i < len(exacts); i++ {
			if exacts[i] != exacts[0] {
				sameExact = false
			}
		}
		if sameExact {
			return exacts[0], b
		}
		return "", b
	case Star, Opt:
		return "", ""
	case Plus:
		_, b := analyze(t.Sub)
		return "", b
	case Capture:
		return analyze(t.Sub)
	}
	return "", ""
}

func isEpsilonNode(n Node) bool {
	_, ok := n.(Epsilon)
	return ok
}
