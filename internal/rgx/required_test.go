package rgx_test

import (
	"math/rand"
	"strings"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/rgx"
)

func TestRequiredLiteralFixed(t *testing.T) {
	cases := []struct {
		pattern string
		want    string
	}{
		{"abc", "abc"},
		{".*police.*", "police"},
		{".*x{Belgium}.*", "Belgium"},
		{"a*b*", ""},
		{"(abc|abd)", "ab"},    // common prefix of both branches
		{"(abc|abc)", "abc"},   // identical branches
		{"x{ab}y{cd}", "abcd"}, // captures are transparent
		{"ab.cd", "ab"},        // wildcard breaks the run; ties keep first longest
		{"a(bc)+d", "bc"},      // plus body required once... run analysis picks bc
		{"[ab]x", "x"},         // multi-byte class not required
		{"a|", ""},             // ε branch kills the factor
		{".*ERROR op=.*", "ERROR op="},
	}
	for _, tc := range cases {
		f := rgx.MustParse(tc.pattern)
		got := rgx.RequiredLiteral(f.Root)
		if got != tc.want {
			t.Errorf("RequiredLiteral(%q) = %q, want %q", tc.pattern, got, tc.want)
		}
	}
}

// TestRequiredLiteralSound: every string with a non-empty result must
// contain the computed factor.
func TestRequiredLiteralSound(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	patterns := []string{
		".*x{ab}.*", "(ab|ba)x{c}", "a+x{b?}c*d", ".*x{a}b.*", "x{(ab)+}",
		"(a|b)*cd(a|b)*",
	}
	for _, p := range patterns {
		f := rgx.MustParse(p)
		req := rgx.RequiredLiteral(f.Root)
		a, err := rgx.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			n := r.Intn(7)
			b := make([]byte, n)
			for i := range b {
				b[i] = "abcd"[r.Intn(4)]
			}
			s := string(b)
			_, tuples, err := enum.Eval(a, s)
			if err != nil {
				t.Fatal(err)
			}
			if len(tuples) > 0 && req != "" && !strings.Contains(s, req) {
				t.Fatalf("%q matched %q but required literal %q is absent", p, s, req)
			}
		}
	}
}

func TestRequiredLiteralsFixed(t *testing.T) {
	// Expectations are sets; order is the raw analysis order.
	cases := []struct {
		pattern string
		want    []string
	}{
		{"abc", []string{"abc"}},
		{".*police.*", []string{"police"}},
		// Both mandatory runs survive, not just the longest.
		{"x{ERROR}.*y{op=}", []string{"ERROR", "op="}},
		{"ab.cd", []string{"ab", "cd"}},
		{"a(bc)+d", []string{"a", "bc", "d"}},
		{"a*b*", nil},
		// Branches share "err" via superstring implication.
		{"(xerry|err)", []string{"err"}},
		{"(abc|abd)", []string{"ab"}},
		{"a|", nil},
	}
	for _, tc := range cases {
		f := rgx.MustParse(tc.pattern)
		got := rgx.RequiredLiterals(f.Root)
		gotSet := map[string]bool{}
		for _, l := range got {
			gotSet[l] = true
		}
		wantSet := map[string]bool{}
		for _, l := range tc.want {
			wantSet[l] = true
		}
		if len(gotSet) != len(wantSet) {
			t.Errorf("RequiredLiterals(%q) = %q, want %q", tc.pattern, got, tc.want)
			continue
		}
		for l := range wantSet {
			if !gotSet[l] {
				t.Errorf("RequiredLiterals(%q) = %q, missing %q", tc.pattern, got, l)
			}
		}
	}
}

// TestRequiredLiteralsSound: every string with a non-empty result must
// contain every computed factor.
func TestRequiredLiteralsSound(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	patterns := []string{
		".*x{ab}.*", "(ab|ba)x{c}", "a+x{b?}c*d", ".*x{a}b.*", "x{(ab)+}",
		"(a|b)*cd(a|b)*", "x{ab}.*y{cd}", "(abc|abcd)x{a*}",
	}
	for _, p := range patterns {
		f := rgx.MustParse(p)
		req := rgx.RequiredLiterals(f.Root)
		a, err := rgx.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			n := r.Intn(8)
			b := make([]byte, n)
			for i := range b {
				b[i] = "abcd"[r.Intn(4)]
			}
			s := string(b)
			_, tuples, err := enum.Eval(a, s)
			if err != nil {
				t.Fatal(err)
			}
			if len(tuples) == 0 {
				continue
			}
			for _, l := range req {
				if !strings.Contains(s, l) {
					t.Fatalf("%q matched %q but required literal %q is absent (set %q)", p, s, l, req)
				}
			}
		}
	}
}
