// Package rgx implements regex formulas (paper §2.2.2): regular expressions
// over Σ extended with capture variables x{α}, together with a parser, the
// functionality test (Thm 2.4), and the linear-time compilation to
// functional vset-automata (Lemma 3.4).
//
// # Pattern syntax
//
// The concrete syntax follows the paper with ASCII conveniences:
//
//	a          literal byte
//	.          any byte (the paper's Σ)
//	[abc] [a-z] [^...]   byte classes; [] is the empty class ∅
//	\d \w \s \n \t \r \xHH    escapes and predefined classes
//	αβ         concatenation
//	α|β        alternation; an empty branch is ε (e.g. "a|")
//	α* α+ α?   repetition
//	(α)        grouping
//	x{α}       capture variable x (paper: x{α}); the variable name is the
//	           maximal run of word characters immediately before '{'.
//	           A literal '{' or '}' must be escaped: \{ \}.
//
// Following the paper, formulas are functional by convention: Parse accepts
// any syntactically well-formed formula, while Compile and the query layer
// require functionality and report a typed error otherwise.
package rgx

import (
	"fmt"
	"sort"
	"strings"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/span"
)

// Node is a node of the regex-formula AST.
type Node interface {
	// String renders the node back into pattern syntax.
	String() string
	precedence() int
}

// Empty is the formula ∅ (empty language).
type Empty struct{}

// Epsilon is the formula ε (empty string).
type Epsilon struct{}

// Class is a literal byte class (a single σ ∈ Σ, a set, or Σ itself).
type Class struct {
	C alphabet.Class
}

// Concat is the concatenation α·β with two or more factors.
type Concat struct {
	Subs []Node
}

// Alt is the alternation α ∨ β with two or more branches.
type Alt struct {
	Subs []Node
}

// Star is the Kleene closure α*.
type Star struct {
	Sub Node
}

// Plus is α+ ≡ α·α*. It is kept as a node (not desugared) so patterns
// round-trip through String.
type Plus struct {
	Sub Node
}

// Opt is α? ≡ α ∨ ε.
type Opt struct {
	Sub Node
}

// Capture is the variable binding x{α}.
type Capture struct {
	Var string
	Sub Node
}

func (Empty) precedence() int   { return 4 }
func (Epsilon) precedence() int { return 4 }
func (Class) precedence() int   { return 4 }
func (Capture) precedence() int { return 4 }
func (Star) precedence() int    { return 3 }
func (Plus) precedence() int    { return 3 }
func (Opt) precedence() int     { return 3 }
func (Concat) precedence() int  { return 2 }
func (Alt) precedence() int     { return 1 }

func paren(child Node, min int) string {
	s := child.String()
	if child.precedence() < min {
		return "(" + s + ")"
	}
	return s
}

func (Empty) String() string   { return "[]" }
func (Epsilon) String() string { return "()" }
func (n Class) String() string { return n.C.String() }
func (n Concat) String() string {
	var sb strings.Builder
	for _, s := range n.Subs {
		sb.WriteString(paren(s, 2))
	}
	return sb.String()
}
func (n Alt) String() string {
	parts := make([]string, len(n.Subs))
	for i, s := range n.Subs {
		if _, ok := s.(Epsilon); ok {
			parts[i] = ""
			continue
		}
		parts[i] = paren(s, 2)
	}
	return strings.Join(parts, "|")
}
func (n Star) String() string    { return paren(n.Sub, 4) + "*" }
func (n Plus) String() string    { return paren(n.Sub, 4) + "+" }
func (n Opt) String() string     { return paren(n.Sub, 4) + "?" }
func (n Capture) String() string { return n.Var + "{" + n.Sub.String() + "}" }

// Formula is a parsed regex formula with its variable set.
type Formula struct {
	Root Node
	// Vars is the sorted set Vars(α) of capture variables occurring in Root.
	Vars span.VarList
	// Pattern is the source text when the formula came from Parse.
	Pattern string
}

// String returns the pattern syntax of the formula.
func (f *Formula) String() string { return f.Root.String() }

// Size returns the number of AST nodes, the |α| of the paper's bounds.
func (f *Formula) Size() int { return nodeSize(f.Root) }

func nodeSize(n Node) int {
	switch t := n.(type) {
	case Concat:
		s := 1
		for _, c := range t.Subs {
			s += nodeSize(c)
		}
		return s
	case Alt:
		s := 1
		for _, c := range t.Subs {
			s += nodeSize(c)
		}
		return s
	case Star:
		return 1 + nodeSize(t.Sub)
	case Plus:
		return 1 + nodeSize(t.Sub)
	case Opt:
		return 1 + nodeSize(t.Sub)
	case Capture:
		return 1 + nodeSize(t.Sub)
	default:
		return 1
	}
}

// NewFormula wraps an AST into a Formula, computing its variable set.
func NewFormula(root Node) *Formula {
	vars := map[string]bool{}
	collectVars(root, vars)
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, v)
	}
	sort.Strings(names)
	return &Formula{Root: root, Vars: span.VarList(names)}
}

func collectVars(n Node, out map[string]bool) {
	switch t := n.(type) {
	case Concat:
		for _, c := range t.Subs {
			collectVars(c, out)
		}
	case Alt:
		for _, c := range t.Subs {
			collectVars(c, out)
		}
	case Star:
		collectVars(t.Sub, out)
	case Plus:
		collectVars(t.Sub, out)
	case Opt:
		collectVars(t.Sub, out)
	case Capture:
		out[t.Var] = true
		collectVars(t.Sub, out)
	}
}

// FunctionalityError explains why a formula is not functional.
type FunctionalityError struct {
	Reason string
}

func (e *FunctionalityError) Error() string { return "rgx: formula not functional: " + e.Reason }

// CheckFunctional verifies that the formula is functional (every ref-word of
// R(α) is valid, Thm 2.4): bottom-up,
//
//   - concatenation factors must bind disjoint variable sets,
//   - alternation branches must bind identical variable sets,
//   - starred/optional/plus subformulas must bind no variables
//     (α? and α+ with variables can generate zero or two bindings),
//   - a capture x{β} requires x ∉ Vars(β).
//
// It returns nil iff the formula is functional.
//
// ∅-subformulas are simplified away first (they generate no ref-words), so
// e.g. ∅ ∨ x{a} is functional while x{a} ∨ y{a} is not; a variable occurring
// only inside a dead ∅-branch of a non-empty formula makes it non-functional
// (no ref-word can bind it).
func (f *Formula) CheckFunctional() error {
	root := SimplifyEmpty(f.Root)
	if isEmptyNode(root) {
		return nil // R(α) = ∅: vacuously functional
	}
	live := NewFormula(root).Vars
	if !live.Equal(f.Vars) {
		return &FunctionalityError{
			Reason: fmt.Sprintf("variables %v occur only inside ∅-subformulas", f.Vars.Minus(live)),
		}
	}
	_, err := checkFunc(root)
	return err
}

func checkFunc(n Node) (span.VarList, error) {
	switch t := n.(type) {
	case Empty, Epsilon, Class:
		return nil, nil
	case Concat:
		var all span.VarList
		for _, c := range t.Subs {
			vs, err := checkFunc(c)
			if err != nil {
				return nil, err
			}
			if inter := all.Intersect(vs); len(inter) > 0 {
				return nil, &FunctionalityError{
					Reason: fmt.Sprintf("variable %s bound more than once in a concatenation", inter[0]),
				}
			}
			all = all.Union(vs)
		}
		return all, nil
	case Alt:
		var first span.VarList
		for i, c := range t.Subs {
			vs, err := checkFunc(c)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				first = vs
			} else if !first.Equal(vs) {
				return nil, &FunctionalityError{
					Reason: fmt.Sprintf("alternation branches bind different variables: %v vs %v", first, vs),
				}
			}
		}
		return first, nil
	case Star:
		vs, err := checkFunc(t.Sub)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 {
			return nil, &FunctionalityError{
				Reason: fmt.Sprintf("variable %s bound under *", vs[0]),
			}
		}
		return nil, nil
	case Plus:
		vs, err := checkFunc(t.Sub)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 {
			return nil, &FunctionalityError{
				Reason: fmt.Sprintf("variable %s bound under +", vs[0]),
			}
		}
		return nil, nil
	case Opt:
		vs, err := checkFunc(t.Sub)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 {
			return nil, &FunctionalityError{
				Reason: fmt.Sprintf("variable %s bound under ?", vs[0]),
			}
		}
		return nil, nil
	case Capture:
		vs, err := checkFunc(t.Sub)
		if err != nil {
			return nil, err
		}
		if vs.Contains(t.Var) {
			return nil, &FunctionalityError{
				Reason: fmt.Sprintf("variable %s nested inside its own binding", t.Var),
			}
		}
		return vs.Union(span.NewVarList(t.Var)), nil
	}
	return nil, fmt.Errorf("rgx: unknown node %T", n)
}
