package rgx

import (
	"errors"
	"testing"
)

// TestExample25Functional reproduces Example 2.5: the two formulas of the
// example are functional, x{a}x{a} and x{a}|y{a} are not.
func TestExample25Functional(t *testing.T) {
	functional := []string{
		".*(x{foo}.*y{bar}|y{bar}.*x{foo}).*",
		`.*mail{user{[a-z]*}@domain{[a-z]*\.[a-z]*}}.*`,
		"x{a}",
		"a*x{a*}a*",
		"x{}",     // empty span capture
		"x{y{}}a", // nested captures
	}
	for _, pattern := range functional {
		if err := MustParse(pattern).CheckFunctional(); err != nil {
			t.Errorf("%q should be functional: %v", pattern, err)
		}
	}
	nonFunctional := []string{
		"x{a}x{a}",            // double binding
		"x{a}|y{a}",           // branches bind different variables
		"(x{a})*",             // binding under star
		"(x{a})+",             // binding under plus
		"(x{a})?",             // binding under opt
		"x{x{a}}",             // variable nested in itself
		"x{a}|",               // ε branch misses x
		"x{a}(y{b}|y{c}x{d})", // x doubly bound in one combination
	}
	for _, pattern := range nonFunctional {
		err := MustParse(pattern).CheckFunctional()
		if err == nil {
			t.Errorf("%q should not be functional", pattern)
			continue
		}
		var fe *FunctionalityError
		if !errors.As(err, &fe) {
			t.Errorf("%q: error is %T, want *FunctionalityError", pattern, err)
		}
	}
}

func TestFunctionalWithEmptySubformulas(t *testing.T) {
	// ∅ branches generate no ref-words: ∅ ∨ x{a} is functional.
	if err := MustParse("[]x{a}y{b}|x{a}").CheckFunctional(); err == nil {
		t.Error("x ∨ dead-branch mentioning y: y occurs only in ∅-branch but formula also binds x alone... this case IS functional only when variables agree; here it must fail")
	}
	// Dead branch binding the same variable set: fine.
	if err := MustParse("([]x{a})|x{b}").CheckFunctional(); err != nil {
		t.Errorf("∅-branch should be ignored: %v", err)
	}
	// A variable that occurs only inside an ∅-subformula of a non-empty
	// formula can never be bound: not functional.
	if err := MustParse("a|[]y{b}").CheckFunctional(); err == nil {
		t.Error("variable only in ∅-branch must make the formula non-functional")
	}
	// The wholly empty formula is vacuously functional.
	if err := MustParse("[]x{a}").CheckFunctional(); err != nil {
		t.Errorf("R(α)=∅ is vacuously functional: %v", err)
	}
}

func TestSimplifyEmpty(t *testing.T) {
	cases := []struct {
		pattern string
		want    string
	}{
		{"[]a", "[]"},
		{"a[]|b", "b"},
		{"[]*", "()"},
		{"[]?", "()"},
		{"[]+", "[]"},
		{"x{[]}", "[]"},
		{"a|[]", "a"},
		{"(a[])|([]b)", "[]"},
	}
	for _, tc := range cases {
		got := SimplifyEmpty(MustParse(tc.pattern).Root).String()
		if got != tc.want {
			t.Errorf("SimplifyEmpty(%q) = %q, want %q", tc.pattern, got, tc.want)
		}
	}
}

func TestCheckFunctionalLinearScaling(t *testing.T) {
	// Sanity check of Thm 2.4's feasibility: a formula with many variables
	// checks quickly and correctly.
	pattern := ""
	for i := 0; i < 50; i++ {
		pattern += string(rune('a'+i%26)) + "v" + itoa(i) + "{a}"
	}
	f := MustParse(pattern)
	if len(f.Vars) != 50 {
		t.Fatalf("got %d vars", len(f.Vars))
	}
	if err := f.CheckFunctional(); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
