package rgx

import (
	"spanjoin/internal/vsa"
)

// Compile converts a functional regex formula into an equivalent functional
// vset-automaton in O(|α|) time (Lemma 3.4). The construction is Thompson's,
// operating on the ref-word alphabet: a capture x{β} compiles into an
// x⊢-transition, the fragment for β, and a ⊣x-transition.
//
// Compile returns a *FunctionalityError if the formula is not functional,
// mirroring the paper's convention that regex formulas are functional.
func Compile(f *Formula) (*vsa.VSA, error) {
	if err := f.CheckFunctional(); err != nil {
		return nil, err
	}
	root := SimplifyEmpty(f.Root)
	a := vsa.New(f.Vars)
	if isEmptyNode(root) {
		return a, nil // no transitions: R(A) = ∅
	}
	c := compiler{a: a}
	s, e := c.frag(root)
	a.AddEps(a.Init, s)
	a.AddEps(e, a.Final)
	return a, nil
}

// CompilePattern parses and compiles a pattern in one step.
func CompilePattern(pattern string) (*vsa.VSA, error) {
	f, err := Parse(pattern)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

// MustCompilePattern panics on error; for statically known patterns.
func MustCompilePattern(pattern string) *vsa.VSA {
	a, err := CompilePattern(pattern)
	if err != nil {
		panic(err)
	}
	return a
}

type compiler struct {
	a *vsa.VSA
}

// frag compiles a node into a fragment with a single entry and exit state.
func (c *compiler) frag(n Node) (start, end int32) {
	a := c.a
	switch t := n.(type) {
	case Epsilon:
		s, e := a.AddState(), a.AddState()
		a.AddEps(s, e)
		return s, e
	case Class:
		s, e := a.AddState(), a.AddState()
		a.AddChar(s, t.C, e)
		return s, e
	case Concat:
		start, end = c.frag(t.Subs[0])
		for _, sub := range t.Subs[1:] {
			s2, e2 := c.frag(sub)
			a.AddEps(end, s2)
			end = e2
		}
		return start, end
	case Alt:
		s, e := a.AddState(), a.AddState()
		for _, sub := range t.Subs {
			bs, be := c.frag(sub)
			a.AddEps(s, bs)
			a.AddEps(be, e)
		}
		return s, e
	case Star:
		s, e := a.AddState(), a.AddState()
		bs, be := c.frag(t.Sub)
		a.AddEps(s, bs)
		a.AddEps(be, e)
		a.AddEps(s, e)
		a.AddEps(be, bs)
		return s, e
	case Plus:
		s, e := a.AddState(), a.AddState()
		bs, be := c.frag(t.Sub)
		a.AddEps(s, bs)
		a.AddEps(be, e)
		a.AddEps(be, bs)
		return s, e
	case Opt:
		s, e := a.AddState(), a.AddState()
		bs, be := c.frag(t.Sub)
		a.AddEps(s, bs)
		a.AddEps(be, e)
		a.AddEps(s, e)
		return s, e
	case Capture:
		s, e := a.AddState(), a.AddState()
		bs, be := c.frag(t.Sub)
		v := a.VarIndex(t.Var)
		a.AddOpen(s, v, bs)
		a.AddClose(be, v, e)
		return s, e
	}
	panic("rgx: SimplifyEmpty left an unexpected node")
}
