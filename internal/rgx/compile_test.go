package rgx_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

func evalPattern(t *testing.T, pattern, s string) []span.Tuple {
	t.Helper()
	a, err := rgx.CompilePattern(pattern)
	if err != nil {
		t.Fatalf("compile %q: %v", pattern, err)
	}
	_, tuples, err := enum.Eval(a, s)
	if err != nil {
		t.Fatalf("eval %q on %q: %v", pattern, s, err)
	}
	return tuples
}

func TestCompileProducesFunctionalVSA(t *testing.T) {
	patterns := []string{
		"a", "a*", "x{a}", "a*x{a*}a*", "x{a}y{b}|y{b}x{a}",
		".*x{foo}.*", "x{y{}}a", "[a-c]+x{[0-9]}",
	}
	for _, p := range patterns {
		a, err := rgx.CompilePattern(p)
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		if !a.IsFunctional() {
			t.Errorf("compiled automaton for %q is not functional", p)
		}
	}
}

func TestCompileRejectsNonFunctional(t *testing.T) {
	for _, p := range []string{"x{a}x{a}", "x{a}|y{a}", "(x{a})*"} {
		_, err := rgx.CompilePattern(p)
		if err == nil {
			t.Errorf("compile %q should fail", p)
			continue
		}
		var fe *rgx.FunctionalityError
		if !errors.As(err, &fe) {
			t.Errorf("compile %q: error %T, want *FunctionalityError", p, err)
		}
	}
}

// TestExample25EmailFormula evaluates the e-mail formula of Example 2.5.
func TestExample25EmailFormula(t *testing.T) {
	pattern := ` mail{user{[a-z]+}@domain{[a-z]+\.[a-z]+}} `
	doc := "contact us: alice@example.com or bob@dev.org today"
	a, err := rgx.CompilePattern(".*" + pattern + ".*")
	if err != nil {
		t.Fatal(err)
	}
	vars, tuples, err := enum.Eval(a, doc)
	if err != nil {
		t.Fatal(err)
	}
	mails := map[string]bool{}
	mi := vars.Index("mail")
	for _, tu := range tuples {
		mails[tu[mi].Substr(doc)] = true
	}
	if len(mails) != 2 || !mails["alice@example.com"] || !mails["bob@dev.org"] {
		t.Fatalf("extracted %v, want alice@example.com and bob@dev.org", mails)
	}
	for _, tu := range tuples {
		user := tu[vars.Index("user")].Substr(doc)
		domain := tu[vars.Index("domain")].Substr(doc)
		mail := tu[mi].Substr(doc)
		if mail != user+"@"+domain {
			t.Errorf("mail %q != user %q @ domain %q", mail, user, domain)
		}
	}
}

func TestEvalFixedCases(t *testing.T) {
	cases := []struct {
		pattern string
		s       string
		want    int // number of tuples
	}{
		{"a*x{a*}a*", "aaa", 10}, // Example A.1
		{"a*x{a*}a*", "", 1},
		{"x{a}", "a", 1},
		{"x{a}", "b", 0},
		// A regex formula must match the WHOLE string (clr(r) = s):
		// without Σ* padding, [[x{.}]]("ab") is empty.
		{"x{.}", "ab", 0},
		{".*x{.}.*", "ab", 2},
		{".*x{a}.*", "aa", 2},
		{"x{.*}", "ab", 1},     // only the full span matches all of s
		{".*x{.*}.*", "ab", 6}, // all spans of a 2-char string
		{"x{}", "ab", 0},
		{".*x{}.*", "ab", 3}, // empty span at each boundary
		{"x{a|b}y{c}", "ac", 1},
		{"x{a|b}y{c}", "bc", 1},
		{"x{a|b}y{c}", "cc", 0},
		{"(x{a}b|a(x{b}))", "ab", 2},
	}
	for _, tc := range cases {
		got := evalPattern(t, tc.pattern, tc.s)
		if len(got) != tc.want {
			t.Errorf("|[[%s]](%q)| = %d, want %d (%v)", tc.pattern, tc.s, len(got), tc.want, got)
		}
	}
}

func TestEvalAgainstOracleFixed(t *testing.T) {
	patterns := []string{
		"a*x{a*}a*",
		"x{a*}y{b*}",
		".*x{ab}.*",
		"x{.*}y{.*}",
		"(x{a}b|a(x{b}))",
		"x{a|}b",
		"x{}a*",
		"a?x{b+}a?",
		"x{(ab)*}",
		".*(x{a}.*y{b}|y{b}.*x{a}).*",
	}
	strs := []string{"", "a", "b", "ab", "ba", "aab", "abab", "bbaa"}
	for _, p := range patterns {
		f := rgx.MustParse(p)
		a, err := rgx.Compile(f)
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		for _, s := range strs {
			want := oracle.EvalFormula(f, s)
			_, got, err := enum.Eval(a, s)
			if err != nil {
				t.Fatalf("eval %q on %q: %v", p, s, err)
			}
			if !oracle.EqualTupleSets(got, want) {
				t.Errorf("[[%s]](%q): got %v, want %v", p, s, got, want)
			}
		}
	}
}

// randFunctionalFormula generates a random functional formula by
// construction: captures are introduced only at binding-discipline-safe
// points.
func randFunctionalFormula(r *rand.Rand, depth int, avail []string) (string, []string) {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return "a", nil
		case 1:
			return "b", nil
		case 2:
			return ".", nil
		default:
			return "", nil
		}
	}
	switch r.Intn(4) {
	case 0: // concat: split available vars
		k := r.Intn(len(avail) + 1)
		l, lv := randFunctionalFormula(r, depth-1, avail[:k])
		rr, rv := randFunctionalFormula(r, depth-1, avail[k:])
		return l + rr, append(lv, rv...)
	case 1: // alt: both branches must bind the same vars
		l, lv := randFunctionalFormula(r, depth-1, avail)
		// Force the right branch to bind exactly lv by reusing them.
		rr, rv := randFunctionalFormula(r, depth-1, lv)
		if len(rv) != len(lv) {
			// Right branch didn't consume all: fall back to reusing left.
			return l, lv
		}
		return "(" + l + "|" + rr + ")", lv
	case 2: // star over variable-free subformula
		sub, _ := randFunctionalFormula(r, depth-1, nil)
		if sub == "" {
			return "a*", nil
		}
		return "(" + sub + ")*", nil
	default: // capture, if a variable is available
		if len(avail) == 0 {
			sub, _ := randFunctionalFormula(r, depth-1, nil)
			return sub, nil
		}
		sub, sv := randFunctionalFormula(r, depth-1, avail[1:])
		return avail[0] + "{" + sub + "}", append([]string{avail[0]}, sv...)
	}
}

func TestEvalAgainstOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(20260612))
	vars := []string{"x", "y"}
	for i := 0; i < 150; i++ {
		pattern, bound := randFunctionalFormula(r, 3, vars)
		if pattern == "" {
			continue
		}
		f, err := rgx.Parse(pattern)
		if err != nil {
			t.Fatalf("generated unparsable %q: %v", pattern, err)
		}
		if !span.NewVarList(bound...).Equal(f.Vars) {
			// Generator bookkeeping mismatch: skip rather than mistest.
			continue
		}
		if f.CheckFunctional() != nil {
			t.Fatalf("generator produced non-functional %q", pattern)
		}
		a, err := rgx.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []string{"", "a", "ab", "ba", "aab"} {
			want := oracle.EvalFormula(f, s)
			_, got, err := enum.Eval(a, s)
			if err != nil {
				t.Fatalf("eval %q on %q: %v", pattern, s, err)
			}
			if !oracle.EqualTupleSets(got, want) {
				oracle.SortTuples(got)
				t.Errorf("[[%s]](%q): got %v, want %v", pattern, s, got, want)
			}
		}
	}
}

// TestCompileLinearSize verifies Lemma 3.4's size bound: the number of
// states grows linearly in |α|.
func TestCompileLinearSize(t *testing.T) {
	base := "a*x{a*}a*"
	prev := 0
	for k := 1; k <= 4; k++ {
		pattern := strings.Repeat("a*", k*10) + base
		a, err := rgx.CompilePattern(pattern)
		if err != nil {
			t.Fatal(err)
		}
		n := a.NumStates()
		if prev > 0 {
			growth := n - prev
			if growth <= 0 || growth > 10*2*2+10 {
				t.Errorf("state growth %d not linear-looking at k=%d", growth, k)
			}
		}
		prev = n
	}
}

func TestCompileEmptyLanguage(t *testing.T) {
	a, err := rgx.CompilePattern("[]x{a}")
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsEmptyLanguage() {
		t.Error("∅-formula should compile to an empty-language automaton")
	}
	_, tuples, err := enum.Eval(a, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 0 {
		t.Errorf("got %d tuples from ∅", len(tuples))
	}
}

func TestCompiledAutomatonAcceptsOracleRefwords(t *testing.T) {
	// Cross-check at the ref-word level: the compiled automaton must accept
	// exactly the interleavings of tuples in [[α]](s).
	f := rgx.MustParse("x{a*}y{b*}")
	a, err := rgx.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	s := "aab"
	want := oracle.EvalFormula(f, s)
	got := oracle.EvalVSA(a, s)
	if !oracle.EqualTupleSets(got, want) {
		t.Errorf("oracle VSA eval %v != oracle formula eval %v", got, want)
	}
	_ = vsa.ErrNotFunctional
}
