package rgx

import (
	"strings"
	"testing"
)

func BenchmarkParse(b *testing.B) {
	pattern := `.*(sen{[A-Za-z0-9 ]+\.})( |mail{user{[a-z]+}@domain{[a-z]+\.[a-z]+}})+.*`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(pattern); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLarge(b *testing.B) {
	pattern := strings.Repeat("(a|b)*c", 200) + "x{a+}"
	b.SetBytes(int64(len(pattern)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(pattern); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckFunctional(b *testing.B) {
	f := MustParse(strings.Repeat("x{a}y{b}|y{b}x{a}", 1)) // small but branchy
	for i := 0; i < b.N; i++ {
		if err := f.CheckFunctional(); err != nil {
			b.Fatal(err)
		}
	}
}
