package rgx

import (
	"strings"
	"testing"

	"spanjoin/internal/span"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		pattern string
		vars    []string
	}{
		{"abc", nil},
		{"a|b", nil},
		{"a*", nil},
		{"a+b?", nil},
		{"(ab)*", nil},
		{"x{a}", []string{"x"}},
		{"x{a}y{b}", []string{"x", "y"}},
		{".*x{foo}.*y{bar}.*", []string{"x", "y"}},
		{"[a-z]+", nil},
		{"[^a-z]", nil},
		{"a|", nil},     // ε branch
		{"()", nil},     // ε
		{"[]", nil},     // ∅
		{`\{\}`, nil},   // escaped braces
		{`\d\w\s`, nil}, // predefined classes
		{`\x41`, nil},   // hex escape
		{"outer{inner{a}b}", []string{"inner", "outer"}},
	}
	for _, tc := range cases {
		f, err := Parse(tc.pattern)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", tc.pattern, err)
			continue
		}
		want := span.NewVarList(tc.vars...)
		if !f.Vars.Equal(want) {
			t.Errorf("Parse(%q).Vars = %v, want %v", tc.pattern, f.Vars, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"(",     // missing )
		"a)",    // stray )
		"*a",    // nothing to repeat
		"a**b(", // missing ) later
		"[abc",  // missing ]
		"x{a",   // missing }
		"}",     // stray }
		"{a}",   // brace without variable
		"12{a}", // variable starting with a digit
		`a\`,    // trailing backslash
		`\xg1`,  // bad hex
		`\x4`,   // truncated hex
		"[z-a]", // inverted range
		"a|b)",  // stray )
	}
	for _, pattern := range cases {
		if _, err := Parse(pattern); err == nil {
			t.Errorf("Parse(%q) should fail", pattern)
		} else if !strings.Contains(err.Error(), "parse error") {
			t.Errorf("Parse(%q) error lacks position info: %v", pattern, err)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// a|bc* must parse as a | (b(c*)).
	f := MustParse("a|bc*")
	alt, ok := f.Root.(Alt)
	if !ok || len(alt.Subs) != 2 {
		t.Fatalf("root is %T, want Alt of 2", f.Root)
	}
	cat, ok := alt.Subs[1].(Concat)
	if !ok || len(cat.Subs) != 2 {
		t.Fatalf("second branch is %T, want Concat of 2", alt.Subs[1])
	}
	if _, ok := cat.Subs[1].(Star); !ok {
		t.Fatalf("star binds tighter than concat; got %T", cat.Subs[1])
	}
}

func TestParseCaptureNameRule(t *testing.T) {
	// The maximal word run before '{' is the variable name.
	f := MustParse("ab{c}")
	cap, ok := f.Root.(Capture)
	if !ok || cap.Var != "ab" {
		t.Fatalf("got %#v, want capture ab", f.Root)
	}
	// A non-word byte breaks the run: only "b" is the variable here.
	f = MustParse("a.b{c}")
	cat, ok := f.Root.(Concat)
	if !ok {
		t.Fatalf("root %T", f.Root)
	}
	last, ok := cat.Subs[len(cat.Subs)-1].(Capture)
	if !ok || last.Var != "b" {
		t.Fatalf("got %#v, want capture b", cat.Subs[len(cat.Subs)-1])
	}
}

func TestRoundTripThroughString(t *testing.T) {
	patterns := []string{
		"abc",
		"a|b|c",
		"(a|b)*",
		"x{a*}",
		"x{a}y{b}|y{b}x{a}",
		"[a-c]+",
		"a?b+c*",
		".*x{foo}.*",
		"outer{ax{b}c}",
	}
	for _, pattern := range patterns {
		f1 := MustParse(pattern)
		rendered := f1.String()
		f2, err := Parse(rendered)
		if err != nil {
			t.Errorf("re-parse of %q (from %q) failed: %v", rendered, pattern, err)
			continue
		}
		if f2.String() != rendered {
			t.Errorf("round trip unstable: %q -> %q -> %q", pattern, rendered, f2.String())
		}
		if !f1.Vars.Equal(f2.Vars) {
			t.Errorf("round trip changed vars: %v vs %v", f1.Vars, f2.Vars)
		}
	}
}

func TestFormulaSize(t *testing.T) {
	if s := MustParse("a").Size(); s != 1 {
		t.Errorf("Size(a) = %d", s)
	}
	small := MustParse("x{a}").Size()
	big := MustParse("x{a}y{b}z{c}").Size()
	if big <= small {
		t.Errorf("Size not monotone: %d vs %d", small, big)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("(")
}
