package rgx

import (
	"fmt"

	"spanjoin/internal/alphabet"
)

// ParseError is a positioned syntax error.
type ParseError struct {
	Pos     int // byte offset into the pattern
	Pattern string
	Msg     string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rgx: parse error at offset %d in %q: %s", e.Pos, e.Pattern, e.Msg)
}

// Parse parses a regex-formula pattern (see the package documentation for
// the syntax) into a Formula. Parse does not require functionality; use
// CheckFunctional or Compile for that.
func Parse(pattern string) (*Formula, error) {
	p := &parser{src: pattern}
	n, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected %q", p.src[p.pos])
	}
	f := NewFormula(n)
	f.Pattern = pattern
	return f, nil
}

// MustParse is Parse for statically known patterns; it panics on error.
func MustParse(pattern string) *Formula {
	f, err := Parse(pattern)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Pattern: p.src, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }
func (p *parser) next() byte { b := p.src[p.pos]; p.pos++; return b }
func (p *parser) accept(b byte) bool {
	if !p.eof() && p.peek() == b {
		p.pos++
		return true
	}
	return false
}

// alt := concat ('|' concat)*
func (p *parser) alt() (Node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []Node{first}
	for p.accept('|') {
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return Alt{Subs: subs}, nil
}

// concat := repeat* ; an empty concatenation is ε.
func (p *parser) concat() (Node, error) {
	var subs []Node
	for !p.eof() {
		switch p.peek() {
		case '|', ')', '}':
			goto done
		}
		n, err := p.repeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
done:
	switch len(subs) {
	case 0:
		return Epsilon{}, nil
	case 1:
		return subs[0], nil
	}
	return Concat{Subs: subs}, nil
}

// repeat := atom ('*' | '+' | '?')*
func (p *parser) repeat() (Node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peek() {
		case '*':
			p.pos++
			n = Star{Sub: n}
		case '+':
			p.pos++
			n = Plus{Sub: n}
		case '?':
			p.pos++
			n = Opt{Sub: n}
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *parser) atom() (Node, error) {
	if p.eof() {
		return nil, p.errf("unexpected end of pattern")
	}
	switch b := p.peek(); b {
	case '(':
		p.pos++
		if p.accept(')') {
			return Epsilon{}, nil
		}
		n, err := p.alt()
		if err != nil {
			return nil, err
		}
		if !p.accept(')') {
			return nil, p.errf("missing )")
		}
		return n, nil
	case '.':
		p.pos++
		return Class{C: alphabet.Any()}, nil
	case '[':
		return p.class()
	case '\\':
		p.pos++
		c, err := p.escape(false)
		if err != nil {
			return nil, err
		}
		return Class{C: c}, nil
	case '*', '+', '?':
		return nil, p.errf("nothing to repeat before %q", b)
	case '{':
		return nil, p.errf("'{' must follow a variable name or be escaped")
	case '}':
		return nil, p.errf("unmatched '}' (escape literal braces)")
	default:
		// A maximal run of word characters directly followed by '{' is a
		// capture variable; otherwise consume a single literal byte.
		if isWordByte(b) {
			end := p.pos
			for end < len(p.src) && isWordByte(p.src[end]) {
				end++
			}
			if end < len(p.src) && p.src[end] == '{' {
				name := p.src[p.pos:end]
				if name[0] >= '0' && name[0] <= '9' {
					return nil, p.errf("invalid variable name %q (must not start with a digit)", name)
				}
				p.pos = end + 1 // past '{'
				sub, err := p.alt()
				if err != nil {
					return nil, err
				}
				if !p.accept('}') {
					return nil, p.errf("missing } closing capture %s{", name)
				}
				return Capture{Var: name, Sub: sub}, nil
			}
		}
		p.pos++
		return Class{C: alphabet.Single(b)}, nil
	}
}

// class := '[' '^'? item* ']' ; item := byte | escape | byte '-' byte.
// "[]" is the empty class ∅ and "[^]" is Σ.
func (p *parser) class() (Node, error) {
	p.pos++ // consume '['
	negate := p.accept('^')
	c := alphabet.Empty()
	for {
		if p.eof() {
			return nil, p.errf("missing ] closing class")
		}
		if p.accept(']') {
			if negate {
				c = c.Negate()
			}
			return Class{C: c}, nil
		}
		lo, isClass, cls, err := p.classItem()
		if err != nil {
			return nil, err
		}
		if isClass {
			c = c.Union(cls)
			continue
		}
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, isClass2, _, err := p.classItem()
			if err != nil {
				return nil, err
			}
			if isClass2 {
				return nil, p.errf("invalid range endpoint")
			}
			if hi < lo {
				return nil, p.errf("invalid range %q-%q", lo, hi)
			}
			c = c.Union(alphabet.Range(lo, hi))
			continue
		}
		c.Add(lo)
	}
}

// classItem parses a single byte or escape inside a class. isClass is true
// when the escape denotes a multi-byte class (\d, \w, \s and negations).
func (p *parser) classItem() (b byte, isClass bool, cls alphabet.Class, err error) {
	ch := p.next()
	if ch != '\\' {
		return ch, false, alphabet.Class{}, nil
	}
	cls, err = p.escape(true)
	if err != nil {
		return 0, false, alphabet.Class{}, err
	}
	if cls.Len() == 1 {
		m, _ := cls.Min()
		return m, false, alphabet.Class{}, nil
	}
	return 0, true, cls, nil
}

// escape parses the character after a backslash.
func (p *parser) escape(inClass bool) (alphabet.Class, error) {
	if p.eof() {
		return alphabet.Class{}, p.errf("trailing backslash")
	}
	switch b := p.next(); b {
	case 'n':
		return alphabet.Single('\n'), nil
	case 't':
		return alphabet.Single('\t'), nil
	case 'r':
		return alphabet.Single('\r'), nil
	case 'f':
		return alphabet.Single('\f'), nil
	case 'v':
		return alphabet.Single('\v'), nil
	case 'd':
		return alphabet.Digit(), nil
	case 'D':
		return alphabet.Digit().Negate(), nil
	case 'w':
		return alphabet.Word(), nil
	case 'W':
		return alphabet.Word().Negate(), nil
	case 's':
		return alphabet.Space(), nil
	case 'S':
		return alphabet.Space().Negate(), nil
	case 'x':
		if p.pos+2 > len(p.src) {
			return alphabet.Class{}, p.errf("truncated \\x escape")
		}
		hi, ok1 := hexVal(p.src[p.pos])
		lo, ok2 := hexVal(p.src[p.pos+1])
		if !ok1 || !ok2 {
			return alphabet.Class{}, p.errf("invalid \\x escape")
		}
		p.pos += 2
		return alphabet.Single(hi<<4 | lo), nil
	default:
		return alphabet.Single(b), nil
	}
}

func hexVal(b byte) (byte, bool) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', true
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, true
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, true
	}
	return 0, false
}

func isWordByte(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}
