package rgx

// SimplifyEmpty rewrites the AST so that the ∅ formula occurs only as the
// whole result: ∅-subformulas are propagated (∅·α = ∅, ∅ ∨ α = α, ∅* = ε,
// x{∅} = ∅, …) and empty byte classes become ∅. The rewriting preserves
// R(α) exactly; it is used by the functionality test and the compiler so
// that dead branches cannot hide variables.
func SimplifyEmpty(n Node) Node {
	switch t := n.(type) {
	case Empty:
		return t
	case Epsilon:
		return t
	case Class:
		if t.C.IsEmpty() {
			return Empty{}
		}
		return t
	case Concat:
		subs := make([]Node, 0, len(t.Subs))
		for _, c := range t.Subs {
			s := SimplifyEmpty(c)
			if isEmptyNode(s) {
				return Empty{}
			}
			if _, eps := s.(Epsilon); eps {
				continue
			}
			subs = append(subs, s)
		}
		switch len(subs) {
		case 0:
			return Epsilon{}
		case 1:
			return subs[0]
		}
		return Concat{Subs: subs}
	case Alt:
		subs := make([]Node, 0, len(t.Subs))
		for _, c := range t.Subs {
			s := SimplifyEmpty(c)
			if isEmptyNode(s) {
				continue
			}
			subs = append(subs, s)
		}
		switch len(subs) {
		case 0:
			return Empty{}
		case 1:
			return subs[0]
		}
		return Alt{Subs: subs}
	case Star:
		s := SimplifyEmpty(t.Sub)
		if isEmptyNode(s) {
			return Epsilon{}
		}
		return Star{Sub: s}
	case Plus:
		s := SimplifyEmpty(t.Sub)
		if isEmptyNode(s) {
			return Empty{}
		}
		return Plus{Sub: s}
	case Opt:
		s := SimplifyEmpty(t.Sub)
		if isEmptyNode(s) {
			return Epsilon{}
		}
		return Opt{Sub: s}
	case Capture:
		s := SimplifyEmpty(t.Sub)
		if isEmptyNode(s) {
			return Empty{}
		}
		return Capture{Var: t.Var, Sub: s}
	}
	return n
}

func isEmptyNode(n Node) bool {
	_, ok := n.(Empty)
	return ok
}
