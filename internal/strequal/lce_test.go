package strequal_test

import (
	"strings"
	"testing"
	"testing/quick"

	"spanjoin/internal/strequal"
)

// TestQuickLCEAgainstDefinition: lce[i][j] must equal the length of the
// longest common prefix of s[i:] and s[j:], for random strings.
func TestQuickLCEAgainstDefinition(t *testing.T) {
	naive := func(s string, i, j int) int {
		n := 0
		for i+n < len(s) && j+n < len(s) && s[i+n] == s[j+n] {
			n++
		}
		return n
	}
	f := func(raw []byte) bool {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		b := make([]byte, len(raw))
		for i, c := range raw {
			b[i] = 'a' + c%3 // small alphabet for more repetition
		}
		s := string(b)
		lce := strequal.LCE(s)
		for i := 0; i <= len(s); i++ {
			for j := 0; j <= len(s); j++ {
				if lce[i][j] != naive(s, i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLCESymmetricAndDiagonal(t *testing.T) {
	s := strings.Repeat("abcab", 4)
	lce := strequal.LCE(s)
	for i := 0; i <= len(s); i++ {
		if lce[i][i] != len(s)-i {
			t.Fatalf("diagonal lce[%d][%d] = %d, want %d", i, i, lce[i][i], len(s)-i)
		}
		for j := 0; j <= len(s); j++ {
			if lce[i][j] != lce[j][i] {
				t.Fatalf("asymmetric at %d,%d", i, j)
			}
		}
	}
}
