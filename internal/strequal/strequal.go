// Package strequal implements the runtime compilation of string-equality
// selections into vset-automata (Theorem 5.4).
//
// String equality cannot be compiled into a vset-automaton statically —
// core spanners are strictly more expressive than regular ones (Fagin et
// al.) — but for a *fixed input string* s one can build an automaton A_eq
// over {x, y} with µ ∈ [[A_eq]](s) iff s_µ(x) = s_µ(y). Joining A_eq with A
// (Lemma 3.10) then realizes ζ=_{x,y}(A) for this s, and the join is
// enumerable with polynomial delay (Theorem 3.3).
//
// The construction enumerates the valid triples (i, j, ℓ) — start of x,
// start of y, common length — using an O(N²) longest-common-extension
// table, and builds a DAG of states keyed by (boundary, pending variable
// operations), sharing the common prefix (before any operation) and suffix
// (after all operations). The automaton has Θ(N³) states in the worst case
// (e.g. s = aⁿ), matching the paper's O(N^{3k+1}) bound for k selections.
package strequal

import (
	"fmt"
	"sort"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// LCE returns the longest-common-extension table of s: lce[i][j] is the
// length of the longest common prefix of s[i:] and s[j:], for 0 ≤ i, j ≤ N
// (0-based suffix starts). Computed in O(N²).
func LCE(s string) [][]int {
	n := len(s)
	lce := make([][]int, n+1)
	for i := range lce {
		lce[i] = make([]int, n+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := n - 1; j >= 0; j-- {
			if s[i] == s[j] {
				lce[i][j] = lce[i+1][j+1] + 1
			}
		}
	}
	return lce
}

// op is a pending variable operation at a 1-based boundary position.
type op struct {
	pos   int  // boundary 1..N+1
	close bool // false = open
	yvar  bool // false = x, true = y
}

// Build constructs A_eq for the selection ζ=_{x,y} on the concrete string s.
// [[A_eq]](s) = { µ : s_µ(x) = s_µ(y) }, and [[A_eq]](s′) = ∅ for s′ ≠ s
// whenever |s′| ≠ |s| or s′ differs from s (the automaton reads s exactly).
func Build(s string, x, y string) (*vsa.VSA, error) {
	if x == y {
		return nil, fmt.Errorf("strequal: ζ= needs two distinct variables, got %q twice", x)
	}
	vars := span.NewVarList(x, y)
	a := vsa.New(vars)
	xv := a.VarIndex(x)
	yv := a.VarIndex(y)
	n := len(s)
	lce := LCE(s)

	// State interning: key = (boundary, canonical pending-op list).
	type stateKey string
	ids := map[stateKey]int32{}
	keyOf := func(b int, pending []op) stateKey {
		k := fmt.Sprintf("%d|", b)
		for _, o := range pending {
			k += fmt.Sprintf("%d,%v,%v;", o.pos, o.close, o.yvar)
		}
		return stateKey(k)
	}
	getState := func(b int, pending []op) int32 {
		k := keyOf(b, pending)
		if q, ok := ids[k]; ok {
			return q
		}
		q := a.AddState()
		ids[k] = q
		return q
	}

	// The shared suffix path: boundary b with no pending ops, reading the
	// rest of s to the final state.
	suffix := make([]int32, n+2)
	suffix[n+1] = a.Final
	for b := n; b >= 1; b-- {
		q := getState(b, nil)
		a.AddChar(q, alphabet.Single(s[b-1]), suffix[b+1])
		suffix[b] = q
	}
	// Walk one triple's path, reusing interned states. Ops at the same
	// boundary are ordered canonically: x⊢ < ⊣x < y⊢ < ⊣y keeps each
	// variable's open before its close when both land on one boundary.
	addTriple := func(ops []op) {
		sort.SliceStable(ops, func(i, j int) bool {
			if ops[i].pos != ops[j].pos {
				return ops[i].pos < ops[j].pos
			}
			return opRank(ops[i]) < opRank(ops[j])
		})
		cur := a.Init
		b := 1
		pending := ops
		if len(pending) > 0 {
			// The initial state stands for boundary 1 with all ops pending;
			// link Init to the interned representative via ε once.
			rep := getState(1, pending)
			if !epsEdgeExists(a, cur, rep) {
				a.AddEps(cur, rep)
			}
			cur = rep
		} else {
			if !epsEdgeExists(a, cur, suffix[1]) {
				a.AddEps(cur, suffix[1])
			}
			return
		}
		for {
			if len(pending) > 0 && pending[0].pos == b {
				next := pending[1:]
				var to int32
				if len(next) == 0 {
					if b == n+1 {
						to = a.Final
					} else {
						to = suffix[b]
					}
				} else {
					to = getState(b, next)
				}
				if !edgeExists(a, cur, to, pending[0]) {
					o := pending[0]
					v := xv
					if o.yvar {
						v = yv
					}
					if o.close {
						a.AddClose(cur, v, to)
					} else {
						a.AddOpen(cur, v, to)
					}
				}
				cur = to
				pending = next
				if len(pending) == 0 {
					return // suffix path continues from here
				}
				continue
			}
			// Read the next character of s.
			if b > n {
				return
			}
			to := getState(b+1, pending)
			if !charEdgeExists(a, cur, to) {
				a.AddChar(cur, alphabet.Single(s[b-1]), to)
			}
			cur = to
			b++
		}
	}

	// Enumerate triples: 1-based starts i (x), j (y), length ℓ with
	// s[i-1 : i-1+ℓ] == s[j-1 : j-1+ℓ].
	for i := 1; i <= n+1; i++ {
		for j := 1; j <= n+1; j++ {
			maxL := lce[i-1][j-1]
			if m := n + 1 - i; m < maxL {
				maxL = m
			}
			if m := n + 1 - j; m < maxL {
				maxL = m
			}
			for l := 0; l <= maxL; l++ {
				addTriple([]op{
					{pos: i, close: false, yvar: false},
					{pos: i + l, close: true, yvar: false},
					{pos: j, close: false, yvar: true},
					{pos: j + l, close: true, yvar: true},
				})
			}
		}
	}
	return a.Trim(), nil
}

func opRank(o op) int {
	r := 0
	if o.yvar {
		r += 2
	}
	if o.close {
		r++
	}
	return r
}

func edgeExists(a *vsa.VSA, from, to int32, o op) bool {
	for _, t := range a.Adj[from] {
		if t.To != to {
			continue
		}
		if o.close && t.Kind == vsa.KClose || !o.close && t.Kind == vsa.KOpen {
			return true
		}
	}
	return false
}

func charEdgeExists(a *vsa.VSA, from, to int32) bool {
	for _, t := range a.Adj[from] {
		if t.To == to && t.Kind == vsa.KChar {
			return true
		}
	}
	return false
}

func epsEdgeExists(a *vsa.VSA, from, to int32) bool {
	for _, t := range a.Adj[from] {
		if t.To == to && t.Kind == vsa.KEps {
			return true
		}
	}
	return false
}

// Apply compiles the sequence of string-equality selections onto A for the
// concrete string s: it joins A with one A_eq per selection (Theorem 5.4).
// Each selection is a pair (x, y) of variables of A.
func Apply(a *vsa.VSA, s string, selections [][2]string) (*vsa.VSA, error) {
	out := a
	for _, sel := range selections {
		if a.Vars.Index(sel[0]) < 0 || a.Vars.Index(sel[1]) < 0 {
			return nil, fmt.Errorf("strequal: selection ζ=_{%s,%s} uses a variable not in %v",
				sel[0], sel[1], a.Vars)
		}
		aeq, err := Build(s, sel[0], sel[1])
		if err != nil {
			return nil, err
		}
		joined, err := vsa.Join(out, aeq)
		if err != nil {
			return nil, err
		}
		out = joined
	}
	return out, nil
}
