package strequal_test

import (
	"math/rand"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/strequal"
	"spanjoin/internal/vsa"
)

func TestLCE(t *testing.T) {
	s := "abab"
	lce := strequal.LCE(s)
	cases := []struct{ i, j, want int }{
		{0, 2, 2}, // "abab" vs "ab": common prefix ab
		{0, 0, 4},
		{1, 3, 1}, // "bab" vs "b"
		{0, 1, 0}, // "abab" vs "bab"
		{4, 0, 0}, // empty suffix
	}
	for _, tc := range cases {
		if got := lce[tc.i][tc.j]; got != tc.want {
			t.Errorf("lce[%d][%d] = %d, want %d", tc.i, tc.j, got, tc.want)
		}
	}
}

// allEqualPairs enumerates the expected [[A_eq]](s) by brute force.
func allEqualPairs(s string) map[[2]span.Span]bool {
	out := map[[2]span.Span]bool{}
	for _, x := range span.All(len(s)) {
		for _, y := range span.All(len(s)) {
			if x.Substr(s) == y.Substr(s) {
				out[[2]span.Span{x, y}] = true
			}
		}
	}
	return out
}

func TestBuildAeqExhaustive(t *testing.T) {
	for _, s := range []string{"", "a", "ab", "aa", "aba", "abab", "aaaa"} {
		a, err := strequal.Build(s, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		if !a.IsFunctional() {
			t.Fatalf("A_eq for %q not functional", s)
		}
		vars, tuples, err := enum.Eval(a, s)
		if err != nil {
			t.Fatal(err)
		}
		xi, yi := vars.Index("x"), vars.Index("y")
		want := allEqualPairs(s)
		if len(tuples) != len(want) {
			t.Fatalf("on %q: %d tuples, want %d", s, len(tuples), len(want))
		}
		for _, tu := range tuples {
			if !want[[2]span.Span{tu[xi], tu[yi]}] {
				t.Errorf("on %q: unexpected pair %v,%v (%q vs %q)",
					s, tu[xi], tu[yi], tu[xi].Substr(s), tu[yi].Substr(s))
			}
		}
	}
}

func TestBuildAeqOtherStringsEmpty(t *testing.T) {
	// A_eq is built for a concrete s; on other strings it is empty (it
	// reads s exactly).
	a, err := strequal.Build("abc", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []string{"", "ab", "abd", "abcd", "xbc"} {
		_, tuples, err := enum.Eval(a, other)
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) != 0 {
			t.Errorf("[[A_eq]](%q) has %d tuples, want 0", other, len(tuples))
		}
	}
}

func TestBuildRejectsSameVariable(t *testing.T) {
	if _, err := strequal.Build("a", "x", "x"); err == nil {
		t.Error("ζ= with a repeated variable must be rejected")
	}
}

func TestApplySingleSelection(t *testing.T) {
	// ζ=_{x,y}: x and y span equal substrings, extracted independently.
	a := rgx.MustCompilePattern(".*x{a+}.*y{a+}.*")
	for _, s := range []string{"aa", "aaa", "aabaa"} {
		sel, err := strequal.Apply(a, s, [][2]string{{"x", "y"}})
		if err != nil {
			t.Fatal(err)
		}
		vars, got, err := enum.Eval(sel, s)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: filter the unselected result.
		baseVars, base, err := enum.Eval(a, s)
		if err != nil {
			t.Fatal(err)
		}
		var want []span.Tuple
		for _, tu := range base {
			if tu[baseVars.Index("x")].Substr(s) == tu[baseVars.Index("y")].Substr(s) {
				want = append(want, tu)
			}
		}
		if !vars.Equal(baseVars) {
			t.Fatalf("selection changed schema: %v vs %v", vars, baseVars)
		}
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("on %q: got %d tuples, want %d", s, len(got), len(want))
		}
	}
}

func TestApplyChainedSelections(t *testing.T) {
	// Three variables with ζ=_{x,y} and ζ=_{y,z}: all three substrings equal.
	a := rgx.MustCompilePattern(".*x{.+}.*y{.+}.*z{.+}.*")
	s := "abaaba"
	sel, err := strequal.Apply(a, s, [][2]string{{"x", "y"}, {"y", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	vars, got, err := enum.Eval(sel, s)
	if err != nil {
		t.Fatal(err)
	}
	baseVars, base, err := enum.Eval(a, s)
	if err != nil {
		t.Fatal(err)
	}
	var want []span.Tuple
	for _, tu := range base {
		x := tu[baseVars.Index("x")].Substr(s)
		y := tu[baseVars.Index("y")].Substr(s)
		z := tu[baseVars.Index("z")].Substr(s)
		if x == y && y == z {
			want = append(want, tu)
		}
	}
	_ = vars
	if !oracle.EqualTupleSets(got, want) {
		t.Errorf("chained selections: got %d, want %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("test vacuous: no expected tuples (pick a better s)")
	}
}

func TestApplyUnknownVariable(t *testing.T) {
	a := rgx.MustCompilePattern("x{a}")
	if _, err := strequal.Apply(a, "a", [][2]string{{"x", "nope"}}); err == nil {
		t.Error("selection with unknown variable must fail")
	}
}

func TestAeqSizeGrowsCubically(t *testing.T) {
	// On s = aⁿ every (i, j, ℓ) triple is valid: state count should grow
	// roughly as N³ (the paper's bound). Check the exponent is ≥ 2.5 and the
	// construction stays functional.
	sizes := map[int]int{}
	for _, n := range []int{4, 8, 16} {
		s := ""
		for i := 0; i < n; i++ {
			s += "a"
		}
		a, err := strequal.Build(s, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		sizes[n] = a.NumStates()
	}
	ratio := float64(sizes[16]) / float64(sizes[8])
	if ratio < 5 { // 2^2.5 ≈ 5.7; cubic doubling gives 8
		t.Errorf("A_eq growth ratio %0.1f too small for ~N³ (sizes %v)", ratio, sizes)
	}
	if ratio > 12 {
		t.Errorf("A_eq growth ratio %0.1f too large (sizes %v)", ratio, sizes)
	}
}

func TestApplyRandomAgainstFilter(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	patterns := []string{
		".*x{.+}.*y{.+}.*",
		"x{.*}y{.*}",
		".*x{.}.*y{.}.*",
	}
	for trial := 0; trial < 20; trial++ {
		p := patterns[r.Intn(len(patterns))]
		a := rgx.MustCompilePattern(p)
		n := r.Intn(4) + 2
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(2))
		}
		s := string(b)
		sel, err := strequal.Apply(a, s, [][2]string{{"x", "y"}})
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := enum.Eval(sel, s)
		if err != nil {
			t.Fatal(err)
		}
		baseVars, base, err := enum.Eval(a, s)
		if err != nil {
			t.Fatal(err)
		}
		var want []span.Tuple
		for _, tu := range base {
			if tu[baseVars.Index("x")].Substr(s) == tu[baseVars.Index("y")].Substr(s) {
				want = append(want, tu)
			}
		}
		if !oracle.EqualTupleSets(got, want) {
			t.Errorf("%q on %q: got %d, want %d", p, s, len(got), len(want))
		}
	}
	_ = vsa.ErrNotFunctional
}
