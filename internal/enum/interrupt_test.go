package enum

import (
	"math/rand"
	"strings"
	"testing"

	"spanjoin/internal/alloctest"
	"spanjoin/internal/rgx"
)

// TestInterruptAbandonsBuild: a firing interrupt leaves the enumerator
// empty for the current document, and a later Reset with the interrupt
// cleared recovers full results — the enumerator is not poisoned.
func TestInterruptAbandonsBuild(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{z+}.*")
	// Long enough to hit a poll, sparse enough to enumerate instantly.
	doc := strings.Repeat("a", interruptStride*3) + "zz"
	e, err := Prepare(a, doc)
	if err != nil {
		t.Fatal(err)
	}
	want := len(e.All())
	if want == 0 {
		t.Fatal("workload produced no tuples")
	}

	e.SetInterrupt(func() bool { return true })
	e.Reset(doc)
	if !e.Empty() {
		t.Fatal("interrupted build must come up empty")
	}
	if _, ok := e.Next(); ok {
		t.Fatal("interrupted enumerator yielded a tuple")
	}

	e.SetInterrupt(nil)
	e.Reset(doc)
	if got := len(e.All()); got != want {
		t.Fatalf("after clearing the interrupt: %d tuples, want %d", got, want)
	}
}

// TestInterruptUnfiredIsInvisible: an installed interrupt that never
// fires must not change results on either build path.
func TestInterruptUnfiredIsInvisible(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{ab+}.*")
	doc := strings.Repeat("c", interruptStride) + randDoc(rand.New(rand.NewSource(9)), 64)
	for _, prep := range []struct {
		name string
		e    func() *Enumerator
	}{
		{"matrix", func() *Enumerator { e, _ := Prepare(a, doc); return e }},
		{"reference", func() *Enumerator { e, _ := PrepareRef(a, doc); return e }},
	} {
		e := prep.e()
		want := e.All()
		polls := 0
		e.SetInterrupt(func() bool { polls++; return false })
		e.Reset(doc)
		if got := e.All(); !tuplesEqual(got, want) {
			t.Fatalf("%s build: interrupted-but-unfired results differ", prep.name)
		}
		if polls == 0 {
			t.Fatalf("%s build: interrupt was never polled on a %d-byte doc", prep.name, len(doc))
		}
	}
}

// TestInterruptAllocsSteadyState: the budget/deadline hook must not cost
// the build its zero-allocation steady state — the gate the corpus fast
// path depends on (EvalOptions budgets enabled but unhit).
func TestInterruptAllocsSteadyState(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a+}.*")
	s := randDoc(rand.New(rand.NewSource(5)), 64)
	e, err := Prepare(a, s)
	if err != nil {
		t.Fatal(err)
	}
	e.SetInterrupt(func() bool { return false })
	drain := func() {
		for {
			if _, ok := e.Next(); !ok {
				return
			}
		}
	}
	for i := 0; i < 3; i++ {
		e.Reset(s)
		drain()
	}
	// This assertion gates the whole Reset+drain path, entry dispatch and
	// tuple cursor included.
	//
	//spanjoin:allocgate spanjoin/internal/enum.(*Enumerator).build spanjoin/internal/enum.(*Enumerator).Next
	avg := alloctest.Run(t, 20, func() {
		e.Reset(s)
		drain()
	})
	e.Reset(s)
	tuples := float64(len(e.All()))
	if avg > tuples+4 {
		t.Fatalf("Reset+drain with an armed interrupt allocates %.1f per document for %v tuples; want ≈ tuple count", avg, tuples)
	}
}
