package enum_test

import (
	"math/rand"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/workload"
)

// TestAGAgainstGenericCrossSection: the specialized layered enumeration
// must produce exactly the same tuples, in the same order, as running the
// generic Ackerman–Shallit cross-section enumerator on A_G exported as a
// plain NFA — the reduction that proves Theorem 3.3.
func TestAGAgainstGenericCrossSection(t *testing.T) {
	patterns := []string{
		"a*x{a*}a*",
		".*x{a+}.*y{b+}.*",
		"x{.*}y{.*}",
		"(a|b)*x{(a|b)+}(a|b)*",
	}
	r := rand.New(rand.NewSource(555))
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for trial := 0; trial < 5; trial++ {
			n := r.Intn(6)
			s := workload.RandomString(r, n, 2)

			// Specialized path.
			e1, err := enum.Prepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			spec := e1.All()

			// Generic path: enumerate length-(N+1) words of A_G, decode.
			e2, err := enum.Prepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			if e2.Empty() {
				if len(spec) != 0 {
					t.Fatalf("[[%s]](%q): empty A_G but %d tuples", p, s, len(spec))
				}
				continue
			}
			m := e2.AsNFA()
			cs, err := m.EnumerateLength(n + 1)
			if err != nil {
				t.Fatal(err)
			}
			var gen []span.Tuple
			for {
				w, ok := cs.Next()
				if !ok {
					break
				}
				gen = append(gen, e2.DecodeLetters(w))
			}
			if len(gen) != len(spec) {
				t.Fatalf("[[%s]](%q): specialized %d tuples, generic %d", p, s, len(spec), len(gen))
			}
			for i := range gen {
				if gen[i].Compare(spec[i]) != 0 {
					t.Fatalf("[[%s]](%q): order differs at %d: %v vs %v", p, s, i, gen[i], spec[i])
				}
			}
		}
	}
}

// TestAGCrossSectionOnRandomAutomata widens the cross-validation to random
// functional vset-automata.
func TestAGCrossSectionOnRandomAutomata(t *testing.T) {
	r := rand.New(rand.NewSource(556))
	vars := span.NewVarList("x")
	for i := 0; i < 60; i++ {
		a := oracle.RandomFunctionalVSA(r, vars, 4, 10)
		for _, s := range []string{"", "a", "ab"} {
			e1, err := enum.Prepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			spec := e1.All()
			e2, _ := enum.Prepare(a, s)
			if e2.Empty() {
				if len(spec) != 0 {
					t.Fatal("inconsistent emptiness")
				}
				continue
			}
			cs, err := e2.AsNFA().EnumerateLength(len(s) + 1)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for {
				w, ok := cs.Next()
				if !ok {
					break
				}
				if count >= len(spec) {
					t.Fatalf("trial %d on %q: generic produced extra word", i, s)
				}
				if e2.DecodeLetters(w).Compare(spec[count]) != 0 {
					t.Fatalf("trial %d on %q: mismatch at %d", i, s, count)
				}
				count++
			}
			if count != len(spec) {
				t.Fatalf("trial %d on %q: generic %d, specialized %d", i, s, count, len(spec))
			}
		}
	}
}
