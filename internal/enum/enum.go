// Package enum implements the paper's central algorithm (Theorem 3.3):
// enumerating [[A]](s) for a functional vset-automaton A and a string s with
// polynomial delay O(n²·|s|) after O(n²·|s| + m·n) preprocessing.
//
// The algorithm identifies each (V,s)-tuple with its sequence of |s|+1
// variable configurations κ₀…κ_N (§4.1): κ_i is the configuration of the
// run's state immediately before reading σ_{i+1}. It builds a layered graph
// G whose nodes (i,q) mean "A can be in state q after processing σ₁…σ_i and
// any following variable operations", interprets G as an NFA A_G over the
// configuration alphabet K, and enumerates L(A_G) ∩ K^{N+1} in radix order
// without repetition, in the style of Ackerman–Shallit. Distinct tuples
// correspond to distinct strings over K, so deduplication is inherent.
package enum

import (
	"sort"

	"spanjoin/internal/nfa"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// GraphNode is one node (i, q) of the layered graph G, tagged with the
// letter (configuration id) that every incoming A_G-transition carries.
type GraphNode struct {
	// State is the automaton state q.
	State int32
	// Letter is the interned id of q's variable configuration; ids are
	// assigned in the radix order w < o < c, so letters compare as ints.
	Letter int32
	// Targets lists successor nodes (indices into the next level), grouped
	// by letter: TargetLetters is sorted ascending and TargetsByLetter[k]
	// are the successors whose letter is TargetLetters[k].
	TargetLetters   []int32
	TargetsByLetter [][]int32
}

// Enumerator enumerates [[A]](s) with polynomial delay. Create it with
// Prepare, then call Next until ok is false. Results are emitted in radix
// order of their configuration strings — a deterministic total order.
type Enumerator struct {
	vars    span.VarList
	n       int // |s|
	empty   bool
	configs []vsa.Config // letter id → configuration
	levels  [][]GraphNode
	// start nodes (level 0) grouped by letter, like GraphNode targets
	startLetters  []int32
	startByLetter [][]int32

	// enumeration state
	started bool
	done    bool
	letters []int32   // current word κ_0..κ_N
	sets    [][]int32 // sets[i] = node indices at level i consistent with κ_0..κ_i
}

// Prepare trims A, verifies functionality, and builds the layered graph for
// s. It returns vsa.ErrNotFunctional (wrapped) for non-functional automata.
func Prepare(a *vsa.VSA, s string) (*Enumerator, error) {
	t, ct, err := a.RequireFunctional()
	if err != nil {
		return nil, err
	}
	e := &Enumerator{vars: t.Vars, n: len(s)}
	if t.NumStates() == 2 && t.NumTransitions() == 0 && t.Init != t.Final {
		e.empty = true
		return e, nil
	}
	cl := t.NewClosures()
	n := t.NumStates()
	N := len(s)

	// Forward pass: levelStates[i] = possible boundary states q̂_i.
	levelStates := make([][]int32, N+1)
	cur := make([]bool, n)
	for _, q := range cl.VE[t.Init] {
		cur[q] = true
	}
	levelStates[0] = boolsToList(cur)
	// rawEdges[i][q] = successor states of boundary state q at level i.
	rawEdges := make([][][]int32, N)
	for i := 0; i < N; i++ {
		next := make([]bool, n)
		rawEdges[i] = make([][]int32, n)
		for _, p := range levelStates[i] {
			var succ []bool
			for _, tr := range t.Adj[p] {
				if tr.Kind != vsa.KChar || !tr.Class.Contains(s[i]) {
					continue
				}
				if succ == nil {
					succ = make([]bool, n)
				}
				for _, q := range cl.VE[tr.To] {
					succ[q] = true
				}
			}
			if succ == nil {
				continue
			}
			lst := boolsToList(succ)
			rawEdges[i][p] = lst
			for _, q := range lst {
				next[q] = true
			}
		}
		levelStates[i+1] = boolsToList(next)
	}
	// The last boundary state must be the final state exactly (q̂_N = qf).
	finalOK := false
	for _, q := range levelStates[N] {
		if q == t.Final {
			finalOK = true
		}
	}
	if !finalOK {
		e.empty = true
		return e, nil
	}
	levelStates[N] = []int32{t.Final}

	// Backward prune: keep nodes from which (N, qf) is reachable.
	alive := make([][]bool, N+1)
	alive[N] = make([]bool, n)
	alive[N][t.Final] = true
	for i := N - 1; i >= 0; i-- {
		alive[i] = make([]bool, n)
		for _, p := range levelStates[i] {
			for _, q := range rawEdges[i][p] {
				if alive[i+1][q] {
					alive[i][p] = true
					break
				}
			}
		}
	}

	// Intern configurations as letters in radix order.
	letterOf := internLetters(t, ct, e)

	// Build levels with per-node grouped targets.
	e.levels = make([][]GraphNode, N+1)
	idxAt := make([][]int32, N+1) // state → node index at level, -1 otherwise
	for i := 0; i <= N; i++ {
		idxAt[i] = make([]int32, n)
		for k := range idxAt[i] {
			idxAt[i][k] = -1
		}
		for _, q := range levelStates[i] {
			if !alive[i][q] {
				continue
			}
			idxAt[i][q] = int32(len(e.levels[i]))
			e.levels[i] = append(e.levels[i], GraphNode{State: q, Letter: letterOf[q]})
		}
	}
	if len(e.levels[0]) == 0 {
		e.empty = true
		return e, nil
	}
	for i := 0; i < N; i++ {
		for k := range e.levels[i] {
			node := &e.levels[i][k]
			var pairs []letterTarget
			for _, q := range rawEdges[i][node.State] {
				if j := idxAt[i+1][q]; j >= 0 {
					pairs = append(pairs, letterTarget{letterOf[q], j})
				}
			}
			node.TargetLetters, node.TargetsByLetter = groupByLetter(pairs)
		}
	}
	// Start transitions: the virtual initial state of A_G fans out to every
	// level-0 node, labelled with the node's letter.
	var startPairs []letterTarget
	for k := range e.levels[0] {
		startPairs = append(startPairs, letterTarget{e.levels[0][k].Letter, int32(k)})
	}
	e.startLetters, e.startByLetter = groupByLetter(startPairs)

	e.letters = make([]int32, N+1)
	e.sets = make([][]int32, N+1)
	return e, nil
}

type letterTarget struct {
	letter int32
	target int32
}

func groupByLetter(pairs []letterTarget) ([]int32, [][]int32) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].letter != pairs[j].letter {
			return pairs[i].letter < pairs[j].letter
		}
		return pairs[i].target < pairs[j].target
	})
	var letters []int32
	var byLetter [][]int32
	for _, p := range pairs {
		k := len(letters)
		if k == 0 || letters[k-1] != p.letter {
			letters = append(letters, p.letter)
			byLetter = append(byLetter, nil)
			k++
		}
		lst := byLetter[k-1]
		if len(lst) == 0 || lst[len(lst)-1] != p.target {
			byLetter[k-1] = append(lst, p.target)
		}
	}
	return letters, byLetter
}

func internLetters(t *vsa.VSA, ct *vsa.ConfigTable, e *Enumerator) []int32 {
	n := t.NumStates()
	type entry struct {
		key   string
		cfg   vsa.Config
		state int32
	}
	seen := map[string]bool{}
	var entries []entry
	for q := 0; q < n; q++ {
		cfg := ct.Cfg[q]
		if cfg == nil {
			cfg = make(vsa.Config, len(t.Vars))
		}
		k := cfg.Key()
		if !seen[k] {
			seen[k] = true
			entries = append(entries, entry{key: k, cfg: cfg})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	id := make(map[string]int32, len(entries))
	e.configs = make([]vsa.Config, len(entries))
	for i, en := range entries {
		id[en.key] = int32(i)
		e.configs[i] = en.cfg
	}
	letterOf := make([]int32, n)
	for q := 0; q < n; q++ {
		cfg := ct.Cfg[q]
		if cfg == nil {
			cfg = make(vsa.Config, len(t.Vars))
		}
		letterOf[q] = id[cfg.Key()]
	}
	return letterOf
}

func boolsToList(b []bool) []int32 {
	var out []int32
	for i, ok := range b {
		if ok {
			out = append(out, int32(i))
		}
	}
	return out
}

// Vars returns the variable list of the underlying spanner; tuples returned
// by Next are aligned with it.
func (e *Enumerator) Vars() span.VarList { return e.vars }

// Empty reports whether [[A]](s) = ∅, known after preprocessing.
func (e *Enumerator) Empty() bool { return e.empty }

// Next returns the next tuple in radix order. ok is false when the
// enumeration is exhausted.
func (e *Enumerator) Next() (t span.Tuple, ok bool) {
	if e.empty || e.done {
		return nil, false
	}
	if !e.started {
		e.started = true
		if !e.minString(0) {
			e.done = true
			return nil, false
		}
		return e.decode(), true
	}
	if !e.nextString() {
		e.done = true
		return nil, false
	}
	return e.decode(), true
}

// transitionsFrom returns the grouped letters/targets available from set
// S_{l-1} (or the virtual start when l == 0) into level l.
func (e *Enumerator) lettersInto(l int) func(yield func(letters []int32, byLetter [][]int32)) {
	return func(yield func([]int32, [][]int32)) {
		if l == 0 {
			yield(e.startLetters, e.startByLetter)
			return
		}
		for _, u := range e.sets[l-1] {
			node := &e.levels[l-1][u]
			yield(node.TargetLetters, node.TargetsByLetter)
		}
	}
}

// minLetterInto returns the minimal letter ≥ 0 available into level l given
// S_{l-1}; ok is false if none.
func (e *Enumerator) minLetterInto(l int) (int32, bool) {
	best := int32(-1)
	e.lettersInto(l)(func(letters []int32, _ [][]int32) {
		if len(letters) > 0 && (best < 0 || letters[0] < best) {
			best = letters[0]
		}
	})
	return best, best >= 0
}

// nextLetterInto returns the minimal available letter strictly greater than
// after; ok is false if none.
func (e *Enumerator) nextLetterInto(l int, after int32) (int32, bool) {
	best := int32(-1)
	e.lettersInto(l)(func(letters []int32, _ [][]int32) {
		// binary search for the first letter > after
		k := sort.Search(len(letters), func(i int) bool { return letters[i] > after })
		if k < len(letters) && (best < 0 || letters[k] < best) {
			best = letters[k]
		}
	})
	return best, best >= 0
}

// setLevel fixes κ_l := letter and recomputes S_l from S_{l-1}.
func (e *Enumerator) setLevel(l int, letter int32) {
	e.letters[l] = letter
	var merged []int32
	e.lettersInto(l)(func(letters []int32, byLetter [][]int32) {
		k := sort.Search(len(letters), func(i int) bool { return letters[i] >= letter })
		if k < len(letters) && letters[k] == letter {
			merged = mergeSorted(merged, byLetter[k])
		}
	})
	e.sets[l] = merged
}

func mergeSorted(a, b []int32) []int32 {
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// minString completes the word with the radix-minimal suffix from level l on.
// Every graph node reaches (N, qf) (backward pruning), so it always succeeds
// when S_{l-1} is non-empty.
func (e *Enumerator) minString(l int) bool {
	for i := l; i <= e.n; i++ {
		letter, ok := e.minLetterInto(i)
		if !ok {
			return false
		}
		e.setLevel(i, letter)
	}
	return true
}

// nextString advances to the radix-next word: it finds the rightmost
// position whose letter can be increased, increases it minimally, and
// completes with minString.
func (e *Enumerator) nextString() bool {
	for i := e.n; i >= 0; i-- {
		letter, ok := e.nextLetterInto(i, e.letters[i])
		if !ok {
			continue
		}
		e.setLevel(i, letter)
		if e.minString(i + 1) {
			return true
		}
	}
	return false
}

// decode converts the current configuration word κ_0..κ_N into a tuple:
// µ(x) = [i+1, j+1⟩ with i minimal such that κ_i(x) ≠ w and j minimal such
// that κ_j(x) = c.
func (e *Enumerator) decode() span.Tuple {
	t := make(span.Tuple, len(e.vars))
	for vi := range e.vars {
		start, end := -1, -1
		for i := 0; i <= e.n; i++ {
			st := e.configs[e.letters[i]][vi]
			if start < 0 && st != vsa.W {
				start = i + 1
			}
			if end < 0 && st == vsa.C {
				end = i + 1
				break
			}
		}
		t[vi] = span.Span{Start: start, End: end}
	}
	return t
}

// All drains the enumerator and returns every tuple.
func (e *Enumerator) All() []span.Tuple {
	var out []span.Tuple
	for {
		t, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// Count drains the enumerator and returns the number of tuples. Like All,
// it costs time proportional to the output.
func (e *Enumerator) Count() int {
	n := 0
	for {
		if _, ok := e.Next(); !ok {
			return n
		}
		n++
	}
}

// Levels exposes the layered graph (for tests reproducing Figure 1 and the
// worked examples, and for spanbench's F1 output).
func (e *Enumerator) Levels() [][]GraphNode { return e.levels }

// LetterConfig returns the configuration a letter id denotes.
func (e *Enumerator) LetterConfig(letter int32) vsa.Config { return e.configs[letter] }

// GraphSize returns the node and edge counts of G (preprocessing cost
// witnesses for the benchmarks).
func (e *Enumerator) GraphSize() (nodes, edges int) {
	for _, lvl := range e.levels {
		nodes += len(lvl)
		for _, nd := range lvl {
			for _, ts := range nd.TargetsByLetter {
				edges += len(ts)
			}
		}
	}
	return nodes, edges
}

// Eval prepares and drains an enumerator in one call, returning the
// variable list and all tuples of [[A]](s).
func Eval(a *vsa.VSA, s string) (span.VarList, []span.Tuple, error) {
	e, err := Prepare(a, s)
	if err != nil {
		return nil, nil, err
	}
	return e.Vars(), e.All(), nil
}

// AsNFA exports the layered automaton A_G as a generic NFA over the letter
// alphabet (symbol ids = letter ids), for cross-validation against the
// generic Ackerman–Shallit cross-section enumerator in package nfa.
// State 0 is the virtual start; node (i, k) becomes state 1 + offset(i) + k.
func (e *Enumerator) AsNFA() *nfa.NFA {
	offsets := make([]int, len(e.levels)+1)
	total := 1
	for i, lvl := range e.levels {
		offsets[i] = total
		total += len(lvl)
	}
	offsets[len(e.levels)] = total
	m := nfa.New(total, len(e.configs))
	m.Start = []int32{0}
	if e.empty || len(e.levels) == 0 {
		return m
	}
	for k := range e.startLetters {
		for _, tgt := range e.startByLetter[k] {
			m.Add(0, e.startLetters[k], int32(offsets[0])+tgt)
		}
	}
	for i, lvl := range e.levels {
		for k := range lvl {
			nd := &lvl[k]
			for li := range nd.TargetLetters {
				for _, tgt := range nd.TargetsByLetter[li] {
					m.Add(int32(offsets[i]+k), nd.TargetLetters[li], int32(offsets[i+1])+tgt)
				}
			}
		}
	}
	last := len(e.levels) - 1
	for k := range e.levels[last] {
		m.Final = append(m.Final, int32(offsets[last]+k))
	}
	return m
}

// DecodeLetters converts a configuration word (letter ids κ_0..κ_N) into
// the corresponding tuple, as decode does for the enumerator's own state.
func (e *Enumerator) DecodeLetters(letters []int32) span.Tuple {
	t := make(span.Tuple, len(e.vars))
	for vi := range e.vars {
		start, end := -1, -1
		for i := 0; i < len(letters); i++ {
			st := e.configs[letters[i]][vi]
			if start < 0 && st != vsa.W {
				start = i + 1
			}
			if end < 0 && st == vsa.C {
				end = i + 1
				break
			}
		}
		t[vi] = span.Span{Start: start, End: end}
	}
	return t
}
