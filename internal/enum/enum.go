// Package enum implements the paper's central algorithm (Theorem 3.3):
// enumerating [[A]](s) for a functional vset-automaton A and a string s with
// polynomial delay O(n²·|s|) after O(n²·|s| + m·n) preprocessing.
//
// The algorithm identifies each (V,s)-tuple with its sequence of |s|+1
// variable configurations κ₀…κ_N (§4.1): κ_i is the configuration of the
// run's state immediately before reading σ_{i+1}. It builds a layered graph
// G whose nodes (i,q) mean "A can be in state q after processing σ₁…σ_i and
// any following variable operations", interprets G as an NFA A_G over the
// configuration alphabet K, and enumerates L(A_G) ∩ K^(N+1) in radix order
// without repetition, in the style of Ackerman–Shallit. Distinct tuples
// correspond to distinct strings over K, so deduplication is inherent.
//
// State sets are packed bitset rows (internal/bitset), and all per-
// (state, transition, byte) work happens at compile time: the Plan holds a
// byte-class compiled transition table (vsa.TransitionTable) whose per-class
// matrices pre-compose δ with the variable-ε closure, so the forward pass is
// one fused row×matrix multiply per document position, the backward prune a
// word-parallel intersection test per state, and per-level edges are read
// straight off the matrix rows. Every document-independent artifact
// (trimmed automaton, closures, letter table, transition table) is computed
// once per Plan and shared. An Enumerator is resettable: Reset(s)
// rebuilds the layered graph for a new document into the enumerator's own
// arenas, so streaming many documents through one compiled pattern
// allocates almost nothing per document; transient build scratch is shared
// through a sync.Pool even across fresh Prepare calls.
package enum

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"spanjoin/internal/bitset"
	"spanjoin/internal/nfa"
	"spanjoin/internal/ranked"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// GraphNode is one node (i, q) of the layered graph G, tagged with the
// letter (configuration id) that every incoming A_G-transition carries.
type GraphNode struct {
	// State is the automaton state q.
	State int32
	// Letter is the interned id of q's variable configuration; ids are
	// assigned in the radix order w < o < c, so letters compare as ints.
	Letter int32
	// Targets lists successor nodes (indices into the next level), grouped
	// by letter: TargetLetters is sorted ascending and TargetsByLetter[k]
	// are the successors whose letter is TargetLetters[k].
	TargetLetters   []int32
	TargetsByLetter [][]int32
}

// Enumerator enumerates [[A]](s) with polynomial delay. Create it with
// Prepare, then call Next until ok is false. Results are emitted in radix
// order of their configuration strings — a deterministic total order.
//
// An Enumerator owns its graph arenas: Reset(s) rebuilds the layered graph
// for a new document in place, invalidating any in-progress enumeration but
// reusing all buffers. Enumerators are not safe for concurrent use; use
// Clone to give each goroutine its own cursor over the shared compiled
// state.
type Enumerator struct {
	vars    span.VarList
	n       int // |s|
	empty   bool
	configs []vsa.Config // letter id → configuration
	levels  [][]GraphNode
	// start nodes (level 0) grouped by letter, like GraphNode targets
	startLetters  []int32
	startByLetter [][]int32

	// Document-independent compiled state, shared through the Plan by
	// Reset, Clone and every corpus worker.
	auto      *vsa.VSA // trimmed functional automaton
	cl        *vsa.Closures
	tt        *vsa.TransitionTable
	link      *linkLists
	letterOf  []int32
	charAdj   [][]vsa.Tr // character transitions per state
	emptyLang bool       // the automaton's language is empty for every s
	// refBuild selects the preserved per-transition graph build instead of
	// the byte-class matrix sweep (PrepareRef; differential testing only).
	refBuild bool

	// Persistent graph arenas, resliced and refilled by every build.
	letterArena   []int32
	tgtArena      []int32
	byLetterArena [][]int32

	// rank is the memoized ranked-access DP over the current build
	// (counting, i-th access, sampling — package ranked); built on first
	// use, invalidated by Reset.
	rank *ranked.Rank

	// stop, when set, is polled every interruptStride document positions
	// during graph builds; returning true abandons the build with an empty
	// result. It is the deadline/budget escape hatch for huge documents:
	// the per-tuple paths are already bounded (the corpus emit selects on
	// the context), but a single build is O(n²·|s|) and would otherwise
	// run to completion after its query is dead. Not copied by Clone.
	stop func() bool

	// enumeration state
	started bool
	done    bool
	// pending marks a cursor positioned by SeekLetters on a word not yet
	// handed out: the next Next returns it without advancing first.
	pending  bool
	letters  []int32    // current word κ_0..κ_N
	sets     [][]int32  // sets[i] = node indices at level i consistent with κ_0..κ_i
	setsBuf  [][]int32  // per-level merge buffers backing multi-source sets
	mergeRow bitset.Row // scratch for multi-source set merges
}

// prepScratch holds the transient buffers of one graph build: forward and
// backward level rows, the flattened rawEdges arrays, and the letter
// grouping counters. Instances are pooled so even fresh Prepare calls reuse
// the allocations of earlier ones.
type prepScratch struct {
	fwd   bitset.Matrix // (N+1)×n: boundary-state sets per level
	alive bitset.Matrix // (N+1)×n: backward-reachability prune
	succ  bitset.Row    // n bits: successor accumulator per state

	stateIdx []int32 // state → node index at the level being linked

	lsArena []int32    // concatenated per-level state lists
	lsSpan  [][2]int32 // lsSpan[i] = [start, end) into lsArena

	// Flattened rawEdges: edgeOwner[k] is the boundary state, edgeSpan[k]
	// its successor range in edgeTgt, lvlEdge[i] the edge range of level i.
	edgeOwner []int32
	edgeSpan  [][2]int32
	edgeTgt   []int32
	lvlEdge   [][2]int32

	// rowStates materializes one matrix row's successor states during level
	// linking (matrix build path only); groupStart tracks group boundaries
	// during single-pass link-list emission.
	rowStates  []int32
	groupStart []int32

	// Letter grouping scratch, sized by the letter count.
	cnt      []int32
	pos      []int32
	distinct []int32
}

var scratchPool = sync.Pool{New: func() any { return new(prepScratch) }}

// maxScratchRetain caps the bytes a prepScratch may carry back into the
// pool. Scratch arenas grow with the document (the level matrices are
// (N+1)×n bits), so without a cap a single huge document would pin its
// arenas in every pooled scratch for the life of the process; oversized
// scratches are dropped instead, and steady-state memory tracks the
// working set.
const maxScratchRetain = 4 << 20

// scratchDrops counts scratches dropped at the cap (observability + the
// pool-retention regression test).
var scratchDrops atomic.Uint64

// putScratch pools sc for reuse unless its arenas outgrew maxScratchRetain;
// it reports whether sc was pooled.
func putScratch(sc *prepScratch) bool {
	if sc.retainedBytes() > maxScratchRetain {
		scratchDrops.Add(1)
		return false
	}
	scratchPool.Put(sc)
	return true
}

// retainedBytes sums the capacity of every buffer sc would carry back into
// the pool.
func (sc *prepScratch) retainedBytes() int {
	b := 8 * (sc.fwd.CapWords() + sc.alive.CapWords() + cap(sc.succ))
	b += 4 * (cap(sc.stateIdx) + cap(sc.lsArena) + cap(sc.edgeOwner) +
		cap(sc.edgeTgt) + cap(sc.rowStates) + cap(sc.groupStart) +
		cap(sc.cnt) + cap(sc.pos) + cap(sc.distinct))
	b += 8 * (cap(sc.lsSpan) + cap(sc.edgeSpan) + cap(sc.lvlEdge))
	return b
}

func (sc *prepScratch) init(n, N, letters int) {
	sc.fwd.Resize(N+1, n)
	sc.alive.Resize(N+1, n)
	if cap(sc.succ) < bitset.WordsFor(n) {
		sc.succ = bitset.NewRow(n)
	} else {
		sc.succ = sc.succ[:bitset.WordsFor(n)]
		sc.succ.Zero()
	}
	sc.stateIdx = grow(sc.stateIdx, n)
	sc.lsArena = sc.lsArena[:0]
	sc.lsSpan = grow(sc.lsSpan, N+1)
	sc.edgeOwner = sc.edgeOwner[:0]
	sc.edgeSpan = sc.edgeSpan[:0]
	sc.edgeTgt = sc.edgeTgt[:0]
	sc.lvlEdge = grow(sc.lvlEdge, N)
	if cap(sc.cnt) < letters {
		sc.cnt = make([]int32, letters) // zeroed; kept zero between uses
	} else {
		sc.cnt = sc.cnt[:letters]
	}
	sc.pos = grow(sc.pos, letters)
}

// levelStates returns the materialized state list of level i.
func (sc *prepScratch) levelStates(i int) []int32 {
	s := sc.lsSpan[i]
	return sc.lsArena[s[0]:s[1]]
}

func (sc *prepScratch) pushLevel(i int, row bitset.Row) {
	start := int32(len(sc.lsArena))
	sc.lsArena = row.AppendOnes(sc.lsArena)
	sc.lsSpan[i] = [2]int32{start, int32(len(sc.lsArena))}
}

// grow reslices s to n elements, reallocating only when capacity is short;
// contents are unspecified (callers overwrite before reading).
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// growKeep is grow for slices-of-buffers: surviving elements keep their
// previously grown backing storage.
func growKeep[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]T, n)
	copy(ns, s)
	return ns
}

// Prepare trims A, verifies functionality, compiles the plan (closures,
// letter table, byte-class transition table) and builds the layered graph
// for s. It returns vsa.ErrNotFunctional (wrapped) for non-functional
// automata. Callers evaluating many documents through one automaton should
// build the Plan once and reuse it instead.
func Prepare(a *vsa.VSA, s string) (*Enumerator, error) {
	p, err := NewPlan(a)
	if err != nil {
		return nil, err
	}
	return p.Prepare(s), nil
}

// PrepareOnce is Prepare for a single-use automaton — the per-document
// compilation paths (string-equality selections, per-document query
// plans), where the automaton exists for exactly one document. It skips
// the byte-class transition table and link lists, whose construction cost
// can never amortize, and builds the graph with the per-transition pass.
func PrepareOnce(a *vsa.VSA, s string) (*Enumerator, error) {
	p, err := newPlan(a, false)
	if err != nil {
		return nil, err
	}
	e := p.NewEnumerator()
	e.Reset(s)
	return e, nil
}

// PrepareRef is Prepare on the preserved per-transition reference build:
// the returned enumerator constructs its layered graphs by walking each
// frontier state's character transitions and testing byte membership per
// transition — the pre-table implementation — and keeps doing so across
// Reset and Clone. It exists for differential testing and the EB benchmark;
// its output is identical to Prepare's. No transition table is compiled
// (the reference build never reads one).
func PrepareRef(a *vsa.VSA, s string) (*Enumerator, error) {
	p, err := newPlan(a, false)
	if err != nil {
		return nil, err
	}
	e := p.NewEnumerator()
	e.refBuild = true
	e.Reset(s)
	return e, nil
}

// Reset rebuilds the enumerator for a new document, reusing every buffer of
// the previous build. The enumeration restarts from the beginning; tuples
// handed out earlier remain valid (they are freshly allocated), but Levels
// and AsNFA views of the previous document do not.
func (e *Enumerator) Reset(s string) {
	e.started, e.done, e.pending = false, false, false
	e.rank = nil
	e.n = len(s)
	if e.emptyLang {
		e.empty = true
		return
	}
	e.empty = false
	e.build(s)
}

// Clone returns an enumerator sharing e's document-independent compiled
// state (trimmed automaton, closures, letter and transition tables) with
// its own build arenas and cursor, for use from another goroutine. The
// clone has no document prepared: call Reset before Next.
func (e *Enumerator) Clone() *Enumerator {
	c := &Enumerator{
		vars:      e.vars,
		n:         e.n,
		empty:     true, // nothing prepared yet
		emptyLang: e.emptyLang,
		configs:   e.configs,
		auto:      e.auto,
		cl:        e.cl,
		tt:        e.tt,
		link:      e.link,
		letterOf:  e.letterOf,
		charAdj:   e.charAdj,
		refBuild:  e.refBuild,
	}
	if e.auto != nil {
		c.mergeRow = bitset.NewRow(e.auto.NumStates())
	}
	return c
}

// SetInterrupt installs an amortized build-interrupt check: f is polled
// every interruptStride positions while the layered graph is built, and a
// true return abandons the build, leaving the enumerator empty for the
// current document. Corpus workers point f at their query's context (and
// budget), so a deadline that fires mid-build on a pathological document
// stops the O(n²·|s|) sweep instead of letting it run to completion. The
// check is branch-cheap and allocation-free: with f == nil (the default)
// the fast path is unchanged. SetInterrupt(nil) uninstalls.
func (e *Enumerator) SetInterrupt(f func() bool) { e.stop = f }

// interruptStride is how many document positions a build processes
// between interrupt polls — coarse enough that the poll (an atomic ctx
// check, typically) vanishes against the per-position matrix multiply,
// fine enough that a dead query stops within tens of microseconds.
const interruptStride = 4096

// interrupted polls the installed interrupt at the amortized stride.
func (e *Enumerator) interrupted(i int) bool {
	return e.stop != nil && i%interruptStride == interruptStride-1 && e.stop()
}

// build constructs the layered graph for s into e's arenas. It sets e.empty
// when [[A]](s) = ∅. Plans compiled without a table (PrepareOnce, the
// differential reference) take the per-transition pass.
//
//spanjoin:hotpath
func (e *Enumerator) build(s string) {
	if e.refBuild || e.tt == nil {
		e.buildTransitions(s)
		return
	}
	e.buildMatrix(s)
}

// buildMatrix is the byte-class matrix sweep: the forward pass advances the
// whole frontier with one fused row×matrix multiply per document position
// (next = frontier × M_class(s[i])), the backward prune is a word-parallel
// row∩alive test per surviving state, and level linking reads each node's
// successor set straight off its precomputed matrix row — no per-transition
// work anywhere; δ, the byte membership tests and the variable-ε closure
// were all folded into the matrices at plan compilation.
//
//spanjoin:hotpath
func (e *Enumerator) buildMatrix(s string) {
	t, tt := e.auto, e.tt
	n := t.NumStates()
	N := len(s)
	sc := scratchPool.Get().(*prepScratch)
	defer putScratch(sc)
	sc.init(n, N, len(e.configs))

	// Forward pass: fwd.Row(i) = possible boundary states q̂_i.
	cur := sc.fwd.Row(0)
	cur.CopyFrom(e.cl.VEB.Row(int(t.Init)))
	sc.pushLevel(0, cur)
	for i := 0; i < N; i++ {
		if e.interrupted(i) {
			e.markEmpty()
			return
		}
		m := tt.Mat(s[i])
		if m == nil {
			// No transition anywhere accepts this byte: no run consumes it.
			e.markEmpty()
			return
		}
		next := sc.fwd.Row(i + 1)
		m.MulOr(next, sc.fwd.Row(i))
		sc.pushLevel(i+1, next)
	}
	// The last boundary state must be the final state exactly (q̂_N = qf).
	if !sc.fwd.Row(N).Test(t.Final) {
		e.markEmpty()
		return
	}

	// Backward prune: keep nodes from which (N, qf) is reachable — state p
	// at level i survives iff its successor row meets the alive set of
	// level i+1.
	sc.alive.Row(N).Set(t.Final)
	for i := N - 1; i >= 0; i-- {
		if e.interrupted(i) {
			e.markEmpty()
			return
		}
		aliveCur, aliveNext := sc.alive.Row(i), sc.alive.Row(i+1)
		m := tt.Mat(s[i])
		for _, p := range sc.levelStates(i) {
			if m.Row(int(p)).Intersects(aliveNext) {
				aliveCur.Set(p)
			}
		}
	}

	if !e.assembleLevels(sc, N) {
		e.markEmpty()
		return
	}

	// Link targets level by level: each alive node's successor set is its
	// matrix row, filtered to alive nodes and grouped by letter into the
	// persistent arenas. With the plan's link lists the grouping order is
	// precomputed per (class, state), so one node links in a single pass;
	// without them (size cap) the row is materialized and counting-sorted.
	e.letterArena = e.letterArena[:0]
	e.tgtArena = e.tgtArena[:0]
	e.byLetterArena = e.byLetterArena[:0]
	for i := 0; i < N; i++ {
		if e.interrupted(i) {
			e.markEmpty()
			return
		}
		for _, q := range sc.levelStates(i + 1) {
			sc.stateIdx[q] = -1
		}
		for j := range e.levels[i+1] {
			sc.stateIdx[e.levels[i+1][j].State] = int32(j)
		}
		if e.link != nil {
			base := tt.ClassOf(s[i]) * n
			for k := range e.levels[i] {
				node := &e.levels[i][k]
				node.TargetLetters, node.TargetsByLetter =
					e.appendGroupsFromList(e.link.list(base, node.State), sc)
			}
			continue
		}
		m := tt.Mat(s[i])
		for k := range e.levels[i] {
			node := &e.levels[i][k]
			sc.rowStates = m.Row(int(node.State)).AppendOnes(sc.rowStates[:0])
			node.TargetLetters, node.TargetsByLetter =
				e.appendLetterGroups(sc.rowStates, sc)
		}
	}

	e.linkStart(sc, N)
}

// appendGroupsFromList groups the live targets of a pre-sorted
// (letter, state) successor list in one pass: states whose stateIdx is -1
// are skipped, groups close when the letter changes. Storage comes from the
// enumerator's arenas; earlier nodes' slices stay valid across arena growth
// because their contents are written before any later reallocation.
func (e *Enumerator) appendGroupsFromList(list []int32, sc *prepScratch) ([]int32, [][]int32) {
	lstart := len(e.letterArena)
	tstart := len(e.tgtArena)
	starts := sc.groupStart[:0]
	cur := int32(-1)
	for _, q := range list {
		j := sc.stateIdx[q]
		if j < 0 {
			continue
		}
		if l := e.letterOf[q]; l != cur {
			cur = l
			e.letterArena = append(e.letterArena, l)
			starts = append(starts, int32(len(e.tgtArena)))
		}
		e.tgtArena = append(e.tgtArena, j)
	}
	sc.groupStart = starts
	if len(e.tgtArena) == tstart {
		return nil, nil
	}
	letters := e.letterArena[lstart:len(e.letterArena):len(e.letterArena)]
	bstart := len(e.byLetterArena)
	for gi := range starts {
		lo := int(starts[gi])
		hi := len(e.tgtArena)
		if gi+1 < len(starts) {
			hi = int(starts[gi+1])
		}
		e.byLetterArena = append(e.byLetterArena, e.tgtArena[lo:hi:hi])
	}
	return letters, e.byLetterArena[bstart:len(e.byLetterArena):len(e.byLetterArena)]
}

// buildTransitions is the preserved per-transition reference build: it
// walks each frontier state's character adjacency, tests byte membership
// per transition and ORs in closure rows one hit at a time. PrepareRef
// selects it; differential tests cross-validate the matrix sweep against
// it on random automata and documents.
func (e *Enumerator) buildTransitions(s string) {
	t, cl := e.auto, e.cl
	n := t.NumStates()
	N := len(s)
	sc := scratchPool.Get().(*prepScratch)
	defer putScratch(sc)
	sc.init(n, N, len(e.configs))

	// Forward pass: fwd.Row(i) = possible boundary states q̂_i.
	cur := sc.fwd.Row(0)
	cur.CopyFrom(cl.VEB.Row(int(t.Init)))
	sc.pushLevel(0, cur)
	for i := 0; i < N; i++ {
		if e.interrupted(i) {
			e.markEmpty()
			return
		}
		next := sc.fwd.Row(i + 1)
		lvlStart := int32(len(sc.edgeOwner))
		for _, p := range sc.levelStates(i) {
			any := false
			for _, tr := range e.charAdj[p] {
				if !tr.Class.Contains(s[i]) {
					continue
				}
				sc.succ.Or(cl.VEB.Row(int(tr.To)))
				any = true
			}
			if !any {
				continue
			}
			start := int32(len(sc.edgeTgt))
			sc.edgeTgt = sc.succ.AppendOnes(sc.edgeTgt)
			sc.edgeOwner = append(sc.edgeOwner, p)
			sc.edgeSpan = append(sc.edgeSpan, [2]int32{start, int32(len(sc.edgeTgt))})
			next.Or(sc.succ)
			sc.succ.Zero()
		}
		sc.lvlEdge[i] = [2]int32{lvlStart, int32(len(sc.edgeOwner))}
		sc.pushLevel(i+1, next)
	}
	// The last boundary state must be the final state exactly (q̂_N = qf).
	if !sc.fwd.Row(N).Test(t.Final) {
		e.markEmpty()
		return
	}

	// Backward prune: keep nodes from which (N, qf) is reachable.
	sc.alive.Row(N).Set(t.Final)
	for i := N - 1; i >= 0; i-- {
		aliveCur, aliveNext := sc.alive.Row(i), sc.alive.Row(i+1)
		rng := sc.lvlEdge[i]
		for k := rng[0]; k < rng[1]; k++ {
			es := sc.edgeSpan[k]
			for _, q := range sc.edgeTgt[es[0]:es[1]] {
				if aliveNext.Test(q) {
					aliveCur.Set(sc.edgeOwner[k])
					break
				}
			}
		}
	}

	if !e.assembleLevels(sc, N) {
		e.markEmpty()
		return
	}

	// Link targets level by level, grouping successors by letter into the
	// persistent arenas. Edge owners and nodes are both ascending by state,
	// so a lockstep walk pairs them without an index.
	e.letterArena = e.letterArena[:0]
	e.tgtArena = e.tgtArena[:0]
	e.byLetterArena = e.byLetterArena[:0]
	for i := 0; i < N; i++ {
		for _, q := range sc.levelStates(i + 1) {
			sc.stateIdx[q] = -1
		}
		for j := range e.levels[i+1] {
			sc.stateIdx[e.levels[i+1][j].State] = int32(j)
		}
		rng := sc.lvlEdge[i]
		ek := rng[0]
		for k := range e.levels[i] {
			node := &e.levels[i][k]
			for ek < rng[1] && sc.edgeOwner[ek] < node.State {
				ek++
			}
			if ek >= rng[1] || sc.edgeOwner[ek] != node.State {
				node.TargetLetters, node.TargetsByLetter = nil, nil
				continue
			}
			es := sc.edgeSpan[ek]
			node.TargetLetters, node.TargetsByLetter =
				e.appendLetterGroups(sc.edgeTgt[es[0]:es[1]], sc)
			ek++
		}
	}

	e.linkStart(sc, N)
}

// assembleLevels materializes the alive states of every level in ascending
// order (level N is {qf}); it reports false when level 0 died, i.e. no
// accepting path survives the prune. The prune only marks states of the
// level's forward set, so reading the alive row directly yields exactly
// the surviving subsequence of the level's state list.
func (e *Enumerator) assembleLevels(sc *prepScratch, N int) bool {
	e.levels = growKeep(e.levels, N+1)
	for i := 0; i <= N; i++ {
		lvl := e.levels[i][:0]
		sc.rowStates = sc.alive.Row(i).AppendOnes(sc.rowStates[:0])
		for _, q := range sc.rowStates {
			lvl = append(lvl, GraphNode{State: q, Letter: e.letterOf[q]})
		}
		e.levels[i] = lvl
	}
	return len(e.levels[0]) > 0
}

// linkStart groups the virtual initial state's fan-out to every level-0
// node by letter, and sizes the enumeration cursor slices.
func (e *Enumerator) linkStart(sc *prepScratch, N int) {
	for _, q := range sc.levelStates(0) {
		sc.stateIdx[q] = -1
	}
	for k := range e.levels[0] {
		sc.stateIdx[e.levels[0][k].State] = int32(k)
	}
	e.startLetters, e.startByLetter = e.appendLetterGroups(sc.levelStates(0), sc)

	e.letters = grow(e.letters, N+1)
	e.sets = grow(e.sets, N+1)
	e.setsBuf = growKeep(e.setsBuf, N+1)
}

func (e *Enumerator) markEmpty() {
	e.empty = true
	if e.levels != nil {
		e.levels = e.levels[:0]
	}
	e.startLetters, e.startByLetter = nil, nil
}

// appendLetterGroups groups the live targets among the candidate states by
// letter: the returned letters are ascending, and each letter's target list
// holds node indices (stateIdx of the states) in ascending order. Storage
// comes from the enumerator's arenas; states whose stateIdx is -1 are
// skipped. cnt is left zeroed for the next call.
func (e *Enumerator) appendLetterGroups(states []int32, sc *prepScratch) ([]int32, [][]int32) {
	distinct := sc.distinct[:0]
	total := 0
	for _, q := range states {
		if sc.stateIdx[q] < 0 {
			continue
		}
		l := e.letterOf[q]
		if sc.cnt[l] == 0 {
			distinct = append(distinct, l)
		}
		sc.cnt[l]++
		total++
	}
	sc.distinct = distinct
	if total == 0 {
		return nil, nil
	}
	// Insertion sort: the distinct letter count per node is tiny.
	for i := 1; i < len(distinct); i++ {
		for j := i; j > 0 && distinct[j] < distinct[j-1]; j-- {
			distinct[j], distinct[j-1] = distinct[j-1], distinct[j]
		}
	}
	lstart := len(e.letterArena)
	e.letterArena = append(e.letterArena, distinct...)
	letters := e.letterArena[lstart:len(e.letterArena):len(e.letterArena)]

	tstart := len(e.tgtArena)
	e.tgtArena = growTail(e.tgtArena, total)
	bstart := len(e.byLetterArena)
	run := int32(tstart)
	for _, l := range distinct {
		c := sc.cnt[l]
		e.byLetterArena = append(e.byLetterArena, e.tgtArena[run:run+c:run+c])
		sc.pos[l] = run
		run += c
	}
	byLetter := e.byLetterArena[bstart:len(e.byLetterArena):len(e.byLetterArena)]
	for _, q := range states {
		j := sc.stateIdx[q]
		if j < 0 {
			continue
		}
		l := e.letterOf[q]
		e.tgtArena[sc.pos[l]] = j
		sc.pos[l]++
	}
	for _, l := range distinct {
		sc.cnt[l] = 0
	}
	return letters, byLetter
}

// growTail extends s by n elements in place, reallocating geometrically;
// the new elements are overwritten by the caller.
func growTail(s []int32, n int) []int32 {
	need := len(s) + n
	if cap(s) < need {
		ns := make([]int32, len(s), max(2*cap(s), need))
		copy(ns, s)
		s = ns
	}
	return s[:need]
}

// letterTarget and groupByLetter remain the reference grouping used by the
// parallel prefix splitter, where setup cost is irrelevant.
type letterTarget struct {
	letter int32
	target int32
}

func groupByLetter(pairs []letterTarget) ([]int32, [][]int32) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].letter != pairs[j].letter {
			return pairs[i].letter < pairs[j].letter
		}
		return pairs[i].target < pairs[j].target
	})
	var letters []int32
	var byLetter [][]int32
	for _, p := range pairs {
		k := len(letters)
		if k == 0 || letters[k-1] != p.letter {
			letters = append(letters, p.letter)
			byLetter = append(byLetter, nil)
			k++
		}
		lst := byLetter[k-1]
		if len(lst) == 0 || lst[len(lst)-1] != p.target {
			byLetter[k-1] = append(lst, p.target)
		}
	}
	return letters, byLetter
}

func internLetters(t *vsa.VSA, ct *vsa.ConfigTable) (letterOf []int32, configs []vsa.Config) {
	n := t.NumStates()
	type entry struct {
		key   string
		cfg   vsa.Config
		state int32
	}
	seen := map[string]bool{}
	var entries []entry
	for q := 0; q < n; q++ {
		cfg := ct.Cfg[q]
		if cfg == nil {
			cfg = make(vsa.Config, len(t.Vars))
		}
		k := cfg.Key()
		if !seen[k] {
			seen[k] = true
			entries = append(entries, entry{key: k, cfg: cfg})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	id := make(map[string]int32, len(entries))
	configs = make([]vsa.Config, len(entries))
	for i, en := range entries {
		id[en.key] = int32(i)
		configs[i] = en.cfg
	}
	letterOf = make([]int32, n)
	for q := 0; q < n; q++ {
		cfg := ct.Cfg[q]
		if cfg == nil {
			cfg = make(vsa.Config, len(t.Vars))
		}
		letterOf[q] = id[cfg.Key()]
	}
	return letterOf, configs
}

// Vars returns the variable list of the underlying spanner; tuples returned
// by Next are aligned with it.
func (e *Enumerator) Vars() span.VarList { return e.vars }

// Empty reports whether [[A]](s) = ∅, known after preprocessing.
func (e *Enumerator) Empty() bool { return e.empty }

// Next returns the next tuple in radix order. ok is false when the
// enumeration is exhausted.
//
//spanjoin:hotpath
func (e *Enumerator) Next() (t span.Tuple, ok bool) {
	if e.empty || e.done {
		return nil, false
	}
	if e.pending {
		// SeekLetters parked the cursor on a not-yet-emitted word.
		e.pending = false
		return e.decode(), true
	}
	if !e.started {
		e.started = true
		if !e.minString(0) {
			e.done = true
			return nil, false
		}
		return e.decode(), true
	}
	if !e.nextString() {
		e.done = true
		return nil, false
	}
	return e.decode(), true
}

// searchLetters returns the first index with letters[k] >= letter.
func searchLetters(letters []int32, letter int32) int {
	lo, hi := 0, len(letters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if letters[mid] < letter {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// minLetterInto returns the minimal letter available into level l given
// S_{l-1} (or the virtual start when l == 0); ok is false if none.
func (e *Enumerator) minLetterInto(l int) (int32, bool) {
	if l == 0 {
		if len(e.startLetters) == 0 {
			return -1, false
		}
		return e.startLetters[0], true
	}
	best := int32(-1)
	for _, u := range e.sets[l-1] {
		ls := e.levels[l-1][u].TargetLetters
		if len(ls) > 0 && (best < 0 || ls[0] < best) {
			best = ls[0]
		}
	}
	return best, best >= 0
}

// nextLetterInto returns the minimal available letter strictly greater than
// after; ok is false if none.
func (e *Enumerator) nextLetterInto(l int, after int32) (int32, bool) {
	if l == 0 {
		k := searchLetters(e.startLetters, after+1)
		if k == len(e.startLetters) {
			return -1, false
		}
		return e.startLetters[k], true
	}
	best := int32(-1)
	for _, u := range e.sets[l-1] {
		ls := e.levels[l-1][u].TargetLetters
		k := searchLetters(ls, after+1)
		if k < len(ls) && (best < 0 || ls[k] < best) {
			best = ls[k]
		}
	}
	return best, best >= 0
}

// setLevel fixes κ_l := letter and recomputes S_l from S_{l-1}. A single
// contributing target list is aliased directly; multi-source unions go
// through the merge bitset row and the level's reusable buffer, so steady-
// state enumeration does not allocate.
func (e *Enumerator) setLevel(l int, letter int32) {
	e.letters[l] = letter
	if l == 0 {
		k := searchLetters(e.startLetters, letter)
		if k < len(e.startLetters) && e.startLetters[k] == letter {
			e.sets[0] = e.startByLetter[k]
		} else {
			e.sets[0] = nil
		}
		return
	}
	var single []int32
	merged := false
	for _, u := range e.sets[l-1] {
		node := &e.levels[l-1][u]
		k := searchLetters(node.TargetLetters, letter)
		if k >= len(node.TargetLetters) || node.TargetLetters[k] != letter {
			continue
		}
		lst := node.TargetsByLetter[k]
		if single == nil && !merged {
			single = lst
			continue
		}
		if !merged {
			merged = true
			e.mergeRow.Zero()
			for _, v := range single {
				e.mergeRow.Set(v)
			}
		}
		for _, v := range lst {
			e.mergeRow.Set(v)
		}
	}
	if !merged {
		e.sets[l] = single
		return
	}
	buf := e.mergeRow.AppendOnes(e.setsBuf[l][:0])
	e.setsBuf[l] = buf
	e.sets[l] = buf
}

// minString completes the word with the radix-minimal suffix from level l on.
// Every graph node reaches (N, qf) (backward pruning), so it always succeeds
// when S_{l-1} is non-empty.
func (e *Enumerator) minString(l int) bool {
	for i := l; i <= e.n; i++ {
		letter, ok := e.minLetterInto(i)
		if !ok {
			return false
		}
		e.setLevel(i, letter)
	}
	return true
}

// nextString advances to the radix-next word: it finds the rightmost
// position whose letter can be increased, increases it minimally, and
// completes with minString.
func (e *Enumerator) nextString() bool {
	for i := e.n; i >= 0; i-- {
		letter, ok := e.nextLetterInto(i, e.letters[i])
		if !ok {
			continue
		}
		e.setLevel(i, letter)
		if e.minString(i + 1) {
			return true
		}
	}
	return false
}

// decode converts the current configuration word κ_0..κ_N into a tuple:
// µ(x) = [i+1, j+1⟩ with i minimal such that κ_i(x) ≠ w and j minimal such
// that κ_j(x) = c.
func (e *Enumerator) decode() span.Tuple {
	t := make(span.Tuple, len(e.vars))
	for vi := range e.vars {
		start, end := -1, -1
		for i := 0; i <= e.n; i++ {
			st := e.configs[e.letters[i]][vi]
			if start < 0 && st != vsa.W {
				start = i + 1
			}
			if end < 0 && st == vsa.C {
				end = i + 1
				break
			}
		}
		t[vi] = span.Span{Start: start, End: end}
	}
	return t
}

// All drains the enumerator and returns every tuple.
func (e *Enumerator) All() []span.Tuple {
	var out []span.Tuple
	for {
		t, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// AllCtx drains the enumerator like All but checks ctx every 64 tuples, so
// huge enumerations are abortable mid-stream. On cancellation it returns
// the tuples collected so far together with ctx's error.
func (e *Enumerator) AllCtx(ctx context.Context) ([]span.Tuple, error) {
	var out []span.Tuple
	for i := 0; ; i++ {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return out, err
			}
		}
		t, ok := e.Next()
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// Count returns the number of tuples of [[A]](s) via the ranked DP — no
// enumeration, cost independent of the result count — and leaves the
// cursor untouched: Count followed by All still yields every tuple.
// Counts beyond MaxInt saturate to MaxInt; use Rank().Count() where exact
// big counts matter.
func (e *Enumerator) Count() int {
	c := e.Rank().Count()
	if u, ok := c.Uint64(); ok && u <= uint64(math.MaxInt) {
		return int(u)
	}
	return math.MaxInt
}

// Rank returns the ranked-access DP over the current build (package
// ranked): exact result counting, direct access to the i-th tuple's word
// and uniform word sampling, all without enumeration. It is computed on
// first use and memoized until the next Reset; building it does not
// disturb the enumeration cursor. The returned Rank views the current
// graph — it is invalidated, like Levels, by Reset.
func (e *Enumerator) Rank() *ranked.Rank {
	if e.rank == nil {
		e.rank = ranked.Build(graphView{e})
	}
	return e.rank
}

// RankBuilt reports whether the ranked DP is already memoized for the
// current build — Rank would return it without construction. Callers
// choosing between a DAG descent and a few Next steps use this to avoid
// paying the build for a shallow skip.
func (e *Enumerator) RankBuilt() bool { return e.rank != nil }

// graphView adapts the built layered graph to ranked.Graph — the counting
// view of levels and edges.
type graphView struct{ e *Enumerator }

func (g graphView) NumLevels() int {
	if g.e.empty {
		return 0
	}
	return len(g.e.levels)
}

func (g graphView) Start() ([]int32, [][]int32) {
	return g.e.startLetters, g.e.startByLetter
}

func (g graphView) Edges(level, idx int) ([]int32, [][]int32) {
	nd := &g.e.levels[level][idx]
	return nd.TargetLetters, nd.TargetsByLetter
}

// SeekLetters positions the cursor exactly at the configuration word w
// (length |s|+1): the next Next returns w's tuple, and enumeration
// continues in radix order from there — the O(1)-descent half of
// offset/limit pagination. The word must be one the layered graph accepts
// (WordAt/SampleWord of the enumerator's Rank produce such words);
// SeekLetters reports false, leaving the cursor unspecified, otherwise.
func (e *Enumerator) SeekLetters(w []int32) bool {
	if e.empty || len(w) != e.n+1 {
		return false
	}
	for l, letter := range w {
		e.setLevel(l, letter)
		if len(e.sets[l]) == 0 {
			return false
		}
	}
	e.started, e.done, e.pending = true, false, true
	return true
}

// Levels exposes the layered graph (for tests reproducing Figure 1 and the
// worked examples, and for spanbench's F1 output).
func (e *Enumerator) Levels() [][]GraphNode { return e.levels }

// LetterConfig returns the configuration a letter id denotes.
func (e *Enumerator) LetterConfig(letter int32) vsa.Config { return e.configs[letter] }

// GraphSize returns the node and edge counts of G (preprocessing cost
// witnesses for the benchmarks).
func (e *Enumerator) GraphSize() (nodes, edges int) {
	for _, lvl := range e.levels {
		nodes += len(lvl)
		for _, nd := range lvl {
			for _, ts := range nd.TargetsByLetter {
				edges += len(ts)
			}
		}
	}
	return nodes, edges
}

// Eval prepares and drains an enumerator in one call, returning the
// variable list and all tuples of [[A]](s).
func Eval(a *vsa.VSA, s string) (span.VarList, []span.Tuple, error) {
	e, err := Prepare(a, s)
	if err != nil {
		return nil, nil, err
	}
	return e.Vars(), e.All(), nil
}

// AsNFA exports the layered automaton A_G as a generic NFA over the letter
// alphabet (symbol ids = letter ids), for cross-validation against the
// generic Ackerman–Shallit cross-section enumerator in package nfa.
// State 0 is the virtual start; node (i, k) becomes state 1 + offset(i) + k.
func (e *Enumerator) AsNFA() *nfa.NFA {
	offsets := make([]int, len(e.levels)+1)
	total := 1
	for i, lvl := range e.levels {
		offsets[i] = total
		total += len(lvl)
	}
	offsets[len(e.levels)] = total
	m := nfa.New(total, len(e.configs))
	m.Start = []int32{0}
	if e.empty || len(e.levels) == 0 {
		return m
	}
	for k := range e.startLetters {
		for _, tgt := range e.startByLetter[k] {
			m.Add(0, e.startLetters[k], int32(offsets[0])+tgt)
		}
	}
	for i, lvl := range e.levels {
		for k := range lvl {
			nd := &lvl[k]
			for li := range nd.TargetLetters {
				for _, tgt := range nd.TargetsByLetter[li] {
					m.Add(int32(offsets[i]+k), nd.TargetLetters[li], int32(offsets[i+1])+tgt)
				}
			}
		}
	}
	last := len(e.levels) - 1
	for k := range e.levels[last] {
		m.Final = append(m.Final, int32(offsets[last]+k))
	}
	return m
}

// DecodeLetters converts a configuration word (letter ids κ_0..κ_N) into
// the corresponding tuple, as decode does for the enumerator's own state.
func (e *Enumerator) DecodeLetters(letters []int32) span.Tuple {
	t := make(span.Tuple, len(e.vars))
	for vi := range e.vars {
		start, end := -1, -1
		for i := 0; i < len(letters); i++ {
			st := e.configs[letters[i]][vi]
			if start < 0 && st != vsa.W {
				start = i + 1
			}
			if end < 0 && st == vsa.C {
				end = i + 1
				break
			}
		}
		t[vi] = span.Span{Start: start, End: end}
	}
	return t
}
