package enum_test

import (
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
	"spanjoin/internal/workload"
)

func vsaAccepts(a *vsa.VSA, s string, vars span.VarList, t span.Tuple) (bool, error) {
	return vsa.AcceptsTuple(a, s, vars, t)
}

func BenchmarkPrepare(b *testing.B) {
	a := rgx.MustCompilePattern(".*x{a+}.*y{b+}.*")
	s := workload.RandomString(workload.Rand(1), 1024, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.Prepare(a, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNextTuple(b *testing.B) {
	a := rgx.MustCompilePattern(".*x{a+}.*y{b+}.*")
	s := workload.RandomString(workload.Rand(1), 512, 2)
	e, err := enum.Prepare(a, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Next(); !ok {
			b.StopTimer()
			e, _ = enum.Prepare(a, s)
			b.StartTimer()
		}
	}
}

func BenchmarkMembershipVsEnumeration(b *testing.B) {
	// Deciding one tuple should not depend on the result count.
	a := rgx.MustCompilePattern(".*x{a+}.*")
	s := workload.RandomString(workload.Rand(2), 512, 2)
	e, err := enum.Prepare(a, s)
	if err != nil {
		b.Fatal(err)
	}
	tu, ok := e.Next()
	if !ok {
		b.Skip("no tuple")
	}
	b.Run("enumerate-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _, err := enum.Eval(a, s)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("membership-one", func(b *testing.B) {
		vars := e.Vars()
		for i := 0; i < b.N; i++ {
			ok, err := vsaAccepts(a, s, vars, tu)
			if err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
}
