package enum

import (
	"math/rand"
	"testing"

	"spanjoin/internal/alloctest"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
)

// randDoc returns a random document over {a, b} (workload.RandomString is
// unavailable here: importing it from an in-package test would cycle back
// through internal/core into enum).
func randDoc(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(2))
	}
	return string(b)
}

func tuplesEqual(a, b []span.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

// TestBitsetPrepareMatchesSliceReference: the bitset engine must produce
// byte-identical enumeration output — same tuples, same radix order — as
// the pre-change slice implementation (refimpl_test.go) on compiled
// patterns over randomized documents.
func TestBitsetPrepareMatchesSliceReference(t *testing.T) {
	patterns := []string{
		"a*x{a*}a*",
		".*x{a+}.*y{b+}.*",
		"x{.*}y{.*}",
		"(a|b)*x{(a|b)+}(a|b)*",
		".*x{a+b}.*",
	}
	r := rand.New(rand.NewSource(777))
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for trial := 0; trial < 8; trial++ {
			s := randDoc(r, r.Intn(12))
			ref, err := refPrepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			e, err := Prepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			if ref.empty != e.Empty() {
				t.Fatalf("[[%s]](%q): emptiness disagrees (ref %v, bitset %v)", p, s, ref.empty, e.Empty())
			}
			want := ref.all()
			got := e.All()
			if !tuplesEqual(got, want) {
				t.Fatalf("[[%s]](%q): bitset %v, reference %v", p, s, got, want)
			}
		}
	}
}

// TestBitsetPrepareMatchesReferenceOnRandomAutomata widens the property to
// random functional vset-automata, including ones with unreachable finals
// and ε/variable tangles.
func TestBitsetPrepareMatchesReferenceOnRandomAutomata(t *testing.T) {
	r := rand.New(rand.NewSource(778))
	vars := span.NewVarList("x", "y")
	for i := 0; i < 120; i++ {
		a := oracle.RandomFunctionalVSA(r, vars, 5, 14)
		for _, s := range []string{"", "a", "ab", "aab", "abba"} {
			ref, err := refPrepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			e, err := Prepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.all()
			got := e.All()
			if !tuplesEqual(got, want) {
				t.Fatalf("trial %d on %q: bitset %v, reference %v", i, s, got, want)
			}
		}
	}
}

// TestResetMatchesFreshPrepare: cycling many documents through one
// enumerator with Reset must yield exactly what a fresh Prepare yields for
// each document — including after documents with empty results, documents
// of different lengths, and the empty document.
func TestResetMatchesFreshPrepare(t *testing.T) {
	r := rand.New(rand.NewSource(779))
	patterns := []string{
		".*x{a+}.*y{b+}.*",
		"a*x{a*}a*",
		"x{.*}y{.*}",
	}
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		var reused *Enumerator
		docs := []string{"", "a", "b"}
		for k := 0; k < 10; k++ {
			docs = append(docs, randDoc(r, r.Intn(20)))
		}
		for _, s := range docs {
			fresh, err := Prepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			if reused == nil {
				reused, err = Prepare(a, s)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				reused.Reset(s)
			}
			want := fresh.All()
			got := reused.All()
			if !tuplesEqual(got, want) {
				t.Fatalf("[[%s]](%q): reset %v, fresh %v", p, s, got, want)
			}
		}
	}
}

// TestCloneMatchesFreshPrepare: a clone shares compiled state but must
// enumerate independently after its own Reset.
func TestCloneMatchesFreshPrepare(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a+}.*")
	base, err := Prepare(a, "aab")
	if err != nil {
		t.Fatal(err)
	}
	c := base.Clone()
	if _, ok := c.Next(); ok {
		t.Fatal("unprepared clone must enumerate nothing")
	}
	c.Reset("aba")
	fresh, err := Prepare(a, "aba")
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(c.All(), fresh.All()) {
		t.Fatal("clone after Reset disagrees with fresh Prepare")
	}
	// The base enumerator is unaffected by the clone's work.
	fresh2, _ := Prepare(a, "aab")
	if !tuplesEqual(base.All(), fresh2.All()) {
		t.Fatal("clone corrupted its parent")
	}
}

// TestResetAllocsSteadyState: repeated documents through one enumerator
// should allocate almost nothing per document beyond the returned tuples.
func TestResetAllocsSteadyState(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a+}.*")
	s := randDoc(rand.New(rand.NewSource(5)), 64)
	e, err := Prepare(a, s)
	if err != nil {
		t.Fatal(err)
	}
	drain := func() {
		for {
			if _, ok := e.Next(); !ok {
				return
			}
		}
	}
	// Warm up arenas.
	for i := 0; i < 3; i++ {
		e.Reset(s)
		drain()
	}
	// This assertion gates the matrix sweep and the bitset kernels it is
	// fused from.
	//
	//spanjoin:allocgate spanjoin/internal/enum.(*Enumerator).buildMatrix spanjoin/internal/bitset.(*Matrix).MulOr spanjoin/internal/bitset.Row.Intersects
	avg := alloctest.Run(t, 20, func() {
		e.Reset(s)
		drain()
	})
	// The drain discards tuples but each Next still allocates one; the
	// bound asserts the graph build itself is allocation-free.
	e.Reset(s)
	tuples := float64(len(e.All()))
	if avg > tuples+4 {
		t.Fatalf("Reset+drain allocates %.1f per document for %v tuples; want ≈ tuple count", avg, tuples)
	}
}
