//go:build race

package enum

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count assertions are skipped under it (instrumentation
// and the degraded sync.Pool caching distort AllocsPerRun).
const raceEnabled = true
