package enum

import (
	"context"
	"runtime"
	"sync"

	"spanjoin/internal/bitset"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// EvalParallel enumerates [[A]](s) using several goroutines, addressing the
// parallelization direction the paper's conclusion raises (§6, citing Yang
// et al.). The radix tree of configuration words is partitioned at a fixed
// prefix depth: every worker enumerates the completions of its assigned
// prefixes independently (the layered graph is immutable after
// preprocessing), and the per-prefix outputs are concatenated in prefix
// order, so the overall result is exactly the sequential radix order.
//
// workers ≤ 0 selects GOMAXPROCS. Falls back to sequential enumeration for
// tiny inputs.
func EvalParallel(a *vsa.VSA, s string, workers int) (span.VarList, []span.Tuple, error) {
	return EvalParallelCtx(context.Background(), a, s, workers)
}

// EvalParallelCtx is EvalParallel with cancellation: workers abandon
// pending radix-tree prefixes once ctx is done, and the call returns ctx's
// error instead of a partial result.
func EvalParallelCtx(ctx context.Context, a *vsa.VSA, s string, workers int) (span.VarList, []span.Tuple, error) {
	e, err := Prepare(a, s)
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if e.empty {
		return e.vars, nil, nil
	}
	if workers == 1 || e.n == 0 {
		ts, err := e.AllCtx(ctx)
		if err != nil {
			return nil, nil, err
		}
		return e.vars, ts, nil
	}

	prefixes := e.splitPrefixes(16 * workers)
	results := make([][]span.Tuple, len(prefixes))
	rowPool := bitset.NewPool(e.auto.NumStates())
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil {
					continue
				}
				results[idx] = e.enumeratePrefix(prefixes[idx], rowPool)
			}
		}()
	}
	for i := range prefixes {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	var out []span.Tuple
	for _, r := range results {
		out = append(out, r...)
	}
	return e.vars, out, nil
}

// EvalAllDocs evaluates [[A]] on every document with a pool of workers,
// the multi-document complement of EvalParallel: each worker owns one
// reusable enumerator (a Clone of a shared compiled base) and cycles its
// documents through it with Reset, so the per-document cost is one graph
// build into preallocated arenas — trimming, functionality checking,
// closure computation and letter interning happen once per worker, and
// steady-state allocation per document is near zero beyond the result
// tuples. Results are indexed like docs. workers ≤ 0 selects GOMAXPROCS.
func EvalAllDocs(a *vsa.VSA, docs []string, workers int) (span.VarList, [][]span.Tuple, error) {
	return EvalAllDocsCtx(context.Background(), a, docs, workers)
}

// EvalAllDocsCtx is EvalAllDocs with cancellation: workers check ctx
// between documents and every 64 tuples within one (AllCtx), so the call
// is abortable mid-enumeration even on a single pathological document. On
// cancellation it returns ctx's error instead of a partial result.
func EvalAllDocsCtx(ctx context.Context, a *vsa.VSA, docs []string, workers int) (span.VarList, [][]span.Tuple, error) {
	p, err := NewPlan(a)
	if err != nil {
		return nil, nil, err
	}
	return EvalAllDocsPlanCtx(ctx, p, docs, workers)
}

// EvalAllDocsPlanCtx is EvalAllDocsCtx for a plan compiled ahead of time:
// nothing document-independent is recompiled, each worker only allocates
// its own build arenas.
func EvalAllDocsPlanCtx(ctx context.Context, p *Plan, docs []string, workers int) (span.VarList, [][]span.Tuple, error) {
	results := make([][]span.Tuple, len(docs))
	if len(docs) == 0 {
		return p.vars, results, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers == 1 {
		e := p.NewEnumerator()
		for i, doc := range docs {
			e.Reset(doc)
			var err error
			if results[i], err = e.AllCtx(ctx); err != nil {
				return nil, nil, err
			}
		}
		return p.vars, results, nil
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		e := p.NewEnumerator()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue
				}
				e.Reset(docs[i])
				results[i], _ = e.AllCtx(ctx)
			}
		}()
	}
	for i := range docs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return p.vars, results, nil
}

// prefix is a fixed choice of the first depth letters with the resulting
// node set at level depth-1 and an estimated workload (path count).
type prefix struct {
	letters []int32
	set     []int32
	weight  float64
}

// splitPrefixes partitions the radix tree adaptively: it repeatedly expands
// the heaviest prefix (by the number of graph paths under it — an upper
// bound on its tuple count) one level deeper, until at least target
// prefixes exist or nothing can be expanded further. Expanding in place
// keeps the list in radix order, so concatenating per-prefix outputs
// reproduces the sequential order. Without the weighting, the prefix whose
// variables are all still waiting dominates (spans can start anywhere in
// the document) and parallelism buys nothing.
func (e *Enumerator) splitPrefixes(target int) []prefix {
	paths := e.pathCounts()
	weigh := func(level int, set []int32) float64 {
		w := 0.0
		for _, u := range set {
			w += paths[level][u]
		}
		return w
	}
	var cur []prefix
	for k, l := range e.startLetters {
		set := e.startByLetter[k]
		cur = append(cur, prefix{letters: []int32{l}, set: set, weight: weigh(0, set)})
	}
	for len(cur) < target {
		// Pick the heaviest expandable prefix.
		best := -1
		for i, p := range cur {
			if len(p.letters) > e.n {
				continue // fully fixed
			}
			if best < 0 || p.weight > cur[best].weight {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p := cur[best]
		depth := len(p.letters)
		letters, byLetter := groupSuccessors(e, p.set, depth)
		children := make([]prefix, 0, len(letters))
		for k, l := range letters {
			nl := append(append([]int32(nil), p.letters...), l)
			children = append(children, prefix{
				letters: nl,
				set:     byLetter[k],
				weight:  weigh(depth, byLetter[k]),
			})
		}
		if len(children) == 0 {
			// Dead prefix (cannot happen after backward pruning, but keep
			// the loop safe): drop it.
			cur = append(cur[:best], cur[best+1:]...)
			continue
		}
		// Replace the parent by its children in place (radix order kept).
		next := make([]prefix, 0, len(cur)+len(children)-1)
		next = append(next, cur[:best]...)
		next = append(next, children...)
		next = append(next, cur[best+1:]...)
		cur = next
	}
	return cur
}

// pathCounts computes, for every node, the number of graph paths to the
// final level (saturating float to avoid overflow on huge counts).
func (e *Enumerator) pathCounts() [][]float64 {
	out := make([][]float64, len(e.levels))
	last := len(e.levels) - 1
	out[last] = make([]float64, len(e.levels[last]))
	for k := range out[last] {
		out[last][k] = 1
	}
	for i := last - 1; i >= 0; i-- {
		out[i] = make([]float64, len(e.levels[i]))
		for k, nd := range e.levels[i] {
			for li := range nd.TargetLetters {
				for _, tgt := range nd.TargetsByLetter[li] {
					out[i][k] += out[i+1][tgt]
				}
			}
		}
	}
	return out
}

// groupSuccessors merges the grouped targets of every node in set at the
// given level, keeping letters ascending.
func groupSuccessors(e *Enumerator, set []int32, level int) ([]int32, [][]int32) {
	var pairs []letterTarget
	for _, u := range set {
		node := &e.levels[level-1][u]
		for k, l := range node.TargetLetters {
			for _, tgt := range node.TargetsByLetter[k] {
				pairs = append(pairs, letterTarget{l, tgt})
			}
		}
	}
	return groupByLetter(pairs)
}

// enumeratePrefix enumerates all completions of the prefix in radix order
// on a private cursor sharing the immutable graph.
func (e *Enumerator) enumeratePrefix(p prefix, rowPool *bitset.Pool) []span.Tuple {
	mergeRow := rowPool.Get()
	defer rowPool.Put(mergeRow)
	c := &Enumerator{
		vars:          e.vars,
		n:             e.n,
		configs:       e.configs,
		levels:        e.levels,
		startLetters:  e.startLetters,
		startByLetter: e.startByLetter,
		letters:       make([]int32, e.n+1),
		sets:          make([][]int32, e.n+1),
		setsBuf:       make([][]int32, e.n+1),
		mergeRow:      mergeRow,
	}
	depth := len(p.letters)
	copy(c.letters, p.letters)
	c.sets[depth-1] = p.set
	// Fill earlier set slots for completeness (only sets[depth-1] is read
	// by minString/nextString below the floor).
	var out []span.Tuple
	if !c.minString(depth) {
		return nil
	}
	out = append(out, c.decode())
	for c.nextStringFloor(depth) {
		out = append(out, c.decode())
	}
	return out
}

// nextStringFloor is nextString restricted to positions ≥ floor, keeping
// the prefix below floor frozen.
func (e *Enumerator) nextStringFloor(floor int) bool {
	for i := e.n; i >= floor; i-- {
		letter, ok := e.nextLetterInto(i, e.letters[i])
		if !ok {
			continue
		}
		e.setLevel(i, letter)
		if e.minString(i + 1) {
			return true
		}
	}
	return false
}
