package enum_test

import (
	"math/rand"
	"testing"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// afun builds A_fun of Examples 2.6/4.1 with states 0,1,2 (= q0,q1,qf).
func afun() *vsa.VSA {
	a := &vsa.VSA{Vars: span.NewVarList("x"), Adj: make([][]vsa.Tr, 3), Init: 0, Final: 2}
	a.AddChar(0, alphabet.Single('a'), 0)
	a.AddOpen(0, 0, 1)
	a.AddChar(1, alphabet.Single('a'), 1)
	a.AddClose(1, 0, 2)
	a.AddChar(2, alphabet.Single('a'), 2)
	return a
}

// TestExample42Table reproduces the table of Example 4.2: [[A_fun]](aa) with
// the configuration sequence of every tuple, in the radix order the
// algorithm emits (w < o < c).
func TestExample42Table(t *testing.T) {
	e, err := enum.Prepare(afun(), "aa")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		span span.Span
		cfgs string // ~c1(x) ~c2(x) ~c3(x)
	}{
		{span.Span{Start: 3, End: 3}, "wwc"},
		{span.Span{Start: 2, End: 3}, "woc"},
		{span.Span{Start: 2, End: 2}, "wcc"},
		{span.Span{Start: 1, End: 3}, "ooc"},
		{span.Span{Start: 1, End: 2}, "occ"},
		{span.Span{Start: 1, End: 1}, "ccc"},
	}
	for i := 0; ; i++ {
		tu, ok := e.Next()
		if !ok {
			if i != len(want) {
				t.Fatalf("enumerated %d tuples, want %d", i, len(want))
			}
			break
		}
		if i >= len(want) {
			t.Fatalf("too many tuples: extra %v", tu)
		}
		if tu[0] != want[i].span {
			t.Errorf("tuple %d = %v, want %v", i, tu[0], want[i].span)
		}
	}
}

// TestFigure1_AG reproduces Figure 1: the structure of the NFA A_G built
// from A_fun and s = aa — three levels of sizes 3, 3, 1 whose nodes carry
// letters w, o, c, with exactly the edges drawn in the figure.
func TestFigure1_AG(t *testing.T) {
	e, err := enum.Prepare(afun(), "aa")
	if err != nil {
		t.Fatal(err)
	}
	levels := e.Levels()
	if len(levels) != 3 {
		t.Fatalf("got %d levels, want 3", len(levels))
	}
	wantSizes := []int{3, 3, 1}
	for i, lvl := range levels {
		if len(lvl) != wantSizes[i] {
			t.Fatalf("level %d has %d nodes, want %d", i, len(lvl), wantSizes[i])
		}
	}
	// Letters: states 0,1,2 carry w,o,c. Letter ids are radix-ordered, so
	// w=0 < o=1 < c=2.
	cfgName := func(l int32) string { return e.LetterConfig(l).String() }
	wantLetter := map[int32]string{0: "(w)", 1: "(o)", 2: "(c)"}
	for i, lvl := range levels {
		for _, nd := range lvl {
			if cfgName(nd.Letter) != wantLetter[nd.State] {
				t.Errorf("level %d state %d has letter %s, want %s",
					i, nd.State, cfgName(nd.Letter), wantLetter[nd.State])
			}
		}
	}
	// Edges of Figure 1 (from (i, state) to (i+1, state)):
	wantEdges := map[[3]int32]bool{
		// level 0 -> 1: q0 -> {q0,q1,qf}, q1 -> {q1,qf}, qf -> {qf}
		{0, 0, 0}: true, {0, 0, 1}: true, {0, 0, 2}: true,
		{0, 1, 1}: true, {0, 1, 2}: true,
		{0, 2, 2}: true,
		// level 1 -> 2: everything must reach (2, qf)
		{1, 0, 2}: true, {1, 1, 2}: true, {1, 2, 2}: true,
	}
	gotEdges := map[[3]int32]bool{}
	for i := 0; i+1 < len(levels); i++ {
		for _, nd := range levels[i] {
			for k := range nd.TargetLetters {
				for _, tgt := range nd.TargetsByLetter[k] {
					gotEdges[[3]int32{int32(i), nd.State, levels[i+1][tgt].State}] = true
				}
			}
		}
	}
	if len(gotEdges) != len(wantEdges) {
		t.Errorf("got %d edges, want %d: %v", len(gotEdges), len(wantEdges), gotEdges)
	}
	for e := range wantEdges {
		if !gotEdges[e] {
			t.Errorf("missing edge (%d,q%d) -> (%d,q%d)", e[0], e[1], e[0]+1, e[2])
		}
	}
}

// TestExampleA1Table reproduces the table of Example A.1: all ten tuples of
// [[a* x{a*} a*]](aaa).
func TestExampleA1Table(t *testing.T) {
	a := rgx.MustCompilePattern("a*x{a*}a*")
	_, tuples, err := enum.Eval(a, "aaa")
	if err != nil {
		t.Fatal(err)
	}
	want := map[span.Span]bool{
		{Start: 1, End: 1}: true, {Start: 1, End: 2}: true, {Start: 1, End: 3}: true, {Start: 1, End: 4}: true,
		{Start: 2, End: 2}: true, {Start: 2, End: 3}: true, {Start: 2, End: 4}: true,
		{Start: 3, End: 3}: true, {Start: 3, End: 4}: true,
		{Start: 4, End: 4}: true,
	}
	if len(tuples) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(tuples), len(want))
	}
	for _, tu := range tuples {
		if !want[tu[0]] {
			t.Errorf("unexpected tuple %v", tu[0])
		}
	}
}

// exampleA2 builds the automaton of Example A.2: exponentially many
// accepting runs, but a single tuple.
func exampleA2() *vsa.VSA {
	a := &vsa.VSA{Vars: span.NewVarList("x"), Adj: make([][]vsa.Tr, 4), Init: 0, Final: 3}
	// q0 -x⊢→ q1, q0 -x⊢→ q2
	a.AddOpen(0, 0, 1)
	a.AddOpen(0, 0, 2)
	// q1,q2 -a→ {q1,q2}
	for _, p := range []int32{1, 2} {
		a.AddChar(p, alphabet.Single('a'), 1)
		a.AddChar(p, alphabet.Single('a'), 2)
	}
	// q1 -⊣x→ qf, q2 -⊣x→ qf
	a.AddClose(1, 0, 3)
	a.AddClose(2, 0, 3)
	return a
}

// TestExampleA2Dedup: 2^|s| accepting runs collapse to one tuple; the
// enumeration must emit it exactly once.
func TestExampleA2Dedup(t *testing.T) {
	a := exampleA2()
	if !a.IsFunctional() {
		t.Fatal("Example A.2 automaton should be functional")
	}
	for _, s := range []string{"a", "aa", "aaa", "aaaa"} {
		e, err := enum.Prepare(a, s)
		if err != nil {
			t.Fatal(err)
		}
		// Count the accepting paths in G: they must be 2^|s|.
		paths := countPaths(e)
		wantPaths := 1 << len(s)
		if paths != wantPaths {
			t.Errorf("|s|=%d: %d paths in G, want %d", len(s), paths, wantPaths)
		}
		tuples := e.All()
		if len(tuples) != 1 {
			t.Fatalf("|s|=%d: got %d tuples, want 1", len(s), len(tuples))
		}
		if tuples[0][0] != (span.Span{Start: 1, End: len(s) + 1}) {
			t.Errorf("tuple = %v, want [1,%d⟩", tuples[0][0], len(s)+1)
		}
	}
}

func countPaths(e *enum.Enumerator) int {
	levels := e.Levels()
	if len(levels) == 0 {
		return 0
	}
	counts := make([]int, len(levels[len(levels)-1]))
	for i := range counts {
		counts[i] = 1
	}
	for i := len(levels) - 2; i >= 0; i-- {
		next := make([]int, len(levels[i]))
		for k, nd := range levels[i] {
			for j := range nd.TargetLetters {
				for _, tgt := range nd.TargetsByLetter[j] {
					next[k] += counts[tgt]
				}
			}
		}
		counts = next
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

func TestEmptyStringEvaluation(t *testing.T) {
	cases := []struct {
		pattern string
		want    int
	}{
		{"x{}", 1},
		{"x{}y{}", 1},
		{"a*", 1}, // Boolean: single empty tuple
		{"a+", 0},
		{"x{a}", 0},
	}
	for _, tc := range cases {
		a := rgx.MustCompilePattern(tc.pattern)
		_, tuples, err := enum.Eval(a, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) != tc.want {
			t.Errorf("[[%s]](ε): %d tuples, want %d", tc.pattern, len(tuples), tc.want)
		}
	}
}

func TestBooleanSpanner(t *testing.T) {
	a := rgx.MustCompilePattern("(a|b)*ab(a|b)*") // contains "ab"
	for s, want := range map[string]int{"ab": 1, "aab": 1, "ba": 0, "": 0, "abab": 1} {
		_, tuples, err := enum.Eval(a, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) != want {
			t.Errorf("boolean [[α]](%q) = %d tuples, want %d", s, len(tuples), want)
		}
		if want == 1 && len(tuples) == 1 && len(tuples[0]) != 0 {
			t.Errorf("boolean tuple should be empty, got %v", tuples[0])
		}
	}
}

func TestRadixOrderAndNoDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	patterns := []string{
		".*x{a*}.*y{b*}.*",
		"x{.*}y{.*}",
		".*x{.}.*",
		"(a|b)*x{a+}(a|b)*",
	}
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for trial := 0; trial < 5; trial++ {
			n := r.Intn(5) + 1
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + r.Intn(2))
			}
			s := string(b)
			e, err := enum.Prepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			count := 0
			for {
				tu, ok := e.Next()
				if !ok {
					break
				}
				count++
				if seen[tu.Key()] {
					t.Fatalf("[[%s]](%q): duplicate tuple %v", p, s, tu)
				}
				seen[tu.Key()] = true
			}
			// Cross-check the count with the oracle.
			f := rgx.MustParse(p)
			want := oracle.EvalFormula(f, s)
			if count != len(want) {
				t.Errorf("[[%s]](%q): %d tuples, oracle says %d", p, s, count, len(want))
			}
		}
	}
}

func TestNextAfterExhaustion(t *testing.T) {
	a := rgx.MustCompilePattern("x{a}")
	e, err := enum.Prepare(a, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Next(); !ok {
		t.Fatal("expected one tuple")
	}
	for i := 0; i < 3; i++ {
		if _, ok := e.Next(); ok {
			t.Fatal("Next after exhaustion must keep returning !ok")
		}
	}
}

func TestEmptyLanguageEnumerator(t *testing.T) {
	e, err := enum.Prepare(vsa.New(nil), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Empty() {
		t.Error("Empty() should be true")
	}
	if _, ok := e.Next(); ok {
		t.Error("no tuples expected")
	}
}

func TestNonFunctionalRejected(t *testing.T) {
	a := &vsa.VSA{Vars: span.NewVarList("x"), Adj: make([][]vsa.Tr, 1), Init: 0, Final: 0}
	a.AddOpen(0, 0, 0)
	a.AddChar(0, alphabet.Single('a'), 0)
	a.AddClose(0, 0, 0)
	if _, err := enum.Prepare(a, "a"); err == nil {
		t.Error("non-functional automaton must be rejected")
	}
}

func TestGraphSizeBound(t *testing.T) {
	// |G| is O(n·N) nodes and O(n²·N) edges (Thm 3.3 preprocessing bound).
	a := rgx.MustCompilePattern("(a|b)*x{(a|b)+}(a|b)*")
	n := a.Trim().NumStates()
	for _, N := range []int{4, 8, 16} {
		s := ""
		for i := 0; i < N; i++ {
			s += "ab"[i%2 : i%2+1]
		}
		e, err := enum.Prepare(a, s)
		if err != nil {
			t.Fatal(err)
		}
		nodes, edges := e.GraphSize()
		if nodes > n*(N+1) {
			t.Errorf("N=%d: %d nodes > n(N+1) = %d", N, nodes, n*(N+1))
		}
		if edges > n*n*N {
			t.Errorf("N=%d: %d edges > n²N = %d", N, edges, n*n*N)
		}
	}
}

func TestCountAndAll(t *testing.T) {
	a := rgx.MustCompilePattern("a*x{a*}a*")
	e1, _ := enum.Prepare(a, "aaaa")
	e2, _ := enum.Prepare(a, "aaaa")
	want := e2.All()
	// Count is the ranked DP, not a drain: it must not move the cursor.
	if got := e1.Count(); got != len(want) {
		t.Errorf("Count %d != |All| %d", got, len(want))
	}
	if got := e1.Count(); got != len(want) {
		t.Errorf("second Count %d != |All| %d (Count must be repeatable)", got, len(want))
	}
	all := e1.All()
	if len(all) != len(want) {
		t.Fatalf("All after Count yields %d tuples, want %d — Count drained the iterator", len(all), len(want))
	}
	for i := range all {
		if all[i].Compare(want[i]) != 0 {
			t.Fatalf("tuple %d after Count: %v, want %v", i, all[i], want[i])
		}
	}
	// Mid-enumeration Count still reports the full result size and leaves
	// the remaining stream intact.
	e3, _ := enum.Prepare(a, "aaaa")
	first, ok := e3.Next()
	if !ok || first.Compare(want[0]) != 0 {
		t.Fatal("first tuple diverged")
	}
	if got := e3.Count(); got != len(want) {
		t.Errorf("mid-stream Count %d != %d", got, len(want))
	}
	rest := e3.All()
	if len(rest) != len(want)-1 {
		t.Fatalf("mid-stream Count disturbed the cursor: %d tuples left, want %d", len(rest), len(want)-1)
	}
}
