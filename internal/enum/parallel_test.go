package enum_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
	"spanjoin/internal/workload"
)

// TestEvalParallelMatchesSequential: identical tuples in the identical
// (radix) order, for various worker counts.
func TestEvalParallelMatchesSequential(t *testing.T) {
	patterns := []string{
		"a*x{a*}a*",
		".*x{a+}.*y{b+}.*",
		"x{.*}y{.*}",
		"(a|b)*x{(a|b)+}(a|b)*",
	}
	r := rand.New(rand.NewSource(808))
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for trial := 0; trial < 4; trial++ {
			n := r.Intn(8) + 1
			s := workload.RandomString(r, n, 2)
			_, want, err := enum.Eval(a, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 7} {
				_, got, err := enum.EvalParallel(a, s, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("[[%s]](%q) workers=%d: %d tuples, want %d", p, s, workers, len(got), len(want))
				}
				for i := range got {
					if got[i].Compare(want[i]) != 0 {
						t.Fatalf("[[%s]](%q) workers=%d: order differs at %d: %v vs %v",
							p, s, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestEvalParallelEdgeCases(t *testing.T) {
	a := rgx.MustCompilePattern("x{a}")
	// Empty result.
	_, got, err := enum.EvalParallel(a, "b", 4)
	if err != nil || len(got) != 0 {
		t.Errorf("empty: %v, %v", got, err)
	}
	// Empty string.
	b := rgx.MustCompilePattern("x{}")
	_, got, err = enum.EvalParallel(b, "", 4)
	if err != nil || len(got) != 1 {
		t.Errorf("ε: %v, %v", got, err)
	}
	// Default worker count.
	_, got, err = enum.EvalParallel(a, "a", 0)
	if err != nil || len(got) != 1 {
		t.Errorf("default workers: %v, %v", got, err)
	}
	// Non-functional input.
	if _, _, err := enum.EvalParallel(nonFunctionalVSA(), "a", 2); err == nil {
		t.Error("non-functional automaton must be rejected")
	}
}

func TestEvalParallelRandomAutomata(t *testing.T) {
	r := rand.New(rand.NewSource(809))
	vars := span.NewVarList("x", "y")
	for i := 0; i < 40; i++ {
		a := oracle.RandomFunctionalVSA(r, vars, 4, 10)
		s := workload.RandomString(r, r.Intn(5)+1, 2)
		_, want, err := enum.Eval(a, s)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := enum.EvalParallel(a, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d tuples", i, len(got), len(want))
		}
		for k := range got {
			if got[k].Compare(want[k]) != 0 {
				t.Fatalf("trial %d: order differs at %d", i, k)
			}
		}
	}
}

// TestWorkerCountDefaults: zero and negative worker counts must behave as
// GOMAXPROCS on every parallel entry point — same results as sequential,
// no panic, no silent serialization into a wrong answer.
func TestWorkerCountDefaults(t *testing.T) {
	a := rgx.MustCompilePattern("(a|b)*x{a+}(a|b)*")
	docs := []string{"aab", "bba", "abab", "", "aaaa", "b"}
	_, want, err := enum.EvalAllDocs(a, docs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, -1, -100} {
		_, got, err := enum.EvalAllDocs(a, docs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range docs {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d doc %d: %d tuples, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for k := range want[i] {
				if got[i][k].Compare(want[i][k]) != 0 {
					t.Fatalf("workers=%d doc %d: order differs at %d", workers, i, k)
				}
			}
		}
		_, single, err := enum.EvalParallel(a, docs[0], workers)
		if err != nil || len(single) != len(want[0]) {
			t.Fatalf("EvalParallel workers=%d: %d tuples (err %v), want %d",
				workers, len(single), err, len(want[0]))
		}
	}
}

// TestEvalAllDocsCtxCancellation: a cancelled context must abort the batch
// and surface the context error instead of a partial result.
func TestEvalAllDocsCtxCancellation(t *testing.T) {
	a := rgx.MustCompilePattern("a*x{a*}a*")
	big := make([]byte, 400)
	for i := range big {
		big[i] = 'a'
	}
	docs := make([]string, 64)
	for i := range docs {
		docs[i] = string(big)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := enum.EvalAllDocsCtx(ctx, a, docs, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, _, err := enum.EvalParallelCtx(ctx, a, string(big), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalParallelCtx err = %v, want context.Canceled", err)
	}
	// A live context still evaluates normally through the Ctx variants.
	_, got, err := enum.EvalAllDocsCtx(context.Background(), a, []string{"aa"}, 0)
	if err != nil || len(got[0]) != 6 {
		t.Fatalf("live ctx: %d tuples (err %v), want 6", len(got[0]), err)
	}
}

func nonFunctionalVSA() *vsa.VSA {
	a := &vsa.VSA{Vars: span.NewVarList("x"), Adj: make([][]vsa.Tr, 1), Init: 0, Final: 0}
	a.AddOpen(0, 0, 0)
	a.AddChar(0, alphabet.Single('a'), 0)
	a.AddClose(0, 0, 0)
	return a
}
