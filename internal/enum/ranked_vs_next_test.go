package enum

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// checkRankedVsNext pins every ranked-access operation against the
// enumeration itself: Count against the drain count, WordAt(i) (decoded)
// against the i-th Next result for every i, and SeekLetters against the
// tuple suffix starting at sampled positions.
func checkRankedVsNext(t *testing.T, a *vsa.VSA, s string) {
	t.Helper()
	e, err := Prepare(a, s)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Prepare(a, s)
	if err != nil {
		t.Fatal(err)
	}
	all := ref.All()

	r := e.Rank()
	cnt, fits := r.Count().Uint64()
	if !fits {
		t.Fatalf("count overflows uint64 on a tiny instance: %v", r.Count())
	}
	if cnt != uint64(len(all)) {
		t.Fatalf("Count = %d, drain found %d on %q", cnt, len(all), s)
	}

	var buf []int32
	for i := range all {
		w, ok := r.WordAt(uint64(i), buf)
		if !ok {
			t.Fatalf("WordAt(%d) out of range below Count on %q", i, s)
		}
		buf = w
		if got := e.DecodeLetters(w); got.Compare(all[i]) != 0 {
			t.Fatalf("WordAt(%d) decodes to %v, Next order says %v (doc %q)", i, got, all[i], s)
		}
	}
	if _, ok := r.WordAt(uint64(len(all)), nil); ok {
		t.Fatalf("WordAt(Count) must fail on %q", s)
	}

	// Seek to a handful of positions and require the exact tuple suffix.
	for _, i := range []int{0, 1, len(all) / 2, len(all) - 1} {
		if i < 0 || i >= len(all) {
			continue
		}
		w, ok := r.WordAt(uint64(i), buf)
		if !ok {
			t.Fatalf("WordAt(%d) failed on %q", i, s)
		}
		buf = w
		if !e.SeekLetters(w) {
			t.Fatalf("SeekLetters rejected WordAt(%d) on %q", i, s)
		}
		rest := e.All()
		if len(rest) != len(all)-i {
			t.Fatalf("after Seek(%d): %d tuples, want %d (doc %q)", i, len(rest), len(all)-i, s)
		}
		for k := range rest {
			if rest[k].Compare(all[i+k]) != 0 {
				t.Fatalf("after Seek(%d) tuple %d: %v, want %v", i, k, rest[k], all[i+k])
			}
		}
	}

	// Sampling returns only genuine results.
	if len(all) > 0 {
		keys := make(map[string]bool, len(all))
		for _, tu := range all {
			keys[tu.Key()] = true
		}
		rng := rand.New(rand.NewSource(int64(len(s))*31 + int64(len(all))))
		for k := 0; k < 8; k++ {
			w, ok := r.SampleWord(rng, buf)
			if !ok {
				t.Fatalf("SampleWord failed with %d results on %q", len(all), s)
			}
			buf = w
			if tu := e.DecodeLetters(w); !keys[tu.Key()] {
				t.Fatalf("sampled %v is not a result on %q", tu, s)
			}
		}
	}
}

func TestRankedVsNextOnPatterns(t *testing.T) {
	patterns := []string{
		"a*x{a*}a*",
		".*x{a+}.*y{b+}.*",
		"x{.*}y{.*}",
		"(a|b)*x{(a|b)+}(a|b)*",
		"[^0-9]*x{[0-9]+}[^0-9]*",
		".*x{a+b}.*",
	}
	alpha := "ab01z"
	r := rand.New(rand.NewSource(555))
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for trial := 0; trial < 8; trial++ {
			b := make([]byte, r.Intn(12))
			for i := range b {
				b[i] = alpha[r.Intn(len(alpha))]
			}
			checkRankedVsNext(t, a, string(b))
		}
		checkRankedVsNext(t, a, "")
	}
}

func TestRankedVsNextOnRandomAutomata(t *testing.T) {
	r := rand.New(rand.NewSource(556))
	vars := span.NewVarList("x", "y")
	for i := 0; i < 80; i++ {
		a := oracle.RandomFunctionalVSA(r, vars, 5, 14)
		for _, s := range []string{"", "a", "ab", "aab", "abba", "abcab"} {
			checkRankedVsNext(t, a, s)
		}
	}
}

// TestRankCountOverflow builds a result set past 2^64 — k ordered
// disjoint non-empty spans over aᵐ, whose count is the closed form
// C(m+k, 2k) — and requires the exact big.Int value.
func TestRankCountOverflow(t *testing.T) {
	const k, m = 12, 200 // C(212, 24) ≈ 3.9e28 > 2^64
	var sb strings.Builder
	sb.WriteString("a*")
	for i := 1; i <= k; i++ {
		sb.WriteString("x")
		sb.WriteString(string(rune('a' + i - 1)))
		sb.WriteString("{a+}a*")
	}
	a := rgx.MustCompilePattern(sb.String())
	e, err := Prepare(a, strings.Repeat("a", m))
	if err != nil {
		t.Fatal(err)
	}
	c := e.Rank().Count()
	if _, fits := c.Uint64(); fits {
		t.Fatalf("count %v unexpectedly fits uint64", c)
	}
	want := new(big.Int).Binomial(m+k, 2*k)
	if c.BigInt().Cmp(want) != 0 {
		t.Fatalf("count = %v, want C(%d,%d) = %v", c, m+k, 2*k, want)
	}
	// Saturating int view.
	if e.Count() != int(^uint(0)>>1) {
		t.Fatalf("Count() = %d, want MaxInt saturation", e.Count())
	}
	// Direct access works at uint64 indices even though the total does
	// not fit: the first and a deep tuple must be well-formed (ordered
	// disjoint non-empty spans).
	r := e.Rank()
	for _, i := range []uint64{0, 1, 1 << 40, 1 << 63} {
		w, ok := r.WordAt(i, nil)
		if !ok {
			t.Fatalf("WordAt(%d) failed", i)
		}
		tu := e.DecodeLetters(w)
		if len(tu) != k {
			t.Fatalf("tuple arity %d, want %d", len(tu), k)
		}
		prevEnd := 1
		for vi, sp := range tu {
			if sp.Start < prevEnd || sp.End <= sp.Start || sp.End > m+1 {
				t.Fatalf("WordAt(%d) var %d: malformed span %v in %v", i, vi, sp, tu)
			}
			prevEnd = sp.End
		}
	}
	// And sampling from the big-count set yields well-formed tuples.
	rng := rand.New(rand.NewSource(9))
	for j := 0; j < 4; j++ {
		w, ok := r.SampleWord(rng, nil)
		if !ok {
			t.Fatal("SampleWord failed")
		}
		if tu := e.DecodeLetters(w); len(tu) != k {
			t.Fatalf("sampled tuple arity %d", len(tu))
		}
	}
}

// FuzzRankedVsNext is the differential fuzz harness for the ranked
// subsystem: on fuzz-chosen patterns × arbitrary documents, the DP count
// must equal the drain count and ranked access must reproduce the
// enumeration order exactly.
func FuzzRankedVsNext(f *testing.F) {
	patterns := []string{
		"a*x{a*}a*",
		"(a|b)*x{a+}(a|b)*",
		"x{.*}y{.*}",
		"[^0-9]*x{[0-9]+}[^0-9]*",
		".*x{a+b}.*",
		"(a|b)*x{a}y{b?}(a|b)*",
	}
	f.Add(uint8(0), "aaa")
	f.Add(uint8(1), "abba")
	f.Add(uint8(3), "12x34")
	f.Add(uint8(2), "\x00\xffa")
	f.Add(uint8(5), "aabab")
	f.Fuzz(func(t *testing.T, pi uint8, doc string) {
		if len(doc) > 24 {
			doc = doc[:24]
		}
		a := rgx.MustCompilePattern(patterns[int(pi)%len(patterns)])
		checkRankedVsNext(t, a, doc)
	})
}
