package enum

// This file preserves the pre-bitset slice implementation of Prepare and of
// the radix enumeration verbatim (modulo renaming) as a golden reference.
// The cross-validation tests assert that the bitset engine produces
// byte-identical enumeration output — same tuples, same radix order — on
// randomized automata and documents.

import (
	"sort"

	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

type refEnumerator struct {
	vars    span.VarList
	n       int
	empty   bool
	configs []vsa.Config
	levels  [][]GraphNode

	startLetters  []int32
	startByLetter [][]int32

	started bool
	done    bool
	letters []int32
	sets    [][]int32
}

// refPrepare is the pre-change Prepare: per-level []bool buffers and
// [][]int32 closure walks, no reuse.
func refPrepare(a *vsa.VSA, s string) (*refEnumerator, error) {
	t, ct, err := a.RequireFunctional()
	if err != nil {
		return nil, err
	}
	e := &refEnumerator{vars: t.Vars, n: len(s)}
	if t.NumStates() == 2 && t.NumTransitions() == 0 && t.Init != t.Final {
		e.empty = true
		return e, nil
	}
	cl := t.NewClosures()
	n := t.NumStates()
	N := len(s)

	levelStates := make([][]int32, N+1)
	cur := make([]bool, n)
	for _, q := range cl.VE[t.Init] {
		cur[q] = true
	}
	levelStates[0] = refBoolsToList(cur)
	rawEdges := make([][][]int32, N)
	for i := 0; i < N; i++ {
		next := make([]bool, n)
		rawEdges[i] = make([][]int32, n)
		for _, p := range levelStates[i] {
			var succ []bool
			for _, tr := range t.Adj[p] {
				if tr.Kind != vsa.KChar || !tr.Class.Contains(s[i]) {
					continue
				}
				if succ == nil {
					succ = make([]bool, n)
				}
				for _, q := range cl.VE[tr.To] {
					succ[q] = true
				}
			}
			if succ == nil {
				continue
			}
			lst := refBoolsToList(succ)
			rawEdges[i][p] = lst
			for _, q := range lst {
				next[q] = true
			}
		}
		levelStates[i+1] = refBoolsToList(next)
	}
	finalOK := false
	for _, q := range levelStates[N] {
		if q == t.Final {
			finalOK = true
		}
	}
	if !finalOK {
		e.empty = true
		return e, nil
	}
	levelStates[N] = []int32{t.Final}

	alive := make([][]bool, N+1)
	alive[N] = make([]bool, n)
	alive[N][t.Final] = true
	for i := N - 1; i >= 0; i-- {
		alive[i] = make([]bool, n)
		for _, p := range levelStates[i] {
			for _, q := range rawEdges[i][p] {
				if alive[i+1][q] {
					alive[i][p] = true
					break
				}
			}
		}
	}

	letterOf := refInternLetters(t, ct, e)

	e.levels = make([][]GraphNode, N+1)
	idxAt := make([][]int32, N+1)
	for i := 0; i <= N; i++ {
		idxAt[i] = make([]int32, n)
		for k := range idxAt[i] {
			idxAt[i][k] = -1
		}
		for _, q := range levelStates[i] {
			if !alive[i][q] {
				continue
			}
			idxAt[i][q] = int32(len(e.levels[i]))
			e.levels[i] = append(e.levels[i], GraphNode{State: q, Letter: letterOf[q]})
		}
	}
	if len(e.levels[0]) == 0 {
		e.empty = true
		return e, nil
	}
	for i := 0; i < N; i++ {
		for k := range e.levels[i] {
			node := &e.levels[i][k]
			var pairs []letterTarget
			for _, q := range rawEdges[i][node.State] {
				if j := idxAt[i+1][q]; j >= 0 {
					pairs = append(pairs, letterTarget{letterOf[q], j})
				}
			}
			node.TargetLetters, node.TargetsByLetter = groupByLetter(pairs)
		}
	}
	var startPairs []letterTarget
	for k := range e.levels[0] {
		startPairs = append(startPairs, letterTarget{e.levels[0][k].Letter, int32(k)})
	}
	e.startLetters, e.startByLetter = groupByLetter(startPairs)

	e.letters = make([]int32, N+1)
	e.sets = make([][]int32, N+1)
	return e, nil
}

func refInternLetters(t *vsa.VSA, ct *vsa.ConfigTable, e *refEnumerator) []int32 {
	n := t.NumStates()
	type entry struct {
		key string
		cfg vsa.Config
	}
	seen := map[string]bool{}
	var entries []entry
	for q := 0; q < n; q++ {
		cfg := ct.Cfg[q]
		if cfg == nil {
			cfg = make(vsa.Config, len(t.Vars))
		}
		k := cfg.Key()
		if !seen[k] {
			seen[k] = true
			entries = append(entries, entry{key: k, cfg: cfg})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	id := make(map[string]int32, len(entries))
	e.configs = make([]vsa.Config, len(entries))
	for i, en := range entries {
		id[en.key] = int32(i)
		e.configs[i] = en.cfg
	}
	letterOf := make([]int32, n)
	for q := 0; q < n; q++ {
		cfg := ct.Cfg[q]
		if cfg == nil {
			cfg = make(vsa.Config, len(t.Vars))
		}
		letterOf[q] = id[cfg.Key()]
	}
	return letterOf
}

func refBoolsToList(b []bool) []int32 {
	var out []int32
	for i, ok := range b {
		if ok {
			out = append(out, int32(i))
		}
	}
	return out
}

func (e *refEnumerator) next() (t span.Tuple, ok bool) {
	if e.empty || e.done {
		return nil, false
	}
	if !e.started {
		e.started = true
		if !e.minString(0) {
			e.done = true
			return nil, false
		}
		return e.decode(), true
	}
	if !e.nextString() {
		e.done = true
		return nil, false
	}
	return e.decode(), true
}

func (e *refEnumerator) all() []span.Tuple {
	var out []span.Tuple
	for {
		t, ok := e.next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

func (e *refEnumerator) lettersInto(l int) func(yield func(letters []int32, byLetter [][]int32)) {
	return func(yield func([]int32, [][]int32)) {
		if l == 0 {
			yield(e.startLetters, e.startByLetter)
			return
		}
		for _, u := range e.sets[l-1] {
			node := &e.levels[l-1][u]
			yield(node.TargetLetters, node.TargetsByLetter)
		}
	}
}

func (e *refEnumerator) minLetterInto(l int) (int32, bool) {
	best := int32(-1)
	e.lettersInto(l)(func(letters []int32, _ [][]int32) {
		if len(letters) > 0 && (best < 0 || letters[0] < best) {
			best = letters[0]
		}
	})
	return best, best >= 0
}

func (e *refEnumerator) nextLetterInto(l int, after int32) (int32, bool) {
	best := int32(-1)
	e.lettersInto(l)(func(letters []int32, _ [][]int32) {
		k := sort.Search(len(letters), func(i int) bool { return letters[i] > after })
		if k < len(letters) && (best < 0 || letters[k] < best) {
			best = letters[k]
		}
	})
	return best, best >= 0
}

func (e *refEnumerator) setLevel(l int, letter int32) {
	e.letters[l] = letter
	var merged []int32
	e.lettersInto(l)(func(letters []int32, byLetter [][]int32) {
		k := sort.Search(len(letters), func(i int) bool { return letters[i] >= letter })
		if k < len(letters) && letters[k] == letter {
			merged = refMergeSorted(merged, byLetter[k])
		}
	})
	e.sets[l] = merged
}

func refMergeSorted(a, b []int32) []int32 {
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func (e *refEnumerator) minString(l int) bool {
	for i := l; i <= e.n; i++ {
		letter, ok := e.minLetterInto(i)
		if !ok {
			return false
		}
		e.setLevel(i, letter)
	}
	return true
}

func (e *refEnumerator) nextString() bool {
	for i := e.n; i >= 0; i-- {
		letter, ok := e.nextLetterInto(i, e.letters[i])
		if !ok {
			continue
		}
		e.setLevel(i, letter)
		if e.minString(i + 1) {
			return true
		}
	}
	return false
}

func (e *refEnumerator) decode() span.Tuple {
	t := make(span.Tuple, len(e.vars))
	for vi := range e.vars {
		start, end := -1, -1
		for i := 0; i <= e.n; i++ {
			st := e.configs[e.letters[i]][vi]
			if start < 0 && st != vsa.W {
				start = i + 1
			}
			if end < 0 && st == vsa.C {
				end = i + 1
				break
			}
		}
		t[vi] = span.Span{Start: start, End: end}
	}
	return t
}
