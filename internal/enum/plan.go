package enum

import (
	"context"
	"sort"
	"time"

	"spanjoin/internal/bitset"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// Plan is the document-independent compiled state of a functional
// vset-automaton: the trimmed automaton, its closures, the interned
// configuration letters, the per-state character adjacency (kept as the
// per-transition reference build's input), and the byte-class compiled
// transition table. A Plan is immutable after NewPlan
// and safe to share between any number of enumerators and goroutines; the
// corpus compiled-query cache stores one per cached query, so its cost —
// including the transition-table construction — is paid exactly once per
// query however many documents, workers and Eval calls consume it.
type Plan struct {
	vars      span.VarList
	auto      *vsa.VSA
	cl        *vsa.Closures
	tt        *vsa.TransitionTable
	link      *linkLists
	letterOf  []int32
	configs   []vsa.Config
	charAdj   [][]vsa.Tr
	emptyLang bool
	buildDur  time.Duration
}

// maxLinkListEntries caps the precomputed per-class successor lists at 2²¹
// entries (8 MB of int32s): huge automata (per-document equality automata,
// big joins) skip the precompute and link off the matrix rows instead.
const maxLinkListEntries = 1 << 21

// linkLists is the level-linking accelerator: for every byte class c and
// state p it stores the successor states of M_c's row p pre-sorted by
// (letter, state) — exactly the emission order of the layered graph's
// letter-grouped edges. Linking one node is then a single pass over its
// list with an aliveness filter, no per-node counting sort.
type linkLists struct {
	arena []int32
	span  [][2]int32 // indexed class*n + state
}

// lists returns the pre-sorted successor list of state q under class c.
func (ll *linkLists) list(base int, q int32) []int32 {
	sp := ll.span[base+int(q)]
	return ll.arena[sp[0]:sp[1]]
}

// buildLinkLists materializes the sorted successor lists, or returns nil
// when the automaton is too big for the cap.
func buildLinkLists(tt *vsa.TransitionTable, letterOf []int32, n int) *linkLists {
	total := 0
	for c := 0; c < tt.NumClasses(); c++ {
		m := tt.ClassMat(c)
		if m == nil {
			continue
		}
		for q := 0; q < n; q++ {
			total += m.Row(q).Count()
		}
		if total > maxLinkListEntries {
			return nil
		}
	}
	ll := &linkLists{
		arena: make([]int32, 0, total),
		span:  make([][2]int32, tt.NumClasses()*n),
	}
	var buf []int32
	for c := 0; c < tt.NumClasses(); c++ {
		m := tt.ClassMat(c)
		if m == nil {
			continue
		}
		base := c * n
		for q := 0; q < n; q++ {
			buf = m.Row(q).AppendOnes(buf[:0])
			// AppendOnes is ascending by state; a stable sort by letter
			// yields (letter, state) order.
			sort.SliceStable(buf, func(i, j int) bool {
				return letterOf[buf[i]] < letterOf[buf[j]]
			})
			start := int32(len(ll.arena))
			ll.arena = append(ll.arena, buf...)
			ll.span[base+q] = [2]int32{start, int32(len(ll.arena))}
		}
	}
	return ll
}

// NewPlan trims a, verifies functionality, and compiles every
// document-independent artifact, including the byte-class transition table.
// It returns vsa.ErrNotFunctional (wrapped) for non-functional automata.
func NewPlan(a *vsa.VSA) (*Plan, error) {
	return newPlan(a, true)
}

// newPlan is NewPlan with the transition table optional: single-use plans
// (per-document automata, the differential reference) skip the table and
// link-list construction, whose cost only pays off across repeated builds.
func newPlan(a *vsa.VSA, withTable bool) (*Plan, error) {
	t0 := time.Now()
	t, ct, err := a.RequireFunctional()
	if err != nil {
		return nil, err
	}
	p := &Plan{vars: t.Vars, auto: t}
	defer func() { p.buildDur = time.Since(t0) }()
	if t.NumStates() == 2 && t.NumTransitions() == 0 && t.Init != t.Final {
		p.emptyLang = true
		return p, nil
	}
	p.cl = t.NewClosures()
	p.letterOf, p.configs = internLetters(t, ct)
	p.charAdj = make([][]vsa.Tr, t.NumStates())
	for q := range p.charAdj {
		for _, tr := range t.Adj[q] {
			if tr.Kind == vsa.KChar {
				p.charAdj[q] = append(p.charAdj[q], tr)
			}
		}
	}
	if withTable {
		p.tt = vsa.NewTransitionTable(t, p.cl)
		p.link = buildLinkLists(p.tt, p.letterOf, t.NumStates())
	}
	return p, nil
}

// Vars returns the variable list of the compiled spanner.
func (p *Plan) Vars() span.VarList { return p.vars }

// BuildDuration reports the wall time NewPlan spent compiling this plan
// — the number a plan_build trace span records when the compilation
// actually ran this query (memoized plans are free and record nothing).
func (p *Plan) BuildDuration() time.Duration { return p.buildDur }

// ByteClasses reports the number of byte equivalence classes of the
// compiled transition table (0 for empty-language plans, which carry none).
func (p *Plan) ByteClasses() int {
	if p.tt == nil {
		return 0
	}
	return p.tt.NumClasses()
}

// NewEnumerator returns a fresh enumerator over the plan with its own build
// arenas and cursor. No document is prepared: call Reset before Next.
func (p *Plan) NewEnumerator() *Enumerator {
	e := &Enumerator{
		vars:      p.vars,
		empty:     true, // nothing prepared yet
		emptyLang: p.emptyLang,
		configs:   p.configs,
		auto:      p.auto,
		cl:        p.cl,
		tt:        p.tt,
		link:      p.link,
		letterOf:  p.letterOf,
		charAdj:   p.charAdj,
	}
	if !p.emptyLang {
		e.mergeRow = bitset.NewRow(p.auto.NumStates())
	}
	return e
}

// Prepare builds the layered graph for s on a fresh enumerator of the plan.
func (p *Plan) Prepare(s string) *Enumerator {
	e := p.NewEnumerator()
	e.Reset(s)
	return e
}

// EvalAllDocsPlan is EvalAllDocs for a plan compiled ahead of time: the
// worker pool shares every compiled artifact, so per-worker setup is one
// arena allocation and the per-document cost is a graph rebuild.
func EvalAllDocsPlan(p *Plan, docs []string, workers int) (span.VarList, [][]span.Tuple, error) {
	return EvalAllDocsPlanCtx(context.Background(), p, docs, workers)
}
