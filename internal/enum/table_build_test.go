package enum

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// graphsEqual compares two enumerators' layered graphs structurally:
// levels (states and letters), edges (letter-grouped targets) and the
// virtual start fan-out must be identical, node by node.
func graphsEqual(matrix, ref *Enumerator) error {
	if matrix.Empty() != ref.Empty() {
		return fmt.Errorf("emptiness: matrix %v, ref %v", matrix.Empty(), ref.Empty())
	}
	if matrix.Empty() {
		return nil
	}
	ml, rl := matrix.Levels(), ref.Levels()
	if len(ml) != len(rl) {
		return fmt.Errorf("level count: matrix %d, ref %d", len(ml), len(rl))
	}
	groupsEqual := func(aL []int32, aT [][]int32, bL []int32, bT [][]int32) bool {
		if len(aL) != len(bL) {
			return false
		}
		for k := range aL {
			if aL[k] != bL[k] || len(aT[k]) != len(bT[k]) {
				return false
			}
			for j := range aT[k] {
				if aT[k][j] != bT[k][j] {
					return false
				}
			}
		}
		return true
	}
	for i := range ml {
		if len(ml[i]) != len(rl[i]) {
			return fmt.Errorf("level %d: matrix %d nodes, ref %d", i, len(ml[i]), len(rl[i]))
		}
		for k := range ml[i] {
			mn, rn := &ml[i][k], &rl[i][k]
			if mn.State != rn.State || mn.Letter != rn.Letter {
				return fmt.Errorf("level %d node %d: matrix (%d,%d), ref (%d,%d)",
					i, k, mn.State, mn.Letter, rn.State, rn.Letter)
			}
			if !groupsEqual(mn.TargetLetters, mn.TargetsByLetter, rn.TargetLetters, rn.TargetsByLetter) {
				return fmt.Errorf("level %d node %d: edge groups differ", i, k)
			}
		}
	}
	if !groupsEqual(matrix.startLetters, matrix.startByLetter, ref.startLetters, ref.startByLetter) {
		return fmt.Errorf("start fan-out differs")
	}
	return nil
}

// checkBuildVsRef builds s both ways and requires identical graphs and
// identical tuple streams.
func checkBuildVsRef(t *testing.T, a *vsa.VSA, s string) {
	t.Helper()
	m, err := Prepare(a, s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := PrepareRef(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.refBuild {
		t.Fatal("PrepareRef did not select the reference build")
	}
	if err := graphsEqual(m, r); err != nil {
		t.Fatalf("graph mismatch on %q: %v", s, err)
	}
	// PrepareOnce (table-less single-use plan) must agree too.
	o, err := PrepareOnce(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if o.tt != nil {
		t.Fatal("PrepareOnce compiled a transition table")
	}
	if err := graphsEqual(m, o); err != nil {
		t.Fatalf("PrepareOnce graph mismatch on %q: %v", s, err)
	}
	mn, me := m.GraphSize()
	rn, re := r.GraphSize()
	if mn != rn || me != re {
		t.Fatalf("graph size on %q: matrix (%d,%d), ref (%d,%d)", s, mn, me, rn, re)
	}
	if !tuplesEqual(m.All(), r.All()) {
		t.Fatalf("tuple streams differ on %q", s)
	}
}

// TestMatrixBuildMatchesReferenceOnPatterns cross-validates the byte-class
// matrix sweep against the preserved per-transition build on compiled
// patterns over random documents, including patterns whose byte classes go
// beyond {a, b} and documents containing dead bytes.
func TestMatrixBuildMatchesReferenceOnPatterns(t *testing.T) {
	patterns := []string{
		"a*x{a*}a*",
		".*x{a+}.*y{b+}.*",
		"x{.*}y{.*}",
		"(a|b)*x{(a|b)+}(a|b)*",
		"[^0-9]*x{[0-9]+}[^0-9]*",
		".*x{a+b}.*",
	}
	alpha := "ab01z"
	r := rand.New(rand.NewSource(4242))
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for trial := 0; trial < 10; trial++ {
			b := make([]byte, r.Intn(14))
			for i := range b {
				b[i] = alpha[r.Intn(len(alpha))]
			}
			checkBuildVsRef(t, a, string(b))
		}
		checkBuildVsRef(t, a, "")
	}
}

// TestMatrixBuildMatchesReferenceOnRandomAutomata widens the property to
// random functional vset-automata with ε/variable tangles.
func TestMatrixBuildMatchesReferenceOnRandomAutomata(t *testing.T) {
	r := rand.New(rand.NewSource(4243))
	vars := span.NewVarList("x", "y")
	for i := 0; i < 120; i++ {
		a := oracle.RandomFunctionalVSA(r, vars, 5, 14)
		for _, s := range []string{"", "a", "ab", "aab", "abba", "abcab"} {
			checkBuildVsRef(t, a, s)
		}
	}
}

// TestMatrixResetSharedPlan: enumerators and clones over one plan must
// agree with the reference across Reset cycles (the corpus worker shape).
func TestMatrixResetSharedPlan(t *testing.T) {
	a := rgx.MustCompilePattern(".*x{a+}.*y{b+}.*")
	p, err := NewPlan(a)
	if err != nil {
		t.Fatal(err)
	}
	if p.ByteClasses() < 2 {
		t.Fatalf("ByteClasses = %d, want ≥ 2", p.ByteClasses())
	}
	e := p.NewEnumerator()
	c := e.Clone()
	docs := []string{"ab", "", "aabba", "zzz", "ba", strings.Repeat("ab", 20)}
	for _, doc := range docs {
		e.Reset(doc)
		c.Reset(doc)
		r, err := PrepareRef(a, doc)
		if err != nil {
			t.Fatal(err)
		}
		want := r.All()
		if !tuplesEqual(e.All(), want) {
			t.Fatalf("plan enumerator differs from reference on %q", doc)
		}
		if !tuplesEqual(c.All(), want) {
			t.Fatalf("plan clone differs from reference on %q", doc)
		}
	}
}

// TestMatrixBuildDeadByteFastPath: a byte no transition accepts must empty
// the result (and the fast path must not corrupt later Resets).
func TestMatrixBuildDeadByteFastPath(t *testing.T) {
	a := rgx.MustCompilePattern("(a|b)*x{a+}(a|b)*")
	p, err := NewPlan(a)
	if err != nil {
		t.Fatal(err)
	}
	e := p.NewEnumerator()
	e.Reset("aaQaa") // Q is dead: forward sweep exits at position 2
	if !e.Empty() {
		t.Fatal("document with a dead byte must have an empty result")
	}
	e.Reset("aa")
	r, _ := PrepareRef(a, "aa")
	if !tuplesEqual(e.All(), r.All()) {
		t.Fatal("Reset after the dead-byte fast path diverges from the reference")
	}
}

// FuzzBuildVsRef is the differential fuzz harness for the compiled
// transition table: arbitrary documents (raw fuzz bytes, so all 256 byte
// values and every byte class appear) through a fuzz-chosen pattern must
// produce identical layered graphs and identical tuple streams under the
// matrix sweep and the per-transition reference build.
func FuzzBuildVsRef(f *testing.F) {
	patterns := []string{
		"a*x{a*}a*",
		"(a|b)*x{a+}(a|b)*",
		"x{.*}y{.*}",
		"[^0-9]*x{[0-9]+}[^0-9]*",
		".*x{a+b}.*",
		"(a|b)*x{a}y{b?}(a|b)*",
	}
	f.Add(uint8(0), "aaa")
	f.Add(uint8(1), "abba")
	f.Add(uint8(3), "12x34")
	f.Add(uint8(2), "\x00\xffa")
	f.Add(uint8(4), "aabab")
	f.Fuzz(func(t *testing.T, pi uint8, doc string) {
		if len(doc) > 32 {
			doc = doc[:32]
		}
		a := rgx.MustCompilePattern(patterns[int(pi)%len(patterns)])
		checkBuildVsRef(t, a, doc)
	})
}

// TestScratchPoolDropsOversized: the build-scratch pool must not retain
// arenas grown by a huge document — putScratch drops anything over the
// cap so steady-state memory tracks the working set, while ordinary
// scratches keep cycling through the pool.
func TestScratchPoolDropsOversized(t *testing.T) {
	small := new(prepScratch)
	small.init(64, 200, 4)
	if small.retainedBytes() > maxScratchRetain {
		t.Fatalf("small scratch accounts %d bytes, expected under the %d cap",
			small.retainedBytes(), maxScratchRetain)
	}
	if !putScratch(small) {
		t.Fatal("small scratch must be pooled")
	}

	big := new(prepScratch)
	big.init(512, 400_000, 4) // two (N+1)×n matrices ≈ 26 MB
	if big.retainedBytes() <= maxScratchRetain {
		t.Fatalf("oversized scratch accounts only %d bytes", big.retainedBytes())
	}
	drops := scratchDrops.Load()
	if putScratch(big) {
		t.Fatal("oversized scratch must be dropped, not pooled")
	}
	if scratchDrops.Load() != drops+1 {
		t.Fatal("drop counter did not advance")
	}
}

// TestBuildDropsOversizedScratch drives the cap through the real build
// path: one huge document must route its scratch to the drop branch.
func TestBuildDropsOversizedScratch(t *testing.T) {
	a := rgx.MustCompilePattern("a*x{a}a*")
	doc := strings.Repeat("a", 600_000)
	drops := scratchDrops.Load()
	e, err := Prepare(a, doc)
	if err != nil {
		t.Fatal(err)
	}
	if e.Empty() {
		t.Fatal("huge document unexpectedly empty")
	}
	if scratchDrops.Load() <= drops {
		t.Fatal("huge build did not drop its scratch")
	}
}
