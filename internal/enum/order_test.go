package enum_test

import (
	"math/rand"
	"testing"

	"spanjoin/internal/enum"
	"spanjoin/internal/oracle"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// configWord reconstructs the configuration word of a tuple: the radix key
// the enumerator orders by.
func configWord(vars span.VarList, t span.Tuple, n int) string {
	out := make([]byte, 0, (n+1)*len(vars))
	for i := 0; i <= n; i++ {
		pos := i + 1
		for v := range vars {
			switch {
			case pos < t[v].Start:
				out = append(out, 0) // w
			case pos < t[v].End:
				out = append(out, 1) // o
			default:
				out = append(out, 2) // c
			}
		}
	}
	return string(out)
}

// TestRadixOrderStrictlyIncreasing: the emitted configuration words must be
// strictly increasing — this is both the dedup guarantee and the
// deterministic-order contract.
func TestRadixOrderStrictlyIncreasing(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	patterns := []string{
		".*x{a+}.*y{b+}.*",
		"x{.*}y{.*}",
		"(a|b)*x{(a|b)+}(a|b)*",
		".*x{.}.*y{.}.*z{.}.*",
	}
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		for trial := 0; trial < 4; trial++ {
			n := r.Intn(5) + 2
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + r.Intn(2))
			}
			s := string(b)
			e, err := enum.Prepare(a, s)
			if err != nil {
				t.Fatal(err)
			}
			vars := e.Vars()
			prev := ""
			for {
				tu, ok := e.Next()
				if !ok {
					break
				}
				w := configWord(vars, tu, n)
				if prev != "" && w <= prev {
					t.Fatalf("[[%s]](%q): radix order violated (%q after %q)", p, s, w, prev)
				}
				prev = w
			}
		}
	}
}

// TestEnumerationOnRandomFunctionalAutomataTwoVars widens the random
// cross-check to two variables.
func TestEnumerationOnRandomFunctionalAutomataTwoVars(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	vars := span.NewVarList("x", "y")
	for i := 0; i < 60; i++ {
		a := oracle.RandomFunctionalVSA(r, vars, 4, 9)
		for _, s := range []string{"", "a", "ba"} {
			want := oracle.EvalVSA(a, s)
			_, got, err := enum.Eval(a, s)
			if err != nil {
				t.Fatal(err)
			}
			if !oracle.EqualTupleSets(got, want) {
				t.Fatalf("trial %d on %q: got %d, want %d", i, s, len(got), len(want))
			}
		}
	}
}

// TestPrepareIsReusableAcrossStrings: one automaton, many Prepare calls —
// no shared state may leak between enumerations.
func TestPrepareIsReusableAcrossStrings(t *testing.T) {
	a := rgx.MustCompilePattern("a*x{a*}a*")
	want := map[string]int{"": 1, "a": 3, "aa": 6, "aaa": 10}
	// Interleave two enumerations to catch aliasing.
	e1, err := enum.Prepare(a, "aa")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := enum.Prepare(a, "aaa")
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := 0, 0
	for {
		_, ok1 := e1.Next()
		if ok1 {
			c1++
		}
		_, ok2 := e2.Next()
		if ok2 {
			c2++
		}
		if !ok1 && !ok2 {
			break
		}
	}
	if c1 != want["aa"] || c2 != want["aaa"] {
		t.Errorf("interleaved counts %d/%d, want %d/%d", c1, c2, want["aa"], want["aaa"])
	}
}

// TestStreamResetOrderMatchesFreshPrepare: the corpus shard path — one
// compiled base enumerator, per-worker Clones, Reset per document — must
// yield exactly the sequence (tuples and order) of a fresh Prepare on
// every document, including after the enumerator has cycled through other
// documents and after mid-stream abandonment.
func TestStreamResetOrderMatchesFreshPrepare(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	patterns := []string{
		"a*x{a*}a*",
		".*x{a+}.*y{b+}.*",
		"(a|b)*x{(a|b)+}(a|b)*",
	}
	for _, p := range patterns {
		a := rgx.MustCompilePattern(p)
		// Documents dealt across three simulated shard workers.
		var shards [3][]string
		for si := range shards {
			for d := 0; d < 4; d++ {
				n := r.Intn(7) + 1
				b := make([]byte, n)
				for i := range b {
					b[i] = byte('a' + r.Intn(2))
				}
				shards[si] = append(shards[si], string(b))
			}
		}
		base, err := enum.Prepare(a, "")
		if err != nil {
			t.Fatal(err)
		}
		workers := []*enum.Enumerator{base, base.Clone(), base.Clone()}
		for si, docs := range shards {
			e := workers[si]
			for di, doc := range docs {
				e.Reset(doc)
				var got []span.Tuple
				for {
					tu, ok := e.Next()
					if !ok {
						break
					}
					got = append(got, tu)
				}
				fresh, err := enum.Prepare(a, doc)
				if err != nil {
					t.Fatal(err)
				}
				want := fresh.All()
				if len(got) != len(want) {
					t.Fatalf("[[%s]] shard %d doc %d %q: %d tuples after Reset, fresh Prepare %d",
						p, si, di, doc, len(got), len(want))
				}
				for k := range want {
					if got[k].Compare(want[k]) != 0 {
						t.Fatalf("[[%s]] shard %d doc %d %q: order diverges at %d: %v vs %v",
							p, si, di, doc, k, got[k], want[k])
					}
				}
				// Abandon a partially drained enumeration before the next
				// Reset: the next document must be unaffected.
				if di%2 == 0 {
					e.Reset(doc)
					e.Next()
				}
			}
		}
	}
}

// TestLargeAlphabetString: bytes outside a-z, including 0x00 and 0xff.
func TestLargeAlphabetString(t *testing.T) {
	a := rgx.MustCompilePattern(`.*x{\x00+}.*`)
	s := string([]byte{0xff, 0x00, 0x00, 0x41})
	_, tuples, err := enum.Eval(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 { // [2,3⟩ [3,4⟩ [2,4⟩
		t.Errorf("got %d tuples, want 3: %v", len(tuples), tuples)
	}
}

var _ = vsa.ErrNotFunctional
