package ctxthread_test

import (
	"regexp"
	"testing"

	"spanjoin/internal/analysis/analysistest"
	"spanjoin/internal/analysis/ctxthread"
)

func TestAnalyzer(t *testing.T) {
	old := ctxthread.Scope
	ctxthread.Scope = regexp.MustCompile(`^fixture/serving$`)
	defer func() { ctxthread.Scope = old }()
	analysistest.Run(t, ctxthread.Analyzer, "testdata/src", "", "./...")
}
