// Package ctxthread enforces the engine's deadline-threading contract
// (PR 2 introduced it, PR 6 extended it to every resource limit):
//
//  1. Exported evaluation entry points — functions whose name starts
//     with Eval, Count, Sample or Page and that take a document,
//     pattern or corpus — must be cancellable: they accept a
//     context.Context, or an options value that carries a deadline
//     (a struct with a Deadline/Timeout field, or functional options
//     over such a struct), or they have a *Ctx sibling with the same
//     receiver. The rule applies to the serving surface (the root
//     package, server, client and the corpus fan-out layer), where an
//     uncancellable evaluation can wedge a request goroutine forever.
//
//  2. No production code calls the non-ctx variant of a function that
//     has a *Ctx sibling in another package: calling Stream.Eval where
//     Stream.EvalCtx exists silently discards the caller's deadline.
//     Test files are exempt (the non-ctx wrappers need their own
//     coverage), as are intra-package calls (the wrappers themselves
//     delegate to their Ctx siblings).
package ctxthread

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"spanjoin/internal/analysis"
)

// Scope matches the import paths whose exported entry points must be
// cancellable — the layers that serve traffic. Variable so tests can
// point it at fixture packages.
var Scope = regexp.MustCompile(`^spanjoin(/server|/client|/internal/corpus)?$`)

var entryPrefix = regexp.MustCompile(`^(Eval|Count|Sample|Page)`)

var Analyzer = &analysis.Analyzer{
	Name: "ctxthread",
	Doc: "evaluation entry points must thread contexts or deadlines\n\n" +
		"Exported Eval*/Count*/Sample*/Page* functions on the serving surface " +
		"must accept a context.Context or a deadline-carrying options value " +
		"(or have a *Ctx sibling), and production code must not call the " +
		"non-ctx variant of a function that has one.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := Scope.MatchString(strings.TrimSuffix(pass.ImportPath, " [xtest]"))
	for _, file := range pass.Files {
		isTest := analysis.IsTestFile(pass.Fset, file.Pos())
		if inScope && !isTest {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				checkDecl(pass, fd)
			}
		}
		if !isTest {
			checkCalls(pass, file)
		}
	}
	return nil
}

// checkDecl applies rule 1 to one function declaration.
func checkDecl(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || !entryPrefix.MatchString(name) || strings.HasSuffix(name, "Ctx") {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if !evaluatesInput(sig) {
		// Nothing corpus- or document-shaped flows in: ranked views,
		// String()-style accessors. Not an evaluation entry point.
		return
	}
	if sigCancellable(sig) || hasCtxSibling(obj, sig) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported evaluation entry point %s is not cancellable: add a context.Context parameter, deadline-carrying options (...Option), or a %sCtx sibling",
		name, name)
}

// evaluatesInput reports whether the signature takes a document/pattern
// (string or []string) or hangs off the corpus layer — the shapes whose
// evaluation cost is input-dependent and therefore must be boundable.
func evaluatesInput(sig *types.Signature) bool {
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			switch named.Obj().Name() {
			case "Corpus", "Store":
				return true
			}
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		switch t := sig.Params().At(i).Type().Underlying().(type) {
		case *types.Basic:
			if t.Kind() == types.String {
				return true
			}
		case *types.Slice:
			if b, ok := t.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.String {
				return true
			}
		}
	}
	return false
}

// sigCancellable reports whether the signature carries a context or a
// deadline-capable options value.
func sigCancellable(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if sig.Variadic() && i == sig.Params().Len()-1 {
			if s, ok := t.Underlying().(*types.Slice); ok {
				t = s.Elem()
			}
		}
		if isContext(t) || carriesDeadline(t) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// carriesDeadline recognizes deadline-capable option shapes: a struct
// (or pointer to one) with a Deadline or Timeout field, or a functional
// option func(*S) over such a struct.
func carriesDeadline(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		return hasDeadlineField(u)
	case *types.Pointer:
		if s, ok := u.Elem().Underlying().(*types.Struct); ok {
			return hasDeadlineField(s)
		}
	case *types.Signature:
		if u.Params().Len() == 1 {
			if p, ok := u.Params().At(0).Type().Underlying().(*types.Pointer); ok {
				if s, ok := p.Elem().Underlying().(*types.Struct); ok {
					return hasDeadlineField(s)
				}
			}
		}
	}
	return false
}

func hasDeadlineField(s *types.Struct) bool {
	for i := 0; i < s.NumFields(); i++ {
		switch s.Field(i).Name() {
		case "Deadline", "Timeout":
			return true
		}
	}
	return false
}

// ctxSibling resolves F's FCtx sibling: a package function for package
// functions, a method on the same named receiver type for methods.
func ctxSibling(obj *types.Func, sig *types.Signature) *types.Func {
	want := obj.Name() + "Ctx"
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want {
				return m
			}
		}
		return nil
	}
	if obj.Pkg() == nil {
		return nil
	}
	if f, ok := obj.Pkg().Scope().Lookup(want).(*types.Func); ok {
		return f
	}
	return nil
}

func hasCtxSibling(obj *types.Func, sig *types.Signature) bool {
	return ctxSibling(obj, sig) != nil
}

// checkCalls applies rule 2 to every call in the file.
func checkCalls(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || obj.Pkg() == nil || !obj.Exported() || strings.HasSuffix(obj.Name(), "Ctx") {
			return true
		}
		if obj.Pkg() == pass.Pkg {
			// Intra-package: the wrappers themselves, and the package's
			// right to use its own shorthand internally.
			return true
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sigCancellable(sig) {
			return true
		}
		if sib := ctxSibling(obj, sig); sib != nil {
			pass.Reportf(call.Pos(),
				"call to %s discards the caller's deadline: %s has a context-aware sibling %s",
				obj.Name(), obj.Name(), sib.Name())
		}
		return true
	})
}
