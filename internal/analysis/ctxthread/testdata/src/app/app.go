// Package app is production code calling the serving surface: the
// non-ctx variant of a function with a Ctx sibling is flagged here.
package app

import (
	"context"

	"fixture/serving"
)

// Use drives the serving surface.
func Use() int {
	n := serving.EvalDoc("x") // want "call to EvalDoc discards the caller's deadline"
	n += serving.EvalDocCtx(context.Background(), "x")
	n += serving.EvalDocs([]string{"x"}) // no sibling: rule 1's problem at the declaration, not ours
	n += serving.CountRunes(context.Background(), "x")
	var c serving.Corpus
	n += c.Eval("x") // want "call to Eval discards the caller's deadline"
	n += c.EvalCtx(context.Background(), "x")
	return n
}
