// Test files are exempt from the call rule: the non-ctx wrappers need
// their own coverage.
package app

import (
	"testing"

	"fixture/serving"
)

func TestWrapper(t *testing.T) {
	if serving.EvalDoc("x") != 1 {
		t.Fatal("EvalDoc")
	}
}
