// Package serving is the ctxthread fixture's in-scope serving surface
// (the test points ctxthread.Scope at it).
package serving

import "context"

// EvalDocs evaluates documents with no way to bound the work.
func EvalDocs(docs []string) int { // want "EvalDocs is not cancellable"
	total := 0
	for _, d := range docs {
		total += len(d)
	}
	return total
}

// EvalDoc is allowed: it has a Ctx sibling below.
func EvalDoc(doc string) int { return len(doc) }

// EvalDocCtx is the cancellable sibling of EvalDoc.
func EvalDocCtx(ctx context.Context, doc string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(doc)
}

// CountRunes threads a context directly.
func CountRunes(ctx context.Context, doc string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len([]rune(doc))
}

// Options carries a deadline; Option is its functional form.
type Options struct{ Timeout int }

// Option mutates Options.
type Option func(*Options)

// SampleDocs is bounded through its options value.
func SampleDocs(docs []string, opts ...Option) int {
	o := Options{}
	for _, opt := range opts {
		opt(&o)
	}
	return len(docs) + o.Timeout
}

// PageInfo takes no document or corpus: not an evaluation entry point.
func PageInfo() string { return "page" }

// Corpus hangs evaluation methods off the store layer.
type Corpus struct{}

// Eval is allowed: EvalCtx is its sibling.
func (c *Corpus) Eval(doc string) int { return len(doc) }

// EvalCtx is the cancellable sibling of Eval.
func (c *Corpus) EvalCtx(ctx context.Context, doc string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(doc)
}

// PageAll walks every stored document with no bound.
func (c *Corpus) PageAll() int { return 0 } // want "PageAll is not cancellable"
