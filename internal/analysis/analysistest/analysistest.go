// Package analysistest runs one analyzer over a golden fixture tree and
// compares its output against // want "regexp" comments in the fixture
// sources.
//
// A fixture tree is a self-contained module (a testdata directory with
// its own go.mod, so the enclosing module's go tool ignores it) whose
// packages are loaded with the same loader the spanlint driver uses —
// fixtures therefore exercise the real load/typecheck/Finish pipeline,
// not a mock. Expectations are trailing comments on the offending line:
//
//	ms, _ := open() // want "never Closed" "without checking"
//
// Each quoted string is a regular expression that must match the message
// of exactly one diagnostic reported on that line. For diagnostics that
// anchor at a comment (e.g. an allocation-gate directive), where a
// trailing comment is impossible, a want-above comment on the following
// line applies to the line before it:
//
//	//spanjoin:allocgate fixture/hot.ghost
//	// want-above "not annotated"
//
// Diagnostics with no matching expectation, and expectations with no
// matching diagnostic, fail the test.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spanjoin/internal/analysis"
	"spanjoin/internal/analysis/driver"
	"spanjoin/internal/analysis/load"
)

// expectation is one want regexp with its anchor line and consumption
// state.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the fixture module under dir with the given build tags
// (comma-separated, usually empty) and applies the analyzer to the
// packages matched by patterns ("./..." for the whole fixture tree).
func Run(t *testing.T, a *analysis.Analyzer, dir, tags string, patterns ...string) {
	t.Helper()
	fset, pkgs, err := load.Load(load.Config{Dir: dir, Tags: tags, Tests: true}, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", dir)
	}
	res, err := driver.Run([]*analysis.Analyzer{a}, fset, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, fset, pkgs)
	for _, d := range res.Diagnostics {
		if !consume(wants, filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// consume marks the first unmet expectation on file:line whose regexp
// matches msg.
func consume(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

var wantMarker = regexp.MustCompile(`//\s*want(-above)?\s`)

// collectWants extracts every want comment from the loaded fixture
// syntax. Files shared between package views are scanned once.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	seen := map[string]bool{}
	for _, p := range pkgs {
		for _, file := range p.Files {
			pos := fset.Position(file.Pos())
			if seen[pos.Filename] {
				continue
			}
			seen[pos.Filename] = true
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					loc := wantMarker.FindStringSubmatchIndex(c.Text)
					if loc == nil {
						continue
					}
					line := fset.Position(c.Pos()).Line
					if loc[2] >= 0 { // the -above form anchors one line up
						line--
					}
					base := filepath.Base(pos.Filename)
					for _, raw := range parseWantStrings(t, base, line, c.Text[loc[1]:]) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", base, line, raw, err)
						}
						wants = append(wants, &expectation{file: base, line: line, re: re, raw: raw})
					}
				}
			}
		}
	}
	return wants
}

// parseWantStrings reads the sequence of Go-quoted strings after a want
// marker.
func parseWantStrings(t *testing.T, file string, line int, rest string) []string {
	t.Helper()
	var out []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" || rest[0] != '"' {
			break
		}
		end := 1
		for end < len(rest) && rest[end] != '"' {
			if rest[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(rest) {
			t.Fatalf("%s:%d: unterminated want string in %q", file, line, rest)
		}
		s, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want string %q: %v", file, line, rest[:end+1], err)
		}
		out = append(out, s)
		rest = rest[end+1:]
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted regexp", file, line)
	}
	return out
}
