// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis, built on the standard
// library only (go/ast, go/types, go/importer) so the repo's custom
// analyzers — the spanlint suite — need nothing outside the Go
// toolchain. It deliberately mirrors the x/tools shape (Analyzer, Pass,
// Diagnostic) so the suite can migrate to the real multichecker
// unchanged if the dependency ever becomes available.
//
// Two deviations from x/tools, both deliberate:
//
//   - Units, not compilations: a Pass analyzes one package view
//     including its in-package _test.go files (and external test
//     packages as their own view), because several spanlint invariants
//     — unclosed streams, sentinel comparisons, failpoint arming —
//     live mostly in test and example code.
//
//   - Program-level facts: instead of per-object serialized facts, an
//     analyzer's Run may record arbitrary values on the Pass, and an
//     optional Finish hook sees every package's facts at once. That is
//     how the taxonomy analyzer implements its cross-file consistency
//     check (a sentinel added to internal/resilience but missing from
//     the server status map or the spanctl exit-code table).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only selection and
	// JSON output. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description printed by spanlint -help.
	Doc string
	// Run analyzes one package view and reports diagnostics via
	// pass.Report. Returning an error aborts the whole lint run — it
	// means the analyzer itself failed, not that the code is bad.
	Run func(pass *Pass) error
	// Finish, if non-nil, runs once after every package's Run with the
	// facts they exported; it implements whole-program checks. Reported
	// diagnostics join the per-package ones.
	Finish func(prog *Program) []Diagnostic
}

// Pass carries one package view through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package view's syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package. For an augmented view it includes
	// in-package test declarations.
	Pkg *types.Package
	// TypesInfo records types, definitions, uses and selections for the
	// view's syntax.
	TypesInfo *types.Info
	// ImportPath is the package's import path; external test packages
	// carry the " [xtest]" suffix.
	ImportPath string

	diags *[]Diagnostic
	facts *[]Fact
}

// NewPass assembles a Pass; drivers and the analysistest harness call
// it, analyzers never do.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, importPath string, diags *[]Diagnostic, facts *[]Fact) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		ImportPath: importPath,
		diags:      diags,
		facts:      facts,
	}
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact records a program-level fact for the analyzer's Finish hook.
func (p *Pass) ExportFact(value any) {
	*p.facts = append(*p.facts, Fact{Package: p.ImportPath, Value: value})
}

// Fact is one value exported by a Run for its analyzer's Finish.
type Fact struct {
	Package string
	Value   any
}

// Diagnostic is one reported violation, position resolved.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Program is the whole-program view handed to Finish hooks.
type Program struct {
	Fset *token.FileSet
	// Facts are the values exported by this analyzer's Runs, in package
	// load order.
	Facts []Fact
}

// IsTestFile reports whether the file at pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
