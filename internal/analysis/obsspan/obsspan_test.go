package obsspan_test

import (
	"testing"

	"spanjoin/internal/analysis/analysistest"
	"spanjoin/internal/analysis/obsspan"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, obsspan.Analyzer, "testdata/src", "", "./...")
}
