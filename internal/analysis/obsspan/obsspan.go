// Package obsspan machine-checks the stage-tracing taxonomy of the
// observability layer. A function annotated //spanjoin:stage <name>
// claims to be the recording site of that pipeline stage — the place
// that measures admission waits, cache lookups, plan builds, prefilter
// sweeps, enumeration, counting, WAL appends/fsyncs or snapshot cycles
// into the per-query trace. The annotation is what CONTRIBUTING.md asks
// of every new pipeline stage, and this analyzer is what keeps it
// honest: an annotated body that never passes the matching Stage
// constant to a recording call (Observe, ObserveItems, Start) is a
// stage that silently vanished from every trace, slowlog entry and
// `spanctl eval -trace` breakdown.
//
// Two further rules keep the taxonomy closed: the directive must name
// exactly one stage (repeat it for multi-stage functions), and the name
// must exist in internal/obs — the known set is built from the obs
// constants themselves, so the analyzer cannot drift from the taxonomy
// it enforces.
package obsspan

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"spanjoin/internal/analysis"
	"spanjoin/internal/obs"
)

// Directive annotates a function as the recording site of one pipeline
// stage: //spanjoin:stage <name>. Repeat it for functions that record
// several stages.
const Directive = "//spanjoin:stage"

// knownStages mirrors the stage taxonomy of internal/obs, built from
// the constants themselves so the two cannot drift.
var knownStages = map[string]bool{
	string(obs.StageAdmission): true,
	string(obs.StageCache):     true,
	string(obs.StagePlan):      true,
	string(obs.StagePrefilter): true,
	string(obs.StageEnumerate): true,
	string(obs.StageCount):     true,
	string(obs.StageWALAppend): true,
	string(obs.StageWALSync):   true,
	string(obs.StageSnapshot):  true,
}

var Analyzer = &analysis.Analyzer{
	Name: "obsspan",
	Doc: "//spanjoin:stage functions record their stage into the trace\n\n" +
		"An annotated function must pass the matching obs.Stage constant " +
		"to a recording call somewhere in its body; the stage name must " +
		"exist in internal/obs's taxonomy. An annotation without a " +
		"recording is a stage missing from every trace and slowlog entry.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				checkDirective(pass, fd, c)
			}
		}
	}
	return nil
}

// checkDirective validates one doc-comment line of fd against the three
// rules: well-formed, known stage, actually recorded.
func checkDirective(pass *analysis.Pass, fd *ast.FuncDecl, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, Directive) {
		return
	}
	rest := strings.TrimPrefix(text, Directive)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return // a longer word, e.g. //spanjoin:stages — not this directive
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		pass.Reportf(fd.Name.Pos(),
			"%s wants exactly one stage name (repeat the directive for multi-stage functions), got %q",
			Directive, strings.TrimSpace(rest))
		return
	}
	stage := fields[0]
	if !knownStages[stage] {
		pass.Reportf(fd.Name.Pos(),
			"%s names unknown stage %q: the taxonomy lives in internal/obs — add the Stage constant before annotating",
			Directive, stage)
		return
	}
	if fd.Body == nil || !recordsStage(pass, fd.Body, stage) {
		pass.Reportf(fd.Name.Pos(),
			"%s is annotated %s %s but never records that stage: pass the matching Stage constant to a recording call (Observe/ObserveItems/Start)",
			fd.Name.Name, Directive, stage)
	}
}

// recordsStage reports whether any call in body (closures included —
// worker completions record from goroutines) takes the stage's constant
// as an argument.
func recordsStage(pass *analysis.Pass, body *ast.BlockStmt, stage string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if isStageConst(pass, arg, stage) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// isStageConst reports whether e is a constant of a type named Stage
// whose value is the stage name. Matching on the constant's value and
// type (not the identifier) keeps aliases honest: obs.StagePlan and the
// public spanjoin.StagePlanBuild are the same recording.
func isStageConst(pass *analysis.Pass, e ast.Expr, stage string) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String || constant.StringVal(tv.Value) != stage {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "Stage"
}
