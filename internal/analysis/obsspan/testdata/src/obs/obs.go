// Package obs is the fixture's stand-in for spanjoin/internal/obs: the
// Stage type, a subset of the stage constants (values match the real
// taxonomy — the analyzer's known set comes from the real package), and
// a Trace with the recording surface.
package obs

import "time"

// Stage names one pipeline phase.
type Stage string

const (
	StageCache     Stage = "cache"
	StagePlan      Stage = "plan_build"
	StagePrefilter Stage = "prefilter"
	StageEnumerate Stage = "enumerate"
	StageWALAppend Stage = "wal_append"
	StageWALSync   Stage = "wal_fsync"
)

// Trace accumulates per-stage timings.
type Trace struct{}

// Observe records d against the stage.
func (t *Trace) Observe(s Stage, d time.Duration) { _, _ = s, d }

// ObserveItems records d and n work units against the stage.
func (t *Trace) ObserveItems(s Stage, d time.Duration, n int64) { _, _, _ = s, d, n }

// Span is an open stage measurement.
type Span struct{}

// Start opens a span for the stage.
func (t *Trace) Start(s Stage) Span { _ = s; return Span{} }

// End closes the span.
func (sp Span) End() {}
