// Package pipeline is the obsspan golden fixture: annotated recording
// sites that keep their promise, and each way of breaking it.
package pipeline

import (
	"time"

	"fixture/obs"
)

var tr = &obs.Trace{}

// Lookup records the stage it is annotated with: clean.
//
//spanjoin:stage cache
func Lookup() {
	t0 := time.Now()
	tr.ObserveItems(obs.StageCache, time.Since(t0), 1)
}

// Append records both of its annotated stages: clean.
//
//spanjoin:stage wal_append
//spanjoin:stage wal_fsync
func Append() {
	tr.Observe(obs.StageWALSync, time.Millisecond)
	tr.Observe(obs.StageWALAppend, time.Millisecond)
}

// Spanned records through the Start/End span form: clean.
//
//spanjoin:stage prefilter
func Spanned() {
	sp := tr.Start(obs.StagePrefilter)
	defer sp.End()
}

// Deferred records from a closure, the shape of a worker-pool
// completion: clean.
//
//spanjoin:stage enumerate
func Deferred() {
	go func() {
		tr.ObserveItems(obs.StageEnumerate, time.Second, 10)
	}()
}

// Forgot promises a stage and records nothing.
//
//spanjoin:stage enumerate
func Forgot() { // want "annotated //spanjoin:stage enumerate but never records"
	_ = time.Now()
}

// Mismatched promises plan_build but records cache.
//
//spanjoin:stage plan_build
func Mismatched() { // want "annotated //spanjoin:stage plan_build but never records"
	tr.Observe(obs.StageCache, time.Millisecond)
}

// Unknown names a stage outside the taxonomy.
//
//spanjoin:stage warp_drive
func Unknown() { // want "unknown stage \"warp_drive\""
	tr.Observe("warp_drive", time.Millisecond)
}

// Bare carries a nameless directive.
//
//spanjoin:stage
func Bare() { // want "wants exactly one stage name"
	tr.Observe(obs.StageCache, time.Millisecond)
}

// Unrelated uses a longer spanjoin: word — not this directive, not
// checked.
//
//spanjoin:stagecraft prop
func Unrelated() {}
