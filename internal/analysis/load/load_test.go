package load

import (
	"go/token"
	"strings"
	"testing"
)

// TestLoadModule loads the whole module with tests and checks the views
// analyzers depend on: augmented packages carry _test.go syntax,
// external test packages appear as their own [xtest] units, and type
// information resolves across both module-internal and stdlib imports.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	fset, pkgs, err := Load(Config{Tests: true}, "spanjoin/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := map[string]bool{}
	var hasXTest bool
	for _, p := range pkgs {
		byPath[p.ImportPath] = true
		if strings.HasSuffix(p.ImportPath, " [xtest]") {
			hasXTest = true
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: incomplete package view", p.ImportPath)
		}
	}
	for _, want := range []string{"spanjoin", "spanjoin/server", "spanjoin/client", "spanjoin/internal/corpus", "spanjoin/internal/enum"} {
		if !byPath[want] {
			t.Errorf("missing package %s", want)
		}
	}
	if !hasXTest {
		t.Error("no external test package loaded; xtest views are part of the lint surface")
	}
	// A package with in-package tests must surface them in its (single)
	// analysis view — the test variant replaces the plain compile.
	var sawTestFile bool
	for _, p := range pkgs {
		if p.ImportPath != "spanjoin/internal/enum" {
			continue
		}
		for _, f := range p.Files {
			if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
				sawTestFile = true
			}
		}
	}
	if !sawTestFile {
		t.Error("internal/enum view has no _test.go files; invariants cover tests")
	}
	if !byPath["spanjoin [xtest]"] {
		t.Error("root external test package not loaded as spanjoin [xtest]")
	}
	_ = token.NewFileSet()
}

// TestLoadProdOnly checks the Tests=false view excludes test files.
func TestLoadProdOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	fset, pkgs, err := Load(Config{}, "spanjoin/internal/enum")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			if name := fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
				t.Errorf("prod-only load included %s", name)
			}
		}
	}
}
