// Package load turns `go list` output into type-checked package views
// for the spanlint analyzers, using only the standard library.
//
// The usual loader for go/analysis drivers is golang.org/x/tools/go/
// packages; this repo vendors no third-party code, so load re-derives
// the small slice of it spanlint needs:
//
//   - `go list -json -deps -test -export` resolves the import graph,
//     compiles dependencies into the build cache, and reports the
//     export-data file of every external package — which go/importer's
//     gc importer can read directly via a lookup function.
//
//   - Packages of the module under analysis are type-checked from
//     source in dependency order, so analyzers see syntax trees and
//     full type information for every first-party file.
//
//   - Test code is covered by following go list's own test variants:
//     for each tested package p, `go list -test` emits `p [p.test]`
//     (p's sources plus its in-package _test.go files), recompiles of
//     every intermediate dependency against it, and the external test
//     package `p_test [p.test]` — each with an ImportMap routing
//     source-level imports to the right variant. Typechecking that
//     graph verbatim gives test files exactly the types a real
//     `go test` build gives them (no diamond of two instances of one
//     package). Analyzers then run once per source file: on `p [p.test]`
//     (reported as p), on `p_test [p.test]` (reported as "p [xtest]"),
//     and on untested packages directly; intermediate recompiles are
//     type-checked but not re-analyzed.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit.
type Package struct {
	// ImportPath is the package's import path; the external test view
	// carries a " [xtest]" suffix.
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output load consumes.
// ImportPath is the variant-qualified key (`p [q.test]` for test
// variants); ForTest names q for variants and is empty otherwise.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Standard   bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// basePath strips the ` [q.test]` variant qualifier.
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// Config tunes a Load call.
type Config struct {
	// Dir is the working directory for `go list` (the module root or any
	// directory inside it). Empty means the current directory.
	Dir string
	// Tags is a comma-separated build-tag list passed to `go list` (e.g.
	// "failpoints"), empty for the default build.
	Tags string
	// Tests, when false, skips test files and external test packages.
	Tests bool
}

// Load lists, parses and type-checks the packages matched by patterns.
func Load(cfg Config, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-json", "-deps", "-export"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	if cfg.Tags != "" {
		args = append(args, "-tags", cfg.Tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exportFor := map[string]string{} // plain import path -> export data file
	module := map[string]*listPackage{}
	var order []string // module package keys in go list (dependency-first) order
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthetic test binary: generated main in the build cache
		}
		if p.Export != "" && p.ForTest == "" {
			exportFor[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			if _, ok := module[p.ImportPath]; !ok {
				cp := p
				module[p.ImportPath] = &cp
				order = append(order, p.ImportPath)
			}
		}
	}
	if len(module) == 0 {
		return nil, nil, fmt.Errorf("no module packages matched %v", patterns)
	}

	// A package with a self test variant (`p [p.test]` — p's sources plus
	// in-package test files) is analyzed through the variant, not the
	// plain compile.
	selfVariant := map[string]bool{}
	for key, p := range module {
		if p.ForTest != "" && p.ForTest == basePath(key) && !strings.HasSuffix(p.Name, "_test") {
			selfVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		gc:       importer.ForCompiler(fset, "gc", lookupIn(exportFor)),
		typesFor: map[string]*types.Package{},
		module:   module,
	}
	var pkgs []*Package
	for _, key := range topoSort(order, module) {
		p := module[key]
		unit, err := ld.check(p)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case p.ForTest == "" && selfVariant[p.ImportPath]:
			// Plain compile of a tested package: its files are analyzed
			// via the test variant; keep the types for dependents only.
		case p.ForTest != "" && strings.HasSuffix(p.Name, "_test"):
			unit.ImportPath = p.ForTest + " [xtest]"
			pkgs = append(pkgs, unit)
		case p.ForTest != "" && p.ForTest != basePath(key):
			// Intermediate recompile (`dep [q.test]`): same sources as the
			// plain dep, re-typechecked against q's augmented view. Needed
			// for resolution, already analyzed elsewhere.
		case p.ForTest != "":
			unit.ImportPath = p.ForTest
			pkgs = append(pkgs, unit)
		default:
			pkgs = append(pkgs, unit)
		}
	}
	return fset, pkgs, nil
}

// lookupIn adapts the export-file map to go/importer's lookup signature.
func lookupIn(exportFor map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// topoSort orders module package keys dependency-first. `go list -deps`
// already emits dependencies before dependents, but -test interleaves
// variant subgraphs, so re-derive the order defensively. Variant
// entries list their resolved (variant-qualified) imports directly.
func topoSort(order []string, module map[string]*listPackage) []string {
	var out []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(key string)
	visit = func(key string) {
		if state[key] != 0 {
			return
		}
		state[key] = 1
		if p := module[key]; p != nil {
			deps := append([]string(nil), p.Imports...)
			sort.Strings(deps)
			for _, d := range deps {
				if _, ok := module[d]; ok {
					visit(d)
				}
			}
			out = append(out, key)
		}
		state[key] = 2
	}
	for _, key := range order {
		visit(key)
	}
	return out
}

type loader struct {
	fset     *token.FileSet
	gc       types.Importer
	typesFor map[string]*types.Package // checked module packages by variant key
	module   map[string]*listPackage
}

// resolve is the importer the type checker uses for one package: source
// import paths route through the package's ImportMap to the right test
// variant, then to the in-memory module packages, then to gc export
// data — the same resolution a real `go test` build performs.
type resolve struct {
	ld        *loader
	importMap map[string]string
}

func (r resolve) Import(path string) (*types.Package, error) {
	if mapped, ok := r.importMap[path]; ok {
		path = mapped
	}
	if p, ok := r.ld.typesFor[path]; ok {
		return p, nil
	}
	return r.ld.gc.Import(basePath(path))
}

// parse loads one source file with comments (analyzers read directives).
func (ld *loader) parse(dir, name string) (*ast.File, error) {
	if strings.HasPrefix(name, "/") {
		return parser.ParseFile(ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
	}
	return parser.ParseFile(ld.fset, dir+"/"+name, nil, parser.ParseComments|parser.SkipObjectResolution)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// check parses and type-checks one module package (plain or variant)
// and registers its types for dependents.
func (ld *loader) check(p *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string(nil), p.GoFiles...), p.CgoFiles...) {
		f, err := ld.parse(p.Dir, name)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	var firstErr error
	conf := types.Config{
		Importer: resolve{ld: ld, importMap: p.ImportMap},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(basePath(p.ImportPath), ld.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	ld.typesFor[p.ImportPath] = pkg
	return &Package{
		ImportPath: p.ImportPath, Dir: p.Dir,
		Files: files, Types: pkg, Info: info,
	}, nil
}
