// Package driver runs a set of analyzers over loaded packages and
// renders their diagnostics — the multichecker core of cmd/spanlint.
package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"

	"spanjoin/internal/analysis"
	"spanjoin/internal/analysis/load"
)

// Result is the outcome of one lint run.
type Result struct {
	Diagnostics []analysis.Diagnostic
}

// Run applies each analyzer to every package, then runs Finish hooks
// with the accumulated facts. Diagnostics come back sorted by position.
func Run(analyzers []*analysis.Analyzer, fset *token.FileSet, pkgs []*load.Package) (*Result, error) {
	res := &Result{}
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		var facts []analysis.Fact
		for _, p := range pkgs {
			pass := analysis.NewPass(a, fset, p.Files, p.Types, p.Info, p.ImportPath, &diags, &facts)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, p.ImportPath, err)
			}
		}
		if a.Finish != nil {
			diags = append(diags, a.Finish(&analysis.Program{Fset: fset, Facts: facts})...)
		}
		res.Diagnostics = append(res.Diagnostics, diags...)
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		di, dj := res.Diagnostics[i].Pos, res.Diagnostics[j].Pos
		if di.Filename != dj.Filename {
			return di.Filename < dj.Filename
		}
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		return di.Column < dj.Column
	})
	return res, nil
}

// Print renders diagnostics as file:line:col: [analyzer] message lines.
func (r *Result) Print(w io.Writer) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
}

// jsonDiagnostic is the -json wire form of one diagnostic.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// PrintJSON renders diagnostics as a JSON array (spanlint -json), the
// format the CI lint job turns into GitHub check annotations.
func (r *Result) PrintJSON(w io.Writer) error {
	out := make([]jsonDiagnostic, 0, len(r.Diagnostics))
	for _, d := range r.Diagnostics {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
