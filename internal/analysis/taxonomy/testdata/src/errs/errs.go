// Package errs is the taxonomy-defining fixture: sentinels, a panic
// carrier, the failure classes and their classifier. FailureBudget is
// the class the annotated map in package consumer fails to handle — the
// negative exhaustiveness case.
package errs

import (
	"context"
	"errors"
)

// Sentinel errors of the fixture taxonomy.
var (
	ErrOverloaded     = errors.New("overloaded")
	ErrBudgetExceeded = errors.New("budget exceeded")
	ErrCorrupt        = errors.New("corrupt")
)

// PanicError carries a recovered panic.
type PanicError struct{ msg string }

// Error implements error.
func (e *PanicError) Error() string { return e.msg }

// The declared failure classes.
const (
	FailureOverloaded = "overloaded"
	FailureDeadline   = "deadline"
	FailureBudget     = "budget"
	FailureCorrupt    = "corrupt"
)

// FailureClass classifies err into one of the constants above.
func FailureClass(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return FailureOverloaded
	case errors.Is(err, context.DeadlineExceeded):
		return FailureDeadline
	case errors.Is(err, ErrBudgetExceeded):
		return FailureBudget
	case errors.Is(err, ErrCorrupt):
		return FailureCorrupt
	}
	return ""
}
