// Package consumer maps failure classes to statuses and demonstrates
// every banned comparison shape.
package consumer

import (
	"context"
	"errors"

	"fixture/errs"
)

// statusOf is the annotated taxonomy map. It handles Overloaded and
// Deadline but neither Budget nor Corrupt, so the cross-file
// exhaustiveness check must flag it with the sorted missing list.
//
//spanjoin:taxonomy-map
func statusOf(err error) int { // want "taxonomy map statusOf does not handle FailureBudget, FailureCorrupt"
	switch errs.FailureClass(err) {
	case errs.FailureOverloaded:
		return 503
	case errs.FailureDeadline:
		return 504
	}
	return 500
}

// compare trips each structural-comparison rule once.
func compare(err error) bool {
	if err == errs.ErrOverloaded { // want "ErrOverloaded compared with =="
		return true
	}
	if err != errs.ErrBudgetExceeded { // want "ErrBudgetExceeded compared with !="
		return false
	}
	if err == errs.ErrCorrupt { // want "ErrCorrupt compared with =="
		return true
	}
	if err == context.DeadlineExceeded { // want "context.DeadlineExceeded compared with =="
		return true
	}
	switch err {
	case errs.ErrOverloaded: // want "ErrOverloaded used as a switch case over an error value"
		return true
	}
	if _, ok := err.(*errs.PanicError); ok { // want "type assertion on"
		return true
	}
	switch err.(type) {
	case *errs.PanicError: // want "type switch case on"
		return true
	}
	return errors.Is(err, errs.ErrOverloaded)
}

// unannotated switches over FailureClass without the directive: it
// would dodge the exhaustiveness check, so the switch itself is flagged.
func unannotated(err error) int {
	switch errs.FailureClass(err) { // want "annotate the function with"
	case errs.FailureOverloaded:
		return 1
	}
	return 0
}

var (
	_ = statusOf
	_ = compare
	_ = unannotated
)
