// Package taxonomy enforces the error-taxonomy contract (PR 6 defined
// it, PR 7 stretched it over the wire):
//
//  1. Sentinel errors — ErrOverloaded, ErrBudgetExceeded,
//     context.DeadlineExceeded, context.Canceled — may only be tested
//     with errors.Is, never == or !=, and *PanicError only with
//     errors.As, never a type assertion or type switch. Wrapped errors
//     (RemoteError from the client package, %w chains) make == silently
//     false: the comparison compiles, passes local tests against bare
//     sentinels, and misclassifies every error that crossed a layer.
//     The defining package (internal/resilience) is exempt.
//
//  2. Cross-file consistency: every failure class the taxonomy declares
//     (the Failure* constants next to FailureClass) must be handled by
//     every taxonomy map in the tree — the functions annotated
//     //spanjoin:taxonomy-map, i.e. the server's status mapping and
//     spanctl's exit-code table. Adding a sentinel to the taxonomy
//     without teaching each consumer its wire/exit mapping fails the
//     build. Any switch over FailureClass(err) in an unannotated
//     function is itself an error, so a consumer cannot silently opt
//     out of the exhaustiveness check.
package taxonomy

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"spanjoin/internal/analysis"
)

// Directive marks a function as a taxonomy map: it must handle every
// declared failure class.
const Directive = "//spanjoin:taxonomy-map"

// sentinelNames are the error variables that must be compared with
// errors.Is. DeadlineExceeded and Canceled are matched in package
// context; the others wherever a taxonomy package declares them.
var sentinelNames = regexp.MustCompile(`^(ErrOverloaded|ErrBudgetExceeded|ErrCorrupt)$`)

// panicTypeNames are the error types that must be matched with
// errors.As rather than asserted.
var panicTypeNames = regexp.MustCompile(`^PanicError$`)

// exemptPkg matches packages allowed to touch sentinels structurally:
// the taxonomy's defining layer.
var exemptPkg = regexp.MustCompile(`(^|/)resilience$`)

// classConst matches the failure-class constants of the taxonomy.
var classConst = regexp.MustCompile(`^Failure[A-Z]\w*$`)

var Analyzer = &analysis.Analyzer{
	Name: "taxonomy",
	Doc: "sentinel errors via errors.Is/As; taxonomy maps stay exhaustive\n\n" +
		"Sentinels (ErrOverloaded, ErrBudgetExceeded, ErrCorrupt, context.DeadlineExceeded, " +
		"context.Canceled) must be tested with errors.Is and *PanicError with " +
		"errors.As; every //spanjoin:taxonomy-map function must handle every " +
		"declared Failure* class.",
	Run:    run,
	Finish: finish,
}

// classesFact records the failure classes a package declares (it is a
// taxonomy-defining package: it has FailureClass and Failure* consts).
type classesFact struct {
	classes []string
}

// mapFact records one annotated taxonomy map and the classes it handles.
type mapFact struct {
	fn      string
	pos     token.Pos
	end     token.Pos
	handled map[string]bool
}

func run(pass *analysis.Pass) error {
	exempt := exemptPkg.MatchString(pass.Pkg.Path()) || exemptPkg.MatchString(pass.Pkg.Name())

	// Collect declared classes if this package defines the taxonomy.
	if classes := declaredClasses(pass); classes != nil {
		pass.ExportFact(&classesFact{classes: classes})
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			annotated := hasDirective(fd.Doc)
			if annotated {
				pass.ExportFact(&mapFact{
					fn:      fd.Name.Name,
					pos:     fd.Name.Pos(),
					end:     fd.End(),
					handled: handledClasses(pass, fd),
				})
			}
			if !exempt {
				checkComparisons(pass, fd)
				if !annotated {
					checkUnannotatedSwitch(pass, fd)
				}
			}
		}
	}
	return nil
}

func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

// declaredClasses returns the Failure* constants of a package that also
// declares func FailureClass — the taxonomy's defining surface.
func declaredClasses(pass *analysis.Pass) []string {
	scope := pass.Pkg.Scope()
	if _, ok := scope.Lookup("FailureClass").(*types.Func); !ok {
		return nil
	}
	var classes []string
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && classConst.MatchString(name) {
			if b, ok := c.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				classes = append(classes, name)
			}
		}
	}
	sort.Strings(classes)
	return classes
}

// handledClasses collects every Failure* constant a function's body
// references — switch cases, if-chains and map lookups all count, so
// the exhaustiveness check does not prescribe one shape.
func handledClasses(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	handled := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && classConst.MatchString(c.Name()) {
			handled[c.Name()] = true
		}
		return true
	})
	return handled
}

// isSentinel reports whether the expression resolves to a taxonomy
// sentinel error variable.
func isSentinel(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(v.Type()) {
		return "", false
	}
	if sentinelNames.MatchString(v.Name()) {
		return v.Name(), true
	}
	if v.Pkg().Path() == "context" && (v.Name() == "DeadlineExceeded" || v.Name() == "Canceled") {
		return "context." + v.Name(), true
	}
	return "", false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isPanicErrType reports whether the type is (a pointer to) a taxonomy
// panic error type.
func isPanicErrType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && panicTypeNames.MatchString(named.Obj().Name())
}

// checkComparisons flags ==/!= against sentinels and type
// assertions/switches on panic error types.
func checkComparisons(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for _, e := range []ast.Expr{n.X, n.Y} {
				if name, ok := isSentinel(pass, e); ok {
					pass.Reportf(n.Pos(),
						"%s compared with %s: wrapped errors (client RemoteError, %%w chains) make this silently false — use errors.Is",
						name, n.Op)
				}
			}
		case *ast.SwitchStmt:
			// switch err { case ErrOverloaded: } is == in disguise.
			if n.Tag == nil {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n.Tag); t == nil || !isErrorType(t) {
				return true
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if name, ok := isSentinel(pass, e); ok {
						pass.Reportf(e.Pos(),
							"%s used as a switch case over an error value: this is == in disguise — use errors.Is",
							name)
					}
				}
			}
		case *ast.TypeAssertExpr:
			if n.Type == nil {
				return true // x.(type) handled via TypeSwitchStmt cases
			}
			if t := pass.TypesInfo.TypeOf(n.Type); t != nil && isPanicErrType(t) {
				pass.Reportf(n.Pos(),
					"type assertion on %s: wrapped panics escape it — use errors.As",
					types.TypeString(t, nil))
			}
		case *ast.TypeSwitchStmt:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				cc, ok := m.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					if t := pass.TypesInfo.TypeOf(e); t != nil && isPanicErrType(t) {
						pass.Reportf(e.Pos(),
							"type switch case on %s: wrapped panics escape it — use errors.As",
							types.TypeString(t, nil))
					}
				}
				return true
			})
		}
		return true
	})
}

// checkUnannotatedSwitch flags switches over FailureClass(err) in
// functions that lack the taxonomy-map annotation: without it the
// exhaustiveness check cannot see them.
func checkUnannotatedSwitch(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		call, ok := sw.Tag.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if f, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && f.Name() == "FailureClass" {
			pass.Reportf(sw.Pos(),
				"switch over FailureClass result in %s: annotate the function with %s so the exhaustiveness check covers it",
				fd.Name.Name, Directive)
		}
		return true
	})
}

// finish joins the per-package facts: every annotated map must handle
// every declared class.
func finish(prog *analysis.Program) []analysis.Diagnostic {
	classes := map[string]bool{}
	var maps []*mapFact
	for _, f := range prog.Facts {
		switch v := f.Value.(type) {
		case *classesFact:
			for _, c := range v.classes {
				classes[c] = true
			}
		case *mapFact:
			maps = append(maps, v)
		}
	}
	if len(classes) == 0 {
		return nil
	}
	var diags []analysis.Diagnostic
	for _, m := range maps {
		var missing []string
		for c := range classes {
			if !m.handled[c] {
				missing = append(missing, c)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			diags = append(diags, analysis.Diagnostic{
				Analyzer: "taxonomy",
				Pos:      prog.Fset.Position(m.pos),
				Message: "taxonomy map " + m.fn + " does not handle " + strings.Join(missing, ", ") +
					": a failure class was added to the taxonomy without a mapping here",
			})
		}
	}
	return diags
}
