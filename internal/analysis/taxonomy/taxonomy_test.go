package taxonomy_test

import (
	"testing"

	"spanjoin/internal/analysis/analysistest"
	"spanjoin/internal/analysis/taxonomy"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, taxonomy.Analyzer, "testdata/src", "", "./...")
}
