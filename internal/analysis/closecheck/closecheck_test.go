package closecheck_test

import (
	"testing"

	"spanjoin/internal/analysis/analysistest"
	"spanjoin/internal/analysis/closecheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, closecheck.Analyzer, "testdata/src", "", "./...")
}
