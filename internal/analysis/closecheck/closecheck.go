// Package closecheck enforces the stream-lifecycle contract of the
// engine's result types (PR 6 made Close idempotent and Err mandatory;
// PR 7 put both on the wire): every acquired Results, CorpusMatches or
// Matches must reach Close (when the type has one) and have its Err
// read — otherwise worker pools linger until the abandoned-stream
// reaper runs, and mid-stream failures (deadline, budget, a recovered
// panic) are silently mistaken for exhaustion.
//
// The check is lostcancel-style but syntactic: a function that acquires
// a stream locally must mention v.Close() (directly or deferred,
// including inside a closure) and v.Err(). Values that escape — stored
// in a struct, returned, passed to another function — transfer the
// obligation to their new owner and are not flagged. The packages that
// declare a stream type are exempt: their implementation manages the
// lifecycle below the public contract.
package closecheck

import (
	"go/ast"
	"go/types"
	"regexp"

	"spanjoin/internal/analysis"
)

// StreamTypes matches the names of the result-stream types under
// contract. A type must also expose Err() to be considered; Close is
// required exactly when the type has a Close method.
var StreamTypes = regexp.MustCompile(`^(Results|Matches|CorpusMatches)$`)

var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "acquired result streams must be Closed and Err-checked\n\n" +
		"Every locally held Results/CorpusMatches/Matches must reach Close " +
		"(when the type has one) and have Err read after the drain loop; " +
		"escaping values pass the obligation to their new owner.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// streamType reports whether t is (a pointer to) a stream type under
// contract, and whether that type has a Close method.
func streamType(pass *analysis.Pass, t types.Type) (isStream, needClose bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !StreamTypes.MatchString(named.Obj().Name()) {
		return false, false
	}
	if named.Obj().Pkg() == pass.Pkg {
		// The declaring package's own implementation is exempt.
		return false, false
	}
	var hasErr bool
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Err":
			hasErr = true
		case "Close":
			needClose = true
		}
	}
	return hasErr, needClose
}

// acquisition is one local variable bound to a stream.
type acquisition struct {
	obj       types.Object
	pos       ast.Node
	name      string
	needClose bool
	closed    bool
	errRead   bool
	escaped   bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	acquired := map[types.Object]*acquisition{}

	// Pass 1: find local stream acquisitions v := f(...) / v, err := f(...).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Only fresh results of calls count as acquisitions; plain
		// aliasing (v := w) keeps the obligation on the original.
		if len(as.Rhs) != 1 {
			return true
		}
		if _, ok := as.Rhs[0].(*ast.CallExpr); !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			isStream, needClose := streamType(pass, obj.Type())
			if !isStream {
				continue
			}
			if _, seen := acquired[obj]; !seen {
				acquired[obj] = &acquisition{obj: obj, pos: id, name: id.Name, needClose: needClose}
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}

	// Pass 2: for each acquisition, find Close/Err calls and escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Close() / v.Err()
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if a := acquired[pass.TypesInfo.Uses[id]]; a != nil {
						switch sel.Sel.Name {
						case "Close":
							a.closed = true
						case "Err":
							a.errRead = true
						}
					}
				}
			}
			// v passed as an argument escapes.
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok {
					if a := acquired[pass.TypesInfo.Uses[id]]; a != nil {
						a.escaped = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := r.(*ast.Ident); ok {
					if a := acquired[pass.TypesInfo.Uses[id]]; a != nil {
						a.escaped = true
					}
				}
			}
		case *ast.AssignStmt:
			// Storing v anywhere but a plain local (field, map, slice
			// element, dereference) escapes it.
			for i, rhs := range n.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok {
					continue
				}
				a := acquired[pass.TypesInfo.Uses[id]]
				if a == nil {
					continue
				}
				if i < len(n.Lhs) {
					if _, plain := n.Lhs[i].(*ast.Ident); !plain {
						a.escaped = true
					} else {
						a.escaped = true // local alias: obligation follows the alias conservatively
					}
				}
			}
		case *ast.SendStmt:
			if id, ok := n.Value.(*ast.Ident); ok {
				if a := acquired[pass.TypesInfo.Uses[id]]; a != nil {
					a.escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := e.(*ast.Ident); ok {
					if a := acquired[pass.TypesInfo.Uses[id]]; a != nil {
						a.escaped = true
					}
				}
			}
		case *ast.UnaryExpr:
			// &v escapes.
			if id, ok := n.X.(*ast.Ident); ok {
				if a := acquired[pass.TypesInfo.Uses[id]]; a != nil {
					a.escaped = true
				}
			}
		}
		return true
	})

	for _, a := range acquired {
		if a.escaped {
			continue
		}
		if a.needClose && !a.closed {
			pass.Reportf(a.pos.Pos(),
				"%s acquired here is never Closed: its worker pool and admission slot are held until the abandoned-stream reaper runs (defer %s.Close())",
				a.name, a.name)
		}
		if !a.errRead {
			pass.Reportf(a.pos.Pos(),
				"%s is drained without checking %s.Err(): a deadline, budget or recovered panic would be silently mistaken for exhaustion",
				a.name, a.name)
		}
	}
}
