// Package stream declares the fixture result streams; as the declaring
// package it is exempt from its own lifecycle contract.
package stream

// Results has the full contract: Close and Err.
type Results struct{ err error }

// Open acquires a Results stream.
func Open() *Results { return &Results{} }

// Next advances the stream.
func (r *Results) Next() bool { return false }

// Close releases the stream.
func (r *Results) Close() {}

// Err reports the terminal error.
func (r *Results) Err() error { return r.err }

// Matches has Err but no Close: only the Err half of the contract
// applies to holders.
type Matches struct{ err error }

// Iterate acquires a Matches stream.
func Iterate() *Matches { return &Matches{} }

// Next advances the stream.
func (m *Matches) Next() bool { return false }

// Err reports the terminal error.
func (m *Matches) Err() error { return m.err }

// selfUse shows the declaring-package exemption: no obligation here.
func selfUse() {
	r := Open()
	r.Next()
}

var _ = selfUse
