// Package use consumes the fixture streams and demonstrates each
// closecheck outcome.
package use

import "fixture/stream"

// Leaks drops both halves of the contract.
func Leaks() {
	r := stream.Open() // want "never Closed" "without checking"
	for r.Next() {
	}
}

// ErrOnly reads Err but never Closes.
func ErrOnly() {
	r := stream.Open() // want "never Closed"
	for r.Next() {
	}
	if r.Err() != nil {
		panic("stream error")
	}
}

// CloseOnly Closes but never reads Err.
func CloseOnly() {
	r := stream.Open() // want "without checking"
	defer r.Close()
	for r.Next() {
	}
}

// Clean fulfills the whole contract.
func Clean() error {
	r := stream.Open()
	defer r.Close()
	for r.Next() {
	}
	return r.Err()
}

// DrainMatches drains a Close-less stream without reading Err.
func DrainMatches() {
	m := stream.Iterate() // want "without checking"
	for m.Next() {
	}
}

// DrainMatchesClean reads Err; with no Close method that is the whole
// contract.
func DrainMatchesClean() error {
	m := stream.Iterate()
	for m.Next() {
	}
	return m.Err()
}

// Escapes returns the stream: the caller inherits the obligation.
func Escapes() *stream.Results {
	r := stream.Open()
	return r
}

// HandsOff passes the stream on: the sink inherits the obligation.
func HandsOff(sink func(*stream.Results)) {
	r := stream.Open()
	sink(r)
}

// Aliased re-binds the stream: the obligation conservatively follows
// the alias.
func Aliased() error {
	r := stream.Open()
	r2 := r
	defer r2.Close()
	return r2.Err()
}
