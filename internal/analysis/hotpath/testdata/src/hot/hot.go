// Package hot is the hotpath golden fixture: annotated kernels tripping
// each body rule, plus a deliberate gate/annotation mismatch.
package hot

import "fmt"

// point is a tiny composite for the literal-allocation case.
type point struct{ x, y int }

var sink []int

// box is a local interface-taking helper (not fmt, so argument boxing
// is reported rather than the formatting call).
func box(v any) int {
	_ = v
	return 0
}

// Sum is a clean hot path: arithmetic and self-appends only.
//
//spanjoin:hotpath
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	xs = append(xs, t)
	xs = append(xs[:0], t)
	return t + len(xs)
}

// Violate trips every body rule once.
//
//spanjoin:hotpath
func Violate(xs []int, s string, other []int) int {
	buf := make([]int, 4)        // want "allocates with make"
	q := new(point)              // want "allocates with new"
	f := func() int { return 1 } // want "creates a closure"
	p := &point{1, 2}            // want "address of a composite literal"
	b := []byte(s)               // want "converts between string and"
	v := any(len(xs))            // want "boxing allocates"
	fmt.Println(len(xs))         // want "must not format"
	n := box(len(s))             // want "boxing allocates"
	sink = append(other, 1)      // want "growing a foreign slice"
	return len(buf) + q.x + f() + p.y + len(b) + n + box(v) + Sum(other)
}

// Ungated is annotated but no allocation gate names it.
//
//spanjoin:hotpath
func Ungated(xs []int) int { // want "no alloctest assertion gates it"
	return len(xs)
}

// The gate set: Sum and Violate are gated; Ghost is gated but carries
// no hotpath annotation — the mismatch the cross-check must flag.
//
//spanjoin:allocgate fixture/hot.Sum fixture/hot.Violate
//spanjoin:allocgate fixture/hot.Ghost
// want-above "allocation gate names fixture/hot.Ghost which is not annotated"

// Ghost exists but is not annotated.
func Ghost() {}
