// Package hotpath machine-checks the allocation discipline of the
// functions the paper's complexity claims rest on. The enumerator's
// preprocessing sweep and Next are the O(|s|)-preprocessing /
// O(1)-delay kernel; the bitset multiply is the constant factor under
// both. A stray fmt call, closure, or interface boxing in one of them
// is invisible in review and costs an allocation per document position
// — exactly the regression class internal/alloctest exists to catch.
//
// A function annotated //spanjoin:hotpath may not, in its body:
//
//   - call anything in fmt or log (formatting boxes every operand);
//   - create a function literal (closures capture and escape);
//   - convert a concrete value to an interface type, explicitly or by
//     passing it to an interface-typed parameter (boxing);
//   - append into a slice other than the one being extended
//     (x = append(x, ...) reuses capacity; y = append(x, ...) and
//     passing an append result along do not);
//   - allocate with make, new, or a composite-literal address, or
//     convert between string and []byte (hot paths draw from pools
//     and arenas; see scratchPool in internal/enum).
//
// The annotation set is itself cross-checked: every hotpath function
// must be covered by an allocation gate — a //spanjoin:allocgate
// comment naming it next to an alloctest assertion — and every gate
// must name a hotpath function, so the static rules and the dynamic
// allocs-per-op measurement cannot drift apart.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"spanjoin/internal/analysis"
)

// Directive marks a function as a hot path in its doc comment.
const Directive = "//spanjoin:hotpath"

// GateDirective marks an alloctest site as gating named hot paths:
// //spanjoin:allocgate <canonical-name> [<canonical-name>...]
const GateDirective = "//spanjoin:allocgate"

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "//spanjoin:hotpath bodies stay allocation-free\n\n" +
		"Annotated functions may not call fmt/log, create closures, box " +
		"values into interfaces, append into foreign slices, or allocate " +
		"with make/new/composite literals; the annotation set must match " +
		"the //spanjoin:allocgate set of internal/alloctest assertions.",
	Run:    run,
	Finish: finish,
}

// hotpathFact records one annotated function.
type hotpathFact struct {
	name string // canonical: pkgpath.(*Recv).Name / pkgpath.Recv.Name / pkgpath.Name
	pos  token.Pos
}

// gateFact records one name covered by an allocgate comment.
type gateFact struct {
	name string
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		collectGates(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc) {
				continue
			}
			pass.ExportFact(&hotpathFact{name: canonicalName(pass, fd), pos: fd.Name.Pos()})
			checkBody(pass, fd)
		}
	}
	return nil
}

func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

// collectGates exports a gateFact per name listed in any allocgate
// comment of the file (typically next to an alloctest.Assert call).
func collectGates(pass *analysis.Pass, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, GateDirective) {
				continue
			}
			rest := strings.TrimPrefix(text, GateDirective)
			if rest == text || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue // e.g. //spanjoin:allocgates — not the directive
			}
			for _, name := range strings.Fields(rest) {
				pass.ExportFact(&gateFact{name: name, pos: c.Pos()})
			}
		}
	}
}

// canonicalName renders the allocgate spelling of a declaration:
// pkg/path.Func, pkg/path.Recv.Method or pkg/path.(*Recv).Method.
func canonicalName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	pkg := pass.Pkg.Path()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		return fmt.Sprintf("%s.(*%s).%s", pkg, typeName(star.X), fd.Name.Name)
	}
	return fmt.Sprintf("%s.%s.%s", pkg, typeName(t), fd.Name.Name)
}

func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver Recv[T]
		return typeName(e.X)
	case *ast.IndexListExpr:
		return typeName(e.X)
	}
	return "?"
}

// forbiddenCallPkgs are import paths a hot path may not call into.
var forbiddenCallPkgs = map[string]bool{"fmt": true, "log": true}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"hotpath %s creates a closure: captured variables escape to the heap — hoist the function or pass state explicitly",
				name)
			return false // the literal's body is the closure's problem
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"hotpath %s takes the address of a composite literal: this allocates — draw from a pool or arena",
						name)
				}
			}
		case *ast.AssignStmt:
			checkAppendAssign(pass, name, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make", "new":
			if pass.TypesInfo.Types[fun].IsBuiltin() {
				pass.Reportf(call.Pos(),
					"hotpath %s allocates with %s: draw from a pool or arena instead",
					name, fun.Name)
				return
			}
		case "append":
			if pass.TypesInfo.Types[fun].IsBuiltin() {
				return // judged at the enclosing assignment
			}
		}
	}

	// string <-> []byte conversions copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.TypesInfo.TypeOf(call.Args[0])
		if from != nil {
			if isString(to) && isByteSlice(from) || isByteSlice(to) && isString(from) {
				pass.Reportf(call.Pos(),
					"hotpath %s converts between string and []byte: this copies — index the original instead",
					name)
			}
			if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) {
				pass.Reportf(call.Pos(),
					"hotpath %s converts %s to interface %s: boxing allocates",
					name, from, to)
			}
		}
		return
	}

	// Calls into fmt/log, and implicit boxing at interface parameters.
	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if callee != nil && callee.Pkg() != nil && forbiddenCallPkgs[callee.Pkg().Path()] {
		pass.Reportf(call.Pos(),
			"hotpath %s calls %s.%s: formatting boxes every operand — hot paths must not format",
			name, callee.Pkg().Name(), callee.Name())
		return
	}
	sig, _ := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				param = s.Elem()
			}
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param.Underlying()) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(),
			"hotpath %s passes %s to an interface parameter of %s: boxing allocates",
			name, at, calleeName(call))
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the callee"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// checkAppendAssign enforces self-append: append's result must be
// assigned back to the slice being extended (modulo a [:0] reslice),
// so the backing array is reused rather than grown into a fresh one.
func checkAppendAssign(pass *analysis.Pass, name string, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || !pass.TypesInfo.Types[id].IsBuiltin() || len(call.Args) == 0 {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		dst := exprString(as.Lhs[i])
		src := exprString(baseOfReslice(call.Args[0]))
		if dst != src {
			pass.Reportf(call.Pos(),
				"hotpath %s appends into %s but assigns to %s: growing a foreign slice allocates — self-append (x = append(x, ...)) reuses capacity",
				name, src, dst)
		}
	}
}

// baseOfReslice unwraps x[:0]-style reslices: append(x[:0], ...) back
// into x is the reuse idiom, not a foreign append.
func baseOfReslice(e ast.Expr) ast.Expr {
	if s, ok := e.(*ast.SliceExpr); ok {
		return s.X
	}
	return e
}

// exprString renders simple lvalue expressions for comparison.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return fmt.Sprintf("<%T>", e)
}

// finish cross-checks the annotation set against the allocation gates.
// Inactive when no gate exists anywhere (fixture programs exercising
// only the body rules), active the moment one does.
func finish(prog *analysis.Program) []analysis.Diagnostic {
	hot := map[string]token.Pos{}
	gates := map[string]token.Pos{}
	for _, f := range prog.Facts {
		switch v := f.Value.(type) {
		case *hotpathFact:
			hot[v.name] = v.pos
		case *gateFact:
			gates[v.name] = v.pos
		}
	}
	if len(gates) == 0 {
		return nil
	}
	var diags []analysis.Diagnostic
	var names []string
	for n := range hot {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, ok := gates[n]; !ok {
			diags = append(diags, analysis.Diagnostic{
				Analyzer: "hotpath",
				Pos:      prog.Fset.Position(hot[n]),
				Message: n + " is annotated " + Directive + " but no alloctest assertion gates it: add " +
					GateDirective + " " + n + " next to an allocation test",
			})
		}
	}
	names = names[:0]
	for n := range gates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, ok := hot[n]; !ok {
			diags = append(diags, analysis.Diagnostic{
				Analyzer: "hotpath",
				Pos:      prog.Fset.Position(gates[n]),
				Message: "allocation gate names " + n + " which is not annotated " + Directive +
					": gate and annotation sets must match",
			})
		}
	}
	return diags
}
