package hotpath_test

import (
	"testing"

	"spanjoin/internal/analysis/analysistest"
	"spanjoin/internal/analysis/hotpath"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "testdata/src", "", "./...")
}
