// Package failpointtag enforces the failpoint build discipline (PR 6
// introduced the registry): code that arms failpoints — Enable and the
// Action constructors PanicAction, SleepAction, PanicOnArg — must live
// in a file constrained by the `failpoints` build tag.
//
// The trap this closes is silent: in untagged builds Enable compiles to
// a no-op that returns a do-nothing disarm function. A test that arms a
// hook from an untagged file builds, runs, and passes — while injecting
// nothing. The failure it was written to exercise is never exercised,
// and the suite reports green on a path it never took. Requiring the
// build tag on the arming file means such a test either runs with real
// hooks (`go test -tags failpoints`) or does not run at all.
//
// Inject call sites are deliberately exempt: hooks are compiled into
// production paths and erased by the untagged no-op — that is the whole
// design. Only arming is tag-gated. The defining package is exempt too:
// it declares both halves of the dual.
package failpointtag

import (
	"go/ast"
	"go/build/constraint"
	"go/types"

	"spanjoin/internal/analysis"
)

// Tag is the build tag that must constrain every arming file.
const Tag = "failpoints"

// armingNames is the registry's arming surface. Referencing any of
// these only makes sense when arming a hook.
var armingNames = map[string]bool{
	"Enable":      true,
	"PanicAction": true,
	"SleepAction": true,
	"PanicOnArg":  true,
}

var Analyzer = &analysis.Analyzer{
	Name: "failpointtag",
	Doc: "failpoint arming is confined to //go:build failpoints files\n\n" +
		"Enable/PanicAction/SleepAction/PanicOnArg compile to no-ops in " +
		"untagged builds, so a test arming a hook from an untagged file " +
		"passes while injecting nothing; the arming file must carry the " +
		"failpoints build constraint.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if requiresTag(file, Tag) {
			continue
		}
		checkFile(pass, file)
	}
	return nil
}

// requiresTag reports whether the file carries a build constraint that
// excludes it from builds lacking the tag — i.e. the constraint
// evaluates false when the tag is absent. A bare `//go:build failpoints`
// satisfies this; so does any conjunction that includes the tag.
func requiresTag(file *ast.File, tag string) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break // build constraints must precede the package clause
		}
		for _, c := range cg.List {
			var expr constraint.Expr
			if constraint.IsGoBuild(c.Text) {
				expr, _ = constraint.Parse(c.Text)
			} else if constraint.IsPlusBuild(c.Text) {
				expr, _ = constraint.Parse(c.Text)
			}
			if expr == nil {
				continue
			}
			without := expr.Eval(func(t string) bool { return false })
			with := expr.Eval(func(t string) bool { return t == tag })
			if !without && with {
				return true
			}
		}
	}
	return false
}

// failpointPkg reports whether pkg is a failpoint registry package: it
// declares the FailpointsEnabled constant that names the build dual.
func failpointPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	_, ok := pkg.Scope().Lookup("FailpointsEnabled").(*types.Const)
	return ok
}

func checkFile(pass *analysis.Pass, file *ast.File) {
	if failpointPkg(pass.Pkg) {
		return // the defining package declares both halves of the dual
	}
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !armingNames[id.Name] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !failpointPkg(obj.Pkg()) {
			return true
		}
		if _, ok := obj.(*types.Func); !ok {
			return true
		}
		kind := "failpoint action constructor"
		if id.Name == "Enable" {
			kind = "failpoint arming call"
		}
		pass.Reportf(id.Pos(),
			"%s %s in a file without the %s build tag: in untagged builds this is a no-op and the test passes without injecting anything — add //go:build %s to this file",
			kind, id.Name, Tag, Tag)
		return true
	})
}
