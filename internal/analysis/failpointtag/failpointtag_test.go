package failpointtag_test

import (
	"testing"

	"spanjoin/internal/analysis/analysistest"
	"spanjoin/internal/analysis/failpointtag"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, failpointtag.Analyzer, "testdata/src", "", "./...")
}

// TestAnalyzerTagged loads the fixture with the failpoints tag: the
// tagged arming file joins the build and must stay clean, while the
// untagged armer keeps its diagnostics.
func TestAnalyzerTagged(t *testing.T) {
	analysistest.Run(t, failpointtag.Analyzer, "testdata/src", "failpoints", "./...")
}
